// Unit tests for the shared PM-ART node layer (pm_nodes.h): header-word
// codec, child-reference tagging, value objects, and layout invariants the
// failure-atomicity arguments rely on.
#include <gtest/gtest.h>

#include "pmem/arena.h"
#include "woart/pm_nodes.h"

namespace hart::pmart {
namespace {

TEST(PWord, RoundTripsDepthLenAndBytes) {
  const uint8_t bytes[] = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66};
  const uint64_t w = PWord::make(7, 6, bytes, 6);
  EXPECT_EQ(PWord::depth(w), 7);
  EXPECT_EQ(PWord::prefix_len(w), 6);
  for (uint32_t i = 0; i < 6; ++i)
    EXPECT_EQ(PWord::prefix_byte(w, i), bytes[i]) << i;
}

TEST(PWord, TruncatesStoredBytesAtSix) {
  const uint8_t bytes[] = {1, 2, 3, 4, 5, 6};
  // prefix_len may exceed the stored capacity; only 6 bytes are encoded.
  const uint64_t w = PWord::make(0, 20, bytes, 6);
  EXPECT_EQ(PWord::prefix_len(w), 20);
  EXPECT_EQ(PWord::prefix_byte(w, 5), 6);
}

TEST(PWord, ZeroLengthPrefix) {
  const uint64_t w = PWord::make(3, 0, nullptr, 0);
  EXPECT_EQ(PWord::depth(w), 3);
  EXPECT_EQ(PWord::prefix_len(w), 0);
}

TEST(ChildRef, TagsLeavesInBitZero) {
  EXPECT_TRUE(ChildRef::is_leaf(ChildRef::leaf(0x1000)));
  EXPECT_FALSE(ChildRef::is_leaf(ChildRef::node(0x1000)));
  EXPECT_EQ(ChildRef::off(ChildRef::leaf(0x1000)), 0x1000u);
  EXPECT_EQ(ChildRef::off(ChildRef::node(0x1000)), 0x1000u);
}

TEST(PNodeLayout, SizesAndAtomicityPreconditions) {
  // The failure-atomic commit words must be naturally aligned scalars.
  // (Offsets measured through real objects: offsetof on these derived
  // standard-layout-breaking types is only conditionally supported.)
  auto off = [](const void* base, const void* member) {
    return static_cast<size_t>(static_cast<const char*>(member) -
                               static_cast<const char*>(base));
  };
  PNode4 n4{};
  PNode16 n16{};
  PNode48 n48{};
  PNode256 n256{};
  EXPECT_EQ(off(&n4, &n4.pword), 0u);
  EXPECT_EQ(off(&n4, &n4.bitmap16) % 2, 0u);
  EXPECT_EQ(off(&n4, &n4.children) % 8, 0u);
  EXPECT_EQ(off(&n16, &n16.children) % 8, 0u);
  EXPECT_EQ(off(&n48, &n48.children) % 8, 0u);
  EXPECT_EQ(off(&n256, &n256.children) % 8, 0u);
  EXPECT_EQ(pnode_size(kPNode4), sizeof(PNode4));
  EXPECT_EQ(pnode_size(kPNode16), sizeof(PNode16));
  EXPECT_EQ(pnode_size(kPNode48), sizeof(PNode48));
  EXPECT_EQ(pnode_size(kPNode256), sizeof(PNode256));
  EXPECT_TRUE(std::is_trivially_copyable_v<PmLeaf>);
}

TEST(PmValueHelpers, AllocWriteFreeRoundTrip) {
  pmem::Arena::Options o;
  o.size = 4 << 20;
  pmem::Arena arena(o);
  const uint64_t off = alloc_value(arena, "hello-world!");
  const auto* v = arena.ptr<PmValue>(off);
  EXPECT_EQ(v->len, 12);
  EXPECT_EQ(std::string_view(v->data, v->len), "hello-world!");
  const uint64_t live = arena.stats().pm_live_bytes.load();
  EXPECT_EQ(live, 13u);
  free_value(arena, off);
  EXPECT_EQ(arena.stats().pm_live_bytes.load(), 0u);
}

TEST(PmValueHelpers, LeafStoresFullKey) {
  pmem::Arena::Options o;
  o.size = 4 << 20;
  pmem::Arena arena(o);
  const uint64_t voff = alloc_value(arena, "v");
  const uint64_t loff = alloc_leaf(arena, "some-key", voff);
  const auto* l = arena.ptr<PmLeaf>(loff);
  EXPECT_EQ(std::string_view(l->key, l->key_len), "some-key");
  EXPECT_EQ(l->p_value, voff);
}

}  // namespace
}  // namespace hart::pmart
