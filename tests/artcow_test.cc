// ART+CoW tests: CRUD, differential fuzz, copy-on-write crash atomicity
// (crash-point sweeps), and recovery by reachability.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <map>
#include <memory>
#include <string>

#include "artcow/artcow.h"
#include "common/rng.h"
#include "pmem/arena.h"

namespace hart::pmart {
namespace {

testutil::CheckedArena make_arena(size_t mb = 64) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

std::string random_key(common::Rng& rng, uint32_t max_len = 12,
                       uint32_t alphabet = 6) {
  std::string s;
  const size_t len = 1 + rng.next_below(max_len);
  for (size_t j = 0; j < len; ++j)
    s.push_back(static_cast<char>('a' + rng.next_below(alphabet)));
  return s;
}

TEST(ArtCow, BasicCrud) {
  auto arena = make_arena();
  ArtCow t(*arena);
  EXPECT_EQ(t.insert("one", "1"), common::Status::kInserted);
  EXPECT_EQ(t.insert("two", "2"), common::Status::kInserted);
  EXPECT_EQ(t.insert("three", "3"), common::Status::kInserted);
  std::string v;
  EXPECT_EQ(t.search("two", &v), common::Status::kOk);
  EXPECT_EQ(v, "2");
  EXPECT_EQ(t.update("two", "2x"), common::Status::kOk);
  EXPECT_EQ(t.search("two", &v), common::Status::kOk);
  EXPECT_EQ(v, "2x");
  EXPECT_EQ(t.remove("one"), common::Status::kOk);
  EXPECT_EQ(t.search("one", &v), common::Status::kNotFound);
  EXPECT_EQ(t.size(), 2u);
}

TEST(ArtCow, CowReplacesNodesOnGrowth) {
  auto arena = make_arena();
  ArtCow t(*arena);
  const uint64_t allocs_before = arena->stats().alloc_calls.load();
  for (int b = 1; b <= 5; ++b)  // forces a 4 -> 16 CoW grow
    t.insert(std::string(1, static_cast<char>(b)) + "x", "v");
  // CoW allocates a fresh node on every child addition (not only growth).
  EXPECT_GT(arena->stats().alloc_calls.load(), allocs_before + 10);
  for (int b = 1; b <= 5; ++b) {
    std::string v;
    EXPECT_EQ(t.search(std::string(1, static_cast<char>(b)) + "x", &v), common::Status::kOk);
  }
}

TEST(ArtCow, DifferentialFuzzAgainstMap) {
  auto arena = make_arena(256);
  ArtCow t(*arena);
  std::map<std::string, std::string> ref;
  common::Rng rng(321);
  for (int step = 0; step < 5000; ++step) {
    const std::string key = random_key(rng);
    const std::string val = "v" + std::to_string(step % 991);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const bool fresh = t.insert(key, val) == common::Status::kInserted;
        EXPECT_EQ(fresh, ref.find(key) == ref.end()) << key;
        ref[key] = val;
        break;
      }
      case 2: {
        std::string v;
        const bool found = t.search(key, &v).ok();
        const auto it = ref.find(key);
        EXPECT_EQ(found, it != ref.end()) << key;
        if (found) {
          EXPECT_EQ(v, it->second);
        }
        break;
      }
      default: {
        EXPECT_EQ(t.remove(key).ok(), ref.erase(key) == 1) << key;
        break;
      }
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  std::vector<std::pair<std::string, std::string>> out;
  t.range("a", ref.size() + 10, &out);
  ASSERT_EQ(out.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(ArtCow, CrashSweepDuringInserts) {
  common::Rng keyrng(654);
  std::vector<std::string> keys;
  {
    std::map<std::string, int> uniq;
    while (uniq.size() < 250) uniq[random_key(keyrng, 10, 4)] = 1;
    for (auto& [k, unused] : uniq) keys.push_back(k);
  }
  common::Rng sh(3);
  for (size_t i = keys.size(); i > 1; --i)
    std::swap(keys[i - 1], keys[sh.next_below(i)]);

  for (uint64_t crash_at = 1; crash_at <= 300; crash_at += 17) {
    auto arena = make_arena();
    size_t committed = 0;
    {
      ArtCow t(*arena);
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          t.insert(k, "val");
          ++committed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    ArtCow t2(*arena);
    for (size_t i = 0; i < committed; ++i) {
      std::string v;
      EXPECT_EQ(t2.search(keys[i], &v), common::Status::kOk)
          << "crash_at=" << crash_at << " key=" << keys[i];
    }
    for (const auto& k : keys) t2.insert(k, "v2");
    EXPECT_EQ(t2.size(), keys.size());
  }
}

TEST(ArtCow, CrashSweepDuringRemoves) {
  common::Rng keyrng(777);
  std::map<std::string, int> uniq;
  while (uniq.size() < 150) uniq[random_key(keyrng, 8, 4)] = 1;
  std::vector<std::string> keys;
  for (auto& [k, unused] : uniq) keys.push_back(k);

  for (uint64_t crash_at = 1; crash_at <= 100; crash_at += 9) {
    auto arena = make_arena();
    size_t removed = 0;
    {
      ArtCow t(*arena);
      for (const auto& k : keys) t.insert(k, "val");
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          t.remove(k);
          ++removed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    ArtCow t2(*arena);
    for (size_t i = 0; i < keys.size(); ++i) {
      std::string v;
      const bool found = t2.search(keys[i], &v).ok();
      if (i < removed) {
        EXPECT_FALSE(found) << "crash_at=" << crash_at << " " << keys[i];
      } else if (i > removed) {
        EXPECT_TRUE(found) << "crash_at=" << crash_at << " " << keys[i];
      }
    }
  }
}

TEST(ArtCow, PmBytesBalanceAfterChurn) {
  auto arena = make_arena();
  ArtCow t(*arena);
  common::Rng rng(15);
  std::map<std::string, int> keys;
  while (keys.size() < 400) keys[random_key(rng)] = 1;
  for (auto& [k, unused] : keys) t.insert(k, "v");
  for (auto& [k, unused] : keys) EXPECT_EQ(t.remove(k), common::Status::kOk);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(arena->stats().pm_live_bytes.load(), 0u);
}

}  // namespace
}  // namespace hart::pmart
