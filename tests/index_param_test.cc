// Cross-tree conformance suite: every Index implementation (HART, WOART,
// ART+CoW, FPTree) must satisfy the same functional contract. Runs each
// scenario against all four trees via TEST_P.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "art/dram_index.h"
#include "artcow/artcow.h"
#include "common/index.h"
#include "common/rng.h"
#include "fptree/fptree.h"
#include "hart/hart.h"
#include "pmem/arena.h"
#include "woart/woart.h"
#include "woart/wort.h"
#include "workload/keygen.h"

namespace hart {
namespace {

struct TreeFactory {
  const char* name;
  std::function<std::unique_ptr<common::Index>(pmem::Arena&)> make;
};

const TreeFactory kFactories[] = {
    {"HART",
     [](pmem::Arena& a) { return std::make_unique<core::Hart>(a); }},
    {"WOART",
     [](pmem::Arena& a) { return std::make_unique<pmart::Woart>(a); }},
    {"ARTCoW",
     [](pmem::Arena& a) { return std::make_unique<pmart::ArtCow>(a); }},
    {"FPTree",
     [](pmem::Arena& a) { return std::make_unique<fptree::FpTree>(a); }},
    {"WORT",
     [](pmem::Arena& a) { return std::make_unique<pmart::Wort>(a); }},
    {"DramArt",
     [](pmem::Arena&) { return std::make_unique<art::DramIndex>(); }},
};

class IndexParamTest : public ::testing::TestWithParam<size_t> {
 protected:
  IndexParamTest() {
    pmem::Arena::Options o;
    o.size = size_t{256} << 20;
    o.charge_alloc_persist = false;
    arena_ = std::make_unique<pmem::Arena>(o);
    index_ = kFactories[GetParam()].make(*arena_);
  }
  std::unique_ptr<pmem::Arena> arena_;
  std::unique_ptr<common::Index> index_;
};

TEST_P(IndexParamTest, EmptyIndexMissesEverything) {
  std::string v;
  EXPECT_EQ(index_->search("anything", &v), common::Status::kNotFound);
  EXPECT_EQ(index_->remove("anything"), common::Status::kNotFound);
  EXPECT_EQ(index_->update("anything", "x"), common::Status::kNotFound);
  EXPECT_EQ(index_->size(), 0u);
}

TEST_P(IndexParamTest, UpsertContract) {
  EXPECT_EQ(index_->insert("k", "v1"), common::Status::kInserted);
  EXPECT_EQ(index_->insert("k", "v2"), common::Status::kUpdated);
  std::string v;
  ASSERT_EQ(index_->search("k", &v), common::Status::kOk);
  EXPECT_EQ(v, "v2");
  EXPECT_EQ(index_->size(), 1u);
}

TEST_P(IndexParamTest, ValueSizeBoundaries) {
  // One value per size-class boundary: {8,16,32,64} classes.
  const std::map<std::string, size_t> lens = {
      {"a", 1},  {"b", 8},  {"c", 9},  {"d", 16},
      {"e", 17}, {"f", 32}, {"g", 33}, {"h", 64}};
  for (const auto& [k, len] : lens)
    EXPECT_EQ(index_->insert(k, std::string(len, 'x' )), common::Status::kInserted) << k;
  for (const auto& [k, len] : lens) {
    std::string v;
    ASSERT_EQ(index_->search(k, &v), common::Status::kOk) << k;
    EXPECT_EQ(v.size(), len) << k;
  }
  EXPECT_EQ(index_->insert("z", std::string(65, 'x')),
            common::Status::kInvalidArgument);
  EXPECT_EQ(index_->insert("z", ""), common::Status::kInvalidArgument);
}

TEST_P(IndexParamTest, KeyLengthBoundaries) {
  const std::string k1(1, 'k');
  const std::string k24(24, 'k');
  EXPECT_EQ(index_->insert(k1, "v"), common::Status::kInserted);
  EXPECT_EQ(index_->insert(k24, "v"), common::Status::kInserted);
  std::string v;
  EXPECT_EQ(index_->search(k1, &v), common::Status::kOk);
  EXPECT_EQ(index_->search(k24, &v), common::Status::kOk);
  EXPECT_EQ(index_->insert(std::string(25, 'k'), "v"),
            common::Status::kInvalidArgument);
  EXPECT_EQ(index_->insert("", "v"), common::Status::kInvalidArgument);
}

TEST_P(IndexParamTest, InvalidKeysRejectedUniformly) {
  // API v2 contract: embedded-NUL and over-length keys come back as
  // kInvalidArgument from every operation, nothing is mutated, and no
  // exception escapes the index.
  const std::string nul_key("a\0b", 3);
  const std::string long_key(25, 'k');
  const common::Status bad = common::Status::kInvalidArgument;
  for (const std::string& k : {nul_key, long_key, std::string()}) {
    EXPECT_EQ(index_->insert(k, "v"), bad);
    EXPECT_EQ(index_->search(k, nullptr), bad);
    EXPECT_EQ(index_->update(k, "v"), bad);
    EXPECT_EQ(index_->remove(k), bad);
  }
  EXPECT_EQ(index_->size(), 0u);
  // An invalid range start scans nothing rather than throwing.
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(index_->range(nul_key, 10, &out), 0u);
  // The index still works afterwards.
  EXPECT_EQ(index_->insert("good", "v"), common::Status::kInserted);
  EXPECT_EQ(index_->search("good", nullptr), common::Status::kOk);
}

TEST_P(IndexParamTest, PrefixKeysAreIndependent) {
  for (const char* k : {"a", "ab", "abc", "abcd", "abcde"})
    EXPECT_EQ(index_->insert(k, k), common::Status::kInserted);
  EXPECT_EQ(index_->remove("abc"), common::Status::kOk);
  for (const char* k : {"a", "ab", "abcd", "abcde"}) {
    std::string v;
    EXPECT_EQ(index_->search(k, &v), common::Status::kOk) << k;
    EXPECT_EQ(v, k);
  }
  EXPECT_EQ(index_->search("abc", nullptr), common::Status::kNotFound);
}

TEST_P(IndexParamTest, RangeScanOrderedWithLimit) {
  std::map<std::string, std::string> ref;
  common::Rng rng(44);
  while (ref.size() < 300) {
    std::string k;
    const size_t len = 2 + rng.next_below(10);
    for (size_t j = 0; j < len; ++j)
      k.push_back(static_cast<char>('A' + rng.next_below(20)));
    ref[k] = "v" + k.substr(0, 10);
    index_->insert(k, ref[k]);
  }
  const std::string lo = std::next(ref.begin(), 57)->first;
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(index_->range(lo, 40, &out), 40u);
  auto it = ref.lower_bound(lo);
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST_P(IndexParamTest, DictionaryWorkloadRoundTrip) {
  const auto words = workload::make_dictionary(3000, 7);
  for (size_t i = 0; i < words.size(); ++i)
    EXPECT_EQ(index_->insert(words[i], "w" + std::to_string(i % 100)), common::Status::kInserted);
  EXPECT_EQ(index_->size(), words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    std::string v;
    ASSERT_EQ(index_->search(words[i], &v), common::Status::kOk) << words[i];
    EXPECT_EQ(v, "w" + std::to_string(i % 100));
  }
  // Delete every other word.
  for (size_t i = 0; i < words.size(); i += 2)
    EXPECT_EQ(index_->remove(words[i]), common::Status::kOk);
  for (size_t i = 0; i < words.size(); ++i)
    EXPECT_EQ(index_->search(words[i], nullptr).ok(), i % 2 == 1) << words[i];
}

TEST_P(IndexParamTest, SequentialWorkloadRoundTrip) {
  const auto keys = workload::make_sequential(2000);
  for (const auto& k : keys) EXPECT_EQ(index_->insert(k, "v"), common::Status::kInserted);
  for (const auto& k : keys) EXPECT_EQ(index_->search(k, nullptr), common::Status::kOk);
  // Sequential keys are dense: the range from the first key returns them
  // in generation order.
  std::vector<std::pair<std::string, std::string>> out;
  index_->range(keys.front(), 100, &out);
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i].first, keys[i]);
}

TEST_P(IndexParamTest, RandomChurnAgainstReference) {
  std::map<std::string, std::string> ref;
  common::Rng rng(GetParam() * 100 + 17);
  for (int step = 0; step < 3000; ++step) {
    std::string k;
    const size_t len = 1 + rng.next_below(8);
    for (size_t j = 0; j < len; ++j)
      k.push_back(static_cast<char>('a' + rng.next_below(5)));
    const std::string val = "v" + std::to_string(step % 37);
    switch (rng.next_below(5)) {
      case 0:
      case 1:
      case 2: {
        EXPECT_EQ(index_->insert(k, val) == common::Status::kInserted,
                  ref.find(k) == ref.end());
        ref[k] = val;
        break;
      }
      case 3: {
        std::string v;
        const bool found = index_->search(k, &v).ok();
        EXPECT_EQ(found, ref.count(k) == 1);
        if (found) {
          EXPECT_EQ(v, ref[k]);
        }
        break;
      }
      default:
        EXPECT_EQ(index_->remove(k).ok(), ref.erase(k) == 1);
        break;
    }
  }
  EXPECT_EQ(index_->size(), ref.size());
}

TEST_P(IndexParamTest, MemoryUsageIsReported) {
  for (int i = 0; i < 2000; ++i)
    index_->insert("key" + std::to_string(i), "value123");
  const auto mu = index_->memory_usage();
  if (std::string(index_->name()) == "DRAM-ART") {
    EXPECT_EQ(mu.pm_bytes, 0u);  // nothing persistent by design
  } else {
    EXPECT_GT(mu.pm_bytes, 0u);
  }
  // Hybrid trees report DRAM too; pure PM trees report zero DRAM.
  const std::string name = index_->name();
  if (name == "HART" || name == "FPTree" || name == "DRAM-ART") {
    EXPECT_GT(mu.dram_bytes, 0u);
  } else {
    EXPECT_EQ(mu.dram_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTrees, IndexParamTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return kFactories[info.param].name;
                         });

}  // namespace
}  // namespace hart
