// FPTree tests: fingerprint probing, unsorted-leaf semantics, splits and
// the split micro-log (crash sweeps), leaf-list ordering, recovery
// (inner-node rebuild) and the no-coalescing policy.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "fptree/fptree.h"
#include "pmem/arena.h"

namespace hart::fptree {
namespace {

testutil::CheckedArena make_arena(size_t mb = 64) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

std::string random_key(common::Rng& rng, uint32_t max_len = 12) {
  std::string s;
  const size_t len = 1 + rng.next_below(max_len);
  for (size_t j = 0; j < len; ++j)
    s.push_back(static_cast<char>('a' + rng.next_below(8)));
  return s;
}

TEST(FpTree, BasicCrud) {
  auto arena = make_arena();
  FpTree t(*arena);
  EXPECT_EQ(t.insert("hello", "world"), common::Status::kInserted);
  EXPECT_EQ(t.insert("hello", "again"), common::Status::kUpdated) << "duplicate insert updates";
  std::string v;
  EXPECT_EQ(t.search("hello", &v), common::Status::kOk);
  EXPECT_EQ(v, "again");
  EXPECT_EQ(t.update("hello", "third"), common::Status::kOk);
  EXPECT_EQ(t.search("hello", &v), common::Status::kOk);
  EXPECT_EQ(v, "third");
  EXPECT_EQ(t.update("nothere", "x"), common::Status::kNotFound);
  EXPECT_EQ(t.remove("hello"), common::Status::kOk);
  EXPECT_EQ(t.search("hello", &v), common::Status::kNotFound);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FpTree, SplitsKeepEverythingFindable) {
  auto arena = make_arena();
  FpTree t(*arena);
  // Well past several leaf splits (48 slots per leaf).
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(t.insert("key" + std::to_string(i), "v" + std::to_string(i)), common::Status::kInserted);
  EXPECT_EQ(t.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    std::string v;
    EXPECT_EQ(t.search("key" + std::to_string(i), &v), common::Status::kOk) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
}

TEST(FpTree, FingerprintCollisionsAreDisambiguated) {
  // Many keys in one leaf; some will share a fingerprint byte. The key
  // comparison after the fp match must disambiguate.
  auto arena = make_arena();
  FpTree t(*arena);
  for (int i = 0; i < 40; ++i)
    t.insert("c" + std::to_string(i), "v" + std::to_string(i));
  for (int i = 0; i < 40; ++i) {
    std::string v;
    ASSERT_EQ(t.search("c" + std::to_string(i), &v), common::Status::kOk);
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  EXPECT_EQ(t.search("c40", nullptr), common::Status::kNotFound);
}

TEST(FpTree, RangeWalksTheLeafList) {
  auto arena = make_arena();
  FpTree t(*arena);
  std::map<std::string, std::string> ref;
  common::Rng rng(8);
  while (ref.size() < 500) {
    const std::string k = random_key(rng);
    ref[k] = "v" + k;
    t.insert(k, "v" + k);
  }
  std::vector<std::pair<std::string, std::string>> out;
  const std::string lo = std::next(ref.begin(), 100)->first;
  t.range(lo, 50, &out);
  ASSERT_EQ(out.size(), 50u);
  auto it = ref.lower_bound(lo);
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(FpTree, DifferentialFuzzAgainstMap) {
  auto arena = make_arena(128);
  FpTree t(*arena);
  std::map<std::string, std::string> ref;
  common::Rng rng(1001);
  for (int step = 0; step < 6000; ++step) {
    const std::string key = random_key(rng);
    const std::string val = "v" + std::to_string(step % 83);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        EXPECT_EQ(t.insert(key, val) == common::Status::kInserted,
                  ref.find(key) == ref.end()) << key;
        ref[key] = val;
        break;
      }
      case 2: {
        std::string v;
        const bool found = t.search(key, &v).ok();
        const auto it = ref.find(key);
        EXPECT_EQ(found, it != ref.end()) << key;
        if (found) {
          EXPECT_EQ(v, it->second);
        }
        break;
      }
      default:
        EXPECT_EQ(t.remove(key).ok(), ref.erase(key) == 1) << key;
        break;
    }
  }
  EXPECT_EQ(t.size(), ref.size());
}

TEST(FpTree, RecoveryRebuildsInnerNodes) {
  auto arena = make_arena();
  std::map<std::string, std::string> ref;
  {
    FpTree t(*arena);
    common::Rng rng(66);
    while (ref.size() < 3000) {
      const std::string k = random_key(rng);
      ref[k] = "v" + k;
      t.insert(k, "v" + k);
    }
  }
  FpTree t2(*arena);  // constructor runs recover()
  EXPECT_EQ(t2.size(), ref.size());
  for (const auto& [k, v] : ref) {
    std::string got;
    ASSERT_EQ(t2.search(k, &got), common::Status::kOk) << k;
    EXPECT_EQ(got, v);
  }
  // Ordered scan still works after rebuild.
  std::vector<std::pair<std::string, std::string>> out;
  t2.range(ref.begin()->first, 100, &out);
  ASSERT_EQ(out.size(), 100u);
  auto it = ref.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    ++it;
  }
}

TEST(FpTree, NoCoalescingKeepsLeavesAllocated) {
  auto arena = make_arena();
  FpTree t(*arena);
  for (int i = 0; i < 500; ++i) t.insert("k" + std::to_string(i), "v");
  const uint64_t pm_full = arena->stats().pm_live_bytes.load();
  for (int i = 0; i < 500; ++i) EXPECT_EQ(t.remove("k" + std::to_string(i)), common::Status::kOk);
  EXPECT_EQ(t.size(), 0u);
  // The out-of-leaf values are freed, but FPTree never coalesces or frees
  // leaves (paper Section IV.E): leaf bytes stay allocated.
  const uint64_t pm_after = arena->stats().pm_live_bytes.load();
  EXPECT_LT(pm_after, pm_full);
  EXPECT_GE(pm_after, sizeof(FpLeaf));
  EXPECT_EQ(pm_after % sizeof(FpLeaf), 0u) << "only whole leaves remain";
}

TEST(FpTree, CrashSweepDuringInsertsAndSplits) {
  std::vector<std::string> keys;
  {
    common::Rng rng(2024);
    std::map<std::string, int> uniq;
    while (uniq.size() < 400) uniq[random_key(rng, 10)] = 1;
    for (auto& [k, unused] : uniq) keys.push_back(k);
    common::Rng sh(12);
    for (size_t i = keys.size(); i > 1; --i)
      std::swap(keys[i - 1], keys[sh.next_below(i)]);
  }
  for (uint64_t crash_at = 1; crash_at <= 600; crash_at += 23) {
    auto arena = make_arena();
    size_t committed = 0;
    {
      FpTree t(*arena);
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          t.insert(k, "val");
          ++committed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    FpTree t2(*arena);  // finishes the split log + rebuilds inner nodes
    EXPECT_EQ(arena->root<uint64_t>()[2], 0u) << "split log must be clear";
    for (size_t i = 0; i < committed; ++i) {
      std::string v;
      EXPECT_EQ(t2.search(keys[i], &v), common::Status::kOk)
          << "crash_at=" << crash_at << " key=" << keys[i];
      EXPECT_EQ(v, "val");
    }
    // No duplicates after an interrupted split: count live entries.
    size_t live = t2.size();
    EXPECT_GE(live, committed);
    EXPECT_LE(live, committed + 1);  // +1 for a mid-operation commit
    for (const auto& k : keys) t2.insert(k, "v2");
    EXPECT_EQ(t2.size(), keys.size());
    for (const auto& k : keys) {
      std::string v;
      ASSERT_EQ(t2.search(k, &v), common::Status::kOk) << k;
      EXPECT_EQ(v, "v2");
    }
  }
}

}  // namespace
}  // namespace hart::fptree
