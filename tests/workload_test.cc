// Tests for workload generators: determinism, distinctness, size/length
// contracts, and mixed-op stream semantics.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workload/keygen.h"
#include "workload/mixes.h"

namespace hart::workload {
namespace {

TEST(Sequential, KeysAreDistinctOrderedFixedWidth) {
  const auto keys = make_sequential(5000, 8);
  EXPECT_EQ(keys.size(), 5000u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i].size(), 8u);
    if (i > 0) {
      EXPECT_LT(keys[i - 1], keys[i]);
    }
  }
}

TEST(Sequential, CarriesAcrossDigits) {
  const auto keys = make_sequential(63, 2);
  // After 62 increments the last digit wraps and the next digit advances.
  EXPECT_EQ(keys[0][0], keys[61][0]);
  EXPECT_NE(keys[0][0], keys[62][0]);
  EXPECT_EQ(keys[62][1], keys[0][1]);
}

TEST(Random, KeysMatchPaperSpec) {
  const auto keys = make_random(10000, 42);
  std::unordered_set<std::string> seen;
  for (const auto& k : keys) {
    EXPECT_GE(k.size(), 5u);
    EXPECT_LE(k.size(), 16u);
    for (const char c : k)
      EXPECT_TRUE((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                  (c >= '0' && c <= '9'))
          << k;
    EXPECT_TRUE(seen.insert(k).second) << "duplicate " << k;
  }
}

TEST(Random, SameSeedSameKeys) {
  EXPECT_EQ(make_random(1000, 7), make_random(1000, 7));
  EXPECT_NE(make_random(1000, 7), make_random(1000, 8));
}

TEST(Dictionary, WordsAreDistinctAlphabeticBounded) {
  const auto words = make_dictionary(20000);
  std::unordered_set<std::string> seen;
  for (const auto& w : words) {
    EXPECT_GE(w.size(), 2u);
    EXPECT_LE(w.size(), 24u);
    for (const char c : w) EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    EXPECT_TRUE(seen.insert(w).second);
  }
}

TEST(Dictionary, DefaultSizeMatchesPaper) {
  EXPECT_EQ(kDictionaryWords, 466544u);
}

TEST(Mixes, RatiosApproximatelyHold) {
  const auto ops = make_mixed_ops(100000, 1000, 200000, kReadIntensive, 3);
  size_t counts[4] = {0, 0, 0, 0};
  for (const auto& op : ops) ++counts[static_cast<int>(op.type)];
  EXPECT_NEAR(counts[0] / 1000.0, 10.0, 1.0);  // insert ~10%
  EXPECT_NEAR(counts[1] / 1000.0, 70.0, 1.0);  // search ~70%
  EXPECT_NEAR(counts[2] / 1000.0, 10.0, 1.0);  // update ~10%
  EXPECT_NEAR(counts[3] / 1000.0, 10.0, 1.0);  // delete ~10%
}

TEST(Mixes, ReadModifyWriteHasNoInsertsOrDeletes) {
  const auto ops = make_mixed_ops(50000, 1000, 60000, kReadModifyWrite, 5);
  for (const auto& op : ops)
    EXPECT_TRUE(op.type == OpType::kSearch || op.type == OpType::kUpdate);
}

TEST(Mixes, OpsOnlyTouchLiveKeys) {
  // Replay semantics: any search/update/delete targets a key that was
  // preloaded or inserted earlier and not yet deleted.
  const size_t preload = 500;
  const auto ops = make_mixed_ops(20000, preload, 50000, kReadIntensive, 9);
  std::set<uint32_t> live;
  for (uint32_t i = 0; i < preload; ++i) live.insert(i);
  for (const auto& op : ops) {
    switch (op.type) {
      case OpType::kInsert:
        EXPECT_TRUE(live.insert(op.key_idx).second)
            << "insert of an already-live key";
        break;
      case OpType::kDelete:
        EXPECT_EQ(live.erase(op.key_idx), 1u);
        break;
      default:
        EXPECT_TRUE(live.count(op.key_idx)) << "op on a dead key";
    }
  }
}

TEST(Mixes, InvalidSpecsThrow) {
  EXPECT_THROW(make_mixed_ops(10, 1, 100, MixSpec{"bad", 50, 30, 10, 5}, 1),
               std::invalid_argument);
  EXPECT_THROW(make_mixed_ops(10, 0, 100, kReadIntensive, 1),
               std::invalid_argument);
  // Pool too small for the insert stream:
  EXPECT_THROW(make_mixed_ops(100000, 10, 11, kWriteIntensive, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace hart::workload
