// Fingerprint-guard tests (Hart::Options::fingerprints): the one-byte key
// fingerprint rides in the tagged leaf pointer (DRAM) and HartLeaf::key_fp
// (PM). The guard must (a) never produce a false negative — a colliding
// fingerprint still resolves through the full key compare; (b) actually
// skip the PM key read on guarded misses; (c) survive a restart, with
// recovery repairing any corrupted persisted copy.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "art/art_tree.h"
#include "common/rng.h"
#include "hart/hart.h"
#include "hart/hart_leaf.h"
#include "hart/verify.h"
#include "obs/counters.h"

namespace hart::core {
namespace {

art::Key suffix_key(const std::string& key, uint32_t kh) {
  const size_t skip = kh < key.size() ? kh : key.size();
  return {reinterpret_cast<const uint8_t*>(key.data()) + skip,
          key.size() - skip};
}

/// Random NUL-free keys, 5..20 bytes, all distinct.
std::vector<std::string> random_keys(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::set<std::string> out;
  while (out.size() < n) {
    std::string key(5 + rng.next() % 16, '\0');
    for (auto& c : key) c = static_cast<char>('!' + rng.next() % 94);
    out.insert(std::move(key));
  }
  return {out.begin(), out.end()};
}

pmem::Arena::Options small_arena() {
  pmem::Arena::Options o;
  o.size = 32 << 20;
  return o;
}

TEST(HartFingerprint, FingerprintIsNeverZero) {
  // 0 is the "no fingerprint" sentinel in both the tagged pointer and the
  // persisted byte; the derivation must never collide with it.
  for (const auto& key : random_keys(5000, 17))
    EXPECT_NE(art::key_fingerprint(suffix_key(key, 0)), 0) << key;
  EXPECT_NE(art::key_fingerprint(art::Key{}), 0) << "empty suffix";
}

TEST(HartFingerprint, PersistedFingerprintsMatchDerivation) {
  pmem::Arena arena(small_arena());
  Hart h(arena);
  const auto keys = random_keys(500, 3);
  for (const auto& key : keys) ASSERT_TRUE(h.insert(key, "v").ok());
  size_t seen = 0;
  h.allocator().for_each_live(epalloc::ObjType::kLeaf, [&](uint64_t off) {
    const auto* leaf = arena.ptr<HartLeaf>(off);
    const std::string key(leaf->key, leaf->key_len);
    EXPECT_EQ(leaf->key_fp,
              art::key_fingerprint(suffix_key(key, h.hash_key_len())))
        << key;
    ++seen;
  });
  EXPECT_EQ(seen, keys.size());
  EXPECT_TRUE(verify_hart_image(arena).ok());
}

TEST(HartFingerprint, CollidingFingerprintResolvesViaFullCompare) {
  pmem::Arena arena(small_arena());
  Hart h(arena);
  // Brute-force a pair of distinct keys in the same partition (same first
  // kh bytes) whose ART-suffix fingerprints collide: the guard passes, and
  // only the full key compare may reject.
  const std::string base = "PPcollision-base";
  const uint8_t want = art::key_fingerprint(suffix_key(base, 2));
  std::string twin;
  for (uint64_t i = 0; twin.empty(); ++i) {
    std::string cand = "PPtwin-" + std::to_string(i);
    if (art::key_fingerprint(suffix_key(cand, 2)) == want) twin = cand;
  }
  ASSERT_TRUE(h.insert(base, "base-value").ok());

  auto& fp_counter =
      obs::Registry::instance().counter("hart_fp_false_positive_total");
  const uint64_t fps_before = fp_counter.value();
  std::string v;
  EXPECT_EQ(h.search(twin, &v).code(), common::Status::kNotFound);
  EXPECT_GE(fp_counter.value(), fps_before + 1)
      << "a colliding-fp miss is exactly the guard's false positive";

  ASSERT_TRUE(h.insert(twin, "twin-value").ok());
  ASSERT_TRUE(h.search(base, &v).ok());
  EXPECT_EQ(v, "base-value");
  ASSERT_TRUE(h.search(twin, &v).ok());
  EXPECT_EQ(v, "twin-value");
}

TEST(HartFingerprint, GuardSkipsPmKeyReadsOnMisses) {
  // Misses whose fingerprint differs from the resident leaf's must not
  // touch the PM key bytes at all; the unguarded tree reads them on every
  // miss to run the full compare.
  const std::string live = "QQresident-key";
  std::vector<std::string> probes;
  const uint8_t live_fp = art::key_fingerprint(suffix_key(live, 2));
  for (uint64_t i = 0; probes.size() < 200; ++i) {
    std::string cand = "QQprobe-" + std::to_string(i);
    if (art::key_fingerprint(suffix_key(cand, 2)) != live_fp)
      probes.push_back(std::move(cand));
  }

  auto miss_read_lines = [&](bool fingerprints) {
    pmem::Arena arena(small_arena());
    Hart::Options o;
    o.fingerprints = fingerprints;
    Hart h(arena, o);
    EXPECT_TRUE(h.insert(live, "v").ok());
    const uint64_t before =
        arena.stats().pm_read_lines.load(std::memory_order_relaxed);
    std::string v;
    for (const auto& p : probes)
      EXPECT_EQ(h.search(p, &v).code(), common::Status::kNotFound);
    return arena.stats().pm_read_lines.load(std::memory_order_relaxed) -
           before;
  };

  auto& skips =
      obs::Registry::instance().counter("hart_fp_skip_total");
  const uint64_t skips_before = skips.value();
  const uint64_t guarded = miss_read_lines(true);
  const uint64_t unguarded = miss_read_lines(false);
  EXPECT_EQ(guarded, 0u) << "guarded misses must skip PM entirely";
  EXPECT_GT(unguarded, 0u) << "unguarded misses pay the PM key read";
  EXPECT_GE(skips.value() - skips_before, probes.size());
}

TEST(HartFingerprint, OnOffParityOverMixedOps) {
  pmem::Arena a_on(small_arena());
  pmem::Arena a_off(small_arena());
  Hart::Options on;
  Hart::Options off;
  off.fingerprints = false;
  Hart h_on(a_on, on);
  Hart h_off(a_off, off);
  const auto keys = random_keys(800, 11);
  common::Rng rng(29);
  for (int step = 0; step < 4000; ++step) {
    const auto& key = keys[rng.next() % keys.size()];
    switch (rng.next() % 3) {
      case 0:
        EXPECT_EQ(h_on.insert(key, "v").code(),
                  h_off.insert(key, "v").code());
        break;
      case 1: {
        std::string v1, v2;
        EXPECT_EQ(h_on.search(key, &v1).code(),
                  h_off.search(key, &v2).code())
            << key;
        EXPECT_EQ(v1, v2);
        break;
      }
      default:
        EXPECT_EQ(h_on.remove(key).code(), h_off.remove(key).code());
        break;
    }
  }
  EXPECT_EQ(h_on.size(), h_off.size());
}

TEST(HartFingerprint, RestartPreservesAndRecoveryRepairsFingerprints) {
  const std::string path = testing::TempDir() + "hart_fp_restart.arena";
  std::filesystem::remove(path);
  auto file_arena = [&] {
    pmem::Arena::Options o;
    o.size = 32 << 20;
    o.file_path = path;
    return o;
  };
  const auto keys = random_keys(200, 23);
  {
    pmem::Arena arena(file_arena());
    Hart h(arena);
    for (const auto& key : keys) ASSERT_TRUE(h.insert(key, "v").ok());
    h.flush_epoch();
  }
  pmem::Arena arena(file_arena());
  ASSERT_TRUE(arena.reopened());
  Hart h(arena);  // recovery
  std::string v;
  for (const auto& key : keys) ASSERT_TRUE(h.search(key, &v).ok());

  // Corrupt one persisted fingerprint to a wrong nonzero value: the
  // verifier must flag it, and a recovery pass must repair it.
  uint64_t victim = 0;
  h.allocator().for_each_live(epalloc::ObjType::kLeaf,
                              [&](uint64_t off) { victim = off; });
  ASSERT_NE(victim, 0u);
  auto* leaf = arena.ptr<HartLeaf>(victim);
  const uint8_t good = leaf->key_fp;
  uint8_t bad = good ^ 0x5A;
  if (bad == 0) bad = 0xA5;
  leaf->key_fp = bad;
  EXPECT_FALSE(verify_hart_image(arena).ok());

  h.recover();
  EXPECT_EQ(leaf->key_fp, good);
  EXPECT_TRUE(verify_hart_image(arena).ok());
  for (const auto& key : keys) ASSERT_TRUE(h.search(key, &v).ok());
}

}  // namespace
}  // namespace hart::core
