// hartd service-layer tests: request routing, group-commit epoch acks,
// both transports (in-process and TCP loopback), pipelined completion,
// graceful shutdown, request validation, and PMCheck-cleanliness of the
// whole batched-persist path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.h"
#include "server/stats.h"
#include "server/tcp.h"

namespace hart::server {
namespace {

Hartd::Options small_opts(size_t shards) {
  Hartd::Options o;
  o.shards = shards;
  o.arena_mb = 32;
  return o;
}

TEST(HartdTest, ExecuteBasicOps) {
  Hartd db(small_opts(2));
  EXPECT_EQ(db.execute({OpCode::kPut, "alpha", "one"}).status, Status::kOk);
  EXPECT_EQ(db.execute({OpCode::kPut, "alpha", "two"}).status,
            Status::kUpdated);
  const Response got = db.execute({OpCode::kGet, "alpha", ""});
  EXPECT_EQ(got.status, Status::kOk);
  EXPECT_EQ(got.value, "two");
  EXPECT_EQ(db.execute({OpCode::kUpdate, "alpha", "three"}).status,
            Status::kOk);
  EXPECT_EQ(db.execute({OpCode::kUpdate, "missing", "x"}).status,
            Status::kNotFound);
  EXPECT_EQ(db.execute({OpCode::kDelete, "alpha", ""}).status, Status::kOk);
  EXPECT_EQ(db.execute({OpCode::kGet, "alpha", ""}).status,
            Status::kNotFound);
  EXPECT_EQ(db.execute({OpCode::kPing, "p", ""}).status, Status::kOk);
  EXPECT_EQ(db.total_size(), 0u);
}

TEST(HartdTest, KeysRouteToStableShards) {
  Hartd db(small_opts(4));
  for (int i = 0; i < 200; ++i) {
    const std::string key = "route-" + std::to_string(i);
    EXPECT_EQ(db.shard_of(key), db.shard_of(key));
    EXPECT_LT(db.shard_of(key), db.shard_count());
    EXPECT_EQ(db.execute({OpCode::kPut, key, "v"}).status, Status::kOk);
  }
  EXPECT_EQ(db.total_size(), 200u);
  size_t nonempty = 0;
  for (size_t i = 0; i < db.shard_count(); ++i)
    nonempty += db.shard(i).hart().size() > 0 ? 1 : 0;
  EXPECT_GT(nonempty, 1u) << "FNV routing put every key on one shard";
}

TEST(HartdTest, WriteAcksCarryTheirEpoch) {
  Hartd db(small_opts(1));
  const Response w1 = db.execute({OpCode::kPut, "e1", "v"});
  EXPECT_EQ(w1.status, Status::kOk);
  EXPECT_GE(w1.epoch, 1u);
  const Response w2 = db.execute({OpCode::kPut, "e2", "v"});
  EXPECT_GT(w2.epoch, w1.epoch);  // a later batch fences a later epoch
  // Reads do not fence and carry no epoch.
  EXPECT_EQ(db.execute({OpCode::kGet, "e1", ""}).epoch, 0u);
}

TEST(HartdTest, GroupCommitAmortizesFences) {
  Hartd::Options o = small_opts(1);
  o.batch_size = 16;
  Hartd db(o);
  Client cl(db);
  std::deque<uint64_t> ids;
  for (int i = 0; i < 128; ++i)
    ids.push_back(cl.send({OpCode::kPut, "gc-" + std::to_string(i), "v"}));
  for (const uint64_t id : ids)
    EXPECT_EQ(cl.wait(id).status, Status::kOk);
  const auto& st = db.shard(0).stats();
  EXPECT_EQ(st.write_acks.load(), 128u);
  // Pipelined submission must have batched: far fewer fences than writes.
  EXPECT_LT(st.epochs.load(), 128u);
  EXPECT_GE(st.epochs.load(), st.batches.load() > 0 ? 1u : 0u);
}

TEST(ClientTest, SyncApiInProcess) {
  Hartd db(small_opts(2));
  Client cl(db);
  EXPECT_EQ(cl.put("k", "v").status, Status::kOk);
  const Response r = cl.get("k");
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.value, "v");
  EXPECT_EQ(cl.update("k", "w").status, Status::kOk);
  EXPECT_EQ(cl.get("k").value, "w");
  EXPECT_EQ(cl.del("k").status, Status::kOk);
  EXPECT_EQ(cl.get("k").status, Status::kNotFound);
  EXPECT_EQ(cl.ping().status, Status::kOk);
}

TEST(ClientTest, PipelinedCompletesOutOfOrder) {
  Hartd db(small_opts(4));
  Client cl(db);
  std::vector<uint64_t> ids;
  ids.reserve(256);
  for (int i = 0; i < 256; ++i)
    ids.push_back(cl.send({OpCode::kPut, "p" + std::to_string(i), "v"}));
  // Wait in reverse submission order: the id correlation must not care.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it)
    EXPECT_EQ(cl.wait(*it).status, Status::kOk);
  EXPECT_EQ(cl.outstanding(), 0u);
  EXPECT_EQ(db.total_size(), 256u);
}

TEST(ClientTest, TcpRoundTrip) {
  Hartd db(small_opts(2));
  TcpServer tcp(db, 0);  // ephemeral port
  ASSERT_NE(tcp.port(), 0);
  Client cl("127.0.0.1", tcp.port());
  ASSERT_TRUE(cl.connected());
  EXPECT_EQ(cl.put("net-key", "net-value").status, Status::kOk);
  const Response r = cl.get("net-key");
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.value, "net-value");

  std::deque<uint64_t> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(cl.send({OpCode::kPut, "tcp-" + std::to_string(i), "v"}));
  for (const uint64_t id : ids)
    EXPECT_EQ(cl.wait(id).status, Status::kOk);
  EXPECT_EQ(db.total_size(), 101u);
  tcp.stop();
}

TEST(ClientTest, ConcurrentClientsDisjointKeys) {
  Hartd db(small_opts(4));
  constexpr int kClients = 4;
  constexpr int kPerClient = 500;
  std::vector<std::thread> pool;
  for (int c = 0; c < kClients; ++c) {
    pool.emplace_back([&db, c] {
      Client cl(db);
      std::deque<uint64_t> ids;
      for (int i = 0; i < kPerClient; ++i) {
        ids.push_back(cl.send({OpCode::kPut,
                               "c" + std::to_string(c) + "-" +
                                   std::to_string(i),
                               "v" + std::to_string(c)}));
        if (ids.size() >= 32) {
          EXPECT_EQ(cl.wait(ids.front()).status, Status::kOk);
          ids.pop_front();
        }
      }
      while (!ids.empty()) {
        EXPECT_EQ(cl.wait(ids.front()).status, Status::kOk);
        ids.pop_front();
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(db.total_size(),
            static_cast<size_t>(kClients) * kPerClient);
  Client check(db);
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(check.get("c" + std::to_string(c) + "-0").value,
              "v" + std::to_string(c));
}

TEST(HartdTest, ShutdownDrainsEveryAck) {
  Hartd db(small_opts(2));
  std::atomic<int> acked{0};
  constexpr int kInflight = 300;
  for (int i = 0; i < kInflight; ++i)
    db.submit({OpCode::kPut, "drain-" + std::to_string(i), "v"},
              [&acked](Response r) {
                EXPECT_TRUE(r.status == Status::kOk ||
                            r.status == Status::kShuttingDown);
                acked.fetch_add(1);
              });
  db.shutdown();
  // Drain guarantee: every submitted request was acked before shutdown()
  // returned — no callback is dropped on the floor.
  EXPECT_EQ(acked.load(), kInflight);
  // After shutdown, submission fails fast with an immediate ack.
  bool immediate = false;
  EXPECT_FALSE(db.submit({OpCode::kPut, "late", "v"}, [&immediate](Response r) {
    EXPECT_EQ(r.status, Status::kShuttingDown);
    immediate = true;
  }));
  EXPECT_TRUE(immediate);
}

TEST(HartdTest, BadRequestsAreRejectedNotFatal) {
  Hartd db(small_opts(2));
  const std::string nul_key{"a\0b", 3};
  EXPECT_EQ(db.execute({OpCode::kPut, nul_key, "v"}).status,
            Status::kBadRequest);
  EXPECT_EQ(db.execute({OpCode::kPut, std::string(64, 'k'), "v"}).status,
            Status::kBadRequest);  // key > kMaxKeyLen
  EXPECT_EQ(db.execute({OpCode::kPut, "ok", ""}).status,
            Status::kBadRequest);  // empty value
  // The shard is still healthy afterwards.
  EXPECT_EQ(db.execute({OpCode::kPut, "ok", "v"}).status, Status::kOk);
  EXPECT_EQ(db.total_size(), 1u);
}

TEST(HartdTest, MgetBatchesAcrossShards) {
  Hartd db(small_opts(4));
  Client cl(db);
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back("mg-" + std::to_string(i));
    ASSERT_EQ(cl.put(keys.back(), "v" + std::to_string(i)).status,
              Status::kOk);
  }
  // Mix in misses and an invalid key: both are plain per-entry misses.
  keys.push_back("absent");
  keys.push_back(std::string("x\0y", 3));
  std::vector<std::string> vals;
  std::vector<bool> found;
  EXPECT_EQ(cl.multi_get(keys, &vals, &found), 100u);
  ASSERT_EQ(vals.size(), keys.size());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(found[i]) << keys[i];
    EXPECT_EQ(vals[i], "v" + std::to_string(i));
  }
  EXPECT_FALSE(found[100]);
  EXPECT_FALSE(found[101]);
  // The batch was dispatcher-served, never queued into a shard.
  EXPECT_GE(db.fastpath_reads(), 1u);
}

TEST(HartdTest, ScanMergesShardsInKeyOrder) {
  Hartd db(small_opts(4));
  Client cl(db);
  for (int i = 0; i < 200; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "sc-%03d", i);
    ASSERT_EQ(cl.put(buf, "v").status, Status::kOk);
  }
  std::vector<std::pair<std::string, std::string>> out;
  // Keys are hash-partitioned over 4 shards, so an ordered scan exercises
  // the dispatcher-side merge.
  EXPECT_EQ(cl.scan("sc-050", 25, &out), 25u);
  ASSERT_EQ(out.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "sc-%03d", 50 + i);
    EXPECT_EQ(out[i].first, buf);
  }
  // Limit past the tail clips to what exists.
  EXPECT_EQ(cl.scan("sc-190", 100, &out), 10u);
  // An invalid start key is rejected, not fatal.
  EXPECT_EQ(cl.scan(std::string("a\0b", 3), 10, &out), 0u);
  EXPECT_EQ(cl.scan("", 10, &out), 0u);
}

TEST(HartdTest, MgetAndScanWorkOverTcp) {
  Hartd db(small_opts(2));
  TcpServer tcp(db, 0);
  Client cl("127.0.0.1", tcp.port());
  std::vector<std::string> keys;
  for (int i = 0; i < 32; ++i) {
    keys.push_back("net-" + std::to_string(100 + i));
    ASSERT_EQ(cl.put(keys.back(), "w" + std::to_string(i)).status,
              Status::kOk);
  }
  std::vector<std::string> vals;
  std::vector<bool> found;
  EXPECT_EQ(cl.multi_get(keys, &vals, &found), keys.size());
  EXPECT_EQ(vals[5], "w5");
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(cl.scan("net-110", 8, &out), 8u);
  EXPECT_EQ(out.front().first, "net-110");
  EXPECT_EQ(out.back().first, "net-117");
  tcp.stop();
}

TEST(HartdTest, RwlockReadsModeDisablesGetFastpath) {
  Hartd::Options o = small_opts(2);
  o.hart.rwlock_reads = true;  // the read-locking ablation
  Hartd db(o);
  Client cl(db);
  ASSERT_EQ(cl.put("k", "v").status, Status::kOk);
  EXPECT_EQ(cl.get("k").value, "v");
  // Point reads went through the shard queues, not the dispatcher.
  EXPECT_EQ(db.fastpath_reads(), 0u);
  // Batch reads are still served (locked reads are thread-safe).
  std::vector<std::string> vals;
  std::vector<bool> found;
  EXPECT_EQ(cl.multi_get({"k", "missing"}, &vals, &found), 1u);
  EXPECT_TRUE(found[0]);
  EXPECT_FALSE(found[1]);
}

TEST(HartdTest, BatchedPersistPathIsPmCheckClean) {
  Hartd::Options o = small_opts(2);
  o.check = true;  // PMCheck shadows every shard arena
  Hartd db(o);
  {
    Client cl(db);
    std::deque<uint64_t> ids;
    for (int i = 0; i < 400; ++i) {
      const std::string k = "chk-" + std::to_string(i);
      ids.push_back(cl.send({OpCode::kPut, k, "v1"}));
      ids.push_back(cl.send({OpCode::kUpdate, k, "v2"}));
      ids.push_back(cl.send({OpCode::kGet, k, ""}));
      if (i % 3 == 0) ids.push_back(cl.send({OpCode::kDelete, k, ""}));
      while (ids.size() >= 64) {
        cl.wait(ids.front());
        ids.pop_front();
      }
    }
    cl.wait_all();
  }
  db.shutdown();
  for (size_t i = 0; i < db.shard_count(); ++i) {
    const pmcheck::Report rep = db.shard(i).arena().pm_report();
    EXPECT_EQ(rep.total(), 0u) << "shard " << i << ":\n" << rep.to_string();
  }
}

TEST(HartdStats, StatsOpCountsEveryAckedOpExactly) {
  // The per-instance shard counters (not the process-global registry,
  // which other tests in this binary also bump) must equal the number of
  // acked ops — and the STATS op itself must never perturb them.
  Hartd db(small_opts(2));
  Client cli(db);

  constexpr int kPuts = 300;
  uint64_t acked = 0;
  for (int i = 0; i < kPuts; ++i)
    if (is_acked_write(cli.put("stat-" + std::to_string(i), "v").status))
      ++acked;
  for (int i = 0; i < 50; ++i)
    if (cli.get("stat-" + std::to_string(i)).status == Status::kOk) ++acked;
  ASSERT_EQ(acked, kPuts + 50u);

  auto shard_ops = [&db] {
    uint64_t n = 0;
    for (size_t s = 0; s < db.shard_count(); ++s)
      n += db.shard(s).stats().ops.load();
    return n;
  };
  // Writes applied by shard workers; reads served on the dispatcher fast
  // path. Together they account for every acked op exactly.
  EXPECT_EQ(shard_ops(), static_cast<uint64_t>(kPuts));
  EXPECT_EQ(db.fastpath_reads(), 50u);
  EXPECT_EQ(shard_ops() + db.fastpath_reads(), acked);

  // STATS is answered by the dispatcher, not routed to a shard: the op
  // counter must not move, and the payload must carry the right total.
  std::string st;
  ASSERT_EQ(cli.stats(&st), common::Status::kOk);
  EXPECT_EQ(shard_ops() + db.fastpath_reads(), acked);
  EXPECT_NE(st.find("hartd_fastpath_reads_total 50\n"),
            std::string::npos);
  EXPECT_NE(st.find("hartd_ops_total " + std::to_string(acked) + "\n"),
            std::string::npos)
      << st.substr(0, 2000);
  EXPECT_NE(st.find("# TYPE hartd_ops_total counter"), std::string::npos);
  // Per-op latency summaries: every put and get above was timed.
  EXPECT_NE(st.find("hartd_op_latency_ns"), std::string::npos);
  EXPECT_NE(st.find("op=\"insert\""), std::string::npos);

  // JSON variant parses the same totals and the scrape stays monotonic.
  std::string js;
  ASSERT_EQ(cli.stats(&js, "json"), common::Status::kOk);
  EXPECT_NE(js.find("\"hartd_ops_total\":" + std::to_string(acked)),
            std::string::npos)
      << js.substr(0, 2000);
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
}

TEST(HartdStats, StatsWorksOverTcpAndAfterMoreWrites) {
  Hartd db(small_opts(2));
  TcpServer tcp(db, 0);
  Client cli("127.0.0.1", tcp.port());
  for (int i = 0; i < 64; ++i)
    ASSERT_TRUE(is_acked_write(cli.put("t-" + std::to_string(i), "v").status));
  std::string a;
  ASSERT_EQ(cli.stats(&a), common::Status::kOk);
  EXPECT_NE(a.find("hartd_ops_total 64\n"), std::string::npos);

  for (int i = 0; i < 36; ++i)
    ASSERT_TRUE(is_acked_write(cli.put("u-" + std::to_string(i), "v").status));
  std::string b;
  ASSERT_EQ(cli.stats(&b), common::Status::kOk);
  EXPECT_NE(b.find("hartd_ops_total 100\n"), std::string::npos)
      << "ops total not monotonic across scrapes";
  EXPECT_NE(b.find("hartd_live_keys 100\n"), std::string::npos);
}

}  // namespace
}  // namespace hart::server
