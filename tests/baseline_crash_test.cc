// Crash-point sweeps over the baselines' update paths and under the
// cache-eviction crash model, complementing the per-tree insert/remove
// sweeps. Update commits are single 8-byte pointer swings in all three
// baselines, so after any crash a key must hold either its old or its new
// value, never a torn one.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "artcow/artcow.h"
#include "common/index.h"
#include "fptree/fptree.h"
#include "pmem/arena.h"
#include "woart/woart.h"
#include "woart/wort.h"
#include "workload/keygen.h"

namespace hart {
namespace {

struct Factory {
  const char* name;
  std::function<std::unique_ptr<common::Index>(pmem::Arena&)> make;
};
const Factory kFactories[] = {
    {"WOART",
     [](pmem::Arena& a) { return std::make_unique<pmart::Woart>(a); }},
    {"ARTCoW",
     [](pmem::Arena& a) { return std::make_unique<pmart::ArtCow>(a); }},
    {"FPTree",
     [](pmem::Arena& a) { return std::make_unique<fptree::FpTree>(a); }},
    {"WORT",
     [](pmem::Arena& a) { return std::make_unique<pmart::Wort>(a); }},
};

std::unique_ptr<pmem::Arena> make_arena(double eviction = 0.0,
                                        uint64_t seed = 1) {
  pmem::Arena::Options o;
  o.size = size_t{64} << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  o.eviction_prob = eviction;
  o.crash_seed = seed;
  return std::make_unique<pmem::Arena>(o);
}

class BaselineCrash : public ::testing::TestWithParam<size_t> {};

TEST_P(BaselineCrash, UpdateSweepIsAtomic) {
  const auto& factory = kFactories[GetParam()];
  const auto keys = workload::make_random(120, 5, 4, 10);
  for (uint64_t crash_at = 1; crash_at <= 120; crash_at += 9) {
    auto arena = make_arena();
    size_t updated = 0;
    {
      auto t = factory.make(*arena);
      for (const auto& k : keys) t->insert(k, "old-value");
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          t->update(k, "new-value");
          ++updated;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    auto t2 = factory.make(*arena);  // re-open (reachability recovery)
    EXPECT_EQ(t2->size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      std::string v;
      ASSERT_EQ(t2->search(keys[i], &v), common::Status::kOk)
          << factory.name << " crash_at=" << crash_at << " " << keys[i];
      if (i < updated)
        EXPECT_EQ(v, "new-value") << factory.name << " " << keys[i];
      else if (i > updated)
        EXPECT_EQ(v, "old-value") << factory.name << " " << keys[i];
      else
        EXPECT_TRUE(v == "old-value" || v == "new-value")
            << "torn update: " << v;
    }
  }
}

TEST_P(BaselineCrash, InsertSweepWithEviction) {
  // Cache-eviction crash model: dirty lines may persist out of order. The
  // commit protocols must hold regardless.
  const auto& factory = kFactories[GetParam()];
  const auto keys = workload::make_random(200, 9, 4, 10);
  for (uint64_t crash_at = 5; crash_at <= 260; crash_at += 21) {
    auto arena = make_arena(0.5, crash_at * 7);
    size_t committed = 0;
    {
      auto t = factory.make(*arena);
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          t->insert(k, "val");
          ++committed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    auto t2 = factory.make(*arena);
    for (size_t i = 0; i < committed; ++i) {
      std::string v;
      ASSERT_EQ(t2->search(keys[i], &v), common::Status::kOk)
          << factory.name << " crash_at=" << crash_at << " " << keys[i];
      EXPECT_EQ(v, "val");
    }
    // Fully usable afterwards.
    for (const auto& k : keys) t2->insert(k, "val2");
    EXPECT_EQ(t2->size(), keys.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Trees, BaselineCrash, ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return kFactories[info.param].name;
                         });

}  // namespace
}  // namespace hart
