// Tests for the log-bucketed latency histogram.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"

namespace hart::common {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(50), 0u);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.mean_ns(), 1000.0);
  // Bucket resolution is ~1/16: the p50 bucket floor is within 7% below.
  EXPECT_GE(h.percentile_ns(50), 930u);
  EXPECT_LE(h.percentile_ns(50), 1000u);
}

TEST(Histogram, PercentilesAreMonotonic) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.record(100 + rng.next_below(1000000));
  uint64_t prev = 0;
  for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
    const uint64_t v = h.percentile_ns(p);
    EXPECT_GE(v, prev) << p;
    prev = v;
  }
}

TEST(Histogram, UniformPercentilesApproximatelyCorrect) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) h.record(rng.next_below(1000000));
  // p50 of U[0,1e6) is 5e5; bucket resolution ~6%.
  EXPECT_NEAR(static_cast<double>(h.percentile_ns(50)), 5e5, 5e4);
  EXPECT_NEAR(static_cast<double>(h.percentile_ns(90)), 9e5, 9e4);
  EXPECT_NEAR(h.mean_ns(), 5e5, 2e4);
}

TEST(Histogram, TinyValuesExactBuckets) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.percentile_ns(0), 0u);
  EXPECT_EQ(h.percentile_ns(100), 15u);
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a, b;
  for (int i = 0; i < 1000; ++i) a.record(100);
  for (int i = 0; i < 1000; ++i) b.record(10000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_NEAR(a.mean_ns(), 5050.0, 1.0);
  EXPECT_LE(a.percentile_ns(25), 100u);
  EXPECT_GT(a.percentile_ns(75), 9000u);
}

TEST(Histogram, HugeValuesSaturateLastBucket) {
  LatencyHistogram h;
  h.record(~uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.percentile_ns(100), 0u);
}

}  // namespace
}  // namespace hart::common
