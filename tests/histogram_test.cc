// Tests for the log-bucketed latency histogram.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"

namespace hart::common {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(50), 0u);
}

TEST(Histogram, EmptyPercentilesBundleIsAllZero) {
  // The stage-attribution histograms are scraped even when a shard is
  // idle, so the whole percentiles() bundle must be well-defined zeros on
  // zero samples — no NaNs, no garbage tails.
  LatencyHistogram h;
  const Percentiles p = h.percentiles();
  EXPECT_EQ(p.count, 0u);
  EXPECT_EQ(p.mean_ns, 0.0);
  EXPECT_EQ(p.min_ns, 0u);
  EXPECT_EQ(p.max_ns, 0u);
  EXPECT_EQ(p.p50_ns, 0u);
  EXPECT_EQ(p.p95_ns, 0u);
  EXPECT_EQ(p.p99_ns, 0u);
  EXPECT_EQ(p.p999_ns, 0u);
  EXPECT_EQ(h.sum_ns(), 0u);

  // Merging an empty histogram into an empty one stays empty.
  LatencyHistogram other;
  h.merge(other);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentiles().p999_ns, 0u);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.mean_ns(), 1000.0);
  // Bucket resolution is ~1/16: the p50 bucket floor is within 7% below.
  EXPECT_GE(h.percentile_ns(50), 930u);
  EXPECT_LE(h.percentile_ns(50), 1000u);
}

TEST(Histogram, PercentilesAreMonotonic) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.record(100 + rng.next_below(1000000));
  uint64_t prev = 0;
  for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
    const uint64_t v = h.percentile_ns(p);
    EXPECT_GE(v, prev) << p;
    prev = v;
  }
}

TEST(Histogram, UniformPercentilesApproximatelyCorrect) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) h.record(rng.next_below(1000000));
  // p50 of U[0,1e6) is 5e5; bucket resolution ~6%.
  EXPECT_NEAR(static_cast<double>(h.percentile_ns(50)), 5e5, 5e4);
  EXPECT_NEAR(static_cast<double>(h.percentile_ns(90)), 9e5, 9e4);
  EXPECT_NEAR(h.mean_ns(), 5e5, 2e4);
}

TEST(Histogram, TinyValuesExactBuckets) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.percentile_ns(0), 0u);
  EXPECT_EQ(h.percentile_ns(100), 15u);
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a, b;
  for (int i = 0; i < 1000; ++i) a.record(100);
  for (int i = 0; i < 1000; ++i) b.record(10000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_NEAR(a.mean_ns(), 5050.0, 1.0);
  EXPECT_LE(a.percentile_ns(25), 100u);
  EXPECT_GT(a.percentile_ns(75), 9000u);
}

TEST(Histogram, HugeValuesSaturateLastBucket) {
  LatencyHistogram h;
  h.record(~uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.percentile_ns(100), 0u);
}

TEST(Histogram, MergeIsAssociative) {
  // (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) must agree bucket-for-bucket — hartd
  // merges per-batch → per-shard → per-scrape in that order, the bench
  // merges per-thread → total, and both must report the same numbers.
  Rng rng(42);
  LatencyHistogram a, b, c;
  for (int i = 0; i < 5000; ++i) a.record(10 + rng.next_below(1000));
  for (int i = 0; i < 5000; ++i) b.record(1000 + rng.next_below(100000));
  for (int i = 0; i < 5000; ++i) c.record(rng.next_below(50));

  LatencyHistogram left_a = a;  // (a + b) + c
  left_a.merge(b);
  left_a.merge(c);
  LatencyHistogram bc = b;  // a + (b + c)
  bc.merge(c);
  LatencyHistogram right_a = a;
  right_a.merge(bc);

  EXPECT_EQ(left_a.count(), right_a.count());
  EXPECT_EQ(left_a.sum_ns(), right_a.sum_ns());
  EXPECT_EQ(left_a.min_ns(), right_a.min_ns());
  EXPECT_EQ(left_a.max_ns(), right_a.max_ns());
  for (const double p : {1.0, 50.0, 95.0, 99.0, 99.9})
    EXPECT_EQ(left_a.percentile_ns(p), right_a.percentile_ns(p)) << p;
}

TEST(Histogram, MinMaxTrackedThroughMerge) {
  LatencyHistogram a, b;
  a.record(500);
  a.record(700);
  b.record(100);
  b.record(90000);
  EXPECT_EQ(a.min_ns(), 500u);
  EXPECT_EQ(a.max_ns(), 700u);
  a.merge(b);
  EXPECT_EQ(a.min_ns(), 100u);
  EXPECT_EQ(a.max_ns(), 90000u);
  // Merging an empty histogram must not disturb min/max.
  a.merge(LatencyHistogram{});
  EXPECT_EQ(a.min_ns(), 100u);
  EXPECT_EQ(a.max_ns(), 90000u);
}

TEST(Histogram, PercentilesBundleMatchesDirectQueries) {
  LatencyHistogram h;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) h.record(100 + rng.next_below(100000));
  const Percentiles p = h.percentiles();
  EXPECT_EQ(p.count, h.count());
  EXPECT_EQ(p.mean_ns, h.mean_ns());
  EXPECT_EQ(p.min_ns, h.min_ns());
  EXPECT_EQ(p.max_ns, h.max_ns());
  EXPECT_EQ(p.p50_ns, h.percentile_ns(50));
  EXPECT_EQ(p.p95_ns, h.percentile_ns(95));
  EXPECT_EQ(p.p99_ns, h.percentile_ns(99));
  EXPECT_EQ(p.p999_ns, h.percentile_ns(99.9));
  EXPECT_LE(p.min_ns, p.p50_ns);
  EXPECT_LE(p.p50_ns, p.p99_ns);
  EXPECT_LE(p.p99_ns, p.max_ns);
}

TEST(Histogram, ResetClearsInPlace) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(12345);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ns(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.percentile_ns(99), 0u);
  h.record(777);  // reusable after reset
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min_ns(), 777u);
}

}  // namespace
}  // namespace hart::common
