// Unit tests for EPallocator: chunk header encoding, two-phase allocation,
// chunk-list growth, recycling with the recycle log, stale-value
// reclamation, and structural recovery.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "epalloc/epalloc.h"
#include "pmem/arena.h"

namespace hart::epalloc {
namespace {

// A stand-in leaf: first 8 bytes act as p_value, next byte as class tag —
// mirrors HART's probe contract without depending on the hart module.
struct FakeLeaf {
  uint64_t p_value;
  uint8_t val_class;
  uint8_t pad[31];
};
static_assert(sizeof(FakeLeaf) == 40);

EPAllocator::LeafValueRef fake_probe(const pmem::Arena& a,
                                     uint64_t leaf_off) {
  const auto* l = a.ptr<FakeLeaf>(leaf_off);
  return {l->p_value,
          l->val_class == 0 ? ObjType::kValue8 : ObjType::kValue16};
}
void fake_clear(pmem::Arena& a, uint64_t leaf_off) {
  a.ptr<FakeLeaf>(leaf_off)->p_value = 0;
  a.persist(a.ptr<FakeLeaf>(leaf_off), 8);
}

struct Root {
  uint64_t magic;
  EPRoot ep;
};

class EPAllocTest : public ::testing::Test {
 protected:
  EPAllocTest() {
    pmem::Arena::Options o;
    o.size = 32 << 20;
    o.shadow = true;
    o.charge_alloc_persist = false;
    arena_ = std::make_unique<pmem::Arena>(o);
    make_alloc();
  }
  void make_alloc() {
    ep_ = std::make_unique<EPAllocator>(*arena_,
                                        &arena_->root<Root>()->ep,
                                        sizeof(FakeLeaf), &fake_probe,
                                        &fake_clear);
  }
  std::unique_ptr<pmem::Arena> arena_;
  std::unique_ptr<EPAllocator> ep_;
};

TEST(ChunkHdr, RoundTripsFields) {
  const uint64_t w = ChunkHdr::make(0x00FF00FF00FFULL, 13, kIndAvailable);
  EXPECT_EQ(ChunkHdr::bitmap(w), 0x00FF00FF00FFULL);
  EXPECT_EQ(ChunkHdr::next_free(w), 13u);
  EXPECT_EQ(ChunkHdr::indicator(w), kIndAvailable);
}

TEST(ChunkHdr, WithBitSetsFullIndicatorAtCapacity) {
  uint64_t w = ChunkHdr::make(0, 0, kIndAvailable);
  for (uint32_t i = 0; i < kObjectsPerChunk; ++i) {
    EXPECT_FALSE(ChunkHdr::full(w));
    EXPECT_EQ(ChunkHdr::next_free(w), i);
    w = ChunkHdr::with_bit(w, i, true);
  }
  EXPECT_TRUE(ChunkHdr::full(w));
  EXPECT_EQ(ChunkHdr::bitmap(w), kBitmapMask);
  w = ChunkHdr::with_bit(w, 20, false);
  EXPECT_FALSE(ChunkHdr::full(w));
  EXPECT_EQ(ChunkHdr::next_free(w), 20u);
}

TEST(TypeGeometry, StridesArePowerOfTwoAndContainChunk) {
  for (uint32_t sz : {8u, 16u, 40u, 48u, 64u}) {
    const auto g = TypeGeometry::for_obj_size(sz);
    EXPECT_EQ(g.chunk_bytes, 16 + uint64_t{sz} * 56);
    EXPECT_GE(g.stride, g.chunk_bytes);
    EXPECT_EQ(g.stride & (g.stride - 1), 0u);
  }
}

TEST(TypeGeometry, ChunkOfAndIndexOfInvertObjectOff) {
  const auto g = TypeGeometry::for_obj_size(40);
  const uint64_t chunk = 13 * g.stride;
  for (uint32_t i = 0; i < kObjectsPerChunk; ++i) {
    const uint64_t obj = g.object_off(chunk, i);
    EXPECT_EQ(g.chunk_of(obj), chunk);
    EXPECT_EQ(g.index_of(obj), i);
  }
}

TEST_F(EPAllocTest, FirstMallocCreatesOneChunk) {
  EXPECT_EQ(ep_->chunk_count(ObjType::kLeaf), 0u);
  const uint64_t o = ep_->ep_malloc(ObjType::kLeaf);
  EXPECT_NE(o, 0u);
  EXPECT_EQ(ep_->chunk_count(ObjType::kLeaf), 1u);
  // Reserved, not yet committed:
  EXPECT_FALSE(ep_->bit_is_set(ObjType::kLeaf, o));
  ep_->commit(ObjType::kLeaf, o);
  EXPECT_TRUE(ep_->bit_is_set(ObjType::kLeaf, o));
  EXPECT_TRUE(ep_->bit_probe(ObjType::kLeaf, o));
}

TEST_F(EPAllocTest, FiftySevenThMallocOpensSecondChunk) {
  std::set<uint64_t> offs;
  for (uint32_t i = 0; i < kObjectsPerChunk; ++i) {
    const uint64_t o = ep_->ep_malloc(ObjType::kValue8);
    ep_->commit(ObjType::kValue8, o);
    EXPECT_TRUE(offs.insert(o).second);
  }
  EXPECT_EQ(ep_->chunk_count(ObjType::kValue8), 1u);
  const uint64_t o = ep_->ep_malloc(ObjType::kValue8);
  EXPECT_TRUE(offs.insert(o).second);
  EXPECT_EQ(ep_->chunk_count(ObjType::kValue8), 2u);
}

TEST_F(EPAllocTest, ReservationsPreventDoubleHandout) {
  const uint64_t a = ep_->ep_malloc(ObjType::kLeaf);
  const uint64_t b = ep_->ep_malloc(ObjType::kLeaf);
  EXPECT_NE(a, b) << "uncommitted reservation must not be re-issued";
  ep_->release(ObjType::kLeaf, a);
  const uint64_t c = ep_->ep_malloc(ObjType::kLeaf);
  EXPECT_EQ(c, a) << "released slot is the first free again";
}

TEST_F(EPAllocTest, FreeObjectMakesSlotAvailable) {
  const uint64_t o = ep_->ep_malloc(ObjType::kValue16);
  ep_->commit(ObjType::kValue16, o);
  // Occupy a second slot so the chunk is not recycled by emptiness checks.
  const uint64_t keep = ep_->ep_malloc(ObjType::kValue16);
  ep_->commit(ObjType::kValue16, keep);
  ep_->free_object(ObjType::kValue16, o);
  EXPECT_FALSE(ep_->bit_is_set(ObjType::kValue16, o));
  EXPECT_EQ(ep_->ep_malloc(ObjType::kValue16), o);
}

TEST_F(EPAllocTest, RecycleFreesEmptyChunkAndKeepsListConsistent) {
  // Fill two chunks of values.
  std::vector<uint64_t> offs;
  for (uint32_t i = 0; i < kObjectsPerChunk * 2; ++i) {
    const uint64_t o = ep_->ep_malloc(ObjType::kValue8);
    ep_->commit(ObjType::kValue8, o);
    offs.push_back(o);
  }
  EXPECT_EQ(ep_->chunk_count(ObjType::kValue8), 2u);
  const auto& g = ep_->geom(ObjType::kValue8);
  // Empty the *first allocated* chunk (it is the list tail after the head
  // push of chunk 2).
  const uint64_t tail_chunk = g.chunk_of(offs.front());
  for (const uint64_t o : offs) {
    if (g.chunk_of(o) == tail_chunk) {
      ep_->free_object(ObjType::kValue8, o);
    }
  }
  ep_->recycle_chunk_of(ObjType::kValue8, offs.front());
  EXPECT_EQ(ep_->chunk_count(ObjType::kValue8), 1u);
  EXPECT_FALSE(arena_->is_allocated(tail_chunk, g.chunk_bytes));
  // Remaining objects still intact.
  for (const uint64_t o : offs) {
    if (g.chunk_of(o) != tail_chunk) {
      EXPECT_TRUE(ep_->bit_is_set(ObjType::kValue8, o));
    }
  }
}

TEST_F(EPAllocTest, RecycleHeadChunkUpdatesHead) {
  // Two chunks; head is the most recently created one.
  std::vector<uint64_t> offs;
  for (uint32_t i = 0; i < kObjectsPerChunk + 1; ++i) {
    const uint64_t o = ep_->ep_malloc(ObjType::kValue8);
    ep_->commit(ObjType::kValue8, o);
    offs.push_back(o);
  }
  const auto& g = ep_->geom(ObjType::kValue8);
  const uint64_t head_chunk = ep_->list_head(ObjType::kValue8);
  const uint64_t head_obj = offs.back();
  ASSERT_EQ(g.chunk_of(head_obj), head_chunk);
  ep_->free_object(ObjType::kValue8, head_obj);
  ep_->recycle_chunk_of(ObjType::kValue8, head_obj);
  EXPECT_EQ(ep_->chunk_count(ObjType::kValue8), 1u);
  EXPECT_NE(ep_->list_head(ObjType::kValue8), head_chunk);
}

TEST_F(EPAllocTest, RecycleRefusesNonEmptyChunk) {
  const uint64_t o = ep_->ep_malloc(ObjType::kValue8);
  ep_->commit(ObjType::kValue8, o);
  ep_->recycle_chunk_of(ObjType::kValue8, o);
  EXPECT_EQ(ep_->chunk_count(ObjType::kValue8), 1u);
  EXPECT_TRUE(ep_->bit_is_set(ObjType::kValue8, o));
}

TEST_F(EPAllocTest, StaleCommittedValueIsReclaimedOnLeafReuse) {
  // Simulate a crashed insertion: value committed, leaf bit never set.
  const uint64_t leaf = ep_->ep_malloc(ObjType::kLeaf);
  const uint64_t val = ep_->ep_malloc(ObjType::kValue8);
  ep_->commit(ObjType::kValue8, val);
  auto* l = arena_->ptr<FakeLeaf>(leaf);
  l->p_value = val;
  l->val_class = 0;
  arena_->persist(l, sizeof(*l));
  // "Crash": reservation of the leaf evaporates.
  ep_->release(ObjType::kLeaf, leaf);

  // The next leaf allocation receives the same slot and must reclaim the
  // dangling value (Alg. 2 lines 12-16).
  const uint64_t leaf2 = ep_->ep_malloc(ObjType::kLeaf);
  EXPECT_EQ(leaf2, leaf);
  EXPECT_EQ(arena_->ptr<FakeLeaf>(leaf2)->p_value, 0u);
  EXPECT_FALSE(ep_->bit_is_set(ObjType::kValue8, val));
}

TEST_F(EPAllocTest, LiveObjectCountsTrackCommits) {
  std::vector<uint64_t> offs;
  for (int i = 0; i < 10; ++i) {
    const uint64_t o = ep_->ep_malloc(ObjType::kLeaf);
    ep_->commit(ObjType::kLeaf, o);
    offs.push_back(o);
  }
  EXPECT_EQ(ep_->live_objects(ObjType::kLeaf), 10u);
  ep_->free_object(ObjType::kLeaf, offs[3]);
  EXPECT_EQ(ep_->live_objects(ObjType::kLeaf), 9u);
}

TEST_F(EPAllocTest, ForEachLiveVisitsExactlySetObjects) {
  std::set<uint64_t> live;
  for (int i = 0; i < 130; ++i) {
    const uint64_t o = ep_->ep_malloc(ObjType::kLeaf);
    ep_->commit(ObjType::kLeaf, o);
    live.insert(o);
  }
  // Free every third object.
  int k = 0;
  for (auto it = live.begin(); it != live.end();) {
    if (++k % 3 == 0) {
      ep_->free_object(ObjType::kLeaf, *it);
      it = live.erase(it);
    } else {
      ++it;
    }
  }
  std::set<uint64_t> seen;
  ep_->for_each_live(ObjType::kLeaf,
                     [&](uint64_t o) { seen.insert(o); });
  EXPECT_EQ(seen, live);
}

TEST_F(EPAllocTest, RecoverStructureRebuildsReachability) {
  std::vector<uint64_t> committed;
  for (int i = 0; i < 70; ++i) {
    const uint64_t o = ep_->ep_malloc(ObjType::kLeaf);
    ep_->commit(ObjType::kLeaf, o);
    committed.push_back(o);
  }
  // A reserved-but-uncommitted object, lost at the crash:
  const uint64_t reserved = ep_->ep_malloc(ObjType::kLeaf);
  (void)reserved;

  arena_->crash();
  make_alloc();
  ep_->recover_structure();

  EXPECT_EQ(ep_->live_objects(ObjType::kLeaf), committed.size());
  // The reserved slot must be allocatable again.
  std::set<uint64_t> again;
  for (size_t i = 0; i < 2; ++i) again.insert(ep_->ep_malloc(ObjType::kLeaf));
  EXPECT_TRUE(again.count(reserved) == 1);
}

TEST_F(EPAllocTest, RecoveryIsLeakFreeByConstruction) {
  // Allocate chunks in all three types, then crash with some reservations
  // in flight; after recovery, physical usage equals exactly the reachable
  // chunks.
  for (int i = 0; i < 60; ++i) {
    ep_->commit(ObjType::kLeaf, ep_->ep_malloc(ObjType::kLeaf));
    ep_->commit(ObjType::kValue8, ep_->ep_malloc(ObjType::kValue8));
  }
  ep_->ep_malloc(ObjType::kValue16);  // reserved only
  arena_->crash();
  make_alloc();
  ep_->recover_structure();

  uint64_t expected = 0;
  for (ObjType t : {ObjType::kLeaf, ObjType::kValue8, ObjType::kValue16,
                    ObjType::kValue32, ObjType::kValue64}) {
    expected += ep_->chunk_count(t) * ep_->geom(t).chunk_bytes;
  }
  EXPECT_EQ(arena_->stats().pm_live_bytes.load(), expected);
  // kValue16 saw only a reservation: no chunk may survive... unless the
  // chunk was created and linked before the crash, in which case it is
  // reachable but empty — allowed. Either way nothing is leaked:
  EXPECT_LE(ep_->chunk_count(ObjType::kValue16), 1u);
  EXPECT_EQ(ep_->live_objects(ObjType::kValue16), 0u);
}

TEST_F(EPAllocTest, UpdateLogSlotsAcquireAndReclaim) {
  UpdateLog* a = ep_->acquire_ulog();
  UpdateLog* b = ep_->acquire_ulog();
  EXPECT_NE(a, b);
  a->pleaf = 1;
  ep_->reclaim_ulog(a);
  EXPECT_EQ(a->pleaf, 0u) << "reclaim must zero the slot";
  UpdateLog* c = ep_->acquire_ulog();
  EXPECT_EQ(c, a) << "freed slot is reused first";
  ep_->reclaim_ulog(b);
  ep_->reclaim_ulog(c);
}

TEST_F(EPAllocTest, CrashDuringRecycleIsRepairedOnRecovery) {
  // Build two chunks, empty the tail chunk, then crash at each persist
  // point inside recycle and verify recovery leaves a consistent list.
  for (uint64_t crash_at = 1; crash_at <= 4; ++crash_at) {
    pmem::Arena::Options o;
    o.size = 32 << 20;
    o.shadow = true;
    o.charge_alloc_persist = false;
    pmem::Arena arena(o);
    struct R {
      EPRoot ep;
    };
    auto mk = [&] {
      return std::make_unique<EPAllocator>(arena, &arena.root<R>()->ep,
                                           sizeof(FakeLeaf), &fake_probe,
                                           &fake_clear);
    };
    auto ep = mk();
    std::vector<uint64_t> offs;
    for (uint32_t i = 0; i < kObjectsPerChunk * 2; ++i) {
      const uint64_t obj = ep->ep_malloc(ObjType::kValue8);
      ep->commit(ObjType::kValue8, obj);
      offs.push_back(obj);
    }
    const auto& g = ep->geom(ObjType::kValue8);
    const uint64_t victim_chunk = g.chunk_of(offs.front());
    uint64_t survivors = 0;
    for (const uint64_t obj : offs)
      if (g.chunk_of(obj) == victim_chunk)
        ep->free_object(ObjType::kValue8, obj);
      else
        ++survivors;

    arena.arm_crash_after(crash_at);
    try {
      ep->recycle_chunk_of(ObjType::kValue8, offs.front());
      arena.disarm_crash();
    } catch (const pmem::CrashPoint&) {
      arena.crash();
    }
    ep = mk();
    ep->recover_structure();
    EXPECT_EQ(ep->live_objects(ObjType::kValue8), survivors)
        << "crash_at=" << crash_at;
    // List must be walkable and the recycle log empty.
    EXPECT_EQ(arena.root<R>()->ep.rlog.pcurrent, 0u);
    // Allocation still works afterwards.
    const uint64_t obj = ep->ep_malloc(ObjType::kValue8);
    ep->commit(ObjType::kValue8, obj);
    EXPECT_TRUE(ep->bit_is_set(ObjType::kValue8, obj));
  }
}

}  // namespace
}  // namespace hart::epalloc
