// Allocator parity and batched-metadata crash-repair tests (allocator
// API v2): the striped allocator's persistent image is byte-compatible
// with the legacy EPAllocator, so an arena written under either kind must
// reopen cleanly under the other with identical contents. The batched
// chunk-header schedule additionally introduces two recoverable torn
// shapes (an in-flight delete whose header clears were deferred, and a
// committed value orphaned by such a delete); these tests pin both the
// deterministic repairs and a crash sweep across the persist stream.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "epalloc/allocator.h"
#include "hart/hart.h"
#include "hart/verify.h"
#include "obs/counters.h"
#include "workload/keygen.h"

namespace hart::core {
namespace {

using AllocKind = epalloc::AllocOptions::Kind;

testutil::CheckedArena make_arena(bool shadow = false) {
  pmem::Arena::Options o;
  o.size = size_t{64} << 20;
  o.shadow = shadow;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

Hart::Options with_alloc(AllocKind kind, bool batched = false) {
  Hart::Options o;
  o.alloc.kind = kind;
  o.alloc.batched_meta = batched;
  return o;
}

uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

/// Mixed-churn phase under one allocator kind: inserts, class-changing
/// updates, deletes. Mutates `ref` to match.
void churn(Hart& h, std::map<std::string, std::string>* ref,
           const std::vector<std::string>& keys, const char* tag) {
  for (size_t i = 0; i < keys.size(); ++i) {
    const std::string v = std::string(tag) + "-" + std::to_string(i);
    h.insert(keys[i], v);
    (*ref)[keys[i]] = v;
  }
  // Class-changing updates (8B -> 33..64B) exercise the micro-log path.
  for (size_t i = 0; i < keys.size(); i += 5) {
    const std::string v(33 + i % 32, 'u');
    ASSERT_EQ(h.update(keys[i], v), common::Status::kOk) << keys[i];
    (*ref)[keys[i]] = v;
  }
  for (size_t i = 0; i < keys.size(); i += 3) {
    ASSERT_EQ(h.remove(keys[i]), common::Status::kOk) << keys[i];
    ref->erase(keys[i]);
  }
}

void expect_matches(Hart& h, const std::map<std::string, std::string>& ref,
                    const std::vector<std::string>& all_keys) {
  EXPECT_EQ(h.size(), ref.size());
  for (const auto& k : all_keys) {
    std::string v;
    const auto it = ref.find(k);
    if (it != ref.end()) {
      ASSERT_EQ(h.search(k, &v), common::Status::kOk) << k;
      EXPECT_EQ(v, it->second) << k;
    } else {
      EXPECT_EQ(h.search(k, nullptr), common::Status::kNotFound) << k;
    }
  }
}

/// Write under `first`, reopen + mutate under `second`, reopen under
/// `first` again. Recovery (Algorithm 7) must see identical contents at
/// every hand-off and the image must verify clean throughout — the two
/// allocators share one persistent format.
void round_trip(AllocKind first, AllocKind second) {
  auto arena = make_arena();
  const auto keys_a = workload::make_random(600, 11, 4, 12);
  const auto keys_b = workload::make_random(200, 22, 4, 12);
  std::vector<std::string> all(keys_a.begin(), keys_a.end());
  all.insert(all.end(), keys_b.begin(), keys_b.end());
  std::map<std::string, std::string> ref;
  {
    Hart h(*arena, with_alloc(first));
    churn(h, &ref, keys_a, "a");
  }
  EXPECT_TRUE(verify_hart_image(*arena).ok())
      << verify_hart_image(*arena).summary();
  {
    Hart h(*arena, with_alloc(second));  // recovery under the other kind
    expect_matches(h, ref, all);
    churn(h, &ref, keys_b, "b");  // and it keeps working
  }
  EXPECT_TRUE(verify_hart_image(*arena).ok())
      << verify_hart_image(*arena).summary();
  {
    Hart h(*arena, with_alloc(first));  // and back
    expect_matches(h, ref, all);
  }
}

TEST(AllocParity, LegacyArenaReopensUnderStriped) {
  round_trip(AllocKind::kLegacy, AllocKind::kStriped);
}

TEST(AllocParity, StripedArenaReopensUnderLegacy) {
  round_trip(AllocKind::kStriped, AllocKind::kLegacy);
}

// Deterministic batched-metadata repairs: fence a populated tree, delete
// one key without fencing, crash. The leaf's p_value clear is eager, the
// header-bit clears were deferred — recovery must complete the delete
// (R1) and sweep the now-orphaned committed value (R3).
TEST(AllocParity, BatchedDeleteCrashCompletesOnRecovery) {
  auto arena = make_arena(/*shadow=*/true);
  const auto keys = workload::make_random(50, 33, 4, 12);
  const uint64_t deletes0 =
      counter_value("hart_recover_completed_deletes_total");
  const uint64_t orphans0 = counter_value("hart_recover_orphan_values_total");
  {
    Hart h(*arena, with_alloc(AllocKind::kStriped, /*batched=*/true));
    for (const auto& k : keys) h.insert(k, "v-" + k.substr(0, 4));
    h.flush_epoch();  // all 50 inserts durable
    ASSERT_EQ(h.remove(keys[7]), common::Status::kOk);
    arena->crash();  // deferred header clears are lost; p_value=0 survives
  }
  Hart h2(*arena, with_alloc(AllocKind::kStriped, /*batched=*/true));
  EXPECT_EQ(counter_value("hart_recover_completed_deletes_total"),
            deletes0 + 1);
  EXPECT_EQ(counter_value("hart_recover_orphan_values_total"), orphans0 + 1);
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto want =
        i == 7 ? common::Status::kNotFound : common::Status::kOk;
    EXPECT_EQ(h2.search(keys[i], nullptr), want) << keys[i];
  }
  EXPECT_EQ(h2.size(), keys.size() - 1);
  EXPECT_TRUE(verify_hart_image(*arena).ok())
      << verify_hart_image(*arena).summary();
  // The repairs themselves were made durable by recovery's final
  // metadata flush: a second crash+recover must not repeat them.
  arena->crash();
  Hart h3(*arena, with_alloc(AllocKind::kStriped, /*batched=*/true));
  EXPECT_EQ(counter_value("hart_recover_completed_deletes_total"),
            deletes0 + 1);
  EXPECT_EQ(counter_value("hart_recover_orphan_values_total"), orphans0 + 1);
  EXPECT_EQ(h3.size(), keys.size() - 1);
}

// Crash sweep under the batched schedule: everything fenced by
// flush_epoch() must survive; whatever else survives must be
// well-formed. Mirrors HartCrash.InsertSweep but with deferred header
// persists, so the crash can land between an operation and its fence.
TEST(AllocParity, BatchedCrashSweepKeepsFencedWrites) {
  const auto keys = workload::make_random(240, 55, 4, 12);
  const auto opts = with_alloc(AllocKind::kStriped, /*batched=*/true);
  for (uint64_t crash_at = 7; crash_at <= 400; crash_at += 23) {
    auto arena = make_arena(/*shadow=*/true);
    size_t fenced = 0;  // keys[0..fenced) are durable
    bool crashed = false;
    {
      Hart h(*arena, opts);
      arena->arm_crash_after(crash_at);
      try {
        for (size_t i = 0; i < keys.size(); ++i) {
          h.insert(keys[i], "val-" + keys[i].substr(0, 4));
          if ((i + 1) % 16 == 0) {
            h.flush_epoch();
            fenced = i + 1;
          }
        }
        arena->disarm_crash();
        h.flush_epoch();
        fenced = keys.size();
      } catch (const pmem::CrashPoint&) {
        crashed = true;
        arena->crash();
      }
    }
    Hart h2(*arena, opts);
    ASSERT_GE(h2.size(), fenced);
    for (size_t i = 0; i < fenced; ++i) {
      std::string v;
      ASSERT_EQ(h2.search(keys[i], &v), common::Status::kOk)
          << "fenced write lost (crash_at=" << crash_at << "): " << keys[i];
      EXPECT_EQ(v, "val-" + keys[i].substr(0, 4));
    }
    // Unfenced survivors are allowed (their header line may have been
    // flushed incidentally) but must carry their full committed value.
    for (size_t i = fenced; i < keys.size(); ++i) {
      std::string v;
      if (h2.search(keys[i], &v) == common::Status::kOk) {
        EXPECT_EQ(v, "val-" + keys[i].substr(0, 4)) << keys[i];
      }
    }
    const VerifyReport rep = verify_hart_image(*arena);
    EXPECT_TRUE(rep.ok()) << "crash_at=" << crash_at << ": " << rep.summary();
    // The recovered tree keeps working and fencing.
    EXPECT_EQ(h2.insert("post-" + std::to_string(crash_at), "v"),
              common::Status::kInserted);
    h2.flush_epoch();
    if (!crashed) break;  // stream fully fenced; later crash_at are no-ops
  }
}

}  // namespace
}  // namespace hart::core
