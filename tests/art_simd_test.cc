// Differential tests for the SIMD in-node search primitives (art/simd.h):
// the vector paths must be bit-identical to the always-compiled scalar
// references over every occupancy, and a whole tree must answer searches
// and iterate identically with the vector paths enabled and disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "art/art_tree.h"
#include "art/simd.h"
#include "common/rng.h"
#include "obs/counters.h"

namespace hart::art {
namespace {

struct TestLeaf {
  std::string key;
};

struct TestTraits {
  using Leaf = TestLeaf;
  Key key(const Leaf* l) const {
    return {reinterpret_cast<const uint8_t*>(l->key.data()), l->key.size()};
  }
};

Key k(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

/// Restores the runtime SIMD switch no matter how a test exits.
struct SimdGuard {
  ~SimdGuard() { simd::set_enabled(true); }
};

// The *_vec / *_sse2 / *_avx2 symbols only exist when the vector paths are
// compiled in, so the differential tests are preprocessor-gated (the
// -DHART_NO_SIMD CI leg still compiles this file and runs the rest).
#if HART_SIMD

TEST(ArtSimd, FindByte16MatchesScalarExhaustively) {
  common::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    uint8_t keys[16];
    for (auto& b : keys) b = static_cast<uint8_t>(rng.next());
    if (trial % 3 == 0) keys[rng.next() % 16] = keys[rng.next() % 16];
    for (unsigned count = 0; count <= 16; ++count) {
      for (unsigned byte = 0; byte < 256; ++byte) {
        const auto want = simd::find_byte16_scalar(
            keys, count, static_cast<uint8_t>(byte));
        const auto got =
            simd::find_byte16_vec(keys, count, static_cast<uint8_t>(byte));
        ASSERT_EQ(got, want)
            << "count=" << count << " byte=" << byte << " trial=" << trial;
      }
    }
  }
}

TEST(ArtSimd, FindByte16IgnoresLanesBeyondCount) {
  // Garbage past num_children must never match: plant the probe byte in
  // every masked-off lane.
  uint8_t keys[16];
  std::memset(keys, 0x7A, sizeof(keys));
  for (unsigned count = 0; count < 16; ++count) {
    uint8_t k16[16];
    std::memset(k16, 0x01, sizeof(k16));
    for (unsigned i = count; i < 16; ++i) k16[i] = 0x7A;
    EXPECT_EQ(simd::find_byte16_vec(k16, count, 0x7A), -1) << count;
  }
  EXPECT_EQ(simd::find_byte16_vec(keys, 16, 0x7A), 0);
}

TEST(ArtSimd, NextOccupied48MatchesScalarAcrossDensities) {
  common::Rng rng(7);
  const uint8_t empty = detail::kEmptySlot;
  for (const int fill_pct : {0, 1, 10, 50, 90, 100}) {
    for (int trial = 0; trial < 20; ++trial) {
      uint8_t idx[256];
      std::memset(idx, empty, sizeof(idx));
      for (unsigned b = 0; b < 256; ++b)
        if (static_cast<int>(rng.next() % 100) < fill_pct)
          idx[b] = static_cast<uint8_t>(rng.next() % 48);
      for (unsigned start = 0; start <= 256; ++start) {
        const auto want = simd::next_occupied48_scalar(idx, start, empty);
        ASSERT_EQ(simd::next_occupied48_sse2(idx, start, empty), want)
            << "sse2 start=" << start << " fill=" << fill_pct;
        ASSERT_EQ(simd::next_occupied48_vec(idx, start, empty), want)
            << "vec start=" << start << " fill=" << fill_pct;
        if (simd::avx2_available())
          ASSERT_EQ(simd::next_occupied48_avx2(idx, start, empty), want)
              << "avx2 start=" << start << " fill=" << fill_pct;
      }
    }
  }
}

#endif  // HART_SIMD

TEST(ArtSimd, RuntimeSwitchControlsDispatchAndCounter) {
  SimdGuard guard;
  uint8_t keys[16] = {5, 9, 17, 33};
  auto& counter = obs::Registry::instance().counter("art_simd_cmp_total");
  simd::set_enabled(false);
  EXPECT_FALSE(simd::enabled());
  const uint64_t before = counter.value();
  EXPECT_EQ(simd::find_byte16(keys, 4, 17), 2);
  EXPECT_EQ(counter.value(), before) << "disabled path must not count";
  simd::set_enabled(true);
  EXPECT_EQ(simd::find_byte16(keys, 4, 17), 2);
  if (simd::compiled())
    EXPECT_GT(counter.value(), before) << "enabled path must count";
}

// Whole-tree equivalence: the same tree must answer identically with the
// vector paths on and off, across every node width the descent can meet.
TEST(ArtSimd, TreeSearchAndIterationIdenticalWithAndWithoutSimd) {
  SimdGuard guard;
  std::atomic<uint64_t> dram{0};
  Tree<TestTraits> tree(TestTraits{}, &dram);
  std::vector<std::unique_ptr<TestLeaf>> leaves;
  std::vector<std::string> keys;
  // Fanouts 3 / 12 / 40 / 200 under distinct prefixes: Node4, Node16,
  // Node48 and Node256 interior nodes all on live search paths.
  const struct {
    const char* prefix;
    int fanout;
  } shapes[] = {{"aa", 3}, {"bb", 12}, {"cc", 40}, {"dd", 200}};
  for (const auto& s : shapes) {
    for (int i = 0; i < s.fanout; ++i) {
      std::string key = std::string(s.prefix) +
                        static_cast<char>(1 + i) + "suffix";
      leaves.push_back(std::make_unique<TestLeaf>(TestLeaf{key}));
      HARTLINT_SUPPRESS("HL003: single-threaded test tree, eager frees")
      ASSERT_EQ(tree.insert(k(key), leaves.back().get()), nullptr);
      keys.push_back(std::move(key));
    }
  }

  auto probe_all = [&](bool simd_on) -> std::vector<std::string> {
    simd::set_enabled(simd_on);
    std::vector<std::string> found;
    for (const auto& key : keys) {
      TestLeaf* l = tree.search(k(key));
      EXPECT_NE(l, nullptr) << key << " simd=" << simd_on;
      if (l != nullptr) EXPECT_EQ(l->key, key);
      EXPECT_EQ(tree.search(k(key + "x")), nullptr);
    }
    tree.for_each([&](TestLeaf* l) {
      found.push_back(l->key);
      return true;
    });
    return found;
  };
  const auto with_simd = probe_all(true);
  const auto without_simd = probe_all(false);
  EXPECT_EQ(with_simd, without_simd);
  EXPECT_EQ(with_simd.size(), keys.size());
}

}  // namespace
}  // namespace hart::art
