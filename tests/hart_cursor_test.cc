// Tests for HartCursor (ordered stateful scans) and parallel recovery.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <map>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "hart/hart.h"
#include "hart/verify.h"
#include "workload/keygen.h"

namespace hart::core {
namespace {

testutil::CheckedArena make_arena(size_t mb = 128) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

TEST(HartCursor, IteratesAllInOrder) {
  auto arena = make_arena();
  Hart h(*arena);
  std::map<std::string, std::string> ref;
  common::Rng rng(3);
  while (ref.size() < 2000) {
    std::string k;
    const size_t len = 2 + rng.next_below(12);
    for (size_t j = 0; j < len; ++j)
      k.push_back(static_cast<char>('A' + rng.next_below(40)));
    ref[k] = "v" + k.substr(0, 5);
    h.insert(k, ref[k]);
  }
  // Small batch size forces many refills across batch boundaries.
  HartCursor cur(h, ref.begin()->first, 7);
  auto it = ref.begin();
  size_t n = 0;
  for (; cur.valid(); cur.next(), ++it, ++n) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(cur.key(), it->first);
    EXPECT_EQ(cur.value(), it->second);
  }
  EXPECT_EQ(n, ref.size());
}

TEST(HartCursor, StartsAtLowerBoundInclusive) {
  auto arena = make_arena();
  Hart h(*arena);
  for (const char* k : {"alpha", "beta", "gamma", "delta"}) h.insert(k, k);
  HartCursor at(h, "beta", 2);
  ASSERT_TRUE(at.valid());
  EXPECT_EQ(at.key(), "beta");
  HartCursor between(h, "bx", 2);
  ASSERT_TRUE(between.valid());
  EXPECT_EQ(between.key(), "delta");
}

TEST(HartCursor, EmptyAndExhausted) {
  auto arena = make_arena();
  Hart h(*arena);
  HartCursor none(h, "anything");
  EXPECT_FALSE(none.valid());
  h.insert("only", "1");
  HartCursor one(h, "a", 4);
  ASSERT_TRUE(one.valid());
  EXPECT_EQ(one.key(), "only");
  one.next();
  EXPECT_FALSE(one.valid());
  one.next();  // idempotent past the end
  EXPECT_FALSE(one.valid());
}

TEST(HartCursor, SurvivesConcurrentWriters) {
  auto arena = make_arena();
  Hart h(*arena);
  const auto keys = workload::make_sequential(20000);
  for (size_t i = 0; i < keys.size(); i += 2) h.insert(keys[i], "stable");

  std::thread writer([&] {
    for (size_t i = 1; i < keys.size(); i += 2) h.insert(keys[i], "fresh");
  });
  // Scan while the writer interleaves: every *preloaded* key must appear,
  // in order; interleaved fresh keys may or may not.
  HartCursor cur(h, keys.front(), 64);
  std::string prev;
  size_t stable_seen = 0;
  for (; cur.valid(); cur.next()) {
    EXPECT_LT(prev, cur.key()) << "cursor must stay strictly ordered";
    prev = cur.key();
    if (cur.value() == "stable") ++stable_seen;
  }
  writer.join();
  EXPECT_EQ(stable_seen, keys.size() / 2);
}

TEST(HartRecovery, ParallelMatchesSequential) {
  auto arena = make_arena();
  std::map<std::string, std::string> ref;
  {
    Hart h(*arena);
    const auto keys = workload::make_random(20000, 17);
    for (size_t i = 0; i < keys.size(); ++i) {
      h.insert(keys[i], "v" + std::to_string(i % 97));
      ref[keys[i]] = "v" + std::to_string(i % 97);
    }
    for (size_t i = 0; i < keys.size(); i += 5) {
      h.remove(keys[i]);
      ref.erase(keys[i]);
    }
  }
  Hart h2(*arena);  // sequential recovery in the constructor
  for (const unsigned threads : {2u, 4u, 8u}) {
    h2.recover(threads);
    EXPECT_EQ(h2.size(), ref.size()) << threads;
    size_t probe = 0;
    for (const auto& [k, v] : ref) {
      if (++probe % 7 != 0) continue;  // sample
      std::string got;
      ASSERT_EQ(h2.search(k, &got), common::Status::kOk) << k << " threads=" << threads;
      EXPECT_EQ(got, v);
    }
    // Ordered iteration intact after the parallel rebuild.
    std::vector<std::pair<std::string, std::string>> out;
    h2.range(ref.begin()->first, ref.size() + 1, &out);
    EXPECT_EQ(out.size(), ref.size());
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_TRUE(verify_hart_image(*arena).ok());
  }
}

}  // namespace
}  // namespace hart::core
