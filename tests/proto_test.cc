// Wire-protocol codec tests (src/server/proto.h): round trips for every
// opcode and status, frame extraction (partial / oversized / malformed),
// and the replication payload codecs (kReplBatch / positions) including
// truncated- and garbage-input rejection. These are the negative cases the
// TCP dispatcher's kProtocolError path relies on.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "server/proto.h"

namespace hart::server {
namespace {

// Encode a request, pull it back through take_frame, and decode the body.
void roundtrip_request(uint64_t id, const Request& in) {
  std::string buf;
  encode_request(id, in, &buf);
  std::string body;
  ASSERT_EQ(take_frame(&buf, &body), 1);
  EXPECT_TRUE(buf.empty());

  uint64_t got_id = 0;
  Request out;
  ASSERT_TRUE(decode_request(body.data(), body.size(), &got_id, &out));
  EXPECT_EQ(got_id, id);
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.key, in.key);
  EXPECT_EQ(out.value, in.value);
}

TEST(ProtoTest, RequestRoundTripAllOps) {
  const OpCode ops[] = {OpCode::kPut,     OpCode::kGet,     OpCode::kUpdate,
                        OpCode::kDelete,  OpCode::kPing,    OpCode::kStats,
                        OpCode::kMget,    OpCode::kScan,    OpCode::kReplBatch,
                        OpCode::kReplAck, OpCode::kPromote};
  uint64_t id = 7;
  for (OpCode op : ops) {
    roundtrip_request(id++, {op, "some-key", "some-value"});
  }
}

TEST(ProtoTest, RequestRoundTripBinaryAndEmpty) {
  roundtrip_request(1, {OpCode::kPing, "", ""});
  roundtrip_request(2, {OpCode::kPut, std::string("k\0ey", 4),
                        std::string("v\0al\xff", 5)});
  roundtrip_request(3, {OpCode::kPut, std::string(255, 'k'),
                        std::string(65535, 'v')});
}

TEST(ProtoTest, DecodeRequestRejectsBadOpByte) {
  std::string buf;
  encode_request(1, {OpCode::kPut, "k", "v"}, &buf);
  std::string body;
  ASSERT_EQ(take_frame(&buf, &body), 1);

  uint64_t id;
  Request r;
  for (uint8_t bad : {uint8_t{0}, uint8_t{12}, uint8_t{0xff}}) {
    std::string mangled = body;
    mangled[8] = static_cast<char>(bad);  // op byte
    EXPECT_FALSE(decode_request(mangled.data(), mangled.size(), &id, &r))
        << "op byte " << int(bad) << " must be rejected";
  }
}

TEST(ProtoTest, DecodeRequestRejectsLengthMismatch) {
  std::string buf;
  encode_request(9, {OpCode::kPut, "key", "value"}, &buf);
  std::string body;
  ASSERT_EQ(take_frame(&buf, &body), 1);

  uint64_t id;
  Request r;
  // Every truncation of the body must be rejected, down to the empty body.
  for (size_t n = 0; n < body.size(); ++n) {
    EXPECT_FALSE(decode_request(body.data(), n, &id, &r))
        << "truncated to " << n << " bytes";
  }
  // Trailing garbage: declared key/value lengths no longer match the body.
  std::string padded = body + "x";
  EXPECT_FALSE(decode_request(padded.data(), padded.size(), &id, &r));
}

TEST(ProtoTest, ResponseRoundTripAllStatuses) {
  const Status statuses[] = {Status::kOk,           Status::kUpdated,
                             Status::kNotFound,     Status::kBadRequest,
                             Status::kShardFailed,  Status::kShuttingDown,
                             Status::kNetError,     Status::kNotPrimary,
                             Status::kProtocolError};
  uint64_t id = 100;
  for (Status st : statuses) {
    std::string buf;
    encode_response(id, {st, "payload", 42}, &buf);
    std::string body;
    ASSERT_EQ(take_frame(&buf, &body), 1);

    uint64_t got_id = 0;
    Response out;
    ASSERT_TRUE(decode_response(body.data(), body.size(), &got_id, &out));
    EXPECT_EQ(got_id, id);
    EXPECT_EQ(out.status, st);
    EXPECT_EQ(out.value, "payload");
    EXPECT_EQ(out.epoch, 42u);
    ++id;
  }
}

TEST(ProtoTest, DecodeResponseRejectsBadStatusAndTruncation) {
  std::string buf;
  encode_response(5, {Status::kOk, "vv", 9}, &buf);
  std::string body;
  ASSERT_EQ(take_frame(&buf, &body), 1);

  uint64_t id;
  Response r;
  std::string mangled = body;
  mangled[8] = 9;  // one past kProtocolError
  EXPECT_FALSE(decode_response(mangled.data(), mangled.size(), &id, &r));
  for (size_t n = 0; n < body.size(); ++n)
    EXPECT_FALSE(decode_response(body.data(), n, &id, &r));
}

TEST(ProtoTest, TakeFrameNeedsMoreBytes) {
  std::string buf;
  encode_request(1, {OpCode::kPing, "", ""}, &buf);
  const std::string full = buf;

  // Every strict prefix yields 0 (need more) and leaves the buffer alone.
  for (size_t n = 0; n < full.size(); ++n) {
    std::string partial = full.substr(0, n);
    std::string body;
    EXPECT_EQ(take_frame(&partial, &body), 0) << "prefix " << n;
    EXPECT_EQ(partial, full.substr(0, n));
  }
}

TEST(ProtoTest, TakeFrameExtractsBackToBackFrames) {
  std::string buf;
  encode_request(1, {OpCode::kPut, "a", "1"}, &buf);
  encode_request(2, {OpCode::kGet, "b", ""}, &buf);

  std::string body;
  ASSERT_EQ(take_frame(&buf, &body), 1);
  uint64_t id;
  Request r;
  ASSERT_TRUE(decode_request(body.data(), body.size(), &id, &r));
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(r.key, "a");

  ASSERT_EQ(take_frame(&buf, &body), 1);
  ASSERT_TRUE(decode_request(body.data(), body.size(), &id, &r));
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(r.op, OpCode::kGet);
  EXPECT_TRUE(buf.empty());
}

TEST(ProtoTest, TakeFrameRejectsOversizedLength) {
  std::string buf;
  const uint32_t huge = kMaxFrameBody + 1;
  buf.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  buf.append("whatever");
  std::string body;
  EXPECT_EQ(take_frame(&buf, &body), -1);
}

TEST(ProtoTest, TakeFrameAcceptsMaxSizedLength) {
  std::string buf;
  const uint32_t len = kMaxFrameBody;
  buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buf.append(kMaxFrameBody, 'x');
  std::string body;
  EXPECT_EQ(take_frame(&buf, &body), 1);
  EXPECT_EQ(body.size(), size_t{kMaxFrameBody});
}

// ---- replication payloads ------------------------------------------------

std::vector<ReplEntry> sample_entries() {
  std::vector<ReplEntry> e;
  e.push_back({OpCode::kPut, "alpha", "one"});
  e.push_back({OpCode::kUpdate, std::string("b\0in", 4), "two"});
  e.push_back({OpCode::kDelete, "gone", ""});
  return e;
}

TEST(ProtoTest, ReplBatchRoundTrip) {
  std::string payload;
  ASSERT_TRUE(encode_repl_batch(3, 17, 99, sample_entries(), &payload));

  uint32_t stream = 0;
  uint64_t seq = 0, epoch = 0;
  std::vector<ReplEntry> out;
  ASSERT_TRUE(decode_repl_batch(payload, &stream, &seq, &epoch, &out));
  EXPECT_EQ(stream, 3u);
  EXPECT_EQ(seq, 17u);
  EXPECT_EQ(epoch, 99u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].op, OpCode::kPut);
  EXPECT_EQ(out[0].key, "alpha");
  EXPECT_EQ(out[0].value, "one");
  EXPECT_EQ(out[1].key, std::string("b\0in", 4));
  EXPECT_EQ(out[2].op, OpCode::kDelete);
  EXPECT_TRUE(out[2].value.empty());
}

TEST(ProtoTest, ReplBatchRoundTripEmpty) {
  std::string payload;
  ASSERT_TRUE(encode_repl_batch(0, 1, 5, {}, &payload));
  uint32_t stream;
  uint64_t seq, epoch;
  std::vector<ReplEntry> out;
  ASSERT_TRUE(decode_repl_batch(payload, &stream, &seq, &epoch, &out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(seq, 1u);
}

TEST(ProtoTest, EncodeReplBatchRefusesUnencodable) {
  std::string payload;
  // Non-write op.
  EXPECT_FALSE(encode_repl_batch(0, 1, 1, {{OpCode::kGet, "k", ""}},
                                 &payload));
  // Oversized key / value.
  EXPECT_FALSE(encode_repl_batch(
      0, 1, 1, {{OpCode::kPut, std::string(256, 'k'), "v"}}, &payload));
  EXPECT_FALSE(encode_repl_batch(
      0, 1, 1, {{OpCode::kPut, "k", std::string(65536, 'v')}}, &payload));
  // Too many entries.
  std::vector<ReplEntry> many(kMaxBatchEntries + 1,
                              {OpCode::kPut, "k", "v"});
  EXPECT_FALSE(encode_repl_batch(0, 1, 1, many, &payload));
  // Individually legal entries whose sum overflows the u16 value field.
  std::vector<ReplEntry> fat(2, {OpCode::kPut, "k", std::string(40000, 'v')});
  EXPECT_FALSE(encode_repl_batch(0, 1, 1, fat, &payload));
}

TEST(ProtoTest, DecodeReplBatchRejectsEveryTruncation) {
  std::string payload;
  ASSERT_TRUE(encode_repl_batch(1, 2, 3, sample_entries(), &payload));

  uint32_t stream;
  uint64_t seq, epoch;
  std::vector<ReplEntry> out;
  // The declared entry count fixes the exact payload size, so every strict
  // prefix must be rejected — a truncated batch may never half-apply.
  for (size_t n = 0; n < payload.size(); ++n) {
    EXPECT_FALSE(decode_repl_batch(payload.substr(0, n), &stream, &seq,
                                   &epoch, &out))
        << "truncated to " << n << " bytes";
  }
  EXPECT_FALSE(
      decode_repl_batch(payload + "x", &stream, &seq, &epoch, &out));
}

TEST(ProtoTest, DecodeReplBatchRejectsGarbage) {
  uint32_t stream;
  uint64_t seq, epoch;
  std::vector<ReplEntry> out;

  // A batch whose entry carries a non-write opcode.
  std::string payload;
  ASSERT_TRUE(encode_repl_batch(0, 1, 1, {{OpCode::kPut, "k", "v"}},
                                &payload));
  payload[kReplBatchFixed] = static_cast<char>(OpCode::kGet);
  EXPECT_FALSE(decode_repl_batch(payload, &stream, &seq, &epoch, &out));

  // An absurd declared entry count.
  std::string huge(kReplBatchFixed, '\0');
  const uint16_t n = 60000;
  std::memcpy(huge.data() + 20, &n, sizeof(n));
  EXPECT_FALSE(decode_repl_batch(huge, &stream, &seq, &epoch, &out));

  // Plain noise.
  EXPECT_FALSE(decode_repl_batch("not a batch at all, sorry", &stream, &seq,
                                 &epoch, &out));
}

TEST(ProtoTest, ReplPositionsRoundTrip) {
  std::vector<ReplPosition> in = {{0, 12, 100}, {1, 0, 0}, {7, 999, 4242}};
  std::string payload;
  ASSERT_TRUE(encode_repl_positions(in, &payload));

  std::vector<ReplPosition> out;
  ASSERT_TRUE(decode_repl_positions(payload, &out));
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].stream, in[i].stream);
    EXPECT_EQ(out[i].seq, in[i].seq);
    EXPECT_EQ(out[i].epoch, in[i].epoch);
  }

  // Empty report is legal (a follower that has applied nothing).
  ASSERT_TRUE(encode_repl_positions({}, &payload));
  ASSERT_TRUE(decode_repl_positions(payload, &out));
  EXPECT_TRUE(out.empty());
}

TEST(ProtoTest, DecodeReplPositionsRejectsBadSizes) {
  std::vector<ReplPosition> out;
  std::string payload;
  ASSERT_TRUE(encode_repl_positions({{0, 1, 2}, {1, 3, 4}}, &payload));

  for (size_t n = 0; n < payload.size(); ++n)
    EXPECT_FALSE(decode_repl_positions(payload.substr(0, n), &out));
  EXPECT_FALSE(decode_repl_positions(payload + "x", &out));

  // Declared count larger than the cap.
  std::string huge(2, '\0');
  const uint16_t n = kMaxBatchEntries + 1;
  std::memcpy(huge.data(), &n, sizeof(n));
  EXPECT_FALSE(decode_repl_positions(huge, &out));
}

}  // namespace
}  // namespace hart::server
