// Unit tests for the PM device model: allocation, offsets, persist
// semantics, crash simulation (strict and with eviction), and the modeled
// allocator-metadata charges.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <vector>

#include "pmem/arena.h"

namespace hart::pmem {
namespace {

Arena::Options small_opts() {
  Arena::Options o;
  o.size = 4 << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  return o;
}

TEST(Arena, AllocReturnsAlignedDistinctOffsets) {
  Arena a(small_opts());
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const uint64_t off = a.alloc(64, 64);
    EXPECT_EQ(off % 64, 0u);
    EXPECT_GE(off, kArenaHeaderSize);
    EXPECT_TRUE(seen.insert(off).second) << "offset handed out twice";
  }
}

TEST(Arena, AllocHonorsLargeAlignment) {
  Arena a(small_opts());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.alloc(2256, 4096) % 4096, 0u);
    EXPECT_EQ(a.alloc(464, 512) % 512, 0u);
    EXPECT_EQ(a.alloc(912, 1024) % 1024, 0u);
  }
}

TEST(Arena, FreeMakesSpanReusable) {
  Arena a(small_opts());
  const uint64_t off = a.alloc(128, 64);
  a.free(off, 128, 64);
  const uint64_t again = a.alloc(128, 64);
  EXPECT_EQ(off, again) << "free-list should return the same span";
}

TEST(Arena, ExhaustionThrowsBadAlloc) {
  Arena::Options o;
  o.size = 64 << 10;
  o.charge_alloc_persist = false;
  Arena a(o);
  EXPECT_THROW(
      {
        for (;;) a.alloc(4096, 64);
      },
      std::bad_alloc);
}

TEST(Arena, OffsetPointerRoundTrip) {
  Arena a(small_opts());
  const uint64_t off = a.alloc(64, 64);
  auto* p = a.ptr<uint64_t>(off);
  EXPECT_EQ(a.off(p), off);
  EXPECT_EQ(a.ptr<uint64_t>(kNullOff), nullptr);
  EXPECT_EQ(a.off(nullptr), kNullOff);
}

TEST(Arena, PersistCountsCallsAndLines) {
  Arena a(small_opts());
  const uint64_t off = a.alloc(256, 64);
  auto* p = a.ptr<char>(off);
  const uint64_t before = a.stats().persist_calls.load();
  a.persist(p, 8);
  a.persist(p, 256);
  EXPECT_EQ(a.stats().persist_calls.load(), before + 2);
}

TEST(Arena, CrashDiscardsUnflushedStores) {
  Arena a(small_opts());
  const uint64_t off = a.alloc(64, 64);
  auto* p = a.ptr<uint64_t>(off);
  p[0] = 0xAAAA;
  a.persist(&p[0], 8);
  p[1] = 0xBBBB;  // never flushed
  a.crash();
  EXPECT_EQ(p[0], 0xAAAAu) << "flushed store must survive";
  EXPECT_EQ(p[1], 0u) << "unflushed store must be lost";
}

TEST(Arena, CrashIsCacheLineGranular) {
  Arena a(small_opts());
  const uint64_t off = a.alloc(128, 64);
  auto* p = a.ptr<uint64_t>(off);
  p[0] = 1;  // line 0
  p[8] = 2;  // line 1
  a.persist(&p[8], 8);
  a.crash();
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[8], 2u);
}

TEST(Arena, ArmedCrashFiresOnNthPersist) {
  Arena a(small_opts());
  const uint64_t off = a.alloc(64, 64);
  auto* p = a.ptr<uint64_t>(off);
  a.arm_crash_after(3);
  p[0] = 1;
  a.persist(p, 8);
  p[0] = 2;
  a.persist(p, 8);
  p[0] = 3;
  EXPECT_THROW(a.persist(p, 8), CrashPoint);
  a.crash();
  EXPECT_EQ(p[0], 2u) << "the crashing persist must not have flushed";
  // Disarmed after firing: further persists succeed.
  p[0] = 4;
  EXPECT_NO_THROW(a.persist(p, 8));
}

TEST(Arena, EvictionModeKeepsSomeDirtyLines) {
  Arena::Options o = small_opts();
  o.eviction_prob = 1.0;  // every dirty line "was evicted" = persisted
  Arena a(o);
  const uint64_t off = a.alloc(64, 64);
  auto* p = a.ptr<uint64_t>(off);
  p[0] = 42;  // dirty, never flushed
  a.crash();
  EXPECT_EQ(p[0], 42u);
}

TEST(Arena, EvictionSurvivalIsLineGranularNeverTorn) {
  // Fractional eviction: at crash each dirty line independently survives
  // or rolls back, but a line is never torn — all 64 bytes are either the
  // new content or the old content.
  constexpr int kLines = 512;
  Arena::Options o = small_opts();
  o.eviction_prob = 0.5;
  o.crash_seed = 7;
  Arena a(o);
  const uint64_t off = a.alloc(kLines * kCacheLine, kCacheLine);
  auto* p = a.ptr<uint64_t>(off);
  for (int l = 0; l < kLines; ++l)
    for (int w = 0; w < 8; ++w) p[l * 8 + w] = uint64_t(l) * 8 + w + 1;
  a.crash();
  int survivors = 0;
  for (int l = 0; l < kLines; ++l) {
    const bool first_new = p[l * 8] == uint64_t(l) * 8 + 1;
    survivors += first_new ? 1 : 0;
    for (int w = 0; w < 8; ++w) {
      const uint64_t want = first_new ? uint64_t(l) * 8 + w + 1 : 0;
      ASSERT_EQ(p[l * 8 + w], want)
          << "line " << l << " torn at word " << w;
    }
  }
  // Binomial(512, 0.5): 3 sigma is ~34 lines. Both all-or-nothing outcomes
  // would mean the probability is not being applied per line.
  EXPECT_GT(survivors, 256 - 100);
  EXPECT_LT(survivors, 256 + 100);
}

TEST(Arena, EvictionRateTracksProbability) {
  constexpr int kLines = 2048;
  Arena::Options o = small_opts();
  o.eviction_prob = 0.3;
  o.crash_seed = 11;
  Arena a(o);
  const uint64_t off = a.alloc(kLines * kCacheLine, kCacheLine);
  auto* p = a.ptr<uint64_t>(off);
  for (int l = 0; l < kLines; ++l) p[l * 8] = 1;
  a.crash();
  int survivors = 0;
  for (int l = 0; l < kLines; ++l) survivors += p[l * 8] == 1 ? 1 : 0;
  const double rate = double(survivors) / kLines;
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 0.35);
}

TEST(Arena, EvictionIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Arena::Options o;
    o.size = 1 << 20;
    o.shadow = true;
    o.charge_alloc_persist = false;
    o.eviction_prob = 0.5;
    o.crash_seed = seed;
    Arena a(o);
    const uint64_t off = a.alloc(256 * kCacheLine, kCacheLine);
    auto* p = a.ptr<uint64_t>(off);
    for (int l = 0; l < 256; ++l) p[l * 8] = l + 1;
    a.crash();
    std::vector<uint64_t> out(256);
    for (int l = 0; l < 256; ++l) out[l] = p[l * 8];
    return out;
  };
  EXPECT_EQ(run(3), run(3)) << "same seed must replay the same survivors";
  EXPECT_NE(run(3), run(4)) << "different seeds must differ (256 lines)";
}

TEST(Arena, EvictionSweepNeverLosesFlushedPrefix) {
  // Armed-crash sweep under fractional eviction: everything persisted
  // before the crash point must survive regardless of what the eviction
  // coin does to the unflushed suffix.
  constexpr int kRecs = 32;
  for (uint64_t crash_at = 1; crash_at <= kRecs; crash_at += 3) {
    Arena::Options o = small_opts();
    o.eviction_prob = 0.5;
    o.crash_seed = crash_at;  // vary the coin flips across the sweep
    Arena a(o);
    const uint64_t off = a.alloc(kRecs * kCacheLine, kCacheLine);
    auto* p = a.ptr<uint64_t>(off);
    a.arm_crash_after(crash_at);
    uint64_t done = 0;
    try {
      for (int r = 0; r < kRecs; ++r) {
        p[r * 8] = r + 100;
        a.persist(&p[r * 8], 8);
        ++done;
      }
    } catch (const CrashPoint&) {
      a.crash();
    }
    for (uint64_t r = 0; r < done; ++r)
      ASSERT_EQ(p[r * 8], r + 100)
          << "flushed record " << r << " lost (crash_at=" << crash_at << ")";
    for (uint64_t r = done; r < kRecs; ++r)
      ASSERT_TRUE(p[r * 8] == 0 || p[r * 8] == r + 100)
          << "record " << r << " torn (crash_at=" << crash_at << ")";
  }
}

TEST(Arena, EvictionSurvivorsAreCleanUnderPmCheck) {
  // A dirty line that survives the crash via eviction is persistent state:
  // PMCheck must re-sync and not flag recovery reads of it.
  Arena::Options o = small_opts();
  o.eviction_prob = 1.0;
  o.check = true;
  Arena a(o);
  const uint64_t off = a.alloc(64, 64);
  auto* p = a.ptr<uint64_t>(off);
  p[0] = 42;  // never flushed
  a.crash();
  a.pm_read(p, 8);
  EXPECT_EQ(p[0], 42u);
  const auto rep = a.pm_report();
  EXPECT_EQ(rep.total(), 0u) << rep.to_string();
  EXPECT_TRUE(a.checker()->unflushed_spans().empty());
}

TEST(Arena, ResetAndMarkRebuildAllocationMap) {
  Arena a(small_opts());
  const uint64_t keep = a.alloc(128, 64);
  a.alloc(128, 64);  // will become unreachable
  a.reset_alloc_map();
  EXPECT_FALSE(a.is_allocated(keep, 128));
  a.mark_used(keep, 128);
  EXPECT_TRUE(a.is_allocated(keep, 128));
  // The unmarked span must be allocatable again; the marked one must not
  // be handed out.
  std::set<uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(a.alloc(128, 64));
  EXPECT_EQ(seen.count(keep), 0u);
}

TEST(Arena, AllocMetadataChargeIsCounted) {
  Arena::Options o = small_opts();
  o.charge_alloc_persist = true;
  Arena a(o);
  const uint64_t off = a.alloc(64, 64);
  a.free(off, 64, 64);
  EXPECT_EQ(a.stats().alloc_meta_persists.load(), 2u);
}

TEST(Arena, LiveByteAccountingBalances) {
  Arena a(small_opts());
  const uint64_t o1 = a.alloc(100, 64);
  const uint64_t o2 = a.alloc(200, 64);
  EXPECT_EQ(a.stats().pm_live_bytes.load(), 300u);
  a.free(o1, 100, 64);
  a.free(o2, 200, 64);
  EXPECT_EQ(a.stats().pm_live_bytes.load(), 0u);
}

TEST(Arena, RootObjectIsZeroInitializedAndStable) {
  struct Root {
    uint64_t magic;
    uint64_t payload[4];
  };
  Arena a(small_opts());
  auto* r = a.root<Root>();
  EXPECT_EQ(r->magic, 0u);
  r->magic = 77;
  a.persist(r, sizeof(*r));
  EXPECT_EQ(a.root<Root>()->magic, 77u);
}

TEST(Arena, FileBackedArenaSurvivesReopen) {
  const auto path =
      std::filesystem::temp_directory_path() / "hart_arena_test.pm";
  std::filesystem::remove(path);
  struct Root {
    uint64_t magic;
  };
  {
    Arena::Options o;
    o.size = 1 << 20;
    o.file_path = path.string();
    Arena a(o);
    EXPECT_FALSE(a.reopened());
    a.root<Root>()->magic = 123;
    a.persist(a.root<Root>(), sizeof(Root));
  }
  {
    Arena::Options o;
    o.size = 1 << 20;
    o.file_path = path.string();
    Arena a(o);
    EXPECT_TRUE(a.reopened());
    EXPECT_EQ(a.root<Root>()->magic, 123u);
  }
  std::filesystem::remove(path);
}

TEST(Arena, RelativeFilePathResolvesUnderArenaDirEnv) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "hart_arena_env_test" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  ASSERT_EQ(::setenv("HART_ARENA_DIR", dir.c_str(), 1), 0);
  struct Root {
    uint64_t magic;
  };
  {
    Arena::Options o;
    o.size = 1 << 20;
    o.file_path = "rel.arena";  // relative: lands under $HART_ARENA_DIR
    Arena a(o);
    a.root<Root>()->magic = 9;
    a.persist(a.root<Root>(), sizeof(Root));
  }
  EXPECT_TRUE(std::filesystem::exists(dir / "rel.arena"));
  EXPECT_EQ(Arena::resolve_file_path("rel.arena"), (dir / "rel.arena").string());
  {
    Arena::Options o;
    o.size = 1 << 20;
    o.file_path = "rel.arena";
    Arena a(o);
    EXPECT_TRUE(a.reopened());
    EXPECT_EQ(a.root<Root>()->magic, 9u);
  }
  // Absolute paths ignore the env entirely.
  const auto abs = std::filesystem::temp_directory_path() / "hart_abs.arena";
  EXPECT_EQ(Arena::resolve_file_path(abs.string()), abs.string());
  ASSERT_EQ(::unsetenv("HART_ARENA_DIR"), 0);
  std::filesystem::remove_all(dir.parent_path());
}

TEST(Arena, ZeroSizeResolvesFromArenaMbEnv) {
  ASSERT_EQ(::setenv("HART_ARENA_MB", "8", 1), 0);
  Arena::Options o;
  o.size = 0;
  Arena a(o);
  EXPECT_EQ(a.size(), size_t{8} << 20);
  ASSERT_EQ(::unsetenv("HART_ARENA_MB"), 0);
  // Explicit sizes are untouched by the env.
  ASSERT_EQ(::setenv("HART_ARENA_MB", "4", 1), 0);
  Arena::Options o2;
  o2.size = 2 << 20;
  Arena b(o2);
  EXPECT_EQ(b.size(), size_t{2} << 20);
  ASSERT_EQ(::unsetenv("HART_ARENA_MB"), 0);
}

TEST(Arena, DeferredLatencyBanksInsteadOfSpinning) {
  Arena::Options o = small_opts();
  o.latency = LatencyConfig::c300_300();  // +200 ns/line both ways
  o.defer_latency = true;
  Arena a(o);
  const uint64_t off = a.alloc(128, 64);
  EXPECT_EQ(a.owed_latency_ns(), 0u);
  a.persist(a.ptr<char>(off), 128);  // 2 lines -> 400 ns owed
  EXPECT_EQ(a.owed_latency_ns(), 400u);
  a.pm_read(a.ptr<char>(off), 64);  // 1 line -> +200 ns
  EXPECT_EQ(a.owed_latency_ns(), 600u);
  EXPECT_EQ(a.pay_latency(), 600u);
  EXPECT_EQ(a.owed_latency_ns(), 0u);
  EXPECT_EQ(a.pay_latency(), 0u);  // nothing owed: no sleep, returns 0
}

TEST(Arena, PmReadCountsLines) {
  Arena a(small_opts());
  const uint64_t off = a.alloc(256, 64);
  const uint64_t before = a.stats().pm_read_lines.load();
  a.pm_read(a.ptr<char>(off), 256);
  EXPECT_EQ(a.stats().pm_read_lines.load(), before + 4);
}

TEST(LatencyConfig, DeltasMatchPaperConfigs) {
  EXPECT_EQ(LatencyConfig::c300_100().extra_write_ns(), 200u);
  EXPECT_EQ(LatencyConfig::c300_100().extra_read_ns(), 0u);
  EXPECT_EQ(LatencyConfig::c300_300().extra_read_ns(), 200u);
  EXPECT_EQ(LatencyConfig::c600_300().extra_write_ns(), 500u);
  EXPECT_EQ(LatencyConfig::off().extra_write_ns(), 0u);
  EXPECT_EQ(LatencyConfig::c300_100().label(), "300/100");
}

}  // namespace
}  // namespace hart::pmem
