// Tests for the common layer: RNG determinism and distribution, stopwatch
// monotonicity, and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace hart::common {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42), c(43);
  bool all_equal = true, any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.next();
    all_equal &= (x == b.next());
    any_diff_c |= (x != c.next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, NextBelowStaysInRangeAndCoversIt) {
  Rng rng(7);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(seen[i]) << i;
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(123);
  int counts[8] = {};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(8)];
  for (const int c : counts)
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BoolProbability) {
  Rng rng(9);
  int truthy = 0;
  for (int i = 0; i < 10000; ++i) truthy += rng.next_bool(0.25);
  EXPECT_NEAR(truthy, 2500, 250);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile uint64_t x = 0;
  for (int i = 0; i < 2000000; ++i) x = x + static_cast<uint64_t>(i);
  EXPECT_GT(sw.nanos(), 0u);
  const double before = sw.seconds();
  sw.reset();
  EXPECT_LE(sw.seconds(), before);
}

TEST(Table, PrintsAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos) << s;
  EXPECT_NE(s.find("| longer-name | 2.50  |"), std::string::npos) << s;
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 3), "1.000");
}

TEST(Table, ShortRowsPadWithEmptyCells) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| only |"), std::string::npos);
}

}  // namespace
}  // namespace hart::common
