// Unit tests for HART's hash directory: prefix packing, lexicographic
// ordering of packed prefixes, bucket distribution, concurrent
// find_or_create races, and ordered partition enumeration.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "hart/hash_dir.h"

namespace hart::core {
namespace {

pmem::Arena::Options tiny() {
  pmem::Arena::Options o;
  o.size = 4 << 20;
  return o;
}

TEST(PackHashKey, PacksBigEndianPrefix) {
  EXPECT_EQ(pack_hash_key("AB", 2), uint64_t{0x41} << 56 | uint64_t{0x42} << 48);
  EXPECT_EQ(pack_hash_key("ABCD", 2), pack_hash_key("ABzz", 2))
      << "only the first kh bytes participate";
  EXPECT_EQ(pack_hash_key("A", 2), uint64_t{0x41} << 56)
      << "short keys zero-pad";
  EXPECT_EQ(pack_hash_key("anything", 0), 0u);
}

TEST(PackHashKey, NumericOrderIsLexicographicPrefixOrder) {
  // Because keys contain no NUL bytes, zero-padded short prefixes sort
  // before their extensions — matching std::string order.
  const std::vector<std::string> keys = {"A",  "AB", "Az", "B",
                                         "B0", "a",  "ab", "zz"};
  for (size_t i = 1; i < keys.size(); ++i)
    EXPECT_LT(pack_hash_key(keys[i - 1], 2), pack_hash_key(keys[i], 2))
        << keys[i - 1] << " vs " << keys[i];
}

TEST(PackHashKey, LongerKhUsesMoreBytes) {
  EXPECT_NE(pack_hash_key("ABC", 3), pack_hash_key("ABD", 3));
  EXPECT_EQ(pack_hash_key("ABC", 2), pack_hash_key("ABD", 2));
}

class HashDirTest : public ::testing::Test {
 protected:
  HashDirTest()
      : arena_(tiny()),
        dir_(1 << 10, HartLeafTraits{2, &arena_}, &dram_) {}
  pmem::Arena arena_;
  std::atomic<uint64_t> dram_{0};
  HashDir dir_;
};

TEST_F(HashDirTest, FindMissesOnEmpty) {
  EXPECT_EQ(dir_.find(pack_hash_key("AA", 2)), nullptr);
  EXPECT_EQ(dir_.partition_count(), 0u);
}

TEST_F(HashDirTest, FindOrCreateIsIdempotent) {
  auto* p1 = dir_.find_or_create(pack_hash_key("AA", 2));
  auto* p2 = dir_.find_or_create(pack_hash_key("AA", 2));
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(dir_.find(pack_hash_key("AA", 2)), p1);
  EXPECT_EQ(dir_.partition_count(), 1u);
}

TEST_F(HashDirTest, DistinctPrefixesDistinctPartitions) {
  std::set<HashDir::Partition*> parts;
  for (char a = 'A'; a <= 'Z'; ++a)
    for (char b = 'a'; b <= 'z'; ++b) {
      const std::string k{a, b};
      parts.insert(dir_.find_or_create(pack_hash_key(k, 2)));
    }
  EXPECT_EQ(parts.size(), 26u * 26u);
  EXPECT_EQ(dir_.partition_count(), 26u * 26u);
}

TEST_F(HashDirTest, OrderedEnumerationFromLowerBound) {
  for (const char* k : {"zz", "aa", "mm", "ab", "ba"})
    dir_.find_or_create(pack_hash_key(k, 2));
  std::vector<uint64_t> seen;
  dir_.for_each_partition_from(pack_hash_key("ab", 2),
                               [&](HashDir::Partition* p) {
                                 seen.push_back(p->hkey);
                                 return true;
                               });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), pack_hash_key("ab", 2));
  // Early stop.
  int n = 0;
  dir_.for_each_partition_from(0, [&](HashDir::Partition*) {
    return ++n < 2;
  });
  EXPECT_EQ(n, 2);
}

TEST_F(HashDirTest, DramAccountingGrowsWithPartitions) {
  const uint64_t base = dram_.load();
  for (int i = 0; i < 100; ++i)
    dir_.find_or_create(static_cast<uint64_t>(i) << 40);
  EXPECT_GE(dram_.load(), base + 100 * sizeof(HashDir::Partition));
}

TEST_F(HashDirTest, ConcurrentFindOrCreateYieldsOnePartitionPerKey) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 500;
  std::vector<std::vector<HashDir::Partition*>> got(
      kThreads, std::vector<HashDir::Partition*>(kKeys));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeys; ++i)
        got[t][i] =
            dir_.find_or_create(static_cast<uint64_t>(i + 1) << 40);
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < kKeys; ++i)
    for (int t = 1; t < kThreads; ++t)
      EXPECT_EQ(got[t][i], got[0][i]) << "key " << i;
  EXPECT_EQ(dir_.partition_count(), static_cast<size_t>(kKeys));
}

TEST_F(HashDirTest, BucketDistributionHasNoPathologicalChains) {
  // Regression for the packed-prefix hashing bug: prefixes live in the
  // *top* bytes; the bucket hash must still spread them. With 1024 buckets
  // and 676 alphabetic prefixes, lookups must stay O(1)-ish — measured
  // here structurally: creating and finding each of 676 prefixes must not
  // devolve into chain scans thousands long (which the original
  // multiply-shift hash produced: everything in bucket 0).
  std::vector<uint64_t> hkeys;
  for (char a = 'a'; a <= 'z'; ++a)
    for (char b = 'a'; b <= 'z'; ++b)
      hkeys.push_back(pack_hash_key(std::string{a, b}, 2));
  for (const uint64_t hk : hkeys) dir_.find_or_create(hk);
  // Probe: the longest chain is bounded. We cannot observe chains
  // directly, so bound total find() work by time-free proxy: every key
  // findable (correctness) and partition count exact.
  for (const uint64_t hk : hkeys) EXPECT_NE(dir_.find(hk), nullptr);
  EXPECT_EQ(dir_.partition_count(), hkeys.size());
}

TEST_F(HashDirTest, ClearRemovesEverything) {
  for (int i = 1; i <= 50; ++i)
    dir_.find_or_create(static_cast<uint64_t>(i) << 40);
  dir_.clear();
  EXPECT_EQ(dir_.partition_count(), 0u);
  EXPECT_EQ(dir_.find(uint64_t{5} << 40), nullptr);
}

}  // namespace
}  // namespace hart::core
