// Functional tests for the HART index: CRUD semantics, key splitting,
// range scans, recovery equivalence, and memory accounting.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "hart/hart.h"

namespace hart::core {
namespace {

testutil::CheckedArena make_arena(size_t mb = 64) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

TEST(Hart, InsertSearchRoundTrip) {
  auto arena = make_arena();
  Hart h(*arena);
  EXPECT_EQ(h.insert("hello", "world"), common::Status::kInserted);
  std::string v;
  EXPECT_EQ(h.search("hello", &v), common::Status::kOk);
  EXPECT_EQ(v, "world");
  EXPECT_EQ(h.search("hell", &v), common::Status::kNotFound);
  EXPECT_EQ(h.search("hello!", &v), common::Status::kNotFound);
  EXPECT_EQ(h.size(), 1u);
}

TEST(Hart, InsertExistingKeyUpdates) {
  auto arena = make_arena();
  Hart h(*arena);
  EXPECT_EQ(h.insert("k", "v1"), common::Status::kInserted);
  EXPECT_EQ(h.insert("k", "v2"), common::Status::kUpdated) << "Alg.1 line 7-8: update, not insert";
  std::string v;
  EXPECT_EQ(h.search("k", &v), common::Status::kOk);
  EXPECT_EQ(v, "v2");
  EXPECT_EQ(h.size(), 1u);
}

TEST(Hart, UpdateRequiresExistingKey) {
  auto arena = make_arena();
  Hart h(*arena);
  EXPECT_EQ(h.update("missing", "v"), common::Status::kNotFound);
  h.insert("present", "a");
  EXPECT_EQ(h.update("present", "b"), common::Status::kOk);
  std::string v;
  h.search("present", &v);
  EXPECT_EQ(v, "b");
}

TEST(Hart, UpdateAcrossValueSizeClasses) {
  auto arena = make_arena();
  Hart h(*arena);
  h.insert("k", "short");                  // 8-byte class
  EXPECT_EQ(h.update("k", "a-much-longer-v"), common::Status::kOk);  // 16-byte class
  std::string v;
  EXPECT_EQ(h.search("k", &v), common::Status::kOk);
  EXPECT_EQ(v, "a-much-longer-v");
  EXPECT_EQ(h.update("k", "x"), common::Status::kOk);  // back to the 8-byte class
  EXPECT_EQ(h.search("k", &v), common::Status::kOk);
  EXPECT_EQ(v, "x");
}

TEST(Hart, RemoveDeletesAndFreesPm) {
  auto arena = make_arena();
  Hart h(*arena);
  h.insert("a", "1");
  h.insert("b", "2");
  EXPECT_EQ(h.remove("a"), common::Status::kOk);
  EXPECT_EQ(h.remove("a"), common::Status::kNotFound);
  std::string v;
  EXPECT_EQ(h.search("a", &v), common::Status::kNotFound);
  EXPECT_EQ(h.search("b", &v), common::Status::kOk);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.remove("b"), common::Status::kOk);
  EXPECT_EQ(h.size(), 0u);
  // Freed slots are retired through EBR and recycled once a grace period
  // has passed; quiesce() drains the limbo lists deterministically.
  h.quiesce();
  EXPECT_EQ(arena->stats().pm_live_bytes.load(), 0u);
}

TEST(Hart, KeysShorterThanHashPrefix) {
  auto arena = make_arena();
  Hart h(*arena, {.hash_key_len = 2});
  EXPECT_EQ(h.insert("a", "1"), common::Status::kInserted);
  EXPECT_EQ(h.insert("ab", "2"), common::Status::kInserted);
  EXPECT_EQ(h.insert("abc", "3"), common::Status::kInserted);
  std::string v;
  EXPECT_EQ(h.search("a", &v), common::Status::kOk);
  EXPECT_EQ(v, "1");
  EXPECT_EQ(h.search("ab", &v), common::Status::kOk);
  EXPECT_EQ(v, "2");
  EXPECT_EQ(h.search("abc", &v), common::Status::kOk);
  EXPECT_EQ(v, "3");
  EXPECT_EQ(h.remove("ab"), common::Status::kOk);
  EXPECT_EQ(h.search("a", &v), common::Status::kOk);
  EXPECT_EQ(h.search("abc", &v), common::Status::kOk);
}

TEST(Hart, DistinctPrefixesUseDistinctArts) {
  auto arena = make_arena();
  Hart h(*arena, {.hash_key_len = 2});
  h.insert("aa111", "1");
  h.insert("aa222", "2");
  h.insert("bb111", "3");
  h.insert("cc111", "4");
  EXPECT_EQ(h.partition_count(), 3u);
}

TEST(Hart, HashKeyLenZeroIsSingleArt) {
  auto arena = make_arena();
  Hart h(*arena, {.hash_key_len = 0});
  h.insert("alpha", "1");
  h.insert("beta", "2");
  h.insert("gamma", "3");
  EXPECT_EQ(h.partition_count(), 1u);
  std::string v;
  EXPECT_EQ(h.search("beta", &v), common::Status::kOk);
  EXPECT_EQ(v, "2");
}

TEST(Hart, RejectsInvalidKeysAndValues) {
  auto arena = make_arena();
  Hart h(*arena);
  const common::Status bad = common::Status::kInvalidArgument;
  EXPECT_EQ(h.insert("", "v"), bad);
  EXPECT_EQ(h.insert(std::string(25, 'x'), "v"), bad);
  EXPECT_EQ(h.insert(std::string("a\0b", 3), "v"), bad);
  EXPECT_EQ(h.insert("k", ""), bad);
  EXPECT_EQ(h.insert("k", std::string(65, 'v')), bad);
  // Rejection happens before any mutation.
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.search(std::string("a\0b", 3), nullptr), bad);
  EXPECT_EQ(h.update("", "v"), bad);
  EXPECT_EQ(h.remove(std::string(25, 'x')), bad);
  EXPECT_EQ(h.insert(std::string(24, 'x'), std::string(64, 'v')),
            common::Status::kInserted);
}

TEST(Hart, RangeScanIsOrderedAcrossPartitions) {
  auto arena = make_arena();
  Hart h(*arena, {.hash_key_len = 2});
  const std::vector<std::string> keys = {"aa1", "aa2", "ab1", "b",
                                         "ba9", "bb0", "zz9"};
  for (const auto& key : keys) h.insert(key, "v" + key);
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(h.range("ab", 100, &out), 5u);
  std::vector<std::string> got;
  for (auto& [key, value] : out) got.push_back(key);
  EXPECT_EQ(got,
            (std::vector<std::string>{"ab1", "b", "ba9", "bb0", "zz9"}));
  // Limit respected.
  EXPECT_EQ(h.range("aa1", 3, &out), 3u);
  EXPECT_EQ(out[0].first, "aa1");
  EXPECT_EQ(out[2].first, "ab1");
  // Values travel with keys.
  EXPECT_EQ(out[0].second, "vaa1");
}

TEST(Hart, RecoveryRebuildsIdenticalContents) {
  auto arena = make_arena();
  common::Rng rng(11);
  std::map<std::string, std::string> ref;
  {
    Hart h(*arena);
    for (int i = 0; i < 2000; ++i) {
      std::string key;
      const size_t len = 3 + rng.next_below(10);
      for (size_t j = 0; j < len; ++j)
        key.push_back(static_cast<char>('A' + rng.next_below(26)));
      std::string value = "v" + std::to_string(i);
      h.insert(key, value);
      ref[key] = value;
    }
    // Delete a quarter.
    int n = 0;
    for (auto it = ref.begin(); it != ref.end();) {
      if (++n % 4 == 0) {
        EXPECT_EQ(h.remove(it->first), common::Status::kOk);
        it = ref.erase(it);
      } else {
        ++it;
      }
    }
  }
  // A second Hart on the same arena re-opens and recovers (Alg. 7).
  Hart h2(*arena);
  EXPECT_EQ(h2.size(), ref.size());
  for (const auto& [key, value] : ref) {
    std::string v;
    EXPECT_EQ(h2.search(key, &v), common::Status::kOk) << key;
    EXPECT_EQ(v, value) << key;
  }
  // Ordered scan equals the reference map order.
  std::vector<std::pair<std::string, std::string>> out;
  h2.range(ref.begin()->first, ref.size() + 10, &out);
  ASSERT_EQ(out.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [key, value] : out) {
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(value, it->second);
    ++it;
  }
}

TEST(Hart, MemoryUsageTracksBothTiers) {
  auto arena = make_arena();
  Hart h(*arena);
  const auto before = h.memory_usage();
  for (int i = 0; i < 1000; ++i)
    h.insert("key" + std::to_string(i), "value");
  const auto after = h.memory_usage();
  EXPECT_GT(after.dram_bytes, before.dram_bytes);
  EXPECT_GT(after.pm_bytes, before.pm_bytes);
}

TEST(Hart, PersistCallsPerInsertAreBounded) {
  // Selective persistence: a non-chunk-allocating insert costs a handful of
  // persists (value, p_value, value bit, leaf fields, leaf bit), never one
  // per touched internal node.
  auto arena = make_arena();
  Hart h(*arena);
  for (int i = 0; i < 200; ++i)  // warm up chunks
    h.insert("warm" + std::to_string(i), "v");
  const uint64_t before = arena->stats().persist_calls.load();
  for (int i = 0; i < 50; ++i)
    h.insert("probe" + std::to_string(i), "v");
  const uint64_t per_op = (arena->stats().persist_calls.load() - before) / 50;
  EXPECT_LE(per_op, 7u);
  EXPECT_GE(per_op, 5u);
}


TEST(Hart, MultiGetGroupsByPartition) {
  auto arena = make_arena();
  Hart h(*arena);
  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back("mg" + std::to_string(i));
    h.insert(keys.back(), "v" + std::to_string(i));
  }
  // Interleave misses.
  std::vector<std::string> req;
  for (int i = 0; i < 500; i += 2) {
    req.push_back(keys[i]);
    req.push_back("absent" + std::to_string(i));
  }
  std::vector<std::string> vals;
  std::vector<bool> found;
  EXPECT_EQ(h.multi_get(req, &vals, &found), 250u);
  for (size_t i = 0; i < req.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(found[i]) << req[i];
      EXPECT_EQ(vals[i], "v" + req[i].substr(2));
    } else {
      EXPECT_FALSE(found[i]);
      EXPECT_TRUE(vals[i].empty());
    }
  }
}

TEST(Hart, MultiGetEmptyAndInvalid) {
  auto arena = make_arena();
  Hart h(*arena);
  std::vector<std::string> vals;
  std::vector<bool> found;
  EXPECT_EQ(h.multi_get({}, &vals, &found), 0u);
  // Invalid keys are plain misses in a batch — the valid entries still
  // come back (API v2: no exceptions from the read path).
  h.insert("ok", "v");
  EXPECT_EQ(h.multi_get({"", "ok", std::string(25, 'x')}, &vals, &found), 1u);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_FALSE(found[0]);
  EXPECT_TRUE(found[1]);
  EXPECT_EQ(vals[1], "v");
  EXPECT_FALSE(found[2]);
}

TEST(Hart, MultiGetAgreesWithSearch) {
  auto arena = make_arena();
  Hart h(*arena);
  common::Rng rng(21);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    std::string k;
    const size_t len = 2 + rng.next_below(10);
    for (size_t j = 0; j < len; ++j)
      k.push_back(static_cast<char>('a' + rng.next_below(20)));
    keys.push_back(k);
    h.insert(k, k.substr(0, 8));
  }
  std::vector<std::string> vals;
  std::vector<bool> found;
  h.multi_get(keys, &vals, &found);
  for (size_t i = 0; i < keys.size(); ++i) {
    std::string v;
    const bool f = h.search(keys[i], &v).ok();
    EXPECT_EQ(f, static_cast<bool>(found[i])) << keys[i];
    if (f) {
      EXPECT_EQ(v, vals[i]);
    }
  }
}

}  // namespace
}  // namespace hart::core
