// WOART tests: CRUD semantics, differential fuzz against std::map,
// node-type transitions, crash-point sweeps over the failure-atomic commit
// protocol, and reachability-based recovery.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "pmem/arena.h"
#include "woart/woart.h"

namespace hart::pmart {
namespace {

testutil::CheckedArena make_arena(size_t mb = 64) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

std::string random_key(common::Rng& rng, uint32_t max_len = 12,
                       uint32_t alphabet = 6) {
  std::string s;
  const size_t len = 1 + rng.next_below(max_len);
  for (size_t j = 0; j < len; ++j)
    s.push_back(static_cast<char>('a' + rng.next_below(alphabet)));
  return s;
}

TEST(Woart, InsertSearchUpdateRemove) {
  auto arena = make_arena();
  Woart t(*arena);
  EXPECT_EQ(t.insert("alpha", "1"), common::Status::kInserted);
  EXPECT_EQ(t.insert("beta", "2"), common::Status::kInserted);
  EXPECT_EQ(t.insert("alpha", "1b"), common::Status::kUpdated) << "duplicate insert updates";
  std::string v;
  EXPECT_EQ(t.search("alpha", &v), common::Status::kOk);
  EXPECT_EQ(v, "1b");
  EXPECT_EQ(t.update("beta", "2b"), common::Status::kOk);
  EXPECT_EQ(t.search("beta", &v), common::Status::kOk);
  EXPECT_EQ(v, "2b");
  EXPECT_EQ(t.update("gamma", "x"), common::Status::kNotFound);
  EXPECT_EQ(t.remove("alpha"), common::Status::kOk);
  EXPECT_EQ(t.search("alpha", &v), common::Status::kNotFound);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Woart, PrefixKeysAndDeepSplits) {
  auto arena = make_arena();
  Woart t(*arena);
  const std::string base(20, 'q');
  for (const std::string& s :
       {std::string("q"), base, base + "a", base + "b",
        std::string(15, 'q') + "Z"})
    EXPECT_EQ(t.insert(s, "v"), common::Status::kInserted);
  for (const std::string& s :
       {std::string("q"), base, base + "a", base + "b",
        std::string(15, 'q') + "Z"}) {
    std::string v;
    EXPECT_EQ(t.search(s, &v), common::Status::kOk) << s;
  }
}

TEST(Woart, GrowsThroughAllNodeTypes) {
  auto arena = make_arena();
  Woart t(*arena);
  for (int b = 1; b < 256; ++b) {
    std::string s(1, static_cast<char>(b));
    s += "tail";
    EXPECT_EQ(t.insert(s, "v"), common::Status::kInserted);
  }
  EXPECT_EQ(t.size(), 255u);
  for (int b = 1; b < 256; ++b) {
    std::string s(1, static_cast<char>(b));
    s += "tail";
    std::string v;
    EXPECT_EQ(t.search(s, &v), common::Status::kOk) << b;
  }
  // And shrink back down.
  for (int b = 1; b < 250; ++b) {
    std::string s(1, static_cast<char>(b));
    s += "tail";
    EXPECT_EQ(t.remove(s), common::Status::kOk) << b;
  }
  for (int b = 250; b < 256; ++b) {
    std::string s(1, static_cast<char>(b));
    s += "tail";
    std::string v;
    EXPECT_EQ(t.search(s, &v), common::Status::kOk) << b;
  }
}

TEST(Woart, RangeIsSortedAndInclusive) {
  auto arena = make_arena();
  Woart t(*arena);
  for (const char* s : {"fig", "apple", "date", "banana", "cherry"})
    t.insert(s, s);
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(t.range("banana", 10, &out), 4u);
  EXPECT_EQ(out[0].first, "banana");
  EXPECT_EQ(out[3].first, "fig");
  EXPECT_EQ(t.range("bananaa", 10, &out), 3u);
  EXPECT_EQ(out[0].first, "cherry");
}

TEST(Woart, DifferentialFuzzAgainstMap) {
  auto arena = make_arena(128);
  Woart t(*arena);
  std::map<std::string, std::string> ref;
  common::Rng rng(77);
  for (int step = 0; step < 6000; ++step) {
    const std::string key = random_key(rng);
    const std::string val = "v" + std::to_string(step % 997);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const bool fresh = t.insert(key, val) == common::Status::kInserted;
        EXPECT_EQ(fresh, ref.find(key) == ref.end()) << key;
        ref[key] = val;
        break;
      }
      case 2: {
        std::string v;
        const bool found = t.search(key, &v).ok();
        const auto it = ref.find(key);
        EXPECT_EQ(found, it != ref.end()) << key;
        if (found) {
          EXPECT_EQ(v, it->second);
        }
        break;
      }
      default: {
        const bool removed = t.remove(key).ok();
        EXPECT_EQ(removed, ref.erase(key) == 1) << key;
        break;
      }
    }
    EXPECT_EQ(t.size(), ref.size());
  }
  // Final in-order agreement via range.
  std::vector<std::pair<std::string, std::string>> out;
  t.range("a", ref.size() + 10, &out);
  ASSERT_EQ(out.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(Woart, PmLiveBytesReturnToZeroAfterDeletingAll) {
  auto arena = make_arena();
  {
    Woart t(*arena);
    common::Rng rng(5);
    std::map<std::string, int> keys;
    for (int i = 0; i < 800; ++i) keys[random_key(rng)] = 1;
    for (const auto& [k, unused] : keys) t.insert(k, "v");
    for (const auto& [k, unused] : keys) EXPECT_EQ(t.remove(k), common::Status::kOk) << k;
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(arena->stats().pm_live_bytes.load(), 0u);
  }
}

// Crash-point sweep: for each k, crash at the k-th persist while inserting;
// after recovery every previously committed key must be present and the
// tree fully functional. This exercises all of WOART's ordered-store
// commit protocols (NODE4 pointer, NODE16 bitmap, NODE48 child_index,
// NODE256 pointer, CoW grow swings, and the depth-repair path).
TEST(Woart, CrashSweepDuringInserts) {
  common::Rng keyrng(321);
  std::vector<std::string> keys;
  {
    std::map<std::string, int> uniq;
    while (uniq.size() < 300) uniq[random_key(keyrng, 10, 4)] = 1;
    for (auto& [k, unused] : uniq) keys.push_back(k);
  }
  // Shuffle deterministically so node types evolve mid-sweep.
  common::Rng sh(9);
  for (size_t i = keys.size(); i > 1; --i)
    std::swap(keys[i - 1], keys[sh.next_below(i)]);

  for (uint64_t crash_at = 1; crash_at <= 400; crash_at += 13) {
    auto arena = make_arena();
    size_t committed = 0;
    {
      Woart t(*arena);
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          t.insert(k, "val");
          ++committed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    Woart t2(*arena);  // constructor recovers
    for (size_t i = 0; i < committed; ++i) {
      std::string v;
      EXPECT_EQ(t2.search(keys[i], &v), common::Status::kOk)
          << "crash_at=" << crash_at << " key=" << keys[i];
      EXPECT_EQ(v, "val");
    }
    // The tree remains fully usable: finish the inserts.
    for (const auto& k : keys) t2.insert(k, "val2");
    for (const auto& k : keys) {
      std::string v;
      EXPECT_EQ(t2.search(k, &v), common::Status::kOk);
      EXPECT_EQ(v, "val2");
    }
    EXPECT_EQ(t2.size(), keys.size());
  }
}

TEST(Woart, CrashSweepDuringRemoves) {
  common::Rng keyrng(4242);
  std::map<std::string, int> uniq;
  while (uniq.size() < 200) uniq[random_key(keyrng, 8, 4)] = 1;
  std::vector<std::string> keys;
  for (auto& [k, unused] : uniq) keys.push_back(k);

  for (uint64_t crash_at = 1; crash_at <= 120; crash_at += 7) {
    auto arena = make_arena();
    size_t removed = 0;
    {
      Woart t(*arena);
      for (const auto& k : keys) t.insert(k, "val");
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          t.remove(k);
          ++removed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    Woart t2(*arena);
    for (size_t i = 0; i < keys.size(); ++i) {
      std::string v;
      const bool found = t2.search(keys[i], &v).ok();
      if (i < removed) {
        EXPECT_FALSE(found) << "crash_at=" << crash_at << " " << keys[i];
      } else if (i > removed) {
        // Key i was never touched; it must still be there. (Key i ==
        // removed may be in either state: the crash hit mid-operation.)
        EXPECT_TRUE(found) << "crash_at=" << crash_at << " " << keys[i];
      }  // (braces keep gtest's internal if/else unambiguous)
    }
  }
}

TEST(Woart, RecoverRebuildsAllocationMapExactly) {
  auto arena = make_arena();
  common::Rng rng(31);
  std::map<std::string, int> keys;
  while (keys.size() < 500) keys[random_key(rng)] = 1;
  uint64_t live_before = 0;
  {
    Woart t(*arena);
    for (auto& [k, unused] : keys) t.insert(k, "v");
    live_before = arena->stats().pm_live_bytes.load();
  }
  Woart t2(*arena);
  EXPECT_EQ(arena->stats().pm_live_bytes.load(), live_before)
      << "reachability marking must account for exactly the same bytes";
  EXPECT_EQ(t2.size(), keys.size());
}

}  // namespace
}  // namespace hart::pmart
