// Tests for the request distributions (Zipfian / Latest / Uniform) and
// their integration with the mixed-workload generator.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "workload/distribution.h"
#include "workload/mixes.h"

namespace hart::workload {
namespace {

TEST(Zipfian, StaysInRange) {
  common::Rng rng(1);
  ZipfianGen z;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = z.next_below(1000, rng);
    EXPECT_LT(v, 1000u);
  }
}

TEST(Zipfian, IsHeavilySkewedTowardLowRanks) {
  common::Rng rng(2);
  ZipfianGen z;
  constexpr int kDraws = 100000;
  constexpr uint64_t kN = 10000;
  uint64_t in_top_10 = 0, in_top_100 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t v = z.next_below(kN, rng);
    in_top_10 += v < 10;
    in_top_100 += v < 100;
  }
  // theta=0.99 Zipf over 10k items: top-10 gets roughly a third of all
  // accesses, top-100 roughly half. Loose bounds:
  EXPECT_GT(in_top_10, kDraws / 5);
  EXPECT_GT(in_top_100, kDraws / 3);
  EXPECT_LT(in_top_10, kDraws * 3 / 4);
}

TEST(Zipfian, GrowingDomainKeepsWorking) {
  common::Rng rng(3);
  ZipfianGen z;
  for (uint64_t n = 2; n <= 4096; n *= 2)
    for (int i = 0; i < 500; ++i) EXPECT_LT(z.next_below(n, rng), n);
  // Shrinking afterwards also works (recompute path).
  for (int i = 0; i < 500; ++i) EXPECT_LT(z.next_below(100, rng), 100u);
}

TEST(Latest, FavorsHighestIndices) {
  common::Rng rng(4);
  RequestDist d(DistKind::kLatest);
  constexpr uint64_t kN = 10000;
  uint64_t in_newest_100 = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t v = d.next_below(kN, rng);
    ASSERT_LT(v, kN);
    in_newest_100 += v >= kN - 100;
  }
  EXPECT_GT(in_newest_100, kDraws / 3);
}

TEST(Uniform, IsNotSkewed) {
  common::Rng rng(5);
  RequestDist d(DistKind::kUniform);
  uint64_t low_half = 0;
  for (int i = 0; i < 50000; ++i) low_half += d.next_below(1000, rng) < 500;
  EXPECT_NEAR(low_half, 25000, 1500);
}

TEST(RequestDist, DegenerateDomains) {
  common::Rng rng(6);
  for (const DistKind k :
       {DistKind::kUniform, DistKind::kZipfian, DistKind::kLatest}) {
    RequestDist d(k);
    EXPECT_EQ(d.next_below(0, rng), 0u);
    EXPECT_EQ(d.next_below(1, rng), 0u);
  }
}

TEST(MixesWithDistributions, ZipfianMixTargetsHotKeys) {
  // Read-Modified-Write keeps the live set stable, so the Zipfian skew
  // shows up directly as per-key concentration.
  const auto ops = make_mixed_ops(50000, 5000, 60000, kReadModifyWrite, 7,
                                  DistKind::kZipfian);
  std::map<uint32_t, uint64_t> freq;
  for (const auto& op : ops) ++freq[op.key_idx];
  uint64_t max_freq = 0;
  for (const auto& [idx, f] : freq) max_freq = std::max(max_freq, f);
  // Uniform expectation is 10 per key; the Zipf hot key gets orders of
  // magnitude more.
  EXPECT_GT(max_freq, 1000u);
}

TEST(MixesWithDistributions, ReplayValiditySkewed) {
  // Same live-set validity as the uniform case: skew must never produce an
  // op on a dead key.
  const size_t preload = 300;
  const auto ops = make_mixed_ops(20000, preload, 50000, kReadIntensive,
                                  11, DistKind::kLatest);
  std::map<uint32_t, bool> live;
  for (uint32_t i = 0; i < preload; ++i) live[i] = true;
  for (const auto& op : ops) {
    switch (op.type) {
      case OpType::kInsert:
        EXPECT_FALSE(live.count(op.key_idx) && live[op.key_idx]);
        live[op.key_idx] = true;
        break;
      case OpType::kDelete:
        EXPECT_TRUE(live[op.key_idx]);
        live[op.key_idx] = false;
        break;
      default:
        EXPECT_TRUE(live[op.key_idx]);
    }
  }
}

}  // namespace
}  // namespace hart::workload
