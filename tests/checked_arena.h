// Shared test helper: an Arena with PMCheck enabled (Options::check) whose
// deleter asserts that the whole run produced zero persistence violations.
// Index suites use this so every existing functional/crash/concurrency test
// doubles as a PMCheck zero-false-positive test.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "pmem/arena.h"

namespace hart::testutil {

struct CheckedArenaDeleter {
  void operator()(pmem::Arena* a) const {
    if (a == nullptr) return;
    const pmcheck::Report rep = a->pm_report();
    EXPECT_EQ(rep.total(), 0u) << rep.to_string();
    delete a;
  }
};

using CheckedArena = std::unique_ptr<pmem::Arena, CheckedArenaDeleter>;

inline CheckedArena make_checked_arena(pmem::Arena::Options o) {
  o.check = true;
  return CheckedArena(new pmem::Arena(o));
}

}  // namespace hart::testutil
