// Multithreaded stress tests for EPallocator: concurrent two-phase
// allocation never double-issues a slot, commits/frees/recycles from many
// threads keep the chunk lists and bitmaps consistent, and the update-log
// slot pool never hands the same slot to two threads.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "epalloc/epalloc.h"
#include "pmem/arena.h"

namespace hart::epalloc {
namespace {

struct FakeLeaf {
  uint64_t p_value;
  uint8_t val_class;
  uint8_t pad[31];
};

EPAllocator::LeafValueRef probe(const pmem::Arena& a, uint64_t off) {
  const auto* l = a.ptr<FakeLeaf>(off);
  return {l->p_value,
          l->val_class == 0 ? ObjType::kValue8 : ObjType::kValue16};
}
void clear(pmem::Arena& a, uint64_t off) {
  a.ptr<FakeLeaf>(off)->p_value = 0;
  a.persist(a.ptr<FakeLeaf>(off), 8);
}

struct R {
  EPRoot ep;
};

TEST(EPAllocConcurrent, NoSlotIssuedTwice) {
  pmem::Arena::Options o;
  o.size = 128 << 20;
  pmem::Arena arena(o);
  EPAllocator ep(arena, &arena.root<R>()->ep, sizeof(FakeLeaf), &probe,
                 &clear);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<uint64_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t off = ep.ep_malloc(ObjType::kLeaf);
        ep.commit(ObjType::kLeaf, off);
        got[t].push_back(off);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<uint64_t> all;
  for (const auto& v : got)
    for (const uint64_t off : v)
      EXPECT_TRUE(all.insert(off).second) << "slot issued twice: " << off;
  EXPECT_EQ(ep.live_objects(ObjType::kLeaf),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(EPAllocConcurrent, ChurnWithRecyclesStaysConsistent) {
  pmem::Arena::Options o;
  o.size = 128 << 20;
  pmem::Arena arena(o);
  EPAllocator ep(arena, &arena.root<R>()->ep, sizeof(FakeLeaf), &probe,
                 &clear);

  constexpr int kThreads = 8;
  std::atomic<int64_t> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      common::Rng rng(t + 1);
      std::vector<uint64_t> mine;
      for (int step = 0; step < 8000; ++step) {
        if (mine.empty() || rng.next_below(3) != 0) {
          const uint64_t off = ep.ep_malloc(ObjType::kValue8);
          ep.commit(ObjType::kValue8, off);
          mine.push_back(off);
          net.fetch_add(1, std::memory_order_relaxed);
        } else {
          const size_t pick = rng.next_below(mine.size());
          const uint64_t off = mine[pick];
          mine[pick] = mine.back();
          mine.pop_back();
          ep.free_object(ObjType::kValue8, off);
          ep.recycle_chunk_of(ObjType::kValue8, off);
          net.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      for (const uint64_t off : mine) {
        ep.free_object(ObjType::kValue8, off);
        ep.recycle_chunk_of(ObjType::kValue8, off);
        net.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(net.load(), 0);
  EXPECT_EQ(ep.live_objects(ObjType::kValue8), 0u);
  EXPECT_EQ(ep.chunk_count(ObjType::kValue8), 0u)
      << "all empty chunks must have been recycled";
  EXPECT_EQ(arena.stats().pm_live_bytes.load(), 0u);
}

TEST(EPAllocConcurrent, UlogSlotsAreExclusive) {
  pmem::Arena::Options o;
  o.size = 16 << 20;
  pmem::Arena arena(o);
  EPAllocator ep(arena, &arena.root<R>()->ep, sizeof(FakeLeaf), &probe,
                 &clear);

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        UpdateLog* log = ep.acquire_ulog();
        // Exclusive ownership: nobody else writes this slot while held.
        log->pleaf = static_cast<uint64_t>(t + 1);
        log->poldv = static_cast<uint64_t>(i);
        if (log->pleaf != static_cast<uint64_t>(t + 1))
          failed.store(true, std::memory_order_relaxed);
        ep.reclaim_ulog(log);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  for (const auto& slot : arena.root<R>()->ep.ulogs)
    EXPECT_EQ(slot.pleaf, 0u) << "all slots reclaimed";
}

TEST(EPAllocConcurrent, MixedTypesAndStaleProbes) {
  // Leaf allocations racing with value frees exercise the nested
  // LEAF->VALUE lock ordering of the stale-value probe path.
  pmem::Arena::Options o;
  o.size = 128 << 20;
  pmem::Arena arena(o);
  EPAllocator ep(arena, &arena.root<R>()->ep, sizeof(FakeLeaf), &probe,
                 &clear);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      common::Rng rng(t * 31 + 7);
      for (int step = 0; step < 4000; ++step) {
        const uint64_t leaf = ep.ep_malloc(ObjType::kLeaf);
        const ObjType vcls =
            rng.next_below(2) ? ObjType::kValue8 : ObjType::kValue16;
        const uint64_t val = ep.ep_malloc(vcls);
        auto* l = arena.ptr<FakeLeaf>(leaf);
        l->p_value = val;
        l->val_class = vcls == ObjType::kValue8 ? 0 : 1;
        arena.persist(l, sizeof(*l));
        ep.commit(vcls, val);
        ep.commit(ObjType::kLeaf, leaf);
        if (rng.next_below(2)) {
          // Delete via the combined leaf+value release.
          ep.free_leaf_with_value(leaf, vcls, val);
          ep.recycle_chunk_of(vcls, val);
          ep.recycle_chunk_of(ObjType::kLeaf, leaf);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Whatever remains must be internally consistent: every live leaf's
  // value bit is set.
  ep.for_each_live(ObjType::kLeaf, [&](uint64_t off) {
    const auto* l = arena.ptr<FakeLeaf>(off);
    const ObjType vcls =
        l->val_class == 0 ? ObjType::kValue8 : ObjType::kValue16;
    EXPECT_TRUE(ep.bit_is_set(vcls, l->p_value)) << off;
  });
}

}  // namespace
}  // namespace hart::epalloc
