// Concurrency tests for HART's per-ART reader/writer locking (paper
// Section III.A.3 / IV.G): parallel writers on disjoint and overlapping
// prefixes, readers concurrent with writers, and full-churn stress with
// post-hoc validation against a reference.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <atomic>
#include <barrier>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "hart/hart.h"
#include "workload/keygen.h"

namespace hart::core {
namespace {

testutil::CheckedArena make_arena(size_t mb = 256) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

TEST(HartConcurrent, ParallelInsertsDisjointPrefixes) {
  auto arena = make_arena();
  Hart h(*arena);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  std::barrier sync(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      // Distinct 2-byte prefix per thread => distinct ART per thread.
      const std::string prefix = std::string(1, 'A' + t) + "x";
      for (int i = 0; i < kPerThread; ++i)
        ASSERT_EQ(h.insert(prefix + std::to_string(i), "v"), common::Status::kInserted);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.size(), static_cast<size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    const std::string prefix = std::string(1, 'A' + t) + "x";
    for (int i = 0; i < kPerThread; i += 97)
      EXPECT_EQ(h.search(prefix + std::to_string(i), nullptr), common::Status::kOk);
  }
}

TEST(HartConcurrent, ParallelUpsertsSamePrefixSerialize) {
  auto arena = make_arena();
  Hart h(*arena);
  constexpr int kThreads = 8;
  constexpr int kKeys = 200;
  std::vector<std::thread> threads;
  std::barrier sync(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int round = 0; round < 50; ++round)
        for (int i = 0; i < kKeys; ++i)
          h.insert("shared" + std::to_string(i),
                   "t" + std::to_string(t));  // same ART: writers serialize
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    std::string v;
    ASSERT_EQ(h.search("shared" + std::to_string(i), &v), common::Status::kOk);
    EXPECT_EQ(v[0], 't') << "value must be one thread's write, not torn";
  }
}

TEST(HartConcurrent, ReadersRunDuringWrites) {
  auto arena = make_arena();
  Hart h(*arena);
  const auto keys = workload::make_random(20000, 9);
  for (size_t i = 0; i < keys.size() / 2; ++i) h.insert(keys[i], "stable");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hits{0}, misses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      common::Rng rng(t + 1);
      std::string v;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& k = keys[rng.next_below(keys.size())];
        if (h.search(k, &v).ok()) {
          EXPECT_TRUE(v == "stable" || v == "fresh") << v;
          hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = keys.size() / 2 + t; i < keys.size(); i += 2)
        h.insert(keys[i], "fresh");
    });
  }
  for (auto& w : writers) w.join();
  stop = true;
  for (auto& r : readers) r.join();
  EXPECT_GT(hits.load(), 0u);
  EXPECT_EQ(h.size(), keys.size());
  for (const auto& k : keys) EXPECT_EQ(h.search(k, nullptr), common::Status::kOk) << k;
}

TEST(HartConcurrent, FullChurnStressThenValidate) {
  auto arena = make_arena();
  Hart h(*arena);
  constexpr int kThreads = 8;
  const auto keys = workload::make_random(8000, 123);
  // Each thread owns a disjoint slice of keys (the index itself still
  // shares ARTs across threads since prefixes collide).
  std::vector<std::thread> threads;
  std::vector<std::map<std::string, std::string>> finals(kThreads);
  std::barrier sync(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      common::Rng rng(t * 7 + 1);
      auto& mine = finals[t];
      for (int step = 0; step < 6000; ++step) {
        const size_t idx =
            t + kThreads * rng.next_below(keys.size() / kThreads);
        const std::string& k = keys[idx];
        switch (rng.next_below(4)) {
          case 0:
          case 1: {
            const std::string v = "v" + std::to_string(step % 101);
            h.insert(k, v);
            mine[k] = v;
            break;
          }
          case 2: {
            if (h.update(k, "u" + std::to_string(step % 101)).ok())
              mine[k] = "u" + std::to_string(step % 101);
            break;
          }
          default:
            h.remove(k);
            mine.erase(k);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  size_t total = 0;
  for (int t = 0; t < kThreads; ++t) {
    total += finals[t].size();
    for (const auto& [k, v] : finals[t]) {
      std::string got;
      ASSERT_EQ(h.search(k, &got), common::Status::kOk) << k;
      EXPECT_EQ(got, v) << k;
    }
  }
  EXPECT_EQ(h.size(), total);

  // And the whole thing still recovers to the same state.
  Hart h2(*arena);
  EXPECT_EQ(h2.size(), total);
  for (int t = 0; t < kThreads; ++t)
    for (const auto& [k, v] : finals[t]) {
      std::string got;
      ASSERT_EQ(h2.search(k, &got), common::Status::kOk) << k;
      EXPECT_EQ(got, v) << k;
    }
}

TEST(HartConcurrent, ConcurrentRangeScans) {
  auto arena = make_arena();
  Hart h(*arena);
  const auto keys = workload::make_sequential(5000);
  for (const auto& k : keys) h.insert(k, "v");
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::pair<std::string, std::string>> out;
      for (int round = 0; round < 20; ++round) {
        const size_t start = (t * 331 + round * 97) % (keys.size() - 200);
        ASSERT_EQ(h.range(keys[start], 100, &out), 100u);
        for (size_t i = 0; i < 100; ++i)
          EXPECT_EQ(out[i].first, keys[start + i]);
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace hart::core
