// Concurrent HashDir growth vs readers: partitions are only ever added
// (never reclaimed), the chains grow by CAS push, and the sorted side
// directory is what ordered iteration sees. These tests pin down the
// reader-visible guarantees while writers grow the directory:
//   * find_or_create is idempotent and race-safe (one partition per hkey);
//   * an ordered iteration always sees a sorted, duplicate-free snapshot;
//   * iterations are monotone: once a completed pass saw a partition,
//     every later pass sees it too;
//   * at the Hart level, range() stays consistent while inserts create
//     new hash prefixes (= new partitions) underneath it.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hart/hart.h"
#include "hart/hash_dir.h"
#include "pmem/arena.h"

namespace hart::core {
namespace {

TEST(HashDirGrowthTest, FindOrCreateRaceYieldsOnePartitionPerKey) {
  HashDir dir(64, HartLeafTraits{}, nullptr);
  constexpr int kThreads = 4;
  constexpr uint64_t kKeys = 512;
  std::vector<HashDir::Partition*> first(kKeys, nullptr);
  std::vector<std::thread> pool;
  std::atomic<bool> go{false};
  std::vector<std::vector<HashDir::Partition*>> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      seen[t].resize(kKeys);
      while (!go.load()) {
      }
      // Every thread creates every key: heavy same-key contention.
      for (uint64_t k = 0; k < kKeys; ++k)
        seen[t][k] = dir.find_or_create(k * 7919 + 1);
    });
  }
  go.store(true);
  for (auto& th : pool) th.join();
  for (uint64_t k = 0; k < kKeys; ++k)
    for (int t = 1; t < kThreads; ++t)
      ASSERT_EQ(seen[t][k], seen[0][k])
          << "two partitions materialized for the same hash key";
  EXPECT_EQ(dir.partition_count(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k)
    EXPECT_EQ(dir.find(k * 7919 + 1), seen[0][k]);
}

TEST(HashDirGrowthTest, OrderedIterationStaysSortedAndMonotone) {
  HashDir dir(64, HartLeafTraits{}, nullptr);
  constexpr uint64_t kKeys = 4000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> created{0};

  std::thread writer([&] {
    for (uint64_t k = 1; k <= kKeys; ++k) {
      // Shuffled creation order so the sorted view is really doing work.
      dir.find_or_create((k * 48271) % 65537);
      created.store(k, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  size_t passes = 0;
  std::set<uint64_t> prev;
  while (!done.load(std::memory_order_acquire) || passes < 3) {
    const uint64_t floor_count = created.load(std::memory_order_acquire);
    std::set<uint64_t> pass;
    uint64_t last = 0;
    bool sorted = true;
    dir.for_each_partition([&](HashDir::Partition* p) {
      sorted = sorted && (pass.empty() || p->hkey > last);
      last = p->hkey;
      pass.insert(p->hkey);
      return true;
    });
    ASSERT_TRUE(sorted) << "iteration produced out-of-order hash keys";
    // Everything created before the pass started must be visible...
    ASSERT_GE(pass.size(), floor_count);
    // ...and growth is monotone across passes.
    for (const uint64_t k : prev)
      ASSERT_TRUE(pass.count(k) != 0)
          << "partition " << k << " vanished between iterations";
    prev = std::move(pass);
    ++passes;
  }
  writer.join();
  EXPECT_EQ(dir.partition_count(), kKeys);
  EXPECT_GE(passes, 3u);
}

TEST(HashDirGrowthTest, HartRangeConsistentDuringPrefixGrowth) {
  pmem::Arena::Options ao;
  ao.size = size_t{64} << 20;
  pmem::Arena arena(ao);
  Hart::Options ho;
  ho.hash_buckets = 256;  // long chains: growth races get exercised
  Hart h(arena, ho);

  // Writer: every key has a fresh 2-byte prefix, so each insert creates a
  // new partition while the reader is mid-scan.
  constexpr int kKeys = 26 * 26;
  std::atomic<int> inserted{0};
  std::thread writer([&] {
    for (int i = 0; i < kKeys; ++i) {
      const std::string key{static_cast<char>('a' + i / 26),
                            static_cast<char>('a' + i % 26), 'x'};
      ASSERT_EQ(h.insert(key, "v"), common::Status::kInserted);
      inserted.store(i + 1, std::memory_order_release);
    }
  });

  while (inserted.load(std::memory_order_acquire) < kKeys) {
    const int floor_count = inserted.load(std::memory_order_acquire);
    std::vector<std::pair<std::string, std::string>> out;
    h.range("a", kKeys + 10, &out);
    // Snapshot consistency: sorted, duplicate-free, values intact, and at
    // least everything inserted before the scan began.
    ASSERT_GE(out.size(), static_cast<size_t>(floor_count));
    for (size_t i = 0; i < out.size(); ++i) {
      if (i > 0) {
        ASSERT_LT(out[i - 1].first, out[i].first);
      }
      ASSERT_EQ(out[i].second, "v");
    }
  }
  writer.join();
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(h.range("a", kKeys + 10, &out), static_cast<size_t>(kKeys));
}

}  // namespace
}  // namespace hart::core
