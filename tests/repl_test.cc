// hartrepl integration tests (DESIGN.md §9): batch-log bookkeeping, the
// promotion state machine, role-aware dispatch, primary->follower delivery
// over a real TCP loopback link, the quorum ack ordering guarantee
// (an acked write is already durable on the follower), client endpoint
// rotation across a failover, and the TCP dispatcher's kProtocolError
// handling of malformed frames.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "repl/batch_log.h"
#include "repl/promotion.h"
#include "server/client.h"
#include "server/hartd.h"
#include "server/proto.h"
#include "server/tcp.h"

namespace hart::server {
namespace {

Hartd::Options base_opts(size_t shards) {
  Hartd::Options o;
  o.shards = shards;
  o.batch_size = 8;
  o.arena_mb = 32;
  return o;
}

Hartd::Options follower_opts(size_t shards) {
  Hartd::Options o = base_opts(shards);
  o.follow = true;
  return o;
}

Hartd::Options primary_opts(size_t shards, uint16_t follower_port,
                            repl::AckPolicy policy) {
  Hartd::Options o = base_opts(shards);
  o.replicate_to = {"127.0.0.1:" + std::to_string(follower_port)};
  o.ack_policy = policy;
  return o;
}

// Poll until `pred` holds or ~5 s elapse.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// ---- BatchLog ------------------------------------------------------------

TEST(BatchLogTest, AssignsMonotoneSeqPerStream) {
  repl::BatchLog log(2, 16);
  EXPECT_EQ(log.streams(), 2u);
  EXPECT_EQ(log.tail_seq(0), 0u);
  EXPECT_EQ(log.base_seq(0), 0u);

  EXPECT_EQ(log.append(0, 10, {{OpCode::kPut, "a", "1"}}), 1u);
  EXPECT_EQ(log.append(0, 11, {{OpCode::kPut, "b", "2"}}), 2u);
  EXPECT_EQ(log.append(1, 12, {{OpCode::kPut, "c", "3"}}), 1u);
  EXPECT_EQ(log.tail_seq(0), 2u);
  EXPECT_EQ(log.tail_seq(1), 1u);
  EXPECT_EQ(log.base_seq(0), 1u);
}

TEST(BatchLogTest, ReadAfterReturnsOnlyNewerRecords) {
  repl::BatchLog log(1, 16);
  for (int i = 0; i < 5; ++i)
    log.append(0, 100 + i, {{OpCode::kPut, "k" + std::to_string(i), "v"}});

  std::vector<repl::BatchLog::Record> out;
  EXPECT_EQ(log.read_after(0, 2, 10, &out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 3u);
  EXPECT_EQ(out[2].seq, 5u);
  EXPECT_EQ(out[0].epoch, 102u);

  out.clear();
  EXPECT_EQ(log.read_after(0, 2, 2, &out), 2u);  // max honored
  out.clear();
  EXPECT_EQ(log.read_after(0, 5, 10, &out), 0u);  // caught up
}

TEST(BatchLogTest, BoundedRetentionEvictsOldest) {
  repl::BatchLog log(1, 3);
  for (int i = 0; i < 10; ++i)
    log.append(0, i, {{OpCode::kPut, "k", "v"}});
  EXPECT_EQ(log.tail_seq(0), 10u);
  EXPECT_EQ(log.base_seq(0), 8u);  // only the last 3 retained

  // A reader behind the retained window sees the gap: the first available
  // record's seq is not its position + 1.
  std::vector<repl::BatchLog::Record> out;
  ASSERT_GT(log.read_after(0, 2, 10, &out), 0u);
  EXPECT_EQ(out.front().seq, 8u);
  EXPECT_NE(out.front().seq, 3u);
}

TEST(BatchLogTest, TailPositionsCoverEveryStream) {
  repl::BatchLog log(3, 8);
  log.append(1, 77, {{OpCode::kPut, "k", "v"}});
  const auto pos = log.tail_positions();
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(pos[0].seq, 0u);
  EXPECT_EQ(pos[1].stream, 1u);
  EXPECT_EQ(pos[1].seq, 1u);
  EXPECT_EQ(pos[1].epoch, 77u);
  EXPECT_EQ(pos[2].seq, 0u);
}

// ---- PromotionMachine ----------------------------------------------------

TEST(PromotionTest, FollowerPromotesExactlyOnce) {
  repl::PromotionMachine m(repl::Role::kFollower);
  EXPECT_FALSE(m.accepts_writes());
  EXPECT_TRUE(m.accepts_repl_batches());

  int drains = 0;
  EXPECT_TRUE(m.promote([&] {
    ++drains;
    EXPECT_EQ(m.role(), repl::Role::kPromoting);
    EXPECT_FALSE(m.accepts_repl_batches());  // no new batches mid-drain
  }));
  EXPECT_EQ(drains, 1);
  EXPECT_EQ(m.role(), repl::Role::kPrimary);
  EXPECT_TRUE(m.accepts_writes());

  // Idempotent: the second promote is a no-op that does not drain again.
  EXPECT_FALSE(m.promote([&] { ++drains; }));
  EXPECT_EQ(drains, 1);
}

TEST(PromotionTest, ConcurrentPromotesDrainOnce) {
  repl::PromotionMachine m(repl::Role::kFollower);
  std::atomic<int> drains{0};
  std::atomic<int> winners{0};
  std::vector<std::thread> ts;
  ts.reserve(4);
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      if (m.promote([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            drains.fetch_add(1);
          }))
        winners.fetch_add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(drains.load(), 1);
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(m.role(), repl::Role::kPrimary);
}

TEST(PromotionTest, PrimaryStartsAcceptingWrites) {
  repl::PromotionMachine m(repl::Role::kPrimary);
  EXPECT_TRUE(m.accepts_writes());
  EXPECT_FALSE(m.accepts_repl_batches());
  EXPECT_FALSE(m.promote([] { FAIL() << "primary must not drain"; }));
}

// ---- role-aware dispatch -------------------------------------------------

TEST(ReplTest, FollowerRejectsClientWritesServesReads) {
  Hartd db(follower_opts(2));
  EXPECT_EQ(db.role(), repl::Role::kFollower);
  EXPECT_EQ(db.execute({OpCode::kPut, "k", "v"}).status,
            Status::kNotPrimary);
  EXPECT_EQ(db.execute({OpCode::kUpdate, "k", "v"}).status,
            Status::kNotPrimary);
  EXPECT_EQ(db.execute({OpCode::kDelete, "k", ""}).status,
            Status::kNotPrimary);
  // Reads stay served (stale-tolerant), as do pings.
  EXPECT_EQ(db.execute({OpCode::kGet, "k", ""}).status, Status::kNotFound);
  EXPECT_EQ(db.execute({OpCode::kPing, "", ""}).status, Status::kOk);
  db.shutdown();
}

TEST(ReplTest, FollowerAnswersStatsWithHealthGauges) {
  Hartd db(follower_opts(2));
  ASSERT_EQ(db.role(), repl::Role::kFollower);

  // A rejected client write is visible in the counters, not just in the
  // per-request status.
  EXPECT_EQ(db.execute({OpCode::kPut, "k", "v"}).status,
            Status::kNotPrimary);

  // STATS is answered on a follower (it is dispatched before the role
  // gate) and carries the replication health gauges under the same names
  // the primary emits.
  const Response st = db.execute({OpCode::kStats, "", ""});
  ASSERT_EQ(st.status, Status::kOk);
  const std::string& text = st.value;
  EXPECT_NE(text.find("hartd_repl_role 1"), std::string::npos) << text;
  EXPECT_NE(text.find("hartd_repl_lag_seq 0"), std::string::npos);
  EXPECT_NE(text.find("hartd_repl_lag_bytes 0"), std::string::npos);
  EXPECT_NE(text.find("hartd_repl_last_confirm_age_ms 0"),
            std::string::npos);

  // Anchor to line start: a bare find() would hit the "# TYPE" line.
  const size_t pos = text.find("\nhartd_write_rejected_total ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GE(std::strtoull(text.c_str() + pos +
                              std::strlen("\nhartd_write_rejected_total "),
                          nullptr, 10),
            1u);
  db.shutdown();
}

TEST(ReplTest, PromoteFlipsFollowerToPrimary) {
  Hartd db(follower_opts(2));
  const Response r = db.execute({OpCode::kPromote, "", ""});
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(db.role(), repl::Role::kPrimary);

  // The response value carries the node's per-stream applied positions.
  std::vector<ReplPosition> pos;
  EXPECT_TRUE(decode_repl_positions(r.value, &pos));

  // Idempotent, and writes are accepted from the response onward.
  EXPECT_EQ(db.execute({OpCode::kPromote, "", ""}).status, Status::kOk);
  EXPECT_TRUE(is_acked_write(db.execute({OpCode::kPut, "k", "v"}).status));
  EXPECT_EQ(db.execute({OpCode::kGet, "k", ""}).value, "v");
  db.shutdown();
}

TEST(ReplTest, PrimaryRejectsReplBatches) {
  Hartd db(base_opts(1));
  std::string payload;
  ASSERT_TRUE(
      encode_repl_batch(0, 1, 1, {{OpCode::kPut, "k", "v"}}, &payload));
  EXPECT_EQ(db.execute({OpCode::kReplBatch, "", payload}).status,
            Status::kNotPrimary);
  db.shutdown();
}

// ---- primary -> follower over TCP ----------------------------------------

TEST(ReplTest, LocalPolicyDeliversWritesToFollower) {
  Hartd follower(follower_opts(2));
  TcpServer fsrv(follower, 0);

  Hartd primary(primary_opts(2, fsrv.port(), repl::AckPolicy::kLocal));
  for (int i = 0; i < 200; ++i) {
    const std::string k = "key-" + std::to_string(i);
    ASSERT_TRUE(is_acked_write(
        primary.execute({OpCode::kPut, k, "val-" + std::to_string(i)})
            .status));
  }

  // Local acks do not wait for the follower, so poll for convergence.
  ASSERT_TRUE(eventually([&] {
    return follower.execute({OpCode::kGet, "key-199", ""}).status ==
           Status::kOk;
  }));
  for (int i = 0; i < 200; ++i) {
    const std::string k = "key-" + std::to_string(i);
    ASSERT_TRUE(eventually([&] {
      return follower.execute({OpCode::kGet, k, ""}).status == Status::kOk;
    })) << "follower never applied " << k;
    EXPECT_EQ(follower.execute({OpCode::kGet, k, ""}).value,
              "val-" + std::to_string(i));
  }

  ASSERT_NE(follower.applier(), nullptr);
  const auto pos = follower.applier()->positions();
  uint64_t applied = 0;
  for (const auto& p : pos) applied += p.seq;
  EXPECT_GT(applied, 0u);

  primary.shutdown();
  fsrv.stop();
  follower.shutdown();
}

TEST(ReplTest, QuorumAckImpliesFollowerDurable) {
  Hartd follower(follower_opts(2));
  TcpServer fsrv(follower, 0);

  Hartd primary(primary_opts(2, fsrv.port(), repl::AckPolicy::kQuorum));
  ASSERT_NE(primary.replicator(), nullptr);
  EXPECT_EQ(primary.replicator()->quorum_needed(), 1u);

  // With quorum acks, the primary releases a write's ack only after the
  // follower confirmed the batch's fence — so the key must already be
  // readable on the follower the instant the primary's execute returns.
  for (int i = 0; i < 150; ++i) {
    const std::string k = "qk-" + std::to_string(i);
    const Response w = primary.execute({OpCode::kPut, k, "qv"});
    ASSERT_TRUE(is_acked_write(w.status)) << k;
    const Response r = follower.execute({OpCode::kGet, k, ""});
    EXPECT_EQ(r.status, Status::kOk)
        << "quorum-acked " << k << " missing on follower";
  }

  // Deletes ride the same stream with the same guarantee.
  ASSERT_TRUE(is_acked_write(
      primary.execute({OpCode::kDelete, "qk-0", ""}).status));
  EXPECT_EQ(follower.execute({OpCode::kGet, "qk-0", ""}).status,
            Status::kNotFound);

  primary.shutdown();
  fsrv.stop();
  follower.shutdown();
}

TEST(ReplTest, ReplAckReportsPositionsOnBothRoles) {
  Hartd follower(follower_opts(2));
  TcpServer fsrv(follower, 0);
  Hartd primary(primary_opts(2, fsrv.port(), repl::AckPolicy::kQuorum));

  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(is_acked_write(
        primary.execute({OpCode::kPut, "pk-" + std::to_string(i), "v"})
            .status));

  // Primary reports its batch-log tail, one stream per shard.
  const Response pr = primary.execute({OpCode::kReplAck, "", ""});
  ASSERT_EQ(pr.status, Status::kOk);
  std::vector<ReplPosition> ppos;
  ASSERT_TRUE(decode_repl_positions(pr.value, &ppos));
  ASSERT_EQ(ppos.size(), primary.shard_count());
  uint64_t ptail = 0;
  for (const auto& p : ppos) ptail += p.seq;
  EXPECT_GT(ptail, 0u);

  // Follower reports applied positions; quorum acks mean it cannot be
  // behind the primary's tail once all writes are acked.
  const Response fr = follower.execute({OpCode::kReplAck, "", ""});
  ASSERT_EQ(fr.status, Status::kOk);
  std::vector<ReplPosition> fpos;
  ASSERT_TRUE(decode_repl_positions(fr.value, &fpos));
  uint64_t fapplied = 0;
  for (const auto& p : fpos) fapplied += p.seq;
  EXPECT_EQ(fapplied, ptail);

  primary.shutdown();
  fsrv.stop();
  follower.shutdown();
}

TEST(ReplTest, FailoverPreservesQuorumAckedWrites) {
  Hartd follower(follower_opts(2));
  TcpServer fsrv(follower, 0);

  std::vector<std::string> acked;
  {
    Hartd primary(primary_opts(2, fsrv.port(), repl::AckPolicy::kQuorum));
    for (int i = 0; i < 100; ++i) {
      const std::string k = "fk-" + std::to_string(i);
      if (is_acked_write(
              primary.execute({OpCode::kPut, k, "fv"}).status))
        acked.push_back(k);
    }
    // Destructor tears the primary down; no graceful replication drain is
    // required for quorum-acked writes — they are already on the follower.
  }
  ASSERT_EQ(acked.size(), 100u);

  ASSERT_EQ(follower.execute({OpCode::kPromote, "", ""}).status,
            Status::kOk);
  EXPECT_EQ(follower.role(), repl::Role::kPrimary);
  for (const auto& k : acked)
    EXPECT_EQ(follower.execute({OpCode::kGet, k, ""}).status, Status::kOk)
        << "acked write " << k << " lost across failover";

  // The promoted node serves writes again.
  EXPECT_TRUE(is_acked_write(
      follower.execute({OpCode::kPut, "post", "v"}).status));

  fsrv.stop();
  follower.shutdown();
}

// ---- client reconnection / redirect --------------------------------------

TEST(ClientReconnectTest, RotatesPastDeadEndpoint) {
  Hartd db(base_opts(2));
  TcpServer srv(db, 0);

  // Endpoint 0 refuses connections (nothing listens on port 1); the
  // rotating dial must land on the live endpoint.
  Client c({{"127.0.0.1", 1}, {"127.0.0.1", srv.port()}},
           {.max_attempts = 6, .backoff_base_ms = 5, .backoff_max_ms = 40});
  EXPECT_TRUE(is_acked_write(c.put("rk", "rv").status));
  EXPECT_EQ(c.get("rk").value, "rv");

  srv.stop();
  db.shutdown();
}

TEST(ClientReconnectTest, RedirectsToPromotedFollower) {
  Hartd follower(follower_opts(2));
  TcpServer fsrv(follower, 0);

  auto primary = std::make_unique<Hartd>(
      primary_opts(2, fsrv.port(), repl::AckPolicy::kQuorum));
  auto psrv = std::make_unique<TcpServer>(*primary, 0);

  Client c({{"127.0.0.1", psrv->port()}, {"127.0.0.1", fsrv.port()}},
           {.max_attempts = 8, .backoff_base_ms = 5, .backoff_max_ms = 40});
  ASSERT_TRUE(is_acked_write(c.put("before", "1").status));

  // Fail the primary over, then promote the follower.
  psrv->stop();
  primary->shutdown();
  psrv.reset();
  primary.reset();
  ASSERT_EQ(follower.execute({OpCode::kPromote, "", ""}).status,
            Status::kOk);

  // The client's next sends redial the endpoint list and land on the
  // promoted follower. In-flight / raced requests surface kNetError (the
  // client never silently retries a write); callers retry explicitly.
  Response r{Status::kNetError, {}, 0};
  for (int i = 0; i < 50 && !is_acked_write(r.status); ++i) {
    r = c.put("after", "2");
    if (!is_acked_write(r.status)) {
      EXPECT_EQ(r.status, Status::kNetError);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(is_acked_write(r.status));
  EXPECT_EQ(c.get("before").status, Status::kOk);  // replicated pre-failover
  EXPECT_EQ(c.get("after").value, "2");

  fsrv.stop();
  follower.shutdown();
}

// ---- TCP protocol-error handling -----------------------------------------

int dial(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

// Read one response frame; returns false on EOF / error.
bool read_response(int fd, uint64_t* id, Response* resp) {
  std::string buf;
  std::string body;
  char tmp[512];
  while (true) {
    const int got = take_frame(&buf, &body);
    if (got < 0) return false;
    if (got > 0) return decode_response(body.data(), body.size(), id, resp);
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    buf.append(tmp, static_cast<size_t>(n));
  }
}

TEST(TcpProtocolTest, OversizedFrameGetsErrorThenClose) {
  Hartd db(base_opts(1));
  TcpServer srv(db, 0);
  const int fd = dial(srv.port());

  std::string wire;
  const uint32_t huge = kMaxFrameBody + 1;
  wire.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  ASSERT_TRUE(send_all(fd, wire));

  uint64_t id = 1;
  Response resp;
  ASSERT_TRUE(read_response(fd, &id, &resp));
  EXPECT_EQ(resp.status, Status::kProtocolError);
  EXPECT_EQ(id, 0u);  // no request id is recoverable from a bad frame

  // The stream position is untrustworthy: the server closes it.
  char tmp[16];
  EXPECT_EQ(::recv(fd, tmp, sizeof(tmp), 0), 0);
  ::close(fd);
  srv.stop();
  db.shutdown();
}

TEST(TcpProtocolTest, GarbageBodyGetsErrorAndConnectionKeepsServing) {
  Hartd db(base_opts(1));
  TcpServer srv(db, 0);
  const int fd = dial(srv.port());

  // A well-framed body that decode_request rejects (op byte 0). The id in
  // the first 8 bytes is recoverable, so the error response carries it.
  std::string body;
  const uint64_t bad_id = 7777;
  body.append(reinterpret_cast<const char*>(&bad_id), sizeof(bad_id));
  body.append(4, '\0');
  std::string wire;
  const uint32_t len = static_cast<uint32_t>(body.size());
  wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
  wire += body;
  ASSERT_TRUE(send_all(fd, wire));

  uint64_t id = 0;
  Response resp;
  ASSERT_TRUE(read_response(fd, &id, &resp));
  EXPECT_EQ(resp.status, Status::kProtocolError);
  EXPECT_EQ(id, bad_id);

  // An undecodable body is a per-request failure, not a framing failure:
  // the same connection must keep serving well-formed requests.
  std::string ping;
  encode_request(42, {OpCode::kPing, "", ""}, &ping);
  ASSERT_TRUE(send_all(fd, ping));
  ASSERT_TRUE(read_response(fd, &id, &resp));
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(resp.status, Status::kOk);

  ::close(fd);
  srv.stop();
  db.shutdown();
}

}  // namespace
}  // namespace hart::server
