// PMCheck negative-path suite: a deliberately buggy mini-index whose
// injected violations must each be caught by name, plus clean-protocol
// tests that must stay silent (the zero-false-positive half lives in the
// index suites via tests/checked_arena.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>

#include "pmcheck/pmcheck.h"
#include "pmem/arena.h"

namespace hart::pmem {
namespace {

using pmcheck::Kind;

Arena::Options small_opts() {
  Arena::Options o;
  o.size = 1 << 20;
  o.shadow = true;
  o.check = true;
  o.charge_alloc_persist = false;
  return o;
}

/// A tiny persistent record array with switchable protocol bugs — the
/// "hand-converted PM index" PMCheck exists to catch.
struct MiniKv {
  enum Bug { kNone, kSkipPersist, kDoublePersist };
  static constexpr uint64_t kRecs = 64;

  explicit MiniKv(Arena& a) : arena(a), slab(a.alloc(kRecs * 8)) {}

  uint64_t* rec(uint64_t i) const { return arena.ptr<uint64_t>(slab + i * 8); }

  void put(uint64_t i, uint64_t v, Bug bug = kNone) {
    uint64_t* r = rec(i);
    *r = v;
    arena.trace_store(r, sizeof(*r));
    if (bug == kSkipPersist) return;  // forgot persistent()
    arena.persist(r, sizeof(*r));
    if (bug == kDoublePersist) arena.persist(r, sizeof(*r));
  }

  uint64_t get(uint64_t i) const {
    const uint64_t* r = rec(i);
    arena.pm_read(r, sizeof(*r));
    return *r;
  }

  Arena& arena;
  uint64_t slab;
};

TEST(PmCheck, CleanProtocolReportsNothing) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  for (uint64_t i = 0; i < MiniKv::kRecs; ++i) kv.put(i, i * 3 + 1);
  for (uint64_t i = 0; i < MiniKv::kRecs; ++i) EXPECT_EQ(kv.get(i), i * 3 + 1);
  const auto rep = arena.pm_report();
  EXPECT_EQ(rep.total(), 0u) << rep.to_string();
  EXPECT_TRUE(arena.checker()->unflushed_spans().empty());
  EXPECT_EQ(rep.persist_calls, MiniKv::kRecs);
}

TEST(PmCheck, CatchesUnflushedRead) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  kv.put(0, 42, MiniKv::kSkipPersist);
  EXPECT_EQ(kv.get(0), 42u);  // the data *is* there — until a crash
  const auto rep = arena.pm_report();
  EXPECT_EQ(rep.count(Kind::kUnflushedRead), 1u) << rep.to_string();
  EXPECT_EQ(rep.count(Kind::kRedundantPersist), 0u);
  EXPECT_EQ(rep.count(Kind::kPmRace), 0u);
  ASSERT_FALSE(rep.samples.empty());
  EXPECT_STREQ(pmcheck::kind_name(rep.samples[0].kind), "unflushed-read");
  // The dirty span is visible to the quiescence diagnostic too.
  EXPECT_FALSE(arena.checker()->unflushed_spans().empty());
}

TEST(PmCheck, CatchesRedundantPersist) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  kv.put(0, 7, MiniKv::kDoublePersist);
  const auto rep = arena.pm_report();
  EXPECT_EQ(rep.count(Kind::kRedundantPersist), 1u) << rep.to_string();
  EXPECT_EQ(rep.count(Kind::kUnflushedRead), 0u);
  ASSERT_FALSE(rep.samples.empty());
  EXPECT_STREQ(pmcheck::kind_name(rep.samples[0].kind), "redundant-persist");
  // The diagnostic counter sees the wasted line flush as well.
  EXPECT_GE(rep.clean_line_flushes, 1u);
}

TEST(PmCheck, FirstFlushOfUnchangedBytesIsNotRedundant) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  // Freshly allocated memory is zero; storing zero changes nothing, but the
  // first persist establishes durability and must not be flagged.
  kv.put(0, 0);
  EXPECT_EQ(arena.pm_report().count(Kind::kRedundantPersist), 0u);
}

TEST(PmCheck, ObjectReuseSuppressesRedundantPersist) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  kv.put(3, 99);
  // A new owner takes over the slot (EPallocator-style sub-block reuse)
  // and happens to write the identical bytes: its persist is required.
  arena.note_object_alloc(kv.slab + 3 * 8, 8);
  kv.put(3, 99);
  EXPECT_EQ(arena.pm_report().count(Kind::kRedundantPersist), 0u)
      << arena.pm_report().to_string();
}

TEST(PmCheck, CatchesPersistToUnallocated) {
  Arena arena(small_opts());
  auto kv = std::make_unique<MiniKv>(arena);
  uint64_t* r = kv->rec(0);
  const uint64_t slab = kv->slab;
  arena.free(slab, MiniKv::kRecs * 8);  // index torn down…
  *r = 5;                               // …but a stale writer lives on
  arena.persist(r, sizeof(*r));
  const auto rep = arena.pm_report();
  EXPECT_EQ(rep.count(Kind::kPersistToUnallocated), 1u) << rep.to_string();
  ASSERT_FALSE(rep.samples.empty());
  EXPECT_STREQ(pmcheck::kind_name(rep.samples[0].kind),
               "persist-to-unallocated");
}

TEST(PmCheck, CatchesStoreToFreedBlock) {
  Arena arena(small_opts());
  auto kv = std::make_unique<MiniKv>(arena);
  uint64_t* r = kv->rec(0);
  arena.free(kv->slab, MiniKv::kRecs * 8);
  *r = 5;
  HARTLINT_SUPPRESS("HL001: deliberately unflushed — violation under test")
  arena.trace_store(r, sizeof(*r));  // annotated store into freed space
  EXPECT_EQ(arena.pm_report().count(Kind::kPersistToUnallocated), 1u);
}

TEST(PmCheck, CatchesPmRace) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  // Thread A dirties record 5 and "forgets" the flush; thread B then writes
  // the same record. No fence orders the two stores — after a crash either,
  // both, or neither may be durable.
  std::thread t1([&] { kv.put(5, 111, MiniKv::kSkipPersist); });
  t1.join();
  std::thread t2([&] { kv.put(5, 222, MiniKv::kSkipPersist); });
  t2.join();
  const auto rep = arena.pm_report();
  EXPECT_EQ(rep.count(Kind::kPmRace), 1u) << rep.to_string();
  ASSERT_FALSE(rep.samples.empty());
  EXPECT_STREQ(pmcheck::kind_name(rep.samples[0].kind), "pm-race");
  EXPECT_NE(rep.samples[0].tid, rep.samples[0].tid2);
}

TEST(PmCheck, DisjointStoresOnOneLineDoNotRace) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  // Records 0 and 1 share a cache line (8-byte records): co-located writers
  // with byte-disjoint ranges are exactly the EPallocator value-slot
  // pattern and must not be flagged.
  std::thread t1([&] { kv.put(0, 1, MiniKv::kSkipPersist); });
  t1.join();
  std::thread t2([&] { kv.put(1, 2, MiniKv::kSkipPersist); });
  t2.join();
  EXPECT_EQ(arena.pm_report().count(Kind::kPmRace), 0u)
      << arena.pm_report().to_string();
}

TEST(PmCheck, PersistClosesTheRaceWindow) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  // Correct cross-thread handoff: store + persistent() before the other
  // thread writes the same bytes.
  std::thread t1([&] { kv.put(5, 111); });
  t1.join();
  std::thread t2([&] { kv.put(5, 222); });
  t2.join();
  EXPECT_EQ(arena.pm_report().count(Kind::kPmRace), 0u)
      << arena.pm_report().to_string();
}

TEST(PmCheck, CrashRollbackClearsDirtiness) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  kv.put(0, 42, MiniKv::kSkipPersist);
  arena.crash();  // the unflushed store is rolled back…
  EXPECT_EQ(kv.get(0), 0u);  // …and the recovery read is of persisted state
  const auto rep = arena.pm_report();
  EXPECT_EQ(rep.count(Kind::kUnflushedRead), 0u) << rep.to_string();
  EXPECT_TRUE(arena.checker()->unflushed_spans().empty());
}

TEST(PmCheck, ReportIsHumanReadable) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  kv.put(0, 7, MiniKv::kDoublePersist);
  const std::string s = arena.pm_report().to_string();
  EXPECT_NE(s.find("redundant-persist=1"), std::string::npos) << s;
  EXPECT_NE(s.find("persist_calls="), std::string::npos) << s;
}

TEST(PmCheck, ConfigDisablesIndividualChecks) {
  Arena::Options o = small_opts();
  o.check_config.redundant_persist = false;
  Arena arena(o);
  MiniKv kv(arena);
  kv.put(0, 7, MiniKv::kDoublePersist);
  EXPECT_EQ(arena.pm_report().total(), 0u);
}

TEST(PmCheck, ViolationsCanBeCleared) {
  Arena arena(small_opts());
  MiniKv kv(arena);
  kv.put(0, 7, MiniKv::kDoublePersist);
  EXPECT_EQ(arena.pm_report().total(), 1u);
  arena.checker()->reset_violations();
  EXPECT_EQ(arena.pm_report().total(), 0u);
}

}  // namespace
}  // namespace hart::pmem
