// Tests for the PM-image verifier: clean images verify OK (including after
// churn and crashes), and seeded corruptions are detected.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <memory>

#include "epalloc/chunk.h"
#include "hart/hart.h"
#include "hart/verify.h"
#include "workload/keygen.h"

namespace hart::core {
namespace {

testutil::CheckedArena make_arena() {
  pmem::Arena::Options o;
  o.size = 64 << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

TEST(Verify, FreshEmptyHartIsClean) {
  auto arena = make_arena();
  Hart h(*arena);
  const auto report = verify_hart_image(*arena);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.live_leaves, 0u);
}

TEST(Verify, PopulatedHartIsClean) {
  auto arena = make_arena();
  Hart h(*arena);
  const auto keys = workload::make_random(3000, 9, 4, 12);
  for (size_t i = 0; i < keys.size(); ++i)
    h.insert(keys[i], "value-" + std::to_string(i % 100));
  for (size_t i = 0; i < keys.size(); i += 3) h.remove(keys[i]);
  for (size_t i = 1; i < keys.size(); i += 3)
    h.update(keys[i], std::string(30, 'u'));  // exercises the 32 B class

  const auto report = verify_hart_image(*arena);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.live_leaves, h.size());
  EXPECT_EQ(report.live_values, h.size());
  EXPECT_EQ(report.pending_reclamations, 0u);
}

TEST(Verify, NonHartArenaReportsMagicMismatch) {
  auto arena = make_arena();
  const auto report = verify_hart_image(*arena);
  EXPECT_FALSE(report.ok());
}

TEST(Verify, CrashStatesVerifyCleanAfterCrash) {
  // Right after a crash (before recovery), the image may contain pending
  // reclamations and in-flight logs — warnings, not errors.
  const auto keys = workload::make_random(150, 3, 4, 10);
  for (uint64_t crash_at = 3; crash_at <= 300; crash_at += 17) {
    auto arena = make_arena();
    {
      Hart h(*arena);
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          h.insert(k, "v");
          h.update(k, "u");
          h.remove(k);
          h.insert(k, "w");
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    const auto before = verify_hart_image(*arena);
    EXPECT_TRUE(before.ok())
        << "crash_at=" << crash_at << ": " << before.summary();
    // After recovery the image must be spotless: no in-flight logs.
    Hart recovered(*arena);
    const auto after = verify_hart_image(*arena);
    EXPECT_TRUE(after.ok()) << after.summary();
    for (const auto& issue : after.issues)
      EXPECT_NE(issue.what.find("in flight"), 0u);
  }
}

class VerifyCorruption : public ::testing::Test {
 protected:
  VerifyCorruption() : arena_(make_arena()) {
    Hart h(*arena_);
    for (int i = 0; i < 500; ++i)
      h.insert("key" + std::to_string(i), "value");
    root_ = arena_->root<HartRoot>();
  }
  uint64_t leaf_chunk() const {
    return root_->ep.heads[static_cast<int>(epalloc::ObjType::kLeaf)];
  }
  testutil::CheckedArena arena_;
  HartRoot* root_ = nullptr;
};

TEST_F(VerifyCorruption, DetectsChunkListCycle) {
  auto* c = arena_->ptr<epalloc::MemChunk>(leaf_chunk());
  auto* c2 = arena_->ptr<epalloc::MemChunk>(c->pnext);
  c2->pnext = leaf_chunk();  // cycle
  const auto report = verify_hart_image(*arena_);
  EXPECT_FALSE(report.ok());
}

TEST_F(VerifyCorruption, DetectsOutOfBoundsChunk) {
  auto* c = arena_->ptr<epalloc::MemChunk>(leaf_chunk());
  c->pnext = arena_->size() + 4096;
  EXPECT_FALSE(verify_hart_image(*arena_).ok());
}

TEST_F(VerifyCorruption, DetectsInconsistentFullIndicator) {
  auto* c = arena_->ptr<epalloc::MemChunk>(leaf_chunk());
  // Claim full while the bitmap is not.
  c->header = epalloc::ChunkHdr::make(
      epalloc::ChunkHdr::bitmap(c->header) & ~uint64_t{1}, 0,
      epalloc::kIndFull);
  EXPECT_FALSE(verify_hart_image(*arena_).ok());
}

TEST_F(VerifyCorruption, DetectsBadLeafKey) {
  // Find a live leaf in the head chunk and damage its key length.
  const auto g =
      epalloc::TypeGeometry::for_obj_size(sizeof(HartLeaf));
  auto* c = arena_->ptr<epalloc::MemChunk>(leaf_chunk());
  const auto idx = static_cast<uint32_t>(
      std::countr_zero(epalloc::ChunkHdr::bitmap(c->header)));
  auto* leaf = arena_->ptr<HartLeaf>(g.object_off(leaf_chunk(), idx));
  leaf->key_len = 200;
  EXPECT_FALSE(verify_hart_image(*arena_).ok());
}

TEST_F(VerifyCorruption, DetectsDoubleReferencedValue) {
  const auto g =
      epalloc::TypeGeometry::for_obj_size(sizeof(HartLeaf));
  auto* c = arena_->ptr<epalloc::MemChunk>(leaf_chunk());
  const uint64_t bm = epalloc::ChunkHdr::bitmap(c->header);
  const auto i1 = static_cast<uint32_t>(std::countr_zero(bm));
  const auto i2 =
      static_cast<uint32_t>(std::countr_zero(bm & (bm - 1)));
  auto* l1 = arena_->ptr<HartLeaf>(g.object_off(leaf_chunk(), i1));
  auto* l2 = arena_->ptr<HartLeaf>(g.object_off(leaf_chunk(), i2));
  l2->p_value = l1->p_value;
  l2->val_class = l1->val_class;
  EXPECT_FALSE(verify_hart_image(*arena_).ok());
}

TEST_F(VerifyCorruption, DetectsDanglingValueReference) {
  const auto g =
      epalloc::TypeGeometry::for_obj_size(sizeof(HartLeaf));
  auto* c = arena_->ptr<epalloc::MemChunk>(leaf_chunk());
  const auto idx = static_cast<uint32_t>(
      std::countr_zero(epalloc::ChunkHdr::bitmap(c->header)));
  auto* leaf = arena_->ptr<HartLeaf>(g.object_off(leaf_chunk(), idx));
  leaf->p_value = 8;  // inside the arena header: never a value object
  EXPECT_FALSE(verify_hart_image(*arena_).ok());
}

TEST_F(VerifyCorruption, DetectsPartiallyClearedLogs) {
  root_->ep.rlog.pprev = 0xdead;  // pcurrent stays 0
  EXPECT_FALSE(verify_hart_image(*arena_).ok());
  root_->ep.rlog.pprev = 0;
  root_->ep.ulogs[3].poldv = 0xbeef;  // pleaf stays 0
  EXPECT_FALSE(verify_hart_image(*arena_).ok());
}

}  // namespace
}  // namespace hart::core
