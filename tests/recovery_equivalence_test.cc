// Recovery-equivalence property: for every persistent tree, rebuilding the
// index from PM (re-opening the arena) yields exactly the state left by a
// clean run — across all three paper workloads and after arbitrary churn.
// Parameterized over (tree, workload).
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>

#include "artcow/artcow.h"
#include "common/index.h"
#include "common/rng.h"
#include "fptree/fptree.h"
#include "hart/hart.h"
#include "pmem/arena.h"
#include "woart/woart.h"
#include "woart/wort.h"
#include "workload/keygen.h"

namespace hart {
namespace {

struct Factory {
  const char* name;
  std::function<std::unique_ptr<common::Index>(pmem::Arena&)> make;
};
const Factory kFactories[] = {
    {"HART", [](pmem::Arena& a) { return std::make_unique<core::Hart>(a); }},
    {"WOART",
     [](pmem::Arena& a) { return std::make_unique<pmart::Woart>(a); }},
    {"ARTCoW",
     [](pmem::Arena& a) { return std::make_unique<pmart::ArtCow>(a); }},
    {"FPTree",
     [](pmem::Arena& a) { return std::make_unique<fptree::FpTree>(a); }},
    {"WORT",
     [](pmem::Arena& a) { return std::make_unique<pmart::Wort>(a); }},
};
const workload::WorkloadKind kWorkloads[] = {
    workload::WorkloadKind::kDictionary, workload::WorkloadKind::kSequential,
    workload::WorkloadKind::kRandom};

using Param = std::tuple<size_t, size_t>;  // (factory, workload)

class RecoveryEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(RecoveryEquivalence, ReopenMatchesCleanState) {
  const auto& factory = kFactories[std::get<0>(GetParam())];
  const auto wk = kWorkloads[std::get<1>(GetParam())];

  pmem::Arena::Options o;
  o.size = size_t{128} << 20;
  o.check = true;  // the whole run must be PMCheck-clean (asserted below)
  pmem::Arena arena(o);

  const auto keys = workload::make_workload(wk, 4000, 21);
  std::map<std::string, std::string> ref;
  {
    auto index = factory.make(arena);
    common::Rng rng(5);
    // Insert everything, then churn: delete a third, update a third.
    for (size_t i = 0; i < keys.size(); ++i) {
      const std::string v = "v" + std::to_string(i % 53);
      index->insert(keys[i], v);
      ref[keys[i]] = v;
    }
    for (size_t i = 0; i < keys.size(); i += 3) {
      index->remove(keys[i]);
      ref.erase(keys[i]);
    }
    for (size_t i = 1; i < keys.size(); i += 3) {
      index->update(keys[i], "updated!");
      ref[keys[i]] = "updated!";
    }
    EXPECT_EQ(index->size(), ref.size());
  }

  // Re-open: constructor recovers from PM.
  auto reopened = factory.make(arena);
  EXPECT_EQ(reopened->size(), ref.size());
  for (const auto& [k, v] : ref) {
    std::string got;
    ASSERT_EQ(reopened->search(k, &got), common::Status::kOk) << factory.name << " lost " << k;
    EXPECT_EQ(got, v) << k;
  }
  for (size_t i = 0; i < keys.size(); i += 3)
    EXPECT_EQ(reopened->search(keys[i], nullptr), common::Status::kNotFound)
        << factory.name << " resurrected " << keys[i];

  // Ordered iteration agrees with the reference map.
  std::vector<std::pair<std::string, std::string>> out;
  reopened->range(std::string(1, '0'), ref.size() + 10, &out);
  ASSERT_EQ(out.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }

  // And the reopened index remains writable.
  EXPECT_EQ(reopened->insert("zzz-new-key", "fresh"), common::Status::kInserted);
  std::string v;
  EXPECT_EQ(reopened->search("zzz-new-key", &v), common::Status::kOk);

  const pmcheck::Report rep = arena.pm_report();
  EXPECT_EQ(rep.total(), 0u) << factory.name << ": " << rep.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RecoveryEquivalence,
    ::testing::Combine(::testing::Range<size_t>(0, 5),
                       ::testing::Range<size_t>(0, 3)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(kFactories[std::get<0>(info.param)].name) + "_" +
             workload::workload_name(kWorkloads[std::get<1>(info.param)]);
    });

}  // namespace
}  // namespace hart
