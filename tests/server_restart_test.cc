// hartd crash-safety: the service's contract is "acked => durable".
// Covers (1) graceful restart on file-backed shard arenas, (2) a simulated
// crash point firing inside a shard worker mid-batch (shadow-arena
// rollback + per-shard recovery), and (3) a real SIGKILL of a forked
// child process followed by restart on its arena files.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "server/client.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HART_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HART_SANITIZED 1
#endif
#endif

namespace hart::server {
namespace {

/// Fresh private directory for this test's shard arena files.
std::string make_test_dir(const char* tag) {
  std::string tmpl = testing::TempDir() + "hart_restart_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* d = ::mkdtemp(buf.data());
  EXPECT_NE(d, nullptr);
  return d != nullptr ? std::string(d) : std::string();
}

Hartd::Options file_backed_opts(const std::string& dir, size_t shards) {
  Hartd::Options o;
  o.shards = shards;
  o.arena_mb = 32;
  o.arena_dir = dir;
  return o;
}

TEST(RestartTest, GracefulRestartRecoversEveryShard) {
  const std::string dir = make_test_dir("graceful");
  constexpr int kKeys = 1000;
  {
    Hartd db(file_backed_opts(dir, 3));
    EXPECT_FALSE(db.reopened());
    Client cl(db);
    std::deque<uint64_t> ids;
    for (int i = 0; i < kKeys; ++i)
      ids.push_back(cl.send(
          {OpCode::kPut, "rk-" + std::to_string(i), "val-" + std::to_string(i)}));
    for (const uint64_t id : ids)
      EXPECT_TRUE(is_acked_write(cl.wait(id).status));
    db.shutdown();
  }
  {
    Hartd::Options o = file_backed_opts(dir, 3);
    o.check = true;  // recovery replay must be PMCheck-clean too
    Hartd db(o);
    EXPECT_TRUE(db.reopened());
    EXPECT_EQ(db.total_size(), static_cast<size_t>(kKeys));
    Client cl(db);
    for (int i = 0; i < kKeys; ++i) {
      const Response r = cl.get("rk-" + std::to_string(i));
      EXPECT_EQ(r.status, Status::kOk);
      EXPECT_EQ(r.value, "val-" + std::to_string(i));
    }
    // The restarted service accepts new writes.
    EXPECT_EQ(cl.put("post-restart", "v").status, Status::kOk);
    db.shutdown();
    for (size_t i = 0; i < db.shard_count(); ++i)
      EXPECT_EQ(db.shard(i).arena().pm_report().total(), 0u);
  }
}

TEST(RestartTest, CrashPointMidBatchKeepsAckedWrites) {
  Hartd::Options o;
  o.shards = 1;
  o.arena_mb = 32;
  o.shadow = true;  // crash simulation needs the shadow copy
  Hartd db(o);
  Client cl(db);

  // Establish an acked baseline (each write waited to completion, so its
  // batch's epoch fence — the durability point under batched metadata
  // persists — has run), then arm a crash a few persists ahead while a
  // pipelined burst is in flight.
  std::set<std::string> acked;
  for (int i = 0; i < 50; ++i) {
    const std::string k = "pre-" + std::to_string(i);
    ASSERT_TRUE(is_acked_write(cl.put(k, "v").status));
    acked.insert(k);
  }
  struct Sent {
    uint64_t id;
    std::string key;
  };
  std::vector<Sent> sent;
  db.shard(0).arena().arm_crash_after(40);
  for (int i = 0; i < 200; ++i) {
    const std::string k = "burst-" + std::to_string(i);
    sent.push_back({cl.send({OpCode::kPut, k, "v"}), k});
  }

  size_t failed = 0;
  for (const auto& s : sent) {
    const Response r = cl.wait(s.id);
    if (is_acked_write(r.status)) {
      acked.insert(s.key);
    } else {
      EXPECT_TRUE(r.status == Status::kShardFailed ||
                  r.status == Status::kShuttingDown)
          << status_name(r.status);
      ++failed;
    }
  }
  ASSERT_TRUE(db.shard(0).failed()) << "crash point never fired";
  EXPECT_GT(failed, 0u);
  EXPECT_FALSE(acked.empty());

  // Simulate the crash (unflushed lines are lost), recover the shard's
  // HART from PM, and verify the acked set — the service's contract.
  db.shutdown();
  db.shard(0).arena().crash();
  db.shard(0).hart().recover();
  std::string v;
  for (const auto& key : acked)
    EXPECT_EQ(db.shard(0).hart().search(key, &v), common::Status::kOk)
        << "acked write lost: " << key;
}

TEST(RestartTest, SigkillThenRestartLosesNoAckedWrite) {
#ifdef HART_SANITIZED
  GTEST_SKIP() << "fork + SIGKILL interplay is noisy under sanitizers; "
                  "tools/svc_smoke.sh covers the real-process path";
#else
  const std::string dir = make_test_dir("sigkill");
  const std::string log_path = dir + "/acked.log";
  constexpr int kAckedBeforeKill = 400;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: file-backed service; log each key only AFTER its ack, then
    // die without any cleanup. One write(2) per line, O_APPEND — the log
    // is a subset of the acked set even at the instant of death.
    Hartd db(file_backed_opts(dir, 2));
    FILE* log = std::fopen(log_path.c_str(), "a");
    if (log == nullptr) ::_exit(3);
    ::setvbuf(log, nullptr, _IONBF, 0);
    for (int i = 0; i < kAckedBeforeKill; ++i) {
      const std::string key = "sk-" + std::to_string(i);
      const Response r = db.execute({OpCode::kPut, key, "v"});
      if (!is_acked_write(r.status)) ::_exit(4);
      std::fprintf(log, "%s\n", key.c_str());
    }
    ::kill(::getpid(), SIGKILL);  // no drain, no shutdown, no msync
    ::_exit(5);                   // unreachable
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited with " << status << " instead of dying by SIGKILL";

  // Restart on the child's arena files and replay its acked log.
  Hartd::Options o = file_backed_opts(dir, 2);
  o.check = true;
  Hartd db(o);
  EXPECT_TRUE(db.reopened());
  std::ifstream log(log_path);
  ASSERT_TRUE(log.is_open());
  Client cl(db);
  std::string key;
  int replayed = 0;
  while (std::getline(log, key)) {
    if (key.empty()) continue;
    const Response r = cl.get(key);
    EXPECT_EQ(r.status, Status::kOk) << "acked write lost: " << key;
    EXPECT_EQ(r.value, "v");
    ++replayed;
  }
  EXPECT_EQ(replayed, kAckedBeforeKill);
  db.shutdown();
  for (size_t i = 0; i < db.shard_count(); ++i)
    EXPECT_EQ(db.shard(i).arena().pm_report().total(), 0u);
#endif
}

}  // namespace
}  // namespace hart::server
