// Unit and property tests for the volatile ART: node-type transitions,
// path compression, lazy expansion, deletion with shrinking, ordered
// iteration, and randomized differential testing against std::map.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "art/art_tree.h"
#include "common/rng.h"

namespace hart::art {
namespace {

struct TestLeaf {
  std::string key;
  int value;
};

struct TestTraits {
  using Leaf = TestLeaf;
  Key key(const Leaf* l) const {
    return {reinterpret_cast<const uint8_t*>(l->key.data()), l->key.size()};
  }
};

Key k(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

class ArtTest : public ::testing::Test {
 protected:
  TestLeaf* put(const std::string& key, int v) {
    leaves_.push_back(std::make_unique<TestLeaf>(TestLeaf{key, v}));
    TestLeaf* l = leaves_.back().get();
    HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
    EXPECT_EQ(tree_.insert(k(key), l), nullptr) << "duplicate key " << key;
    return l;
  }
  std::vector<std::string> collect_all() {
    std::vector<std::string> out;
    tree_.for_each([&](TestLeaf* l) {
      out.push_back(l->key);
      return true;
    });
    return out;
  }

  std::atomic<uint64_t> dram_{0};
  Tree<TestTraits> tree_{TestTraits{}, &dram_};
  std::vector<std::unique_ptr<TestLeaf>> leaves_;
};

TEST_F(ArtTest, EmptyTreeBehaves) {
  EXPECT_TRUE(tree_.empty());
  EXPECT_EQ(tree_.size(), 0u);
  EXPECT_EQ(tree_.search(k("a")), nullptr);
  HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
  EXPECT_EQ(tree_.remove(k("a")), nullptr);
  EXPECT_EQ(tree_.minimum(), nullptr);
}

TEST_F(ArtTest, SingleLeafLazyExpansion) {
  TestLeaf* l = put("hello", 1);
  EXPECT_EQ(tree_.size(), 1u);
  EXPECT_EQ(tree_.search(k("hello")), l);
  EXPECT_EQ(tree_.search(k("hell")), nullptr);
  EXPECT_EQ(tree_.search(k("hello!")), nullptr);
  EXPECT_EQ(tree_.minimum(), l);
}

TEST_F(ArtTest, InsertDuplicateReturnsExistingUnchanged) {
  TestLeaf* l = put("dup", 1);
  TestLeaf other{"dup", 2};
  HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
  EXPECT_EQ(tree_.insert(k("dup"), &other), l);
  EXPECT_EQ(tree_.size(), 1u);
  EXPECT_EQ(tree_.search(k("dup")), l);
}

TEST_F(ArtTest, PrefixKeysCoexist) {
  put("a", 1);
  put("ab", 2);
  put("abc", 3);
  put("abcd", 4);
  for (const char* s : {"a", "ab", "abc", "abcd"})
    EXPECT_NE(tree_.search(k(s)), nullptr) << s;
  EXPECT_EQ(tree_.search(k("abcde")), nullptr);
  EXPECT_EQ(collect_all(),
            (std::vector<std::string>{"a", "ab", "abc", "abcd"}));
}

TEST_F(ArtTest, NodeGrowsThrough4_16_48_256) {
  // 256 distinct first bytes force every node type in turn.
  std::vector<std::string> keys;
  for (int b = 1; b < 256; ++b) {
    std::string s;
    s.push_back(static_cast<char>(b));
    s += "suffix";
    keys.push_back(s);
  }
  for (size_t i = 0; i < keys.size(); ++i) put(keys[i], static_cast<int>(i));
  EXPECT_EQ(tree_.size(), keys.size());
  for (const auto& s : keys) {
    auto* l = tree_.search(k(s));
    ASSERT_NE(l, nullptr) << s;
    EXPECT_EQ(l->key, s);
  }
}

TEST_F(ArtTest, DeletionShrinksBackDown) {
  std::vector<std::string> keys;
  for (int b = 1; b < 256; ++b) {
    std::string s(1, static_cast<char>(b));
    keys.push_back(s);
    put(s, b);
  }
  // Remove all but three; the node chain must shrink without losing them.
  for (size_t i = 3; i < keys.size(); ++i)
    HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
    EXPECT_NE(tree_.remove(k(keys[i])), nullptr) << keys[i];
  EXPECT_EQ(tree_.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_NE(tree_.search(k(keys[i])), nullptr) << keys[i];
}

TEST_F(ArtTest, DeleteCollapsesPathCompression) {
  put("team", 1);
  put("test", 2);
  put("toast", 3);
  HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
  EXPECT_NE(tree_.remove(k("toast")), nullptr);
  EXPECT_NE(tree_.search(k("team")), nullptr);
  EXPECT_NE(tree_.search(k("test")), nullptr);
  HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
  EXPECT_NE(tree_.remove(k("test")), nullptr);
  EXPECT_NE(tree_.search(k("team")), nullptr);
  EXPECT_EQ(tree_.size(), 1u);
}

TEST_F(ArtTest, LongCommonPrefixBeyondStoredBytes) {
  // Common prefix longer than kMaxPrefixLen (10) exercises the min-leaf
  // fallback in prefix_mismatch and split paths.
  const std::string base(20, 'x');
  put(base + "aa", 1);
  put(base + "ab", 2);
  put(base + "zz", 3);
  // Now split deep inside the long prefix:
  put(std::string(15, 'x') + "Q", 4);
  EXPECT_NE(tree_.search(k(base + "aa")), nullptr);
  EXPECT_NE(tree_.search(k(base + "ab")), nullptr);
  EXPECT_NE(tree_.search(k(base + "zz")), nullptr);
  EXPECT_NE(tree_.search(k(std::string(15, 'x') + "Q")), nullptr);
  EXPECT_EQ(tree_.size(), 4u);
}

TEST_F(ArtTest, MinimumIsSmallestKey) {
  put("m", 1);
  put("b", 2);
  put("z", 3);
  put("ba", 4);
  EXPECT_EQ(tree_.minimum()->key, "b");
}

TEST_F(ArtTest, IterationIsLexicographic) {
  const std::vector<std::string> keys = {"b",  "a",   "ab", "ba", "aa",
                                         "zz", "az",  "z",  "bb", "aaa"};
  for (size_t i = 0; i < keys.size(); ++i) put(keys[i], static_cast<int>(i));
  auto got = collect_all();
  auto want = keys;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(ArtTest, ForEachFromStartsAtLowerBound) {
  for (const char* s : {"apple", "banana", "cherry", "date", "fig"})
    put(s, 0);
  std::vector<std::string> got;
  tree_.for_each_from(k("c"), [&](TestLeaf* l) {
    got.push_back(l->key);
    return true;
  });
  EXPECT_EQ(got, (std::vector<std::string>{"cherry", "date", "fig"}));

  got.clear();
  tree_.for_each_from(k("cherry"), [&](TestLeaf* l) {
    got.push_back(l->key);
    return true;
  });
  EXPECT_EQ(got, (std::vector<std::string>{"cherry", "date", "fig"}))
      << "lower bound is inclusive";
}

TEST_F(ArtTest, ForEachFromCanStopEarly) {
  for (const char* s : {"a", "b", "c", "d"}) put(s, 0);
  int n = 0;
  const bool finished = tree_.for_each_from(k("a"), [&](TestLeaf*) {
    return ++n < 2;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(n, 2);
}

TEST_F(ArtTest, ClearReleasesAllNodes) {
  for (int b = 1; b < 200; ++b) put(std::string(1, static_cast<char>(b)), b);
  EXPECT_GT(dram_.load(), 0u);
  tree_.clear();
  EXPECT_TRUE(tree_.empty());
  EXPECT_EQ(dram_.load(), 0u) << "DRAM accounting must balance after clear";
}

TEST_F(ArtTest, DramAccountingBalancesAfterDeletes) {
  std::vector<std::string> keys;
  common::Rng rng(7);
  std::set<std::string> used;
  for (int i = 0; i < 500; ++i) {
    std::string s;
    const size_t len = 1 + rng.next_below(12);
    for (size_t j = 0; j < len; ++j)
      s.push_back(static_cast<char>('a' + rng.next_below(26)));
    if (used.insert(s).second) {
      keys.push_back(s);
      put(s, i);
    }
  }
  HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
  for (const auto& s : keys) EXPECT_NE(tree_.remove(k(s)), nullptr) << s;
  EXPECT_TRUE(tree_.empty());
  EXPECT_EQ(dram_.load(), 0u);
}

// ---- randomized differential test vs std::map --------------------------

class ArtFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArtFuzz, MatchesStdMapUnderRandomOps) {
  common::Rng rng(GetParam());
  std::atomic<uint64_t> dram{0};
  Tree<TestTraits> tree{TestTraits{}, &dram};
  std::map<std::string, std::unique_ptr<TestLeaf>> ref;

  auto random_key = [&] {
    std::string s;
    const size_t len = 1 + rng.next_below(10);
    for (size_t j = 0; j < len; ++j)
      s.push_back(static_cast<char>('a' + rng.next_below(4)));  // dense
    return s;
  };

  for (int step = 0; step < 4000; ++step) {
    const std::string key = random_key();
    const uint64_t dice = rng.next_below(100);
    if (dice < 55) {  // insert
      auto leaf = std::make_unique<TestLeaf>(TestLeaf{key, step});
      HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
      TestLeaf* existing = tree.insert(k(key), leaf.get());
      if (ref.count(key)) {
        EXPECT_NE(existing, nullptr) << key;
      } else {
        EXPECT_EQ(existing, nullptr) << key;
        ref[key] = std::move(leaf);
      }
    } else if (dice < 80) {  // search
      TestLeaf* got = tree.search(k(key));
      if (ref.count(key))
        EXPECT_EQ(got, ref[key].get()) << key;
      else
        EXPECT_EQ(got, nullptr) << key;
    } else {  // remove
      HARTLINT_SUPPRESS("HL003: test tree has no EBR domain (eager frees)")
      TestLeaf* got = tree.remove(k(key));
      if (ref.count(key)) {
        EXPECT_EQ(got, ref[key].get()) << key;
        ref.erase(key);
      } else {
        EXPECT_EQ(got, nullptr) << key;
      }
    }
    EXPECT_EQ(tree.size(), ref.size());
  }

  // Final: full in-order agreement.
  std::vector<std::string> got;
  tree.for_each([&](TestLeaf* l) {
    got.push_back(l->key);
    return true;
  });
  std::vector<std::string> want;
  for (const auto& [key, leaf] : ref) want.push_back(key);
  EXPECT_EQ(got, want);

  // Ordered scans from random lower bounds agree with map::lower_bound.
  for (int t = 0; t < 50; ++t) {
    const std::string lo = random_key();
    std::vector<std::string> scan;
    tree.for_each_from(k(lo), [&](TestLeaf* l) {
      scan.push_back(l->key);
      return scan.size() < 10;
    });
    std::vector<std::string> mref;
    for (auto it = ref.lower_bound(lo); it != ref.end() && mref.size() < 10;
         ++it)
      mref.push_back(it->first);
    EXPECT_EQ(scan, mref) << "lower bound " << lo;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArtFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1234, 99991));

}  // namespace
}  // namespace hart::art
