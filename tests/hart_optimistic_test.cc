// Stress tests for HART's optimistic lock-free read path (versioned ART
// nodes + epoch-based reclamation). Readers race writers that continuously
// grow, shrink and delete nodes in a SINGLE partition (shared 2-byte
// prefix), the worst case for the seqlock validation: every structural
// change and every value update bumps a version a reader may be
// validating against.
//
// Invariants checked:
//   * no torn reads — every returned value is internally consistent
//     (single repeated character, the writers only store such values);
//   * optimistic retries actually happen (art_optimistic_retry_total
//     moves) — the test is exercising contended validation, not an idle
//     fast path;
//   * frees are deferred through EBR (ebr_deferred_free_total moves) and
//     reclaimed on quiesce();
//   * multi_get and range agree with the same invariants under churn.
//
// Run under TSAN (HART_SANITIZE=thread) this doubles as the data-race
// proof for the whole read protocol; the CI tsan-stress job does exactly
// that.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "hart/hart.h"
#include "obs/counters.h"

namespace hart::core {
namespace {

testutil::CheckedArena make_arena(size_t mb = 256) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

uint64_t ctr(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

/// Writers only ever store values that repeat one character; a read that
/// observes anything else is torn.
bool untorn(const std::string& v) {
  for (const char c : v)
    if (c != v.front()) return false;
  return !v.empty();
}

std::string churn_key(int i) { return "zz" + std::to_string(i); }

TEST(HartOptimistic, ReadersNeverSeeTornValuesUnderChurn) {
  auto arena = make_arena();
  Hart h(*arena);
  constexpr int kKeys = 512;
  for (int i = 0; i < kKeys; i += 2)
    ASSERT_EQ(h.insert(churn_key(i), std::string(8, 'a')), common::Status::kInserted);

  const uint64_t retries0 = ctr("art_optimistic_retry_total");
  const uint64_t deferred0 = ctr("ebr_deferred_free_total");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> hits{0};

  // Two writers churning one ART: inserts force NODE4->16->48 growth and
  // prefix splits, removes force shrink/collapse, updates swing value
  // pointers across size classes.
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&h, &stop, w] {
      common::Rng rng(w * 31 + 7);
      int round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int i = static_cast<int>(rng.next_below(kKeys));
        const std::string v(1 + (i + round) % 24,
                            static_cast<char>('a' + round % 26));
        switch (rng.next_below(4)) {
          case 0:
          case 1:
            h.insert(churn_key(i), v);
            break;
          case 2:
            h.update(churn_key(i), v);
            break;
          default:
            h.remove(churn_key(i));
            break;
        }
        ++round;
      }
    });
  }

  // Six readers: point lookups, batched lookups, range scans.
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t] {
      common::Rng rng(t + 101);
      std::string v;
      std::vector<std::string> batch;
      std::vector<std::string> vals;
      std::vector<bool> found;
      std::vector<std::pair<std::string, std::string>> out;
      while (!stop.load(std::memory_order_relaxed)) {
        const int i = static_cast<int>(rng.next_below(kKeys));
        if (h.search(churn_key(i), &v).ok()) {
          hits.fetch_add(1, std::memory_order_relaxed);
          if (!untorn(v)) torn.fetch_add(1, std::memory_order_relaxed);
        }
        if (t % 3 == 0) {  // batched reads
          batch.clear();
          for (int j = 0; j < 16; ++j)
            batch.push_back(churn_key(static_cast<int>(
                rng.next_below(kKeys))));
          h.multi_get(batch, &vals, &found);
          for (size_t j = 0; j < batch.size(); ++j)
            if (found[j] && !untorn(vals[j]))
              torn.fetch_add(1, std::memory_order_relaxed);
        } else if (t % 3 == 1) {  // range scans must stay sorted + untorn
          h.range(churn_key(i), 32, &out);
          for (size_t j = 0; j < out.size(); ++j) {
            if (!untorn(out[j].second))
              torn.fetch_add(1, std::memory_order_relaxed);
            if (j > 0 && !(out[j - 1].first < out[j].first))
              torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Run until the contention counters prove the optimistic machinery was
  // exercised (typically milliseconds), hard cap 20s.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline &&
         (ctr("art_optimistic_retry_total") == retries0 ||
          ctr("ebr_deferred_free_total") == deferred0))
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Let the race soak a little beyond the first retry.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& th : writers) th.join();
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0u) << "optimistic read returned a torn value";
  EXPECT_GT(hits.load(), 0u);
  EXPECT_GT(ctr("art_optimistic_retry_total"), retries0)
      << "no optimistic retry ever happened - the test exercised nothing";
  EXPECT_GT(ctr("ebr_deferred_free_total"), deferred0)
      << "no free was deferred through EBR";

  // Reclamation completes at quiesce: what is left live in the allocator
  // must match the surviving keys (no leak from the deferred frees).
  h.quiesce();
  size_t live = 0;
  for (int i = 0; i < kKeys; ++i) {
    std::string v;
    if (h.search(churn_key(i), &v).ok()) {
      ++live;
      EXPECT_TRUE(untorn(v));
    }
  }
  EXPECT_EQ(h.size(), live);

  // And recovery sees exactly the same state (EBR never touched PM
  // durability: retired slots were persistently freed eagerly).
  Hart h2(*arena);
  EXPECT_EQ(h2.size(), live);
}

TEST(HartOptimistic, EpochsAdvanceAndReclaimDram) {
  auto arena = make_arena(64);
  Hart h(*arena);
  const uint64_t advances0 = ctr("ebr_epoch_advance_total");
  // Enough churn to cycle several epochs (advance is attempted once a
  // retire batch fills).
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 2000; ++i)
      h.insert("ep" + std::to_string(i), std::string(8, 'x'));
    for (int i = 0; i < 2000; ++i) h.remove("ep" + std::to_string(i));
  }
  h.quiesce();
  EXPECT_GT(ctr("ebr_epoch_advance_total"), advances0);
  EXPECT_EQ(h.size(), 0u);
  // All retired PM slots were recycled by the drain.
  EXPECT_EQ(arena->stats().pm_live_bytes.load(), 0u);
}

TEST(HartOptimistic, RwlockAblationServesSameContract) {
  auto arena = make_arena(64);
  Hart h(*arena, {.rwlock_reads = true});
  const uint64_t deferred0 = ctr("ebr_deferred_free_total");
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::thread writer([&] {
    common::Rng rng(5);
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int i = static_cast<int>(rng.next_below(128));
      const std::string v(1 + i % 16, static_cast<char>('a' + round % 26));
      if (rng.next_below(3) == 0)
        h.remove(churn_key(i));
      else
        h.insert(churn_key(i), v);
      ++round;
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      common::Rng rng(t + 40);
      std::string v;
      for (int n = 0; n < 20000; ++n)
        if (h.search(churn_key(static_cast<int>(rng.next_below(128))), &v).ok() &&
            !untorn(v))
          torn.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(torn.load(), 0u);
  // The ablation frees eagerly: nothing went through the EBR limbo.
  EXPECT_EQ(ctr("ebr_deferred_free_total"), deferred0);
}

}  // namespace
}  // namespace hart::core
