// Tests for the HARTscope observability spine: striped counters and the
// registry (concurrent writers, source fold-on-unregister), the bounded
// per-thread trace ring (wraparound, chrome JSON shape) and the
// Prometheus/JSON exposition.
//
// The Registry and Tracer are process-wide singletons shared with any
// instrumented code in this binary, so every test uses its own uniquely
// named counters and asserts with >= / deltas where other activity could
// bleed in.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace hart::obs {
namespace {

uint64_t snapshot_value(const Registry::Sample& s, const std::string& name) {
  for (const auto& [n, v] : s)
    if (n == name) return v;
  return 0;
}

TEST(Counter, EightWriterThreadsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, AddAndResetAggregateAcrossStripes) {
  Counter c;
  c.add(41);
  c.inc();
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Registry, CounterReferenceIsStableAndShared) {
  auto& r = Registry::instance();
  Counter& a = r.counter("obs_test_stable_total");
  Counter& b = r.counter("obs_test_stable_total");
  EXPECT_EQ(&a, &b);
  const uint64_t before = a.value();
  b.inc();
  EXPECT_EQ(a.value(), before + 1);
}

TEST(Registry, ConcurrentFindOrCreateYieldsOneCounter) {
  auto& r = Registry::instance();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&r] {
      Counter& c = r.counter("obs_test_concurrent_total");
      for (uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(r.counter("obs_test_concurrent_total").value(),
            kThreads * kPerThread);
}

TEST(Registry, SourceFoldsIntoCountersOnUnregister) {
  auto& r = Registry::instance();
  const std::string name = "obs_test_source_total";
  const uint64_t base = snapshot_value(r.snapshot(), name);

  std::atomic<uint64_t> emitted{123};
  {
    SourceHandle h([&emitted, &name](Registry::Sample* out) {
      out->emplace_back(name, emitted.load());
    });
    // Live source: scrape sees the cumulative value.
    EXPECT_EQ(snapshot_value(r.snapshot(), name), base + 123);
    emitted = 200;
    EXPECT_EQ(snapshot_value(r.snapshot(), name), base + 200);
  }
  // Handle destroyed: the final sample folded into a retained counter, so
  // the total never moves backwards.
  EXPECT_EQ(snapshot_value(r.snapshot(), name), base + 200);
}

TEST(Registry, ConcurrentScrapeVsFoldOnUnregisterStaysMonotone) {
  // Scrapes race source churn (register -> emit -> unregister/fold). The
  // registry serializes both under its mutex, so no scrape may ever see
  // the metric's total move backwards, and the final folded total must
  // equal the sum of everything every source emitted.
  auto& r = Registry::instance();
  const std::string name = "obs_test_scrape_fold_total";
  const uint64_t base = snapshot_value(r.snapshot(), name);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> regressions{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t)
    scrapers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t v = snapshot_value(r.snapshot(), name) - base;
        if (v < last) regressions.fetch_add(1);
        last = v;
      }
    });

  static constexpr uint64_t kSources = 200;
  static constexpr uint64_t kPerSource = 5;
  for (uint64_t i = 0; i < kSources; ++i) {
    SourceHandle h([&name](Registry::Sample* out) {
      out->emplace_back(name, kPerSource);
    });
    // Handle destruction folds kPerSource into the retained counter while
    // the scrapers hammer snapshot().
  }
  stop = true;
  for (auto& t : scrapers) t.join();

  EXPECT_EQ(regressions.load(), 0u);
  EXPECT_EQ(snapshot_value(r.snapshot(), name),
            base + kSources * kPerSource);
}

TEST(Registry, SnapshotSumsSameNamedCounterAndSource) {
  auto& r = Registry::instance();
  const std::string name = "obs_test_summed_total";
  const uint64_t base = snapshot_value(r.snapshot(), name);
  r.counter(name).add(10);
  SourceHandle h([&name](Registry::Sample* out) {
    out->emplace_back(name, 32);
  });
  EXPECT_EQ(snapshot_value(r.snapshot(), name), base + 42);
}

TEST(TraceRing, FillsThenWrapsKeepingNewest) {
  TraceRing ring(4);
  for (uint32_t i = 0; i < 3; ++i) {
    TraceEvent e;
    e.ts_ns = i;
    e.arg = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.pushed(), 3u);
  auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().arg, 0u);
  EXPECT_EQ(snap.back().arg, 2u);

  // Push 7 more: 10 total through a 4-slot ring — only 6..9 survive,
  // oldest first.
  for (uint32_t i = 3; i < 10; ++i) {
    TraceEvent e;
    e.ts_ns = i;
    e.arg = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(snap[i].arg, 6 + i);
}

TEST(Tracer, RecordsSpansAndEmitsChromeJson) {
  auto& tr = Tracer::instance();
  tr.enable(/*ring_capacity=*/64);
  { TraceSpan span("obs_test_span", TraceKind::kPhase, 7); }
  tr.mark("obs_test_mark", TraceKind::kMark, 9);
  tr.disable();

  EXPECT_GE(tr.events_recorded(), 2u);
  const std::string json = tr.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // duration event
  EXPECT_NE(json.find("\"obs_test_mark\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_EQ(json.back(), '}');
}

TEST(Tracer, LongNamesAreTruncatedNotOverrun) {
  auto& tr = Tracer::instance();
  tr.enable(/*ring_capacity=*/8);
  tr.mark("this_name_is_far_longer_than_the_inline_buffer");
  tr.disable();
  const std::string json = tr.chrome_json();
  EXPECT_NE(json.find("this_name_is_far_long"), std::string::npos);
  EXPECT_EQ(json.find("inline_buffer"), std::string::npos);
}

TEST(Tracer, ReenableDropsOldEvents) {
  auto& tr = Tracer::instance();
  tr.enable(/*ring_capacity=*/8);
  tr.mark("obs_test_before");
  tr.enable(/*ring_capacity=*/8);  // reset
  tr.mark("obs_test_after");
  tr.disable();
  const std::string json = tr.chrome_json();
  EXPECT_EQ(json.find("obs_test_before"), std::string::npos);
  EXPECT_NE(json.find("obs_test_after"), std::string::npos);
}

TEST(Export, PrometheusTextGroupsTypesAndRendersSummaries) {
  Registry::Sample counters = {
      {"alpha_total", 1},
      {"beta_total{shard=\"0\"}", 2},
      {"beta_total{shard=\"1\"}", 3},
  };
  common::LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(1000);
  std::vector<HistogramView> hists;
  hists.push_back({"op_latency_ns", "op=\"insert\"", h});

  const std::string text = prometheus_text(counters, hists);
  EXPECT_NE(text.find("# TYPE alpha_total counter\nalpha_total 1\n"),
            std::string::npos);
  // One TYPE line for both beta series.
  size_t beta_types = 0;
  for (size_t pos = 0;
       (pos = text.find("# TYPE beta_total counter", pos)) != std::string::npos;
       ++pos)
    ++beta_types;
  EXPECT_EQ(beta_types, 1u);
  EXPECT_NE(text.find("beta_total{shard=\"1\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE op_latency_ns summary"), std::string::npos);
  EXPECT_NE(
      text.find("op_latency_ns{op=\"insert\",quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(text.find("op_latency_ns_count{op=\"insert\"} 1000\n"),
            std::string::npos);
  EXPECT_NE(text.find("op_latency_ns_sum{op=\"insert\"} 1000000\n"),
            std::string::npos);
}

TEST(Export, JsonTextEscapesAndRendersPercentiles) {
  Registry::Sample counters = {{"quoted\"name", 5}};
  common::LatencyHistogram h;
  h.record(500);
  std::vector<HistogramView> hists;
  hists.push_back({"lat", "", h});
  const std::string json = json_text(counters, hists);
  EXPECT_NE(json.find("\"quoted\\\"name\":5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\":500"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace hart::obs
