// WORT tests: nibble-radix behaviour, differential fuzz, depth-repair
// after splits and collapses, and crash sweeps over the single-pointer
// commit protocol.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "pmem/arena.h"
#include "woart/wort.h"
#include "workload/keygen.h"

namespace hart::pmart {
namespace {

testutil::CheckedArena make_arena(size_t mb = 128) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  return testutil::make_checked_arena(o);
}

TEST(WortPWordCodec, RoundTripsNibbles) {
  const uint8_t nibs[] = {0xf, 0x1, 0xa, 0x0, 0x7, 0x3,
                          0xe, 0x2, 0x9, 0x5, 0x8, 0x4};
  const uint64_t w = WortPWord::make(9, 12, nibs, 12);
  EXPECT_EQ(WortPWord::depth(w), 9);
  EXPECT_EQ(WortPWord::prefix_len(w), 12);
  for (uint32_t i = 0; i < 12; ++i)
    EXPECT_EQ(WortPWord::nibble(w, i), nibs[i]) << i;
}

TEST(Wort, BasicCrud) {
  auto arena = make_arena();
  Wort t(*arena);
  EXPECT_EQ(t.insert("hello", "world"), common::Status::kInserted);
  EXPECT_EQ(t.insert("hello", "again"), common::Status::kUpdated);
  std::string v;
  EXPECT_EQ(t.search("hello", &v), common::Status::kOk);
  EXPECT_EQ(v, "again");
  EXPECT_EQ(t.update("hello", "x"), common::Status::kOk);
  EXPECT_EQ(t.update("missing", "x"), common::Status::kNotFound);
  EXPECT_EQ(t.remove("hello"), common::Status::kOk);
  EXPECT_EQ(t.search("hello", nullptr), common::Status::kNotFound);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(arena->stats().pm_live_bytes.load(), 0u);
}

TEST(Wort, PrefixKeysCoexist) {
  auto arena = make_arena();
  Wort t(*arena);
  for (const char* k : {"a", "ab", "abc", "abcd"})
    EXPECT_EQ(t.insert(k, k), common::Status::kInserted);
  for (const char* k : {"a", "ab", "abc", "abcd"}) {
    std::string v;
    EXPECT_EQ(t.search(k, &v), common::Status::kOk) << k;
    EXPECT_EQ(v, k);
  }
  EXPECT_EQ(t.remove("ab"), common::Status::kOk);
  EXPECT_EQ(t.search("abc", nullptr), common::Status::kOk);
  EXPECT_EQ(t.search("a", nullptr), common::Status::kOk);
}

TEST(Wort, LongSharedPrefixBeyondStoredNibbles) {
  // Common prefixes longer than the 12 stored nibbles force the min-leaf
  // fallback in prefix comparison and the split-repair path.
  auto arena = make_arena();
  Wort t(*arena);
  const std::string base(10, 'w');  // 20 nibbles shared
  EXPECT_EQ(t.insert(base + "aaa", "1"), common::Status::kInserted);
  EXPECT_EQ(t.insert(base + "aab", "2"), common::Status::kInserted);
  EXPECT_EQ(t.insert(base + "zzz", "3"), common::Status::kInserted);
  EXPECT_EQ(t.insert(std::string(4, 'w') + "Q", "4"), common::Status::kInserted);
  for (const auto& [k, v] : std::map<std::string, std::string>{
           {base + "aaa", "1"},
           {base + "aab", "2"},
           {base + "zzz", "3"},
           {std::string(4, 'w') + "Q", "4"}}) {
    std::string got;
    ASSERT_EQ(t.search(k, &got), common::Status::kOk) << k;
    EXPECT_EQ(got, v);
  }
}

TEST(Wort, DifferentialFuzzAgainstMap) {
  auto arena = make_arena(256);
  Wort t(*arena);
  std::map<std::string, std::string> ref;
  common::Rng rng(55);
  for (int step = 0; step < 6000; ++step) {
    std::string key;
    const size_t len = 1 + rng.next_below(10);
    for (size_t j = 0; j < len; ++j)
      key.push_back(static_cast<char>('a' + rng.next_below(6)));
    const std::string val = "v" + std::to_string(step % 89);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        EXPECT_EQ(t.insert(key, val) == common::Status::kInserted,
                  ref.find(key) == ref.end()) << key;
        ref[key] = val;
        break;
      }
      case 2: {
        std::string v;
        const bool found = t.search(key, &v).ok();
        EXPECT_EQ(found, ref.count(key) == 1) << key;
        if (found) {
          EXPECT_EQ(v, ref[key]);
        }
        break;
      }
      default:
        EXPECT_EQ(t.remove(key).ok(), ref.erase(key) == 1) << key;
        break;
    }
    EXPECT_EQ(t.size(), ref.size());
  }
  // In-order agreement via range.
  std::vector<std::pair<std::string, std::string>> out;
  t.range("a", ref.size() + 10, &out);
  ASSERT_EQ(out.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(Wort, CrashSweepDuringInserts) {
  std::vector<std::string> keys;
  {
    common::Rng rng(77);
    std::map<std::string, int> uniq;
    while (uniq.size() < 250) {
      std::string k;
      const size_t len = 1 + rng.next_below(10);
      for (size_t j = 0; j < len; ++j)
        k.push_back(static_cast<char>('a' + rng.next_below(4)));
      uniq[k] = 1;
    }
    for (auto& [k, unused] : uniq) keys.push_back(k);
    common::Rng sh(8);
    for (size_t i = keys.size(); i > 1; --i)
      std::swap(keys[i - 1], keys[sh.next_below(i)]);
  }
  for (uint64_t crash_at = 1; crash_at <= 300; crash_at += 13) {
    auto arena = make_arena();
    size_t committed = 0;
    {
      Wort t(*arena);
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          t.insert(k, "val");
          ++committed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    Wort t2(*arena);
    for (size_t i = 0; i < committed; ++i) {
      std::string v;
      ASSERT_EQ(t2.search(keys[i], &v), common::Status::kOk)
          << "crash_at=" << crash_at << " " << keys[i];
      EXPECT_EQ(v, "val");
    }
    for (const auto& k : keys) t2.insert(k, "v2");
    EXPECT_EQ(t2.size(), keys.size());
  }
}

TEST(Wort, RecoverRebuildsAllocationMap) {
  auto arena = make_arena();
  const auto keys = workload::make_random(2000, 3, 4, 12);
  uint64_t live = 0;
  {
    Wort t(*arena);
    for (const auto& k : keys) t.insert(k, "v");
    live = arena->stats().pm_live_bytes.load();
  }
  Wort t2(*arena);
  EXPECT_EQ(arena->stats().pm_live_bytes.load(), live);
  EXPECT_EQ(t2.size(), keys.size());
  for (size_t i = 0; i < keys.size(); i += 37)
    EXPECT_EQ(t2.search(keys[i], nullptr), common::Status::kOk) << keys[i];
}

}  // namespace
}  // namespace hart::pmart
