// Crash-consistency property tests for HART (DESIGN.md Section 4): sweep a
// simulated crash across every persist point of insert / update / delete
// streams, recover (Algorithm 7 + the micro-log case analyses), and check:
//   1. committed keys are present with their committed values;
//   2. uncommitted keys are absent;
//   3. leak freedom: live PM bytes equal exactly the reachable chunks;
//   4. the index stays fully functional afterwards.
#include <gtest/gtest.h>

#include "checked_arena.h"

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "hart/hart.h"
#include "workload/keygen.h"

namespace hart::core {
namespace {

testutil::CheckedArena make_arena(double eviction_prob = 0.0,
                                        uint64_t seed = 1) {
  pmem::Arena::Options o;
  o.size = size_t{64} << 20;
  o.shadow = true;
  o.charge_alloc_persist = false;
  o.eviction_prob = eviction_prob;
  o.crash_seed = seed;
  return testutil::make_checked_arena(o);
}

/// Live PM bytes must equal the bytes of the chunks reachable from the
/// three chunk lists — i.e. nothing leaked, nothing double-freed.
void expect_leak_free(const Hart& h, const pmem::Arena& arena) {
  uint64_t expected = 0;
  for (auto t : {epalloc::ObjType::kLeaf, epalloc::ObjType::kValue8,
                 epalloc::ObjType::kValue16, epalloc::ObjType::kValue32,
                 epalloc::ObjType::kValue64}) {
    expected +=
        h.allocator().chunk_count(t) * h.allocator().geom(t).chunk_bytes;
  }
  EXPECT_EQ(arena.stats().pm_live_bytes.load(), expected);
}

TEST(HartCrash, InsertSweep) {
  const auto keys = workload::make_random(300, 77, 4, 12);
  for (uint64_t crash_at = 1; crash_at <= 350; crash_at += 11) {
    auto arena = make_arena();
    size_t committed = 0;
    {
      Hart h(*arena);
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          h.insert(k, "val-" + k.substr(0, 4));
          ++committed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    Hart h2(*arena);  // recovery (Algorithm 7)
    EXPECT_GE(h2.size(), committed);
    EXPECT_LE(h2.size(), committed + 1);
    for (size_t i = 0; i < committed; ++i) {
      std::string v;
      ASSERT_EQ(h2.search(keys[i], &v), common::Status::kOk)
          << "crash_at=" << crash_at << " key=" << keys[i];
      EXPECT_EQ(v, "val-" + keys[i].substr(0, 4));
    }
    expect_leak_free(h2, *arena);
    // Still fully functional.
    for (const auto& k : keys) h2.insert(k, "after");
    EXPECT_EQ(h2.size(), keys.size());
    for (const auto& k : keys) {
      std::string v;
      ASSERT_EQ(h2.search(k, &v), common::Status::kOk);
      EXPECT_EQ(v, "after");
    }
  }
}

TEST(HartCrash, UpdateSweepHonorsLogCases) {
  const auto keys = workload::make_random(120, 5, 4, 10);
  for (uint64_t crash_at = 1; crash_at <= 200; crash_at += 7) {
    auto arena = make_arena();
    size_t updated = 0;
    {
      Hart h(*arena);
      for (const auto& k : keys) h.insert(k, "old");
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          h.update(k, "new-value-16byte");
          ++updated;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    Hart h2(*arena);
    EXPECT_EQ(h2.size(), keys.size()) << "updates never change the key set";
    for (size_t i = 0; i < keys.size(); ++i) {
      std::string v;
      ASSERT_EQ(h2.search(keys[i], &v), common::Status::kOk)
          << "crash_at=" << crash_at << " " << keys[i];
      if (i < updated) {
        EXPECT_EQ(v, "new-value-16byte") << "committed update lost";
      } else if (i > updated) {
        EXPECT_EQ(v, "old") << "uncommitted update became visible";
      } else {
        // The mid-crash update may have landed either way (Alg. 3 recovery
        // redoes from line 7 when all three pointers were valid) — but it
        // must be one of the two values, never torn.
        EXPECT_TRUE(v == "old" || v == "new-value-16byte") << v;
      }
    }
    expect_leak_free(h2, *arena);
  }
}

TEST(HartCrash, DeleteSweep) {
  const auto keys = workload::make_random(150, 31, 4, 10);
  for (uint64_t crash_at = 1; crash_at <= 150; crash_at += 7) {
    auto arena = make_arena();
    size_t removed = 0;
    {
      Hart h(*arena);
      for (const auto& k : keys) h.insert(k, "v");
      arena->arm_crash_after(crash_at);
      try {
        for (const auto& k : keys) {
          h.remove(k);
          ++removed;
        }
        arena->disarm_crash();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    Hart h2(*arena);
    for (size_t i = 0; i < keys.size(); ++i) {
      const bool found = h2.search(keys[i], nullptr).ok();
      if (i < removed) {
        EXPECT_FALSE(found) << "crash_at=" << crash_at << " " << keys[i];
      } else if (i > removed) {
        EXPECT_TRUE(found) << "crash_at=" << crash_at << " " << keys[i];
      }
    }
    expect_leak_free(h2, *arena);
    // Reinsert everything; dangling values from the crashed delete are
    // reclaimed lazily by EPMalloc's stale-value check.
    for (const auto& k : keys) h2.insert(k, "again");
    EXPECT_EQ(h2.size(), keys.size());
    expect_leak_free(h2, *arena);
  }
}

TEST(HartCrash, MixedChurnSweepWithEviction) {
  // Random op mix with a cache-eviction-prone crash model (dirty lines may
  // survive): recovery must still satisfy the committed-state contract for
  // completed operations.
  const auto keys = workload::make_random(200, 13, 4, 10);
  for (uint64_t crash_at = 5; crash_at <= 400; crash_at += 31) {
    auto arena = make_arena(0.5, crash_at);
    std::map<std::string, std::string> committed;
    std::string pending_key;    // key targeted by the op in flight at crash
    std::string pending_value;  // its would-be value ("" for a delete)
    {
      Hart h(*arena);
      common::Rng rng(crash_at);
      arena->arm_crash_after(crash_at);
      try {
        for (int step = 0; step < 500; ++step) {
          const std::string& k = keys[rng.next_below(keys.size())];
          switch (rng.next_below(3)) {
            case 0: {
              const std::string v = "v" + std::to_string(step);
              pending_key = k;
              pending_value = v;
              h.insert(k, v);
              committed[k] = v;
              break;
            }
            case 1: {
              pending_key = k;
              pending_value = "u" + std::to_string(step);
              if (h.update(k, pending_value).ok()) committed[k] = pending_value;
              break;
            }
            default:
              pending_key = k;
              pending_value.clear();
              h.remove(k);
              committed.erase(k);
              break;
          }
          pending_key.clear();
        }
        arena->disarm_crash();
        pending_key.clear();
      } catch (const pmem::CrashPoint&) {
        arena->crash();
      }
    }
    Hart h2(*arena);
    // Every committed entry must be present with its exact value — except
    // the key of the one in-flight op, which may legitimately reflect
    // either the old committed state or the in-flight op's effect (and
    // nothing else: never a torn value).
    for (const auto& [k, v] : committed) {
      std::string got;
      const bool found = h2.search(k, &got).ok();
      if (k == pending_key) {
        if (pending_value.empty()) {  // in-flight delete
          EXPECT_TRUE(!found || got == v) << k;
        } else {
          ASSERT_TRUE(found) << k;
          EXPECT_TRUE(got == v || got == pending_value)
              << k << " got " << got;
        }
      } else {
        ASSERT_TRUE(found) << "crash_at=" << crash_at << " " << k;
        EXPECT_EQ(got, v) << k;
      }
    }
    expect_leak_free(h2, *arena);
  }
}

TEST(HartCrash, RepeatedCrashesDuringRecovery) {
  // Crash during recovery itself (replaying the update log), then recover
  // again: recovery must be idempotent.
  const auto keys = workload::make_random(60, 3, 4, 10);
  auto arena = make_arena();
  {
    Hart h(*arena);
    for (const auto& k : keys) h.insert(k, "old");
    arena->arm_crash_after(40);
    try {
      for (const auto& k : keys) h.update(k, "new-value-16byte");
      arena->disarm_crash();
    } catch (const pmem::CrashPoint&) {
      arena->crash();
    }
  }
  // First recovery attempt crashes partway through.
  for (uint64_t k = 1; k <= 5; ++k) {
    arena->arm_crash_after(k);
    try {
      Hart h(*arena);
      arena->disarm_crash();
      break;  // recovery completed
    } catch (const pmem::CrashPoint&) {
      arena->crash();
    }
  }
  arena->disarm_crash();
  Hart h2(*arena);
  EXPECT_EQ(h2.size(), keys.size());
  for (const auto& k : keys) {
    std::string v;
    ASSERT_EQ(h2.search(k, &v), common::Status::kOk) << k;
    EXPECT_TRUE(v == "old" || v == "new-value-16byte");
  }
  expect_leak_free(h2, *arena);
}

}  // namespace
}  // namespace hart::core
