// End-to-end request tracing (DESIGN.md §12): a sampled PUT under
// quorum replication must produce one stitched span tree — client,
// dispatch, shard queue, apply, fence, replicator ship, follower apply,
// quorum ack — all carrying the same trace id. Primary and follower run
// in one process here, so both nodes' spans land in the same Tracer and
// the whole tree is assertable from Tracer::events().
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "server/client.h"
#include "server/hartd.h"
#include "server/tcp.h"

namespace hart::server {
namespace {

Hartd::Options base_opts(size_t shards) {
  Hartd::Options o;
  o.shards = shards;
  o.batch_size = 8;
  o.arena_mb = 32;
  return o;
}

/// All events of the current trace that carry `trace_id`.
std::vector<obs::TraceEvent> events_of(uint64_t trace_id) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : obs::Tracer::instance().events())
    if (e.trace_id == trace_id) out.push_back(e);
  return out;
}

bool has_span(const std::vector<obs::TraceEvent>& evs, const char* name) {
  for (const obs::TraceEvent& e : evs)
    if (std::strcmp(e.name, name) == 0) return true;
  return false;
}

TEST(TraceStitchTest, QuorumPutProducesFullSpanTree) {
  obs::Tracer::instance().enable();

  Hartd::Options fo = base_opts(2);
  fo.follow = true;
  Hartd follower(fo);
  TcpServer fsrv(follower, 0);

  Hartd::Options po = base_opts(2);
  po.replicate_to = {"127.0.0.1:" + std::to_string(fsrv.port())};
  po.ack_policy = repl::AckPolicy::kQuorum;
  Hartd primary(po);

  Client cli(primary);
  cli.set_trace_sampling(1);  // stamp every request
  ASSERT_TRUE(is_acked_write(cli.put("traced-key", "traced-val").status));

  // The client span closed when the quorum-released ack completed the
  // put, and every server-side span records before that ack fires — the
  // whole tree is visible now, with one consistent id.
  uint64_t trace_id = 0;
  for (const obs::TraceEvent& e : obs::Tracer::instance().events())
    if (std::strcmp(e.name, "client") == 0 && e.trace_id != 0)
      trace_id = e.trace_id;
  ASSERT_NE(trace_id, 0u) << "sampled PUT produced no client span";

  const std::vector<obs::TraceEvent> evs = events_of(trace_id);
  for (const char* name :
       {"client", "dispatch", "queue_wait", "shard_apply", "fence",
        "repl_ship", "follower_apply", "quorum_ack"}) {
    EXPECT_TRUE(has_span(evs, name))
        << "span '" << name << "' missing from trace "
        << std::hex << trace_id;
  }

  primary.shutdown();
  fsrv.stop();
  follower.shutdown();
  obs::Tracer::instance().disable();
}

TEST(TraceStitchTest, DispatcherSamplingStampsUnsampledRequests) {
  obs::Tracer::instance().enable();

  Hartd::Options o = base_opts(1);
  o.trace_sample = 1;  // dispatcher stamps every unsampled KV request
  Hartd db(o);
  ASSERT_TRUE(is_acked_write(db.execute({OpCode::kPut, "dk", "dv"}).status));
  db.shutdown();

  uint64_t trace_id = 0;
  for (const obs::TraceEvent& e : obs::Tracer::instance().events())
    if (std::strcmp(e.name, "dispatch") == 0 && e.trace_id != 0)
      trace_id = e.trace_id;
  ASSERT_NE(trace_id, 0u);
  const std::vector<obs::TraceEvent> evs = events_of(trace_id);
  EXPECT_TRUE(has_span(evs, "queue_wait"));
  EXPECT_TRUE(has_span(evs, "shard_apply"));
  EXPECT_TRUE(has_span(evs, "fence"));
  obs::Tracer::instance().disable();
}

TEST(TraceStitchTest, UnsampledRunRecordsNoTraceIds) {
  obs::Tracer::instance().enable();

  Hartd db(base_opts(1));  // no sampling anywhere
  Client cli(db);
  ASSERT_TRUE(is_acked_write(cli.put("uk", "uv").status));
  db.shutdown();

  for (const obs::TraceEvent& e : obs::Tracer::instance().events())
    EXPECT_EQ(e.trace_id, 0u) << e.name;
  obs::Tracer::instance().disable();
}

}  // namespace
}  // namespace hart::server
