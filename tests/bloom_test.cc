// Counting-Bloom tests: the no-false-negative property under add/remove
// churn (the contract the shard enforces via index status codes), sticky
// counter saturation, false-positive sanity — and the hartd integration:
// dispatcher GET/MGET short-circuit, filter maintenance across deletes,
// and rebuild-on-recovery after a restart.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/bloom.h"
#include "common/rng.h"
#include "obs/counters.h"
#include "server/hartd.h"
#include "server/proto.h"

namespace hart::server {
namespace {

std::string make_test_dir(const char* tag) {
  std::string tmpl = testing::TempDir() + "hart_bloom_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* d = ::mkdtemp(buf.data());
  EXPECT_NE(d, nullptr);
  return d != nullptr ? std::string(d) : std::string();
}

std::string key_of(uint64_t i) { return "bloom-key-" + std::to_string(i); }

TEST(CountingBloom, NoFalseNegativesUnderChurn) {
  common::CountingBloom bloom(2000, 10);
  common::Rng rng(5);
  std::set<uint64_t> live;
  // Heavy add/remove churn respecting the contract (remove only live
  // keys): every live key must always be reported possibly-present.
  for (int step = 0; step < 20000; ++step) {
    const uint64_t i = rng.next() % 3000;
    if (live.count(i) != 0) {
      bloom.remove(key_of(i));
      live.erase(i);
    } else {
      bloom.add(key_of(i));
      live.insert(i);
    }
    if (step % 500 == 0) {
      for (const uint64_t l : live)
        ASSERT_TRUE(bloom.may_contain(key_of(l))) << l << " at " << step;
    }
  }
  for (const uint64_t l : live) EXPECT_TRUE(bloom.may_contain(key_of(l)));
}

TEST(CountingBloom, FalsePositiveRateIsSane) {
  constexpr size_t kKeys = 10000;
  common::CountingBloom bloom(kKeys, 10);
  for (size_t i = 0; i < kKeys; ++i) bloom.add(key_of(i));
  size_t fps = 0;
  for (size_t i = kKeys; i < 2 * kKeys; ++i)
    if (bloom.may_contain(key_of(i))) ++fps;
  // Textbook ~0.8% at 10 bits/key; allow generous slack for hash luck.
  EXPECT_LT(fps, kKeys / 20) << "false-positive rate above 5%";
  EXPECT_GT(bloom.memory_bytes(), 0u);
  EXPECT_GE(bloom.hashes(), 1u);
}

TEST(CountingBloom, SaturatedCountersAreStickySafe) {
  // Drive counters to saturation with balanced adds/removes of one key:
  // sticky-15 means the key stays possibly-present forever — degraded
  // false-positive rate, never a false negative for anyone else.
  common::CountingBloom bloom(16, 4);
  for (int i = 0; i < 40; ++i) bloom.add("hot");
  for (int i = 0; i < 40; ++i) bloom.remove("hot");
  EXPECT_TRUE(bloom.may_contain("hot"));
}

TEST(BloomShard, DispatcherShortCircuitsDefinitiveMisses) {
  Hartd::Options o;
  o.shards = 2;
  o.arena_mb = 32;
  o.bloom_bits_per_key = 10;
  o.bloom_expected_keys = 4096;
  Hartd db(o);
  for (uint64_t i = 0; i < 500; ++i)
    ASSERT_EQ(db.execute({OpCode::kPut, key_of(i), "v"}).status,
              Status::kOk);

  auto& negatives =
      obs::Registry::instance().counter("hartd_bloom_negative_total");
  const uint64_t before = negatives.value();
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(db.execute({OpCode::kGet, key_of(i), ""}).status, Status::kOk);
    EXPECT_EQ(db.execute({OpCode::kGet, key_of(100000 + i), ""}).status,
              Status::kNotFound);
  }
  // Most of the 500 misses short-circuit at the filter (a few may be
  // Bloom false positives and reach the Hart).
  EXPECT_GT(negatives.value() - before, 400u);
  db.shutdown();
}

TEST(BloomShard, DeleteMakesKeyDefinitivelyAbsentAgain) {
  Hartd::Options o;
  o.shards = 1;
  o.arena_mb = 32;
  o.bloom_bits_per_key = 10;
  o.bloom_expected_keys = 4096;
  Hartd db(o);
  for (uint64_t i = 0; i < 200; ++i)
    ASSERT_EQ(db.execute({OpCode::kPut, key_of(i), "v"}).status,
              Status::kOk);
  for (uint64_t i = 0; i < 100; ++i)
    ASSERT_EQ(db.execute({OpCode::kDelete, key_of(i), ""}).status,
              Status::kOk);
  // Live keys must never be filtered out (no false negatives)...
  for (uint64_t i = 100; i < 200; ++i)
    EXPECT_EQ(db.execute({OpCode::kGet, key_of(i), ""}).status, Status::kOk);
  // ...and deleted keys answer NotFound (whether via filter or Hart).
  for (uint64_t i = 0; i < 100; ++i)
    EXPECT_EQ(db.execute({OpCode::kGet, key_of(i), ""}).status,
              Status::kNotFound);
  db.shutdown();
}

TEST(BloomShard, MgetFiltersPerKey) {
  Hartd::Options o;
  o.shards = 2;
  o.arena_mb = 32;
  o.bloom_bits_per_key = 10;
  o.bloom_expected_keys = 4096;
  Hartd db(o);
  for (uint64_t i = 0; i < 50; ++i)
    ASSERT_EQ(db.execute({OpCode::kPut, key_of(i), "v" + std::to_string(i)})
                  .status,
              Status::kOk);
  std::vector<std::string> keys;
  for (uint64_t i = 0; i < 100; ++i) keys.push_back(key_of(i));
  std::string payload;
  ASSERT_TRUE(encode_mget_keys(keys, &payload));
  const Response r = db.execute({OpCode::kMget, "", payload});
  ASSERT_EQ(r.status, Status::kOk);
  std::vector<std::string> values;
  std::vector<bool> found;
  ASSERT_TRUE(decode_mget_result(r.value, &values, &found));
  ASSERT_EQ(found.size(), keys.size());
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(found[i], i < 50) << i;
    if (i < 50) EXPECT_EQ(values[i], "v" + std::to_string(i));
  }
  db.shutdown();
}

TEST(BloomShard, RestartRebuildsFilterFromRecoveredKeys) {
  const std::string dir = make_test_dir("rebuild");
  Hartd::Options o;
  o.shards = 2;
  o.arena_mb = 32;
  o.arena_dir = dir;
  o.bloom_bits_per_key = 10;
  o.bloom_expected_keys = 4096;
  {
    Hartd db(o);
    for (uint64_t i = 0; i < 300; ++i)
      ASSERT_EQ(db.execute({OpCode::kPut, key_of(i), "v"}).status,
                Status::kOk);
    for (uint64_t i = 0; i < 100; ++i)
      ASSERT_EQ(db.execute({OpCode::kDelete, key_of(i), ""}).status,
                Status::kOk);
    db.shutdown();
  }
  Hartd db(o);
  EXPECT_TRUE(db.reopened());
  // The rebuilt filter must pass every recovered live key (no false
  // negatives after recovery) and still short-circuit cold misses.
  for (uint64_t i = 100; i < 300; ++i)
    EXPECT_EQ(db.execute({OpCode::kGet, key_of(i), ""}).status, Status::kOk)
        << i;
  for (uint64_t i = 0; i < 100; ++i)
    EXPECT_EQ(db.execute({OpCode::kGet, key_of(i), ""}).status,
              Status::kNotFound);
  auto& negatives =
      obs::Registry::instance().counter("hartd_bloom_negative_total");
  const uint64_t before = negatives.value();
  for (uint64_t i = 0; i < 200; ++i)
    EXPECT_EQ(db.execute({OpCode::kGet, key_of(500000 + i), ""}).status,
              Status::kNotFound);
  EXPECT_GT(negatives.value() - before, 150u);
  db.shutdown();
}

}  // namespace
}  // namespace hart::server
