// Service-layer throughput: hartd shard scaling and group-commit batch
// sensitivity, measured end-to-end through in-process pipelined clients
// (Random-insert — every op is a durable write, the worst case for the
// group-persist design).
//
// Expected shape: throughput scales with shard count while the injected
// per-shard PM device time dominates (each shard banks its batch's
// latency and sleeps it off concurrently with the other shards — see
// Arena::Options::defer_latency); once the host CPU saturates, scaling
// flattens at the compute bound. On a single-core host the low-latency
// configs are compute-bound from the start, so the scaling column shows
// the device-bound configs' speedup only.
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "epalloc/allocator.h"
#include "obs/counters.h"
#include "server/client.h"
#include "workload/mixes.h"

namespace {

using namespace hart::bench;
using hart::server::Hartd;
using hart::server::OpCode;
using hart::server::Request;

struct SvcResult {
  double ops_per_sec = 0;
  uint64_t batches = 0;
  uint64_t epochs = 0;
  uint64_t acks = 0;
  // Server-side stage attribution, merged across shards.
  hart::common::LatencyHistogram queue_wait;
  hart::common::LatencyHistogram batch_residency;
  hart::common::LatencyHistogram fence_wait;
};

/// Stage-latency CSV columns (queue/residency/fence p50+p99, in µs),
/// appended after the stable columns via csv_row's `extra` parameter.
std::string stage_csv(const SvcResult& r) {
  const auto q = r.queue_wait.percentiles();
  const auto b = r.batch_residency.percentiles();
  const auto f = r.fence_wait.percentiles();
  char buf[160];
  std::snprintf(buf, sizeof(buf), ",%.3f,%.3f,%.3f,%.3f,%.3f,%.3f",
                static_cast<double>(q.p50_ns) / 1e3,
                static_cast<double>(q.p99_ns) / 1e3,
                static_cast<double>(b.p50_ns) / 1e3,
                static_cast<double>(b.p99_ns) / 1e3,
                static_cast<double>(f.p50_ns) / 1e3,
                static_cast<double>(f.p99_ns) / 1e3);
  return buf;
}

size_t svc_ops() { return env_size("HART_SVC_OPS", 20000); }       // per client
size_t svc_clients() { return env_size("HART_SVC_CLIENTS", 4); }
size_t svc_pipeline() { return env_size("HART_SVC_PIPELINE", 64); }
double svc_zipf() {  // Zipfian theta for the mixed-workload section
  const char* v = std::getenv("HART_SVC_ZIPF");
  return v != nullptr ? std::strtod(v, nullptr) : 0.99;
}

SvcResult run_service(size_t shards, size_t batch,
                      const hart::pmem::LatencyConfig& lat,
                      hart::epalloc::AllocOptions::Kind alloc_kind =
                          hart::epalloc::AllocOptions::Kind::kAuto) {
  Hartd::Options o;
  o.shards = shards;
  o.batch_size = batch;
  o.latency = lat;
  o.arena_mb = 64;
  o.hart.alloc.kind = alloc_kind;
  Hartd db(o);

  const size_t per_client = svc_ops();
  hart::common::Stopwatch sw;
  std::vector<std::thread> pool;
  for (size_t c = 0; c < svc_clients(); ++c) {
    pool.emplace_back([&db, c, per_client] {
      hart::Client cl(db);
      std::deque<uint64_t> inflight;
      for (size_t i = 0; i < per_client; ++i) {
        char key[24];
        std::snprintf(key, sizeof(key), "%c%c%08zx",
                      static_cast<char>('A' + (c / 26) % 26),
                      static_cast<char>('A' + c % 26), i);
        inflight.push_back(cl.send(Request{OpCode::kPut, key, value_for(i)}));
        if (inflight.size() >= svc_pipeline()) {
          cl.wait(inflight.front());
          inflight.pop_front();
        }
      }
      cl.wait_all();
    });
  }
  for (auto& t : pool) t.join();

  SvcResult r;
  r.ops_per_sec =
      static_cast<double>(per_client * svc_clients()) / sw.seconds();
  for (size_t i = 0; i < db.shard_count(); ++i) {
    const auto& st = db.shard(i).stats();
    r.batches += st.batches.load();
    r.epochs += st.epochs.load();
    r.acks += st.write_acks.load();
    const auto sh = db.shard(i).histograms();
    r.queue_wait.merge(sh.queue_wait);
    r.batch_residency.merge(sh.batch_residency);
    r.fence_wait.merge(sh.fence_wait);
  }
  db.shutdown();
  return r;
}

// Mixed Read-Intensive stream through the pipelined client path, with the
// request distribution (Uniform or Zipfian at `theta`) choosing which live
// key each search/update/delete targets. Each client owns a disjoint
// key-pool slice (client-prefixed keys), preloads it untimed, then replays
// its op stream.
SvcResult run_mixed_service(size_t shards, size_t batch,
                            const hart::pmem::LatencyConfig& lat,
                            hart::workload::DistKind dist, double theta) {
  namespace wl = hart::workload;
  Hartd::Options o;
  o.shards = shards;
  o.batch_size = batch;
  o.latency = lat;
  o.arena_mb = 64;
  Hartd db(o);

  const size_t per_client = svc_ops();
  const size_t preload = per_client / 2;
  const size_t pool_size = preload + per_client;
  auto key_for = [](size_t c, size_t i) {
    char key[24];
    std::snprintf(key, sizeof(key), "%c%c%08zx",
                  static_cast<char>('A' + (c / 26) % 26),
                  static_cast<char>('A' + c % 26), i);
    return std::string(key);
  };
  for (size_t c = 0; c < svc_clients(); ++c)
    for (size_t i = 0; i < preload; ++i)
      db.execute(Request{OpCode::kPut, key_for(c, i), value_for(i)});

  hart::common::Stopwatch sw;
  std::vector<std::thread> pool;
  for (size_t c = 0; c < svc_clients(); ++c) {
    pool.emplace_back([&db, &key_for, c, per_client, preload, pool_size,
                       dist, theta] {
      const auto ops =
          wl::make_mixed_ops(per_client, preload, pool_size,
                             wl::kReadIntensive, 31 * c + 7, dist, theta);
      hart::Client cl(db);
      std::deque<uint64_t> inflight;
      for (const auto& op : ops) {
        std::string key = key_for(c, op.key_idx);
        Request req;
        switch (op.type) {
          case wl::OpType::kInsert:
            req = Request{OpCode::kPut, std::move(key),
                          value_for(op.key_idx)};
            break;
          case wl::OpType::kSearch:
            req = Request{OpCode::kGet, std::move(key), ""};
            break;
          case wl::OpType::kUpdate:
            req = Request{OpCode::kUpdate, std::move(key),
                          value_for(op.key_idx, 1)};
            break;
          case wl::OpType::kDelete:
            req = Request{OpCode::kDelete, std::move(key), ""};
            break;
        }
        inflight.push_back(cl.send(std::move(req)));
        if (inflight.size() >= svc_pipeline()) {
          cl.wait(inflight.front());
          inflight.pop_front();
        }
      }
      cl.wait_all();
    });
  }
  for (auto& t : pool) t.join();

  SvcResult r;
  r.ops_per_sec =
      static_cast<double>(per_client * svc_clients()) / sw.seconds();
  for (size_t i = 0; i < db.shard_count(); ++i) {
    const auto& st = db.shard(i).stats();
    r.batches += st.batches.load();
    r.epochs += st.epochs.load();
    r.acks += st.write_acks.load();
    const auto sh = db.shard(i).histograms();
    r.queue_wait.merge(sh.queue_wait);
    r.batch_residency.merge(sh.batch_residency);
    r.fence_wait.merge(sh.fence_wait);
  }
  db.shutdown();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_flags(
      argc, argv, "hartd service throughput: shard scaling + batch size",
      {{"--svc-ops", "HART_SVC_OPS", "inserts per client (default 20000)",
        true},
       {"--svc-clients", "HART_SVC_CLIENTS", "client threads (default 4)",
        true},
       {"--svc-pipeline", "HART_SVC_PIPELINE",
        "outstanding requests per client (default 64)", true},
       {"--zipf", "HART_SVC_ZIPF",
        "Zipfian theta for the mixed-distribution section (default 0.99)",
        true}});

  const size_t total = svc_ops() * svc_clients();
  std::cout << "hartd service throughput — Random-insert, " << total
            << " ops over " << svc_clients() << " pipelined clients (depth "
            << svc_pipeline() << "), deferred PM latency\n"
            << "host hardware threads: "
            << std::thread::hardware_concurrency() << "\n\n";

  // Shard scaling. Device-latency configs: the paper's 300/100 and
  // 600/300 plus a 1500/300 point deep in the device-bound regime (a
  // slow PM / CXL-window-like device) where per-shard stalls dominate.
  const hart::pmem::LatencyConfig lats[] = {
      hart::pmem::LatencyConfig::c300_100(),
      hart::pmem::LatencyConfig::c600_300(),
      {100, 1500, 300}};
  hart::common::Table scaling(
      {"insert ops/s / shards", "1", "2", "4", "8"});
  for (const auto& lat : lats) {
    std::vector<std::string> row{lat.label()};
    double base = 0;
    for (const size_t shards : {1u, 2u, 4u, 8u}) {
      const SvcResult r = run_service(shards, 32, lat);
      if (shards == 1) base = r.ops_per_sec;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.0f (x%.2f)", r.ops_per_sec,
                    r.ops_per_sec / base);
      row.emplace_back(cell);
      csv_row("svc-scaling", "Random-insert/" + std::to_string(shards),
              lat.label(), "hartd", 1e6 / r.ops_per_sec, nullptr,
              stage_csv(r));
    }
    scaling.add_row(std::move(row));
  }
  scaling.print();
  std::cout << "(speedup vs 1 shard; low-latency rows go compute-bound "
               "once the host cores saturate)\n\n";

  // Batch-size sensitivity: 4 shards, 600/300. Group commit amortizes one
  // epoch fence over the batch; tiny batches fence almost per-op.
  hart::common::Table batching(
      {"batch size (4 shards, 600/300)", "ops/s", "avg batch", "fences/kop"});
  for (const size_t batch : {1u, 4u, 16u, 32u, 128u}) {
    const SvcResult r = run_service(4, batch, lats[1]);
    char ops[32], avg[32], fences[32];
    std::snprintf(ops, sizeof(ops), "%.0f", r.ops_per_sec);
    std::snprintf(avg, sizeof(avg), "%.1f",
                  r.batches != 0 ? static_cast<double>(r.acks) /
                                       static_cast<double>(r.batches)
                                 : 0.0);
    std::snprintf(fences, sizeof(fences), "%.1f",
                  static_cast<double>(r.epochs) * 1000.0 /
                      static_cast<double>(total));
    batching.add_row({std::to_string(batch), ops, avg, fences});
    csv_row("svc-batch", "Random-insert/batch" + std::to_string(batch),
            lats[1].label(), "hartd", 1e6 / r.ops_per_sec, nullptr,
            stage_csv(r));
  }
  batching.print();

  // Request-distribution skew through the whole service path: the same
  // Read-Intensive mix keyed Uniformly vs Zipfian-skewed (YCSB theta via
  // --zipf). Skew concentrates requests on few keys — hot shard queues and
  // hot cache lines — so the delta is the service's sensitivity to
  // real-world (power-law) traffic rather than benchmark-uniform traffic.
  const double theta = svc_zipf();
  char zl[32];
  std::snprintf(zl, sizeof(zl), "Zipfian(%.2f)", theta);
  hart::common::Table mixed(
      {"Read-Intensive mix (4 shards, 600/300)", "ops/s", "avg batch"});
  const hart::workload::DistKind dists[] = {
      hart::workload::DistKind::kUniform,
      hart::workload::DistKind::kZipfian};
  for (const auto dist : dists) {
    const SvcResult r = run_mixed_service(4, 32, lats[1], dist, theta);
    const char* label =
        dist == hart::workload::DistKind::kUniform ? "Uniform" : zl;
    char ops[32], avg[32];
    std::snprintf(ops, sizeof(ops), "%.0f", r.ops_per_sec);
    std::snprintf(avg, sizeof(avg), "%.1f",
                  r.batches != 0 ? static_cast<double>(r.acks) /
                                       static_cast<double>(r.batches)
                                 : 0.0);
    mixed.add_row({label, ops, avg});
    csv_row("svc-mixed", std::string("Read-Intensive/") + label,
            lats[1].label(), "hartd", 1e6 / r.ops_per_sec, nullptr,
            stage_csv(r));
  }
  mixed.print();

  // Allocator ablation: the same Random-insert burst under the striped
  // allocator (service default: chunk-header persists batched onto the
  // epoch fence) vs the legacy single-instance EPAllocator (--legacy-alloc,
  // one eager header persist per alloc/free). The metric that matters is
  // PM metadata persists *per op* — the striped allocator amortizes a
  // whole batch of header updates into one flush per dirty chunk line at
  // the fence the service already pays for. Emitted as a machine-readable
  // BENCH json line for the experiment harness.
  {
    using hart::epalloc::AllocOptions;
    auto& reg = hart::obs::Registry::instance();
    auto meta_persists = [&reg] {
      return reg.counter("epalloc_pm_meta_persists_total").value();
    };
    struct Leg {
      const char* name;
      AllocOptions::Kind kind;
      double ops_per_sec = 0;
      uint64_t persists = 0;
      double per_op = 0;
    } legs[] = {{"striped", AllocOptions::Kind::kStriped},
                {"legacy", AllocOptions::Kind::kLegacy}};
    const uint64_t deferred0 =
        reg.counter("epalloc_meta_persists_deferred_total").value();
    const uint64_t flushes0 =
        reg.counter("epalloc_meta_flush_batches_total").value();
    for (Leg& leg : legs) {
      const uint64_t before = meta_persists();
      const SvcResult r = run_service(4, 32, lats[1], leg.kind);
      leg.persists = meta_persists() - before;
      leg.ops_per_sec = r.ops_per_sec;
      leg.per_op = static_cast<double>(leg.persists) /
                   static_cast<double>(total);
    }
    hart::common::Table ablation({"allocator (4 shards, 600/300)", "ops/s",
                                  "PM meta persists", "persists/op"});
    for (const Leg& leg : legs) {
      char ops[32], pp[32], po[32];
      std::snprintf(ops, sizeof(ops), "%.0f", leg.ops_per_sec);
      std::snprintf(pp, sizeof(pp), "%llu",
                    static_cast<unsigned long long>(leg.persists));
      std::snprintf(po, sizeof(po), "%.4f", leg.per_op);
      ablation.add_row({leg.name, ops, pp, po});
    }
    ablation.print();
    const double reduction =
        legs[1].per_op > 0 ? 1.0 - legs[0].per_op / legs[1].per_op : 0.0;
    std::printf(
        "BENCH {\"name\":\"svc_alloc_ablation\",\"workload\":"
        "\"Random-insert\",\"shards\":4,\"batch\":32,\"latency\":\"%s\","
        "\"ops\":%zu,"
        "\"striped\":{\"ops_per_sec\":%.0f,\"pm_meta_persists\":%llu,"
        "\"persists_per_op\":%.4f},"
        "\"legacy\":{\"ops_per_sec\":%.0f,\"pm_meta_persists\":%llu,"
        "\"persists_per_op\":%.4f},"
        "\"pm_meta_persist_reduction\":%.4f,"
        "\"meta_persists_deferred\":%llu,\"meta_flush_batches\":%llu}\n",
        lats[1].label().c_str(), total, legs[0].ops_per_sec,
        static_cast<unsigned long long>(legs[0].persists), legs[0].per_op,
        legs[1].ops_per_sec,
        static_cast<unsigned long long>(legs[1].persists), legs[1].per_op,
        reduction,
        static_cast<unsigned long long>(
            reg.counter("epalloc_meta_persists_deferred_total").value() -
            deferred0),
        static_cast<unsigned long long>(
            reg.counter("epalloc_meta_flush_batches_total").value() -
            flushes0));
  }
  return 0;
}
