// Fig. 7: deletion performance. Paper shape: FPTree best on the small
// Dictionary workload, worst on the larger ones; HART strongest when PM
// latency exceeds DRAM on larger data sets.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  hart::bench::parse_bench_flags(argc, argv, "Fig. 7: deletion performance");
  hart::bench::run_basic_op_figure("Fig. 7", hart::bench::BasicOp::kDelete);
  return 0;
}
