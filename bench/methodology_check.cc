// Validates the PM read-latency emulation methodology against the paper's
// (Section IV.A): the paper measures CPU stall cycles S on remote-NUMA
// loads, then adds the derived extra read latency *off-line* (equations
// (1)-(2)). Our device model supports both:
//   (a) on-line injection: pm_read() busy-waits extra_read_ns per line;
//   (b) off-line adjustment: run with read injection off, count touched PM
//       lines, and add lines x extra_read_ns to the measured time.
// This bench runs a search workload both ways and reports the disagreement
// — it should be small, which justifies using on-line injection in the
// figure benches.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace hart::bench;
  parse_bench_flags(argc, argv, "Methodology check: PM read-latency model");
  const size_t n = bench_records();
  const auto keys = hart::workload::make_random(n, 42);

  std::cout << "Methodology check: on-line PM-read injection vs the "
               "paper's off-line stall-cycle adjustment (search, Random, "
            << n << " records)\n\n";
  hart::common::Table table({"tree", "online us/op", "offline us/op",
                             "disagreement"});
  for (const auto kind : kAllTrees) {
    // (a) On-line: 300/300 injects 200 ns per touched PM line.
    double online_us = 0;
    {
      auto arena = make_bench_arena(hart::pmem::LatencyConfig::c300_300());
      auto tree = make_tree(kind, *arena);
      for (size_t i = 0; i < keys.size(); ++i)
        tree->insert(keys[i], value_for(i));
      hart::common::Stopwatch sw;
      std::string v;
      for (const auto& k : keys) tree->search(k, &v);
      online_us = sw.seconds() * 1e6 / static_cast<double>(n);
    }
    // (b) Off-line: run at 300/100 (no read delta), count lines, adjust.
    double offline_us = 0;
    {
      auto arena = make_bench_arena(hart::pmem::LatencyConfig::c300_100());
      auto tree = make_tree(kind, *arena);
      for (size_t i = 0; i < keys.size(); ++i)
        tree->insert(keys[i], value_for(i));
      const uint64_t lines_before = arena->stats().pm_read_lines.load();
      hart::common::Stopwatch sw;
      std::string v;
      for (const auto& k : keys) tree->search(k, &v);
      const double base_us = sw.seconds() * 1e6 / static_cast<double>(n);
      const uint64_t lines =
          arena->stats().pm_read_lines.load() - lines_before;
      // Equations (1)-(2) with S expressed directly in stalled PM lines:
      // delta = lines * (L_PM - L_DRAM).
      const double extra_us =
          static_cast<double>(lines) *
          hart::pmem::LatencyConfig::c300_300().extra_read_ns() / 1e3 /
          static_cast<double>(n);
      offline_us = base_us + extra_us;
    }
    const double disagree =
        online_us > 0 ? (online_us - offline_us) / online_us * 100.0 : 0;
    table.add_row({tree_name(kind), hart::common::Table::num(online_us),
                   hart::common::Table::num(offline_us),
                   hart::common::Table::num(disagree, 1) + "%"});
  }
  table.print();
  std::cout << "\n(positive disagreement = busy-wait overshoot of the "
               "on-line spin loop)\n";
  return 0;
}
