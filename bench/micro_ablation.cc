// Micro-benchmarks and ablations (google-benchmark) for the design choices
// DESIGN.md calls out:
//   * EPallocator vs naive per-object persistent allocation (the paper's
//     motivation for chunked allocation, Section III.A.4);
//   * the hash-key length kh (0 disables hash assist entirely — the
//     "hash-assisted" ablation; the paper uses kh=2);
//   * hash-directory lookup cost;
//   * per-operation persist counts under selective persistence.
#include <benchmark/benchmark.h>

#include <chrono>

#include "art/dram_index.h"
#include "art/simd.h"
#include "bench/bench_common.h"
#include "common/bloom.h"
#include "common/histogram.h"
#include "epalloc/epalloc.h"
#include "hart/verify.h"
#include "workload/mixes.h"
#include "hart/hart_leaf.h"

namespace {

using namespace hart;

pmem::Arena::Options quiet_arena(size_t mb = 512) {
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.latency = pmem::LatencyConfig::c300_100();
  o.charge_alloc_persist = true;
  return o;
}

// --- EPallocator vs raw persistent allocation -----------------------------

void BM_EPAllocatorAllocFree(benchmark::State& state) {
  pmem::Arena arena(quiet_arena());
  struct R {
    epalloc::EPRoot ep;
  };
  epalloc::EPAllocator ep(arena, &arena.root<R>()->ep,
                          sizeof(core::HartLeaf), &core::hart_leaf_probe,
                          &core::hart_leaf_clear);
  for (auto _ : state) {
    const uint64_t off = ep.ep_malloc(epalloc::ObjType::kLeaf);
    ep.commit(epalloc::ObjType::kLeaf, off);
    ep.free_object(epalloc::ObjType::kLeaf, off);
    benchmark::DoNotOptimize(off);
  }
}
BENCHMARK(BM_EPAllocatorAllocFree);

void BM_RawPmAllocFree(benchmark::State& state) {
  // The naive approach EPallocator replaces: one PM allocation (with its
  // modeled metadata flush) per object.
  pmem::Arena arena(quiet_arena());
  for (auto _ : state) {
    const uint64_t off = arena.alloc(sizeof(core::HartLeaf), 8);
    arena.persist(arena.ptr<char>(off), sizeof(core::HartLeaf));
    arena.free(off, sizeof(core::HartLeaf), 8);
    benchmark::DoNotOptimize(off);
  }
}
BENCHMARK(BM_RawPmAllocFree);

// --- kh sweep: hash-assist ablation ----------------------------------------

void BM_HartInsert_kh(benchmark::State& state) {
  const auto kh = static_cast<uint32_t>(state.range(0));
  const auto keys = workload::make_random(50000, 11);
  for (auto _ : state) {
    state.PauseTiming();
    pmem::Arena arena(quiet_arena(1024));
    core::Hart h(arena, {.hash_key_len = kh});
    state.ResumeTiming();
    for (size_t i = 0; i < keys.size(); ++i)
      h.insert(keys[i], bench::value_for(i));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_HartInsert_kh)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_HartSearch_kh(benchmark::State& state) {
  const auto kh = static_cast<uint32_t>(state.range(0));
  const auto keys = workload::make_random(50000, 11);
  pmem::Arena arena(quiet_arena(1024));
  core::Hart h(arena, {.hash_key_len = kh});
  for (size_t i = 0; i < keys.size(); ++i)
    h.insert(keys[i], bench::value_for(i));
  std::string v;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.search(keys[i], &v));
    i = (i + 7919) % keys.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HartSearch_kh)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// --- hash directory ----------------------------------------------------------

void BM_HashDirFind(benchmark::State& state) {
  pmem::Arena arena(quiet_arena());
  core::HashDir dir(1 << 16, core::HartLeafTraits{2, &arena}, nullptr);
  common::Rng rng(3);
  std::vector<uint64_t> hkeys;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t hk = rng.next() & 0xffff'0000'0000'0000ULL;
    dir.find_or_create(hk);
    hkeys.push_back(hk);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.find(hkeys[i]));
    i = (i + 13) % hkeys.size();
  }
}
BENCHMARK(BM_HashDirFind);

// --- persist counts: selective persistence in numbers -----------------------

void BM_PersistsPerInsert(benchmark::State& state) {
  // Reported as a counter, not a time: how many persistent() calls one
  // steady-state insert costs for HART vs WOART (the paper's Section
  // III.A.2 argument in numbers).
  const auto kind = static_cast<bench::TreeKind>(state.range(0));
  const auto keys = workload::make_random(20000, 5);
  double per_op = 0;
  for (auto _ : state) {
    pmem::Arena arena(quiet_arena(1024));
    auto idx = bench::make_tree(kind, arena);
    for (size_t i = 0; i < keys.size() / 2; ++i)
      idx->insert(keys[i], bench::value_for(i));
    const uint64_t before = arena.stats().persist_calls.load() +
                            arena.stats().alloc_meta_persists.load();
    for (size_t i = keys.size() / 2; i < keys.size(); ++i)
      idx->insert(keys[i], bench::value_for(i));
    const uint64_t after = arena.stats().persist_calls.load() +
                           arena.stats().alloc_meta_persists.load();
    per_op = static_cast<double>(after - before) /
             static_cast<double>(keys.size() / 2);
  }
  state.counters["persists_per_insert"] = per_op;
}
BENCHMARK(BM_PersistsPerInsert)
    ->Arg(0)  // HART
    ->Arg(1)  // WOART
    ->Arg(2)  // ART+CoW
    ->Arg(3); // FPTree

// --- parallel recovery (extension) ------------------------------------------

void BM_HartRecovery(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto keys = workload::make_random(100000, 11);
  pmem::Arena arena(quiet_arena(2048));
  {
    core::Hart h(arena);
    for (size_t i = 0; i < keys.size(); ++i)
      h.insert(keys[i], bench::value_for(i));
  }
  core::Hart h(arena);  // one recovery in the constructor (untimed)
  for (auto _ : state) {
    h.recover(threads);
    benchmark::DoNotOptimize(h.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_HartRecovery)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- value size classes (extension beyond the paper's 8/16) -----------------

void BM_HartInsert_valueSize(benchmark::State& state) {
  const auto vlen = static_cast<size_t>(state.range(0));
  const auto keys = workload::make_random(30000, 13);
  const std::string value(vlen, 'v');
  for (auto _ : state) {
    state.PauseTiming();
    pmem::Arena arena(quiet_arena(1024));
    core::Hart h(arena);
    state.ResumeTiming();
    for (const auto& k : keys) h.insert(k, value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_HartInsert_valueSize)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// --- cursor scan vs one-shot range -------------------------------------------

void BM_HartCursorScan(benchmark::State& state) {
  const auto keys = workload::make_sequential(100000);
  pmem::Arena arena(quiet_arena(1024));
  core::Hart h(arena);
  for (size_t i = 0; i < keys.size(); ++i)
    h.insert(keys[i], bench::value_for(i));
  for (auto _ : state) {
    size_t n = 0;
    core::HartCursor cur(h, keys.front(),
                         static_cast<size_t>(state.range(0)));
    for (; cur.valid(); cur.next()) ++n;
    if (n != keys.size()) state.SkipWithError("short scan");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_HartCursorScan)->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// --- request-distribution skew (Uniform vs Zipfian vs Latest) ----------------

void BM_HartMixedDistribution(benchmark::State& state) {
  const auto dist = static_cast<workload::DistKind>(state.range(0));
  const size_t n_ops = 50000, preload = 25000;
  const auto pool = workload::make_random(preload + n_ops, 7);
  const auto ops = workload::make_mixed_ops(
      n_ops, preload, pool.size(), workload::kReadIntensive, 3, dist);
  for (auto _ : state) {
    state.PauseTiming();
    pmem::Arena arena(quiet_arena(1024));
    core::Hart h(arena);
    for (size_t i = 0; i < preload; ++i)
      h.insert(pool[i], bench::value_for(i));
    state.ResumeTiming();
    std::string v;
    for (const auto& op : ops) {
      const std::string& key = pool[op.key_idx];
      switch (op.type) {
        case workload::OpType::kInsert:
          h.insert(key, bench::value_for(op.key_idx));
          break;
        case workload::OpType::kSearch: h.search(key, &v); break;
        case workload::OpType::kUpdate:
          h.update(key, bench::value_for(op.key_idx, 1));
          break;
        case workload::OpType::kDelete: h.remove(key); break;
      }
    }
  }
  state.SetLabel(workload::dist_name(dist));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n_ops));
}
BENCHMARK(BM_HartMixedDistribution)->Arg(0)->Arg(1)->Arg(2);


// --- cost of persistence: HART vs the volatile DRAM-ART oracle --------------

void BM_CostOfPersistence(benchmark::State& state) {
  // arg 0: DRAM-ART; 1: HART with latency off (pure protocol cost);
  // 2: HART at 300/100; 3: HART at 600/300.
  const auto mode = state.range(0);
  const auto keys = workload::make_random(30000, 19);
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<pmem::Arena> arena;
    std::unique_ptr<common::Index> idx;
    if (mode == 0) {
      idx = std::make_unique<art::DramIndex>();
    } else {
      auto o = quiet_arena(1024);
      o.latency = mode == 1   ? pmem::LatencyConfig::off()
                  : mode == 2 ? pmem::LatencyConfig::c300_100()
                              : pmem::LatencyConfig::c600_300();
      arena = std::make_unique<pmem::Arena>(o);
      idx = std::make_unique<core::Hart>(*arena);
    }
    state.ResumeTiming();
    for (size_t i = 0; i < keys.size(); ++i)
      idx->insert(keys[i], bench::value_for(i));
  }
  static const char* kLabels[] = {"DRAM-ART", "HART/no-latency",
                                  "HART/300-100", "HART/600-300"};
  state.SetLabel(kLabels[mode]);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_CostOfPersistence)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// --- read fast-path ablation: SIMD x fingerprints x Bloom --------------------

pmem::Arena::Options ablation_arena(size_t mb = 1024) {
  // The read fast paths are about skipping PM reads, so the grid runs at
  // the paper's full 300/300 point (not the read-optimistic 300/100 the
  // other ablations use) — the PM reads being skipped must cost something.
  pmem::Arena::Options o;
  o.size = mb << 20;
  o.latency = pmem::LatencyConfig::c300_300();
  o.charge_alloc_persist = true;
  return o;
}

inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void BM_ReadPathAblation(benchmark::State& state) {
  // Full 2^3 layer grid x {hit-heavy, miss-heavy}. Each layer is toggled
  // independently: SIMD via the runtime kill-switch, fingerprints via
  // Hart::Options, the Bloom front via an explicit dispatcher-style probe
  // before each search (what Hartd::serve_get does).
  const bool simd_on = state.range(0) != 0;
  const bool fp_on = state.range(1) != 0;
  const bool bloom_on = state.range(2) != 0;
  const bool miss_heavy = state.range(3) != 0;

  constexpr size_t kLive = 100000;
  const auto pool = workload::make_random(2 * kLive, 23);

  pmem::Arena arena(ablation_arena());
  core::Hart::Options ho;
  ho.fingerprints = fp_on;
  core::Hart h(arena, ho);
  common::CountingBloom bloom(kLive, 10);
  for (size_t i = 0; i < kLive; ++i) {
    h.insert(pool[i], bench::value_for(i));
    bloom.add(pool[i]);
  }

  art::simd::set_enabled(simd_on);
  common::LatencyHistogram hist;
  std::string v;
  size_t i = 0;
  size_t found = 0;
  for (auto _ : state) {
    // Miss-heavy probes the unloaded half of the pool (every lookup a
    // definitive miss); hit-heavy probes only live keys.
    const std::string& key =
        miss_heavy ? pool[kLive + i] : pool[i];
    const uint64_t t0 = now_ns();
    if (!bloom_on || bloom.may_contain(key)) {
      if (h.search(key, &v).ok()) ++found;
    }
    hist.record(now_ns() - t0);
    i = (i + 7919) % kLive;
  }
  art::simd::set_enabled(true);

  if (!miss_heavy && found == 0) state.SkipWithError("no hits");
  const auto p = hist.percentiles();
  state.counters["p50_ns"] = static_cast<double>(p.p50_ns);
  state.counters["p99_ns"] = static_cast<double>(p.p99_ns);
  state.SetLabel(std::string(simd_on ? "simd" : "scalar") +
                 (fp_on ? "+fp" : "") + (bloom_on ? "+bloom" : "") +
                 (miss_heavy ? "/miss" : "/hit"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadPathAblation)
    ->ArgsProduct({{0, 1}, {0, 1}, {0, 1}, {0, 1}});

void BM_FastPathInsertOverhead(benchmark::State& state) {
  // The acceptance gate for the read layers: inserts must not pay for
  // them. arg 0 = baseline, 1 = fingerprints (the always-on layer — this
  // is what fig4 inserts now include: one derived byte inside the
  // already-persisted leaf tail), 2 = fingerprints + Bloom maintenance
  // (the opt-in service-layer filter, one add per fresh key).
  const auto mode = state.range(0);
  const auto keys = workload::make_random(50000, 29);
  for (auto _ : state) {
    state.PauseTiming();
    pmem::Arena arena(ablation_arena());
    core::Hart::Options ho;
    ho.fingerprints = mode >= 1;
    core::Hart h(arena, ho);
    common::CountingBloom bloom(keys.size(), 10);
    state.ResumeTiming();
    for (size_t i = 0; i < keys.size(); ++i) {
      h.insert(keys[i], bench::value_for(i));
      if (mode >= 2) bloom.add(keys[i]);
    }
  }
  static const char* kLabels[] = {"baseline", "fp", "fp+bloom"};
  state.SetLabel(kLabels[mode]);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_FastPathInsertOverhead)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
