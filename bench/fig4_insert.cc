// Fig. 4: insertion performance of the four persistent trees under
// Dictionary / Sequential / Random and the three PM latency configs.
// Paper shape: HART fastest everywhere (1.4x-4x over WOART, up to ~4x over
// FPTree); ART+CoW worst in most cases.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  hart::bench::parse_bench_flags(argc, argv, "Fig. 4: insertion performance");
  hart::bench::run_basic_op_figure("Fig. 4", hart::bench::BasicOp::kInsert);
  return 0;
}
