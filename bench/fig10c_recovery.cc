// Fig. 10c: build time vs recovery time for the two hybrid trees (HART and
// FPTree), Random, 300/100. Paper shape: recovery beats build for both
// (HART recovery ~2.4x faster than HART build on average); FPTree recovery
// is far faster than HART's because one FPTree leaf holds many records
// while a HART leaf holds one.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace hart::bench;
  parse_bench_flags(argc, argv, "Fig. 10c: build vs recovery time",
                    {{"--fig8-max", "HART_FIG8_MAX",
                      "largest record count (default 1000000)", true}});
  const size_t max_n = env_size("HART_FIG8_MAX", 1000000);
  const std::vector<size_t> sizes = {max_n / 100, max_n / 10, max_n / 2,
                                     max_n};
  const auto lat = hart::pmem::LatencyConfig::c300_100();
  const auto all_keys = hart::workload::make_random(max_n, 42);

  std::cout << "Fig. 10c: build vs recovery time (seconds), Random, "
               "300/100\n\n";
  hart::common::Table table({"records", "HART build", "HART recovery",
                             "FPTree build", "FPTree recovery"});
  for (const size_t n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    // HART
    {
      auto arena = make_bench_arena(lat);
      hart::common::Stopwatch sw;
      {
        hart::core::Hart h(*arena);
        for (size_t i = 0; i < n; ++i) h.insert(all_keys[i], value_for(i));
        row.push_back(hart::common::Table::num(sw.seconds(), 3));
      }
      sw.reset();
      hart::core::Hart recovered(*arena);  // Algorithm 7
      row.push_back(hart::common::Table::num(sw.seconds(), 3));
      if (recovered.size() != n) std::cerr << "warning: recovery mismatch\n";
    }
    // FPTree
    {
      auto arena = make_bench_arena(lat);
      hart::common::Stopwatch sw;
      {
        hart::fptree::FpTree t(*arena);
        for (size_t i = 0; i < n; ++i) t.insert(all_keys[i], value_for(i));
        row.push_back(hart::common::Table::num(sw.seconds(), 3));
      }
      sw.reset();
      hart::fptree::FpTree recovered(*arena);  // leaf-list walk + rebuild
      row.push_back(hart::common::Table::num(sw.seconds(), 3));
      if (recovered.size() != n) std::cerr << "warning: recovery mismatch\n";
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
