// Fig. 10a: range query of 100,000 records under Sequential.
// The paper implements range query in the three ART-based trees as one
// search per key (Section IV.D) while FPTree walks its sorted leaf list —
// and FPTree wins (~2.3-2.6x over HART). We reproduce that method, and
// additionally report this repo's native ordered range scan (an extension:
// HART keeps a sorted prefix directory, see DESIGN.md).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace hart::bench;
  parse_bench_flags(argc, argv, "Fig. 10a: range query performance",
                    {{"--range-records", "HART_RANGE_RECORDS",
                      "records per range query (default 100000)", true}});
  const size_t n = bench_records();
  const size_t span = std::min<size_t>(env_size("HART_RANGE_RECORDS", 100000),
                                       n / 2);
  const auto keys = hart::workload::make_sequential(n);
  const size_t start = n / 4;

  std::cout << "Fig. 10a: range query of " << span
            << " records, Sequential (avg time per record, microseconds)\n\n";

  hart::common::Table paper_style({"paper method / latency", "HART", "WOART",
                                   "ART+CoW", "FPTree"});
  hart::common::Table native({"native range() / latency", "HART", "WOART",
                              "ART+CoW", "FPTree"});
  for (const auto& lat : paper_configs()) {
    std::vector<std::string> row_paper{lat.label()};
    std::vector<std::string> row_native{lat.label()};
    for (const auto kind : kAllTrees) {
      auto arena = make_bench_arena(lat);
      auto tree = make_tree(kind, *arena);
      for (size_t i = 0; i < n; ++i) tree->insert(keys[i], value_for(i));

      {  // Paper method: per-key search for the ART trees, range for FPTree.
        hart::common::Stopwatch sw;
        if (kind == TreeKind::kFpTree) {
          std::vector<std::pair<std::string, std::string>> out;
          tree->range(keys[start], span, &out);
          if (out.size() != span) std::cerr << "warning: short range\n";
        } else {
          std::string v;
          for (size_t i = 0; i < span; ++i)
            tree->search(keys[start + i], &v);
        }
        row_paper.push_back(hart::common::Table::num(
            sw.seconds() * 1e6 / static_cast<double>(span)));
      }
      {  // Native ordered scan on every tree.
        hart::common::Stopwatch sw;
        std::vector<std::pair<std::string, std::string>> out;
        tree->range(keys[start], span, &out);
        row_native.push_back(hart::common::Table::num(
            sw.seconds() * 1e6 / static_cast<double>(span)));
      }
    }
    paper_style.add_row(std::move(row_paper));
    native.add_row(std::move(row_native));
  }
  paper_style.print();
  std::cout << '\n';
  native.print();
  return 0;
}
