// Fig. 6: update performance. Paper shape: HART beats WOART/ART+CoW in
// most cases (faster leaf location) and FPTree in all cases.
#include "bench/bench_common.h"

int main() {
  hart::bench::run_basic_op_figure("Fig. 6", hart::bench::BasicOp::kUpdate);
  return 0;
}
