// Fig. 6: update performance. Paper shape: HART beats WOART/ART+CoW in
// most cases (faster leaf location) and FPTree in all cases.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  hart::bench::parse_bench_flags(argc, argv, "Fig. 6: update performance");
  hart::bench::run_basic_op_figure("Fig. 6", hart::bench::BasicOp::kUpdate);
  return 0;
}
