// Fig. 10d: HART multi-threaded scalability — MIOPS for each basic
// operation at 1/2/4/8/16 threads, Random, 300/100. Paper shape:
// near-linear to the physical core count (x7.1-7.3 at 8 threads),
// sub-linear beyond it (hyper-threading), search scaling best (readers
// share the per-ART lock).
#include <algorithm>
#include <thread>

#include "bench/bench_common.h"

namespace {

using namespace hart::bench;

double run_threads(hart::core::Hart& h,
                   const std::vector<std::string>& keys, BasicOp op,
                   unsigned threads, size_t ops_per_thread) {
  std::vector<std::thread> pool;
  hart::common::Stopwatch sw;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      hart::common::Rng rng(t + 1);
      std::string v;
      for (size_t i = 0; i < ops_per_thread; ++i) {
        switch (op) {
          case BasicOp::kInsert: {
            // Fresh keys: a disjoint tail slice per thread.
            const size_t idx =
                keys.size() / 2 + t * ops_per_thread + i;
            h.insert(keys[idx], value_for(idx));
            break;
          }
          case BasicOp::kSearch:
            h.search(keys[rng.next_below(keys.size() / 2)], &v);
            break;
          case BasicOp::kUpdate:
            h.update(keys[rng.next_below(keys.size() / 2)],
                     value_for(i, 1));
            break;
          default: {  // delete a disjoint preloaded slice per thread
            const size_t idx = t * ops_per_thread + i;
            h.remove(keys[idx]);
            break;
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  const double total = static_cast<double>(threads) *
                       static_cast<double>(ops_per_thread);
  return total / sw.seconds() / 1e6;  // MIOPS
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_flags(argc, argv, "Fig. 10d: HART multi-threaded scalability");
  const size_t n = bench_records();  // preload size
  const auto lat = hart::pmem::LatencyConfig::c300_100();
  const unsigned max_threads = std::max(1u, bench_threads());
  const size_t ops_total = n / 4;
  // Key pool: first half preloaded, second half reserved for inserts
  // (max_threads x ops_per_thread must fit).
  const auto keys =
      hart::workload::make_random(2 * n + max_threads * ops_total, 42);

  std::cout << "Fig. 10d: HART scalability (MIOPS), Random, 300/100, "
            << n << " preloaded records, hardware threads available: "
            << std::thread::hardware_concurrency() << "\n\n";

  hart::common::Table table(
      {"threads", "Insertion", "Search", "Update", "Deletion"});
  std::vector<unsigned> counts;
  for (unsigned t = 1; t < max_threads; t *= 2) counts.push_back(t);
  counts.push_back(max_threads);
  for (const unsigned threads : counts) {
    const size_t per_thread = ops_total / threads;
    std::vector<std::string> row{std::to_string(threads)};
    for (const BasicOp op : {BasicOp::kInsert, BasicOp::kSearch,
                             BasicOp::kUpdate, BasicOp::kDelete}) {
      auto arena = make_bench_arena(lat);
      hart::core::Hart h(*arena);
      for (size_t i = 0; i < n; ++i) h.insert(keys[i], value_for(i));
      row.push_back(hart::common::Table::num(
          run_threads(h, keys, op, threads, per_thread), 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
