// Read-scaling ablation: fig5's search workload driven by 1..T concurrent
// reader threads, optimistic lock-free reads (default) vs the paper's
// per-partition reader/writer lock (--rwlock-reads).
//
// Two variants per thread count:
//   * read-only — fig5 proper: every thread issues point lookups over the
//     preloaded keys, nothing mutates;
//   * churn — one extra writer thread updates random keys throughout, the
//     case the optimistic path exists for: rwlock readers serialize behind
//     the writer's exclusive sections, lock-free readers do not.
//
// Prints a table and (HART_BENCH_JSON / --json) writes the full grid as
// machine-readable JSON; BENCH_read_scaling.json in the repo root is a
// checked-in run of this binary. See EXPERIMENTS.md for methodology.
#include "bench/bench_common.h"

#include <atomic>
#include <cstdint>
#include <ctime>
#include <mutex>
#include <thread>

namespace hart::bench {
namespace {

struct Cell {
  std::string latency;
  std::string variant;  // "read-only" | "churn"
  std::string mode;     // "optimistic" | "rwlock"
  unsigned threads = 0;
  double mops = 0;        // reader throughput, million searches/s
  double write_mops = 0;  // writer throughput (churn cells)
  double p50_us = 0;      // reader per-op latency
  double p99_us = 0;
};

size_t cell_ms() { return env_size("HART_BENCH_CELL_MS", 400); }
size_t churn_writers() { return env_size("HART_BENCH_WRITERS", 1); }
bool hot_partition() { return env_size("HART_BENCH_HOT", 0) != 0; }

bool rwlock_only() {
  const char* v = std::getenv("HART_BENCH_RWLOCK_ONLY");
  return v != nullptr && v[0] == '1';
}

/// Measure aggregate search throughput: `threads` readers doing uniform
/// random lookups for ~cell_ms, plus (churn) one writer updating random
/// keys the whole time. Returns reader Mops/s.
struct CellResult {
  double read_mops = 0;   // aggregate reader throughput
  double write_mops = 0;  // aggregate writer throughput (churn only)
  double p50_us = 0;      // reader per-op latency percentiles
  double p99_us = 0;
};

CellResult run_cell(core::Hart& h, const std::vector<std::string>& keys,
                    unsigned threads, bool churn) {
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::atomic<unsigned> ready{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  const unsigned writers = churn ? static_cast<unsigned>(churn_writers()) : 0;
  const unsigned all = threads + writers;
  common::LatencyHistogram hist;
  std::mutex hist_mu;

  std::vector<std::thread> ts;
  ts.reserve(all);
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      common::Rng rng(t * 7919 + 13);
      std::string v;
      uint64_t ops = 0;
      common::LatencyHistogram local;
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {}
      while (!stop.load(std::memory_order_relaxed)) {
        common::Stopwatch op;
        h.search(keys[rng.next_below(keys.size())], &v);
        local.record(op.nanos());
        ++ops;
      }
      reads.fetch_add(ops);
      std::lock_guard lk(hist_mu);
      hist.merge(local);
    });
  }
  for (unsigned w = 0; w < writers; ++w) {
    ts.emplace_back([&, w] {
      common::Rng rng(4242 + w * 17);
      uint64_t ops = 0;
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {}
      int round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t i = rng.next_below(keys.size());
        h.update(keys[i], value_for(i, ++round));
        ++ops;
      }
      writes.fetch_add(ops);
    });
  }

  while (ready.load() != all) std::this_thread::yield();
  common::Stopwatch sw;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cell_ms()));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : ts) th.join();
  const double secs = sw.seconds();
  CellResult r;
  r.read_mops = static_cast<double>(reads.load()) / secs / 1e6;
  r.write_mops = static_cast<double>(writes.load()) / secs / 1e6;
  const common::Percentiles p = hist.percentiles();
  r.p50_us = static_cast<double>(p.p50_ns) / 1000.0;
  r.p99_us = static_cast<double>(p.p99_ns) / 1000.0;
  return r;
}

void emit_json(const char* path, const std::vector<Cell>& cells,
               size_t records, unsigned max_threads) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  char stamp[32] = "";
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::gmtime(&now));
  std::fprintf(f,
               "{\n  \"bench\": \"read_scaling\",\n  \"date\": \"%s\",\n"
               "  \"records\": %zu,\n  \"max_threads\": %u,\n"
               "  \"hw_threads\": %u,\n  \"cell_ms\": %zu,\n"
               "  \"hot_partition\": %s,\n  \"churn_writers\": %zu,\n",
               stamp, records, max_threads,
               std::thread::hardware_concurrency(), cell_ms(),
               hot_partition() ? "true" : "false", churn_writers());
  if (std::thread::hardware_concurrency() < max_threads)
    std::fprintf(f,
                 "  \"host_note\": \"host has fewer hardware threads than "
                 "max_threads: thread counts are oversubscribed, so curves "
                 "measure read-protocol overhead and scheduling, not "
                 "parallel scaling (see EXPERIMENTS.md)\",\n");

  // Pair each optimistic cell with its rwlock twin for the speedup block.
  auto find = [&](const Cell& c, const char* mode) -> const Cell* {
    for (const auto& o : cells)
      if (o.latency == c.latency && o.variant == c.variant &&
          o.threads == c.threads && o.mode == mode)
        return &o;
    return nullptr;
  };
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"latency\": \"%s\", \"variant\": \"%s\", "
                 "\"mode\": \"%s\", \"threads\": %u, \"read_mops\": %.3f, "
                 "\"write_mops\": %.3f, \"read_p50_us\": %.2f, "
                 "\"read_p99_us\": %.2f}%s\n",
                 c.latency.c_str(), c.variant.c_str(), c.mode.c_str(),
                 c.threads, c.mops, c.write_mops, c.p50_us, c.p99_us,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup_vs_rwlock\": [\n");
  bool first = true;
  for (const auto& c : cells) {
    if (c.mode != "optimistic") continue;
    const Cell* base = find(c, "rwlock");
    if (base == nullptr || base->mops <= 0) continue;
    std::fprintf(f,
                 "%s    {\"latency\": \"%s\", \"variant\": \"%s\", "
                 "\"threads\": %u, \"speedup\": %.2f}",
                 first ? "" : ",\n", c.latency.c_str(), c.variant.c_str(),
                 c.threads, c.mops / base->mops);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "read_scaling: wrote %s\n", path);
}

int run(int argc, char** argv) {
  parse_bench_flags(
      argc, argv,
      "Read scaling: fig5 search at 1..T threads, optimistic vs rwlock",
      {{"--rwlock-reads", "HART_BENCH_RWLOCK_ONLY",
        "run only the paper's rwlock read-path baseline", false},
       {"--json", "HART_BENCH_JSON",
        "write the full result grid to this JSON file", true},
       {"--cell-ms", "HART_BENCH_CELL_MS",
        "measured milliseconds per cell (default 400)", true},
       {"--hot", "HART_BENCH_HOT",
        "single-prefix keys: all traffic in one partition/lock", false},
       {"--writers", "HART_BENCH_WRITERS",
        "writer threads in the churn variant (default 1)", true}});

  const size_t n = bench_records();
  const unsigned max_threads = bench_threads() < 8 ? bench_threads() : 8;
  std::vector<unsigned> thread_counts;
  for (unsigned t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  // Read scaling is about the lock protocol, not PM latency sweeps:
  // default to the paper's 300/300 midpoint unless --latency narrows it.
  std::vector<pmem::LatencyConfig> configs = {pmem::LatencyConfig::c300_300()};
  if (std::getenv("HART_BENCH_LATENCY") != nullptr) configs = paper_configs();

  std::vector<const char*> modes;
  if (!rwlock_only()) modes.push_back("optimistic");
  modes.push_back("rwlock");

  std::cout << "Read scaling: search Mops/s, " << n
            << " random keys, cells of " << cell_ms() << " ms\n"
            << "Modes: optimistic (lock-free reads) vs rwlock "
               "(--rwlock-reads ablation)\n\n";

  // --hot (HART_BENCH_HOT=1): every key shares one 2-byte prefix, so all
  // traffic lands in a single partition — one rwlock — the worst case for
  // the paper's locking and the best case for the optimistic path.
  std::vector<std::string> keys;
  if (hot_partition()) {
    keys.reserve(n);
    char buf[32];
    for (size_t i = 0; i < n; ++i) {
      std::snprintf(buf, sizeof(buf), "hh%08zu", i);
      keys.emplace_back(buf);
    }
  } else {
    keys = workload::make_workload(workload::WorkloadKind::kRandom, n);
  }

  std::vector<Cell> cells;
  for (const auto& lat : configs) {
    for (const char* variant : {"read-only", "churn"}) {
      common::Table table({std::string("(") + variant + ", " + lat.label() +
                               ") threads",
                           "optimistic", "rwlock", "speedup",
                           "p99 opt/rw us"});
      for (const unsigned t : thread_counts) {
        std::vector<std::string> row{std::to_string(t)};
        CellResult opt;
        CellResult rw;
        for (const char* mode : modes) {
          const bool rwlock = std::string_view(mode) == "rwlock";
          auto arena = make_bench_arena(lat);
          core::Hart h(*arena, {.rwlock_reads = rwlock});
          for (size_t i = 0; i < keys.size(); ++i)
            h.insert(keys[i], value_for(i));
          const CellResult r =
              run_cell(h, keys, t, std::string_view(variant) == "churn");
          (rwlock ? rw : opt) = r;
          cells.push_back({lat.label(), variant, mode, t, r.read_mops,
                           r.write_mops, r.p50_us, r.p99_us});
        }
        row.push_back(rwlock_only() ? "-" : common::Table::num(opt.read_mops));
        row.push_back(common::Table::num(rw.read_mops));
        row.push_back(rw.read_mops > 0 && !rwlock_only()
                          ? common::Table::num(opt.read_mops / rw.read_mops) +
                                "x"
                          : "-");
        row.push_back((rwlock_only() ? std::string("-")
                                     : common::Table::num(opt.p99_us)) +
                      " / " + common::Table::num(rw.p99_us));
        table.add_row(std::move(row));
      }
      table.print();
      std::cout << '\n';
    }
  }

  if (const char* path = std::getenv("HART_BENCH_JSON");
      path != nullptr && path[0] != '\0')
    emit_json(path, cells, n, max_threads);
  return 0;
}

}  // namespace
}  // namespace hart::bench

int main(int argc, char** argv) { return hart::bench::run(argc, argv); }
