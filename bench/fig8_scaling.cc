// Fig. 8: impact of the number of records on the four basic operations —
// total time (seconds) vs record count, Random workload, 300/100.
// Paper shape: HART scales best on insertion; the three ART-based trees are
// close on search/update at this config; FPTree worst at search.
// Record counts are the paper's {1,10,50,100} M scaled down by
// HART_FIG8_MAX (default 1M) at the same 1:10:50:100 ratios.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace hart::bench;
  parse_bench_flags(argc, argv, "Fig. 8: total time vs number of records",
                    {{"--fig8-max", "HART_FIG8_MAX",
                      "largest record count (default 1000000)", true}});
  const size_t max_n = env_size("HART_FIG8_MAX", 1000000);
  const std::vector<size_t> sizes = {max_n / 100, max_n / 10, max_n / 2,
                                     max_n};
  const auto lat = hart::pmem::LatencyConfig::c300_100();
  std::cout << "Fig. 8: total time (seconds) vs number of records, Random, "
               "300/100\n(paper: 1M..100M records; here scaled to "
            << max_n << " via HART_FIG8_MAX)\n\n";

  const auto all_keys = hart::workload::make_random(max_n, 42);

  for (const BasicOp op : {BasicOp::kInsert, BasicOp::kSearch,
                           BasicOp::kUpdate, BasicOp::kDelete}) {
    hart::common::Table table(
        {std::string(op_name(op)) + " / records", "HART", "WOART",
         "ART+CoW", "FPTree"});
    for (const size_t n : sizes) {
      const std::vector<std::string> keys(all_keys.begin(),
                                          all_keys.begin() + n);
      std::vector<std::string> row{std::to_string(n)};
      for (const auto kind : kAllTrees) {
        const double us = run_basic_op(kind, lat, keys, op);
        row.push_back(hart::common::Table::num(
            us * static_cast<double>(n) / 1e6, 3));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::cout << '\n';
  }
  return 0;
}
