// Shared infrastructure for the paper-figure benchmark harness.
//
// Every bench binary regenerates one figure of the paper's evaluation
// (Section IV): same workloads, same latency configurations, same series
// (HART / WOART / ART+CoW / FPTree), printed as a table on stdout.
// Absolute numbers differ from the paper (different host, emulated PM);
// the *shape* — who wins, by roughly what factor — is the reproduction
// target. See EXPERIMENTS.md.
//
// Environment knobs (defaults chosen to finish in seconds on a laptop):
//   HART_BENCH_RECORDS  records for Sequential/Random    (default 100000)
//   HART_DICT_WORDS     records for Dictionary           (default 100000;
//                       the paper used the full 466544)
//   HART_FIG8_MAX       largest record count in Fig. 8   (default 1000000)
//   HART_BENCH_ARENA_MB arena size per tree              (default 1024)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "artcow/artcow.h"
#include "common/histogram.h"
#include "common/index.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "fptree/fptree.h"
#include "hart/hart.h"
#include "obs/trace.h"
#include "pmem/arena.h"
#include "woart/woart.h"
#include "workload/keygen.h"

namespace hart::bench {

inline size_t env_size(const char* name, size_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

// ---- shared CLI flag parsing --------------------------------------------
// Every bench binary accepts the same flags; each flag is sugar for the
// corresponding HART_* environment knob (the env stays the single source
// of truth, so scripts using either spelling agree). Benches with extra
// knobs pass them via `extra`.

struct BenchFlag {
  const char* flag;  // e.g. "--records"
  const char* env;   // e.g. "HART_BENCH_RECORDS"
  const char* help;
  bool takes_value = true;
};

inline const std::vector<BenchFlag>& common_bench_flags() {
  static const std::vector<BenchFlag> flags = {
      {"--records", "HART_BENCH_RECORDS",
       "records for Sequential/Random workloads (default 100000)", true},
      {"--dict-words", "HART_DICT_WORDS",
       "records for Dictionary (default 100000; paper used 466544)", true},
      {"--arena-mb", "HART_BENCH_ARENA_MB",
       "arena size per tree in MiB (default 1024)", true},
      {"--threads", "HART_BENCH_THREADS",
       "max thread count for scalability benches (default 16)", true},
      {"--latency", "HART_BENCH_LATENCY",
       "run only this PM write/read config, e.g. 300/100 or a custom W/R",
       true},
      {"--csv", "HART_BENCH_CSV",
       "append machine-readable rows to this file", true},
      {"--percentiles", "HART_BENCH_PERCENTILES",
       "collect per-op latency histograms", false},
      {"--trace-out", "HART_TRACE_OUT",
       "write a chrome://tracing JSON timeline of the run to this file",
       true},
  };
  return flags;
}

/// Parse `--flag value` argument pairs into their environment knobs.
/// Handles --help (prints the table, exits 0) and unknown flags (exits 2).
inline void parse_bench_flags(int argc, char** argv, const char* what,
                              std::initializer_list<BenchFlag> extra = {}) {
  std::vector<BenchFlag> flags = common_bench_flags();
  flags.insert(flags.end(), extra.begin(), extra.end());
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      std::printf("%s\n\nusage: %s [flags]\n", what, argv[0]);
      for (const auto& f : flags)
        std::printf("  %-14s %s%s [env %s]\n", f.flag,
                    f.takes_value ? "N  " : "", f.help, f.env);
      std::exit(0);
    }
    const BenchFlag* hit = nullptr;
    for (const auto& f : flags)
      if (a == f.flag) hit = &f;
    if (hit == nullptr) {
      std::fprintf(stderr, "%s: unknown flag '%s' (try --help)\n", argv[0],
                   a.c_str());
      std::exit(2);
    }
    const char* value = "1";
    if (hit->takes_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], hit->flag);
        std::exit(2);
      }
      value = argv[++i];
    }
    ::setenv(hit->env, value, 1);
  }

  // HART_TRACE_OUT / --trace-out: arm the tracer now (so every phase and
  // op span of the run is captured) and dump the timeline at exit.
  if (const char* path = std::getenv("HART_TRACE_OUT");
      path != nullptr && path[0] != '\0') {
    static std::string trace_path;
    trace_path = path;
    obs::Tracer::instance().enable();
    std::atexit([] {
      if (obs::Tracer::instance().write_chrome_json(trace_path))
        std::fprintf(stderr, "trace: wrote %s (load in chrome://tracing)\n",
                     trace_path.c_str());
      else
        std::fprintf(stderr, "trace: cannot write %s\n", trace_path.c_str());
    });
  }
}

inline size_t bench_records() { return env_size("HART_BENCH_RECORDS", 100000); }
inline size_t dict_words() {
  return env_size("HART_DICT_WORDS", 100000);
}
inline size_t arena_mb() { return env_size("HART_BENCH_ARENA_MB", 1024); }
inline unsigned bench_threads() {
  return static_cast<unsigned>(env_size("HART_BENCH_THREADS", 16));
}

enum class TreeKind { kHart, kWoart, kArtCow, kFpTree };
inline constexpr TreeKind kAllTrees[] = {TreeKind::kHart, TreeKind::kWoart,
                                         TreeKind::kArtCow,
                                         TreeKind::kFpTree};

inline const char* tree_name(TreeKind k) {
  switch (k) {
    case TreeKind::kHart: return "HART";
    case TreeKind::kWoart: return "WOART";
    case TreeKind::kArtCow: return "ART+CoW";
    default: return "FPTree";
  }
}

inline std::unique_ptr<pmem::Arena> make_bench_arena(
    const pmem::LatencyConfig& lat, size_t mb = 0) {
  pmem::Arena::Options o;
  o.size = (mb != 0 ? mb : arena_mb()) << 20;
  o.latency = lat;
  o.shadow = false;  // crash simulation off: measure op cost only
  o.charge_alloc_persist = true;
  return std::make_unique<pmem::Arena>(o);
}

inline std::unique_ptr<common::Index> make_tree(TreeKind k,
                                                pmem::Arena& arena) {
  switch (k) {
    case TreeKind::kHart: return std::make_unique<core::Hart>(arena);
    case TreeKind::kWoart: return std::make_unique<pmart::Woart>(arena);
    case TreeKind::kArtCow: return std::make_unique<pmart::ArtCow>(arena);
    default: return std::make_unique<fptree::FpTree>(arena);
  }
}

/// The paper's three PM latency configurations — or, when
/// HART_BENCH_LATENCY / --latency is set to "W/R" (write/read ns), just
/// that one (custom values allowed; DRAM baseline stays 100 ns).
inline std::vector<pmem::LatencyConfig> paper_configs() {
  std::vector<pmem::LatencyConfig> all = {pmem::LatencyConfig::c300_100(),
                                          pmem::LatencyConfig::c300_300(),
                                          pmem::LatencyConfig::c600_300()};
  const char* sel = std::getenv("HART_BENCH_LATENCY");
  if (sel == nullptr) return all;
  for (const auto& c : all)
    if (c.label() == sel) return {c};
  unsigned w = 0;
  unsigned r = 0;
  if (std::sscanf(sel, "%u/%u", &w, &r) == 2)
    return {pmem::LatencyConfig{100, w, r}};
  std::fprintf(stderr, "ignoring malformed HART_BENCH_LATENCY '%s'\n", sel);
  return all;
}

/// Value for key i: 8 bytes, distinct per insert round.
inline std::string value_for(size_t i, int round = 0) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "v%06zu%d", i % 1000000, round & 7);
  return std::string(buf, 8);
}

/// Deterministic in-place shuffle (uniform op order for Search/Update/
/// Delete measurements, like YCSB's Uniform distribution).
template <typename T>
void shuffle(std::vector<T>& v, uint64_t seed) {
  common::Rng rng(seed);
  for (size_t i = v.size(); i > 1; --i) std::swap(v[i - 1], v[rng.next_below(i)]);
}

enum class BasicOp { kInsert, kSearch, kUpdate, kDelete };
inline const char* op_name(BasicOp op) {
  switch (op) {
    case BasicOp::kInsert: return "Insertion";
    case BasicOp::kSearch: return "Search";
    case BasicOp::kUpdate: return "Update";
    default: return "Deletion";
  }
}

/// Set HART_BENCH_PERCENTILES=1 to additionally collect per-operation
/// latency histograms (adds one clock read per op).
inline bool percentiles_enabled() {
  const char* v = std::getenv("HART_BENCH_PERCENTILES");
  return v != nullptr && v[0] == '1';
}

/// Build a tree with `keys`, then time `op` over all keys (shuffled order
/// for non-insert ops). Returns average microseconds per operation and,
/// when enabled and `hist` is non-null, fills the per-op histogram.
inline double run_basic_op(TreeKind kind, const pmem::LatencyConfig& lat,
                           const std::vector<std::string>& keys, BasicOp op,
                           common::LatencyHistogram* hist = nullptr) {
  auto arena = make_bench_arena(lat);
  auto tree = make_tree(kind, *arena);
  const bool record = hist != nullptr && percentiles_enabled();
  auto& tracer = obs::Tracer::instance();
  const bool trace = tracer.enabled();
  // One timeline lane entry per measured cell; per-op spans when tracing.
  obs::TraceSpan phase(op_name(op), obs::TraceKind::kPhase,
                       static_cast<uint32_t>(kind));

  auto timed = [&](auto&& body) {
    if (!record && !trace) {
      body();
      return;
    }
    const uint64_t t0 = tracer.now_ns();
    body();
    const uint64_t dt = tracer.now_ns() - t0;
    if (record) hist->record(dt);
    if (trace) tracer.record(op_name(op), obs::TraceKind::kOp, t0, dt);
  };

  if (op == BasicOp::kInsert) {
    common::Stopwatch sw;
    for (size_t i = 0; i < keys.size(); ++i)
      timed([&] { tree->insert(keys[i], value_for(i)); });
    return sw.seconds() * 1e6 / static_cast<double>(keys.size());
  }

  for (size_t i = 0; i < keys.size(); ++i)
    tree->insert(keys[i], value_for(i));
  std::vector<const std::string*> order;
  order.reserve(keys.size());
  for (const auto& k : keys) order.push_back(&k);
  shuffle(order, 12345);

  common::Stopwatch sw;
  switch (op) {
    case BasicOp::kSearch: {
      std::string v;
      size_t hits = 0;
      for (const auto* k : order) timed([&] { hits += tree->search(*k, &v).ok() ? 1 : 0; });
      if (hits != keys.size()) std::cerr << "warning: search misses\n";
      break;
    }
    case BasicOp::kUpdate: {
      for (size_t i = 0; i < order.size(); ++i)
        timed([&] { tree->update(*order[i], value_for(i, 1)); });
      break;
    }
    case BasicOp::kDelete: {
      for (const auto* k : order) timed([&] { tree->remove(*k); });
      break;
    }
    default: break;
  }
  return sw.seconds() * 1e6 / static_cast<double>(keys.size());
}

/// Set HART_BENCH_CSV=<path> to append machine-readable rows
/// (figure,workload,latency,tree,us_per_op) alongside the tables. When a
/// populated histogram is supplied (--percentiles), three extra columns
/// p50_us,p95_us,p99_us follow — the first five columns never move, so
/// existing scripts keep parsing. `extra` is appended verbatim after
/// everything else (the service benches use it for stage-latency
/// columns); it must start with ',' when non-empty.
inline void csv_row(const char* fig, const std::string& workload,
                    const std::string& latency, const char* tree,
                    double us_per_op,
                    const common::LatencyHistogram* hist = nullptr,
                    const std::string& extra = {}) {
  const char* path = std::getenv("HART_BENCH_CSV");
  if (path == nullptr) return;
  if (FILE* f = std::fopen(path, "a"); f != nullptr) {
    std::fprintf(f, "%s,%s,%s,%s,%.6f", fig, workload.c_str(),
                 latency.c_str(), tree, us_per_op);
    if (hist != nullptr && hist->count() > 0) {
      const common::Percentiles p = hist->percentiles();
      std::fprintf(f, ",%.3f,%.3f,%.3f",
                   static_cast<double>(p.p50_ns) / 1000.0,
                   static_cast<double>(p.p95_ns) / 1000.0,
                   static_cast<double>(p.p99_ns) / 1000.0);
    }
    if (!extra.empty()) std::fputs(extra.c_str(), f);
    std::fprintf(f, "\n");
    std::fclose(f);
  }
}

/// Figs. 4-7: one sub-figure per workload, rows = latency config,
/// series = tree; cells are avg µs per operation.
inline void run_basic_op_figure(const char* fig, BasicOp op) {
  std::cout << fig << ": " << op_name(op)
            << " performance (avg time per record, microseconds)\n"
            << "Series: HART | WOART | ART+CoW | FPTree; rows: PM "
               "write/read latency (ns)\n\n";
  const workload::WorkloadKind kinds[] = {workload::WorkloadKind::kDictionary,
                                          workload::WorkloadKind::kSequential,
                                          workload::WorkloadKind::kRandom};
  for (const auto wk : kinds) {
    const size_t n = wk == workload::WorkloadKind::kDictionary
                         ? dict_words()
                         : bench_records();
    const auto keys = workload::make_workload(wk, n);
    common::Table table({std::string("(") + workload::workload_name(wk) +
                             ", n=" + std::to_string(n) + ")",
                         "HART", "WOART", "ART+CoW", "FPTree"});
    std::vector<std::string> tails;
    for (const auto& lat : paper_configs()) {
      std::vector<std::string> row{lat.label()};
      for (const auto kind : kAllTrees) {
        common::LatencyHistogram hist;
        const double us = run_basic_op(kind, lat, keys, op, &hist);
        row.push_back(common::Table::num(us));
        csv_row(fig, workload::workload_name(wk), lat.label(),
                tree_name(kind), us, &hist);
        if (hist.count() > 0)
          tails.push_back(std::string(tree_name(kind)) + " @ " +
                          lat.label() + ": " + hist.summary());
      }
      table.add_row(std::move(row));
    }
    table.print();
    for (const auto& t : tails) std::cout << "  " << t << '\n';
    std::cout << '\n';
  }
}

}  // namespace hart::bench
