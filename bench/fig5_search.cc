// Fig. 5: search performance. Paper shape: HART best at 300/300 and
// 600/300; at 300/100 (PM read == DRAM read) WOART matches or beats HART.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  hart::bench::parse_bench_flags(argc, argv, "Fig. 5: search performance");
  hart::bench::run_basic_op_figure("Fig. 5", hart::bench::BasicOp::kSearch);
  return 0;
}
