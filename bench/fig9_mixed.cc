// Fig. 9: YCSB-style mixed workloads (Uniform distribution) — avg time per
// operation for Read-Intensive, Read-Modified-Write and Write-Intensive
// mixes. Paper shape: HART wins everywhere except Read-Modified-Write at
// 300/100, where WOART/ART+CoW edge it out.
#include "bench/bench_common.h"
#include "workload/mixes.h"

int main(int argc, char** argv) {
  using namespace hart::bench;
  parse_bench_flags(argc, argv, "Fig. 9: YCSB-style mixed workloads");
  const size_t n_ops = bench_records();
  const size_t preload = n_ops / 2;
  // Pool: enough distinct keys for preload plus the insert share.
  const auto pool = hart::workload::make_random(preload + n_ops / 2 + 16, 7);

  std::cout << "Fig. 9: mixed workloads (avg time per op, microseconds), "
            << n_ops << " ops over " << preload << " preloaded records\n\n";

  for (const auto& mix :
       {hart::workload::kReadIntensive, hart::workload::kReadModifyWrite,
        hart::workload::kWriteIntensive}) {
    const auto ops =
        hart::workload::make_mixed_ops(n_ops, preload, pool.size(), mix, 3);
    hart::common::Table table({std::string("(") + mix.name + ")", "HART",
                               "WOART", "ART+CoW", "FPTree"});
    for (const auto& lat : paper_configs()) {
      std::vector<std::string> row{lat.label()};
      for (const auto kind : kAllTrees) {
        auto arena = make_bench_arena(lat);
        auto tree = make_tree(kind, *arena);
        for (size_t i = 0; i < preload; ++i)
          tree->insert(pool[i], value_for(i));
        hart::common::Stopwatch sw;
        std::string v;
        for (const auto& op : ops) {
          const std::string& key = pool[op.key_idx];
          switch (op.type) {
            case hart::workload::OpType::kInsert:
              tree->insert(key, value_for(op.key_idx));
              break;
            case hart::workload::OpType::kSearch:
              tree->search(key, &v);
              break;
            case hart::workload::OpType::kUpdate:
              tree->update(key, value_for(op.key_idx, 1));
              break;
            case hart::workload::OpType::kDelete:
              tree->remove(key);
              break;
          }
        }
        row.push_back(hart::common::Table::num(
            sw.seconds() * 1e6 / static_cast<double>(ops.size())));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::cout << '\n';
  }
  return 0;
}
