// Fig. 10b: memory consumption (PM and DRAM) after inserting the
// Sequential workload. Paper shape (at 100M records): WOART/ART+CoW use no
// DRAM; HART uses the most DRAM (NODE256-heavy internal nodes + hash
// table); FPTree uses more PM than HART (fingerprints, no leaf
// coalescing). PM figures here are logical (requested) bytes.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace hart::bench;
  parse_bench_flags(argc, argv, "Fig. 10b: memory consumption");
  const size_t n = bench_records();
  const auto keys = hart::workload::make_sequential(n);
  const auto lat = hart::pmem::LatencyConfig::off();

  std::cout << "Fig. 10b: memory consumption, Sequential, " << n
            << " records (MB)\n\n";
  hart::common::Table table({"tree", "PM (MB)", "DRAM (MB)"});
  for (const auto kind : kAllTrees) {
    auto arena = make_bench_arena(lat);
    auto tree = make_tree(kind, *arena);
    for (size_t i = 0; i < n; ++i) tree->insert(keys[i], value_for(i));
    const auto mu = tree->memory_usage();
    table.add_row({tree_name(kind),
                   hart::common::Table::num(mu.pm_bytes / 1048576.0, 2),
                   hart::common::Table::num(mu.dram_bytes / 1048576.0, 2)});
  }
  table.print();
  return 0;
}
