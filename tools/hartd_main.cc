// hartd — the HART KV service daemon. Serves N file-backed (or anonymous)
// HART shards over a TCP loopback listener; SIGINT/SIGTERM trigger a
// graceful shutdown (drain queues, quiesce shards, sync arenas). With
// --arena-dir, a restart after a crash recovers every shard and loses no
// acked write. See README.md "hartd quickstart".
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "server/client.h"
#include "server/stats.h"
#include "server/tcp.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port N        TCP port on 127.0.0.1 (0 = ephemeral; default 7677)\n"
      "  --port-file P   write the bound port to file P (for scripts)\n"
      "  --shards N      number of HART shards               (default 4)\n"
      "  --batch N       max requests per group-commit batch (default 32)\n"
      "  --queue N       per-shard submission queue capacity (default 4096)\n"
      "  --arena-dir D   file-backed shard arenas in D (relative paths\n"
      "                  resolve under $HART_ARENA_DIR); omit = in-memory\n"
      "  --arena-mb N    per-shard arena MiB (default $HART_ARENA_MB or 256)\n"
      "  --latency W/R   PM write/read latency ns (e.g. 300/100; default off)\n"
      "  --spin-latency  busy-wait injected latency inside each persist\n"
      "                  (default: bank it, pay per batch with a sleep)\n"
      "  --bloom-bits-per-key N  per-shard counting Bloom filter in front\n"
      "                  of the Hart: the dispatcher answers definitively-\n"
      "                  absent GET/MGET keys without touching the shard\n"
      "                  (10 is reasonable, ~0.8%% false positives; 0 = off)\n"
      "  --rwlock-reads  ablation: the paper's shared-lock read path\n"
      "                  instead of lock-free optimistic reads (GETs then\n"
      "                  queue behind shard writes again)\n"
      "  --check         enable PMCheck on every shard arena\n"
      "  --follow        start as a replication follower: client writes are\n"
      "                  rejected (not-primary), REPL_BATCH streams apply,\n"
      "                  reads serve stale-tolerant; PROMOTE flips to primary\n"
      "  --replicate-to L  ship every durable batch to followers, L =\n"
      "                  host:port[,host:port...]\n"
      "  --ack-policy P  local: ack writes after the local fence (default)\n"
      "                  quorum: ack only after a majority of followers\n"
      "                  confirmed the batch's fence\n"
      "  --repl-log N    per-stream replication log retention, in wire\n"
      "                  batches (default 4096)\n"
      "  --repl-window N max unconfirmed wire batches per follower link\n"
      "                  (default 64)\n"
      "  --stats-dump N  print a Prometheus-text metrics snapshot to stdout\n"
      "                  every N seconds (and once at shutdown)\n"
      "  --trace-out F   record a trace of batches/fences/recovery and\n"
      "                  write chrome://tracing JSON to F at shutdown\n"
      "  --trace-sample N  dispatcher-side request tracing: stamp every Nth\n"
      "                  unsampled KV request with a trace id (1 = all,\n"
      "                  0 = off); spans land in the --trace-out timeline\n"
      "  --slow-op-us N  structured slow-op log: any request whose stage\n"
      "                  breakdown exceeds N microseconds logs to stderr\n"
      "                  and bumps hartd_slow_ops_total (0 = off)\n"
      "  --help          this text\n",
      argv0);
}

bool parse_latency(const std::string& s, hart::pmem::LatencyConfig* lat) {
  const size_t slash = s.find('/');
  if (slash == std::string::npos) return false;
  lat->pm_write_ns = static_cast<uint32_t>(std::strtoul(s.c_str(), nullptr, 10));
  lat->pm_read_ns =
      static_cast<uint32_t>(std::strtoul(s.c_str() + slash + 1, nullptr, 10));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using hart::server::Hartd;
  Hartd::Options opts;
  long port = 7677;
  std::string port_file;
  std::string trace_out;
  long stats_dump_secs = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hartd: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (a == "--port") {
      port = std::strtol(need("--port"), nullptr, 10);
    } else if (a == "--port-file") {
      port_file = need("--port-file");
    } else if (a == "--shards") {
      opts.shards = std::strtoull(need("--shards"), nullptr, 10);
    } else if (a == "--batch") {
      opts.batch_size = std::strtoull(need("--batch"), nullptr, 10);
    } else if (a == "--queue") {
      opts.queue_capacity = std::strtoull(need("--queue"), nullptr, 10);
    } else if (a == "--arena-dir") {
      opts.arena_dir = need("--arena-dir");
    } else if (a == "--arena-mb") {
      opts.arena_mb = std::strtoull(need("--arena-mb"), nullptr, 10);
    } else if (a == "--latency") {
      if (!parse_latency(need("--latency"), &opts.latency)) {
        std::fprintf(stderr, "hartd: --latency wants W/R, e.g. 300/100\n");
        return 2;
      }
    } else if (a == "--spin-latency") {
      opts.defer_latency = false;
    } else if (a == "--bloom-bits-per-key") {
      opts.bloom_bits_per_key =
          std::strtoull(need("--bloom-bits-per-key"), nullptr, 10);
    } else if (a == "--rwlock-reads") {
      opts.hart.rwlock_reads = true;
    } else if (a == "--check") {
      opts.check = true;
    } else if (a == "--follow") {
      opts.follow = true;
    } else if (a == "--replicate-to") {
      std::string list = need("--replicate-to");
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string one =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!one.empty()) opts.replicate_to.push_back(one);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (opts.replicate_to.empty()) {
        std::fprintf(stderr, "hartd: --replicate-to wants host:port[,...]\n");
        return 2;
      }
    } else if (a == "--ack-policy") {
      const std::string p = need("--ack-policy");
      if (p == "local") {
        opts.ack_policy = hart::repl::AckPolicy::kLocal;
      } else if (p == "quorum") {
        opts.ack_policy = hart::repl::AckPolicy::kQuorum;
      } else {
        std::fprintf(stderr, "hartd: --ack-policy wants local|quorum\n");
        return 2;
      }
    } else if (a == "--repl-log") {
      opts.repl_log_batches = std::strtoull(need("--repl-log"), nullptr, 10);
    } else if (a == "--repl-window") {
      opts.repl_window = std::strtoull(need("--repl-window"), nullptr, 10);
    } else if (a == "--stats-dump") {
      stats_dump_secs = std::strtol(need("--stats-dump"), nullptr, 10);
    } else if (a == "--trace-out") {
      trace_out = need("--trace-out");
    } else if (a == "--trace-sample") {
      opts.trace_sample = std::strtoull(need("--trace-sample"), nullptr, 10);
    } else if (a == "--slow-op-us") {
      opts.slow_op_us = std::strtoull(need("--slow-op-us"), nullptr, 10);
    } else {
      std::fprintf(stderr, "hartd: unknown flag '%s' (--help)\n", a.c_str());
      return 2;
    }
  }

  if (opts.ack_policy == hart::repl::AckPolicy::kQuorum &&
      opts.replicate_to.empty()) {
    std::fprintf(stderr,
                 "hartd: --ack-policy quorum needs --replicate-to; acks "
                 "would otherwise never release\n");
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Arm the tracer before the Hartd constructor so shard recovery shows
  // up in the timeline.
  if (!trace_out.empty()) hart::obs::Tracer::instance().enable();

  try {
    Hartd db(opts);
    const bool recovered = db.reopened();
    hart::server::TcpServer tcp(db, static_cast<uint16_t>(port));

    if (!port_file.empty()) {
      if (FILE* f = std::fopen(port_file.c_str(), "w"); f != nullptr) {
        std::fprintf(f, "%u\n", tcp.port());
        std::fclose(f);
      }
    }
    std::printf("hartd: listening on 127.0.0.1:%u — %zu shard(s), batch %zu%s%s\n",
                tcp.port(), db.shard_count(), opts.batch_size,
                opts.arena_dir.empty() ? ", in-memory arenas" : ", file-backed",
                recovered ? " (recovered existing shards)" : "");
    std::printf("hartd: role %s%s%s\n", hart::repl::role_name(db.role()),
                opts.replicate_to.empty()
                    ? ""
                    : (std::string(", replicating to ") +
                       std::to_string(opts.replicate_to.size()) +
                       " follower(s), ack-policy " +
                       hart::repl::ack_policy_name(opts.ack_policy))
                          .c_str(),
                opts.follow ? " (PROMOTE to take over)" : "");
    if (recovered)
      std::printf("hartd: %zu keys recovered across shards\n",
                  db.total_size());
    std::fflush(stdout);

    long ticks = 0;
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (stats_dump_secs > 0 && ++ticks >= stats_dump_secs * 20) {
        ticks = 0;
        std::printf("# hartd stats dump\n%s# end stats dump\n",
                    hart::server::stats_prometheus(db).c_str());
        std::fflush(stdout);
      }
    }

    std::printf("hartd: shutting down (drain + quiesce)\n");
    tcp.stop();
    if (stats_dump_secs > 0) {
      std::printf("# hartd stats dump (final)\n%s# end stats dump\n",
                  hart::server::stats_prometheus(db).c_str());
      std::fflush(stdout);
    }
    db.shutdown();
    if (!trace_out.empty()) {
      if (hart::obs::Tracer::instance().write_chrome_json(trace_out))
        std::printf("hartd: trace written to %s (load in chrome://tracing)\n",
                    trace_out.c_str());
      else
        std::fprintf(stderr, "hartd: cannot write trace to %s\n",
                     trace_out.c_str());
    }
    uint64_t ops = 0, batches = 0, epochs = 0;
    for (size_t i = 0; i < db.shard_count(); ++i) {
      const auto& st = db.shard(i).stats();
      ops += st.ops.load();
      batches += st.batches.load();
      epochs += st.epochs.load();
    }
    std::printf("hartd: served %llu ops in %llu batches (%llu epochs), "
                "%zu keys live\n",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(epochs), db.total_size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hartd: fatal: %s\n", e.what());
    return 1;
  }
}
