// hartd — the HART KV service daemon. Serves N file-backed (or anonymous)
// HART shards over a TCP loopback listener; SIGINT/SIGTERM trigger a
// graceful shutdown (drain queues, quiesce shards, sync arenas). With
// --arena-dir, a restart after a crash recovers every shard and loses no
// acked write. See README.md "hartd quickstart".
//
// All flag parsing and validation lives in server/config.{h,cc}
// (hartd::Config) — this file is only the process scaffolding: signals,
// the listener, the tick loop, and shutdown reporting.
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "server/client.h"
#include "server/config.h"
#include "server/stats.h"
#include "server/tcp.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using hart::server::Config;
  using hart::server::Hartd;

  Config cfg;
  std::string err;
  if (!hart::server::parse_config(argc, argv, &cfg, &err)) {
    std::fprintf(stderr, "hartd: %s\n", err.c_str());
    return 2;
  }
  if (cfg.show_help) {
    std::fputs(hart::server::usage_text(argv[0]).c_str(), stdout);
    return 0;
  }
  if (cfg.print_config) {
    if (!hart::server::validate_config(cfg, &err)) {
      std::fprintf(stderr, "hartd: %s\n", err.c_str());
      return 2;
    }
    std::fputs(hart::server::dump_config(cfg).c_str(), stdout);
    return 0;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Arm the tracer before the Hartd constructor so shard recovery shows
  // up in the timeline.
  if (!cfg.trace_out.empty()) hart::obs::Tracer::instance().enable();

  try {
    Hartd db(cfg.service);
    const bool recovered = db.reopened();
    hart::server::TcpServer tcp(db, static_cast<uint16_t>(cfg.port));

    if (!cfg.port_file.empty()) {
      if (FILE* f = std::fopen(cfg.port_file.c_str(), "w"); f != nullptr) {
        std::fprintf(f, "%u\n", tcp.port());
        std::fclose(f);
      }
    }
    std::printf(
        "hartd: listening on 127.0.0.1:%u — %zu shard(s), batch %zu%s%s\n",
        tcp.port(), db.shard_count(), cfg.service.batch_size,
        cfg.service.arena_dir.empty() ? ", in-memory arenas" : ", file-backed",
        recovered ? " (recovered existing shards)" : "");
    std::printf("hartd: allocator %s, %zu stripe(s) per shard\n",
                db.shard(0).hart().allocator().kind_name(),
                db.shard(0).hart().allocator().stripe_count());
    std::printf("hartd: role %s%s%s\n", hart::repl::role_name(db.role()),
                cfg.service.replicate_to.empty()
                    ? ""
                    : (std::string(", replicating to ") +
                       std::to_string(cfg.service.replicate_to.size()) +
                       " follower(s), ack-policy " +
                       hart::repl::ack_policy_name(cfg.service.ack_policy))
                          .c_str(),
                cfg.service.follow ? " (PROMOTE to take over)" : "");
    if (recovered)
      std::printf("hartd: %zu keys recovered across shards\n",
                  db.total_size());
    std::fflush(stdout);

    long ticks = 0;
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (cfg.stats_dump_secs > 0 && ++ticks >= cfg.stats_dump_secs * 20) {
        ticks = 0;
        std::printf("# hartd stats dump\n%s# end stats dump\n",
                    hart::server::stats_prometheus(db).c_str());
        std::fflush(stdout);
      }
    }

    std::printf("hartd: shutting down (drain + quiesce)\n");
    tcp.stop();
    if (cfg.stats_dump_secs > 0) {
      std::printf("# hartd stats dump (final)\n%s# end stats dump\n",
                  hart::server::stats_prometheus(db).c_str());
      std::fflush(stdout);
    }
    db.shutdown();
    if (!cfg.trace_out.empty()) {
      if (hart::obs::Tracer::instance().write_chrome_json(cfg.trace_out))
        std::printf("hartd: trace written to %s (load in chrome://tracing)\n",
                    cfg.trace_out.c_str());
      else
        std::fprintf(stderr, "hartd: cannot write trace to %s\n",
                     cfg.trace_out.c_str());
    }
    uint64_t ops = 0, batches = 0, epochs = 0;
    for (size_t i = 0; i < db.shard_count(); ++i) {
      const auto& st = db.shard(i).stats();
      ops += st.ops.load();
      batches += st.batches.load();
      epochs += st.epochs.load();
    }
    std::printf("hartd: served %llu ops in %llu batches (%llu epochs), "
                "%zu keys live\n",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(epochs), db.total_size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hartd: fatal: %s\n", e.what());
    return 1;
  }
}
