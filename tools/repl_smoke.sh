#!/usr/bin/env bash
# repl_smoke.sh HARTD_BIN LOADGEN_BIN [SECONDS]
#
# The hartrepl failover smoke (DESIGN.md §9). Two phases:
#
#  phase 1 — quorum ack policy, primary SIGKILL:
#    start a follower and a primary replicating to it with
#    --ack-policy quorum, drive an insert burst recording every acked key,
#    SIGKILL the primary mid-burst (no drain), PROMOTE the follower, and
#    replay the acked set against it. Because a quorum ack is only
#    released after the follower confirmed the batch's fence, ZERO acked
#    writes may be missing — this is the subsystem's correctness oracle.
#    The follower's scrape must also show nonzero
#    hartd_repl_batches_applied_total (the stream really ran).
#
#  phase 2 — local ack policy, graceful handover:
#    same topology with --ack-policy local; SIGTERM the primary (graceful
#    shutdown drains the replication tail), promote, replay. Local policy
#    only guarantees durability across a *graceful* exit.
#
#  Both phases first run a warm-up burst and require the replication-lag
#  health gauges (hartd_repl_lag_seq / _lag_bytes / _last_confirm_age_ms)
#  to converge to zero on both roles before the killed burst starts.
#
# Run by ctest (repl_smoke, 2 s) and by the CI repl-smoke job (5 s).
set -euo pipefail

HARTD=${1:?usage: repl_smoke.sh HARTD LOADGEN [SECONDS]}
LOADGEN=${2:?usage: repl_smoke.sh HARTD LOADGEN [SECONDS]}
SECS=${3:-5}

DIR=$(mktemp -d "${TMPDIR:-/tmp}/hart_repl_smoke.XXXXXX")
PRI=
FOL=
LG=
cleanup() {
  [ -n "$PRI" ] && kill -9 "$PRI" 2>/dev/null || true
  [ -n "$FOL" ] && kill -9 "$FOL" 2>/dev/null || true
  [ -n "$LG" ] && kill "$LG" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_port() { # $1 = port file, $2 = pid, $3 = name
  for _ in $(seq 100); do
    [ -s "$1" ] && return 0
    kill -0 "$2" 2>/dev/null || { echo "FAIL: $3 died at startup"; exit 1; }
    sleep 0.1
  done
  echo "FAIL: $3 never published its port"
  exit 1
}

start_follower() { # $1 = phase tag
  rm -f "$DIR/fport"
  "$HARTD" --port 0 --port-file "$DIR/fport" --shards 4 --batch 32 \
           --arena-mb 64 --follow > "$DIR/follower-$1.log" 2>&1 &
  FOL=$!
  wait_port "$DIR/fport" "$FOL" follower
  FPORT=$(cat "$DIR/fport")
}

start_primary() { # $1 = ack policy, $2 = phase tag
  rm -f "$DIR/pport"
  "$HARTD" --port 0 --port-file "$DIR/pport" --shards 4 --batch 32 \
           --arena-mb 64 --replicate-to "127.0.0.1:$FPORT" \
           --ack-policy "$1" > "$DIR/primary-$2.log" 2>&1 &
  PRI=$!
  wait_port "$DIR/pport" "$PRI" primary
  PPORT=$(cat "$DIR/pport")
}

# After a quiesced burst every replication lag gauge must read zero on
# both roles — the health gauges' "caught up" contract (DESIGN.md §12).
wait_lag_drained() { # $1 = port, $2 = role name
  for _ in $(seq 100); do
    if "$LOADGEN" --port "$1" --stats-only --stats-out "$DIR/lag.prom" \
                  > /dev/null 2>&1; then
      LAG_SEQ=$(awk '$1 == "hartd_repl_lag_seq" {print $2}' "$DIR/lag.prom")
      LAG_BYTES=$(awk '$1 == "hartd_repl_lag_bytes" {print $2}' "$DIR/lag.prom")
      LAG_AGE=$(awk '$1 == "hartd_repl_last_confirm_age_ms" {print $2}' \
                    "$DIR/lag.prom")
      if [ "${LAG_SEQ:-x}" = "0" ] && [ "${LAG_BYTES:-x}" = "0" ] &&
         [ "${LAG_AGE:-x}" = "0" ]; then
        return 0
      fi
    fi
    sleep 0.1
  done
  echo "FAIL: $2 lag gauges never drained to zero" \
       "(lag_seq=${LAG_SEQ:-?} lag_bytes=${LAG_BYTES:-?} age_ms=${LAG_AGE:-?})"
  exit 1
}

run_phase() { # $1 = ack policy, $2 = kill signal (KILL|TERM), $3 = tag
  start_follower "$3"
  start_primary "$1" "$3"
  echo "   follower :$FPORT  primary :$PPORT  (ack-policy $1)"

  # Warm-up burst, then the lag gauges on BOTH roles must converge to zero
  # before the real (killed) burst starts.
  "$LOADGEN" --port "$PPORT" --clients 2 --ops 1000 --mix insert \
             --pipeline 16 > /dev/null
  wait_lag_drained "$PPORT" primary
  wait_lag_drained "$FPORT" follower
  echo "   warm-up drained: repl lag gauges at zero on both roles"

  rm -f "$DIR/acked-$3.log"
  "$LOADGEN" --port "$PPORT" --clients 4 --seconds "$SECS" --mix insert \
             --pipeline 32 --acked-log "$DIR/acked-$3.log" &
  LG=$!

  # Take the primary down mid-burst. KILL = crash (no drain): only quorum
  # acks survive by construction. TERM = graceful: shutdown drains the
  # replication tail first, so local acks must survive too.
  sleep "$(awk "BEGIN{print $SECS/2}")"
  kill "-$2" "$PRI"
  wait "$PRI" 2>/dev/null || true
  PRI=
  wait "$LG" || true   # loadgen tolerates the dead connection
  LG=

  ACKED=$(wc -l < "$DIR/acked-$3.log")
  if [ "$ACKED" -lt 100 ]; then
    echo "FAIL: only $ACKED acked inserts before the $2 — burst too small"
    exit 1
  fi
  echo "   $ACKED acked inserts at SIG$2"

  # Failover: the follower becomes primary (tail replay of everything the
  # replication stream already delivered), then must hold every acked key.
  if ! "$LOADGEN" --port "$FPORT" --promote; then
    echo "FAIL: promote failed"
    exit 1
  fi
  if ! "$LOADGEN" --port "$FPORT" --verify-acked "$DIR/acked-$3.log" \
                  --stats-out "$DIR/stats-$3.prom"; then
    echo "FAIL: acked-write replay on the promoted follower failed ($3)"
    sed -n '1,40p' "$DIR/follower-$3.log" || true
    exit 1
  fi

  # The oracle only means something if replication actually carried the
  # data: the promoted follower must report applied batches, and its role
  # gauge must read primary (0) after the promote.
  APPLIED=$(awk '/^hartd_repl_batches_applied_total/ {print $2}' \
                "$DIR/stats-$3.prom")
  ROLE=$(awk '/^hartd_repl_role/ {print $2}' "$DIR/stats-$3.prom")
  if [ -z "$APPLIED" ] || [ "$APPLIED" -eq 0 ]; then
    echo "FAIL: follower shows no applied replication batches"
    exit 1
  fi
  if [ "$ROLE" != "0" ]; then
    echo "FAIL: promoted follower still reports role $ROLE"
    exit 1
  fi
  echo "   follower applied $APPLIED replication batches, role=primary"

  kill -TERM "$FOL"
  wait "$FOL" 2>/dev/null || true
  FOL=
}

echo "== phase 1: quorum acks, SIGKILL primary mid-burst, promote, verify"
run_phase quorum KILL q
echo "== phase 2: local acks, graceful SIGTERM handover, promote, verify"
run_phase local TERM l
echo "PASS: failover preserved every acked write under both ack policies"
