// hartlint negative corpus — HL002 guard-escape.
//
// A pointer read from an EBR-protected structure while pinned is handed
// to the caller. The ebr::Guard unpins at the closing brace; from that
// instant a concurrent writer's retire can be freed, so the returned
// pointer dangles. The fix is to copy the bytes out under the guard.
//
// NOT part of the build; linted by the hartlint_badcase_hl002 ctest gate.

#include <cstdint>
#include <string>

namespace hart::badcase {

namespace ebr {
struct Domain {
  static Domain& instance();
};
struct Guard {
  explicit Guard(Domain&);
  ~Guard();
};
}  // namespace ebr

struct Leaf {
  char bytes[32];
};

struct Tree {
  Leaf* search(uint64_t key);
};

// BAD: `leaf` is obtained inside the Guard scope and returned out of it.
Leaf* lookup_leaked(Tree& t, uint64_t key) {
  {
    ebr::Guard g(ebr::Domain::instance());
    Leaf* leaf = t.search(key);
    return leaf;  // HL002: escapes the guard scope
  }
}

}  // namespace hart::badcase
