// hartlint negative corpus — HL003 unpinned-retire.
//
// Domain::retire() called with no live ebr::Guard in scope and outside
// any REQUIRES_EBR_PIN function. The retire can land in a limbo bucket
// whose grace period an already-running unpinned reader is not counted
// in — the memory may be freed while that reader still dereferences it.
// (src/common/ebr.h also enforces this at runtime with an assert; the
// lint catches it without executing the path.)
//
// NOT part of the build; linted by the hartlint_badcase_hl003 ctest gate.

#include <cstdint>
#include <cstdlib>

namespace hart::badcase {

namespace ebr {
struct Domain {
  using FreeFn = void (*)(void*, void*);
  static Domain& instance();
  void retire(void* ptr, FreeFn fn, void* ctx);
};
struct Guard {
  explicit Guard(Domain&);
  ~Guard();
};
}  // namespace ebr

struct Node {
  uint64_t word;
};

inline void free_cb(void* p, void*) { std::free(p); }

// BAD: unlinks and retires without pinning first.
void unlink_and_retire_unpinned(Node* n) {
  ebr::Domain::instance().retire(n, &free_cb, nullptr);  // HL003
}

}  // namespace hart::badcase
