// hartlint negative corpus — HL004 unvalidated-seqlock-read.
//
// A reader captures the leaf's vseq version word, reads the protected
// fields, and never re-loads/compares the word. If an updater's swing
// (odd store ... fields ... even store) interleaves, the reader returns
// a torn mix of old and new bytes and nothing detects it.
//
// NOT part of the build; linted by the hartlint_badcase_hl004 ctest gate.

#include <atomic>
#include <cstdint>
#include <string>

namespace hart::badcase {

struct Leaf {
  uint32_t vseq;
  uint64_t p_value;
  uint8_t val_len;
};

// BAD: v0 is captured but the snapshot is never validated against a
// second load of vseq before use.
int read_value_torn(Leaf* leaf, std::string* out) {
  const std::atomic_ref<uint32_t> vseq(leaf->vseq);
  const uint32_t v0 = vseq.load(std::memory_order_acquire);  // HL004
  if ((v0 & 1) != 0) return -1;
  const uint64_t pv =
      std::atomic_ref<uint64_t>(leaf->p_value).load(std::memory_order_acquire);
  if (pv == 0) return 0;
  out->assign(reinterpret_cast<const char*>(pv),
              std::atomic_ref<uint8_t>(leaf->val_len)
                  .load(std::memory_order_relaxed));
  return 1;  // no re-validation of vseq anywhere on this path
}

}  // namespace hart::badcase
