// hartlint negative corpus — HL001 missed-flush.
//
// A PM store annotated with Arena::trace_store that no persist() ever
// covers before the function returns: under the strict crash model the
// bytes are still sitting in the (volatile) cache when power fails, and
// recovery reads whatever was there before.
//
// NOT part of the build; linted by the hartlint_badcase_hl001 ctest gate,
// which asserts that exactly this rule fires.

#include <cstdint>
#include <cstring>

namespace hart::badcase {

struct Arena {
  template <typename T>
  T* ptr(uint64_t off);
  void trace_store(const void* p, uint64_t len);
  void persist(const void* p, uint64_t len);
};

struct Record {
  uint64_t key;
  uint64_t value;
};

// BAD: the record is written and the store is annotated, but the function
// acks (returns the offset to the caller) without any persist() — the
// trace_store is not post-dominated by a flush.
uint64_t write_record_no_flush(Arena& a, uint64_t off, uint64_t k,
                               uint64_t v) {
  Record* r = a.ptr<Record>(off);
  r->key = k;
  r->value = v;
  a.trace_store(r, sizeof(*r));  // HL001: never persisted below
  return off;
}

}  // namespace hart::badcase
