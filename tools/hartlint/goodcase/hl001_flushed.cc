// hartlint positive corpus — HL001 clean: every annotated PM store is
// followed by a persist() of the written range before the function
// returns. Asserted clean by the hartlint_goodcase ctest gate.

#include <cstdint>
#include <cstring>

namespace hart::goodcase {

struct Arena {
  template <typename T>
  T* ptr(uint64_t off);
  void trace_store(const void* p, uint64_t len);
  void persist(const void* p, uint64_t len);
};

struct Record {
  uint64_t key;
  uint64_t value;
};

uint64_t write_record_flushed(Arena& a, uint64_t off, uint64_t k,
                              uint64_t v) {
  Record* r = a.ptr<Record>(off);
  r->key = k;
  r->value = v;
  a.trace_store(r, sizeof(*r));
  a.persist(r, sizeof(*r));  // store is post-dominated by the flush
  return off;
}

}  // namespace hart::goodcase
