// hartlint positive corpus — HL004 clean: the reader re-loads the vseq
// version word after reading the protected fields and retries when it
// moved, so a torn snapshot can never be returned. Asserted clean by the
// hartlint_goodcase ctest gate.

#include <atomic>
#include <cstdint>
#include <string>

namespace hart::goodcase {

struct Leaf {
  uint32_t vseq;
  uint64_t p_value;
  uint8_t val_len;
};

int read_value_validated(Leaf* leaf, std::string* out) {
  const std::atomic_ref<uint32_t> vseq(leaf->vseq);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint32_t v0 = vseq.load(std::memory_order_acquire);
    if ((v0 & 1) != 0) continue;
    const uint64_t pv = std::atomic_ref<uint64_t>(leaf->p_value)
                            .load(std::memory_order_acquire);
    const uint8_t len = std::atomic_ref<uint8_t>(leaf->val_len)
                            .load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (vseq.load(std::memory_order_relaxed) != v0) continue;
    if (pv == 0) return 0;
    out->assign(reinterpret_cast<const char*>(pv), len);
    return 1;
  }
  return -1;
}

}  // namespace hart::goodcase
