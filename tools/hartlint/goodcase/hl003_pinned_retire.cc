// hartlint positive corpus — HL003 clean: retire() runs inside a live
// ebr::Guard scope, so the thread's epoch pin orders the retire against
// every concurrent reader's grace period. Asserted clean by the
// hartlint_goodcase ctest gate.

#include <cstdint>
#include <cstdlib>

namespace hart::goodcase {

namespace ebr {
struct Domain {
  using FreeFn = void (*)(void*, void*);
  static Domain& instance();
  void retire(void* ptr, FreeFn fn, void* ctx);
};
struct Guard {
  explicit Guard(Domain&);
  ~Guard();
};
}  // namespace ebr

struct Node {
  uint64_t word;
};

inline void free_cb(void* p, void*) { std::free(p); }

void unlink_and_retire_pinned(Node* n) {
  ebr::Guard g(ebr::Domain::instance());
  ebr::Domain::instance().retire(n, &free_cb, nullptr);
}

}  // namespace hart::goodcase
