// hartlint positive corpus — HL002 clean: the value bytes are copied out
// while the ebr::Guard is live; only owned data leaves the scope, never
// a pointer into the protected structure. Asserted clean by the
// hartlint_goodcase ctest gate.

#include <cstdint>
#include <string>

namespace hart::goodcase {

namespace ebr {
struct Domain {
  static Domain& instance();
};
struct Guard {
  explicit Guard(Domain&);
  ~Guard();
};
}  // namespace ebr

struct Leaf {
  char bytes[32];
  uint8_t len;
};

struct Tree {
  Leaf* search(uint64_t key);
};

bool lookup_copied(Tree& t, uint64_t key, std::string* out) {
  ebr::Guard g(ebr::Domain::instance());
  Leaf* leaf = t.search(key);
  if (leaf == nullptr) return false;
  out->assign(leaf->bytes, leaf->len);  // bytes copied under the pin
  return true;
}

}  // namespace hart::goodcase
