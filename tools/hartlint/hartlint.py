#!/usr/bin/env python3
"""hartlint — HART-specific concurrency & persistence discipline checks.

Four source rules encode the invariants that Clang's thread safety
analysis cannot express (TSA reasons about mutexes; HART's correctness
also rests on epochs, seqlocks and explicit persistence):

  HL001 missed-flush            Every annotated PM store
                                (Arena::trace_store / pm_write) must be
                                post-dominated by a persist()/persist_off()
                                call before the function returns. A store
                                that never reaches a flush is volatile
                                under the crash model — recovery will read
                                stale bytes.

  HL002 guard-escape            A raw pointer obtained from an
                                EBR-protected read inside an ebr::Guard
                                scope must not escape that scope (returned
                                or assigned to an outer variable). The
                                guard's destructor unpins the epoch; after
                                that the pointee may be reclaimed at any
                                time. Copy the bytes out, not the pointer.

  HL003 unpinned-retire         Domain::retire() — and every function
                                marked REQUIRES_EBR_PIN — may only be
                                called while the thread holds a live
                                ebr::Guard (lexically in scope) or from
                                another REQUIRES_EBR_PIN function. An
                                unpinned retire can push into a limbo
                                bucket that an unpinned reader still
                                traverses.

  HL004 unvalidated-seqlock-read A reader that captures a seqlock version
                                word (leaf vseq, partition mod_version)
                                must re-load and compare it after reading
                                the protected fields. Without the
                                re-validation the "snapshot" may be torn.
                                Writers (capture followed by .store of the
                                same word) are exempt.

With --with-pmlint the three pmlint persistence rules (PL001/PL002/PL003,
see tools/pmlint.py) run over the same file set and report through the
same channel, so one CI gate covers both rule families.

Findings are suppressed by an auditable annotation on the same or the
preceding line:

    HARTLINT_SUPPRESS("HL003: tree has no EBR domain (eager frees)");

The macro (src/common/annotations.h) expands to nothing; the string must
name the rule being suppressed (or "ALL").

Like pmlint, these are heuristics tuned for zero false positives on this
tree over completeness. Exit status is the number of findings (0 =
clean). --expect=RULE inverts the gate for the negative corpus: exit 0
iff at least one RULE finding and no findings of any other rule.

Usage:
  hartlint.py [--with-pmlint] [--compdb build/compile_commands.json]
              [--expect=HLxxx] [PATH ...]          (default paths: src/)
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}
IDENT = r"[A-Za-z_]\w*"

SUPPRESS_RE = re.compile(r'HARTLINT_SUPPRESS\s*\(\s*"([^"]*)"')

# ---------------------------------------------------------------------------
# Shared text machinery
# ---------------------------------------------------------------------------


def strip_comments_keep_lines(text: str) -> str:
    """Blank out comments but keep every newline, so offsets and line
    numbers computed on the result map 1:1 onto the original file."""

    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    return re.sub(r"//[^\n]*", blank, text)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def function_bodies(text: str):
    """Yield (name, start_line, body_text) for every brace-delimited body
    following a ')'. `name` is the function's unqualified identifier ("" if
    it cannot be extracted). Descends into class/namespace braces; does not
    descend into the yielded bodies themselves."""
    i = 0
    n = len(text)
    while i < n:
        open_brace = text.find("{", i)
        if open_brace < 0:
            return
        before = text[:open_brace].rstrip()
        before_stripped = re.sub(
            r"\b(const|noexcept|override|final|->\s*[\w:<>&*\s]+)\s*$", "",
            before).rstrip()
        # Trailing TSA / hartlint annotation macros sit between ')' and '{'.
        before_stripped = re.sub(
            r"\b(?:REQUIRES|REQUIRES_SHARED|ACQUIRE|ACQUIRE_SHARED|RELEASE"
            r"|RELEASE_SHARED|RELEASE_GENERIC|TRY_ACQUIRE|TRY_ACQUIRE_SHARED"
            r"|EXCLUDES|NO_THREAD_SAFETY_ANALYSIS|REQUIRES_EBR_PIN)"
            r"\s*(?:\([^()]*\))?\s*$", "", before_stripped).rstrip()
        is_fn = before_stripped.endswith(")")
        depth = 1
        j = open_brace + 1
        while j < n and depth:
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
            j += 1
        if is_fn:
            sig_start = max(before.rfind(";"), before.rfind("}"),
                            before.rfind("{"))
            sig = before[sig_start + 1:]
            names = re.findall(rf"({IDENT})\s*\(", sig)
            # First call-shaped identifier that is not a keyword/macro.
            name = ""
            for cand in names:
                if cand in ("if", "for", "while", "switch", "catch",
                            "return", "sizeof", "alignof", "decltype",
                            "static_assert", "REQUIRES", "REQUIRES_SHARED",
                            "ACQUIRE", "RELEASE", "EXCLUDES"):
                    continue
                name = cand
                break
            yield name, line_of(text, open_brace), text[open_brace:j]
            i = j
        else:
            i = open_brace + 1


def block_spans(body: str):
    """For every '{' in `body`, map its offset -> offset one past its
    matching '}'. Used to turn a declaration's position into its enclosing
    lexical scope."""
    spans = {}
    stack = []
    for i, ch in enumerate(body):
        if ch == "{":
            stack.append(i)
        elif ch == "}" and stack:
            spans[stack.pop()] = i + 1
    return spans


def enclosing_block(body: str, pos: int, spans) -> tuple[int, int]:
    """Innermost {...} block containing `pos` (falls back to the whole
    body)."""
    best = (0, len(body))
    for open_pos, close_pos in spans.items():
        if open_pos < pos < close_pos and (close_pos - open_pos) < (
                best[1] - best[0]):
            best = (open_pos, close_pos)
    return best


class FileCtx:
    """Per-file text, line cache and suppression lookup."""

    def __init__(self, path: Path):
        self.path = path
        raw = path.read_text(errors="replace")
        self.text = strip_comments_keep_lines(raw)
        self.lines = raw.splitlines()

    def suppressed(self, lineno: int, rule: str) -> bool:
        for ln in (lineno, lineno - 1):
            if 1 <= ln <= len(self.lines):
                m = SUPPRESS_RE.search(self.lines[ln - 1])
                if m and (rule in m.group(1) or "ALL" in m.group(1)):
                    return True
        return False


# ---------------------------------------------------------------------------
# Marked-function harvesting (HL003)
# ---------------------------------------------------------------------------

# `Leaf* insert(Key k, Leaf* leaf) REQUIRES_EBR_PIN` — the identifier whose
# parameter list immediately precedes the macro.
MARKED_DECL_RE = re.compile(
    rf"({IDENT})\s*\((?:[^()]|\([^()]*\))*\)\s*(?:const\s*)?REQUIRES_EBR_PIN",
    re.S)

# Names so generic that a bare call cannot be attributed to the marked
# declaration; they are only checked through a tree-typed receiver.
GENERIC_NAMES = {"insert", "remove"}

INCLUDE_RE = re.compile(r'#include\s+"([^"]+)"')


def harvest_marked(ctxs: dict[Path, FileCtx]):
    """Return (marked_names, declaring_headers: name -> set of include
    paths as written in #include directives)."""
    marked: dict[str, set[str]] = {}
    for path, ctx in ctxs.items():
        for name in MARKED_DECL_RE.findall(ctx.text):
            # The include path as other files would spell it (relative to
            # src/).
            parts = path.parts
            inc = "/".join(parts[parts.index("src") + 1:]) if "src" in parts \
                else path.name
            marked.setdefault(name, set()).add(inc)
    return marked


def include_closure(ctxs: dict[Path, FileCtx]) -> dict[Path, set[str]]:
    """Transitive set of quoted #include paths for every scanned file."""
    direct: dict[str, set[str]] = {}
    by_inc: dict[str, Path] = {}
    for path, ctx in ctxs.items():
        parts = path.parts
        inc = "/".join(parts[parts.index("src") + 1:]) if "src" in parts \
            else path.name
        by_inc[inc] = path
        direct[inc] = set(INCLUDE_RE.findall(ctx.text))
    closure: dict[str, set[str]] = {}

    def close(inc: str, seen: set[str]) -> set[str]:
        if inc in closure:
            return closure[inc]
        seen.add(inc)
        out = set(direct.get(inc, set()))
        for child in list(out):
            if child in direct and child not in seen:
                out |= close(child, seen)
        closure[inc] = out
        return out

    result = {}
    for inc, path in by_inc.items():
        result[path] = close(inc, set()) | {inc}
    return result


# ---------------------------------------------------------------------------
# HL001 missed-flush
# ---------------------------------------------------------------------------

PM_STORE_RE = re.compile(r"\b(?:trace_store|pm_write)\s*\(")
PERSIST_RE = re.compile(r"\b(?:persist|persist_off)\s*\(")


def check_hl001(ctx: FileCtx, findings: list[str]):
    for _name, start_line, body in function_bodies(ctx.text):
        stores = [m.start() for m in PM_STORE_RE.finditer(body)]
        if not stores:
            continue
        persists = [m.start() for m in PERSIST_RE.finditer(body)]
        for spos in stores:
            if any(p > spos for p in persists):
                continue
            lineno = start_line + body.count("\n", 0, spos)
            if ctx.suppressed(lineno, "HL001"):
                continue
            findings.append(
                f"{ctx.path}:{lineno}: HL001 missed-flush: PM store is not "
                f"followed by persist()/persist_off() in this function — "
                f"the bytes stay volatile under the crash model")


# ---------------------------------------------------------------------------
# HL002 guard-escape
# ---------------------------------------------------------------------------

GUARD_RE = re.compile(rf"\bebr::Guard\s+({IDENT})\s*\(")
PTR_DECL_IN_GUARD_RE = re.compile(
    rf"\b(?:auto\s*\*|(?:const\s+)?[\w:]+\s*\*)\s*(?:const\s+)?({IDENT})\s*=")


def check_hl002(ctx: FileCtx, findings: list[str]):
    for _name, start_line, body in function_bodies(ctx.text):
        guards = list(GUARD_RE.finditer(body))
        if not guards:
            continue
        spans = block_spans(body)
        for g in guards:
            blk_start, blk_end = enclosing_block(body, g.start(), spans)
            region = body[g.end():blk_end]
            region_off = g.end()
            ptrs = {}  # name -> decl offset (body coords)
            for m in PTR_DECL_IN_GUARD_RE.finditer(region):
                ptrs[m.group(1)] = region_off + m.start()
            if not ptrs:
                continue
            for pname, decl_pos in ptrs.items():
                esc = re.escape(pname)
                for m in re.finditer(rf"\breturn\s+{esc}\s*;", region):
                    pos = region_off + m.start()
                    if pos <= decl_pos:
                        continue
                    lineno = start_line + body.count("\n", 0, pos)
                    if ctx.suppressed(lineno, "HL002"):
                        continue
                    findings.append(
                        f"{ctx.path}:{lineno}: HL002 guard-escape: pointer "
                        f"'{pname}' obtained inside an ebr::Guard scope is "
                        f"returned — the guard unpins at scope exit and the "
                        f"pointee may be reclaimed; copy the bytes instead")
                # `outer = p;` / `*out = p;` where `outer` is not a local of
                # the guard scope.
                for m in re.finditer(
                        rf"(?:\*\s*)?({IDENT})\s*=\s*{esc}\s*;", region):
                    if m.group(1) in ptrs:
                        continue
                    pos = region_off + m.start()
                    if pos <= decl_pos:
                        continue
                    # Skip the pointer's own declaration (`T* p = ...`).
                    line_text = region[:m.end()].rsplit("\n", 1)[-1]
                    if re.search(rf"[\w>]\s*[*&]\s*{re.escape(m.group(1))}"
                                 rf"\s*=\s*{esc}", line_text):
                        continue
                    lineno = start_line + body.count("\n", 0, pos)
                    if ctx.suppressed(lineno, "HL002"):
                        continue
                    findings.append(
                        f"{ctx.path}:{lineno}: HL002 guard-escape: pointer "
                        f"'{pname}' obtained inside an ebr::Guard scope is "
                        f"stored to '{m.group(1)}' outside the scope — the "
                        f"pointee may be reclaimed after the guard unpins")


# ---------------------------------------------------------------------------
# HL003 unpinned-retire
# ---------------------------------------------------------------------------

RETIRE_CALL_RE = re.compile(r"(?:\.|->)\s*retire\s*\(")


def _self_inc(path: Path) -> str:
    parts = path.parts
    return "/".join(parts[parts.index("src") + 1:]) if "src" in parts \
        else path.name


def check_hl003(ctx: FileCtx, findings: list[str], marked, closure):
    incs = closure.get(ctx.path, set())
    # A body named like a marked function inherits the pin only in the file
    # that declares the marked function or its .cc companion — otherwise an
    # unrelated class's same-named method (DramIndex::insert vs
    # Tree::insert) would be falsely exempted.
    self_stem = str(Path(_self_inc(ctx.path)).with_suffix(""))
    self_marked = {
        name
        for name, headers in marked.items()
        if any(str(Path(h).with_suffix("")) == self_stem for h in headers)
    }
    # Bare-callable marked names visible to this file.
    visible = {
        name
        for name, headers in marked.items()
        if name not in GENERIC_NAMES and (headers & incs)
    }
    tree_callable = {
        name
        for name, headers in marked.items() if headers & incs
    }
    for fname, start_line, body in function_bodies(ctx.text):
        sites = [(m.start(), "Domain::retire()")
                 for m in RETIRE_CALL_RE.finditer(body)]
        for name in visible:
            for m in re.finditer(rf"(?<![\w.>]){re.escape(name)}\s*\(", body):
                sites.append((m.start(), f"{name}() [REQUIRES_EBR_PIN]"))
        for name in tree_callable:
            for m in re.finditer(
                    rf"\b\w*tree\w*\s*(?:\.|->)\s*{re.escape(name)}\s*\(",
                    body):
                sites.append((m.start(), f"Tree::{name}() [REQUIRES_EBR_PIN]"))
        if not sites:
            continue
        if fname in self_marked:  # enclosing function inherits the pin
            continue
        spans = block_spans(body)
        pinned = []
        for g in GUARD_RE.finditer(body):
            _s, e = enclosing_block(body, g.start(), spans)
            pinned.append((g.start(), e))
        for pos, what in sorted(set(sites)):
            if any(s <= pos < e for s, e in pinned):
                continue
            lineno = start_line + body.count("\n", 0, pos)
            if ctx.suppressed(lineno, "HL003"):
                continue
            findings.append(
                f"{ctx.path}:{lineno}: HL003 unpinned-retire: call to {what} "
                f"without a live ebr::Guard in scope and outside any "
                f"REQUIRES_EBR_PIN function — a concurrent reader may still "
                f"hold the retired memory")


# ---------------------------------------------------------------------------
# HL004 unvalidated-seqlock-read
# ---------------------------------------------------------------------------

# `const uint32_t v0 = vseq.load(...)` / `uint64_t v = p->mod_version.load(`
SEQ_CAPTURE_RE = re.compile(
    rf"\b(?:const\s+)?(?:uint32_t|uint64_t|auto)\s+({IDENT})\s*=\s*"
    rf"((?:{IDENT}(?:\.|->))*\w*(?:vseq|version|_seq)\w*)\s*\.load\s*\(")


def check_hl004(ctx: FileCtx, findings: list[str]):
    for _name, start_line, body in function_bodies(ctx.text):
        for m in SEQ_CAPTURE_RE.finditer(body):
            var, word = m.group(1), m.group(2)
            tail = body[m.end():]
            wre = re.escape(word)
            vre = re.escape(var)
            # Writer: capture then store back into the same word — exempt.
            if re.search(rf"{wre}\s*\.store\s*\(", tail):
                continue
            revalidated = re.search(
                rf"{wre}\s*\.load\s*\([^;]*\)\s*[!=]=\s*{vre}\b", tail) \
                or re.search(
                    rf"\b{vre}\s*[!=]=\s*{wre}\s*\.load\s*\(", tail)
            if revalidated:
                continue
            lineno = start_line + body.count("\n", 0, m.start())
            if ctx.suppressed(lineno, "HL004"):
                continue
            findings.append(
                f"{ctx.path}:{lineno}: HL004 unvalidated-seqlock-read: "
                f"version word '{word}' is captured into '{var}' but never "
                f"re-loaded and compared — the read snapshot may be torn")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(paths: list[Path], compdb: Path | None) -> list[Path]:
    files: list[Path] = []
    if compdb is not None:
        entries = json.loads(compdb.read_text())
        seen = set()
        for e in entries:
            f = Path(e["directory"], e["file"]).resolve()
            if f.suffix in CPP_SUFFIXES and f.exists() and f not in seen:
                seen.add(f)
                files.append(f)
        # Headers never appear in a compile database; sweep them from the
        # source roots of the listed files.
        roots = {f.parents[len(f.parents) - 1] for f in files}
        src_dirs = set()
        for f in files:
            for anc in f.parents:
                if anc.name == "src":
                    src_dirs.add(anc)
        for d in sorted(src_dirs):
            files.extend(p for p in sorted(d.rglob("*.h")) if p not in seen)
        _ = roots
    for r in paths:
        if r.is_file():
            files.append(r)
        else:
            files.extend(p for p in sorted(r.rglob("*"))
                         if p.suffix in CPP_SUFFIXES)
    # De-dup, stable order.
    out, seen2 = [], set()
    for f in files:
        rf = f.resolve()
        if rf not in seen2:
            seen2.add(rf)
            out.append(f)
    return out


def run_pmlint(files: list[Path], ctxs: dict[Path, FileCtx],
               findings: list[str]):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    import pmlint  # noqa: E402

    pm_structs = pmlint.collect_pm_structs(files)
    raw: list[str] = []
    for f in files:
        pmlint.lint_file(f, pm_structs, raw)
    for item in raw:
        m = re.match(r"(.+?):(\d+): (PL\d+)", item)
        if m:
            ctx = ctxs.get(Path(m.group(1)))
            if ctx and ctx.suppressed(int(m.group(2)), m.group(3)):
                continue
        findings.append(item)


def main(argv: list[str]) -> int:
    paths: list[Path] = []
    compdb: Path | None = None
    with_pmlint = False
    list_suppressions = False
    expect: str | None = None
    it = iter(argv[1:])
    for a in it:
        if a == "--with-pmlint":
            with_pmlint = True
        elif a == "--list-suppressions":
            list_suppressions = True
        elif a.startswith("--expect="):
            expect = a.split("=", 1)[1]
        elif a == "--compdb":
            compdb = Path(next(it, ""))
        elif a.startswith("--compdb="):
            compdb = Path(a.split("=", 1)[1])
        elif a.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            paths.append(Path(a))
    if not paths and compdb is None:
        paths = [Path("src")]
    if compdb is not None and not compdb.exists():
        print(f"hartlint: compile database {compdb} not found",
              file=sys.stderr)
        return 2

    files = collect_files(paths, compdb)
    if not files:
        print("hartlint: no C++ sources to lint", file=sys.stderr)
        return 2

    ctxs = {f: FileCtx(f) for f in files}

    if list_suppressions:
        count = 0
        for ctx in ctxs.values():
            for lineno, line in enumerate(ctx.lines, 1):
                m = SUPPRESS_RE.search(line)
                if m:
                    print(f"{ctx.path}:{lineno}: {m.group(1)}")
                    count += 1
        print(f"hartlint: {count} suppression(s) in {len(files)} file(s)")
        return 0

    marked = harvest_marked(ctxs)
    closure = include_closure(ctxs)

    findings: list[str] = []
    for ctx in ctxs.values():
        check_hl001(ctx, findings)
        check_hl002(ctx, findings)
        check_hl003(ctx, findings, marked, closure)
        check_hl004(ctx, findings)
    if with_pmlint:
        run_pmlint(files, ctxs, findings)

    for f in sorted(findings):
        print(f)
    print(f"hartlint: {len(findings)} finding(s) in {len(files)} file(s)")

    if expect is not None:
        hits = [f for f in findings if f" {expect} " in f]
        others = [f for f in findings if f" {expect} " not in f]
        if hits and not others:
            print(f"hartlint: --expect={expect} satisfied "
                  f"({len(hits)} finding(s))")
            return 0
        print(f"hartlint: --expect={expect} NOT satisfied "
              f"({len(hits)} {expect}, {len(others)} other)", file=sys.stderr)
        return 1
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
