// hartlint_clang — AST-precise checker for rule HL003 (unpinned-retire).
//
// The Python engine (tools/hartlint/hartlint.py) matches call sites
// textually and therefore needs receiver-name heuristics to attribute a
// call like `tree.insert(...)` to the REQUIRES_EBR_PIN-marked
// art::Tree::insert rather than some unrelated insert. This tool does the
// same check on the real AST: overload resolution has already happened, so
// a call is checked iff its *resolved* callee carries the
// `hart::requires_ebr_pin` annotate attribute (REQUIRES_EBR_PIN expands to
// that attribute under -DHARTLINT_AST_PASS, see src/common/annotations.h)
// or is ebr::Domain::retire itself.
//
// A checked call is pinned — and therefore clean — when
//   * the enclosing function is itself annotated, or
//   * a local variable of type hart::common::ebr::Guard is declared in a
//     scope enclosing the call, before it.
//
// Build: optional, requires LLVM/Clang dev headers (find_package(Clang)).
// Configure the repo with -DHART_BUILD_HARTLINT_CLANG=ON; when the
// packages are absent the target silently does not exist and
// tools/hartlint/run.sh prints a visible skip warning instead.
//
// Usage: hartlint_clang -p <build-dir-with-compile_commands.json> FILES...
// Exit status: number of findings (0 = clean), capped at 125.

#include <memory>
#include <string>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/Stmt.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

namespace {

llvm::cl::OptionCategory kHartlintCategory("hartlint_clang options");

int g_findings = 0;

bool hasPinAnnotation(const clang::FunctionDecl* fd) {
  if (fd == nullptr) return false;
  for (const auto* attr : fd->specific_attrs<clang::AnnotateAttr>())
    if (attr->getAnnotation() == "hart::requires_ebr_pin") return true;
  return false;
}

bool isDomainRetire(const clang::FunctionDecl* fd) {
  if (fd == nullptr || fd->getNameAsString() != "retire") return false;
  const auto* method = llvm::dyn_cast<clang::CXXMethodDecl>(fd);
  if (method == nullptr) return false;
  return method->getParent()->getQualifiedNameAsString() ==
         "hart::common::ebr::Domain";
}

bool isGuardType(clang::QualType qt) {
  const auto* rd = qt.getCanonicalType()->getAsCXXRecordDecl();
  return rd != nullptr &&
         rd->getQualifiedNameAsString() == "hart::common::ebr::Guard";
}

/// True when `stmt` (transitively) declares an ebr::Guard local.
bool declaresGuard(const clang::Stmt* stmt) {
  const auto* ds = llvm::dyn_cast<clang::DeclStmt>(stmt);
  if (ds == nullptr) return false;
  for (const clang::Decl* d : ds->decls())
    if (const auto* vd = llvm::dyn_cast<clang::VarDecl>(d))
      if (isGuardType(vd->getType())) return true;
  return false;
}

class PinVisitor : public clang::RecursiveASTVisitor<PinVisitor> {
 public:
  explicit PinVisitor(clang::ASTContext& ctx) : ctx_(ctx) {}

  bool TraverseFunctionDecl(clang::FunctionDecl* fd) {
    current_ = fd;
    const bool ok =
        clang::RecursiveASTVisitor<PinVisitor>::TraverseFunctionDecl(fd);
    current_ = nullptr;
    return ok;
  }
  bool TraverseCXXMethodDecl(clang::CXXMethodDecl* md) {
    current_ = md;
    const bool ok =
        clang::RecursiveASTVisitor<PinVisitor>::TraverseCXXMethodDecl(md);
    current_ = nullptr;
    return ok;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    if (!hasPinAnnotation(callee) && !isDomainRetire(callee)) return true;
    if (hasPinAnnotation(current_)) return true;  // caller inherits the pin
    if (guardInScope(call)) return true;
    report(call, callee);
    return true;
  }

 private:
  /// Walk the parent chain; at each CompoundStmt, look for an ebr::Guard
  /// declaration that precedes the child we arrived from.
  bool guardInScope(const clang::Stmt* s) {
    const clang::Stmt* child = s;
    auto parents = ctx_.getParents(*s);
    while (!parents.empty()) {
      const auto* stmt = parents[0].get<clang::Stmt>();
      if (stmt == nullptr) break;
      if (const auto* cs = llvm::dyn_cast<clang::CompoundStmt>(stmt)) {
        for (const clang::Stmt* item : cs->body()) {
          if (item == child) break;  // only declarations before the call
          if (declaresGuard(item)) return true;
        }
      }
      child = stmt;
      parents = ctx_.getParents(*stmt);
    }
    return false;
  }

  void report(const clang::CallExpr* call, const clang::FunctionDecl* callee) {
    const clang::SourceManager& sm = ctx_.getSourceManager();
    const clang::SourceLocation loc = call->getBeginLoc();
    if (!sm.isInMainFile(loc)) return;  // headers reported via their TU once
    // Same-line / preceding-line HARTLINT_SUPPRESS("HL003...").
    const unsigned line = sm.getSpellingLineNumber(loc);
    for (unsigned l = (line > 1 ? line - 1 : line); l <= line; ++l) {
      const clang::FileID fid = sm.getFileID(loc);
      bool invalid = false;
      const llvm::StringRef buf = sm.getBufferData(fid, &invalid);
      if (invalid) continue;
      size_t pos = 0;
      for (unsigned i = 1; i < l && pos != llvm::StringRef::npos; ++i)
        pos = buf.find('\n', pos) + 1;
      const llvm::StringRef lineText =
          buf.substr(pos, buf.find('\n', pos) - pos);
      if (lineText.contains("HARTLINT_SUPPRESS") &&
          (lineText.contains("HL003") || lineText.contains("ALL")))
        return;
    }
    ++g_findings;
    llvm::errs() << sm.getFilename(loc) << ":" << line
                 << ": HL003 unpinned-retire: call to "
                 << callee->getQualifiedNameAsString()
                 << " without a live ebr::Guard in scope and outside any "
                    "REQUIRES_EBR_PIN function\n";
  }

  clang::ASTContext& ctx_;
  const clang::FunctionDecl* current_ = nullptr;
};

class PinConsumer : public clang::ASTConsumer {
 public:
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    PinVisitor v(ctx);
    v.TraverseDecl(ctx.getTranslationUnitDecl());
  }
};

class PinAction : public clang::ASTFrontendAction {
 public:
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<PinConsumer>();
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto expected =
      clang::tooling::CommonOptionsParser::create(argc, argv,
                                                  kHartlintCategory);
  if (!expected) {
    llvm::errs() << llvm::toString(expected.takeError());
    return 2;
  }
  clang::tooling::ClangTool tool(expected->getCompilations(),
                                 expected->getSourcePathList());
  // Re-expand REQUIRES_EBR_PIN into a visible annotate attribute.
  tool.appendArgumentsAdjuster(clang::tooling::getInsertArgumentAdjuster(
      "-DHARTLINT_AST_PASS",
      clang::tooling::ArgumentInsertPosition::BEGIN));
  const int run_status =
      tool.run(clang::tooling::newFrontendActionFactory<PinAction>().get());
  if (run_status != 0) return 2;
  llvm::outs() << "hartlint_clang: " << g_findings << " finding(s)\n";
  return g_findings > 125 ? 125 : g_findings;
}
