#!/usr/bin/env bash
# hartlint driver — runs every discipline check that the host toolchain
# supports, degrading gracefully (visible warning, not failure) when a
# layer's dependencies are missing:
#
#   1. hartlint.py        heuristic engine, HL001-HL004 + pmlint PL001-PL003
#                         (always runs; only needs python3)
#   2. clang -Werror=thread-safety
#                         whole-tree TSA build over src/ (skipped with a
#                         warning when no clang++ is on PATH)
#   3. hartlint_clang     AST-precise HL003 checker (skipped with a warning
#                         unless the optional LibTooling tool was built —
#                         needs LLVM/Clang dev headers, see
#                         tools/hartlint/clang/CMakeLists.txt)
#
# Usage: run.sh [BUILD_DIR]        (default BUILD_DIR: build)
# Exit: non-zero iff a layer that DID run found a violation.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
cd "$REPO_ROOT"

status=0
warn() { echo "hartlint/run.sh: WARNING: $*" >&2; }

# ---- 1. heuristic engine (authoritative gate) -----------------------------
if command -v python3 >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    python3 tools/hartlint/hartlint.py --with-pmlint \
        --compdb "$BUILD_DIR/compile_commands.json" || status=1
  else
    warn "no compile_commands.json in $BUILD_DIR — linting src/ tests/ bench/ tools/ directly"
    python3 tools/hartlint/hartlint.py --with-pmlint src tests bench tools/hartlint/goodcase || status=1
  fi
else
  warn "python3 not found — the hartlint heuristic engine DID NOT RUN"
  status=1  # the authoritative layer must not be silently skipped
fi

# ---- 2. clang thread-safety build -----------------------------------------
if command -v clang++ >/dev/null 2>&1; then
  TSA_DIR="$BUILD_DIR/hartlint-tsa"
  echo "hartlint/run.sh: clang thread-safety build -> $TSA_DIR"
  if cmake -B "$TSA_DIR" -S "$REPO_ROOT" \
        -DCMAKE_CXX_COMPILER=clang++ -DHART_THREAD_SAFETY=ON \
        >/dev/null 2>&1; then
    cmake --build "$TSA_DIR" --target hart_core -j "$(nproc)" || status=1
  else
    warn "clang++ found but CMake configure failed — thread-safety build skipped"
  fi
else
  warn "clang++ not on PATH — -Werror=thread-safety build skipped" \
       "(CI runs it in the clang-thread-safety job)"
fi

# ---- 3. AST-precise checker (optional LibTooling tool) --------------------
HARTLINT_CLANG="$BUILD_DIR/tools/hartlint/clang/hartlint_clang"
if [ -x "$HARTLINT_CLANG" ] && [ -f "$BUILD_DIR/compile_commands.json" ]; then
  "$HARTLINT_CLANG" -p "$BUILD_DIR" $(git -C "$REPO_ROOT" ls-files 'src/*.cc') \
      || status=1
else
  warn "hartlint_clang not built (needs LLVM/Clang dev headers;" \
       "configure with -DHART_BUILD_HARTLINT_CLANG=ON) — AST pass skipped"
fi

if [ "$status" -eq 0 ]; then
  echo "hartlint/run.sh: all available layers clean"
else
  echo "hartlint/run.sh: FAILURES above" >&2
fi
exit "$status"
