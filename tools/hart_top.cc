// hart_top — a terminal dashboard for one or more hartd instances.
//
// Polls each endpoint's STATS scrape (Prometheus text, over the normal
// client protocol) on an interval and renders a compact per-node view:
// role, throughput (delta between polls), live keys, stage-latency
// percentiles (queue wait / batch residency / fence wait / quorum wait),
// slow-op count, and the replication health gauges (per-role lag,
// confirm staleness, link state). Ctrl-C exits.
//
//   hart_top --endpoints 127.0.0.1:7677,127.0.0.1:7678 --interval 2
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

namespace {

using hart::server::Client;
using hart::server::Response;
using hart::server::Status;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::printf(
      "usage: %s --endpoints H:P[,H:P...] [options]\n"
      "  --endpoints L   hartd endpoints to poll, host:port[,host:port...]\n"
      "  --interval S    seconds between polls            (default 2)\n"
      "  --count N       exit after N polls               (default 0 = forever)\n"
      "  --no-clear      append frames instead of clearing the screen\n"
      "  --help          this text\n",
      argv0);
}

/// One scrape, parsed: full series name (with label body) -> value.
using Sample = std::map<std::string, double>;

Sample parse_prometheus(const std::string& text) {
  Sample out;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    out[line.substr(0, sp)] = std::strtod(line.c_str() + sp + 1, nullptr);
  }
  return out;
}

double value_of(const Sample& s, const std::string& key) {
  const auto it = s.find(key);
  return it == s.end() ? 0 : it->second;
}

/// Max over every series of `name` whose label body contains all `needles`
/// (e.g. worst per-shard p99 of one stage). 0 when nothing matches.
double max_match(const Sample& s, const std::string& name,
                 const std::vector<std::string>& needles) {
  double best = 0;
  const std::string prefix = name + "{";
  for (auto it = s.lower_bound(prefix);
       it != s.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    bool all = true;
    for (const std::string& n : needles)
      if (it->first.find(n) == std::string::npos) {
        all = false;
        break;
      }
    if (all && it->second > best) best = it->second;
  }
  return best;
}

const char* role_name(double role) {
  if (role == 1) return "follower";
  if (role == 2) return "promoting";
  return "primary";
}

struct Node {
  std::string host;
  uint16_t port = 0;
  std::unique_ptr<Client> client;
  Sample prev;
  bool had_prev = false;
};

void print_stage(const Sample& s, const char* stage) {
  const std::string st = std::string("stage=\"") + stage + "\"";
  const double p50 =
      max_match(s, "hartd_stage_latency_ns", {st, "quantile=\"0.5\""});
  const double p99 =
      max_match(s, "hartd_stage_latency_ns", {st, "quantile=\"0.99\""});
  std::printf("    %-15s p50 %9.1fus  p99 %9.1fus\n", stage, p50 / 1e3,
              p99 / 1e3);
}

void render(Node* n, double interval_s) {
  std::printf("%s:%u — ", n->host.c_str(), n->port);
  if (n->client == nullptr) {
    try {
      n->client = std::make_unique<Client>(n->host, n->port);
    } catch (const std::exception&) {
      std::printf("unreachable\n");
      return;
    }
  }
  std::string text;
  const hart::common::Status st = n->client->stats(&text);
  if (!st.ok()) {
    std::printf("scrape failed (%s)\n", st.name());
    n->client.reset();  // redial on the next poll
    n->had_prev = false;
    return;
  }
  const Sample s = parse_prometheus(text);

  const double ops = value_of(s, "hartd_ops_total");
  const double rate =
      n->had_prev && interval_s > 0
          ? (ops - value_of(n->prev, "hartd_ops_total")) / interval_s
          : 0;
  std::printf("%s, %.0f ops (%.0f/s), %.0f keys, %.0f slow-ops\n",
              role_name(value_of(s, "hartd_repl_role")), ops, rate,
              value_of(s, "hartd_live_keys"),
              value_of(s, "hartd_slow_ops_total"));

  print_stage(s, "queue_wait");
  print_stage(s, "batch_residency");
  print_stage(s, "fence_wait");
  if (max_match(s, "hartd_stage_latency_ns",
                {"stage=\"quorum_wait\"", "quantile=\"0.5\""}) > 0 ||
      value_of(s, "hartd_repl_quorum_needed") > 0)
    print_stage(s, "quorum_wait");

  // Replication health: both roles expose the same lag gauge names.
  if (s.count("hartd_repl_lag_seq") != 0) {
    std::printf(
        "    repl            lag %.0f batches / %.0f bytes, confirm-age "
        "%.0fms",
        value_of(s, "hartd_repl_lag_seq"), value_of(s, "hartd_repl_lag_bytes"),
        value_of(s, "hartd_repl_last_confirm_age_ms"));
    if (value_of(s, "hartd_repl_followers") > 0)
      std::printf(", links %.0f/%.0f up, log-hwm %.0f",
                  value_of(s, "hartd_repl_connected_links"),
                  value_of(s, "hartd_repl_followers"),
                  value_of(s, "hartd_repl_log_occupancy_hwm"));
    std::printf("\n");
  }
  n->prev = s;
  n->had_prev = true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Node> nodes;
  double interval_s = 2;
  long count = 0;
  bool clear = true;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hart_top: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (a == "--endpoints") {
      const std::string list = need("--endpoints");
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string one =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        const size_t colon = one.rfind(':');
        if (colon != std::string::npos) {
          Node n;
          n.host = one.substr(0, colon);
          n.port = static_cast<uint16_t>(
              std::strtoul(one.c_str() + colon + 1, nullptr, 10));
          nodes.push_back(std::move(n));
        } else if (!one.empty()) {
          std::fprintf(stderr, "hart_top: bad endpoint '%s'\n", one.c_str());
          return 2;
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (a == "--interval") {
      interval_s = std::strtod(need("--interval"), nullptr);
    } else if (a == "--count") {
      count = std::strtol(need("--count"), nullptr, 10);
    } else if (a == "--no-clear") {
      clear = false;
    } else {
      std::fprintf(stderr, "hart_top: unknown flag '%s' (--help)\n",
                   a.c_str());
      return 2;
    }
  }
  if (nodes.empty()) {
    std::fprintf(stderr, "hart_top: need --endpoints (--help)\n");
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  for (long frame = 0; g_stop == 0; ++frame) {
    if (clear) std::printf("\x1b[2J\x1b[H");
    std::printf("hart_top — %zu node(s), every %.1fs\n\n", nodes.size(),
                interval_s);
    for (Node& n : nodes) render(&n, interval_s);
    std::fflush(stdout);
    if (count > 0 && frame + 1 >= count) break;
    // Sleep in small slices so Ctrl-C exits promptly.
    for (double left = interval_s; left > 0 && g_stop == 0; left -= 0.05)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}
