// Deliberately broken PM code: pmlint.py must flag every pattern below.
// This file is NOT part of the build — it exists so CI can assert that the
// linter still catches each rule (the `pmlint_badcase` ctest expects a
// non-zero exit here, paired with `pmlint_clean` expecting zero on src/).
#include <cstring>

#include "pmem/arena.h"
#include "pmem/pmdefs.h"

namespace hart::badcase {

// PL002 ×2: a vtable pointer and a raw address stored into PM are garbage
// after the arena is re-mapped at a different base.
struct BadNode {
  pmem::POff<BadNode> next;  // fine: offsets survive re-mapping
  BadNode* cached_sibling;   // PL002: raw pointer member
  unsigned char payload[40];

  virtual void visit() {}  // PL002: virtual function => vtable pointer
};

// PL001: the bytes land in the arena but nothing flushes them — a crash
// right after return loses the record silently.
void forget_persist(pmem::Arena& a, uint64_t off, const char* src) {
  auto* dst = a.ptr<char>(off);
  std::memcpy(dst, src, 32);
}

// PL001 through a member alias: the destination pointer is derived from a
// PM record (`rec->bytes`), and neither the alias nor the record itself is
// ever persisted. The pre-alias linter saw only direct ptr<>() results and
// missed this.
struct BadRec {
  uint64_t id;
  unsigned char bytes[48];
};
void forget_persist_member_alias(pmem::Arena& a, uint64_t off,
                                 const char* src) {
  auto* rec = a.ptr<BadRec>(off);
  unsigned char* dst = rec->bytes;
  std::memcpy(dst, src, 32);
}

// PL001 through pointer arithmetic: same story, the destination is a
// PM-derived pointer offset into the middle of the allocation.
void forget_persist_pointer_arith(pmem::Arena& a, uint64_t off,
                                  const char* src) {
  auto* base = a.ptr<char>(off);
  char* dst2 = base + 64;
  std::memcpy(dst2, src, 32);
}

// PL001 on a fingerprint sidecar: rebuilding a per-leaf fingerprint array
// in PM without flushing it — after a crash the guards silently disagree
// with the keys and every lookup through them is a wrong-answer, not a
// slow-answer. (The real HART keeps the persisted fingerprint inside the
// leaf's already-persisted tail range; see DESIGN.md §10.)
void rebuild_fingerprints_unpersisted(pmem::Arena& a, uint64_t off,
                                      const unsigned char* fps, size_t n) {
  auto* fp_array = a.ptr<unsigned char>(off);
  std::memset(fp_array, 0, n);
  std::memcpy(fp_array, fps, n);
}

// PL003: 96 bytes from a field address with no alignment guarantee — the
// range straddles cache lines and costs an extra CLFLUSH per call.
void misaligned_persist(pmem::Arena& a, BadNode* n) {
  a.persist(&n->payload, 96);
}

}  // namespace hart::badcase
