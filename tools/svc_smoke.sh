#!/usr/bin/env bash
# svc_smoke.sh HARTD_BIN LOADGEN_BIN [SECONDS] [EXTRA_FLAGS]
#
# EXTRA_FLAGS (word-split) are passed to every hartd invocation; ctest's
# svc_smoke_legacy_alloc leg uses this to run the same SIGKILL/restart
# contract under --legacy-alloc.
#
# The hartd SIGKILL/restart smoke: start the server with file-backed
# arenas, drive it over TCP loopback for SECONDS seconds while recording
# every acked insert, SIGKILL the server mid-load, restart it on the same
# arenas (with PMCheck enabled), and replay the acked set — every acked
# write must be present with the right value. Run by ctest (svc_smoke,
# 2 s) and by the CI smoke job (5 s).
set -euo pipefail

HARTD=${1:?usage: svc_smoke.sh HARTD LOADGEN [SECONDS]}
LOADGEN=${2:?usage: svc_smoke.sh HARTD LOADGEN [SECONDS]}
SECS=${3:-5}
EXTRA_FLAGS=${4:-}

DIR=$(mktemp -d "${TMPDIR:-/tmp}/hart_svc_smoke.XXXXXX")
SRV=
LG=
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
  [ -n "$LG" ] && kill "$LG" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

start_server() { # $1 = extra flags
  # shellcheck disable=SC2086
  "$HARTD" --port 0 --port-file "$DIR/port" --shards 4 --batch 32 \
           --arena-dir "$DIR/arenas" --arena-mb 64 $EXTRA_FLAGS $1 &
  SRV=$!
  for _ in $(seq 100); do
    [ -s "$DIR/port" ] && break
    kill -0 "$SRV" 2>/dev/null || { echo "FAIL: hartd died at startup"; exit 1; }
    sleep 0.1
  done
  [ -s "$DIR/port" ] || { echo "FAIL: hartd never published its port"; exit 1; }
  PORT=$(cat "$DIR/port")
}

echo "== phase 1: load + SIGKILL mid-burst"
start_server ""
"$LOADGEN" --port "$PORT" --clients 4 --seconds "$SECS" --mix insert \
           --pipeline 32 --acked-log "$DIR/acked.log" &
LG=$!

# Kill the server halfway through the burst — no drain, no shutdown.
sleep "$(awk "BEGIN{print $SECS/2}")"
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=
wait "$LG" || true   # loadgen tolerates the dead connection
LG=

ACKED=$(wc -l < "$DIR/acked.log")
if [ "$ACKED" -lt 100 ]; then
  echo "FAIL: only $ACKED acked inserts before the kill — burst too small"
  exit 1
fi
echo "   $ACKED acked inserts at SIGKILL"

echo "== phase 2: restart on the same arenas (PMCheck on) + replay acked set"
rm -f "$DIR/port"
start_server "--check"
# On replay failure loadgen dumps the post-restart server stats (recovery
# duration, recovered keys, per-shard op counts) to stderr via the STATS
# op before exiting nonzero — keep that output next to the FAIL line.
if ! "$LOADGEN" --port "$PORT" --verify-acked "$DIR/acked.log"; then
  echo "FAIL: acked-write replay failed — post-restart stats dumped above"
  exit 1
fi

kill -TERM "$SRV"
wait "$SRV"
SRV=
echo "PASS: $ACKED acked writes all recovered after SIGKILL"
