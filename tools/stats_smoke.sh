#!/usr/bin/env bash
# stats_smoke.sh HARTD_BIN LOADGEN_BIN
#
# The HARTscope observability smoke. Three checks:
#   1. In-process: `loadgen --inproc --stats-out` — the scraped
#      hartd_ops_total must equal the loadgen's acked op count, and the
#      PM-event counters (pm_persist_calls_total, hartd_epochs_total)
#      must be non-zero after a write burst.
#   2. Trace export: `--trace-out` must produce parseable chrome://tracing
#      JSON with a non-empty traceEvents array.
#   3. Over TCP: hartd `--stats-dump 1` must print periodic dumps, the
#      STATS op must work over the wire, and pm_persist_calls_total must
#      be monotonic across successive dumps.
# Run by ctest (stats_smoke) and the CI smoke job.
set -euo pipefail

HARTD=${1:?usage: stats_smoke.sh HARTD LOADGEN}
LOADGEN=${2:?usage: stats_smoke.sh HARTD LOADGEN}

DIR=$(mktemp -d "${TMPDIR:-/tmp}/hart_stats_smoke.XXXXXX")
SRV=
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

# metric FILE NAME -> prints the (last) value of NAME in FILE, or 0.
metric() {
  awk -v name="$2" '$1 == name { v = $2 } END { print v + 0 }' "$1"
}

echo "== phase 1: in-proc run, STATS totals must match acked ops"
"$LOADGEN" --inproc --clients 2 --ops 2000 --mix insert --pipeline 16 \
           --stats-out "$DIR/stats.txt" --trace-out "$DIR/trace.json" \
           | tee "$DIR/loadgen.out"

ACKED=$(grep -oE '[0-9]+ acked' "$DIR/loadgen.out" | head -1 | cut -d' ' -f1)
OPS=$(metric "$DIR/stats.txt" 'hartd_ops_total')
if [ "$ACKED" != "$OPS" ] || [ "$ACKED" -eq 0 ]; then
  echo "FAIL: loadgen acked $ACKED ops but hartd_ops_total is $OPS"
  exit 1
fi
echo "   hartd_ops_total == $ACKED acked ops"

PERSISTS=$(metric "$DIR/stats.txt" 'pm_persist_calls_total')
EPOCHS=$(metric "$DIR/stats.txt" 'hartd_epochs_total')
if [ "$PERSISTS" -eq 0 ] || [ "$EPOCHS" -eq 0 ]; then
  echo "FAIL: PM counters empty after a write burst" \
       "(persist_calls=$PERSISTS epochs=$EPOCHS)"
  exit 1
fi
echo "   pm_persist_calls_total=$PERSISTS hartd_epochs_total=$EPOCHS"

echo "== phase 2: trace export must be valid chrome://tracing JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$DIR/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "traceEvents is empty"
for ev in events:
    assert ev["ph"] in ("X", "i"), f"bad phase {ev['ph']!r}"
    assert "ts" in ev and "name" in ev
print(f"   {len(events)} trace events, JSON OK")
EOF
else
  grep -q '"traceEvents"' "$DIR/trace.json" &&
    grep -q '"ph"' "$DIR/trace.json" ||
    { echo "FAIL: trace.json missing traceEvents"; exit 1; }
  echo "   trace.json present (python3 unavailable, shallow check)"
fi

echo "== phase 3: TCP --stats-dump is periodic and monotonic"
"$HARTD" --port 0 --port-file "$DIR/port" --shards 2 --batch 16 \
         --stats-dump 1 > "$DIR/hartd.out" &
SRV=$!
for _ in $(seq 100); do
  [ -s "$DIR/port" ] && break
  kill -0 "$SRV" 2>/dev/null || { echo "FAIL: hartd died at startup"; exit 1; }
  sleep 0.1
done
PORT=$(cat "$DIR/port")

"$LOADGEN" --port "$PORT" --clients 2 --ops 1000 --mix insert \
           --stats-out "$DIR/stats_tcp.txt" | tee "$DIR/loadgen_tcp.out"
ACKED_TCP=$(grep -oE '[0-9]+ acked' "$DIR/loadgen_tcp.out" | head -1 |
            cut -d' ' -f1)
OPS_TCP=$(metric "$DIR/stats_tcp.txt" 'hartd_ops_total')
if [ "$ACKED_TCP" != "$OPS_TCP" ] || [ "$ACKED_TCP" -eq 0 ]; then
  echo "FAIL: STATS over TCP reports $OPS_TCP ops, loadgen acked $ACKED_TCP"
  exit 1
fi
echo "   STATS op over TCP: hartd_ops_total == $ACKED_TCP acked ops"

sleep 2.5   # let at least two periodic dumps land
kill -TERM "$SRV"
wait "$SRV"
SRV=

DUMPS=$(grep -c '^# hartd stats dump' "$DIR/hartd.out")
if [ "$DUMPS" -lt 2 ]; then
  echo "FAIL: expected >=2 periodic stats dumps, saw $DUMPS"
  exit 1
fi
# pm_persist_calls_total must never decrease across dumps.
awk '$1 == "pm_persist_calls_total" {
       if ($2 + 0 < prev) { print "FAIL: persist counter went backwards"; exit 1 }
       prev = $2 + 0; n++
     }
     END { if (n < 2) { print "FAIL: persist counter missing from dumps"; exit 1 } }' \
    "$DIR/hartd.out"
echo "   $DUMPS dumps, pm_persist_calls_total monotonic"

echo "PASS: stats/trace smoke OK"
