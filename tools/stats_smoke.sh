#!/usr/bin/env bash
# stats_smoke.sh HARTD_BIN LOADGEN_BIN
#
# The HARTscope observability smoke. Five checks:
#   1. In-process: `loadgen --inproc --stats-out` — the scraped
#      hartd_ops_total must equal the loadgen's acked op count, and the
#      PM-event counters (pm_persist_calls_total, hartd_epochs_total)
#      must be non-zero after a write burst.
#   2. Trace export: `--trace-out` must produce parseable chrome://tracing
#      JSON with a non-empty traceEvents array.
#   3. Over TCP: hartd `--stats-dump 1` must print periodic dumps, the
#      STATS op must work over the wire, and pm_persist_calls_total must
#      be monotonic across successive dumps.
#   4. Exposition lint: every scraped snapshot must be clean Prometheus
#      text — unique series, a # TYPE line per base name, no NaN/Inf.
#   5. Stitched tracing: a client->primary->follower run with sampling on
#      must leave the SAME trace ids in all three processes' trace JSON
#      (client spans, server stage spans, follower apply spans).
# Run by ctest (stats_smoke) and the CI smoke job.
set -euo pipefail

HARTD=${1:?usage: stats_smoke.sh HARTD LOADGEN}
LOADGEN=${2:?usage: stats_smoke.sh HARTD LOADGEN}

DIR=$(mktemp -d "${TMPDIR:-/tmp}/hart_stats_smoke.XXXXXX")
SRV=
SRV2=
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
  [ -n "$SRV2" ] && kill -9 "$SRV2" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

# metric FILE NAME -> prints the (last) value of NAME in FILE, or 0.
metric() {
  awk -v name="$2" '$1 == name { v = $2 } END { print v + 0 }' "$1"
}

echo "== phase 1: in-proc run, STATS totals must match acked ops"
"$LOADGEN" --inproc --clients 2 --ops 2000 --mix insert --pipeline 16 \
           --stats-out "$DIR/stats.txt" --trace-out "$DIR/trace.json" \
           | tee "$DIR/loadgen.out"

ACKED=$(grep -oE '[0-9]+ acked' "$DIR/loadgen.out" | head -1 | cut -d' ' -f1)
OPS=$(metric "$DIR/stats.txt" 'hartd_ops_total')
if [ "$ACKED" != "$OPS" ] || [ "$ACKED" -eq 0 ]; then
  echo "FAIL: loadgen acked $ACKED ops but hartd_ops_total is $OPS"
  exit 1
fi
echo "   hartd_ops_total == $ACKED acked ops"

PERSISTS=$(metric "$DIR/stats.txt" 'pm_persist_calls_total')
EPOCHS=$(metric "$DIR/stats.txt" 'hartd_epochs_total')
if [ "$PERSISTS" -eq 0 ] || [ "$EPOCHS" -eq 0 ]; then
  echo "FAIL: PM counters empty after a write burst" \
       "(persist_calls=$PERSISTS epochs=$EPOCHS)"
  exit 1
fi
echo "   pm_persist_calls_total=$PERSISTS hartd_epochs_total=$EPOCHS"

echo "== phase 2: trace export must be valid chrome://tracing JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$DIR/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "traceEvents is empty"
for ev in events:
    assert ev["ph"] in ("X", "i"), f"bad phase {ev['ph']!r}"
    assert "ts" in ev and "name" in ev
print(f"   {len(events)} trace events, JSON OK")
EOF
else
  grep -q '"traceEvents"' "$DIR/trace.json" &&
    grep -q '"ph"' "$DIR/trace.json" ||
    { echo "FAIL: trace.json missing traceEvents"; exit 1; }
  echo "   trace.json present (python3 unavailable, shallow check)"
fi

echo "== phase 3: TCP --stats-dump is periodic and monotonic"
"$HARTD" --port 0 --port-file "$DIR/port" --shards 2 --batch 16 \
         --stats-dump 1 > "$DIR/hartd.out" &
SRV=$!
for _ in $(seq 100); do
  [ -s "$DIR/port" ] && break
  kill -0 "$SRV" 2>/dev/null || { echo "FAIL: hartd died at startup"; exit 1; }
  sleep 0.1
done
PORT=$(cat "$DIR/port")

"$LOADGEN" --port "$PORT" --clients 2 --ops 1000 --mix insert \
           --stats-out "$DIR/stats_tcp.txt" | tee "$DIR/loadgen_tcp.out"
ACKED_TCP=$(grep -oE '[0-9]+ acked' "$DIR/loadgen_tcp.out" | head -1 |
            cut -d' ' -f1)
OPS_TCP=$(metric "$DIR/stats_tcp.txt" 'hartd_ops_total')
if [ "$ACKED_TCP" != "$OPS_TCP" ] || [ "$ACKED_TCP" -eq 0 ]; then
  echo "FAIL: STATS over TCP reports $OPS_TCP ops, loadgen acked $ACKED_TCP"
  exit 1
fi
echo "   STATS op over TCP: hartd_ops_total == $ACKED_TCP acked ops"

sleep 2.5   # let at least two periodic dumps land
kill -TERM "$SRV"
wait "$SRV"
SRV=

DUMPS=$(grep -c '^# hartd stats dump' "$DIR/hartd.out")
if [ "$DUMPS" -lt 2 ]; then
  echo "FAIL: expected >=2 periodic stats dumps, saw $DUMPS"
  exit 1
fi
# pm_persist_calls_total must never decrease across dumps.
awk '$1 == "pm_persist_calls_total" {
       if ($2 + 0 < prev) { print "FAIL: persist counter went backwards"; exit 1 }
       prev = $2 + 0; n++
     }
     END { if (n < 2) { print "FAIL: persist counter missing from dumps"; exit 1 } }' \
    "$DIR/hartd.out"
echo "   $DUMPS dumps, pm_persist_calls_total monotonic"

echo "== phase 4: Prometheus exposition lint over every scraped snapshot"
lint_exposition() {
  # Unique series (name + labels), a # TYPE line per base name (summaries
  # contribute _count/_sum children of their base), no NaN/Inf values.
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$1" <<'EOF'
import math, sys
series, typed = {}, set()
with open(sys.argv[1]) as f:
    for ln, line in enumerate(f, 1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        key, _, val = line.rpartition(" ")
        assert key, f"line {ln}: no metric name"
        v = float(val)
        assert math.isfinite(v), f"line {ln}: non-finite value {val} for {key}"
        assert key not in series, f"line {ln}: duplicate series {key!r}"
        series[key] = v
        base = key.split("{", 1)[0]
        for suffix in ("_count", "_sum"):
            if base.endswith(suffix) and base[: -len(suffix)] in typed:
                base = base[: -len(suffix)]
        assert base in typed, f"line {ln}: {base} has no # TYPE line"
print(f"   {len(series)} unique series, {len(typed)} typed names, all finite")
EOF
  else
    # Shallow fallback: duplicates and NaN/Inf only.
    DUP=$(grep -v '^#' "$1" | grep -v '^$' | sed 's/ [^ ]*$//' |
          sort | uniq -d | head -1)
    [ -z "$DUP" ] || { echo "FAIL: duplicate series $DUP in $1"; exit 1; }
    ! grep -qiE ' (nan|inf)$' "$1" ||
      { echo "FAIL: non-finite sample in $1"; exit 1; }
    echo "   $1 lint OK (python3 unavailable, shallow check)"
  fi
}
lint_exposition "$DIR/stats.txt"
lint_exposition "$DIR/stats_tcp.txt"

echo "== phase 5: stitched client->primary->follower trace schema"
"$HARTD" --port 0 --port-file "$DIR/fport" --shards 2 --batch 8 --follow \
         --trace-out "$DIR/trace_follower.json" > "$DIR/hartd_f.out" &
SRV2=$!
for _ in $(seq 100); do
  [ -s "$DIR/fport" ] && break
  kill -0 "$SRV2" 2>/dev/null || { echo "FAIL: follower died at startup"; exit 1; }
  sleep 0.1
done
FPORT=$(cat "$DIR/fport")

"$HARTD" --port 0 --port-file "$DIR/pport" --shards 2 --batch 8 \
         --replicate-to "127.0.0.1:$FPORT" --ack-policy quorum \
         --trace-out "$DIR/trace_primary.json" > "$DIR/hartd_p.out" &
SRV=$!
for _ in $(seq 100); do
  [ -s "$DIR/pport" ] && break
  kill -0 "$SRV" 2>/dev/null || { echo "FAIL: primary died at startup"; exit 1; }
  sleep 0.1
done
PPORT=$(cat "$DIR/pport")

# Client-side sampling stamps every request; daemons only need their
# tracers armed (--trace-out) to record the propagated spans.
"$LOADGEN" --port "$PPORT" --clients 1 --ops 300 --mix insert --pipeline 8 \
           --trace-sample 1 --trace-out "$DIR/trace_client.json" \
           > "$DIR/loadgen_trace.out"

# Graceful shutdown writes each daemon's trace JSON.
kill -TERM "$SRV" && wait "$SRV" && SRV=
kill -TERM "$SRV2" && wait "$SRV2" && SRV2=

if command -v python3 >/dev/null 2>&1; then
  python3 - "$DIR/trace_client.json" "$DIR/trace_primary.json" \
            "$DIR/trace_follower.json" <<'EOF'
import json, sys

def spans(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}  # trace id (hex string) -> set of span names
    for ev in doc["traceEvents"]:
        tid = ev.get("args", {}).get("trace")
        if tid:
            out.setdefault(tid, set()).add(ev["name"])
    return out

client, primary, follower = map(spans, sys.argv[1:4])
assert client, "client trace has no trace-id-stamped events"
assert any("client" in names for names in client.values()), \
    "client trace missing 'client' spans"

stitched_p = {t for t in client
              if primary.get(t, set()) & {"queue_wait", "fence", "shard_apply"}}
assert stitched_p, "no client trace id reappears in the primary's stage spans"
stitched_f = {t for t in client if "follower_apply" in follower.get(t, set())}
assert stitched_f, "no client trace id reappears in the follower's apply spans"
print(f"   {len(client)} client traces; {len(stitched_p)} stitched to primary,"
      f" {len(stitched_f)} to follower")
EOF
else
  grep -q '"client"' "$DIR/trace_client.json" &&
    grep -q '"trace"' "$DIR/trace_client.json" &&
    grep -q '"follower_apply"' "$DIR/trace_follower.json" ||
    { echo "FAIL: stitched trace spans missing"; exit 1; }
  echo "   stitched trace present (python3 unavailable, shallow check)"
fi

echo "PASS: stats/trace smoke OK"
