// hartd_loadgen — multi-client load driver for hartd.
//
// Drives the service with the repo's workload mixes (insert-only "Random",
// or the paper's YCSB-style Read-Intensive / RMW / Write-Intensive mixes)
// across a configurable number of client connections, each pipelining up
// to --pipeline requests. Works over TCP (--port) or fully in-process
// (--inproc, which spins up its own Hartd).
//
// Crash harness support:
//   --acked-log P   append each acked insert's key to P (one write(2) per
//                   ack, after the ack) — the log is always a subset of
//                   the server's durable state, even across SIGKILL.
//   --verify-acked P  read keys from P (tolerating a torn final line) and
//                   GET each; exit 1 if any acked key is missing or has
//                   the wrong value. This is the restart check.
#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/histogram.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/config.h"
#include "server/stats.h"
#include "server/tcp.h"
#include "workload/mixes.h"

namespace {

using hart::server::Client;
using hart::server::Hartd;
using hart::server::OpCode;
using hart::server::Request;
using hart::server::Response;
using hart::server::Status;

struct Config {
  std::string host = "127.0.0.1";
  long port = -1;
  bool inproc = false;
  size_t clients = 4;
  size_t ops = 100000;  // per client; 0 = duration mode
  double seconds = 0;
  std::string mix = "insert";
  double zipf = 0;  // >0: Zipfian skew theta for mixed-workload key picks
  size_t pipeline = 32;
  size_t mget = 0;  // >0: batch this many GETs into one kMget request
  size_t preload = 5000;  // per client, for the mixed workloads
  std::string acked_log;
  std::string verify_acked;
  bool promote = false;     // send PROMOTE and exit (failover driver)
  bool stats_only = false;  // scrape metrics and exit
  std::string stats_out;  // final Prometheus snapshot file
  std::string trace_out;  // chrome://tracing JSON file
  size_t trace_sample = 0;  // client-side: stamp every Nth request
  // --inproc server knobs, parsed by the shared hartd flag matcher
  // (server/config.h) so loadgen and hartd cannot drift.
  Hartd::Options server;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port N          connect to hartd on 127.0.0.1:N\n"
      "  --host H          server address           (default 127.0.0.1)\n"
      "  --inproc          run an in-process Hartd instead of TCP\n"
      "  --clients N       client connections/threads        (default 4)\n"
      "  --ops N           ops per client (0 = use --seconds) (default 100000)\n"
      "  --seconds S       run for S seconds instead of an op budget\n"
      "  --mix M           insert | read-intensive | rmw | write-intensive\n"
      "  --zipf S          Zipfian key skew for the mixed workloads, theta\n"
      "                    in (0,1) — e.g. 0.99 for YCSB (default uniform)\n"
      "  --pipeline D      outstanding requests per client   (default 32)\n"
      "  --mget N          batch reads N-at-a-time into MGET requests\n"
      "  --preload N       preloaded keys per client for mixes (default 5000)\n"
      "  --acked-log P     append acked insert keys to P (insert mix only)\n"
      "  --verify-acked P  GET every key in P; exit 1 on any loss\n"
      "  --promote         ask the server to become primary (failover),\n"
      "                    print its applied replication positions, exit\n"
      "  --stats-only      scrape the server's metrics snapshot and exit\n"
      "                    (print, or write to --stats-out)\n"
      "  --stats-out P     write a final Prometheus metrics snapshot to P\n"
      "  --trace-out P     write a chrome://tracing JSON timeline to P\n"
      "  --trace-sample N  stamp every Nth request with a trace id; spans\n"
      "                    propagate through the server's stage timeline\n"
      "                    (1 = every request, 0 = off)\n"
      "  in-process server knobs (--inproc), shared with hartd:\n"
      "  --shards N --batch N --queue N --arena-dir D --arena-mb N\n"
      "  --latency W/R --bloom-bits-per-key N --rwlock-reads --check\n"
      "  --legacy-alloc --alloc-stripes N --eager-meta\n"
      "  --spin-latency    busy-wait injected latency per persist instead\n"
      "                    of banking it and sleeping once per batch\n"
      "  --help            this text\n",
      argv0);
}

/// Deterministic 8-byte value for a key — load and verify agree on it.
std::string value_of(const std::string& key) {
  const uint64_t h = hart::server::shard_hash(key);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 8);
}

/// Distinct keys per client: 2-char client prefix + base-36 counter.
std::string key_of(size_t client, uint64_t i) {
  char buf[24];
  buf[0] = static_cast<char>('A' + (client / 26) % 26);
  buf[1] = static_cast<char>('A' + client % 26);
  for (int p = 9; p >= 2; --p) {
    const uint64_t d = i % 36;
    buf[p] = d < 10 ? static_cast<char>('0' + d)
                    : static_cast<char>('a' + d - 10);
    i /= 36;
  }
  return std::string(buf, 10);
}

struct AckLog {
  int fd = -1;
  void open(const std::string& path) {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      std::perror("loadgen: cannot open --acked-log");
      std::exit(2);
    }
  }
  /// One write(2) per line: atomic under O_APPEND, and in the kernel page
  /// cache the instant it returns — a SIGKILL cannot unwrite it.
  void append(const std::string& key) {
    std::string line = key + "\n";
    (void)!::write(fd, line.data(), line.size());
  }
};

struct Counters {
  std::atomic<uint64_t> acked{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> errors{0};
};

const hart::workload::MixSpec* mix_spec(const std::string& name) {
  if (name == "read-intensive") return &hart::workload::kReadIntensive;
  if (name == "rmw") return &hart::workload::kReadModifyWrite;
  if (name == "write-intensive") return &hart::workload::kWriteIntensive;
  return nullptr;  // "insert"
}

/// Client-observed latency (send → ack), one histogram per op type. Each
/// client thread owns its own instance; main() merges them after join.
struct OpHists {
  std::array<hart::common::LatencyHistogram, hart::server::ShardHistograms::kOps>
      h;
};

uint64_t mono_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One client: pipelined request loop until the op budget or deadline.
void run_client(Client& cli, const Config& cfg, size_t id, AckLog* log,
                Counters* ctr, OpHists* hists) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(cfg.seconds));
  const bool timed = cfg.ops == 0;
  const hart::workload::MixSpec* mix = mix_spec(cfg.mix);

  // Mixed workloads: preload synchronously, then follow a generated op
  // stream over the client's private key pool.
  std::vector<hart::workload::Op> ops;
  size_t pool = 0;
  if (mix != nullptr) {
    const size_t budget = timed ? 1000000 : cfg.ops;
    pool = cfg.preload + budget / 2 + 16;
    ops = hart::workload::make_mixed_ops(
        budget, cfg.preload, pool, *mix, /*seed=*/7 + id,
        cfg.zipf > 0 ? hart::workload::DistKind::kZipfian
                     : hart::workload::DistKind::kUniform,
        cfg.zipf > 0 ? cfg.zipf : 0.99);
    for (size_t i = 0; i < cfg.preload; ++i) {
      const std::string k = key_of(id, i);
      if (!hart::server::is_acked_write(cli.put(k, value_of(k)).status))
        ctr->errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  struct Inflight {
    uint64_t rid;
    std::string key;     // non-empty = append to the ack log on ack
    size_t slot;         // op_hist_index, SIZE_MAX = untimed
    uint64_t t0;         // send time (mono_ns)
    size_t mget_n = 0;   // >0: kMget carrying this many keys
  };
  std::deque<Inflight> inflight;
  auto drain_one = [&] {
    Inflight f = std::move(inflight.front());
    inflight.pop_front();
    const Response r = cli.wait(f.rid);
    if (f.mget_n > 0) {
      // One kMget = mget_n logical reads; hits/misses from the payload.
      std::vector<std::string> vals;
      std::vector<bool> found;
      if (r.status == Status::kOk &&
          hart::server::decode_mget_result(r.value, &vals, &found)) {
        size_t hits = 0;
        for (const bool ok : found) hits += ok ? 1 : 0;
        ctr->acked.fetch_add(hits, std::memory_order_relaxed);
        ctr->misses.fetch_add(found.size() - hits,
                              std::memory_order_relaxed);
      } else {
        ctr->errors.fetch_add(f.mget_n, std::memory_order_relaxed);
      }
      return r.status != Status::kNetError &&
             r.status != Status::kShuttingDown;
    }
    if (f.slot != SIZE_MAX &&
        (r.status == Status::kOk || r.status == Status::kUpdated ||
         r.status == Status::kNotFound))
      hists->h[f.slot].record(mono_ns() - f.t0);
    const std::string& key = f.key;
    switch (r.status) {
      case Status::kOk:
      case Status::kUpdated:
        ctr->acked.fetch_add(1, std::memory_order_relaxed);
        if (log != nullptr && !key.empty()) log->append(key);
        break;
      case Status::kNotFound:
        ctr->misses.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        ctr->errors.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return r.status != Status::kNetError &&
           r.status != Status::kShuttingDown;
  };

  // --mget N: reads accumulate here and ship N-at-a-time as one kMget.
  std::vector<std::string> mget_keys;
  auto flush_mget = [&] {
    if (mget_keys.empty()) return;
    Request req{OpCode::kMget, {}, {}};
    hart::server::encode_mget_keys(mget_keys, &req.value);
    const size_t n = mget_keys.size();
    inflight.push_back(
        Inflight{cli.send(std::move(req)), {}, SIZE_MAX, mono_ns(), n});
    mget_keys.clear();
  };

  bool alive = true;
  for (uint64_t i = 0; alive; ++i) {
    if (timed) {
      if (std::chrono::steady_clock::now() >= deadline) break;
    } else if (i >= cfg.ops) {
      break;
    }
    while (alive && inflight.size() >= cfg.pipeline) alive = drain_one();
    if (!alive) break;

    Request req;
    std::string logged_key;
    if (mix == nullptr) {
      req.op = OpCode::kPut;
      req.key = key_of(id, i);
      req.value = value_of(req.key);
      logged_key = req.key;
    } else {
      const auto& op = ops[i % ops.size()];
      const std::string k = key_of(id, op.key_idx);
      if (cfg.mget > 0 && op.type == hart::workload::OpType::kSearch) {
        mget_keys.push_back(k);
        if (mget_keys.size() >= cfg.mget) flush_mget();
        continue;
      }
      switch (op.type) {
        case hart::workload::OpType::kInsert:
          req = {OpCode::kPut, k, value_of(k)};
          break;
        case hart::workload::OpType::kSearch:
          req = {OpCode::kGet, k, {}};
          break;
        case hart::workload::OpType::kUpdate:
          req = {OpCode::kUpdate, k, value_of(k)};
          break;
        case hart::workload::OpType::kDelete:
          req = {OpCode::kDelete, k, {}};
          break;
      }
    }
    const size_t slot = hart::server::op_hist_index(req.op);
    const uint64_t t0 = mono_ns();
    inflight.push_back(
        Inflight{cli.send(std::move(req)), std::move(logged_key), slot, t0});
  }
  flush_mget();
  while (!inflight.empty() && drain_one()) {
  }
  while (!inflight.empty()) {  // transport died: count the remainder
    inflight.pop_front();
    ctr->errors.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Final Prometheus snapshot: directly from the in-process Hartd, or over
/// the wire via a STATS request for TCP runs. Empty on transport failure.
std::string fetch_stats(const Config& cfg, Hartd* local) {
  if (local != nullptr) return hart::server::stats_prometheus(*local);
  try {
    Client cli(cfg.host, static_cast<uint16_t>(cfg.port));
    std::string text;
    if (cli.stats(&text).ok()) return text;
  } catch (const std::exception&) {
  }
  return {};
}

int verify_acked(const Config& cfg, Hartd* local) {
  std::ifstream in(cfg.verify_acked, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "loadgen: cannot read %s\n",
                 cfg.verify_acked.c_str());
    return 2;
  }
  // Only newline-terminated lines count: a SIGKILL can tear the final
  // line, and a torn line was by construction written after its ack was
  // durable anyway — skipping it never hides a loss.
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  std::vector<std::string> keys;
  std::unordered_set<std::string> seen;
  size_t start = 0;
  for (size_t nl = all.find('\n'); nl != std::string::npos;
       start = nl + 1, nl = all.find('\n', start)) {
    std::string line = all.substr(start, nl - start);
    if (!line.empty() && seen.insert(line).second)
      keys.push_back(std::move(line));
  }

  std::unique_ptr<Client> cli =
      local != nullptr ? std::make_unique<Client>(*local)
                       : std::make_unique<Client>(
                             cfg.host, static_cast<uint16_t>(cfg.port));
  size_t missing = 0, wrong = 0;
  for (const auto& key : keys) {
    const Response r = cli->get(key);
    if (r.status != Status::kOk) {
      ++missing;
      if (missing <= 10)
        std::fprintf(stderr, "loadgen: ACKED KEY LOST: %s (%s)\n",
                     key.c_str(), hart::server::status_name(r.status));
    } else if (r.value != value_of(key)) {
      ++wrong;
      if (wrong <= 10)
        std::fprintf(stderr, "loadgen: ACKED KEY CORRUPT: %s\n", key.c_str());
    }
  }
  std::printf("loadgen: verified %zu acked keys: %zu missing, %zu corrupt\n",
              keys.size(), missing, wrong);
  if (missing + wrong != 0) {
    // Lost an acked write: dump the server's metrics (recovery duration,
    // replayed keys, per-shard op counts) before failing — the snapshot is
    // the first thing a durability-bug triage needs.
    std::string st;
    if (cli->stats(&st).ok())
      std::fprintf(stderr,
                   "loadgen: server stats at verification failure:\n%s",
                   st.c_str());
  }
  return missing + wrong == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    {
      std::string err;
      switch (hart::server::parse_server_flag(argc, argv, &i, &cfg.server,
                                              &err)) {
        case hart::server::FlagParse::kOk:
          continue;
        case hart::server::FlagParse::kError:
          std::fprintf(stderr, "loadgen: %s\n", err.c_str());
          return 2;
        case hart::server::FlagParse::kNoMatch:
          break;
      }
    }
    const std::string a = argv[i];
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadgen: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (a == "--host") {
      cfg.host = need("--host");
    } else if (a == "--port") {
      cfg.port = std::strtol(need("--port"), nullptr, 10);
    } else if (a == "--inproc") {
      cfg.inproc = true;
    } else if (a == "--clients") {
      cfg.clients = std::strtoull(need("--clients"), nullptr, 10);
    } else if (a == "--ops") {
      cfg.ops = std::strtoull(need("--ops"), nullptr, 10);
    } else if (a == "--seconds") {
      cfg.seconds = std::strtod(need("--seconds"), nullptr);
      cfg.ops = 0;
    } else if (a == "--mix") {
      cfg.mix = need("--mix");
    } else if (a == "--zipf") {
      cfg.zipf = std::strtod(need("--zipf"), nullptr);
      if (cfg.zipf <= 0 || cfg.zipf >= 1) {
        std::fprintf(stderr, "loadgen: --zipf wants theta in (0,1)\n");
        return 2;
      }
    } else if (a == "--promote") {
      cfg.promote = true;
    } else if (a == "--stats-only") {
      cfg.stats_only = true;
    } else if (a == "--pipeline") {
      cfg.pipeline = std::strtoull(need("--pipeline"), nullptr, 10);
    } else if (a == "--mget") {
      cfg.mget = std::strtoull(need("--mget"), nullptr, 10);
      if (cfg.mget > hart::server::kMaxBatchEntries) {
        std::fprintf(stderr, "loadgen: --mget capped at %zu\n",
                     hart::server::kMaxBatchEntries);
        cfg.mget = hart::server::kMaxBatchEntries;
      }
    } else if (a == "--preload") {
      cfg.preload = std::strtoull(need("--preload"), nullptr, 10);
    } else if (a == "--acked-log") {
      cfg.acked_log = need("--acked-log");
    } else if (a == "--verify-acked") {
      cfg.verify_acked = need("--verify-acked");
    } else if (a == "--stats-out") {
      cfg.stats_out = need("--stats-out");
    } else if (a == "--trace-out") {
      cfg.trace_out = need("--trace-out");
    } else if (a == "--trace-sample") {
      cfg.trace_sample = std::strtoull(need("--trace-sample"), nullptr, 10);
    } else {
      std::fprintf(stderr, "loadgen: unknown flag '%s' (--help)\n",
                   a.c_str());
      return 2;
    }
  }
  if (!cfg.inproc && cfg.port < 0) {
    std::fprintf(stderr, "loadgen: need --port or --inproc (--help)\n");
    return 2;
  }
  if (!cfg.acked_log.empty() && cfg.mix != "insert") {
    std::fprintf(stderr,
                 "loadgen: --acked-log requires --mix insert (delete ops "
                 "would falsify the replay)\n");
    return 2;
  }
  if (cfg.mix != "insert" && mix_spec(cfg.mix) == nullptr) {
    std::fprintf(stderr, "loadgen: unknown mix '%s'\n", cfg.mix.c_str());
    return 2;
  }

  // Arm the tracer before the in-process Hartd exists so shard recovery
  // (and, for TCP runs, the client-side timeline) lands in the trace.
  if (!cfg.trace_out.empty()) hart::obs::Tracer::instance().enable();

  std::unique_ptr<Hartd> local;
  if (cfg.inproc) local = std::make_unique<Hartd>(cfg.server);

  if (cfg.promote) {
    // Failover driver: tell the (former follower) server to take over.
    try {
      Client cli(cfg.host, static_cast<uint16_t>(cfg.port));
      std::string positions;
      const hart::common::Status s = cli.promote(&positions);
      std::printf("loadgen: promote: %s\n", s.name());
      std::vector<hart::server::ReplPosition> pos;
      if (hart::server::decode_repl_positions(positions, &pos))
        for (const auto& p : pos)
          std::printf("  stream %u applied seq %llu (epoch %llu)\n", p.stream,
                      static_cast<unsigned long long>(p.seq),
                      static_cast<unsigned long long>(p.epoch));
      return s.ok() ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loadgen: promote failed: %s\n", e.what());
      return 1;
    }
  }

  if (cfg.stats_only) {
    const std::string text = fetch_stats(cfg, local.get());
    if (text.empty()) {
      std::fprintf(stderr, "loadgen: stats scrape failed\n");
      return 1;
    }
    if (cfg.stats_out.empty()) {
      std::fputs(text.c_str(), stdout);
    } else if (std::ofstream out(cfg.stats_out, std::ios::binary); out) {
      out << text;
      std::printf("loadgen: stats written to %s\n", cfg.stats_out.c_str());
    } else {
      std::fprintf(stderr, "loadgen: cannot write stats to %s\n",
                   cfg.stats_out.c_str());
      return 1;
    }
    return 0;
  }

  if (!cfg.verify_acked.empty()) {
    const int rc = verify_acked(cfg, local.get());
    // A post-verify snapshot (repl counters, recovery stats) rides along
    // when requested — the smoke tests assert on it.
    if (!cfg.stats_out.empty()) {
      const std::string text = fetch_stats(cfg, local.get());
      if (std::ofstream out(cfg.stats_out, std::ios::binary);
          !text.empty() && out)
        out << text;
    }
    return rc;
  }

  AckLog log;
  if (!cfg.acked_log.empty()) log.open(cfg.acked_log);
  AckLog* logp = cfg.acked_log.empty() ? nullptr : &log;

  // One connection (or in-process client) per client thread.
  std::vector<std::unique_ptr<Client>> clients;
  for (size_t c = 0; c < cfg.clients; ++c) {
    try {
      clients.push_back(local != nullptr
                            ? std::make_unique<Client>(*local)
                            : std::make_unique<Client>(
                                  cfg.host, static_cast<uint16_t>(cfg.port)));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loadgen: connect failed: %s\n", e.what());
      return 1;
    }
    if (cfg.trace_sample > 0)
      clients.back()->set_trace_sampling(cfg.trace_sample);
  }

  Counters ctr;
  std::vector<OpHists> hists(cfg.clients);
  hart::common::Stopwatch sw;
  std::vector<std::thread> pool;
  for (size_t c = 0; c < cfg.clients; ++c)
    pool.emplace_back(
        [&, c] { run_client(*clients[c], cfg, c, logp, &ctr, &hists[c]); });
  for (auto& t : pool) t.join();
  const double secs = sw.seconds();

  const uint64_t acked = ctr.acked.load();
  std::printf(
      "loadgen: mix=%s clients=%zu pipeline=%zu: %llu acked, %llu miss, "
      "%llu errors in %.2fs = %.0f ops/s\n",
      cfg.mix.c_str(), cfg.clients, cfg.pipeline,
      static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(ctr.misses.load()),
      static_cast<unsigned long long>(ctr.errors.load()), secs,
      (static_cast<double>(acked) + static_cast<double>(ctr.misses.load())) /
          (secs > 0 ? secs : 1));

  // Per-op-type client-observed latency (send → ack), merged over clients.
  OpHists total;
  for (const auto& h : hists)
    for (size_t s = 0; s < total.h.size(); ++s) total.h[s].merge(h.h[s]);
  for (size_t s = 0; s < total.h.size(); ++s) {
    if (total.h[s].count() == 0) continue;
    const auto p = total.h[s].percentiles();
    std::printf(
        "  %-7s n=%-9llu mean=%8.1fus p50=%8.1fus p95=%8.1fus "
        "p99=%8.1fus max=%8.1fus\n",
        hart::server::op_hist_name(s),
        static_cast<unsigned long long>(p.count), p.mean_ns / 1e3,
        static_cast<double>(p.p50_ns) / 1e3,
        static_cast<double>(p.p95_ns) / 1e3,
        static_cast<double>(p.p99_ns) / 1e3,
        static_cast<double>(p.max_ns) / 1e3);
  }

  // Snapshot metrics while the server is still up (TCP) / pre-shutdown
  // (in-proc), so the scrape itself is part of the measured run.
  if (!cfg.stats_out.empty()) {
    const std::string text = fetch_stats(cfg, local.get());
    if (std::ofstream out(cfg.stats_out, std::ios::binary);
        !text.empty() && out) {
      out << text;
      std::printf("loadgen: stats written to %s\n", cfg.stats_out.c_str());
    } else {
      std::fprintf(stderr, "loadgen: cannot write stats to %s\n",
                   cfg.stats_out.c_str());
    }
  }

  if (local != nullptr) {
    local->shutdown();
    for (size_t s = 0; s < local->shard_count(); ++s) {
      const auto& st = local->shard(s).stats();
      std::printf(
          "  shard %zu: %llu ops, %llu batches, %llu epochs (avg batch "
          "%.1f)\n",
          s, static_cast<unsigned long long>(st.ops.load()),
          static_cast<unsigned long long>(st.batches.load()),
          static_cast<unsigned long long>(st.epochs.load()),
          st.batches.load() != 0 ? static_cast<double>(st.ops.load()) /
                                       static_cast<double>(st.batches.load())
                                 : 0.0);
    }
  }
  if (!cfg.trace_out.empty()) {
    if (hart::obs::Tracer::instance().write_chrome_json(cfg.trace_out))
      std::printf("loadgen: trace written to %s (load in chrome://tracing)\n",
                  cfg.trace_out.c_str());
    else
      std::fprintf(stderr, "loadgen: cannot write trace to %s\n",
                   cfg.trace_out.c_str());
  }
  // Connection loss mid-run is an expected outcome for the crash harness:
  // the acked log stays valid. Exit 0 unless nothing at all succeeded.
  return acked > 0 || ctr.misses.load() > 0 ? 0 : 1;
}
