#!/usr/bin/env python3
"""pmlint — static lint for persistent-memory anti-patterns.

Complements the dynamic PMCheck checker (src/pmcheck/) with three source
heuristics that do not need the code to run:

  PL001 unpersisted-memcpy   A memcpy/memmove/memset whose destination was
                             obtained from Arena::ptr<T>() in the same
                             function — directly, or through a pointer
                             derived from it (member access `rec->bytes`,
                             pointer arithmetic `base + off`) — where
                             neither that pointer nor any pointer it was
                             derived from reaches a persist()/trace_store()
                             call in the function. The bytes land in PM but
                             nothing makes them durable.

  PL002 bad-pm-member        A struct placed in PM (it has a POff<> member,
                             or the tree dereferences it via ptr<Struct>())
                             declaring a virtual function or a raw-pointer
                             member. vtables and addresses are meaningless
                             after re-mapping; PM structs must hold offsets
                             (POff<T> / uint64_t) only.

  PL003 misaligned-persist   A persist() of a byte-count literal > 64 (one
                             cache line) rooted at a struct-field address
                             (&x->f / &x.f). The range spans multiple
                             cache lines from an address with no alignment
                             guarantee, so the flush count is one higher
                             than the byte count suggests; persist the whole
                             object or align the field.

These are heuristics: they favour zero false positives on this tree over
completeness (see DESIGN.md "PMCheck"). Exit status is the number of
findings (0 = clean), so it can gate CI directly.

Usage: pmlint.py [PATH ...]   (default: src/)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}

IDENT = r"[A-Za-z_]\w*"

# `auto* pv = a.ptr<PmValue>(off);` / `char* vp = arena_.ptr<char>(x);`
# Also captures the offset expression's base identifier: a builder function
# that returns that offset hands the persist duty to its caller and is not
# flagged (e.g. Wort::new_node fills a node, the call site persists it).
PTR_DECL_RE = re.compile(
    rf"\b(?:auto|char|std::byte|{IDENT})\s*\*\s*(?:const\s+)?({IDENT})\s*=\s*"
    rf"[^;=]*\bptr\s*<[^<>;]*>\s*\(\s*({IDENT})?"
)
MEMCPY_RE = re.compile(rf"\b(?:std::)?(?:memcpy|memmove|memset)\s*\(\s*([^,;]+),")
PERSIST_USE_RE_TMPL = r"\b(?:persist|trace_store)\s*\(\s*[^,;()]*\b{id}\b"

# Any pointer declaration — used to propagate PM-ness through aliases:
# `unsigned char* dst = rec->bytes;`, `char* p2 = base + 64;`.
ALIAS_DECL_RE = re.compile(
    rf"\b(?:auto|char|unsigned\s+char|uint8_t|std::byte|{IDENT})\s*\*\s*"
    rf"(?:const\s+)?({IDENT})\s*=\s*([^;]+);")

STRUCT_RE = re.compile(rf"\b(?:struct|class)\s+({IDENT})\s*(?:final\s*)?(?::[^{{]*)?{{")
PTR_DEREF_RE = re.compile(rf"\bptr\s*<\s*({IDENT})\s*>")
# A POff<> *member declaration* (no parens: `POff<T> f(...)` is a function).
POFF_MEMBER_RE = re.compile(
    rf"^\s*(?:const\s+)?(?:[\w:]+::)?POff\s*<[^;<>()]*>\s+{IDENT}\s*(?:=\s*[^;()]+)?;",
    re.M)
VIRTUAL_RE = re.compile(r"^\s*virtual\b")
# `Node* next;` / `char *p = nullptr;` members — but not `char key[..]`,
# not function declarations/definitions, not pointer-to-const-char literals.
RAW_PTR_MEMBER_RE = re.compile(
    rf"^\s*(?:const\s+)?[\w:]+(?:\s*<[^;<>]*>)?\s*\*\s*(?:const\s+)?{IDENT}\s*(?:=\s*[^;()]+)?;"
)

PERSIST_CALL_RE = re.compile(rf"\bpersist\s*\(\s*(&\s*{IDENT}\s*(?:->|\.)\s*[^,]+?),\s*(\d+)\s*\)")


def function_bodies(text: str):
    """Yield (start_line, body_text) for every brace-delimited body that
    follows a ')' — i.e. function definitions. Lexer-free and approximate,
    which is fine for a heuristic linter."""
    i = 0
    n = len(text)
    while i < n:
        open_brace = text.find("{", i)
        if open_brace < 0:
            return
        # A function body's '{' follows ')' (possibly with specifiers).
        before = text[:open_brace].rstrip()
        before = re.sub(r"\b(const|noexcept|override|final|->\s*[\w:<>&*\s]+)\s*$", "", before).rstrip()
        is_fn = before.endswith(")")
        depth = 1
        j = open_brace + 1
        while j < n and depth:
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
            j += 1
        if is_fn:
            yield text.count("\n", 0, open_brace) + 1, text[open_brace:j]
            i = j
        else:
            i = open_brace + 1


def struct_bodies(text: str):
    """Yield (name, start_line, body_text) for every struct/class."""
    for m in STRUCT_RE.finditer(text):
        depth = 1
        j = m.end()
        while j < len(text) and depth:
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
            j += 1
        yield m.group(1), text.count("\n", 0, m.start()) + 1, text[m.end():j]


def base_identifier(expr: str) -> str | None:
    expr = expr.strip().lstrip("&*(").strip()
    m = re.match(IDENT, expr)
    return m.group(0) if m else None


def strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def lint_file(path: Path, pm_structs: set[str], findings: list[str]) -> None:
    text = strip_comments(path.read_text(errors="replace"))

    # --- PL001: memcpy into a ptr<>()-derived pointer with no persist ----
    for start_line, body in function_bodies(text):
        pm_ptrs = {}  # pointer name -> offset identifier it was derived from
        parents = {}  # alias name -> the PM pointer it was derived from
        decls = [("pm", m) for m in PTR_DECL_RE.finditer(body)]
        decls += [("alias", m) for m in ALIAS_DECL_RE.finditer(body)]
        for kind, m in sorted(decls, key=lambda km: km[1].start()):
            if kind == "pm":
                pm_ptrs[m.group(1)] = m.group(2)
            else:
                # A pointer whose initializer is rooted in a known PM
                # pointer (member access / array decay / arithmetic)
                # inherits its PM-ness.
                base = base_identifier(m.group(2))
                if base in pm_ptrs or base in parents:
                    if m.group(1) not in pm_ptrs:
                        parents[m.group(1)] = base
        if not pm_ptrs:
            continue

        def chain(name: str) -> list[str]:
            out = [name]
            while name in parents:
                name = parents[name]
                out.append(name)
            return out

        for m in MEMCPY_RE.finditer(body):
            dest = base_identifier(m.group(1))
            if dest not in pm_ptrs and dest not in parents:
                continue
            links = chain(dest)
            # Persisting the alias or anything it was derived from (the
            # whole record covers its member) discharges the store.
            if any(
                    re.search(PERSIST_USE_RE_TMPL.format(id=re.escape(c)),
                              body) for c in links):
                continue
            src_off = pm_ptrs.get(links[-1])
            if src_off and re.search(rf"\breturn\s+{re.escape(src_off)}\s*;", body):
                continue  # builder pattern: caller owns the persist
            line = start_line + body.count("\n", 0, m.start())
            via = "" if dest in pm_ptrs else (
                f" (via alias of '{links[-1]}')")
            findings.append(
                f"{path}:{line}: PL001 unpersisted-memcpy: destination "
                f"'{dest}' comes from Arena::ptr<>(){via} but never reaches "
                f"persist()/trace_store() in this function"
            )

    # --- PL002: virtual / raw-pointer members in PM-placed structs -------
    for name, start_line, body in struct_bodies(text):
        if name not in pm_structs and not POFF_MEMBER_RE.search(body):
            continue
        # Only the struct's own top-level members, not nested bodies.
        top = re.sub(r"{[^{}]*}", "{}", body)
        for lineno, line in enumerate(top.splitlines()):
            if VIRTUAL_RE.search(line):
                findings.append(
                    f"{path}:{start_line + lineno}: PL002 bad-pm-member: "
                    f"virtual function in PM-placed struct '{name}' "
                    f"(vtable pointers do not survive re-mapping)"
                )
            elif RAW_PTR_MEMBER_RE.search(line) and "(" not in line:
                findings.append(
                    f"{path}:{start_line + lineno}: PL002 bad-pm-member: "
                    f"raw pointer member in PM-placed struct '{name}' "
                    f"(store a POff<T>/offset instead)"
                )

    # --- PL003: multi-line persist from an unaligned field address -------
    for m in PERSIST_CALL_RE.finditer(text):
        if int(m.group(2)) > 64:
            line = text.count("\n", 0, m.start()) + 1
            findings.append(
                f"{path}:{line}: PL003 misaligned-persist: "
                f"persist({m.group(1).strip()}, {m.group(2)}) spans more "
                f"than one cache line from a field address with no "
                f"alignment guarantee"
            )


def collect_pm_structs(files: list[Path]) -> set[str]:
    """Names dereferenced via ptr<Name>() anywhere in the scanned tree."""
    out: set[str] = set()
    for f in files:
        out.update(PTR_DEREF_RE.findall(strip_comments(f.read_text(errors="replace"))))
    return out


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv[1:]] or [Path("src")]
    files: list[Path] = []
    for r in roots:
        if r.is_file():
            files.append(r)
        else:
            files.extend(p for p in sorted(r.rglob("*")) if p.suffix in CPP_SUFFIXES)
    if not files:
        print(f"pmlint: no C++ sources under {' '.join(map(str, roots))}", file=sys.stderr)
        return 2

    pm_structs = collect_pm_structs(files)
    findings: list[str] = []
    for f in files:
        lint_file(f, pm_structs, findings)

    for f in findings:
        print(f)
    print(f"pmlint: {len(findings)} finding(s) in {len(files)} file(s)")
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
