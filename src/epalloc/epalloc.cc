#include "epalloc/epalloc.h"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/counters.h"

namespace hart::epalloc {

namespace {
// HARTscope: process-wide allocator event tallies. Registry references
// are resolved once (the map is node-based, references are stable) so a
// hot-path bump is a single striped relaxed fetch_add.
struct EpCounters {
  obs::Counter& ep_malloc;
  obs::Counter& commit;
  obs::Counter& release;
  obs::Counter& free_obj;
  obs::Counter& chunk_alloc;
  obs::Counter& chunk_recycle;
  obs::Counter& ulog_take;
  obs::Counter& ulog_reclaim;
  obs::Counter& stale_value_reclaim;
  // Chunk-header (bitmap word) persists — the PM metadata writes the
  // striped allocator batches away. Counted here too so the --legacy-alloc
  // ablation reports a comparable number.
  obs::Counter& pm_meta_persists;
};

EpCounters& ep_counters() {
  auto& reg = obs::Registry::instance();
  static EpCounters c{
      reg.counter("ep_malloc_total"),
      reg.counter("ep_commit_total"),
      reg.counter("ep_release_total"),
      reg.counter("ep_free_total"),
      reg.counter("ep_chunk_alloc_total"),
      reg.counter("ep_chunk_recycle_total"),
      reg.counter("ep_ulog_take_total"),
      reg.counter("ep_ulog_reclaim_total"),
      reg.counter("ep_stale_value_reclaim_total"),
      reg.counter("epalloc_pm_meta_persists_total"),
  };
  return c;
}
}  // namespace

EPAllocator::EPAllocator(pmem::Arena& arena, EPRoot* root,
                         uint32_t leaf_obj_size, LeafProbeFn probe,
                         LeafClearFn clear)
    : arena_(arena), root_(root), probe_(probe), clear_(clear) {
  types_[static_cast<int>(ObjType::kLeaf)].geom =
      TypeGeometry::for_obj_size(leaf_obj_size);
  for (int t = 1; t < kNumObjTypes; ++t)
    types_[t].geom = TypeGeometry::for_obj_size(
        value_class_size(static_cast<ObjType>(t)));
}

void EPAllocator::persist_head(ObjType t) {
  arena_.trace_store(&root_->heads[static_cast<int>(t)], sizeof(uint64_t));
  arena_.persist(&root_->heads[static_cast<int>(t)], sizeof(uint64_t));
}

void EPAllocator::make_available_locked(TypeState& st, uint64_t chunk_off,
                                        ChunkState& cs) {
  if (!cs.in_avail) {
    cs.in_avail = true;
    st.avail.push_back(chunk_off);
  }
}

uint64_t EPAllocator::new_chunk_locked(TypeState& st, ObjType t) {
  const TypeGeometry& g = st.geom;
  const uint64_t off = arena_.alloc(g.chunk_bytes, g.stride);
  auto* c = chunk_ptr(off);
  // Zero the whole chunk so stale-value probes on never-used leaf slots see
  // a null p_value, then make it durable before linking (Alg. 2 lines 8-10;
  // a crash before the head update leaves the chunk unreachable, and the
  // recovery reachability scan frees it — no leak).
  std::memset(c, 0, g.chunk_bytes);
  c->header = ChunkHdr::make(0, 0, kIndAvailable);
  c->pnext = root_->heads[static_cast<int>(t)];
  arena_.trace_store(c, g.chunk_bytes);
  arena_.persist(c, g.chunk_bytes);
  root_->heads[static_cast<int>(t)] = off;
  persist_head(t);

  if (c->pnext != pmem::kNullOff) {
    auto it = st.chunks.find(c->pnext);
    assert(it != st.chunks.end());
    it->second.prev = off;
  }
  ChunkState& cs = st.chunks[off];
  cs.reserved = 0;
  cs.prev = 0;
  make_available_locked(st, off, cs);
  ep_counters().chunk_alloc.inc();
  return off;
}

uint64_t EPAllocator::ep_malloc(ObjType t) {
  ep_counters().ep_malloc.inc();
  TypeState& st = ts(t);
  uint64_t obj_off = 0;
  {
    common::MutexLock lk(st.mu);
    for (;;) {
      while (!st.avail.empty()) {
        const uint64_t c_off = st.avail.back();
        auto it = st.chunks.find(c_off);
        if (it == st.chunks.end()) {  // recycled; stale avail entry
          st.avail.pop_back();
          continue;
        }
        ChunkState& cs = it->second;
        const uint64_t occupied = ChunkHdr::bitmap(chunk_ptr(c_off)->header) |
                                  cs.reserved | cs.retired;
        const auto idx = static_cast<uint32_t>(std::countr_one(occupied));
        if (idx >= kObjectsPerChunk) {  // actually full
          cs.in_avail = false;
          st.avail.pop_back();
          continue;
        }
        cs.reserved |= (uint64_t{1} << idx);
        obj_off = st.geom.object_off(c_off, idx);
        break;
      }
      if (obj_off != 0) break;
      new_chunk_locked(st, t);
    }
  }

  // PMCheck: the slot may be re-used space whose previous content was
  // persisted; the new owner's first flush must not count as redundant.
  arena_.note_object_alloc(obj_off, st.geom.obj_size);

  // Algorithm 2 lines 12-16: a free leaf slot may still reference a value
  // committed by a prior incomplete insertion or deletion; reclaim it so
  // the value object becomes allocatable again.
  if (t == ObjType::kLeaf && probe_ != nullptr) {
    const LeafValueRef ref = probe_(arena_, obj_off);
    if (ref.value_off != 0 && bit_is_set(ref.cls, ref.value_off)) {
      ep_counters().stale_value_reclaim.inc();
      free_object(ref.cls, ref.value_off);
      recycle_chunk_of(ref.cls, ref.value_off);
      clear_(arena_, obj_off);
    }
  }
  return obj_off;
}

common::Status EPAllocator::reserve(ObjType t, uint64_t* obj_off) {
  try {
    *obj_off = ep_malloc(t);
  } catch (const std::bad_alloc&) {
    return common::Status::kOutOfMemory;
  }
  return common::Status::kOk;
}

void EPAllocator::commit(ObjType t, uint64_t obj_off) {
  ep_counters().commit.inc();
  TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  common::MutexLock lk(st.mu);
  auto* c = chunk_ptr(c_off);
  std::atomic_ref<uint64_t>(c->header)
      .store(ChunkHdr::with_bit(c->header, idx, true),
             std::memory_order_release);
  arena_.trace_store(&c->header, sizeof(c->header));
  arena_.persist(&c->header, sizeof(c->header));
  ep_counters().pm_meta_persists.inc();
  auto it = st.chunks.find(c_off);
  assert(it != st.chunks.end());
  it->second.reserved &= ~(uint64_t{1} << idx);
}

void EPAllocator::release(ObjType t, uint64_t obj_off) {
  ep_counters().release.inc();
  TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  common::MutexLock lk(st.mu);
  auto it = st.chunks.find(c_off);
  assert(it != st.chunks.end());
  it->second.reserved &= ~(uint64_t{1} << idx);
  make_available_locked(st, c_off, it->second);
}

void EPAllocator::free_object_locked(TypeState& st, uint64_t obj_off) {
  ep_counters().free_obj.inc();
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  auto* c = chunk_ptr(c_off);
  assert((ChunkHdr::bitmap(c->header) >> idx) & 1);
  std::atomic_ref<uint64_t>(c->header)
      .store(ChunkHdr::with_bit(c->header, idx, false),
             std::memory_order_release);
  arena_.trace_store(&c->header, sizeof(c->header));
  arena_.persist(&c->header, sizeof(c->header));
  ep_counters().pm_meta_persists.inc();
  auto it = st.chunks.find(c_off);
  assert(it != st.chunks.end());
  make_available_locked(st, c_off, it->second);
}

void EPAllocator::free_object(ObjType t, uint64_t obj_off) {
  TypeState& st = ts(t);
  common::MutexLock lk(st.mu);
  free_object_locked(st, obj_off);
}

void EPAllocator::free_object_retired_locked(TypeState& st,
                                             uint64_t obj_off) {
  ep_counters().free_obj.inc();
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  auto* c = chunk_ptr(c_off);
  assert((ChunkHdr::bitmap(c->header) >> idx) & 1);
  // Persistent bit resets stay eager: the delete must be durable before it
  // is acked, regardless of how long readers pin the slot's *memory*.
  std::atomic_ref<uint64_t>(c->header)
      .store(ChunkHdr::with_bit(c->header, idx, false),
             std::memory_order_release);
  arena_.trace_store(&c->header, sizeof(c->header));
  arena_.persist(&c->header, sizeof(c->header));
  ep_counters().pm_meta_persists.inc();
  auto it = st.chunks.find(c_off);
  assert(it != st.chunks.end());
  // No make_available: the retired bit keeps ep_malloc away until
  // release_retired() runs after the EBR grace period.
  it->second.retired |= (uint64_t{1} << idx);
}

void EPAllocator::free_object_retired(ObjType t, uint64_t obj_off) {
  TypeState& st = ts(t);
  common::MutexLock lk(st.mu);
  free_object_retired_locked(st, obj_off);
}

void EPAllocator::free_leaf_with_value_retired(uint64_t leaf_off,
                                               ObjType vcls,
                                               uint64_t val_off) {
  TypeState& leaf_st = ts(ObjType::kLeaf);
  common::MutexLock lk(leaf_st.mu);
  free_object_retired_locked(leaf_st, leaf_off);
  {
    TypeState& val_st = ts(vcls);
    common::MutexLock vlk(val_st.mu);
    free_object_retired_locked(val_st, val_off);
  }
  // Clear the leaf's dangling value pointer; optimistic readers treat
  // p_value == 0 as "deleted", and the slot cannot be re-reserved until
  // release_retired().
  clear_(arena_, leaf_off);
}

void EPAllocator::release_retired(ObjType t, uint64_t obj_off) {
  TypeState& st = ts(t);
  {
    common::MutexLock lk(st.mu);
    const uint64_t c_off = st.geom.chunk_of(obj_off);
    auto it = st.chunks.find(c_off);
    if (it == st.chunks.end()) return;  // chunk freed across a recovery
    const uint32_t idx = st.geom.index_of(obj_off);
    it->second.retired &= ~(uint64_t{1} << idx);
    make_available_locked(st, c_off, it->second);
  }
  // The free skipped EPRecycle; run it now that the slot is reusable.
  recycle_chunk_of(t, obj_off);
}

void EPAllocator::free_leaf_with_value(uint64_t leaf_off, ObjType vcls,
                                       uint64_t val_off) {
  TypeState& leaf_st = ts(ObjType::kLeaf);
  common::MutexLock lk(leaf_st.mu);  // blocks leaf reservations throughout
  // Alg. 5 line 11: reset the leaf bit (the delete's commit point).
  free_object_locked(leaf_st, leaf_off);
  // Alg. 5 line 12: reset the value bit (nested LEAF -> VALUE lock order,
  // same as the stale-value probe path).
  {
    TypeState& val_st = ts(vcls);
    common::MutexLock vlk(val_st.mu);
    free_object_locked(val_st, val_off);
  }
  // Clear the leaf's dangling value pointer so the freed value slot can be
  // safely re-allocated to another key (see Hart::remove and DESIGN.md).
  clear_(arena_, leaf_off);
}

bool EPAllocator::bit_probe(ObjType t, uint64_t obj_off) const {
  const TypeGeometry& g = geom(t);
  auto* c = chunk_ptr(g.chunk_of(obj_off));
  const uint64_t w =
      std::atomic_ref<uint64_t>(c->header).load(std::memory_order_acquire);
  return (ChunkHdr::bitmap(w) >> g.index_of(obj_off)) & 1;
}

bool EPAllocator::bit_is_set(ObjType t, uint64_t obj_off) const {
  const TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  common::MutexLock lk(st.mu);
  if (st.chunks.find(c_off) == st.chunks.end()) return false;
  return (ChunkHdr::bitmap(chunk_ptr(c_off)->header) >> idx) & 1;
}

void EPAllocator::recycle_chunk_of(ObjType t, uint64_t obj_off) {
  TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  common::MutexLock lk(st.mu);
  auto it = st.chunks.find(c_off);
  if (it == st.chunks.end()) return;  // already recycled
  ChunkState& cs = it->second;
  auto* c = chunk_ptr(c_off);
  // Algorithm 6 lines 1-2: only an entirely empty chunk is recycled.
  // Retired slots count as occupied — readers may still be inside them.
  if (ChunkHdr::bitmap(c->header) != 0 || cs.reserved != 0 ||
      cs.retired != 0)
    return;

  // The recycle log is one shared persistent structure: hold rlog_mu_ from
  // the first log store until the log is cleared, or two threads recycling
  // chunks of different types would interleave stores into the same words
  // (PM race found by PMCheck; recovery could then unlink a chunk with the
  // wrong type's geometry).
  common::MutexLock rlk(rlog_mu_);
  RecycleLog& rlog = root_->rlog;
  rlog.type_plus1 = static_cast<uint64_t>(t) + 1;
  rlog.pcurrent = c_off;
  arena_.trace_store(&rlog, sizeof(rlog));
  arena_.persist(&rlog, sizeof(rlog));

  const uint64_t next = c->pnext;
  uint64_t prev = 0;
  if (root_->heads[static_cast<int>(t)] == c_off) {
    root_->heads[static_cast<int>(t)] = next;
    persist_head(t);
  } else {
    prev = cs.prev;
    assert(prev != 0);
    rlog.pprev = prev;
    arena_.trace_store(&rlog.pprev, sizeof(rlog.pprev));
    arena_.persist(&rlog.pprev, sizeof(rlog.pprev));
    auto* pc = chunk_ptr(prev);
    pc->pnext = next;
    arena_.trace_store(&pc->pnext, sizeof(pc->pnext));
    arena_.persist(&pc->pnext, sizeof(pc->pnext));
  }
  if (next != pmem::kNullOff) {
    auto nit = st.chunks.find(next);
    assert(nit != st.chunks.end());
    nit->second.prev = prev;
  }
  st.chunks.erase(it);  // stale avail entries are skipped on pop
  arena_.free(c_off, st.geom.chunk_bytes, st.geom.stride);
  ep_counters().chunk_recycle.inc();

  rlog = RecycleLog{};
  arena_.trace_store(&rlog, sizeof(rlog));
  arena_.persist(&rlog, sizeof(rlog));
}

UpdateLog* EPAllocator::acquire_ulog() {
  for (;;) {
    {
      common::MutexLock lk(ulog_mu_);
      const auto idx = static_cast<uint32_t>(std::countr_one(ulog_busy_));
      if (idx < kUpdateLogSlots) {
        ulog_busy_ |= (uint32_t{1} << idx);
        ep_counters().ulog_take.inc();
        return &root_->ulogs[idx];
      }
    }
    std::this_thread::yield();  // all slots in flight; extremely unlikely
  }
}

void EPAllocator::reclaim_ulog(UpdateLog* log) {
  ep_counters().ulog_reclaim.inc();
  *log = UpdateLog{};
  arena_.trace_store(log, sizeof(*log));
  arena_.persist(log, sizeof(*log));
  const auto idx = static_cast<uint32_t>(log - root_->ulogs);
  common::MutexLock lk(ulog_mu_);
  ulog_busy_ &= ~(uint32_t{1} << idx);
}

void EPAllocator::finish_recycle_log() {
  RecycleLog& rlog = root_->rlog;
  if (rlog.pcurrent == 0) return;
  const ObjType t = rlog.type();
  const uint64_t c_off = rlog.pcurrent;
  auto* c = chunk_ptr(c_off);
  if (rlog.pprev != 0) {
    // Crash somewhere around line 10: redo the unlink if still pending.
    auto* pc = chunk_ptr(rlog.pprev);
    if (pc->pnext == c_off) {
      pc->pnext = c->pnext;
      arena_.persist(&pc->pnext, sizeof(pc->pnext));
    }
  } else {
    uint64_t& head = root_->heads[static_cast<int>(t)];
    if (head == c_off) {
      // Crash before the head was updated: resume from line 6.
      head = c->pnext;
      persist_head(t);
    }
    // Otherwise either the head update already persisted (c->pnext == head)
    // or the log was written but nothing else happened with the chunk not
    // at the head; in both cases the list is consistent as-is. The chunk,
    // if unlinked, is unreachable and thus freed by the reachability scan.
  }
  rlog = RecycleLog{};
  arena_.persist(&rlog, sizeof(rlog));
}

void EPAllocator::recover_structure() {
  finish_recycle_log();

  arena_.reset_alloc_map();
  for (auto& st : types_) {
    common::MutexLock lk(st.mu);
    st.chunks.clear();
    st.avail.clear();
  }
  {
    // Recovery runs single-threaded, but ulog_busy_ is guarded state — take
    // its lock so the reset is race-free even if a caller misuses the API.
    common::MutexLock lk(ulog_mu_);
    ulog_busy_ = 0;
  }

  const uint64_t max_chunks =
      arena_.size() / sizeof(MemChunk);  // loop guard for corrupt lists
  for (int ti = 0; ti < kNumObjTypes; ++ti) {
    TypeState& st = types_[ti];
    common::MutexLock lk(st.mu);
    uint64_t prev = 0;
    uint64_t off = root_->heads[ti];
    uint64_t n = 0;
    while (off != pmem::kNullOff) {
      if (++n > max_chunks)
        throw std::runtime_error("EPAllocator: cyclic chunk list");
      arena_.mark_used(off, st.geom.chunk_bytes);
      auto* c = chunk_ptr(off);
      ChunkState& cs = st.chunks[off];
      cs.reserved = 0;
      cs.prev = prev;
      cs.in_avail = false;
      if (ChunkHdr::bitmap(c->header) != kBitmapMask)
        make_available_locked(st, off, cs);
      prev = off;
      off = c->pnext;
    }
  }
}

void EPAllocator::for_each_live(
    ObjType t, const std::function<void(uint64_t)>& f) const {
  const TypeState& st = ts(t);
  uint64_t off = root_->heads[static_cast<int>(t)];
  while (off != pmem::kNullOff) {
    const auto* c = chunk_ptr(off);
    uint64_t bm = ChunkHdr::bitmap(c->header);
    while (bm != 0) {
      const auto idx = static_cast<uint32_t>(std::countr_zero(bm));
      bm &= bm - 1;
      f(st.geom.object_off(off, idx));
    }
    off = c->pnext;
  }
}

std::vector<uint64_t> EPAllocator::chunk_offsets(ObjType t) const {
  std::vector<uint64_t> out;
  uint64_t off = root_->heads[static_cast<int>(t)];
  while (off != pmem::kNullOff) {
    out.push_back(off);
    off = chunk_ptr(off)->pnext;
  }
  return out;
}

uint64_t EPAllocator::live_objects(ObjType t) const {
  const TypeState& st = ts(t);
  common::MutexLock lk(st.mu);
  uint64_t total = 0;
  for (const auto& [off, cs] : st.chunks)
    total += static_cast<uint64_t>(
        std::popcount(ChunkHdr::bitmap(chunk_ptr(off)->header)));
  return total;
}

uint64_t EPAllocator::chunk_count(ObjType t) const {
  const TypeState& st = ts(t);
  common::MutexLock lk(st.mu);
  return st.chunks.size();
}

}  // namespace hart::epalloc
