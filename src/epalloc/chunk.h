// Memory-chunk layout of EPallocator (paper Fig. 2 / Fig. 3).
//
// A chunk is: [ 8-byte chunk header | 8-byte PNext | 56 objects ].
// The chunk header packs, in one failure-atomically updatable 64-bit word:
//   bits  0..55  object bitmap (1 = used)
//   bits 56..61  index of the next free object (allocation hint)
//   bits 62..63  full indicator: 00 = has a free object, 01 = full,
//                10/11 reserved
//
// Chunks of a given object size are allocated at a power-of-two stride and
// alignment, so MemChunkOf(object) is the object's offset masked down to the
// stride — this is how Algorithm 3/5/6 find the chunk a value or leaf
// belongs to without any per-object back-pointer.
#pragma once

#include <bit>
#include <cstdint>

#include "pmem/pmdefs.h"

namespace hart::epalloc {

inline constexpr uint32_t kObjectsPerChunk = 56;

/// Object types managed by EPallocator: tree leaf nodes plus the value
/// size classes (Section III.A.5 — the paper ships 8 B and 16 B and calls
/// out the extension to more classes; 32 B and 64 B are that extension).
enum class ObjType : uint8_t {
  kLeaf = 0,
  kValue8 = 1,
  kValue16 = 2,
  kValue32 = 3,
  kValue64 = 4,
};
inline constexpr int kNumObjTypes = 5;

/// Smallest value class that fits `len` bytes.
inline ObjType value_class_for_len(size_t len) {
  if (len <= 8) return ObjType::kValue8;
  if (len <= 16) return ObjType::kValue16;
  if (len <= 32) return ObjType::kValue32;
  return ObjType::kValue64;
}
inline uint32_t value_class_size(ObjType t) {
  return uint32_t{8} << (static_cast<uint8_t>(t) - 1);
}

inline constexpr uint64_t kBitmapMask = (uint64_t{1} << kObjectsPerChunk) - 1;

/// Full-indicator values (bits 62..63 of the header word).
enum : uint64_t { kIndAvailable = 0, kIndFull = 1 };

struct ChunkHdr {
  static uint64_t bitmap(uint64_t w) { return w & kBitmapMask; }
  static uint32_t next_free(uint64_t w) {
    return static_cast<uint32_t>((w >> 56) & 0x3f);
  }
  static uint64_t indicator(uint64_t w) { return w >> 62; }
  static bool full(uint64_t w) { return indicator(w) == kIndFull; }

  static uint64_t make(uint64_t bm, uint32_t nf, uint64_t ind) {
    return (bm & kBitmapMask) | (uint64_t{nf & 0x3f} << 56) | (ind << 62);
  }

  /// Header value after setting/clearing bit `i` in `w`, with the hint and
  /// full indicator recomputed. One 8-byte store + persist = crash-atomic.
  static uint64_t with_bit(uint64_t w, uint32_t i, bool set) {
    uint64_t bm = bitmap(w);
    if (set)
      bm |= (uint64_t{1} << i);
    else
      bm &= ~(uint64_t{1} << i);
    const bool is_full = (bm == kBitmapMask);
    const uint32_t nf =
        is_full ? 0 : static_cast<uint32_t>(std::countr_one(bm));
    return make(bm, nf, is_full ? kIndFull : kIndAvailable);
  }
};

/// The persistent chunk object. Objects follow immediately after.
struct MemChunk {
  uint64_t header;  // see ChunkHdr
  uint64_t pnext;   // arena offset of the next chunk in the list; 0 = end

  static constexpr uint64_t kObjectsOffset = 16;
};
static_assert(sizeof(MemChunk) == 16);

/// Geometry of one object type: object size, total chunk bytes, and the
/// power-of-two stride/alignment enabling MemChunkOf by masking.
struct TypeGeometry {
  uint32_t obj_size = 0;
  uint64_t chunk_bytes = 0;
  uint64_t stride = 0;

  static constexpr TypeGeometry for_obj_size(uint32_t obj_size) {
    TypeGeometry g;
    g.obj_size = obj_size;
    g.chunk_bytes = MemChunk::kObjectsOffset +
                    static_cast<uint64_t>(obj_size) * kObjectsPerChunk;
    g.stride = std::bit_ceil(g.chunk_bytes);
    return g;
  }

  [[nodiscard]] constexpr uint64_t object_off(uint64_t chunk_off,
                                              uint32_t idx) const {
    return chunk_off + MemChunk::kObjectsOffset +
           static_cast<uint64_t>(idx) * obj_size;
  }
  [[nodiscard]] constexpr uint64_t chunk_of(uint64_t obj_off) const {
    return obj_off & ~(stride - 1);
  }
  [[nodiscard]] constexpr uint32_t index_of(uint64_t obj_off) const {
    return static_cast<uint32_t>(
        (obj_off - chunk_of(obj_off) - MemChunk::kObjectsOffset) / obj_size);
  }
};

}  // namespace hart::epalloc
