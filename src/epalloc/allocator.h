// epalloc::Allocator — the v2 allocator interface (striped PM allocation).
//
// PR 10 redesign: every index tree used to hold a concrete EPAllocator by
// value; the allocator API is now an abstract interface with two
// implementations selected at arena-open time:
//
//   * EPAllocator (epalloc.h)  — the paper's single-instance allocator.
//     Every bitmap mutation persists its chunk header inline. Kept as the
//     `--legacy-alloc` ablation baseline.
//   * StripedAllocator (striped.h) — HESH/Dash-style striped sub-allocators,
//     one stripe per modeled DIMM. Volatile chunk metadata (including a DRAM
//     shadow of each chunk's free bitmap) is partitioned by a deterministic
//     chunk->stripe map, threads spread across stripes round-robin
//     (equalization) and steal when their stripe is empty, and — in batched
//     mode — chunk-header persists are deferred to flush_metadata(), which
//     the service piggybacks on the group-commit epoch fence.
//
// Interface conventions:
//   * reserve() is Status-typed: arena exhaustion is a reportable
//     kOutOfMemory, not an exception escaping the write path.
//   * flush_metadata(epoch) is the explicit persistence hook. Eager
//     implementations make it a no-op; batched implementations persist all
//     dirty chunk headers and unblock pending-free slots. Callers must
//     invoke it before declaring an epoch durable.
//   * Both implementations write byte-identical persistent images (chunk
//     lists, headers, micro-logs), so an arena created under either opens
//     under the other — see tests/alloc_parity_test.cc.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "epalloc/chunk.h"
#include "epalloc/micrologs.h"
#include "pmem/arena.h"

namespace hart::epalloc {

/// Result of probing a free leaf slot for a dangling committed value left
/// by a prior incomplete insertion or deletion (Algorithm 2, lines 12-16).
struct LeafValueRef {
  uint64_t value_off = 0;  // 0 = no dangling value
  ObjType cls = ObjType::kValue8;
};
/// Reads the (stale) leaf at `leaf_off` and reports its value reference.
using LeafProbeFn = LeafValueRef (*)(const pmem::Arena&, uint64_t leaf_off);
/// Clears the stale leaf's value pointer (object.p_value = NULL).
using LeafClearFn = void (*)(pmem::Arena&, uint64_t leaf_off);

/// Allocator construction knobs (part of Hart::Options and hartd::Config).
struct AllocOptions {
  enum class Kind : uint8_t {
    kAuto,     // striped, unless the HART_LEGACY_ALLOC env var is set
    kStriped,  // force the striped allocator
    kLegacy,   // force the paper's single-instance EPAllocator
  };
  Kind kind = Kind::kAuto;
  /// Hard ceiling on the stripe count (a modeled system has at most a few
  /// dozen DIMMs; the factory clamps here).
  static constexpr uint32_t kMaxStripes = 64;
  /// Number of stripes (modeled DIMMs). 0 = auto: min(hw threads, 8),
  /// at least 1. Ignored by the legacy allocator.
  uint32_t stripes = 0;
  /// Defer chunk-header persists to flush_metadata() (the service sets this;
  /// raw Hart embedders default to eager per-op durability). Ignored by the
  /// legacy allocator, which always persists inline.
  bool batched_meta = false;
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Algorithm 2. On kOk, *obj_off holds a reserved object's arena offset.
  /// The persistent bit is not yet set; call commit() once the object is
  /// reachable from the index, or release() to abort. kOutOfMemory when the
  /// arena cannot fit another chunk (nothing is reserved).
  virtual common::Status reserve(ObjType t, uint64_t* obj_off) = 0;

  /// Set the object's bitmap bit (e.g. Alg. 1 lines 14/18). The header
  /// store is immediate (lock-free readers see it via bit_probe); whether
  /// the *persist* is inline or deferred to flush_metadata() depends on the
  /// implementation's batching mode.
  virtual void commit(ObjType t, uint64_t obj_off) = 0;

  /// Drop a reservation without committing (abort path; no crash involved).
  virtual void release(ObjType t, uint64_t obj_off) = 0;

  /// Reset the object's bitmap bit (deletion / update paths). Does not
  /// recycle; call recycle_chunk_of() afterwards (Alg. 5/6).
  virtual void free_object(ObjType t, uint64_t obj_off) = 0;

  /// Deletion path (Alg. 5 lines 11-12 plus the p_value clear deviation,
  /// see DESIGN.md): atomically — with respect to leaf reservations —
  /// reset the leaf bit, reset the value bit, and clear the leaf's value
  /// pointer.
  virtual void free_leaf_with_value(uint64_t leaf_off, ObjType vcls,
                                    uint64_t val_off) = 0;

  // ---- EBR-deferred reuse ---------------------------------------------
  // The *_retired variants reset the persistent bit but also set a volatile
  // `retired` bit that keeps reserve() from handing the slot out again
  // until release_retired() runs after the reader grace period.

  /// free_object(), minus making the slot reusable.
  virtual void free_object_retired(ObjType t, uint64_t obj_off) = 0;

  /// free_leaf_with_value(), minus making either slot reusable.
  virtual void free_leaf_with_value_retired(uint64_t leaf_off, ObjType vcls,
                                            uint64_t val_off) = 0;

  /// Grace period over: allow reuse and run the deferred EPRecycle.
  /// Tolerates a chunk that no longer exists (freed across a recovery).
  virtual void release_retired(ObjType t, uint64_t obj_off) = 0;

  /// EPRecycle(MemChunkOf(obj)) — Algorithm 6. Unlinks and frees the chunk
  /// if it contains no used (or reserved, retired, pending) object.
  virtual void recycle_chunk_of(ObjType t, uint64_t obj_off) = 0;

  [[nodiscard]] virtual bool bit_is_set(ObjType t, uint64_t obj_off) const = 0;

  /// Lock-free read of an object's persistent bit, for concurrent readers
  /// (HART search validates the leaf bit, Algorithm 4 line 9). Header words
  /// are updated with atomic 8-byte stores, so this is race-free.
  [[nodiscard]] virtual bool bit_probe(ObjType t, uint64_t obj_off) const = 0;

  [[nodiscard]] virtual const TypeGeometry& geom(ObjType t) const = 0;
  [[nodiscard]] uint64_t chunk_of(ObjType t, uint64_t obj_off) const {
    return geom(t).chunk_of(obj_off);
  }

  // ---- batched metadata persistence -----------------------------------
  /// Persist every deferred chunk-header word and unblock pending-free
  /// slots. The service calls this once per group-commit batch, inside
  /// Hart::flush_epoch() before the epoch stamp persists; `epoch` is the
  /// epoch being made durable (informational). Eager implementations:
  /// no-op.
  virtual void flush_metadata(uint64_t epoch) = 0;

  /// Number of allocation stripes (1 for the legacy allocator).
  [[nodiscard]] virtual uint32_t stripe_count() const = 0;

  /// "legacy" or "striped" — for --print-config and stats.
  [[nodiscard]] virtual const char* kind_name() const = 0;

  // ---- update-log slot pool (Algorithm 3 uses one slot per update) ----
  virtual UpdateLog* acquire_ulog() = 0;
  /// LogReclaim: zero + persist the slot, return it to the pool. Always
  /// eager — a deferred zero-persist could replay a stale completed log.
  virtual void reclaim_ulog(UpdateLog* log) = 0;

  // ---- recovery -------------------------------------------------------
  /// Structural recovery: finish or roll back the recycle log, rebuild the
  /// arena allocation map from the reachable chunk lists (leak freedom by
  /// construction), and rebuild all volatile state — including the DRAM
  /// bitmap shadows — from the PM headers. The caller then replays its
  /// update logs and rebuilds DRAM structures (Algorithm 7).
  virtual void recover_structure() = 0;

  /// Invoke `f(obj_off)` for every object whose bit is set, in list order.
  virtual void for_each_live(ObjType t,
                             const std::function<void(uint64_t)>& f) const = 0;

  /// Snapshot of the chunk offsets of one list (parallel recovery shards
  /// the leaf list across workers by chunk).
  [[nodiscard]] virtual std::vector<uint64_t> chunk_offsets(ObjType t)
      const = 0;

  // ---- introspection (tests, stats) -----------------------------------
  [[nodiscard]] virtual uint64_t live_objects(ObjType t) const = 0;
  [[nodiscard]] virtual uint64_t chunk_count(ObjType t) const = 0;
  [[nodiscard]] virtual uint64_t list_head(ObjType t) const = 0;
};

/// Build the allocator selected by `opts` over `root` (which must live in
/// the arena header). On a fresh arena the root must be zero; on reopen
/// call recover_structure() before any use.
std::unique_ptr<Allocator> make_allocator(pmem::Arena& arena, EPRoot* root,
                                          uint32_t leaf_obj_size,
                                          LeafProbeFn probe, LeafClearFn clear,
                                          const AllocOptions& opts = {});

/// Resolve AllocOptions::Kind::kAuto against the HART_LEGACY_ALLOC
/// environment variable (set in CI ablation legs). Returns the concrete
/// kind that make_allocator would build.
AllocOptions::Kind resolve_alloc_kind(AllocOptions::Kind k);

}  // namespace hart::epalloc
