#include "epalloc/striped.h"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <thread>

#include "epalloc/epalloc.h"
#include "obs/counters.h"

namespace hart::epalloc {

namespace {
// Same registry entries as the legacy allocator (the Registry dedups by
// name), plus the striping/batching tallies the ablation compares.
struct StripedCounters {
  obs::Counter& ep_malloc;
  obs::Counter& commit;
  obs::Counter& release;
  obs::Counter& free_obj;
  obs::Counter& chunk_alloc;
  obs::Counter& chunk_recycle;
  obs::Counter& ulog_take;
  obs::Counter& ulog_reclaim;
  obs::Counter& stale_value_reclaim;
  obs::Counter& pm_meta_persists;
  obs::Counter& stripe_steals;
  obs::Counter& stripe_spawned;
  obs::Counter& meta_flush_batches;
  obs::Counter& meta_deferred;
};

StripedCounters& striped_counters() {
  auto& reg = obs::Registry::instance();
  static StripedCounters c{
      reg.counter("ep_malloc_total"),
      reg.counter("ep_commit_total"),
      reg.counter("ep_release_total"),
      reg.counter("ep_free_total"),
      reg.counter("ep_chunk_alloc_total"),
      reg.counter("ep_chunk_recycle_total"),
      reg.counter("ep_ulog_take_total"),
      reg.counter("ep_ulog_reclaim_total"),
      reg.counter("ep_stale_value_reclaim_total"),
      reg.counter("epalloc_pm_meta_persists_total"),
      reg.counter("epalloc_stripe_steals_total"),
      reg.counter("epalloc_stripe_spawned_total"),
      reg.counter("epalloc_meta_flush_batches_total"),
      reg.counter("epalloc_meta_persists_deferred_total"),
  };
  return c;
}

/// Process-wide thread ordinal for round-robin thread->stripe equalization.
uint32_t thread_ordinal() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}
}  // namespace

StripedAllocator::StripedAllocator(pmem::Arena& arena, EPRoot* root,
                                   uint32_t leaf_obj_size, LeafProbeFn probe,
                                   LeafClearFn clear, uint32_t stripes,
                                   bool batched_meta)
    : arena_(arena),
      root_(root),
      probe_(probe),
      clear_(clear),
      nstripes_(stripes == 0 ? 1 : stripes),
      batched_(batched_meta) {
  types_[static_cast<int>(ObjType::kLeaf)].geom =
      TypeGeometry::for_obj_size(leaf_obj_size);
  for (int t = 1; t < kNumObjTypes; ++t)
    types_[t].geom = TypeGeometry::for_obj_size(
        value_class_size(static_cast<ObjType>(t)));
  for (auto& st : types_)
    for (uint32_t s = 0; s < nstripes_; ++s) st.stripes.emplace_back();
  striped_counters().stripe_spawned.add(nstripes_);
}

StripedAllocator::~StripedAllocator() {
  // Best-effort: make deferred header persists durable on clean teardown
  // (the service already fences via flush_epoch; this covers bare Hart
  // embedders). A CrashPoint here means a crash test is tearing down an
  // already-crashed arena — swallow it, recovery owns the image.
  try {
    flush_metadata(0);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void StripedAllocator::persist_head(ObjType t) {
  arena_.trace_store(&root_->heads[static_cast<int>(t)], sizeof(uint64_t));
  arena_.persist(&root_->heads[static_cast<int>(t)], sizeof(uint64_t));
}

void StripedAllocator::make_available_locked(Stripe& s, uint64_t chunk_off,
                                             ChunkState& cs) {
  if (!cs.in_avail) {
    cs.in_avail = true;
    s.avail.push_back(chunk_off);
  }
}

void StripedAllocator::mark_dirty_locked(Stripe& s, uint64_t chunk_off,
                                         ChunkState& cs) {
  striped_counters().meta_deferred.inc();
  if (!cs.dirty) {
    cs.dirty = true;
    s.dirty_chunks.push_back(chunk_off);
  }
}

uint64_t StripedAllocator::new_chunk_list_locked(TypeState& st, ObjType t) {
  const TypeGeometry& g = st.geom;
  const uint64_t off = arena_.alloc(g.chunk_bytes, g.stride);
  auto* c = chunk_ptr(off);
  // Zero + persist the whole chunk before linking, exactly like the legacy
  // allocator (Alg. 2 lines 8-10): a crash before the head update leaves
  // the chunk unreachable and the recovery reachability scan frees it.
  // List links always persist eagerly, even in batched mode — recovery
  // walks them before any flush_metadata could run.
  std::memset(c, 0, g.chunk_bytes);
  c->header = ChunkHdr::make(0, 0, kIndAvailable);
  c->pnext = root_->heads[static_cast<int>(t)];
  arena_.trace_store(c, g.chunk_bytes);
  arena_.persist(c, g.chunk_bytes);
  root_->heads[static_cast<int>(t)] = off;
  persist_head(t);
  striped_counters().chunk_alloc.inc();
  return off;
}

bool StripedAllocator::try_reserve_in_stripe(TypeState& st, Stripe& s,
                                             uint64_t* obj_off) {
  common::MutexLock lk(s.mu);
  while (!s.avail.empty()) {
    const uint64_t c_off = s.avail.back();
    auto it = s.chunks.find(c_off);
    if (it == s.chunks.end()) {  // recycled; stale avail entry
      s.avail.pop_back();
      continue;
    }
    ChunkState& cs = it->second;
    // All allocation decisions read the DRAM shadow; pending-free slots
    // stay occupied until their cleared header is durable.
    const uint64_t occupied =
        cs.shadow | cs.reserved | cs.retired | cs.pending;
    const auto idx = static_cast<uint32_t>(std::countr_one(occupied));
    if (idx >= kObjectsPerChunk) {  // actually full
      cs.in_avail = false;
      s.avail.pop_back();
      continue;
    }
    cs.reserved |= (uint64_t{1} << idx);
    *obj_off = st.geom.object_off(c_off, idx);
    return true;
  }
  return false;
}

uint64_t StripedAllocator::reserve_impl(ObjType t) {
  striped_counters().ep_malloc.inc();
  TypeState& st = ts(t);
  uint64_t obj_off = 0;
  const uint32_t home = thread_ordinal() % nstripes_;
  for (uint32_t k = 0; k < nstripes_; ++k) {
    Stripe& s = st.stripes[(home + k) % nstripes_];
    if (try_reserve_in_stripe(st, s, &obj_off)) {
      if (k != 0) striped_counters().stripe_steals.inc();
      break;
    }
  }
  if (obj_off == 0) {
    // Every stripe exhausted: grow the chunk list. Which stripe the new
    // chunk lands on is decided by its offset (the deterministic map), not
    // by the allocating thread.
    uint64_t c_off = 0;
    {
      common::MutexLock hlk(st.head_mu);
      c_off = new_chunk_list_locked(st, t);
    }
    Stripe& s = stripe_for(st, c_off);
    common::MutexLock lk(s.mu);
    ChunkState& cs = s.chunks[c_off];
    cs.reserved = 1;  // slot 0 goes to this thread
    obj_off = st.geom.object_off(c_off, 0);
    make_available_locked(s, c_off, cs);
  }

  // PMCheck: the slot may be re-used space whose previous content was
  // persisted; the new owner's first flush must not count as redundant.
  arena_.note_object_alloc(obj_off, st.geom.obj_size);

  // Algorithm 2 lines 12-16: a free leaf slot may still reference a value
  // committed by a prior incomplete insertion or deletion; reclaim it so
  // the value object becomes allocatable again.
  if (t == ObjType::kLeaf && probe_ != nullptr) {
    const LeafValueRef ref = probe_(arena_, obj_off);
    if (ref.value_off != 0 && bit_is_set(ref.cls, ref.value_off)) {
      striped_counters().stale_value_reclaim.inc();
      free_object(ref.cls, ref.value_off);
      recycle_chunk_of(ref.cls, ref.value_off);
      clear_(arena_, obj_off);
    }
  }
  return obj_off;
}

common::Status StripedAllocator::reserve(ObjType t, uint64_t* obj_off) {
  try {
    *obj_off = reserve_impl(t);
  } catch (const std::bad_alloc&) {
    return common::Status::kOutOfMemory;
  }
  return common::Status::kOk;
}

void StripedAllocator::commit(ObjType t, uint64_t obj_off) {
  striped_counters().commit.inc();
  TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  Stripe& s = stripe_for(st, c_off);
  common::MutexLock lk(s.mu);
  auto* c = chunk_ptr(c_off);
  // The header *store* is immediate either way — lock-free bit_probe
  // readers must see committed bits; only the persist may be deferred.
  std::atomic_ref<uint64_t>(c->header)
      .store(ChunkHdr::with_bit(c->header, idx, true),
             std::memory_order_release);
  arena_.trace_store(&c->header, sizeof(c->header));
  auto it = s.chunks.find(c_off);
  assert(it != s.chunks.end());
  ChunkState& cs = it->second;
  cs.shadow |= (uint64_t{1} << idx);
  cs.reserved &= ~(uint64_t{1} << idx);
  if (batched_) {
    mark_dirty_locked(s, c_off, cs);
  } else {
    arena_.persist(&c->header, sizeof(c->header));
    striped_counters().pm_meta_persists.inc();
  }
}

void StripedAllocator::release(ObjType t, uint64_t obj_off) {
  striped_counters().release.inc();
  TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  Stripe& s = stripe_for(st, c_off);
  common::MutexLock lk(s.mu);
  auto it = s.chunks.find(c_off);
  assert(it != s.chunks.end());
  it->second.reserved &= ~(uint64_t{1} << idx);
  make_available_locked(s, c_off, it->second);
}

void StripedAllocator::free_slot_locked(TypeState& st, Stripe& s,
                                        uint64_t obj_off, bool retire) {
  striped_counters().free_obj.inc();
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  auto* c = chunk_ptr(c_off);
  assert((ChunkHdr::bitmap(c->header) >> idx) & 1);
  std::atomic_ref<uint64_t>(c->header)
      .store(ChunkHdr::with_bit(c->header, idx, false),
             std::memory_order_release);
  arena_.trace_store(&c->header, sizeof(c->header));
  auto it = s.chunks.find(c_off);
  assert(it != s.chunks.end());
  ChunkState& cs = it->second;
  cs.shadow &= ~(uint64_t{1} << idx);
  if (retire) {
    // No make_available: the retired bit keeps reserve() away until
    // release_retired() runs after the EBR grace period.
    cs.retired |= (uint64_t{1} << idx);
  }
  if (batched_) {
    // The slot is not reusable until the cleared header is durable: if a
    // new object moved in first and we crashed, the stale set bit would
    // resurrect a half-overwritten slot. flush_metadata lifts the block.
    cs.pending |= (uint64_t{1} << idx);
    mark_dirty_locked(s, c_off, cs);
  } else {
    arena_.persist(&c->header, sizeof(c->header));
    striped_counters().pm_meta_persists.inc();
  }
  if (!retire) make_available_locked(s, c_off, cs);
}

void StripedAllocator::free_object(ObjType t, uint64_t obj_off) {
  TypeState& st = ts(t);
  Stripe& s = stripe_for(st, st.geom.chunk_of(obj_off));
  common::MutexLock lk(s.mu);
  free_slot_locked(st, s, obj_off, /*retire=*/false);
}

void StripedAllocator::free_object_retired(ObjType t, uint64_t obj_off) {
  TypeState& st = ts(t);
  Stripe& s = stripe_for(st, st.geom.chunk_of(obj_off));
  common::MutexLock lk(s.mu);
  free_slot_locked(st, s, obj_off, /*retire=*/true);
}

void StripedAllocator::free_leaf_with_value(uint64_t leaf_off, ObjType vcls,
                                            uint64_t val_off) {
  TypeState& leaf_st = ts(ObjType::kLeaf);
  // Holding the freed leaf's *stripe* mutex throughout blocks exactly the
  // reservations that could race the stale-value probe against this clear
  // (a slot can only be re-reserved under its own stripe's mutex).
  Stripe& ls = stripe_for(leaf_st, leaf_st.geom.chunk_of(leaf_off));
  common::MutexLock lk(ls.mu);
  free_slot_locked(leaf_st, ls, leaf_off, /*retire=*/false);
  {
    TypeState& val_st = ts(vcls);
    Stripe& vs = stripe_for(val_st, val_st.geom.chunk_of(val_off));
    common::MutexLock vlk(vs.mu);
    free_slot_locked(val_st, vs, val_off, /*retire=*/false);
  }
  clear_(arena_, leaf_off);
}

void StripedAllocator::free_leaf_with_value_retired(uint64_t leaf_off,
                                                    ObjType vcls,
                                                    uint64_t val_off) {
  TypeState& leaf_st = ts(ObjType::kLeaf);
  Stripe& ls = stripe_for(leaf_st, leaf_st.geom.chunk_of(leaf_off));
  common::MutexLock lk(ls.mu);
  free_slot_locked(leaf_st, ls, leaf_off, /*retire=*/true);
  {
    TypeState& val_st = ts(vcls);
    Stripe& vs = stripe_for(val_st, val_st.geom.chunk_of(val_off));
    common::MutexLock vlk(vs.mu);
    free_slot_locked(val_st, vs, val_off, /*retire=*/true);
  }
  // Clear the leaf's dangling value pointer; optimistic readers treat
  // p_value == 0 as "deleted", and the slot cannot be re-reserved until
  // release_retired() (and, in batched mode, the next flush_metadata).
  clear_(arena_, leaf_off);
}

void StripedAllocator::release_retired(ObjType t, uint64_t obj_off) {
  TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  {
    Stripe& s = stripe_for(st, c_off);
    common::MutexLock lk(s.mu);
    auto it = s.chunks.find(c_off);
    if (it == s.chunks.end()) return;  // chunk freed across a recovery
    const uint32_t idx = st.geom.index_of(obj_off);
    it->second.retired &= ~(uint64_t{1} << idx);
    make_available_locked(s, c_off, it->second);
  }
  // The free skipped EPRecycle; run it now that the slot is reusable.
  recycle_chunk_of(t, obj_off);
}

bool StripedAllocator::bit_is_set(ObjType t, uint64_t obj_off) const {
  const TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  const uint32_t idx = st.geom.index_of(obj_off);
  Stripe& s = stripe_for(st, c_off);
  common::MutexLock lk(s.mu);
  auto it = s.chunks.find(c_off);
  if (it == s.chunks.end()) return false;
  return (it->second.shadow >> idx) & 1;  // DRAM shadow, no PM read
}

bool StripedAllocator::bit_probe(ObjType t, uint64_t obj_off) const {
  const TypeGeometry& g = geom(t);
  auto* c = chunk_ptr(g.chunk_of(obj_off));
  const uint64_t w =
      std::atomic_ref<uint64_t>(c->header).load(std::memory_order_acquire);
  return (ChunkHdr::bitmap(w) >> g.index_of(obj_off)) & 1;
}

void StripedAllocator::recycle_chunk_of(ObjType t, uint64_t obj_off) {
  TypeState& st = ts(t);
  const uint64_t c_off = st.geom.chunk_of(obj_off);
  // Lock order: head_mu (list stability, including the prev-walk below)
  // -> stripe mu -> rlog_mu_.
  common::MutexLock hlk(st.head_mu);
  Stripe& s = stripe_for(st, c_off);
  common::MutexLock lk(s.mu);
  auto it = s.chunks.find(c_off);
  if (it == s.chunks.end()) return;  // already recycled
  ChunkState& cs = it->second;
  // Algorithm 6 lines 1-2: only an entirely empty chunk is recycled.
  // Retired and pending-free slots count as occupied.
  if (cs.shadow != 0 || cs.reserved != 0 || cs.retired != 0 ||
      cs.pending != 0)
    return;
  auto* c = chunk_ptr(c_off);
  assert(ChunkHdr::bitmap(c->header) == 0);
  if (cs.dirty) {
    // Make the all-clear header durable before unlinking; the stale entry
    // in dirty_chunks is skipped by the dirty-flag check at flush time.
    arena_.persist(&c->header, sizeof(c->header));
    striped_counters().pm_meta_persists.inc();
    cs.dirty = false;
  }

  // No volatile prev pointer in striped mode: chunk-list topology is
  // guarded by head_mu, so walking for the predecessor here is safe and
  // keeps the per-chunk DRAM state smaller.
  uint64_t prev = 0;
  if (root_->heads[static_cast<int>(t)] != c_off) {
    uint64_t p = root_->heads[static_cast<int>(t)];
    while (p != pmem::kNullOff && chunk_ptr(p)->pnext != c_off)
      p = chunk_ptr(p)->pnext;
    assert(p != pmem::kNullOff);
    if (p == pmem::kNullOff) return;  // not linked (corrupt list); bail
    prev = p;
  }

  common::MutexLock rlk(rlog_mu_);
  RecycleLog& rlog = root_->rlog;
  rlog.type_plus1 = static_cast<uint64_t>(t) + 1;
  rlog.pcurrent = c_off;
  arena_.trace_store(&rlog, sizeof(rlog));
  arena_.persist(&rlog, sizeof(rlog));

  const uint64_t next = c->pnext;
  if (prev == 0) {
    root_->heads[static_cast<int>(t)] = next;
    persist_head(t);
  } else {
    rlog.pprev = prev;
    arena_.trace_store(&rlog.pprev, sizeof(rlog.pprev));
    arena_.persist(&rlog.pprev, sizeof(rlog.pprev));
    auto* pc = chunk_ptr(prev);
    pc->pnext = next;
    arena_.trace_store(&pc->pnext, sizeof(pc->pnext));
    arena_.persist(&pc->pnext, sizeof(pc->pnext));
  }
  s.chunks.erase(it);  // stale avail entries are skipped on pop
  arena_.free(c_off, st.geom.chunk_bytes, st.geom.stride);
  striped_counters().chunk_recycle.inc();

  rlog = RecycleLog{};
  arena_.trace_store(&rlog, sizeof(rlog));
  arena_.persist(&rlog, sizeof(rlog));
}

void StripedAllocator::flush_metadata(uint64_t /*epoch*/) {
  if (!batched_) return;
  bool any = false;
  for (auto& st : types_) {
    for (auto& s : st.stripes) {
      common::MutexLock lk(s.mu);
      if (s.dirty_chunks.empty()) continue;
      for (const uint64_t c_off : s.dirty_chunks) {
        auto it = s.chunks.find(c_off);
        // Stale entry (chunk recycled, possibly even re-spawned clean).
        if (it == s.chunks.end() || !it->second.dirty) continue;
        arena_.persist(&chunk_ptr(c_off)->header,
                       sizeof(chunk_ptr(c_off)->header));
        striped_counters().pm_meta_persists.inc();
        any = true;
        ChunkState& cs = it->second;
        cs.dirty = false;
        cs.pending = 0;  // cleared bits are durable: slots reusable
        if ((cs.shadow | cs.reserved | cs.retired) != kBitmapMask)
          make_available_locked(s, c_off, cs);
      }
      s.dirty_chunks.clear();
    }
  }
  if (any) striped_counters().meta_flush_batches.inc();
}

UpdateLog* StripedAllocator::acquire_ulog() {
  for (;;) {
    {
      common::MutexLock lk(ulog_mu_);
      const auto idx = static_cast<uint32_t>(std::countr_one(ulog_busy_));
      if (idx < kUpdateLogSlots) {
        ulog_busy_ |= (uint32_t{1} << idx);
        striped_counters().ulog_take.inc();
        return &root_->ulogs[idx];
      }
    }
    std::this_thread::yield();  // all slots in flight; extremely unlikely
  }
}

void StripedAllocator::reclaim_ulog(UpdateLog* log) {
  // Always eager: a deferred zero-persist could leave a completed log
  // durable, and recovery would replay it against recycled objects.
  striped_counters().ulog_reclaim.inc();
  *log = UpdateLog{};
  arena_.trace_store(log, sizeof(*log));
  arena_.persist(log, sizeof(*log));
  const auto idx = static_cast<uint32_t>(log - root_->ulogs);
  common::MutexLock lk(ulog_mu_);
  ulog_busy_ &= ~(uint32_t{1} << idx);
}

void StripedAllocator::finish_recycle_log() {
  RecycleLog& rlog = root_->rlog;
  if (rlog.pcurrent == 0) return;
  const ObjType t = rlog.type();
  const uint64_t c_off = rlog.pcurrent;
  auto* c = chunk_ptr(c_off);
  if (rlog.pprev != 0) {
    // Crash somewhere around Alg. 6 line 10: redo the unlink if pending.
    auto* pc = chunk_ptr(rlog.pprev);
    if (pc->pnext == c_off) {
      pc->pnext = c->pnext;
      arena_.persist(&pc->pnext, sizeof(pc->pnext));
    }
  } else {
    uint64_t& head = root_->heads[static_cast<int>(t)];
    if (head == c_off) {
      head = c->pnext;
      persist_head(t);
    }
  }
  rlog = RecycleLog{};
  arena_.persist(&rlog, sizeof(rlog));
}

void StripedAllocator::recover_structure() {
  finish_recycle_log();

  arena_.reset_alloc_map();
  for (auto& st : types_) {
    for (auto& s : st.stripes) {
      common::MutexLock lk(s.mu);
      s.chunks.clear();
      s.avail.clear();
      s.dirty_chunks.clear();
    }
  }
  {
    common::MutexLock lk(ulog_mu_);
    ulog_busy_ = 0;
  }

  const uint64_t max_chunks =
      arena_.size() / sizeof(MemChunk);  // loop guard for corrupt lists
  for (int ti = 0; ti < kNumObjTypes; ++ti) {
    TypeState& st = types_[ti];
    common::MutexLock hlk(st.head_mu);
    uint64_t off = root_->heads[ti];
    uint64_t n = 0;
    while (off != pmem::kNullOff) {
      if (++n > max_chunks)
        throw std::runtime_error("StripedAllocator: cyclic chunk list");
      arena_.mark_used(off, st.geom.chunk_bytes);
      auto* c = chunk_ptr(off);
      Stripe& s = stripe_for(st, off);
      common::MutexLock lk(s.mu);
      ChunkState& cs = s.chunks[off];
      // DRAM shadows rebuild straight from the durable PM headers; the
      // caller's micro-log replay then applies its fix-ups through the
      // normal commit/free paths, which keep the shadows in sync.
      cs.shadow = ChunkHdr::bitmap(c->header);
      cs.reserved = 0;
      cs.retired = 0;
      cs.pending = 0;
      cs.dirty = false;
      cs.in_avail = false;
      if (cs.shadow != kBitmapMask) make_available_locked(s, off, cs);
      off = c->pnext;
    }
  }
}

void StripedAllocator::for_each_live(
    ObjType t, const std::function<void(uint64_t)>& f) const {
  const TypeState& st = ts(t);
  uint64_t off = root_->heads[static_cast<int>(t)];
  while (off != pmem::kNullOff) {
    const auto* c = chunk_ptr(off);
    uint64_t bm = ChunkHdr::bitmap(c->header);
    while (bm != 0) {
      const auto idx = static_cast<uint32_t>(std::countr_zero(bm));
      bm &= bm - 1;
      f(st.geom.object_off(off, idx));
    }
    off = c->pnext;
  }
}

std::vector<uint64_t> StripedAllocator::chunk_offsets(ObjType t) const {
  std::vector<uint64_t> out;
  uint64_t off = root_->heads[static_cast<int>(t)];
  while (off != pmem::kNullOff) {
    out.push_back(off);
    off = chunk_ptr(off)->pnext;
  }
  return out;
}

uint64_t StripedAllocator::live_objects(ObjType t) const {
  const TypeState& st = ts(t);
  uint64_t total = 0;
  for (const auto& s : st.stripes) {
    common::MutexLock lk(s.mu);
    for (const auto& [off, cs] : s.chunks)
      total += static_cast<uint64_t>(std::popcount(cs.shadow));
  }
  return total;
}

uint64_t StripedAllocator::chunk_count(ObjType t) const {
  const TypeState& st = ts(t);
  uint64_t total = 0;
  for (const auto& s : st.stripes) {
    common::MutexLock lk(s.mu);
    total += s.chunks.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

AllocOptions::Kind resolve_alloc_kind(AllocOptions::Kind k) {
  if (k != AllocOptions::Kind::kAuto) return k;
  const char* env = std::getenv("HART_LEGACY_ALLOC");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0'))
    return AllocOptions::Kind::kLegacy;
  return AllocOptions::Kind::kStriped;
}

std::unique_ptr<Allocator> make_allocator(pmem::Arena& arena, EPRoot* root,
                                          uint32_t leaf_obj_size,
                                          LeafProbeFn probe, LeafClearFn clear,
                                          const AllocOptions& opts) {
  if (resolve_alloc_kind(opts.kind) == AllocOptions::Kind::kLegacy)
    return std::make_unique<EPAllocator>(arena, root, leaf_obj_size, probe,
                                         clear);
  uint32_t n = opts.stripes;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 4 : (hw > 8 ? 8 : hw);
  }
  if (n > AllocOptions::kMaxStripes) n = AllocOptions::kMaxStripes;
  return std::make_unique<StripedAllocator>(arena, root, leaf_obj_size, probe,
                                            clear, n, opts.batched_meta);
}

}  // namespace hart::epalloc
