// Persistent micro-logs of EPallocator (paper Section III.A.6, Algorithms 3
// and 6). They live in the index's root object inside the arena header.
//
// Deviation from the paper, documented in DESIGN.md: UpdateLog carries one
// extra `meta` word recording the new value's length and the old/new value
// size classes. The paper's three-pointer log is sufficient only when all
// values share one size class; with two classes (8 B / 16 B) the recovery
// path must know which class each pointer belongs to and what length to
// restore into the leaf.
#pragma once

#include <cstdint>

#include "epalloc/chunk.h"

namespace hart::epalloc {

/// Update log (Algorithm 3). A log slot is in use iff pleaf != 0.
/// Field write/persist order during an update:
///   pleaf -> poldv -> (new value written) -> meta -> pnewv -> ... work ...
///   -> all four zeroed (LogReclaim).
struct UpdateLog {
  uint64_t pleaf = 0;  // leaf being updated
  uint64_t poldv = 0;  // old value object
  uint64_t pnewv = 0;  // new value object (validity gate for redo)
  uint64_t meta = 0;   // packed: new_len | old_class<<8 | new_class<<16

  static uint64_t pack_meta(uint32_t new_len, ObjType old_cls,
                            ObjType new_cls) {
    return uint64_t{new_len} | (uint64_t{static_cast<uint8_t>(old_cls)} << 8) |
           (uint64_t{static_cast<uint8_t>(new_cls)} << 16);
  }
  [[nodiscard]] uint32_t new_len() const {
    return static_cast<uint32_t>(meta & 0xff);
  }
  [[nodiscard]] ObjType old_class() const {
    return static_cast<ObjType>((meta >> 8) & 0xff);
  }
  [[nodiscard]] ObjType new_class() const {
    return static_cast<ObjType>((meta >> 16) & 0xff);
  }
};
static_assert(sizeof(UpdateLog) == 32);

/// Recycle log (Algorithm 6). In use iff pcurrent != 0. `type_plus1`
/// records which chunk list is being modified (written with pcurrent).
struct RecycleLog {
  uint64_t pprev = 0;
  uint64_t pcurrent = 0;
  uint64_t type_plus1 = 0;

  [[nodiscard]] ObjType type() const {
    return static_cast<ObjType>(type_plus1 - 1);
  }
};
static_assert(sizeof(RecycleLog) == 24);

/// Number of update-log slots. Bounds the number of concurrently in-flight
/// update operations (one per writer thread).
inline constexpr uint32_t kUpdateLogSlots = 32;

/// Persistent EPallocator state embedded in the index root: one chunk-list
/// head per object type, the recycle log, and the update-log slot pool.
struct EPRoot {
  uint64_t heads[kNumObjTypes];
  RecycleLog rlog;
  UpdateLog ulogs[kUpdateLogSlots];
};

}  // namespace hart::epalloc
