// StripedAllocator — striped, DRAM-shadowed implementation of the
// epalloc::Allocator interface (PR 10; the HESH/Dash recipe from ROADMAP
// item 2).
//
// The persistent format is EXACTLY the legacy EPAllocator's: per-type
// chunk lists rooted in EPRoot, 8-byte failure-atomic chunk headers, the
// shared recycle/update micro-logs. What changes is the volatile side and
// the persistence schedule:
//
//  * Striping. Volatile chunk metadata is partitioned into S stripes
//    (modeled per-DIMM sub-allocators) by a deterministic map,
//    stripe(chunk) = (chunk_off / stride) mod S — no ownership table, so
//    any thread can find a chunk's stripe lock-free. Each stripe has its
//    own mutex, chunk map and free list, so writers on different stripes
//    never contend.
//  * Thread equalization. Each thread gets a round-robin home stripe and
//    allocates there first, stealing from (home+k) mod S only when its
//    stripe is out of space (counted in epalloc_stripe_steals_total).
//  * DRAM shadow bitmaps. Every chunk's occupancy bitmap is mirrored in
//    its ChunkState (`shadow`), kept exactly equal to the PM header word
//    — header *stores* remain immediate 8-byte atomic stores so lock-free
//    bit_probe readers are unaffected — and all allocation decisions read
//    the shadow, never PM.
//  * Batched metadata persistence (batched_meta). Chunk-header persists
//    are deferred: mutated headers are marked dirty and flushed by
//    flush_metadata(), which Hart::flush_epoch() invokes just before the
//    epoch stamp persists — the group-commit fence the service already
//    pays. Freed slots stay `pending` (not reusable) until their cleared
//    header is durable; otherwise a crash could resurrect a
//    half-overwritten slot under a stale set bit. Chunk-list links,
//    micro-logs and object payloads keep their eager persist schedule —
//    only the per-op bitmap flush is batched away.
//
// Crash model in batched mode: commits/frees since the last fence may not
// be durable — identical to losing the unacked tail of a group-commit
// batch, which the service already tolerates. Each header is one atomic
// 8-byte word, so recovery always sees a consistent (possibly slightly
// stale) bitmap and the standard Algorithm 7 walk + stale-value probe
// reclaim anything orphaned.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "epalloc/allocator.h"
#include "epalloc/chunk.h"
#include "epalloc/micrologs.h"
#include "pmem/arena.h"

namespace hart::epalloc {

class StripedAllocator final : public Allocator {
 public:
  /// `root` must live in the arena header (persistent). On a fresh arena it
  /// must be zero; on reopen call recover_structure() before any use.
  /// `stripes` must be >= 1 (make_allocator resolves 0 = auto).
  StripedAllocator(pmem::Arena& arena, EPRoot* root, uint32_t leaf_obj_size,
                   LeafProbeFn probe, LeafClearFn clear, uint32_t stripes,
                   bool batched_meta);
  ~StripedAllocator() override;

  StripedAllocator(const StripedAllocator&) = delete;
  StripedAllocator& operator=(const StripedAllocator&) = delete;

  common::Status reserve(ObjType t, uint64_t* obj_off) override;
  void commit(ObjType t, uint64_t obj_off) override;
  void release(ObjType t, uint64_t obj_off) override;
  void free_object(ObjType t, uint64_t obj_off) override;
  void free_leaf_with_value(uint64_t leaf_off, ObjType vcls,
                            uint64_t val_off) override;
  void free_object_retired(ObjType t, uint64_t obj_off) override;
  void free_leaf_with_value_retired(uint64_t leaf_off, ObjType vcls,
                                    uint64_t val_off) override;
  void release_retired(ObjType t, uint64_t obj_off) override;
  void recycle_chunk_of(ObjType t, uint64_t obj_off) override;

  [[nodiscard]] bool bit_is_set(ObjType t, uint64_t obj_off) const override;
  [[nodiscard]] bool bit_probe(ObjType t, uint64_t obj_off) const override;
  [[nodiscard]] const TypeGeometry& geom(ObjType t) const override {
    return types_[static_cast<int>(t)].geom;
  }

  void flush_metadata(uint64_t epoch) override;
  [[nodiscard]] uint32_t stripe_count() const override { return nstripes_; }
  [[nodiscard]] const char* kind_name() const override { return "striped"; }

  UpdateLog* acquire_ulog() override;
  void reclaim_ulog(UpdateLog* log) override;

  void recover_structure() override;
  void for_each_live(ObjType t,
                     const std::function<void(uint64_t)>& f) const override;
  [[nodiscard]] std::vector<uint64_t> chunk_offsets(ObjType t) const override;

  [[nodiscard]] uint64_t live_objects(ObjType t) const override;
  [[nodiscard]] uint64_t chunk_count(ObjType t) const override;
  [[nodiscard]] uint64_t list_head(ObjType t) const override {
    return root_->heads[static_cast<int>(t)];
  }

 private:
  struct ChunkState {
    uint64_t shadow = 0;    // DRAM mirror of the PM header's bitmap
    uint64_t reserved = 0;  // volatile reservation bitmap
    uint64_t retired = 0;   // volatile: freed, awaiting EBR grace period
    uint64_t pending = 0;   // freed, but the cleared header is not yet
                            // durable; blocks reuse until flush_metadata
    bool dirty = false;     // header persist deferred to flush_metadata
    bool in_avail = false;
  };
  struct Stripe {
    mutable common::Mutex mu;
    std::unordered_map<uint64_t, ChunkState> chunks GUARDED_BY(mu);
    // Chunks that may have a reservable slot.
    std::vector<uint64_t> avail GUARDED_BY(mu);
    // Chunks with a deferred header persist (entries may go stale when a
    // chunk is recycled; the dirty flag is authoritative).
    std::vector<uint64_t> dirty_chunks GUARDED_BY(mu);
  };
  struct TypeState {
    TypeGeometry geom;  // immutable after construction; not guarded
    /// Serializes chunk-list mutations (link a new chunk, unlink on
    /// recycle) and the volatile->persistent head word. Lock order:
    /// head_mu -> any stripe mu -> rlog_mu_.
    mutable common::Mutex head_mu;
    std::deque<Stripe> stripes;  // deque: Stripe is not movable
  };

  TypeState& ts(ObjType t) { return types_[static_cast<int>(t)]; }
  const TypeState& ts(ObjType t) const {
    return types_[static_cast<int>(t)];
  }
  MemChunk* chunk_ptr(uint64_t off) const {
    return arena_.ptr<MemChunk>(off);
  }
  Stripe& stripe_for(const TypeState& st, uint64_t chunk_off) const {
    return const_cast<TypeState&>(st)
        .stripes[(chunk_off / st.geom.stride) % nstripes_];
  }

  /// ep_malloc semantics; throws std::bad_alloc on arena exhaustion.
  uint64_t reserve_impl(ObjType t);
  bool try_reserve_in_stripe(TypeState& st, Stripe& s, uint64_t* obj_off);
  uint64_t new_chunk_list_locked(TypeState& st, ObjType t)
      REQUIRES(st.head_mu);
  void free_slot_locked(TypeState& st, Stripe& s, uint64_t obj_off,
                        bool retire) REQUIRES(s.mu);
  void make_available_locked(Stripe& s, uint64_t chunk_off, ChunkState& cs)
      REQUIRES(s.mu);
  void mark_dirty_locked(Stripe& s, uint64_t chunk_off, ChunkState& cs)
      REQUIRES(s.mu);
  void persist_head(ObjType t);

  void finish_recycle_log();

  pmem::Arena& arena_;
  EPRoot* root_;
  LeafProbeFn probe_;
  LeafClearFn clear_;
  const uint32_t nstripes_;
  const bool batched_;
  TypeState types_[kNumObjTypes];
  common::Mutex ulog_mu_;
  // Bitmask over kUpdateLogSlots (<= 32).
  uint32_t ulog_busy_ GUARDED_BY(ulog_mu_) = 0;
  /// Serializes all use of the single shared persistent RecycleLog (same
  /// argument as the legacy allocator — see epalloc.h). Acquired after a
  /// stripe mutex, never the other way around.
  common::Mutex rlog_mu_;
};

}  // namespace hart::epalloc
