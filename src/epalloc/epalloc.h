// EPallocator — the paper's enhanced persistent memory allocator
// (Section III.A.4-6, Algorithms 2 and 6).
//
// Instead of persisting allocator metadata per object, EPallocator hands out
// objects from 56-object chunks whose single 8-byte header word (bitmap +
// hint + full indicator) is updated failure-atomically. Chunks of each type
// form a singly linked persistent list rooted in EPRoot, which is both the
// recovery index (Algorithm 7 walks the leaf list) and the leak-prevention
// device: an object's bit is set only *after* the object is fully linked
// into the index, so a crash in between leaves the slot free.
//
// Two-phase allocation: ep_malloc() returns a *reserved* object (volatile
// reservation, so concurrent writers on different ARTs never collide), and
// commit() sets the persistent bit. Reservations evaporate at a crash —
// which is exactly the paper's leak-freedom argument.
//
// This is the *legacy* implementation of the epalloc::Allocator interface
// (allocator.h): one instance per arena, every header mutation persisted
// inline. The striped allocator (striped.h) is the default since PR 10;
// this one stays selectable via --legacy-alloc as the ablation baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "epalloc/allocator.h"
#include "epalloc/chunk.h"
#include "epalloc/micrologs.h"
#include "pmem/arena.h"

namespace hart::epalloc {

class EPAllocator final : public Allocator {
 public:
  // Pre-interface spellings (the probe/clear types moved to namespace scope
  // with the Allocator split; existing embedders qualify them here).
  using LeafValueRef = epalloc::LeafValueRef;
  using LeafProbeFn = epalloc::LeafProbeFn;
  using LeafClearFn = epalloc::LeafClearFn;

  /// `root` must live in the arena header (persistent). On a fresh arena it
  /// must be zero; on reopen call recover_structure() before any use.
  EPAllocator(pmem::Arena& arena, EPRoot* root, uint32_t leaf_obj_size,
              LeafProbeFn probe, LeafClearFn clear);

  EPAllocator(const EPAllocator&) = delete;
  EPAllocator& operator=(const EPAllocator&) = delete;

  /// Algorithm 2. Returns the arena offset of a reserved object. The
  /// persistent bit is not yet set; call commit() once the object is
  /// reachable from the index, or release() to abort. Throws std::bad_alloc
  /// on arena exhaustion (reserve() is the non-throwing spelling).
  uint64_t ep_malloc(ObjType t);

  /// ep_malloc with the arena-exhaustion path surfaced as kOutOfMemory.
  common::Status reserve(ObjType t, uint64_t* obj_off) override;

  /// Set and persist the object's bitmap bit (e.g. Alg. 1 lines 14/18).
  void commit(ObjType t, uint64_t obj_off) override;

  /// Drop a reservation without committing (abort path; no crash involved).
  void release(ObjType t, uint64_t obj_off) override;

  /// Reset and persist the object's bitmap bit (deletion / update paths).
  /// Does not recycle; call recycle_chunk_of() afterwards (Alg. 5/6).
  void free_object(ObjType t, uint64_t obj_off) override;

  /// Deletion path (Alg. 5 lines 11-12 plus the p_value clear deviation,
  /// see DESIGN.md): atomically — with respect to leaf reservations —
  /// reset the leaf bit, reset the value bit, and clear the leaf's value
  /// pointer. Holding the leaf mutex across all three prevents another
  /// writer from reserving the just-freed leaf slot and racing the
  /// stale-value probe against this clear.
  void free_leaf_with_value(uint64_t leaf_off, ObjType vcls,
                            uint64_t val_off) override;

  // ---- EBR-deferred reuse ---------------------------------------------
  // Lock-free readers may still be dereferencing a slot when its owner
  // frees it. The *_retired variants reset the persistent bit eagerly
  // (the delete/update is durable immediately — crash recovery is
  // unchanged) but also set a volatile `retired` bit that keeps ep_malloc
  // from handing the slot out again. Once the reader grace period has
  // elapsed (EBR callback) release_retired() clears the retired bit,
  // makes the chunk allocatable and attempts the deferred chunk recycle.

  /// free_object(), minus making the slot reusable.
  void free_object_retired(ObjType t, uint64_t obj_off) override;

  /// free_leaf_with_value(), minus making either slot reusable.
  void free_leaf_with_value_retired(uint64_t leaf_off, ObjType vcls,
                                    uint64_t val_off) override;

  /// Grace period over: allow reuse and run the deferred EPRecycle.
  /// Tolerates a chunk that no longer exists (freed across a recovery).
  void release_retired(ObjType t, uint64_t obj_off) override;

  /// EPRecycle(MemChunkOf(obj)) — Algorithm 6. Unlinks and frees the chunk
  /// if it contains no used (or reserved) object.
  void recycle_chunk_of(ObjType t, uint64_t obj_off) override;

  [[nodiscard]] bool bit_is_set(ObjType t, uint64_t obj_off) const override;

  /// Lock-free read of an object's persistent bit, for concurrent readers
  /// (HART search validates the leaf bit, Algorithm 4 line 9). Header words
  /// are updated with atomic 8-byte stores, so this is race-free.
  [[nodiscard]] bool bit_probe(ObjType t, uint64_t obj_off) const override;
  [[nodiscard]] const TypeGeometry& geom(ObjType t) const override {
    return types_[static_cast<int>(t)].geom;
  }

  /// Every header persist here is inline, so there is nothing to flush.
  void flush_metadata(uint64_t /*epoch*/) override {}
  [[nodiscard]] uint32_t stripe_count() const override { return 1; }
  [[nodiscard]] const char* kind_name() const override { return "legacy"; }

  // ---- update-log slot pool (Algorithm 3 uses one slot per update) ----
  UpdateLog* acquire_ulog() override;
  /// LogReclaim: zero + persist the slot, return it to the pool.
  void reclaim_ulog(UpdateLog* log) override;

  // ---- recovery -------------------------------------------------------
  /// Structural recovery: finish or roll back the recycle log, rebuild the
  /// arena allocation map from the reachable chunk lists (leak freedom by
  /// construction), and rebuild all volatile state. The caller then replays
  /// its update logs and rebuilds DRAM structures (Algorithm 7).
  void recover_structure() override;

  /// Invoke `f(obj_off)` for every object whose bit is set, in list order.
  void for_each_live(ObjType t,
                     const std::function<void(uint64_t)>& f) const override;

  /// Snapshot of the chunk offsets of one list (parallel recovery shards
  /// the leaf list across workers by chunk).
  [[nodiscard]] std::vector<uint64_t> chunk_offsets(ObjType t) const override;

  // ---- introspection (tests, stats) -----------------------------------
  [[nodiscard]] uint64_t live_objects(ObjType t) const override;
  [[nodiscard]] uint64_t chunk_count(ObjType t) const override;
  [[nodiscard]] uint64_t list_head(ObjType t) const override {
    return root_->heads[static_cast<int>(t)];
  }

 private:
  struct ChunkState {
    uint64_t reserved = 0;  // volatile reservation bitmap
    uint64_t retired = 0;   // volatile: freed, awaiting EBR grace period
    uint64_t prev = 0;      // volatile back-pointer in the chunk list
    bool in_avail = false;
  };
  struct TypeState {
    TypeGeometry geom;  // immutable after construction; not guarded
    mutable common::Mutex mu;
    std::unordered_map<uint64_t, ChunkState> chunks GUARDED_BY(mu);
    // Chunks that may have a free slot.
    std::vector<uint64_t> avail GUARDED_BY(mu);
  };

  TypeState& ts(ObjType t) { return types_[static_cast<int>(t)]; }
  const TypeState& ts(ObjType t) const {
    return types_[static_cast<int>(t)];
  }
  MemChunk* chunk_ptr(uint64_t off) const {
    return arena_.ptr<MemChunk>(off);
  }
  uint64_t new_chunk_locked(TypeState& st, ObjType t) REQUIRES(st.mu);
  void free_object_locked(TypeState& st, uint64_t obj_off) REQUIRES(st.mu);
  void free_object_retired_locked(TypeState& st, uint64_t obj_off)
      REQUIRES(st.mu);
  void make_available_locked(TypeState& st, uint64_t chunk_off,
                             ChunkState& cs) REQUIRES(st.mu);
  void persist_head(ObjType t);
  void finish_recycle_log();

  pmem::Arena& arena_;
  EPRoot* root_;
  LeafProbeFn probe_;
  LeafClearFn clear_;
  TypeState types_[kNumObjTypes];
  common::Mutex ulog_mu_;
  // Bitmask over kUpdateLogSlots (<= 32).
  uint32_t ulog_busy_ GUARDED_BY(ulog_mu_) = 0;
  /// Serializes all use of the single shared RecycleLog. The per-type mutex
  /// is not enough: chunks of *different* object types can be recycled
  /// concurrently, and without this lock both writers would interleave
  /// their stores into the same log words — a PM race that could make
  /// recovery unlink a chunk with the wrong type's geometry. Acquired
  /// after a TypeState mutex, never the other way around. Guards a PM
  /// structure (root_->rlog), which TSA cannot express as GUARDED_BY; the
  /// discipline is documented here and enforced by review + PMCheck.
  common::Mutex rlog_mu_;
};

}  // namespace hart::epalloc
