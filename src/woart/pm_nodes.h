// Persistent ART node layouts shared by the two PM-resident radix-tree
// baselines, WOART and ART+CoW (Lee et al., FAST 2017, reimplemented like
// the HART paper did — Section IV.A).
//
// All four adaptive node types live in PM and reference children by arena
// offset (bit 0 tags a leaf). The 8-byte header word packs the node's
// depth, logical prefix length and the first 6 prefix bytes, so WOART can
// update a compressed path with a single failure-atomic store; ART+CoW
// uses the same layout but replaces nodes wholesale.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/index.h"
#include "pmem/arena.h"

namespace hart::pmart {

inline constexpr uint32_t kStoredPrefix = 6;

/// Header word codec: byte 0 = depth, byte 1 = prefix_len, bytes 2..7 =
/// first 6 prefix bytes. Updated with one 8-byte store + persist.
struct PWord {
  static uint64_t make(uint8_t depth, uint8_t prefix_len,
                       const uint8_t* bytes, uint32_t nbytes) {
    uint64_t w = uint64_t{depth} | (uint64_t{prefix_len} << 8);
    for (uint32_t i = 0; i < nbytes && i < kStoredPrefix; ++i)
      w |= uint64_t{bytes[i]} << (16 + 8 * i);
    return w;
  }
  static uint8_t depth(uint64_t w) { return static_cast<uint8_t>(w); }
  static uint8_t prefix_len(uint64_t w) {
    return static_cast<uint8_t>(w >> 8);
  }
  static uint8_t prefix_byte(uint64_t w, uint32_t i) {
    return static_cast<uint8_t>(w >> (16 + 8 * i));
  }
};

enum PNodeType : uint8_t {
  kPNode4 = 1,
  kPNode16 = 2,
  kPNode48 = 3,
  kPNode256 = 4,
};

/// Child reference: arena offset with bit 0 tagging a leaf (all
/// allocations are >= 8-byte aligned). 0 = empty slot.
struct ChildRef {
  static uint64_t leaf(uint64_t off) { return off | 1; }
  static uint64_t node(uint64_t off) { return off; }
  static bool is_leaf(uint64_t r) { return (r & 1) != 0; }
  static uint64_t off(uint64_t r) { return r & ~uint64_t{1}; }
};

struct PNode {
  uint64_t pword;  // depth + prefix (failure-atomic update unit)
  uint8_t type;
  uint8_t pad0;
  uint16_t bitmap16;  // NODE16 slot-validity commit word
  uint8_t pad1[4];
};
static_assert(sizeof(PNode) == 16);

struct PNode4 : PNode {
  uint8_t keys[4];
  uint8_t pad2[4];
  uint64_t children[4];  // non-zero = valid slot (commit by pointer store)
};
static_assert(sizeof(PNode4) == 56);

struct PNode16 : PNode {
  uint8_t keys[16];
  uint64_t children[16];
};
static_assert(sizeof(PNode16) == 160);

struct PNode48 : PNode {
  uint8_t child_index[256];  // 0xFF = empty (1-byte atomic commit)
  uint64_t children[48];
};
static_assert(sizeof(PNode48) == 656);

struct PNode256 : PNode {
  uint64_t children[256];  // pointer store is the atomic commit
};
static_assert(sizeof(PNode256) == 2064);

inline constexpr uint8_t kEmpty48 = 0xFF;

inline size_t pnode_size(uint8_t type) {
  switch (type) {
    case kPNode4: return sizeof(PNode4);
    case kPNode16: return sizeof(PNode16);
    case kPNode48: return sizeof(PNode48);
    default: return sizeof(PNode256);
  }
}

/// Persistent leaf shared by WOART and ART+CoW: complete key plus an
/// out-of-leaf value pointer (the paper gives all three ART-based trees the
/// same update mechanism, Section IV.B "Update").
struct PmLeaf {
  uint64_t p_value;  // offset of a PmValue
  char key[common::kMaxKeyLen];
  uint8_t key_len;
  uint8_t pad[7];
};
static_assert(sizeof(PmLeaf) == 40);

/// Out-of-leaf value object: 1-byte length + payload, allocated per object
/// from the raw PM allocator (no EPallocator in the baselines — that is
/// HART's advantage).
struct PmValue {
  uint8_t len;
  char data[common::kMaxValueLen];
};

inline uint64_t alloc_value(pmem::Arena& a, std::string_view v) {
  const uint64_t off = a.alloc(1 + v.size(), 8);
  auto* pv = a.ptr<PmValue>(off);
  pv->len = static_cast<uint8_t>(v.size());
  std::memcpy(pv->data, v.data(), v.size());
  a.persist(pv, 1 + v.size());
  return off;
}

inline void free_value(pmem::Arena& a, uint64_t off) {
  const auto* pv = a.ptr<PmValue>(off);
  a.free(off, 1 + pv->len, 8);
}

inline uint64_t alloc_leaf(pmem::Arena& a, std::string_view key,
                           uint64_t value_off) {
  const uint64_t off = a.alloc(sizeof(PmLeaf), 8);
  auto* l = a.ptr<PmLeaf>(off);
  l->p_value = value_off;
  std::memcpy(l->key, key.data(), key.size());
  l->key_len = static_cast<uint8_t>(key.size());
  a.persist(l, sizeof(PmLeaf));
  return off;
}

}  // namespace hart::pmart
