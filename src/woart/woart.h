// WOART — Write Optimal Adaptive Radix Tree (Lee et al., FAST 2017),
// reimplemented as the HART paper did for its evaluation.
//
// Every node lives in PM. Consistency comes from ordered 8-byte
// failure-atomic stores instead of logging:
//  * NODE4 commits a slot by the child-pointer store (key byte written and
//    persisted first);
//  * NODE16 commits through a 16-bit validity bitmap;
//  * NODE48 commits through the 1-byte child_index entry;
//  * NODE256 commits through the pointer store itself;
//  * node growth/shrink replaces the node copy-on-write and commits by
//    swinging the parent pointer;
//  * path-compression changes use the WORT depth-embedded header: the
//    8-byte header word carries (depth, prefix_len, first 6 prefix bytes),
//    and a node observed at a different traversal depth than its header
//    records is stale and is repaired in place from a descendant leaf.
//
// Unlike HART, WOART has no allocator-side leak prevention (the HART paper
// calls this out) and keeps internal nodes in PM, paying the PM write
// latency on every structural change. Single-writer, like the paper's
// evaluation of it.
#pragma once

#include <atomic>
#include <string_view>

#include "common/index.h"
#include "pmem/arena.h"
#include "woart/pm_nodes.h"

namespace hart::pmart {

class Woart final : public common::Index {
 public:
  explicit Woart(pmem::Arena& arena);

  common::Status insert(std::string_view key, std::string_view value) override;
  common::Status search(std::string_view key, std::string* out) const override;
  common::Status update(std::string_view key, std::string_view value) override;
  common::Status remove(std::string_view key) override;
  size_t range(std::string_view lo, size_t limit,
               std::vector<std::pair<std::string, std::string>>* out)
      const override;
  size_t size() const override { return count_; }
  common::MemoryUsage memory_usage() const override;
  const char* name() const override { return "WOART"; }

  /// Re-establish the volatile allocation map (and count) by walking the
  /// tree from the persistent root. Called automatically when the
  /// constructor finds an existing tree.
  void recover();

 private:
  struct Root {
    uint64_t magic;
    uint64_t root;  // ChildRef of the root (0 = empty)
  };

  // Traversal helpers (see pm_nodes.h for the layouts).
  PNode* node_at(uint64_t ref) const { return arena_.ptr<PNode>(ChildRef::off(ref)); }
  PmLeaf* leaf_at(uint64_t ref) const {
    return arena_.ptr<PmLeaf>(ChildRef::off(ref));
  }
  const PmLeaf* min_leaf(const PNode* n) const;
  void repair_prefix(PNode* n, uint32_t depth);
  uint32_t prefix_mismatch(const PNode* n, std::string_view key,
                           uint32_t depth) const;
  uint64_t* find_child_slot(PNode* n, uint32_t byte) const;
  void add_child(uint64_t* slot, PNode* n, uint32_t byte,
                 uint64_t child);
  uint32_t valid_children(const PNode* n) const;
  template <class F>
  bool for_each_child_sorted(const PNode* n, F&& f) const;
  uint64_t only_child(const PNode* n) const;

  bool insert_rec(uint64_t* slot, std::string_view key,
                  std::string_view value, uint32_t depth);
  bool remove_rec(uint64_t* slot, std::string_view key, uint32_t depth);
  void remove_from_node(uint64_t* slot, PNode* n, uint32_t byte);
  void shrink_if_needed(uint64_t* slot, PNode* n);

  template <class F>
  bool walk_all(uint64_t ref, F& fn) const;
  template <class F>
  bool walk_from(uint64_t ref, std::string_view lo, uint32_t depth,
                 F& fn) const;

  void mark_reachable(uint64_t ref);
  void free_subtree(uint64_t ref);

  void persist(const void* p, size_t n) const { arena_.persist(p, n); }

  pmem::Arena& arena_;
  Root* root_;
  size_t count_ = 0;
};

}  // namespace hart::pmart
