// WORT — Write Optimal Radix Tree (Lee et al., FAST 2017), the third
// radix-tree variant of that paper. The HART paper discusses WORT but
// benchmarks WOART (which beat it in most of FAST'17's results); WORT is
// provided here for completeness and for the radix-granularity ablation.
//
// WORT is a *non-adaptive* radix tree over 4-bit key chunks: every node is
// a fixed array of 16 children indexed directly by the nibble, so an
// insertion into an existing node is a single failure-atomic 8-byte
// pointer store — no bitmaps, no slot arrays, no node growth. Path
// compression uses the same depth-embedded 8-byte header as our WOART
// (the original WORT trick): a node observed at a different depth than
// its header records is stale and repaired in place from a descendant
// leaf. All nodes live in PM. Single-writer.
#pragma once

#include <string_view>

#include "common/index.h"
#include "pmem/arena.h"
#include "woart/pm_nodes.h"

namespace hart::pmart {

/// WORT node: header word + 16 direct children (one per nibble).
struct WortNode {
  uint64_t pword;          // depth/prefix codec below (nibble units)
  uint64_t children[16];   // ChildRef; 0 = empty; the store is the commit
};
static_assert(sizeof(WortNode) == 136);

/// Header codec in *nibble* units: byte 0 = depth, byte 1 = prefix_len,
/// bytes 2..7 = up to 12 stored prefix nibbles (4 bits each).
struct WortPWord {
  static constexpr uint32_t kStoredNibbles = 12;

  static uint64_t make(uint8_t depth, uint8_t plen, const uint8_t* nibbles,
                       uint32_t n) {
    uint64_t w = uint64_t{depth} | (uint64_t{plen} << 8);
    for (uint32_t i = 0; i < n && i < kStoredNibbles; ++i)
      w |= static_cast<uint64_t>(nibbles[i] & 0xf) << (16 + 4 * i);
    return w;
  }
  static uint8_t depth(uint64_t w) { return static_cast<uint8_t>(w); }
  static uint8_t prefix_len(uint64_t w) {
    return static_cast<uint8_t>(w >> 8);
  }
  static uint8_t nibble(uint64_t w, uint32_t i) {
    return static_cast<uint8_t>((w >> (16 + 4 * i)) & 0xf);
  }
};

class Wort final : public common::Index {
 public:
  explicit Wort(pmem::Arena& arena);

  common::Status insert(std::string_view key, std::string_view value) override;
  common::Status search(std::string_view key, std::string* out) const override;
  common::Status update(std::string_view key, std::string_view value) override;
  common::Status remove(std::string_view key) override;
  size_t range(std::string_view lo, size_t limit,
               std::vector<std::pair<std::string, std::string>>* out)
      const override;
  size_t size() const override { return count_; }
  common::MemoryUsage memory_usage() const override;
  const char* name() const override { return "WORT"; }

  void recover();

 private:
  struct Root {
    uint64_t magic;
    uint64_t root;
  };

  WortNode* node_at(uint64_t ref) const {
    return arena_.ptr<WortNode>(ChildRef::off(ref));
  }
  PmLeaf* leaf_at(uint64_t ref) const {
    return arena_.ptr<PmLeaf>(ChildRef::off(ref));
  }
  const PmLeaf* min_leaf(const WortNode* n) const;
  void repair_prefix(WortNode* n, uint32_t depth);
  uint32_t prefix_mismatch(const WortNode* n, std::string_view key,
                           uint32_t depth) const;
  uint64_t new_node(uint32_t depth, uint32_t plen,
                    const uint8_t* nibbles, uint32_t n);

  bool insert_rec(uint64_t* slot, std::string_view key,
                  std::string_view value, uint32_t depth);
  bool remove_rec(uint64_t* slot, std::string_view key, uint32_t depth);

  template <class F>
  bool walk_all(uint64_t ref, F& fn) const;
  template <class F>
  bool walk_from(uint64_t ref, std::string_view lo, uint32_t depth,
                 F& fn) const;
  void mark_reachable(uint64_t ref);

  void persist(const void* p, size_t n) const { arena_.persist(p, n); }

  pmem::Arena& arena_;
  Root* root_;
  size_t count_ = 0;
};

}  // namespace hart::pmart
