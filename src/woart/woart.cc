#include "woart/woart.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace hart::pmart {

namespace {
constexpr uint64_t kWoartMagic = 0x574f4152'54000001ULL;

uint32_t key_at(std::string_view k, uint32_t d) {
  return d < k.size() ? static_cast<uint8_t>(k[d]) : 0u;
}

std::string_view leaf_key(const PmLeaf* l) {
  return {l->key, l->key_len};
}
}  // namespace

Woart::Woart(pmem::Arena& arena)
    : arena_(arena), root_(arena.root<Root>()) {
  if (root_->magic == kWoartMagic) {
    recover();
  } else {
    *root_ = Root{};
    root_->magic = kWoartMagic;
    persist(root_, sizeof(*root_));
  }
}

// ---- prefix handling (WORT depth-embedded headers) ------------------------

const PmLeaf* Woart::min_leaf(const PNode* n) const {
  for (;;) {
    uint64_t child = 0;
    switch (n->type) {
      case kPNode4: {
        const auto* p = static_cast<const PNode4*>(n);
        for (int i = 0; i < 4 && child == 0; ++i) child = p->children[i];
        break;
      }
      case kPNode16: {
        const auto* p = static_cast<const PNode16*>(n);
        for (int i = 0; i < 16 && child == 0; ++i)
          if (p->bitmap16 & (1u << i)) child = p->children[i];
        break;
      }
      case kPNode48: {
        const auto* p = static_cast<const PNode48*>(n);
        for (int b = 0; b < 256 && child == 0; ++b)
          if (p->child_index[b] != kEmpty48)
            child = p->children[p->child_index[b]];
        break;
      }
      default: {
        const auto* p = static_cast<const PNode256*>(n);
        for (int b = 0; b < 256 && child == 0; ++b) child = p->children[b];
        break;
      }
    }
    assert(child != 0 && "internal node with no children");
    arena_.pm_read(&child, sizeof(child));
    if (ChildRef::is_leaf(child)) {
      const auto* l = leaf_at(child);
      arena_.pm_read(l, sizeof(PmLeaf));
      return l;
    }
    n = node_at(child);
    arena_.pm_read(n, sizeof(PNode));
  }
}

/// A node whose header depth differs from the traversal depth is stale
/// (left behind by a crash between a parent-pointer swing and the header
/// update, or by a lazy path collapse). The prefix *end* position
/// (hdr.depth + hdr.prefix_len) is invariant; rewrite the header in place
/// with one atomic store.
void Woart::repair_prefix(PNode* n, uint32_t depth) {
  const uint64_t w = n->pword;
  if (PWord::depth(w) == depth) return;
  const uint32_t end = PWord::depth(w) + PWord::prefix_len(w);
  assert(end >= depth);
  const uint32_t len = end - depth;
  uint8_t bytes[kStoredPrefix] = {0};
  if (len > 0) {
    const std::string_view lk = leaf_key(min_leaf(n));
    for (uint32_t i = 0; i < kStoredPrefix && i < len; ++i)
      bytes[i] = static_cast<uint8_t>(key_at(lk, depth + i));
  }
  n->pword = PWord::make(static_cast<uint8_t>(depth),
                         static_cast<uint8_t>(len), bytes, len);
  persist(&n->pword, sizeof(n->pword));
}

uint32_t Woart::prefix_mismatch(const PNode* n, std::string_view key,
                                uint32_t depth) const {
  const uint64_t w = n->pword;
  assert(PWord::depth(w) == depth && "caller must repair first");
  const uint32_t len = PWord::prefix_len(w);
  uint32_t i = 0;
  for (; i < len && i < kStoredPrefix; ++i)
    if (PWord::prefix_byte(w, i) != key_at(key, depth + i)) return i;
  if (len > kStoredPrefix) {
    const std::string_view lk = leaf_key(min_leaf(n));
    for (; i < len; ++i)
      if (key_at(lk, depth + i) != key_at(key, depth + i)) return i;
  }
  return len;
}

// ---- child access ----------------------------------------------------------

uint64_t* Woart::find_child_slot(PNode* n, uint32_t byte) const {
  arena_.pm_read(n, sizeof(PNode));
  switch (n->type) {
    case kPNode4: {
      auto* p = static_cast<PNode4*>(n);
      arena_.pm_read(p->keys, sizeof(p->keys));
      for (int i = 0; i < 4; ++i)
        if (p->children[i] != 0 && p->keys[i] == byte)
          return &p->children[i];
      return nullptr;
    }
    case kPNode16: {
      auto* p = static_cast<PNode16*>(n);
      arena_.pm_read(p->keys, sizeof(p->keys));
      for (int i = 0; i < 16; ++i)
        if ((p->bitmap16 & (1u << i)) && p->keys[i] == byte)
          return &p->children[i];
      return nullptr;
    }
    case kPNode48: {
      auto* p = static_cast<PNode48*>(n);
      arena_.pm_read(&p->child_index[byte], 1);
      const uint8_t slot = p->child_index[byte];
      return slot == kEmpty48 ? nullptr : &p->children[slot];
    }
    default: {
      auto* p = static_cast<PNode256*>(n);
      arena_.pm_read(&p->children[byte], 8);
      return p->children[byte] != 0 ? &p->children[byte] : nullptr;
    }
  }
}

uint32_t Woart::valid_children(const PNode* n) const {
  switch (n->type) {
    case kPNode4: {
      const auto* p = static_cast<const PNode4*>(n);
      uint32_t c = 0;
      for (int i = 0; i < 4; ++i) c += p->children[i] != 0;
      return c;
    }
    case kPNode16:
      return std::popcount(static_cast<const PNode16*>(n)->bitmap16);
    case kPNode48: {
      const auto* p = static_cast<const PNode48*>(n);
      uint32_t c = 0;
      for (int b = 0; b < 256; ++b) c += p->child_index[b] != kEmpty48;
      return c;
    }
    default: {
      const auto* p = static_cast<const PNode256*>(n);
      uint32_t c = 0;
      for (int b = 0; b < 256; ++b) c += p->children[b] != 0;
      return c;
    }
  }
}

uint64_t Woart::only_child(const PNode* n) const {
  uint64_t found = 0;
  switch (n->type) {
    case kPNode4: {
      const auto* p = static_cast<const PNode4*>(n);
      for (int i = 0; i < 4; ++i)
        if (p->children[i] != 0) found = p->children[i];
      return found;
    }
    case kPNode16: {
      const auto* p = static_cast<const PNode16*>(n);
      for (int i = 0; i < 16; ++i)
        if (p->bitmap16 & (1u << i)) found = p->children[i];
      return found;
    }
    case kPNode48: {
      const auto* p = static_cast<const PNode48*>(n);
      for (int b = 0; b < 256; ++b)
        if (p->child_index[b] != kEmpty48)
          found = p->children[p->child_index[b]];
      return found;
    }
    default: {
      const auto* p = static_cast<const PNode256*>(n);
      for (int b = 0; b < 256; ++b)
        if (p->children[b] != 0) found = p->children[b];
      return found;
    }
  }
}

template <class F>
bool Woart::for_each_child_sorted(const PNode* n, F&& f) const {
  switch (n->type) {
    case kPNode4:
    case kPNode16: {
      // Keys are unsorted in PM (slot-append order): gather and sort.
      const int cap = n->type == kPNode4 ? 4 : 16;
      const uint8_t* keys = n->type == kPNode4
                                ? static_cast<const PNode4*>(n)->keys
                                : static_cast<const PNode16*>(n)->keys;
      const uint64_t* children =
          n->type == kPNode4 ? static_cast<const PNode4*>(n)->children
                             : static_cast<const PNode16*>(n)->children;
      std::pair<uint8_t, uint64_t> entries[16];
      int cnt = 0;
      for (int i = 0; i < cap; ++i) {
        const bool valid =
            n->type == kPNode4
                ? children[i] != 0
                : (static_cast<const PNode16*>(n)->bitmap16 & (1u << i)) != 0;
        if (valid) entries[cnt++] = {keys[i], children[i]};
      }
      std::sort(entries, entries + cnt);
      for (int i = 0; i < cnt; ++i)
        if (!f(entries[i].first, entries[i].second)) return false;
      return true;
    }
    case kPNode48: {
      const auto* p = static_cast<const PNode48*>(n);
      for (int b = 0; b < 256; ++b)
        if (p->child_index[b] != kEmpty48)
          if (!f(static_cast<uint8_t>(b), p->children[p->child_index[b]]))
            return false;
      return true;
    }
    default: {
      const auto* p = static_cast<const PNode256*>(n);
      for (int b = 0; b < 256; ++b)
        if (p->children[b] != 0)
          if (!f(static_cast<uint8_t>(b), p->children[b])) return false;
      return true;
    }
  }
}

// ---- add child / grow (copy-on-write node replacement) --------------------

void Woart::add_child(uint64_t* slot, PNode* n, uint32_t byte,
                      uint64_t child) {
  switch (n->type) {
    case kPNode4: {
      auto* p = static_cast<PNode4*>(n);
      for (int i = 0; i < 4; ++i) {
        if (p->children[i] == 0) {
          // WOART NODE4 protocol: key byte first, pointer store commits.
          p->keys[i] = static_cast<uint8_t>(byte);
          persist(&p->keys[i], 1);
          p->children[i] = child;
          persist(&p->children[i], 8);
          return;
        }
      }
      // Grow 4 -> 16 (CoW: build, persist, swing parent pointer).
      const uint64_t goff = arena_.alloc(sizeof(PNode16), 64);
      auto* g = arena_.ptr<PNode16>(goff);
      std::memset(g, 0, sizeof(*g));
      g->type = kPNode16;
      g->pword = p->pword;
      int j = 0;
      for (int i = 0; i < 4; ++i) {
        g->keys[j] = p->keys[i];
        g->children[j] = p->children[i];
        g->bitmap16 |= (1u << j);
        ++j;
      }
      g->keys[j] = static_cast<uint8_t>(byte);
      g->children[j] = child;
      g->bitmap16 |= (1u << j);
      persist(g, sizeof(*g));
      *slot = ChildRef::node(goff);
      persist(slot, 8);
      arena_.free(arena_.off(p), sizeof(PNode4), 64);
      return;
    }
    case kPNode16: {
      auto* p = static_cast<PNode16*>(n);
      if (std::popcount(p->bitmap16) < 16) {
        const int i = std::countr_one(p->bitmap16);
        p->keys[i] = static_cast<uint8_t>(byte);
        p->children[i] = child;
        persist(&p->keys[i], 1);
        persist(&p->children[i], 8);
        p->bitmap16 |= (1u << i);  // validity bitmap commits the slot
        persist(&p->bitmap16, 2);
        return;
      }
      const uint64_t goff = arena_.alloc(sizeof(PNode48), 64);
      auto* g = arena_.ptr<PNode48>(goff);
      std::memset(g, 0, sizeof(*g));
      g->type = kPNode48;
      g->pword = p->pword;
      std::memset(g->child_index, kEmpty48, 256);
      for (int i = 0; i < 16; ++i) {
        g->children[i] = p->children[i];
        g->child_index[p->keys[i]] = static_cast<uint8_t>(i);
      }
      g->children[16] = child;
      g->child_index[byte] = 16;
      persist(g, sizeof(*g));
      *slot = ChildRef::node(goff);
      persist(slot, 8);
      arena_.free(arena_.off(p), sizeof(PNode16), 64);
      return;
    }
    case kPNode48: {
      auto* p = static_cast<PNode48*>(n);
      // Used slots are defined by child_index (the commit authority).
      bool used[48] = {};
      uint32_t cnt = 0;
      for (int b = 0; b < 256; ++b)
        if (p->child_index[b] != kEmpty48) {
          used[p->child_index[b]] = true;
          ++cnt;
        }
      if (cnt < 48) {
        int s = 0;
        while (used[s]) ++s;
        p->children[s] = child;
        persist(&p->children[s], 8);
        p->child_index[byte] = static_cast<uint8_t>(s);  // 1-byte commit
        persist(&p->child_index[byte], 1);
        return;
      }
      const uint64_t goff = arena_.alloc(sizeof(PNode256), 64);
      auto* g = arena_.ptr<PNode256>(goff);
      std::memset(g, 0, sizeof(*g));
      g->type = kPNode256;
      g->pword = p->pword;
      for (int b = 0; b < 256; ++b)
        if (p->child_index[b] != kEmpty48)
          g->children[b] = p->children[p->child_index[b]];
      g->children[byte] = child;
      persist(g, sizeof(*g));
      *slot = ChildRef::node(goff);
      persist(slot, 8);
      arena_.free(arena_.off(p), sizeof(PNode48), 64);
      return;
    }
    default: {
      auto* p = static_cast<PNode256*>(n);
      p->children[byte] = child;  // 8-byte store is the atomic commit
      persist(&p->children[byte], 8);
      return;
    }
  }
}

// ---- insert ---------------------------------------------------------------

common::Status Woart::insert(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  const bool inserted = insert_rec(&root_->root, key, value, 0);
  if (inserted) ++count_;
  return inserted ? common::Status::kInserted : common::Status::kUpdated;
}

bool Woart::insert_rec(uint64_t* slot, std::string_view key,
                       std::string_view value, uint32_t depth) {
  const uint64_t ref = *slot;
  if (ref == 0) {
    const uint64_t voff = alloc_value(arena_, value);
    const uint64_t loff = alloc_leaf(arena_, key, voff);
    *slot = ChildRef::leaf(loff);  // pointer store commits the insert
    persist(slot, 8);
    return true;
  }

  if (ChildRef::is_leaf(ref)) {
    PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    const std::string_view ek = leaf_key(l);
    if (ek == key) {  // value update, out-of-place pointer swing
      const uint64_t old = l->p_value;
      l->p_value = alloc_value(arena_, value);
      persist(&l->p_value, 8);
      free_value(arena_, old);
      return false;
    }
    // Split under a new NODE4 at the common prefix.
    uint32_t lcp = 0;
    while (key_at(key, depth + lcp) == key_at(ek, depth + lcp)) ++lcp;
    const uint64_t voff = alloc_value(arena_, value);
    const uint64_t loff = alloc_leaf(arena_, key, voff);
    const uint64_t noff = arena_.alloc(sizeof(PNode4), 64);
    auto* nn = arena_.ptr<PNode4>(noff);
    std::memset(nn, 0, sizeof(*nn));
    nn->type = kPNode4;
    uint8_t pbytes[kStoredPrefix];
    for (uint32_t i = 0; i < kStoredPrefix && i < lcp; ++i)
      pbytes[i] = static_cast<uint8_t>(key_at(key, depth + i));
    nn->pword = PWord::make(static_cast<uint8_t>(depth),
                            static_cast<uint8_t>(lcp), pbytes, lcp);
    nn->keys[0] = static_cast<uint8_t>(key_at(key, depth + lcp));
    nn->children[0] = ChildRef::leaf(loff);
    nn->keys[1] = static_cast<uint8_t>(key_at(ek, depth + lcp));
    nn->children[1] = ref;
    persist(nn, sizeof(*nn));
    *slot = ChildRef::node(noff);  // atomic commit
    persist(slot, 8);
    return true;
  }

  PNode* n = node_at(ref);
  arena_.pm_read(n, sizeof(PNode));
  repair_prefix(n, depth);
  const uint32_t plen = PWord::prefix_len(n->pword);
  if (plen > 0) {
    const uint32_t p = prefix_mismatch(n, key, depth);
    if (p < plen) {
      // Split the compressed path: new NODE4 parent commits via the
      // parent-pointer swing; n's header is fixed afterwards (a crash in
      // between leaves a depth mismatch that repair_prefix handles).
      const uint64_t voff = alloc_value(arena_, value);
      const uint64_t loff = alloc_leaf(arena_, key, voff);
      const std::string_view lk = leaf_key(min_leaf(n));
      const uint64_t noff = arena_.alloc(sizeof(PNode4), 64);
      auto* nn = arena_.ptr<PNode4>(noff);
      std::memset(nn, 0, sizeof(*nn));
      nn->type = kPNode4;
      uint8_t pbytes[kStoredPrefix];
      for (uint32_t i = 0; i < kStoredPrefix && i < p; ++i)
        pbytes[i] = static_cast<uint8_t>(key_at(key, depth + i));
      nn->pword = PWord::make(static_cast<uint8_t>(depth),
                              static_cast<uint8_t>(p), pbytes, p);
      nn->keys[0] = static_cast<uint8_t>(key_at(key, depth + p));
      nn->children[0] = ChildRef::leaf(loff);
      nn->keys[1] = static_cast<uint8_t>(key_at(lk, depth + p));
      nn->children[1] = ref;
      persist(nn, sizeof(*nn));
      *slot = ChildRef::node(noff);
      persist(slot, 8);
      // Now shorten n's prefix (depth moves past the split byte).
      repair_prefix(n, depth + p + 1);
      return true;
    }
    depth += plen;
  }

  const uint32_t byte = key_at(key, depth);
  if (uint64_t* child = find_child_slot(n, byte); child != nullptr)
    return insert_rec(child, key, value, depth + 1);

  const uint64_t voff = alloc_value(arena_, value);
  const uint64_t loff = alloc_leaf(arena_, key, voff);
  add_child(slot, n, byte, ChildRef::leaf(loff));
  return true;
}

// ---- search ----------------------------------------------------------------

common::Status Woart::search(std::string_view key, std::string* out) const {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  uint64_t ref = root_->root;
  uint32_t depth = 0;
  while (ref != 0) {
    if (ChildRef::is_leaf(ref)) {
      const PmLeaf* l = leaf_at(ref);
      arena_.pm_read(l, sizeof(PmLeaf));
      if (leaf_key(l) != key) return common::Status::kNotFound;
      const auto* v = arena_.ptr<PmValue>(l->p_value);
      arena_.pm_read(v, 1 + v->len);
      if (out != nullptr) out->assign(v->data, v->len);
      return common::Status::kOk;
    }
    PNode* n = node_at(ref);
    arena_.pm_read(n, sizeof(PNode));
    // Optimistic skip: derive the effective prefix length from the
    // depth-embedded header (stale headers included); the final leaf
    // comparison rejects false positives.
    const uint64_t w = n->pword;
    const uint32_t end = PWord::depth(w) + PWord::prefix_len(w);
    depth = end;
    uint64_t* child = find_child_slot(n, key_at(key, depth));
    if (child == nullptr) return common::Status::kNotFound;
    ref = *child;
    ++depth;
  }
  return common::Status::kNotFound;
}

common::Status Woart::update(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  uint64_t ref = root_->root;
  uint32_t depth = 0;
  while (ref != 0 && !ChildRef::is_leaf(ref)) {
    PNode* n = node_at(ref);
    arena_.pm_read(n, sizeof(PNode));
    const uint64_t w = n->pword;
    depth = PWord::depth(w) + PWord::prefix_len(w);
    uint64_t* child = find_child_slot(n, key_at(key, depth));
    if (child == nullptr) return common::Status::kNotFound;
    ref = *child;
    ++depth;
  }
  if (ref == 0) return common::Status::kNotFound;
  PmLeaf* l = leaf_at(ref);
  arena_.pm_read(l, sizeof(PmLeaf));
  if (leaf_key(l) != key) return common::Status::kNotFound;
  const uint64_t old = l->p_value;
  l->p_value = alloc_value(arena_, value);
  persist(&l->p_value, 8);  // the 8-byte swing is the commit (no log)
  free_value(arena_, old);
  return common::Status::kOk;
}

// ---- remove ----------------------------------------------------------------

common::Status Woart::remove(std::string_view key) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  const bool removed = remove_rec(&root_->root, key, 0);
  if (removed) --count_;
  return removed ? common::Status::kOk : common::Status::kNotFound;
}

void Woart::remove_from_node(uint64_t* slot, PNode* n, uint32_t byte) {
  switch (n->type) {
    case kPNode4: {
      auto* p = static_cast<PNode4*>(n);
      for (int i = 0; i < 4; ++i)
        if (p->children[i] != 0 && p->keys[i] == byte) {
          p->children[i] = 0;  // atomic un-commit
          persist(&p->children[i], 8);
          break;
        }
      if (valid_children(n) == 1) {
        // Path collapse: swing the parent directly to the only child; a
        // stale child header is repaired lazily (depth-embedded headers).
        const uint64_t child = only_child(n);
        *slot = child;
        persist(slot, 8);
        arena_.free(arena_.off(n), sizeof(PNode4), 64);
      }
      return;
    }
    case kPNode16: {
      auto* p = static_cast<PNode16*>(n);
      for (int i = 0; i < 16; ++i)
        if ((p->bitmap16 & (1u << i)) && p->keys[i] == byte) {
          p->bitmap16 &= static_cast<uint16_t>(~(1u << i));
          persist(&p->bitmap16, 2);
          break;
        }
      shrink_if_needed(slot, n);
      return;
    }
    case kPNode48: {
      auto* p = static_cast<PNode48*>(n);
      p->child_index[byte] = kEmpty48;  // 1-byte atomic un-commit
      persist(&p->child_index[byte], 1);
      shrink_if_needed(slot, n);
      return;
    }
    default: {
      auto* p = static_cast<PNode256*>(n);
      p->children[byte] = 0;
      persist(&p->children[byte], 8);
      shrink_if_needed(slot, n);
      return;
    }
  }
}

void Woart::shrink_if_needed(uint64_t* slot, PNode* n) {
  const uint32_t cnt = valid_children(n);
  if (n->type == kPNode16 && cnt == 1) {
    const uint64_t child = only_child(n);
    *slot = child;
    persist(slot, 8);
    arena_.free(arena_.off(n), sizeof(PNode16), 64);
    return;
  }
  if (n->type == kPNode16 && cnt == 3) {
    auto* p = static_cast<PNode16*>(n);
    const uint64_t soff = arena_.alloc(sizeof(PNode4), 64);
    auto* s = arena_.ptr<PNode4>(soff);
    std::memset(s, 0, sizeof(*s));
    s->type = kPNode4;
    s->pword = p->pword;
    int j = 0;
    for (int i = 0; i < 16; ++i)
      if (p->bitmap16 & (1u << i)) {
        s->keys[j] = p->keys[i];
        s->children[j] = p->children[i];
        ++j;
      }
    persist(s, sizeof(*s));
    *slot = ChildRef::node(soff);
    persist(slot, 8);
    arena_.free(arena_.off(p), sizeof(PNode16), 64);
    return;
  }
  if (n->type == kPNode48 && cnt == 12) {
    auto* p = static_cast<PNode48*>(n);
    const uint64_t soff = arena_.alloc(sizeof(PNode16), 64);
    auto* s = arena_.ptr<PNode16>(soff);
    std::memset(s, 0, sizeof(*s));
    s->type = kPNode16;
    s->pword = p->pword;
    int j = 0;
    for (int b = 0; b < 256; ++b)
      if (p->child_index[b] != kEmpty48) {
        s->keys[j] = static_cast<uint8_t>(b);
        s->children[j] = p->children[p->child_index[b]];
        s->bitmap16 |= static_cast<uint16_t>(1u << j);
        ++j;
      }
    persist(s, sizeof(*s));
    *slot = ChildRef::node(soff);
    persist(slot, 8);
    arena_.free(arena_.off(p), sizeof(PNode48), 64);
    return;
  }
  if (n->type == kPNode256 && cnt == 37) {
    auto* p = static_cast<PNode256*>(n);
    const uint64_t soff = arena_.alloc(sizeof(PNode48), 64);
    auto* s = arena_.ptr<PNode48>(soff);
    std::memset(s, 0, sizeof(*s));
    s->type = kPNode48;
    s->pword = p->pword;
    std::memset(s->child_index, kEmpty48, 256);
    int j = 0;
    for (int b = 0; b < 256; ++b)
      if (p->children[b] != 0) {
        s->child_index[b] = static_cast<uint8_t>(j);
        s->children[j] = p->children[b];
        ++j;
      }
    persist(s, sizeof(*s));
    *slot = ChildRef::node(soff);
    persist(slot, 8);
    arena_.free(arena_.off(p), sizeof(PNode256), 64);
    return;
  }
}

bool Woart::remove_rec(uint64_t* slot, std::string_view key,
                       uint32_t depth) {
  const uint64_t ref = *slot;
  if (ref == 0) return false;
  if (ChildRef::is_leaf(ref)) {  // root-level leaf
    PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    if (leaf_key(l) != key) return false;
    *slot = 0;
    persist(slot, 8);
    free_value(arena_, l->p_value);
    arena_.free(arena_.off(l), sizeof(PmLeaf), 8);
    return true;
  }
  PNode* n = node_at(ref);
  arena_.pm_read(n, sizeof(PNode));
  repair_prefix(n, depth);
  const uint32_t plen = PWord::prefix_len(n->pword);
  if (plen > 0) {
    if (prefix_mismatch(n, key, depth) < plen) return false;
    depth += plen;
  }
  const uint32_t byte = key_at(key, depth);
  uint64_t* child = find_child_slot(n, byte);
  if (child == nullptr) return false;
  if (ChildRef::is_leaf(*child)) {
    PmLeaf* l = leaf_at(*child);
    arena_.pm_read(l, sizeof(PmLeaf));
    if (leaf_key(l) != key) return false;
    const uint64_t voff = l->p_value;
    remove_from_node(slot, n, byte);
    free_value(arena_, voff);
    arena_.free(arena_.off(l), sizeof(PmLeaf), 8);
    return true;
  }
  return remove_rec(child, key, depth + 1);
}

// ---- ordered scans ---------------------------------------------------------

template <class F>
bool Woart::walk_all(uint64_t ref, F& fn) const {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    return fn(l);
  }
  const PNode* n = node_at(ref);
  return for_each_child_sorted(
      n, [&](uint8_t, uint64_t c) { return walk_all(c, fn); });
}

template <class F>
bool Woart::walk_from(uint64_t ref, std::string_view lo, uint32_t depth,
                      F& fn) const {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    return leaf_key(l) < lo ? true : fn(l);
  }
  const PNode* n = node_at(ref);
  const uint64_t w = n->pword;
  const uint32_t end = PWord::depth(w) + PWord::prefix_len(w);
  if (end > depth) {
    // Compare the subtree's prefix bytes [depth, end) against lo using a
    // descendant leaf (robust against stale headers).
    const std::string_view lk = leaf_key(min_leaf(n));
    for (uint32_t i = depth; i < end; ++i) {
      const uint32_t a = key_at(lk, i);
      const uint32_t b = key_at(lo, i);
      if (a < b) return true;  // whole subtree < lo
      if (a > b) return walk_all(ref, fn);
    }
    depth = end;
  }
  const uint32_t b = key_at(lo, depth);
  return for_each_child_sorted(n, [&](uint8_t byte, uint64_t c) {
    if (byte < b) return true;
    if (byte > b) return walk_all(c, fn);
    return walk_from(c, lo, depth + 1, fn);
  });
}

size_t Woart::range(
    std::string_view lo, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  if (!common::validate_key(lo).ok()) return 0;
  if (limit == 0 || root_->root == 0) return 0;
  auto emit = [&](const PmLeaf* l) {
    const auto* v = arena_.ptr<PmValue>(l->p_value);
    arena_.pm_read(v, 1 + v->len);
    out->emplace_back(std::string(l->key, l->key_len),
                      std::string(v->data, v->len));
    return out->size() < limit;
  };
  walk_from(root_->root, lo, 0, emit);
  return out->size();
}

common::MemoryUsage Woart::memory_usage() const {
  common::MemoryUsage u;
  u.pm_bytes = arena_.stats().pm_live_bytes.load(std::memory_order_relaxed);
  u.dram_bytes = 0;  // WOART is a pure PM tree (paper Fig. 10b)
  return u;
}

// ---- recovery (allocation-map reachability) --------------------------------

void Woart::mark_reachable(uint64_t ref) {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.mark_used(ChildRef::off(ref), sizeof(PmLeaf));
    const auto* v = arena_.ptr<PmValue>(l->p_value);
    arena_.mark_used(l->p_value, 1 + v->len);
    ++count_;
    return;
  }
  const PNode* n = node_at(ref);
  arena_.mark_used(ChildRef::off(ref), pnode_size(n->type));
  for_each_child_sorted(n, [&](uint8_t, uint64_t c) {
    mark_reachable(c);
    return true;
  });
}

void Woart::recover() {
  arena_.reset_alloc_map();
  count_ = 0;
  if (root_->root != 0) mark_reachable(root_->root);
}

void Woart::free_subtree(uint64_t ref) {
  if (ref == 0) return;
  if (ChildRef::is_leaf(ref)) {
    PmLeaf* l = leaf_at(ref);
    free_value(arena_, l->p_value);
    arena_.free(ChildRef::off(ref), sizeof(PmLeaf), 8);
    return;
  }
  PNode* n = node_at(ref);
  for_each_child_sorted(n, [&](uint8_t, uint64_t c) {
    free_subtree(c);
    return true;
  });
  arena_.free(ChildRef::off(ref), pnode_size(n->type), 64);
}

}  // namespace hart::pmart
