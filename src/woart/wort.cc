#include "woart/wort.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace hart::pmart {

namespace {
constexpr uint64_t kWortMagic = 0x574f5254'00000001ULL;

std::string_view leaf_key(const PmLeaf* l) { return {l->key, l->key_len}; }

/// Nibble of `k` at nibble-depth `d` (high nibble first), with the
/// implicit 0x00 terminator byte beyond the end.
uint32_t key_nibble(std::string_view k, uint32_t d) {
  const uint32_t byte_idx = d >> 1;
  const uint8_t b =
      byte_idx < k.size() ? static_cast<uint8_t>(k[byte_idx]) : 0;
  return (d & 1) ? (b & 0xf) : (b >> 4);
}
}  // namespace

Wort::Wort(pmem::Arena& arena) : arena_(arena), root_(arena.root<Root>()) {
  if (root_->magic == kWortMagic) {
    recover();
  } else {
    *root_ = Root{};
    root_->magic = kWortMagic;
    persist(root_, sizeof(*root_));
  }
}

const PmLeaf* Wort::min_leaf(const WortNode* n) const {
  for (;;) {
    uint64_t child = 0;
    for (int i = 0; i < 16 && child == 0; ++i) child = n->children[i];
    assert(child != 0 && "internal WORT node with no children");
    arena_.pm_read(&child, sizeof(child));
    if (ChildRef::is_leaf(child)) {
      const auto* l = leaf_at(child);
      arena_.pm_read(l, sizeof(PmLeaf));
      return l;
    }
    n = node_at(child);
    arena_.pm_read(n, sizeof(uint64_t));
  }
}

void Wort::repair_prefix(WortNode* n, uint32_t depth) {
  const uint64_t w = n->pword;
  if (WortPWord::depth(w) == depth) return;
  const uint32_t end = WortPWord::depth(w) + WortPWord::prefix_len(w);
  assert(end >= depth);
  const uint32_t len = end - depth;
  uint8_t nibbles[WortPWord::kStoredNibbles] = {0};
  if (len > 0) {
    const std::string_view lk = leaf_key(min_leaf(n));
    for (uint32_t i = 0; i < WortPWord::kStoredNibbles && i < len; ++i)
      nibbles[i] = static_cast<uint8_t>(key_nibble(lk, depth + i));
  }
  n->pword = WortPWord::make(static_cast<uint8_t>(depth),
                             static_cast<uint8_t>(len), nibbles, len);
  persist(&n->pword, sizeof(n->pword));
}

uint32_t Wort::prefix_mismatch(const WortNode* n, std::string_view key,
                               uint32_t depth) const {
  const uint64_t w = n->pword;
  assert(WortPWord::depth(w) == depth);
  const uint32_t len = WortPWord::prefix_len(w);
  uint32_t i = 0;
  for (; i < len && i < WortPWord::kStoredNibbles; ++i)
    if (WortPWord::nibble(w, i) != key_nibble(key, depth + i)) return i;
  if (len > WortPWord::kStoredNibbles) {
    const std::string_view lk = leaf_key(min_leaf(n));
    for (; i < len; ++i)
      if (key_nibble(lk, depth + i) != key_nibble(key, depth + i)) return i;
  }
  return len;
}

uint64_t Wort::new_node(uint32_t depth, uint32_t plen,
                        const uint8_t* nibbles, uint32_t n) {
  const uint64_t off = arena_.alloc(sizeof(WortNode), 64);
  auto* node = arena_.ptr<WortNode>(off);
  std::memset(node, 0, sizeof(*node));
  node->pword = WortPWord::make(static_cast<uint8_t>(depth),
                                static_cast<uint8_t>(plen), nibbles, n);
  return off;
}

common::Status Wort::insert(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  const bool inserted = insert_rec(&root_->root, key, value, 0);
  if (inserted) ++count_;
  return inserted ? common::Status::kInserted : common::Status::kUpdated;
}

bool Wort::insert_rec(uint64_t* slot, std::string_view key,
                      std::string_view value, uint32_t depth) {
  const uint64_t ref = *slot;
  if (ref == 0) {
    const uint64_t voff = alloc_value(arena_, value);
    const uint64_t loff = alloc_leaf(arena_, key, voff);
    *slot = ChildRef::leaf(loff);  // the pointer store is the commit
    persist(slot, 8);
    return true;
  }

  if (ChildRef::is_leaf(ref)) {
    PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    const std::string_view ek = leaf_key(l);
    if (ek == key) {
      const uint64_t old = l->p_value;
      l->p_value = alloc_value(arena_, value);
      persist(&l->p_value, 8);
      free_value(arena_, old);
      return false;
    }
    // Split at the common nibble prefix: build a new node holding both
    // leaves, persist it, swing the parent pointer.
    uint32_t lcp = 0;
    while (key_nibble(key, depth + lcp) == key_nibble(ek, depth + lcp))
      ++lcp;
    const uint64_t voff = alloc_value(arena_, value);
    const uint64_t loff = alloc_leaf(arena_, key, voff);
    uint8_t nibbles[WortPWord::kStoredNibbles];
    for (uint32_t i = 0; i < WortPWord::kStoredNibbles && i < lcp; ++i)
      nibbles[i] = static_cast<uint8_t>(key_nibble(key, depth + i));
    const uint64_t noff = new_node(depth, lcp, nibbles, lcp);
    auto* nn = arena_.ptr<WortNode>(noff);
    nn->children[key_nibble(key, depth + lcp)] = ChildRef::leaf(loff);
    nn->children[key_nibble(ek, depth + lcp)] = ref;
    persist(nn, sizeof(*nn));
    *slot = ChildRef::node(noff);
    persist(slot, 8);
    return true;
  }

  WortNode* n = node_at(ref);
  arena_.pm_read(n, sizeof(uint64_t));
  repair_prefix(n, depth);
  const uint32_t plen = WortPWord::prefix_len(n->pword);
  if (plen > 0) {
    const uint32_t p = prefix_mismatch(n, key, depth);
    if (p < plen) {
      const uint64_t voff = alloc_value(arena_, value);
      const uint64_t loff = alloc_leaf(arena_, key, voff);
      const std::string_view lk = leaf_key(min_leaf(n));
      uint8_t nibbles[WortPWord::kStoredNibbles];
      for (uint32_t i = 0; i < WortPWord::kStoredNibbles && i < p; ++i)
        nibbles[i] = static_cast<uint8_t>(key_nibble(key, depth + i));
      const uint64_t noff = new_node(depth, p, nibbles, p);
      auto* nn = arena_.ptr<WortNode>(noff);
      nn->children[key_nibble(key, depth + p)] = ChildRef::leaf(loff);
      nn->children[key_nibble(lk, depth + p)] = ref;
      persist(nn, sizeof(*nn));
      *slot = ChildRef::node(noff);  // atomic commit
      persist(slot, 8);
      // Fix n's header for its new, deeper position; a crash before this
      // persists leaves a depth mismatch repaired lazily on next access.
      repair_prefix(n, depth + p + 1);
      return true;
    }
    depth += plen;
  }

  const uint32_t nib = key_nibble(key, depth);
  arena_.pm_read(&n->children[nib], 8);
  if (n->children[nib] != 0)
    return insert_rec(&n->children[nib], key, value, depth + 1);
  const uint64_t voff = alloc_value(arena_, value);
  const uint64_t loff = alloc_leaf(arena_, key, voff);
  n->children[nib] = ChildRef::leaf(loff);  // single atomic commit
  persist(&n->children[nib], 8);
  return true;
}

common::Status Wort::search(std::string_view key, std::string* out) const {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  uint64_t ref = root_->root;
  uint32_t depth = 0;
  while (ref != 0) {
    if (ChildRef::is_leaf(ref)) {
      const PmLeaf* l = leaf_at(ref);
      arena_.pm_read(l, sizeof(PmLeaf));
      if (leaf_key(l) != key) return common::Status::kNotFound;
      const auto* v = arena_.ptr<PmValue>(l->p_value);
      arena_.pm_read(v, 1 + v->len);
      if (out != nullptr) out->assign(v->data, v->len);
      return common::Status::kOk;
    }
    const WortNode* n = node_at(ref);
    arena_.pm_read(n, sizeof(uint64_t));
    const uint64_t w = n->pword;
    depth = WortPWord::depth(w) + WortPWord::prefix_len(w);
    const uint32_t nib = key_nibble(key, depth);
    arena_.pm_read(&n->children[nib], 8);
    ref = n->children[nib];
    ++depth;
  }
  return common::Status::kNotFound;
}

common::Status Wort::update(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  uint64_t ref = root_->root;
  uint32_t depth = 0;
  while (ref != 0 && !ChildRef::is_leaf(ref)) {
    WortNode* n = node_at(ref);
    const uint64_t w = n->pword;
    depth = WortPWord::depth(w) + WortPWord::prefix_len(w);
    ref = n->children[key_nibble(key, depth)];
    ++depth;
  }
  if (ref == 0) return common::Status::kNotFound;
  PmLeaf* l = leaf_at(ref);
  arena_.pm_read(l, sizeof(PmLeaf));
  if (leaf_key(l) != key) return common::Status::kNotFound;
  const uint64_t old = l->p_value;
  l->p_value = alloc_value(arena_, value);
  persist(&l->p_value, 8);
  free_value(arena_, old);
  return common::Status::kOk;
}

common::Status Wort::remove(std::string_view key) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  const bool removed = remove_rec(&root_->root, key, 0);
  if (removed) --count_;
  return removed ? common::Status::kOk : common::Status::kNotFound;
}

bool Wort::remove_rec(uint64_t* slot, std::string_view key,
                      uint32_t depth) {
  const uint64_t ref = *slot;
  if (ref == 0) return false;
  if (ChildRef::is_leaf(ref)) {
    PmLeaf* l = leaf_at(ref);
    if (leaf_key(l) != key) return false;
    *slot = 0;
    persist(slot, 8);
    free_value(arena_, l->p_value);
    arena_.free(ChildRef::off(ref), sizeof(PmLeaf), 8);
    return true;
  }
  WortNode* n = node_at(ref);
  repair_prefix(n, depth);
  const uint32_t plen = WortPWord::prefix_len(n->pword);
  if (plen > 0) {
    if (prefix_mismatch(n, key, depth) < plen) return false;
    depth += plen;
  }
  const uint32_t nib = key_nibble(key, depth);
  uint64_t* child = &n->children[nib];
  if (*child == 0) return false;
  if (!ChildRef::is_leaf(*child)) return remove_rec(child, key, depth + 1);

  PmLeaf* l = leaf_at(*child);
  if (leaf_key(l) != key) return false;
  const uint64_t voff = l->p_value;
  const uint64_t leaf_ref = *child;
  *child = 0;  // atomic un-commit
  persist(child, 8);
  // Path collapse: if one child remains, swing the parent to it (a stale
  // child header is repaired lazily via the depth-embedded word).
  uint64_t only = 0;
  int live = 0;
  for (int i = 0; i < 16; ++i)
    if (n->children[i] != 0) {
      only = n->children[i];
      ++live;
    }
  if (live == 1) {
    *slot = only;
    persist(slot, 8);
    arena_.free(ChildRef::off(ref), sizeof(WortNode), 64);
  }
  free_value(arena_, voff);
  arena_.free(ChildRef::off(leaf_ref), sizeof(PmLeaf), 8);
  return true;
}

template <class F>
bool Wort::walk_all(uint64_t ref, F& fn) const {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    return fn(l);
  }
  const WortNode* n = node_at(ref);
  for (int i = 0; i < 16; ++i)
    if (n->children[i] != 0)
      if (!walk_all(n->children[i], fn)) return false;
  return true;
}

template <class F>
bool Wort::walk_from(uint64_t ref, std::string_view lo, uint32_t depth,
                     F& fn) const {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    return leaf_key(l) < lo ? true : fn(l);
  }
  const WortNode* n = node_at(ref);
  const uint64_t w = n->pword;
  const uint32_t end = WortPWord::depth(w) + WortPWord::prefix_len(w);
  if (end > depth) {
    const std::string_view lk = leaf_key(min_leaf(n));
    for (uint32_t i = depth; i < end; ++i) {
      const uint32_t a = key_nibble(lk, i);
      const uint32_t b = key_nibble(lo, i);
      if (a < b) return true;
      if (a > b) return walk_all(ref, fn);
    }
    depth = end;
  }
  const uint32_t b = key_nibble(lo, depth);
  for (uint32_t i = 0; i < 16; ++i) {
    if (n->children[i] == 0) continue;
    if (i < b) continue;
    if (i > b) {
      if (!walk_all(n->children[i], fn)) return false;
    } else {
      if (!walk_from(n->children[i], lo, depth + 1, fn)) return false;
    }
  }
  return true;
}

size_t Wort::range(
    std::string_view lo, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  if (!common::validate_key(lo).ok()) return 0;
  if (limit == 0 || root_->root == 0) return 0;
  auto emit = [&](const PmLeaf* l) {
    const auto* v = arena_.ptr<PmValue>(l->p_value);
    arena_.pm_read(v, 1 + v->len);
    out->emplace_back(std::string(l->key, l->key_len),
                      std::string(v->data, v->len));
    return out->size() < limit;
  };
  walk_from(root_->root, lo, 0, emit);
  return out->size();
}

common::MemoryUsage Wort::memory_usage() const {
  common::MemoryUsage u;
  u.pm_bytes = arena_.stats().pm_live_bytes.load(std::memory_order_relaxed);
  u.dram_bytes = 0;
  return u;
}

void Wort::mark_reachable(uint64_t ref) {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.mark_used(ChildRef::off(ref), sizeof(PmLeaf));
    const auto* v = arena_.ptr<PmValue>(l->p_value);
    arena_.mark_used(l->p_value, 1 + v->len);
    ++count_;
    return;
  }
  const WortNode* n = node_at(ref);
  arena_.mark_used(ChildRef::off(ref), sizeof(WortNode));
  for (int i = 0; i < 16; ++i)
    if (n->children[i] != 0) mark_reachable(n->children[i]);
}

void Wort::recover() {
  arena_.reset_alloc_map();
  count_ = 0;
  if (root_->root != 0) mark_reachable(root_->root);
}

}  // namespace hart::pmart
