// Volatile (DRAM) Adaptive Radix Tree — Leis et al., ICDE 2013 — used by
// HART as its internal-node engine (paper Fig. 1: internal nodes live in
// DRAM, only leaf nodes live in PM).
//
// The tree stores opaque leaf pointers supplied by the caller; `Traits`
// tells it how to read a leaf's key bytes. All four adaptive node types
// (NODE4/16/48/256) are implemented, with sorted keys in NODE4/16, path
// compression (pessimistic prefixes up to kMaxPrefixLen bytes with min-leaf
// fallback for longer prefixes) and lazy expansion.
//
// Key model: a key is a byte string without NUL bytes; the tree appends an
// implicit 0x00 terminator so that a key that is a strict prefix of another
// gets its own slot (the same convention as libart, which the paper's
// implementation was based on). Iteration order is therefore plain
// lexicographic order.
//
// Concurrency: single writer, or multiple readers with no writer — HART
// enforces this with one reader/writer lock per ART (Section III.A.3).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>

#include "obs/counters.h"

namespace hart::art {

namespace detail {
/// HARTscope: NODE4->16->48->256 growth events across every ART instance.
inline obs::Counter& grow_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("art_node_grow_total");
  return c;
}
}  // namespace detail

using Key = std::span<const uint8_t>;

inline constexpr uint32_t kMaxPrefixLen = 10;

/// Byte of `k` at logical depth `d`, with the implicit terminator: positions
/// at or past the end read as 0x00.
inline uint32_t key_at(Key k, uint32_t d) {
  return d < k.size() ? k[d] : 0u;
}
/// Logical key length including the terminator.
inline uint32_t key_len(Key k) { return static_cast<uint32_t>(k.size()) + 1; }

namespace detail {

enum NodeType : uint8_t { kNode4 = 1, kNode16 = 2, kNode48 = 3, kNode256 = 4 };

struct Node {
  uint8_t type;
  uint16_t num_children = 0;  // NODE256 can hold 256 children
  uint32_t prefix_len = 0;              // logical length of the compressed path
  uint8_t prefix[kMaxPrefixLen] = {0};  // first min(prefix_len, kMax) bytes
};

struct Node4 : Node {
  uint8_t keys[4];
  Node* children[4];
};
struct Node16 : Node {
  uint8_t keys[16];
  Node* children[16];
};
struct Node48 : Node {
  uint8_t child_index[256];  // 0xFF = empty, else slot into children
  Node* children[48];
};
struct Node256 : Node {
  Node* children[256];
};

inline constexpr uint8_t kEmptySlot = 0xFF;

}  // namespace detail

/// Traits must provide:
///   using Leaf = <leaf type>;
///   Key key(const Leaf*) const;   // the leaf's ART key bytes (no terminator)
template <class Traits>
class Tree {
  using Node = detail::Node;
  using Node4 = detail::Node4;
  using Node16 = detail::Node16;
  using Node48 = detail::Node48;
  using Node256 = detail::Node256;

 public:
  using Leaf = typename Traits::Leaf;

  /// `dram_bytes` (optional) tracks this tree's internal-node footprint.
  explicit Tree(Traits traits = Traits{},
                std::atomic<uint64_t>* dram_bytes = nullptr)
      : traits_(traits), dram_bytes_(dram_bytes) {}
  ~Tree() { clear(); }
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;

  [[nodiscard]] bool empty() const { return root_ == nullptr; }
  [[nodiscard]] size_t size() const { return count_; }

  /// Point lookup; nullptr if absent.
  [[nodiscard]] Leaf* search(Key k) const {
    Node* n = root_;
    uint32_t depth = 0;
    while (n != nullptr) {
      if (is_leaf(n)) {
        Leaf* l = as_leaf(n);
        return leaf_matches(l, k) ? l : nullptr;
      }
      if (n->prefix_len > 0) {
        // Optimistic skip: verify only the stored bytes, confirm at leaf.
        const uint32_t m = std::min(n->prefix_len, kMaxPrefixLen);
        for (uint32_t i = 0; i < m; ++i)
          if (n->prefix[i] != key_at(k, depth + i)) return nullptr;
        depth += n->prefix_len;
      }
      Node* const* child = find_child(n, key_at(k, depth));
      n = child != nullptr ? *child : nullptr;
      ++depth;
    }
    return nullptr;
  }

  /// Insert `leaf` under key `k`. If the key already exists, nothing is
  /// modified and the existing leaf is returned; otherwise returns nullptr.
  Leaf* insert(Key k, Leaf* leaf) { return insert_rec(root_, k, leaf, 0); }

  /// Remove the leaf with key `k`; returns it (caller owns leaf memory), or
  /// nullptr if absent.
  Leaf* remove(Key k) { return remove_rec(root_, k, 0); }

  /// Leftmost (smallest-key) leaf; nullptr when empty.
  [[nodiscard]] Leaf* minimum() const {
    return root_ ? minimum(root_) : nullptr;
  }

  /// In-order traversal of all leaves; `fn(Leaf*)` returns false to stop.
  /// Returns false iff stopped early.
  template <class F>
  bool for_each(F&& fn) const {
    return root_ == nullptr || walk_all(root_, fn);
  }

  /// In-order traversal of leaves with key >= lo.
  template <class F>
  bool for_each_from(Key lo, F&& fn) const {
    return root_ == nullptr || walk_from(root_, lo, 0, fn);
  }

  /// Free all internal nodes (leaves are owned by the caller).
  void clear() {
    if (root_ != nullptr) {
      clear_rec(root_);
      root_ = nullptr;
      count_ = 0;
    }
  }

 private:
  // ---- leaf tagging ----------------------------------------------------
  static bool is_leaf(const Node* n) {
    return (reinterpret_cast<uintptr_t>(n) & 1) != 0;
  }
  static Leaf* as_leaf(const Node* n) {
    return reinterpret_cast<Leaf*>(reinterpret_cast<uintptr_t>(n) & ~uintptr_t{1});
  }
  static Node* tag_leaf(Leaf* l) {
    return reinterpret_cast<Node*>(reinterpret_cast<uintptr_t>(l) | 1);
  }
  bool leaf_matches(const Leaf* l, Key k) const {
    const Key lk = traits_.key(l);
    return lk.size() == k.size() &&
           std::memcmp(lk.data(), k.data(), k.size()) == 0;
  }

  // ---- node memory ------------------------------------------------------
  template <class N>
  N* alloc_node(detail::NodeType t) {
    N* n = new N();
    n->type = t;
    if (dram_bytes_)
      dram_bytes_->fetch_add(sizeof(N), std::memory_order_relaxed);
    return n;
  }
  void free_node(Node* n) {
    if (dram_bytes_)
      dram_bytes_->fetch_sub(node_size(n), std::memory_order_relaxed);
    switch (n->type) {
      case detail::kNode4: delete static_cast<Node4*>(n); break;
      case detail::kNode16: delete static_cast<Node16*>(n); break;
      case detail::kNode48: delete static_cast<Node48*>(n); break;
      default: delete static_cast<Node256*>(n); break;
    }
  }
  static size_t node_size(const Node* n) {
    switch (n->type) {
      case detail::kNode4: return sizeof(Node4);
      case detail::kNode16: return sizeof(Node16);
      case detail::kNode48: return sizeof(Node48);
      default: return sizeof(Node256);
    }
  }

  void clear_rec(Node* n) {
    if (is_leaf(n)) return;
    for_each_child(n, [&](uint32_t, Node* c) {
      clear_rec(c);
      return true;
    });
    free_node(n);
  }

  // ---- child access -------------------------------------------------------
  static Node* const* find_child(const Node* n, uint32_t byte) {
    switch (n->type) {
      case detail::kNode4: {
        const auto* p = static_cast<const Node4*>(n);
        for (int i = 0; i < p->num_children; ++i)
          if (p->keys[i] == byte) return &p->children[i];
        return nullptr;
      }
      case detail::kNode16: {
        const auto* p = static_cast<const Node16*>(n);
        for (int i = 0; i < p->num_children; ++i)
          if (p->keys[i] == byte) return &p->children[i];
        return nullptr;
      }
      case detail::kNode48: {
        const auto* p = static_cast<const Node48*>(n);
        const uint8_t slot = p->child_index[byte];
        return slot == detail::kEmptySlot ? nullptr : &p->children[slot];
      }
      default: {
        const auto* p = static_cast<const Node256*>(n);
        return p->children[byte] != nullptr ? &p->children[byte] : nullptr;
      }
    }
  }
  static Node** find_child(Node* n, uint32_t byte) {
    return const_cast<Node**>(find_child(static_cast<const Node*>(n), byte));
  }

  /// Invoke f(byte, child) in ascending key-byte order; f returns false to
  /// stop. Returns false iff stopped.
  template <class F>
  static bool for_each_child(const Node* n, F&& f) {
    switch (n->type) {
      case detail::kNode4: {
        const auto* p = static_cast<const Node4*>(n);
        for (int i = 0; i < p->num_children; ++i)
          if (!f(p->keys[i], p->children[i])) return false;
        return true;
      }
      case detail::kNode16: {
        const auto* p = static_cast<const Node16*>(n);
        for (int i = 0; i < p->num_children; ++i)
          if (!f(p->keys[i], p->children[i])) return false;
        return true;
      }
      case detail::kNode48: {
        const auto* p = static_cast<const Node48*>(n);
        for (uint32_t b = 0; b < 256; ++b) {
          const uint8_t slot = p->child_index[b];
          if (slot != detail::kEmptySlot)
            if (!f(b, p->children[slot])) return false;
        }
        return true;
      }
      default: {
        const auto* p = static_cast<const Node256*>(n);
        for (uint32_t b = 0; b < 256; ++b)
          if (p->children[b] != nullptr)
            if (!f(b, p->children[b])) return false;
        return true;
      }
    }
  }

  Leaf* minimum(const Node* n) const {
    while (!is_leaf(n)) {
      const Node* next = nullptr;
      for_each_child(n, [&](uint32_t, Node* c) {
        next = c;
        return false;  // first (smallest) child
      });
      n = next;
    }
    return as_leaf(n);
  }

  // ---- prefix helpers ----------------------------------------------------
  /// Full logical mismatch position of `k` against n's compressed path,
  /// reading bytes past kMaxPrefixLen from the subtree's minimum leaf.
  uint32_t prefix_mismatch(const Node* n, Key k, uint32_t depth) const {
    const uint32_t stored = std::min(n->prefix_len, kMaxPrefixLen);
    uint32_t i = 0;
    for (; i < stored; ++i)
      if (n->prefix[i] != key_at(k, depth + i)) return i;
    if (n->prefix_len > kMaxPrefixLen) {
      const Key lk = traits_.key(minimum(n));
      for (; i < n->prefix_len; ++i)
        if (key_at(lk, depth + i) != key_at(k, depth + i)) return i;
    }
    return n->prefix_len;
  }

  // ---- add / grow ----------------------------------------------------------
  void add_child(Node*& ref, Node* n, uint32_t byte, Node* child) {
    switch (n->type) {
      case detail::kNode4: {
        auto* p = static_cast<Node4*>(n);
        if (p->num_children < 4) {
          int pos = 0;
          while (pos < p->num_children && p->keys[pos] < byte) ++pos;
          std::memmove(p->keys + pos + 1, p->keys + pos,
                       p->num_children - pos);
          std::memmove(p->children + pos + 1, p->children + pos,
                       (p->num_children - pos) * sizeof(Node*));
          p->keys[pos] = static_cast<uint8_t>(byte);
          p->children[pos] = child;
          ++p->num_children;
        } else {
          detail::grow_counter().inc();
          auto* g = alloc_node<Node16>(detail::kNode16);
          std::memcpy(g->keys, p->keys, 4);
          std::memcpy(g->children, p->children, 4 * sizeof(Node*));
          copy_header(g, p);
          ref = g;
          free_node(p);
          add_child(ref, g, byte, child);
        }
        return;
      }
      case detail::kNode16: {
        auto* p = static_cast<Node16*>(n);
        if (p->num_children < 16) {
          int pos = 0;
          while (pos < p->num_children && p->keys[pos] < byte) ++pos;
          std::memmove(p->keys + pos + 1, p->keys + pos,
                       p->num_children - pos);
          std::memmove(p->children + pos + 1, p->children + pos,
                       (p->num_children - pos) * sizeof(Node*));
          p->keys[pos] = static_cast<uint8_t>(byte);
          p->children[pos] = child;
          ++p->num_children;
        } else {
          detail::grow_counter().inc();
          auto* g = alloc_node<Node48>(detail::kNode48);
          std::memset(g->child_index, detail::kEmptySlot, 256);
          std::memset(g->children, 0, sizeof(g->children));
          for (int i = 0; i < 16; ++i) {
            g->child_index[p->keys[i]] = static_cast<uint8_t>(i);
            g->children[i] = p->children[i];
          }
          copy_header(g, p);
          ref = g;
          free_node(p);
          add_child(ref, g, byte, child);
        }
        return;
      }
      case detail::kNode48: {
        auto* p = static_cast<Node48*>(n);
        if (p->num_children < 48) {
          int slot = 0;
          while (p->children[slot] != nullptr) ++slot;
          p->children[slot] = child;
          p->child_index[byte] = static_cast<uint8_t>(slot);
          ++p->num_children;
        } else {
          detail::grow_counter().inc();
          auto* g = alloc_node<Node256>(detail::kNode256);
          std::memset(g->children, 0, sizeof(g->children));
          for (uint32_t b = 0; b < 256; ++b)
            if (p->child_index[b] != detail::kEmptySlot)
              g->children[b] = p->children[p->child_index[b]];
          copy_header(g, p);
          ref = g;
          free_node(p);
          add_child(ref, g, byte, child);
        }
        return;
      }
      default: {
        auto* p = static_cast<Node256*>(n);
        p->children[byte] = child;
        ++p->num_children;
        return;
      }
    }
  }

  static void copy_header(Node* dst, const Node* src) {
    dst->num_children = src->num_children;
    dst->prefix_len = src->prefix_len;
    std::memcpy(dst->prefix, src->prefix, kMaxPrefixLen);
  }

  // ---- insert ----------------------------------------------------------
  Leaf* insert_rec(Node*& ref, Key k, Leaf* leaf, uint32_t depth) {
    Node* n = ref;
    if (n == nullptr) {
      ref = tag_leaf(leaf);
      ++count_;
      return nullptr;
    }
    if (is_leaf(n)) {
      Leaf* existing = as_leaf(n);
      if (leaf_matches(existing, k)) return existing;
      // Lazy expansion undone: split into a NODE4 under the common prefix.
      const Key ek = traits_.key(existing);
      uint32_t lcp = 0;
      while (key_at(k, depth + lcp) == key_at(ek, depth + lcp)) ++lcp;
      auto* nn = alloc_node<Node4>(detail::kNode4);
      nn->prefix_len = lcp;
      for (uint32_t i = 0; i < std::min(lcp, kMaxPrefixLen); ++i)
        nn->prefix[i] = static_cast<uint8_t>(key_at(k, depth + i));
      Node* nref = nn;
      add_child(nref, nn, key_at(k, depth + lcp), tag_leaf(leaf));
      add_child(nref, nn, key_at(ek, depth + lcp), n);
      ref = nref;
      ++count_;
      return nullptr;
    }

    if (n->prefix_len > 0) {
      const uint32_t p = prefix_mismatch(n, k, depth);
      if (p < n->prefix_len) {
        // Split the compressed path at position p.
        auto* nn = alloc_node<Node4>(detail::kNode4);
        nn->prefix_len = p;
        std::memcpy(nn->prefix, n->prefix, std::min(p, kMaxPrefixLen));
        Node* nref = nn;
        if (n->prefix_len <= kMaxPrefixLen) {
          add_child(nref, nn, n->prefix[p], n);
          n->prefix_len -= p + 1;
          std::memmove(n->prefix, n->prefix + p + 1,
                       std::min(n->prefix_len, kMaxPrefixLen));
        } else {
          // Recover the edge byte and the new stored prefix from a leaf.
          const Key lk = traits_.key(minimum(n));
          n->prefix_len -= p + 1;
          add_child(nref, nn, key_at(lk, depth + p), n);
          for (uint32_t i = 0; i < std::min(n->prefix_len, kMaxPrefixLen);
               ++i)
            n->prefix[i] =
                static_cast<uint8_t>(key_at(lk, depth + p + 1 + i));
        }
        add_child(nref, nn, key_at(k, depth + p), tag_leaf(leaf));
        ref = nref;
        ++count_;
        return nullptr;
      }
      depth += n->prefix_len;
    }

    Node** child = find_child(n, key_at(k, depth));
    if (child != nullptr) return insert_rec(*child, k, leaf, depth + 1);
    add_child(ref, n, key_at(k, depth), tag_leaf(leaf));
    ++count_;
    return nullptr;
  }

  // ---- remove / shrink ---------------------------------------------------
  Leaf* remove_rec(Node*& ref, Key k, uint32_t depth) {
    Node* n = ref;
    if (n == nullptr) return nullptr;
    if (is_leaf(n)) {
      Leaf* l = as_leaf(n);
      if (!leaf_matches(l, k)) return nullptr;
      ref = nullptr;
      --count_;
      return l;
    }
    if (n->prefix_len > 0) {
      const uint32_t stored = std::min(n->prefix_len, kMaxPrefixLen);
      for (uint32_t i = 0; i < stored; ++i)
        if (n->prefix[i] != key_at(k, depth + i)) return nullptr;
      depth += n->prefix_len;
    }
    const uint32_t byte = key_at(k, depth);
    Node** child = find_child(n, byte);
    if (child == nullptr) return nullptr;
    if (is_leaf(*child)) {
      Leaf* l = as_leaf(*child);
      if (!leaf_matches(l, k)) return nullptr;
      remove_child(ref, n, byte, child);
      --count_;
      return l;
    }
    return remove_rec(*child, k, depth + 1);
  }

  void remove_child(Node*& ref, Node* n, uint32_t byte, Node** slot) {
    switch (n->type) {
      case detail::kNode4: {
        auto* p = static_cast<Node4*>(n);
        const auto pos = static_cast<int>(slot - p->children);
        std::memmove(p->keys + pos, p->keys + pos + 1,
                     p->num_children - pos - 1);
        std::memmove(p->children + pos, p->children + pos + 1,
                     (p->num_children - pos - 1) * sizeof(Node*));
        --p->num_children;
        if (p->num_children == 1) {
          Node* child = p->children[0];
          if (!is_leaf(child)) {
            // Re-concatenate the compressed paths (path compression).
            uint32_t pl = p->prefix_len;
            if (pl < kMaxPrefixLen) p->prefix[pl] = p->keys[0];
            ++pl;
            if (pl < kMaxPrefixLen) {
              const uint32_t sub = std::min(child->prefix_len,
                                            kMaxPrefixLen - pl);
              std::memcpy(p->prefix + pl, child->prefix, sub);
              pl += sub;
            }
            std::memcpy(child->prefix, p->prefix,
                        std::min(pl, kMaxPrefixLen));
            child->prefix_len += p->prefix_len + 1;
          }
          ref = child;
          free_node(p);
        }
        return;
      }
      case detail::kNode16: {
        auto* p = static_cast<Node16*>(n);
        const auto pos = static_cast<int>(slot - p->children);
        std::memmove(p->keys + pos, p->keys + pos + 1,
                     p->num_children - pos - 1);
        std::memmove(p->children + pos, p->children + pos + 1,
                     (p->num_children - pos - 1) * sizeof(Node*));
        --p->num_children;
        if (p->num_children == 3) {
          auto* s = alloc_node<Node4>(detail::kNode4);
          copy_header(s, p);
          std::memcpy(s->keys, p->keys, 3);
          std::memcpy(s->children, p->children, 3 * sizeof(Node*));
          ref = s;
          free_node(p);
        }
        return;
      }
      case detail::kNode48: {
        auto* p = static_cast<Node48*>(n);
        const auto slot_idx = p->child_index[byte];
        p->child_index[byte] = detail::kEmptySlot;
        p->children[slot_idx] = nullptr;
        --p->num_children;
        if (p->num_children == 12) {
          auto* s = alloc_node<Node16>(detail::kNode16);
          copy_header(s, p);
          int j = 0;
          for (uint32_t b = 0; b < 256; ++b)
            if (p->child_index[b] != detail::kEmptySlot) {
              s->keys[j] = static_cast<uint8_t>(b);
              s->children[j] = p->children[p->child_index[b]];
              ++j;
            }
          s->num_children = static_cast<uint16_t>(j);
          ref = s;
          free_node(p);
        }
        return;
      }
      default: {
        auto* p = static_cast<Node256*>(n);
        p->children[byte] = nullptr;
        --p->num_children;
        if (p->num_children == 37) {
          auto* s = alloc_node<Node48>(detail::kNode48);
          copy_header(s, p);
          std::memset(s->child_index, detail::kEmptySlot, 256);
          std::memset(s->children, 0, sizeof(s->children));
          int j = 0;
          for (uint32_t b = 0; b < 256; ++b)
            if (p->children[b] != nullptr) {
              s->child_index[b] = static_cast<uint8_t>(j);
              s->children[j] = p->children[b];
              ++j;
            }
          s->num_children = static_cast<uint16_t>(j);
          ref = s;
          free_node(p);
        }
        return;
      }
    }
  }

  // ---- ordered walks -------------------------------------------------------
  template <class F>
  bool walk_all(const Node* n, F& fn) const {
    if (is_leaf(n)) return fn(as_leaf(n));
    return for_each_child(n,
                          [&](uint32_t, Node* c) { return walk_all(c, fn); });
  }

  /// -1: subtree entirely < lo is possible (prefix < lo segment)
  ///  0: prefix equals lo's bytes at [depth, depth+prefix_len)
  /// +1: subtree entirely >= lo (prefix > lo segment)
  int compare_prefix(const Node* n, Key lo, uint32_t depth) const {
    const uint32_t stored = std::min(n->prefix_len, kMaxPrefixLen);
    for (uint32_t i = 0; i < stored; ++i) {
      const uint32_t a = n->prefix[i];
      const uint32_t b = key_at(lo, depth + i);
      if (a != b) return a < b ? -1 : 1;
    }
    if (n->prefix_len > kMaxPrefixLen) {
      const Key lk = traits_.key(minimum(n));
      for (uint32_t i = stored; i < n->prefix_len; ++i) {
        const uint32_t a = key_at(lk, depth + i);
        const uint32_t b = key_at(lo, depth + i);
        if (a != b) return a < b ? -1 : 1;
      }
    }
    return 0;
  }

  template <class F>
  bool walk_from(const Node* n, Key lo, uint32_t depth, F& fn) const {
    if (is_leaf(n)) {
      Leaf* l = as_leaf(n);
      const Key lk = traits_.key(l);
      // Compare lk against lo from `depth` (all earlier bytes are equal on
      // the boundary path).
      const uint32_t end = std::max(key_len(lk), key_len(lo));
      for (uint32_t i = depth; i < end; ++i) {
        const uint32_t a = key_at(lk, i);
        const uint32_t b = key_at(lo, i);
        if (a != b) return a < b ? true : fn(l);
      }
      return fn(l);  // equal
    }
    if (n->prefix_len > 0) {
      const int c = compare_prefix(n, lo, depth);
      if (c < 0) return true;           // whole subtree < lo: skip
      if (c > 0) return walk_all(n, fn);  // whole subtree > lo
      depth += n->prefix_len;
    }
    const uint32_t b = key_at(lo, depth);
    return for_each_child(n, [&](uint32_t byte, Node* c) {
      if (byte < b) return true;
      if (byte > b) return walk_all(c, fn);
      return walk_from(c, lo, depth + 1, fn);
    });
  }

  Traits traits_;
  std::atomic<uint64_t>* dram_bytes_;
  Node* root_ = nullptr;
  size_t count_ = 0;
};

}  // namespace hart::art
