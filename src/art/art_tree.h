// Volatile (DRAM) Adaptive Radix Tree — Leis et al., ICDE 2013 — used by
// HART as its internal-node engine (paper Fig. 1: internal nodes live in
// DRAM, only leaf nodes live in PM).
//
// The tree stores opaque leaf pointers supplied by the caller; `Traits`
// tells it how to read a leaf's key bytes. All four adaptive node types
// (NODE4/16/48/256) are implemented, with sorted keys in NODE4/16, path
// compression (pessimistic prefixes up to kMaxPrefixLen bytes with min-leaf
// fallback for longer prefixes) and lazy expansion.
//
// Key model: a key is a byte string without NUL bytes; the tree appends an
// implicit 0x00 terminator so that a key that is a strict prefix of another
// gets its own slot (the same convention as libart, which the paper's
// implementation was based on). Iteration order is therefore plain
// lexicographic order.
//
// Concurrency: single writer, plus any number of lock-free optimistic
// readers (search_optimistic). The write side is serialized externally
// (HART holds the partition write lock); the read side never locks:
//
//   * every node carries a seqlock-style version word (odd = mid-mutation
//     or obsolete). Readers snapshot it before consuming a node and
//     re-validate after (read_begin/read_validate);
//   * in-place mutations are confined to the child arrays of a published
//     node and are bracketed by lock_version/unlock_version;
//   * every structural change — grow, shrink, prefix split, NODE4 collapse
//     — builds a replacement node off-line, publishes it with one release
//     store into the parent slot, and retires the replaced node. Node
//     type, prefix_len and prefix bytes are therefore immutable once a
//     node is published, which is what makes a reader's depth accounting
//     safe against concurrent path-compression changes;
//   * retired nodes are marked obsolete (version forced odd forever) and
//     handed to an ebr::Domain so their memory outlives any reader still
//     inside them. With no domain (ebr == nullptr) frees are eager and
//     readers must hold the external lock (the pre-OLC behaviour).
//
// A stale reader can therefore only ever observe a consistent historical
// snapshot: replacement nodes share their (immutable) subtrees with the
// nodes they replace, and any torn in-place edit fails validation.
// Owners must drain the EBR domain before destroying a Tree: retire
// callbacks reference the tree (for dram_bytes accounting).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>

#include "art/simd.h"
#include "common/ebr.h"
#include "obs/counters.h"

namespace hart::art {

namespace detail {
/// HARTscope: NODE4->16->48->256 growth events across every ART instance.
inline obs::Counter& grow_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("art_node_grow_total");
  return c;
}
/// HARTscope: optimistic-read attempts that failed validation and retried.
inline obs::Counter& optimistic_retry_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("art_optimistic_retry_total");
  return c;
}
/// HARTscope: leaf probes rejected by the one-byte fingerprint guard
/// before touching the leaf's (PM-resident) key bytes.
inline obs::Counter& fp_skip_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("hart_fp_skip_total");
  return c;
}
/// HARTscope: fingerprint matched but the full key compare did not (the
/// guard's false-positive rate: this / (this + skips) ≈ 1/255 expected).
inline obs::Counter& fp_false_positive_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("hart_fp_false_positive_total");
  return c;
}
}  // namespace detail

using Key = std::span<const uint8_t>;

/// One-byte key fingerprint (FPTree-style, PAPERS.md): FNV-1a 64 folded
/// down to 8 bits. Never returns 0 — 0 is reserved to mean "no
/// fingerprint" in tagged leaf pointers and persisted leaf headers, which
/// keeps images and trees written without the guard readable with it on.
inline uint8_t key_fingerprint(Key k) {
  uint64_t h = 1469598103934665603ULL;
  for (const uint8_t b : k) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  h ^= h >> 32;
  h ^= h >> 16;
  h ^= h >> 8;
  const auto fp = static_cast<uint8_t>(h);
  return fp == 0 ? uint8_t{1} : fp;
}

inline constexpr uint32_t kMaxPrefixLen = 10;

/// Byte of `k` at logical depth `d`, with the implicit terminator: positions
/// at or past the end read as 0x00.
inline uint32_t key_at(Key k, uint32_t d) {
  return d < k.size() ? k[d] : 0u;
}
/// Logical key length including the terminator.
inline uint32_t key_len(Key k) { return static_cast<uint32_t>(k.size()) + 1; }

namespace detail {

enum NodeType : uint8_t { kNode4 = 1, kNode16 = 2, kNode48 = 3, kNode256 = 4 };

struct Node {
  // Immutable once the node is published into the tree:
  uint8_t type;
  uint32_t prefix_len = 0;              // logical length of the compressed path
  uint8_t prefix[kMaxPrefixLen] = {0};  // first min(prefix_len, kMax) bytes
  // Seqlock word: even = stable, odd = mid-mutation or obsolete (retired).
  std::atomic<uint64_t> version{0};
  std::atomic<uint16_t> num_children{0};  // NODE256 can hold 256 children
};

struct Node4 : Node {
  std::atomic<uint8_t> keys[4];
  std::atomic<Node*> children[4];
};
struct Node16 : Node {
  std::atomic<uint8_t> keys[16];
  std::atomic<Node*> children[16];
};
struct Node48 : Node {
  std::atomic<uint8_t> child_index[256];  // kEmptySlot = empty, else slot
  std::atomic<Node*> children[48];
};
struct Node256 : Node {
  std::atomic<Node*> children[256];
};

inline constexpr uint8_t kEmptySlot = 0xFF;

// ---- seqlock protocol (Boehm-style seqlock over relaxed atomics) --------
/// Writer: make the version odd before an in-place edit. The release fence
/// orders the odd store before the (relaxed) data stores that follow, so a
/// reader that observed any of them re-reads an odd/advanced version.
inline void lock_version(Node* n) {
  n->version.store(n->version.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}
/// Writer: back to even; the release store orders the edit before it.
inline void unlock_version(Node* n) {
  n->version.store(n->version.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
}
/// Writer: a replaced node is left odd forever so any reader still holding
/// it fails validation (it must currently be even — never retire mid-edit).
inline void mark_obsolete(Node* n) {
  n->version.store(n->version.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
}

/// Reader: snapshot the version; false if the node is mid-mutation or
/// obsolete (caller restarts).
inline bool read_begin(const Node* n, uint64_t* v) {
  *v = n->version.load(std::memory_order_acquire);
  return (*v & 1) == 0;
}
/// Reader: true iff everything read since read_begin was a consistent
/// snapshot. The acquire fence orders the (relaxed) data loads before the
/// re-read of the version.
inline bool read_validate(const Node* n, uint64_t v) {
  std::atomic_thread_fence(std::memory_order_acquire);
  return n->version.load(std::memory_order_relaxed) == v;
}

}  // namespace detail

/// Traits must provide:
///   using Leaf = <leaf type>;
///   Key key(const Leaf*) const;   // the leaf's ART key bytes (no terminator)
template <class Traits>
class Tree {
  using Node = detail::Node;
  using Node4 = detail::Node4;
  using Node16 = detail::Node16;
  using Node48 = detail::Node48;
  using Node256 = detail::Node256;

 public:
  using Leaf = typename Traits::Leaf;

  /// Result of one optimistic lookup: `ok == false` means validation kept
  /// failing (writer churn) and the caller should fall back to a locked
  /// read; `ok == true` makes `leaf` definitive (nullptr = not present).
  struct SearchResult {
    Leaf* leaf = nullptr;
    bool ok = false;
  };

  /// `dram_bytes` (optional) tracks this tree's internal-node footprint.
  /// `ebr` (optional) defers node frees past concurrent optimistic
  /// readers; nullptr frees eagerly (readers must then hold the caller's
  /// lock). The domain must be drained before the tree is destroyed.
  /// `fp_guard` stores a one-byte key fingerprint in the high byte of
  /// every tagged leaf pointer and rejects mismatched probes before the
  /// leaf's key bytes (PM for HART leaves) are ever read.
  explicit Tree(Traits traits = Traits{},
                std::atomic<uint64_t>* dram_bytes = nullptr,
                common::ebr::Domain* ebr = nullptr, bool fp_guard = false)
      : traits_(traits), dram_bytes_(dram_bytes), ebr_(ebr),
        fp_guard_(fp_guard) {}
  ~Tree() { clear(); }
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;

  [[nodiscard]] bool empty() const {
    return root_.load(std::memory_order_acquire) == nullptr;
  }
  [[nodiscard]] size_t size() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Point lookup; nullptr if absent. Requires the caller's lock (shared
  /// or exclusive) — no validation is performed.
  [[nodiscard]] Leaf* search(Key k) const {
    const uint8_t kfp = fp_guard_ ? key_fingerprint(k) : uint8_t{0};
    Node* n = root_.load(std::memory_order_acquire);
    uint32_t depth = 0;
    while (n != nullptr) {
      if (is_leaf(n)) {
        if (!fp_check(n, kfp)) return nullptr;
        Leaf* l = as_leaf(n);
        if (leaf_matches(l, k)) return l;
        if (fp_guard_) detail::fp_false_positive_counter().inc();
        return nullptr;
      }
      if (n->prefix_len > 0) {
        // Optimistic skip: verify only the stored bytes, confirm at leaf.
        const uint32_t m = std::min(n->prefix_len, kMaxPrefixLen);
        for (uint32_t i = 0; i < m; ++i)
          if (n->prefix[i] != key_at(k, depth + i)) return nullptr;
        depth += n->prefix_len;
      }
      n = get_child(n, key_at(k, depth));
      ++depth;
    }
    return nullptr;
  }

  /// Lock-free point lookup: validate-and-retry descent, up to
  /// `max_attempts` restarts before giving up (result.ok == false).
  /// The caller must hold an ebr::Guard on this tree's domain.
  [[nodiscard]] SearchResult search_optimistic(Key k,
                                               int max_attempts = 64) const {
    for (int a = 0; a < max_attempts; ++a) {
      SearchResult r = search_attempt(k);
      if (r.ok) return r;
      detail::optimistic_retry_counter().inc();
    }
    return {nullptr, false};
  }

  /// Insert `leaf` under key `k`. If the key already exists, nothing is
  /// modified and the existing leaf is returned; otherwise returns nullptr.
  /// With an EBR domain the caller must hold a Guard (structural changes
  /// retire replaced nodes); without one the marker is moot.
  Leaf* insert(Key k, Leaf* leaf) REQUIRES_EBR_PIN {
    const uint8_t kfp = fp_guard_ ? key_fingerprint(k) : uint8_t{0};
    return insert_rec(root_, k, leaf, 0, kfp);
  }

  /// Remove the leaf with key `k`; returns it (caller owns leaf memory), or
  /// nullptr if absent. Same pinning contract as insert().
  Leaf* remove(Key k) REQUIRES_EBR_PIN {
    const uint8_t kfp = fp_guard_ ? key_fingerprint(k) : uint8_t{0};
    return remove_rec(root_, k, 0, kfp);
  }

  /// Leftmost (smallest-key) leaf; nullptr when empty.
  [[nodiscard]] Leaf* minimum() const {
    Node* r = root_.load(std::memory_order_acquire);
    return r != nullptr ? minimum(r) : nullptr;
  }

  /// In-order traversal of all leaves; `fn(Leaf*)` returns false to stop.
  /// Returns false iff stopped early. Under a concurrent writer the walk is
  /// memory-safe but may reflect a torn snapshot — callers that run it
  /// optimistically must validate externally (HART: partition mod-version)
  /// and discard the results on mismatch.
  template <class F>
  bool for_each(F&& fn) const {
    Node* r = root_.load(std::memory_order_acquire);
    return r == nullptr || walk_all(r, fn);
  }

  /// In-order traversal of leaves with key >= lo (same caveats as for_each).
  template <class F>
  bool for_each_from(Key lo, F&& fn) const {
    Node* r = root_.load(std::memory_order_acquire);
    return r == nullptr || walk_from(r, lo, 0, fn);
  }

  /// Free all internal nodes (leaves are owned by the caller). Requires
  /// exclusivity and a drained EBR domain.
  void clear() {
    Node* r = root_.load(std::memory_order_relaxed);
    if (r != nullptr) {
      clear_rec(r);
      root_.store(nullptr, std::memory_order_relaxed);
      count_.store(0, std::memory_order_relaxed);
    }
  }

 private:
  // ---- leaf tagging ----------------------------------------------------
  // Bit 0 marks a leaf; bits 56..63 carry the key fingerprint (0 = none).
  // User-space pointers leave the top byte clear on every supported
  // target, so the fingerprint rides along for free and is stripped by
  // as_leaf() before any dereference.
  static constexpr unsigned kFpShift = 56;
  static constexpr uintptr_t kFpMask = uintptr_t{0xFF} << kFpShift;

  static bool is_leaf(const Node* n) {
    return (reinterpret_cast<uintptr_t>(n) & 1) != 0;
  }
  static Leaf* as_leaf(const Node* n) {
    return reinterpret_cast<Leaf*>(reinterpret_cast<uintptr_t>(n) &
                                   ~(kFpMask | uintptr_t{1}));
  }
  static Node* tag_leaf(Leaf* l, uint8_t fp) {
    return reinterpret_cast<Node*>(reinterpret_cast<uintptr_t>(l) |
                                   (uintptr_t{fp} << kFpShift) | 1);
  }
  static uint8_t leaf_fp(const Node* n) {
    return static_cast<uint8_t>(reinterpret_cast<uintptr_t>(n) >> kFpShift);
  }
  /// Guard a tagged-leaf probe: true = proceed to the full key compare,
  /// false = fingerprints prove a mismatch (key bytes never read). A zero
  /// stored fingerprint (guard-off writer) always proceeds.
  bool fp_check(const Node* n, uint8_t kfp) const {
    if (!fp_guard_) return true;
    const uint8_t lfp = leaf_fp(n);
    if (lfp == 0 || lfp == kfp) return true;
    detail::fp_skip_counter().inc();
    return false;
  }
  bool leaf_matches(const Leaf* l, Key k) const {
    const Key lk = traits_.key(l);
    return lk.size() == k.size() &&
           std::memcmp(lk.data(), k.data(), k.size()) == 0;
  }

  // ---- node memory ------------------------------------------------------
  template <class N>
  N* alloc_node(detail::NodeType t) {
    N* n = new N();  // value-init: atomics zero, child_index set by callers
    n->type = t;
    if (dram_bytes_)
      dram_bytes_->fetch_add(sizeof(N), std::memory_order_relaxed);
    return n;
  }
  void free_node(Node* n) {
    if (dram_bytes_)
      dram_bytes_->fetch_sub(node_size(n), std::memory_order_relaxed);
    switch (n->type) {
      case detail::kNode4: delete static_cast<Node4*>(n); break;
      case detail::kNode16: delete static_cast<Node16*>(n); break;
      case detail::kNode48: delete static_cast<Node48*>(n); break;
      default: delete static_cast<Node256*>(n); break;
    }
  }
  static size_t node_size(const Node* n) {
    switch (n->type) {
      case detail::kNode4: return sizeof(Node4);
      case detail::kNode16: return sizeof(Node16);
      case detail::kNode48: return sizeof(Node48);
      default: return sizeof(Node256);
    }
  }

  static void retire_cb(void* p, void* ctx) {
    static_cast<Tree*>(ctx)->free_node(static_cast<Node*>(p));
  }
  /// Replaced node: fail any reader still holding it, defer the free past
  /// every current reader epoch (or free eagerly without a domain).
  void retire_node(Node* n) REQUIRES_EBR_PIN {
    detail::mark_obsolete(n);
    if (ebr_ != nullptr)
      ebr_->retire(n, &retire_cb, this);
    else
      free_node(n);
  }

  void clear_rec(Node* n) {
    if (is_leaf(n)) return;
    for_each_child(n, [&](uint32_t, Node* c) {
      clear_rec(c);
      return true;
    });
    free_node(n);
  }

  // ---- child access -------------------------------------------------------
  /// Read-side child lookup: loads the slot value (acquire, so a freshly
  /// published node's immutable fields are visible). Tolerates torn state
  /// (bounds-checks NODE48 slots, null-checks) — a wrong answer under a
  /// concurrent edit is caught by the caller's validation.
  static Node* get_child(const Node* n, uint32_t byte) {
    switch (n->type) {
      case detail::kNode4: {
        const auto* p = static_cast<const Node4*>(n);
        const uint16_t nc = std::min<uint16_t>(
            p->num_children.load(std::memory_order_acquire), 4);
        for (uint16_t i = 0; i < nc; ++i)
          if (p->keys[i].load(std::memory_order_relaxed) == byte)
            return p->children[i].load(std::memory_order_acquire);
        return nullptr;
      }
      case detail::kNode16: {
        const auto* p = static_cast<const Node16*>(n);
        const uint16_t nc = std::min<uint16_t>(
            p->num_children.load(std::memory_order_acquire), 16);
#if HART_SIMD
        // One 16-byte compare over the atomic key array (layout-identical
        // to plain bytes; asserted below). A torn lane under a concurrent
        // writer yields at worst a wrong slot, exactly like the relaxed
        // scalar loads — the caller's validation catches it either way.
        if (simd::enabled()) {
          static_assert(sizeof(p->keys) == 16 &&
                        sizeof(std::atomic<uint8_t>) == 1);
          const int i = simd::find_byte16_vec(
              reinterpret_cast<const uint8_t*>(&p->keys[0]), nc,
              static_cast<uint8_t>(byte));
          return i >= 0 ? p->children[i].load(std::memory_order_acquire)
                        : nullptr;
        }
#endif
        for (uint16_t i = 0; i < nc; ++i)
          if (p->keys[i].load(std::memory_order_relaxed) == byte)
            return p->children[i].load(std::memory_order_acquire);
        return nullptr;
      }
      case detail::kNode48: {
        const auto* p = static_cast<const Node48*>(n);
        const uint8_t slot = p->child_index[byte].load(std::memory_order_relaxed);
        if (slot == detail::kEmptySlot || slot >= 48) return nullptr;
        return p->children[slot].load(std::memory_order_acquire);
      }
      default: {
        const auto* p = static_cast<const Node256*>(n);
        return p->children[byte].load(std::memory_order_acquire);
      }
    }
  }

  /// Write-side child lookup (writer-exclusive): the mutable slot.
  static std::atomic<Node*>* find_child_slot(Node* n, uint32_t byte) {
    switch (n->type) {
      case detail::kNode4: {
        auto* p = static_cast<Node4*>(n);
        const uint16_t nc = p->num_children.load(std::memory_order_relaxed);
        for (uint16_t i = 0; i < nc; ++i)
          if (p->keys[i].load(std::memory_order_relaxed) == byte)
            return &p->children[i];
        return nullptr;
      }
      case detail::kNode16: {
        auto* p = static_cast<Node16*>(n);
        const uint16_t nc = p->num_children.load(std::memory_order_relaxed);
#if HART_SIMD
        if (simd::enabled()) {
          const int i = simd::find_byte16_vec(
              reinterpret_cast<const uint8_t*>(&p->keys[0]), nc,
              static_cast<uint8_t>(byte));
          return i >= 0 ? &p->children[i] : nullptr;
        }
#endif
        for (uint16_t i = 0; i < nc; ++i)
          if (p->keys[i].load(std::memory_order_relaxed) == byte)
            return &p->children[i];
        return nullptr;
      }
      case detail::kNode48: {
        auto* p = static_cast<Node48*>(n);
        const uint8_t slot = p->child_index[byte].load(std::memory_order_relaxed);
        return slot == detail::kEmptySlot ? nullptr : &p->children[slot];
      }
      default: {
        auto* p = static_cast<Node256*>(n);
        return p->children[byte].load(std::memory_order_relaxed) != nullptr
                   ? &p->children[byte]
                   : nullptr;
      }
    }
  }

  /// Invoke f(byte, child) in ascending key-byte order; f returns false to
  /// stop. Returns false iff stopped. Null-checks every slot so a torn
  /// snapshot (concurrent writer) cannot yield a null deref downstream.
  template <class F>
  static bool for_each_child(const Node* n, F&& f) {
    switch (n->type) {
      case detail::kNode4: {
        const auto* p = static_cast<const Node4*>(n);
        const uint16_t nc = std::min<uint16_t>(
            p->num_children.load(std::memory_order_acquire), 4);
        for (uint16_t i = 0; i < nc; ++i) {
          Node* c = p->children[i].load(std::memory_order_acquire);
          if (c != nullptr &&
              !f(p->keys[i].load(std::memory_order_relaxed), c))
            return false;
        }
        return true;
      }
      case detail::kNode16: {
        const auto* p = static_cast<const Node16*>(n);
        const uint16_t nc = std::min<uint16_t>(
            p->num_children.load(std::memory_order_acquire), 16);
        for (uint16_t i = 0; i < nc; ++i) {
          Node* c = p->children[i].load(std::memory_order_acquire);
          if (c != nullptr &&
              !f(p->keys[i].load(std::memory_order_relaxed), c))
            return false;
        }
        return true;
      }
      case detail::kNode48: {
        const auto* p = static_cast<const Node48*>(n);
#if HART_SIMD
        // Vector scan for occupied child_index entries; the slot value is
        // re-loaded atomically once found, so torn-snapshot tolerance is
        // unchanged from the scalar walk below.
        if (simd::enabled()) {
          const auto* idx =
              reinterpret_cast<const uint8_t*>(&p->child_index[0]);
          static_assert(sizeof(p->child_index) == 256);
          for (unsigned b =
                   simd::next_occupied48_vec(idx, 0, detail::kEmptySlot);
               b < 256;
               b = simd::next_occupied48_vec(idx, b + 1, detail::kEmptySlot)) {
            const uint8_t slot =
                p->child_index[b].load(std::memory_order_relaxed);
            if (slot == detail::kEmptySlot || slot >= 48) continue;
            Node* c = p->children[slot].load(std::memory_order_acquire);
            if (c != nullptr && !f(b, c)) return false;
          }
          return true;
        }
#endif
        for (uint32_t b = 0; b < 256; ++b) {
          const uint8_t slot =
              p->child_index[b].load(std::memory_order_relaxed);
          if (slot == detail::kEmptySlot || slot >= 48) continue;
          Node* c = p->children[slot].load(std::memory_order_acquire);
          if (c != nullptr && !f(b, c)) return false;
        }
        return true;
      }
      default: {
        const auto* p = static_cast<const Node256*>(n);
        for (uint32_t b = 0; b < 256; ++b) {
          Node* c = p->children[b].load(std::memory_order_acquire);
          if (c != nullptr && !f(b, c)) return false;
        }
        return true;
      }
    }
  }

  /// Leftmost leaf of `n`'s subtree; nullptr on a torn snapshot that
  /// dead-ends (only possible under a concurrent writer — callers on the
  /// optimistic path treat it as "invalid, will be re-validated").
  Leaf* minimum(const Node* n) const {
    while (n != nullptr && !is_leaf(n)) {
      const Node* next = nullptr;
      for_each_child(n, [&](uint32_t, Node* c) {
        next = c;
        return false;  // first (smallest) child
      });
      n = next;
    }
    return n != nullptr ? as_leaf(n) : nullptr;
  }

  // ---- prefix helpers ----------------------------------------------------
  /// Full logical mismatch position of `k` against n's compressed path,
  /// reading bytes past kMaxPrefixLen from the subtree's minimum leaf.
  uint32_t prefix_mismatch(const Node* n, Key k, uint32_t depth) const {
    const uint32_t stored = std::min(n->prefix_len, kMaxPrefixLen);
    uint32_t i = 0;
    for (; i < stored; ++i)
      if (n->prefix[i] != key_at(k, depth + i)) return i;
    if (n->prefix_len > kMaxPrefixLen) {
      Leaf* ml = minimum(n);
      if (ml == nullptr) return i;  // torn snapshot; writer-side never hits
      const Key lk = traits_.key(ml);
      for (; i < n->prefix_len; ++i)
        if (key_at(lk, depth + i) != key_at(k, depth + i)) return i;
    }
    return n->prefix_len;
  }

  // ---- raw (unpublished-node) child insertion ----------------------------
  /// Sorted insert into a NODE4/16 that is not yet published (or whose
  /// version is locked by the caller): plain relaxed stores, no locking.
  template <class N>
  static void add_sorted_raw(N* p, uint32_t byte, Node* child) {
    const uint16_t nc = p->num_children.load(std::memory_order_relaxed);
    uint16_t pos = 0;
    while (pos < nc && p->keys[pos].load(std::memory_order_relaxed) < byte)
      ++pos;
    for (uint16_t i = nc; i > pos; --i) {
      p->keys[i].store(p->keys[i - 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      p->children[i].store(p->children[i - 1].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    p->keys[pos].store(static_cast<uint8_t>(byte), std::memory_order_relaxed);
    p->children[pos].store(child, std::memory_order_relaxed);
    p->num_children.store(nc + 1, std::memory_order_relaxed);
  }

  static void copy_header(Node* dst, const Node* src) {
    dst->num_children.store(src->num_children.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    dst->prefix_len = src->prefix_len;
    std::memcpy(dst->prefix, src->prefix, kMaxPrefixLen);
  }

  /// Deep-copy of one node (children pointers shared, not cloned) — the
  /// building block of every clone-and-publish structural change.
  Node* clone_node(const Node* n) {
    switch (n->type) {
      case detail::kNode4: {
        const auto* s = static_cast<const Node4*>(n);
        auto* d = alloc_node<Node4>(detail::kNode4);
        copy_header(d, s);
        for (int i = 0; i < 4; ++i) {
          d->keys[i].store(s->keys[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
          d->children[i].store(s->children[i].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
        }
        return d;
      }
      case detail::kNode16: {
        const auto* s = static_cast<const Node16*>(n);
        auto* d = alloc_node<Node16>(detail::kNode16);
        copy_header(d, s);
        for (int i = 0; i < 16; ++i) {
          d->keys[i].store(s->keys[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
          d->children[i].store(s->children[i].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
        }
        return d;
      }
      case detail::kNode48: {
        const auto* s = static_cast<const Node48*>(n);
        auto* d = alloc_node<Node48>(detail::kNode48);
        copy_header(d, s);
        for (uint32_t b = 0; b < 256; ++b)
          d->child_index[b].store(
              s->child_index[b].load(std::memory_order_relaxed),
              std::memory_order_relaxed);
        for (int i = 0; i < 48; ++i)
          d->children[i].store(s->children[i].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
        return d;
      }
      default: {
        const auto* s = static_cast<const Node256*>(n);
        auto* d = alloc_node<Node256>(detail::kNode256);
        copy_header(d, s);
        for (uint32_t b = 0; b < 256; ++b)
          d->children[b].store(s->children[b].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
        return d;
      }
    }
  }

  // ---- add / grow ----------------------------------------------------------
  /// Add `child` under `byte`. In place (seqlocked) when the node has room;
  /// otherwise grow: build the bigger node off-line with the new child
  /// already in it, publish with one release store, retire the old node.
  void add_child(std::atomic<Node*>& ref, Node* n, uint32_t byte,
                 Node* child) REQUIRES_EBR_PIN {
    switch (n->type) {
      case detail::kNode4: {
        auto* p = static_cast<Node4*>(n);
        if (p->num_children.load(std::memory_order_relaxed) < 4) {
          detail::lock_version(p);
          add_sorted_raw(p, byte, child);
          detail::unlock_version(p);
        } else {
          detail::grow_counter().inc();
          auto* g = alloc_node<Node16>(detail::kNode16);
          copy_header(g, p);
          for (int i = 0; i < 4; ++i) {
            g->keys[i].store(p->keys[i].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
            g->children[i].store(
                p->children[i].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
          }
          add_sorted_raw(g, byte, child);
          ref.store(g, std::memory_order_release);
          retire_node(p);
        }
        return;
      }
      case detail::kNode16: {
        auto* p = static_cast<Node16*>(n);
        if (p->num_children.load(std::memory_order_relaxed) < 16) {
          detail::lock_version(p);
          add_sorted_raw(p, byte, child);
          detail::unlock_version(p);
        } else {
          detail::grow_counter().inc();
          auto* g = alloc_node<Node48>(detail::kNode48);
          for (uint32_t b = 0; b < 256; ++b)
            g->child_index[b].store(detail::kEmptySlot,
                                    std::memory_order_relaxed);
          for (int i = 0; i < 16; ++i) {
            g->child_index[p->keys[i].load(std::memory_order_relaxed)].store(
                static_cast<uint8_t>(i), std::memory_order_relaxed);
            g->children[i].store(
                p->children[i].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
          }
          copy_header(g, p);
          g->children[16].store(child, std::memory_order_relaxed);
          g->child_index[byte].store(16, std::memory_order_relaxed);
          g->num_children.store(17, std::memory_order_relaxed);
          ref.store(g, std::memory_order_release);
          retire_node(p);
        }
        return;
      }
      case detail::kNode48: {
        auto* p = static_cast<Node48*>(n);
        if (p->num_children.load(std::memory_order_relaxed) < 48) {
          detail::lock_version(p);
          int slot = 0;
          while (p->children[slot].load(std::memory_order_relaxed) != nullptr)
            ++slot;
          p->children[slot].store(child, std::memory_order_relaxed);
          p->child_index[byte].store(static_cast<uint8_t>(slot),
                                     std::memory_order_relaxed);
          p->num_children.fetch_add(1, std::memory_order_relaxed);
          detail::unlock_version(p);
        } else {
          detail::grow_counter().inc();
          auto* g = alloc_node<Node256>(detail::kNode256);
          for (uint32_t b = 0; b < 256; ++b) {
            const uint8_t slot =
                p->child_index[b].load(std::memory_order_relaxed);
            if (slot != detail::kEmptySlot)
              g->children[b].store(
                  p->children[slot].load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
          }
          copy_header(g, p);
          g->children[byte].store(child, std::memory_order_relaxed);
          g->num_children.store(49, std::memory_order_relaxed);
          ref.store(g, std::memory_order_release);
          retire_node(p);
        }
        return;
      }
      default: {
        auto* p = static_cast<Node256*>(n);
        detail::lock_version(p);
        p->children[byte].store(child, std::memory_order_relaxed);
        p->num_children.fetch_add(1, std::memory_order_relaxed);
        detail::unlock_version(p);
        return;
      }
    }
  }

  // ---- insert ----------------------------------------------------------
  Leaf* insert_rec(std::atomic<Node*>& ref, Key k, Leaf* leaf,
                   uint32_t depth, uint8_t kfp) REQUIRES_EBR_PIN {
    Node* n = ref.load(std::memory_order_relaxed);
    if (n == nullptr) {
      ref.store(tag_leaf(leaf, kfp), std::memory_order_release);
      count_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    if (is_leaf(n)) {
      Leaf* existing = as_leaf(n);
      if (leaf_matches(existing, k)) return existing;
      // Lazy expansion undone: split into a NODE4 under the common prefix.
      // `n` is re-stored as-is, so the existing leaf keeps its fingerprint.
      const Key ek = traits_.key(existing);
      uint32_t lcp = 0;
      while (key_at(k, depth + lcp) == key_at(ek, depth + lcp)) ++lcp;
      auto* nn = alloc_node<Node4>(detail::kNode4);
      nn->prefix_len = lcp;
      for (uint32_t i = 0; i < std::min(lcp, kMaxPrefixLen); ++i)
        nn->prefix[i] = static_cast<uint8_t>(key_at(k, depth + i));
      add_sorted_raw(nn, key_at(k, depth + lcp), tag_leaf(leaf, kfp));
      add_sorted_raw(nn, key_at(ek, depth + lcp), n);
      ref.store(nn, std::memory_order_release);
      count_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }

    if (n->prefix_len > 0) {
      const uint32_t p = prefix_mismatch(n, k, depth);
      if (p < n->prefix_len) {
        // Split the compressed path at position p. n's prefix is immutable
        // once published, so the shortened remainder is a clone of n; the
        // new NODE4 points at the clone and the new leaf, and n retires.
        auto* nn = alloc_node<Node4>(detail::kNode4);
        nn->prefix_len = p;
        std::memcpy(nn->prefix, n->prefix, std::min(p, kMaxPrefixLen));
        Node* shrunk = clone_node(n);
        shrunk->prefix_len = n->prefix_len - (p + 1);
        uint32_t edge;
        if (n->prefix_len <= kMaxPrefixLen) {
          edge = n->prefix[p];
          for (uint32_t i = 0; i < std::min(shrunk->prefix_len, kMaxPrefixLen);
               ++i)
            shrunk->prefix[i] = n->prefix[p + 1 + i];
        } else {
          // Recover the edge byte and the new stored prefix from a leaf.
          const Key lk = traits_.key(minimum(n));
          edge = key_at(lk, depth + p);
          for (uint32_t i = 0; i < std::min(shrunk->prefix_len, kMaxPrefixLen);
               ++i)
            shrunk->prefix[i] =
                static_cast<uint8_t>(key_at(lk, depth + p + 1 + i));
        }
        add_sorted_raw(nn, edge, shrunk);
        add_sorted_raw(nn, key_at(k, depth + p), tag_leaf(leaf, kfp));
        ref.store(nn, std::memory_order_release);
        retire_node(n);
        count_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      depth += n->prefix_len;
    }

    std::atomic<Node*>* child = find_child_slot(n, key_at(k, depth));
    if (child != nullptr) return insert_rec(*child, k, leaf, depth + 1, kfp);
    add_child(ref, n, key_at(k, depth), tag_leaf(leaf, kfp));
    count_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  // ---- remove / shrink ---------------------------------------------------
  Leaf* remove_rec(std::atomic<Node*>& ref, Key k, uint32_t depth,
                   uint8_t kfp) REQUIRES_EBR_PIN {
    Node* n = ref.load(std::memory_order_relaxed);
    if (n == nullptr) return nullptr;
    if (is_leaf(n)) {
      if (!fp_check(n, kfp)) return nullptr;
      Leaf* l = as_leaf(n);
      if (!leaf_matches(l, k)) return nullptr;
      ref.store(nullptr, std::memory_order_release);
      count_.fetch_sub(1, std::memory_order_relaxed);
      return l;
    }
    if (n->prefix_len > 0) {
      const uint32_t stored = std::min(n->prefix_len, kMaxPrefixLen);
      for (uint32_t i = 0; i < stored; ++i)
        if (n->prefix[i] != key_at(k, depth + i)) return nullptr;
      depth += n->prefix_len;
    }
    const uint32_t byte = key_at(k, depth);
    std::atomic<Node*>* child = find_child_slot(n, byte);
    if (child == nullptr) return nullptr;
    Node* c = child->load(std::memory_order_relaxed);
    if (is_leaf(c)) {
      if (!fp_check(c, kfp)) return nullptr;
      Leaf* l = as_leaf(c);
      if (!leaf_matches(l, k)) return nullptr;
      remove_child(ref, n, byte);
      count_.fetch_sub(1, std::memory_order_relaxed);
      return l;
    }
    return remove_rec(*child, k, depth + 1, kfp);
  }

  /// Remove the child under `byte`. In place (seqlocked) normally; at the
  /// shrink thresholds (or the NODE4 collapse) build the smaller
  /// replacement off-line, publish, retire the old node(s).
  void remove_child(std::atomic<Node*>& ref, Node* n, uint32_t byte)
      REQUIRES_EBR_PIN {
    switch (n->type) {
      case detail::kNode4: {
        auto* p = static_cast<Node4*>(n);
        const uint16_t nc = p->num_children.load(std::memory_order_relaxed);
        if (nc == 2) {
          // Collapse: splice the surviving child into the parent slot.
          const uint16_t keep =
              p->keys[0].load(std::memory_order_relaxed) == byte ? 1 : 0;
          const uint8_t edge = p->keys[keep].load(std::memory_order_relaxed);
          Node* child = p->children[keep].load(std::memory_order_relaxed);
          if (is_leaf(child)) {
            ref.store(child, std::memory_order_release);
            retire_node(p);
          } else {
            // Re-concatenate the compressed paths (path compression) on a
            // clone — child's own prefix must stay immutable for readers.
            Node* merged = clone_node(child);
            uint8_t buf[kMaxPrefixLen];
            uint32_t pl = p->prefix_len;  // logical length
            std::memcpy(buf, p->prefix, std::min(pl, kMaxPrefixLen));
            if (pl < kMaxPrefixLen) buf[pl] = edge;
            ++pl;
            if (pl < kMaxPrefixLen) {
              const uint32_t sub =
                  std::min(child->prefix_len, kMaxPrefixLen - pl);
              std::memcpy(buf + pl, child->prefix, sub);
              pl += sub;
            }
            std::memcpy(merged->prefix, buf, std::min(pl, kMaxPrefixLen));
            merged->prefix_len = child->prefix_len + p->prefix_len + 1;
            ref.store(merged, std::memory_order_release);
            retire_node(child);
            retire_node(p);
          }
          return;
        }
        detail::lock_version(p);
        remove_sorted_locked(p, byte, nc);
        detail::unlock_version(p);
        return;
      }
      case detail::kNode16: {
        auto* p = static_cast<Node16*>(n);
        const uint16_t nc = p->num_children.load(std::memory_order_relaxed);
        if (nc == 4) {  // dropping to 3: shrink to NODE4
          auto* s = alloc_node<Node4>(detail::kNode4);
          copy_header(s, p);
          uint16_t j = 0;
          for (uint16_t i = 0; i < nc; ++i) {
            const uint8_t kb = p->keys[i].load(std::memory_order_relaxed);
            if (kb == byte) continue;
            s->keys[j].store(kb, std::memory_order_relaxed);
            s->children[j].store(
                p->children[i].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            ++j;
          }
          s->num_children.store(j, std::memory_order_relaxed);
          ref.store(s, std::memory_order_release);
          retire_node(p);
          return;
        }
        detail::lock_version(p);
        remove_sorted_locked(p, byte, nc);
        detail::unlock_version(p);
        return;
      }
      case detail::kNode48: {
        auto* p = static_cast<Node48*>(n);
        const uint16_t nc = p->num_children.load(std::memory_order_relaxed);
        if (nc == 13) {  // dropping to 12: shrink to NODE16
          auto* s = alloc_node<Node16>(detail::kNode16);
          copy_header(s, p);
          uint16_t j = 0;
          for (uint32_t b = 0; b < 256; ++b) {
            if (b == byte) continue;
            const uint8_t slot =
                p->child_index[b].load(std::memory_order_relaxed);
            if (slot == detail::kEmptySlot) continue;
            s->keys[j].store(static_cast<uint8_t>(b),
                             std::memory_order_relaxed);
            s->children[j].store(
                p->children[slot].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            ++j;
          }
          s->num_children.store(j, std::memory_order_relaxed);
          ref.store(s, std::memory_order_release);
          retire_node(p);
          return;
        }
        detail::lock_version(p);
        const uint8_t slot_idx =
            p->child_index[byte].load(std::memory_order_relaxed);
        p->child_index[byte].store(detail::kEmptySlot,
                                   std::memory_order_relaxed);
        p->children[slot_idx].store(nullptr, std::memory_order_relaxed);
        p->num_children.fetch_sub(1, std::memory_order_relaxed);
        detail::unlock_version(p);
        return;
      }
      default: {
        auto* p = static_cast<Node256*>(n);
        const uint16_t nc = p->num_children.load(std::memory_order_relaxed);
        if (nc == 38) {  // dropping to 37: shrink to NODE48
          auto* s = alloc_node<Node48>(detail::kNode48);
          copy_header(s, p);
          for (uint32_t b = 0; b < 256; ++b)
            s->child_index[b].store(detail::kEmptySlot,
                                    std::memory_order_relaxed);
          uint16_t j = 0;
          for (uint32_t b = 0; b < 256; ++b) {
            if (b == byte) continue;
            Node* c = p->children[b].load(std::memory_order_relaxed);
            if (c == nullptr) continue;
            s->child_index[b].store(static_cast<uint8_t>(j),
                                    std::memory_order_relaxed);
            s->children[j].store(c, std::memory_order_relaxed);
            ++j;
          }
          s->num_children.store(j, std::memory_order_relaxed);
          ref.store(s, std::memory_order_release);
          retire_node(p);
          return;
        }
        detail::lock_version(p);
        p->children[byte].store(nullptr, std::memory_order_relaxed);
        p->num_children.fetch_sub(1, std::memory_order_relaxed);
        detail::unlock_version(p);
        return;
      }
    }
  }

  /// In-place sorted removal from a version-locked NODE4/16.
  template <class N>
  static void remove_sorted_locked(N* p, uint32_t byte, uint16_t nc) {
    uint16_t pos = 0;
    while (pos < nc && p->keys[pos].load(std::memory_order_relaxed) != byte)
      ++pos;
    for (uint16_t i = pos; i + 1 < nc; ++i) {
      p->keys[i].store(p->keys[i + 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      p->children[i].store(p->children[i + 1].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    p->num_children.store(nc - 1, std::memory_order_relaxed);
  }

  // ---- optimistic descent --------------------------------------------------
  /// One validate-and-retry attempt (classic OLC interleaved validation:
  /// re-check the parent after pinning the child's version, so a child
  /// retired between the two reads forces a restart instead of a stale
  /// answer). ok == false: torn, caller retries.
  SearchResult search_attempt(Key k) const {
    const uint8_t kfp = fp_guard_ ? key_fingerprint(k) : uint8_t{0};
    Node* n = root_.load(std::memory_order_acquire);
    if (n == nullptr) return {nullptr, true};
    if (is_leaf(n)) {
      if (!fp_check(n, kfp)) return {nullptr, true};
      Leaf* l = as_leaf(n);
      if (leaf_matches(l, k)) return {l, true};
      if (fp_guard_) detail::fp_false_positive_counter().inc();
      return {nullptr, true};
    }
    uint64_t v;
    if (!detail::read_begin(n, &v)) return {nullptr, false};
    uint32_t depth = 0;
    for (;;) {
      const uint32_t plen = n->prefix_len;  // immutable once published
      const uint32_t m = std::min(plen, kMaxPrefixLen);
      bool mismatch = false;
      for (uint32_t i = 0; i < m; ++i)
        if (n->prefix[i] != key_at(k, depth + i)) {
          mismatch = true;
          break;
        }
      Node* child =
          mismatch ? nullptr : get_child(n, key_at(k, depth + plen));
      if (!detail::read_validate(n, v)) return {nullptr, false};
      if (mismatch || child == nullptr) return {nullptr, true};
      depth += plen + 1;
      if (is_leaf(child)) {
        // The parent validated above, so `child` is a consistent read; the
        // fingerprint decides off the pointer bits alone — a guarded miss
        // never dereferences the leaf (no PM key read).
        if (!fp_check(child, kfp)) return {nullptr, true};
        Leaf* l = as_leaf(child);
        if (leaf_matches(l, k)) return {l, true};
        if (fp_guard_) detail::fp_false_positive_counter().inc();
        return {nullptr, true};
      }
      uint64_t vc;
      if (!detail::read_begin(child, &vc)) return {nullptr, false};
      if (!detail::read_validate(n, v)) return {nullptr, false};
      n = child;
      v = vc;
    }
  }

  // ---- ordered walks -------------------------------------------------------
  template <class F>
  bool walk_all(const Node* n, F& fn) const {
    if (is_leaf(n)) return fn(as_leaf(n));
    return for_each_child(n,
                          [&](uint32_t, Node* c) { return walk_all(c, fn); });
  }

  /// -1: subtree entirely < lo is possible (prefix < lo segment)
  ///  0: prefix equals lo's bytes at [depth, depth+prefix_len)
  /// +1: subtree entirely >= lo (prefix > lo segment)
  int compare_prefix(const Node* n, Key lo, uint32_t depth) const {
    const uint32_t stored = std::min(n->prefix_len, kMaxPrefixLen);
    for (uint32_t i = 0; i < stored; ++i) {
      const uint32_t a = n->prefix[i];
      const uint32_t b = key_at(lo, depth + i);
      if (a != b) return a < b ? -1 : 1;
    }
    if (n->prefix_len > kMaxPrefixLen) {
      Leaf* ml = minimum(n);
      if (ml == nullptr) return -1;  // torn snapshot; caller revalidates
      const Key lk = traits_.key(ml);
      for (uint32_t i = stored; i < n->prefix_len; ++i) {
        const uint32_t a = key_at(lk, depth + i);
        const uint32_t b = key_at(lo, depth + i);
        if (a != b) return a < b ? -1 : 1;
      }
    }
    return 0;
  }

  template <class F>
  bool walk_from(const Node* n, Key lo, uint32_t depth, F& fn) const {
    if (is_leaf(n)) {
      Leaf* l = as_leaf(n);
      const Key lk = traits_.key(l);
      // Compare lk against lo from `depth` (all earlier bytes are equal on
      // the boundary path).
      const uint32_t end = std::max(key_len(lk), key_len(lo));
      for (uint32_t i = depth; i < end; ++i) {
        const uint32_t a = key_at(lk, i);
        const uint32_t b = key_at(lo, i);
        if (a != b) return a < b ? true : fn(l);
      }
      return fn(l);  // equal
    }
    if (n->prefix_len > 0) {
      const int c = compare_prefix(n, lo, depth);
      if (c < 0) return true;           // whole subtree < lo: skip
      if (c > 0) return walk_all(n, fn);  // whole subtree > lo
      depth += n->prefix_len;
    }
    const uint32_t b = key_at(lo, depth);
    return for_each_child(n, [&](uint32_t byte, Node* c) {
      if (byte < b) return true;
      if (byte > b) return walk_all(c, fn);
      return walk_from(c, lo, depth + 1, fn);
    });
  }

  Traits traits_;
  std::atomic<uint64_t>* dram_bytes_;
  common::ebr::Domain* ebr_;
  bool fp_guard_;
  std::atomic<Node*> root_{nullptr};
  std::atomic<size_t> count_{0};
};

}  // namespace hart::art
