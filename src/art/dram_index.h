// A purely volatile ART-backed index: no persistence, no PM, no recovery.
// Not part of the paper's comparison — it serves as the DRAM upper bound
// in the "cost of persistence" ablation (how much of HART's time goes into
// durability rather than indexing) and as a differential-testing oracle.
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>

#include "art/art_tree.h"
#include "common/index.h"

namespace hart::art {

class DramIndex final : public common::Index {
 public:
  DramIndex() : tree_(LeafTraits{}, &dram_bytes_) {}
  ~DramIndex() override {
    tree_.for_each([](Leaf* l) {
      delete l;
      return true;
    });
    tree_.clear();
  }

  bool insert(std::string_view key, std::string_view value) override {
    validate(key, value);
    std::unique_lock lk(mu_);
    if (Leaf* existing = tree_.search(as_key(key)); existing != nullptr) {
      existing->value.assign(value);
      return false;
    }
    auto leaf = std::make_unique<Leaf>();
    leaf->key.assign(key);
    leaf->value.assign(value);
    account(*leaf, +1);
    Leaf* raw = leaf.release();  // (do not mix release() into the call:
                                 // argument evaluation order is unspecified)
    tree_.insert(as_key(raw->key), raw);
    return true;
  }

  bool search(std::string_view key, std::string* out) const override {
    validate_key(key);
    std::shared_lock lk(mu_);
    const Leaf* l = tree_.search(as_key(key));
    if (l == nullptr) return false;
    if (out != nullptr) *out = l->value;
    return true;
  }

  bool update(std::string_view key, std::string_view value) override {
    validate(key, value);
    std::unique_lock lk(mu_);
    Leaf* l = tree_.search(as_key(key));
    if (l == nullptr) return false;
    l->value.assign(value);
    return true;
  }

  bool remove(std::string_view key) override {
    validate_key(key);
    std::unique_lock lk(mu_);
    Leaf* l = tree_.remove(as_key(key));
    if (l == nullptr) return false;
    account(*l, -1);
    delete l;
    return true;
  }

  size_t range(std::string_view lo, size_t limit,
               std::vector<std::pair<std::string, std::string>>* out)
      const override {
    validate_key(lo);
    out->clear();
    if (limit == 0) return 0;
    std::shared_lock lk(mu_);
    tree_.for_each_from(as_key(lo), [&](Leaf* l) {
      out->emplace_back(l->key, l->value);
      return out->size() < limit;
    });
    return out->size();
  }

  size_t size() const override {
    std::shared_lock lk(mu_);
    return tree_.size();
  }

  common::MemoryUsage memory_usage() const override {
    common::MemoryUsage u;
    u.dram_bytes = dram_bytes_.load(std::memory_order_relaxed);
    u.pm_bytes = 0;  // nothing is persistent
    return u;
  }

  const char* name() const override { return "DRAM-ART"; }

 private:
  struct Leaf {
    std::string key;
    std::string value;
  };
  struct LeafTraits {
    using Leaf = DramIndex::Leaf;
    Key key(const Leaf* l) const {
      return {reinterpret_cast<const uint8_t*>(l->key.data()),
              l->key.size()};
    }
  };

  static Key as_key(std::string_view s) {
    return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
  }
  static void validate_key(std::string_view key) {
    if (key.empty() || key.size() > common::kMaxKeyLen)
      throw std::invalid_argument("key length must be 1..24 bytes");
    if (std::memchr(key.data(), 0, key.size()) != nullptr)
      throw std::invalid_argument("keys must not contain NUL bytes");
  }
  static void validate(std::string_view key, std::string_view value) {
    validate_key(key);
    if (value.empty() || value.size() > common::kMaxValueLen)
      throw std::invalid_argument("value length must be 1..64 bytes");
  }
  void account(const Leaf& l, int sign) {
    const auto bytes = static_cast<uint64_t>(
        sizeof(Leaf) + l.key.capacity() + l.value.capacity());
    if (sign > 0)
      dram_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    else
      dram_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  mutable std::shared_mutex mu_;
  std::atomic<uint64_t> dram_bytes_{0};
  Tree<LeafTraits> tree_;
};

}  // namespace hart::art
