// A purely volatile ART-backed index: no persistence, no PM, no recovery.
// Not part of the paper's comparison — it serves as the DRAM upper bound
// in the "cost of persistence" ablation (how much of HART's time goes into
// durability rather than indexing) and as a differential-testing oracle.
//
// Reads stay under the shared lock (no EBR domain is passed to the tree,
// so node frees are eager) — optimistic reads are HART's job; the oracle
// stays simple.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>

#include "art/art_tree.h"
#include "common/annotations.h"
#include "common/index.h"

namespace hart::art {

class DramIndex final : public common::Index {
 public:
  DramIndex() : tree_(LeafTraits{}, &dram_bytes_) {}
  ~DramIndex() override {
    tree_.for_each([](Leaf* l) {
      delete l;
      return true;
    });
    tree_.clear();
  }

  common::Status insert(std::string_view key,
                        std::string_view value) override {
    if (auto s = common::validate_key(key); !s.ok()) return s;
    if (auto s = common::validate_value(value); !s.ok()) return s;
    common::WriterLock lk(mu_);
    if (Leaf* existing = tree_.search(as_key(key)); existing != nullptr) {
      existing->value.assign(value);
      return common::Status::kUpdated;
    }
    auto leaf = std::make_unique<Leaf>();
    leaf->key.assign(key);
    leaf->value.assign(value);
    account(*leaf, +1);
    Leaf* raw = leaf.release();  // (do not mix release() into the call:
                                 // argument evaluation order is unspecified)
    HARTLINT_SUPPRESS("HL003: tree has no EBR domain (eager frees)")
    tree_.insert(as_key(raw->key), raw);
    return common::Status::kInserted;
  }

  common::Status search(std::string_view key, std::string* out) const override {
    if (auto s = common::validate_key(key); !s.ok()) return s;
    common::ReaderLock lk(mu_);
    const Leaf* l = tree_.search(as_key(key));
    if (l == nullptr) return common::Status::kNotFound;
    if (out != nullptr) *out = l->value;
    return common::Status::kOk;
  }

  common::Status update(std::string_view key,
                        std::string_view value) override {
    if (auto s = common::validate_key(key); !s.ok()) return s;
    if (auto s = common::validate_value(value); !s.ok()) return s;
    common::WriterLock lk(mu_);
    Leaf* l = tree_.search(as_key(key));
    if (l == nullptr) return common::Status::kNotFound;
    l->value.assign(value);
    return common::Status::kOk;
  }

  common::Status remove(std::string_view key) override {
    if (auto s = common::validate_key(key); !s.ok()) return s;
    common::WriterLock lk(mu_);
    HARTLINT_SUPPRESS("HL003: tree has no EBR domain (eager frees)")
    Leaf* l = tree_.remove(as_key(key));
    if (l == nullptr) return common::Status::kNotFound;
    account(*l, -1);
    delete l;
    return common::Status::kOk;
  }

  size_t range(std::string_view lo, size_t limit,
               std::vector<std::pair<std::string, std::string>>* out)
      const override {
    out->clear();
    if (limit == 0 || !common::validate_key(lo).ok()) return 0;
    common::ReaderLock lk(mu_);
    tree_.for_each_from(as_key(lo), [&](Leaf* l) {
      out->emplace_back(l->key, l->value);
      return out->size() < limit;
    });
    return out->size();
  }

  size_t size() const override {
    common::ReaderLock lk(mu_);
    return tree_.size();
  }

  common::MemoryUsage memory_usage() const override {
    common::MemoryUsage u;
    u.dram_bytes = dram_bytes_.load(std::memory_order_relaxed);
    u.pm_bytes = 0;  // nothing is persistent
    return u;
  }

  const char* name() const override { return "DRAM-ART"; }

 private:
  struct Leaf {
    std::string key;
    std::string value;
  };
  struct LeafTraits {
    using Leaf = DramIndex::Leaf;
    Key key(const Leaf* l) const {
      return {reinterpret_cast<const uint8_t*>(l->key.data()),
              l->key.size()};
    }
  };

  static Key as_key(std::string_view s) {
    return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
  }
  void account(const Leaf& l, int sign) {
    const auto bytes = static_cast<uint64_t>(
        sizeof(Leaf) + l.key.capacity() + l.value.capacity());
    if (sign > 0)
      dram_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    else
      dram_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  mutable common::SharedMutex mu_;
  std::atomic<uint64_t> dram_bytes_{0};
  Tree<LeafTraits> tree_ GUARDED_BY(mu_);
};

}  // namespace hart::art
