// SIMD in-node search primitives for the ART descent hot path.
//
// Two operations dominate a radix descent once nodes fan out:
//
//   * find_byte16 — locate a key byte in a NODE16's 16-entry key array
//     (one _mm_cmpeq_epi8 + movemask instead of a scalar scan);
//   * next_occupied48 — find the next non-empty entry in a NODE48's
//     256-byte child_index (16B SSE2 / 32B AVX2 chunks instead of a
//     byte-at-a-time walk), used by ordered iteration and range scans.
//
// Selection is layered:
//
//   compile time  HART_NO_SIMD (CMake option) or a non-x86 target or a
//                 ThreadSanitizer build compiles the vector paths out
//                 entirely (HART_SIMD == 0). TSAN is excluded because the
//                 vector loads read std::atomic<uint8_t> arrays as raw
//                 16/32-byte lanes — bit-identical layout and safe under
//                 the seqlock validation protocol, but indistinguishable
//                 from a data race to the instrumenter.
//   run time      set_enabled(false) flips every dispatching call site
//                 back to the scalar loop without a rebuild — this is what
//                 bench/micro_ablation uses to isolate the SIMD layer.
//   CPU dispatch  next_occupied48 upgrades from SSE2 (x86-64 baseline) to
//                 AVX2 when the host supports it (cached cpuid probe).
//
// The scalar reference implementations are always compiled so the
// differential tests can compare vector vs scalar on any build.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/counters.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HART_SIMD_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define HART_SIMD_TSAN 1
#endif

#if !defined(HART_NO_SIMD) && !defined(HART_SIMD_TSAN) && \
    (defined(__SSE2__) || defined(__x86_64__))
#define HART_SIMD 1
#else
#define HART_SIMD 0
#endif

#if HART_SIMD
#include <immintrin.h>
#endif

namespace hart::art::simd {

namespace detail {
inline std::atomic<bool>& runtime_flag() {
  static std::atomic<bool> on{true};
  return on;
}
/// HARTscope: vectorized in-node compares issued (one per 16/32-byte lane
/// scan). Zero when compiled out or runtime-disabled.
inline obs::Counter& cmp_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("art_simd_cmp_total");
  return c;
}
}  // namespace detail

/// True iff the vector paths exist in this binary.
constexpr bool compiled() { return HART_SIMD != 0; }

/// Runtime kill switch (ablation / diagnostics); defaults to on.
inline bool enabled() {
  return compiled() && detail::runtime_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::runtime_flag().store(on, std::memory_order_relaxed);
}

// ---- scalar references (always available) -------------------------------
/// Index of `byte` within keys[0, min(count,16)), or -1.
inline int find_byte16_scalar(const uint8_t* keys, unsigned count,
                              uint8_t byte) {
  const unsigned n = count < 16 ? count : 16;
  for (unsigned i = 0; i < n; ++i)
    if (keys[i] == byte) return static_cast<int>(i);
  return -1;
}

/// Smallest b in [start, 256) with idx[b] != empty, or 256.
inline unsigned next_occupied48_scalar(const uint8_t* idx, unsigned start,
                                       uint8_t empty) {
  for (unsigned b = start; b < 256; ++b)
    if (idx[b] != empty) return b;
  return 256;
}

#if HART_SIMD

/// Cached cpuid probe; the function-local static costs one branch per call.
inline bool avx2_available() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

/// Vector find_byte16: one 16-byte compare + movemask. The load always
/// covers all 16 key bytes (in-bounds struct memory); lanes >= count are
/// masked off, so garbage beyond num_children cannot match.
inline int find_byte16_vec(const uint8_t* keys, unsigned count,
                           uint8_t byte) {
  detail::cmp_counter().inc();
  const __m128i probe = _mm_set1_epi8(static_cast<char>(byte));
  const __m128i lane =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
  unsigned mask =
      static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(lane, probe)));
  mask &= count >= 16 ? 0xFFFFu : (1u << count) - 1;
  return mask != 0 ? __builtin_ctz(mask) : -1;
}

inline unsigned next_occupied48_sse2(const uint8_t* idx, unsigned start,
                                     uint8_t empty) {
  const __m128i e = _mm_set1_epi8(static_cast<char>(empty));
  unsigned head = 0xFFFFu << (start & 15u);
  for (unsigned b = start & ~15u; b < 256; b += 16) {
    const __m128i lane =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + b));
    unsigned neq = 0xFFFFu &
        ~static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(lane, e)));
    neq &= head;
    head = 0xFFFFu;
    if (neq != 0) return b + static_cast<unsigned>(__builtin_ctz(neq));
  }
  return 256;
}

__attribute__((target("avx2"))) inline unsigned next_occupied48_avx2(
    const uint8_t* idx, unsigned start, uint8_t empty) {
  const __m256i e = _mm256_set1_epi8(static_cast<char>(empty));
  uint32_t head = ~0u << (start & 31u);
  for (unsigned b = start & ~31u; b < 256; b += 32) {
    const __m256i lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + b));
    uint32_t neq = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(lane, e)));
    neq &= head;
    head = ~0u;
    if (neq != 0) return b + static_cast<unsigned>(__builtin_ctz(neq));
  }
  return 256;
}

inline unsigned next_occupied48_vec(const uint8_t* idx, unsigned start,
                                    uint8_t empty) {
  detail::cmp_counter().inc();
  return avx2_available() ? next_occupied48_avx2(idx, start, empty)
                          : next_occupied48_sse2(idx, start, empty);
}

#endif  // HART_SIMD

// ---- dispatching fronts (tests / cold callers; hot paths call *_vec
// behind their own enabled() check to keep the scalar fallback inline) ----
inline int find_byte16(const uint8_t* keys, unsigned count, uint8_t byte) {
#if HART_SIMD
  if (enabled()) return find_byte16_vec(keys, count, byte);
#endif
  return find_byte16_scalar(keys, count, byte);
}

inline unsigned next_occupied48(const uint8_t* idx, unsigned start,
                                uint8_t empty) {
#if HART_SIMD
  if (enabled()) return next_occupied48_vec(idx, start, empty);
#endif
  return next_occupied48_scalar(idx, start, empty);
}

}  // namespace hart::art::simd
