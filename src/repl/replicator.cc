#include "repl/replicator.h"

#include <algorithm>
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace hart::repl {

namespace {

/// Wire batches must fit the request's u16 value field; leave headroom so
/// a split never trips encode_repl_batch's own limit.
constexpr size_t kWireBudget = 64 * 1024;

inline uint64_t mono_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Backdated sampled-trace span (same convention as the shard worker):
/// the stage just ended and took `dur_ns`.
inline void trace_stage(const char* name, uint64_t dur_ns, uint32_t arg,
                        uint64_t trace_id) {
  obs::Tracer& tr = obs::Tracer::instance();
  if (!tr.enabled()) return;
  const uint64_t now = tr.now_ns();
  tr.record(name, obs::TraceKind::kOp, now > dur_ns ? now - dur_ns : 0,
            dur_ns, arg, trace_id);
}

/// "host:port" (host may be empty -> loopback).
bool parse_target(const std::string& t, std::string* host, uint16_t* port) {
  const size_t colon = t.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string p = t.substr(colon + 1);
  if (p.empty()) return false;
  unsigned long v = 0;
  for (char c : p) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<unsigned long>(c - '0');
    if (v > 65535) return false;
  }
  if (v == 0) return false;
  *host = t.substr(0, colon);
  *port = static_cast<uint16_t>(v);
  return true;
}

}  // namespace

Replicator::Replicator(const ReplicatorOptions& opts)
    : opts_(opts),
      log_(opts.streams, opts.retain_batches),
      pending_(opts.streams),
      shipped_(obs::Registry::instance().counter(
          "hartd_repl_batches_shipped_total")),
      confirmed_total_(obs::Registry::instance().counter(
          "hartd_repl_batches_confirmed_total")),
      reconnects_(
          obs::Registry::instance().counter("hartd_repl_reconnects_total")),
      link_errors_(
          obs::Registry::instance().counter("hartd_repl_link_errors_total")),
      quorum_acks_(
          obs::Registry::instance().counter("hartd_repl_quorum_acks_total")),
      resyncs_(obs::Registry::instance().counter("hartd_repl_resyncs_total")) {
  start_ns_ = mono_ns();
  if (opts_.window == 0) opts_.window = 1;
  if (opts_.backoff_base_ms == 0) opts_.backoff_base_ms = 1;
  if (opts_.backoff_max_ms < opts_.backoff_base_ms)
    opts_.backoff_max_ms = opts_.backoff_base_ms;
  // Majority of the (primary + followers) group, minus the primary's own
  // implicit vote: F=1 -> 1, F=2 -> 1, F=3 -> 2.
  needed_ = opts_.policy == AckPolicy::kQuorum
                ? (opts_.targets.size() + 1) / 2
                : 0;
  links_.reserve(opts_.targets.size());
  for (const std::string& t : opts_.targets) {
    auto l = std::make_unique<Link>();
    if (!parse_target(t, &l->host, &l->port))
      throw std::invalid_argument("bad replication target: " + t);
    l->index = links_.size();
    l->session = std::make_unique<ReplSession>(l->host, l->port);
    l->confirmed.assign(opts_.streams, 0);
    l->sent.assign(opts_.streams, 0);
    links_.push_back(std::move(l));
  }
  for (auto& l : links_) {
    Link* lp = l.get();
    lp->thread = std::thread([this, lp] { link_loop(lp); });
  }
}

Replicator::~Replicator() { shutdown(); }

void Replicator::on_batch(size_t shard_index, server::DurableBatch&& batch) {
  const auto stream = static_cast<uint32_t>(shard_index);
  // Split into wire-sized chunks; every chunk gets its own seq but they
  // share the batch's epoch. Deferred acks ride on the LAST chunk's seq:
  // follower-side ordered ack release means confirming it implies every
  // earlier chunk is durable there too.
  uint64_t last_seq = 0;
  std::vector<server::ReplEntry> chunk;
  size_t bytes = server::kReplBatchFixed;
  for (server::ReplEntry& e : batch.entries) {
    const size_t sz = server::repl_entry_wire_size(e);
    if (!chunk.empty() && (bytes + sz > kWireBudget ||
                           chunk.size() == server::kMaxBatchEntries)) {
      last_seq = log_.append(stream, batch.epoch, std::move(chunk));
      chunk.clear();
      bytes = server::kReplBatchFixed;
    }
    chunk.push_back(std::move(e));
    bytes += sz;
  }
  if (!chunk.empty()) last_seq = log_.append(stream, batch.epoch, std::move(chunk));

  std::vector<server::DurableBatch::DeferredAck> fire_now;
  {
    common::MutexLock lk(mu_);
    if (!batch.deferred.empty()) {
      if (down_ || needed_ == 0 || last_seq == 0) {
        // Shutdown raced in, local policy slipped a deferral through, or
        // an empty batch: never park acks that nothing will release.
        fire_now = std::move(batch.deferred);
      } else {
        pending_[stream].push_back(
            {last_seq, mono_ns(), std::move(batch.deferred)});
        // The link thread may have shipped this seq (log_.append happens
        // before mu_ is taken) and the confirm may already be in — and no
        // later confirm is guaranteed to arrive on this stream. Release
        // immediately if quorum is already met.
        release_quorum(stream, &fire_now);
      }
    }
    work_cv_.notify_all();
  }
  for (auto& a : fire_now) {
    if (down_ && needed_ != 0) a.resp.status = server::Status::kShuttingDown;
    if (a.ack) a.ack(std::move(a.resp));
  }
}

bool Replicator::drain(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  common::MutexLock lk(mu_);
  for (;;) {
    bool done = !down_;
    for (const auto& l : links_) {
      for (uint32_t s = 0; s < opts_.streams && done; ++s) {
        if (l->confirmed[s] < log_.tail_seq(s)) done = false;
      }
      if (!done) break;
    }
    if (done) {
      for (const auto& dq : pending_)
        if (!dq.empty()) done = false;
    }
    if (done) return true;
    if (down_ || stop_.load(std::memory_order_acquire)) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    state_cv_.wait_for(mu_, deadline - now);
  }
}

void Replicator::shutdown() {
  std::vector<server::DurableBatch::DeferredAck> orphans;
  {
    common::MutexLock lk(mu_);
    if (down_) return;
    down_ = true;
    for (auto& dq : pending_) {
      for (auto& pa : dq) {
        for (auto& a : pa.acks) orphans.push_back(std::move(a));
      }
      dq.clear();
    }
  }
  stop_.store(true, std::memory_order_release);
  {
    common::MutexLock lk(mu_);
    work_cv_.notify_all();
    state_cv_.notify_all();
  }
  for (auto& l : links_) {
    l->session->force_disconnect();
    if (l->thread.joinable()) l->thread.join();
    l->session->close();
  }
  // These writes are locally durable but never met quorum: report
  // kShuttingDown so the client does not count them as acked.
  for (auto& a : orphans) {
    a.resp.status = server::Status::kShuttingDown;
    if (a.ack) a.ack(std::move(a.resp));
  }
}

size_t Replicator::connected_links() const {
  size_t n = 0;
  for (const auto& l : links_)
    if (l->session->connected()) ++n;
  return n;
}

uint64_t Replicator::lag_batches() const {
  common::MutexLock lk(mu_);
  uint64_t worst = 0;
  for (const auto& l : links_) {
    uint64_t lag = 0;
    for (uint32_t s = 0; s < opts_.streams; ++s) {
      const uint64_t tail = log_.tail_seq(s);
      if (tail > l->confirmed[s]) lag += tail - l->confirmed[s];
    }
    worst = std::max(worst, lag);
  }
  return worst;
}

size_t Replicator::pending_quorum_acks() const {
  common::MutexLock lk(mu_);
  size_t n = 0;
  for (const auto& dq : pending_)
    for (const auto& pa : dq) n += pa.acks.size();
  return n;
}

std::vector<LinkHealth> Replicator::link_health() const {
  std::vector<LinkHealth> out;
  out.reserve(links_.size());
  const uint64_t now = mono_ns();
  common::MutexLock lk(mu_);
  for (const auto& l : links_) {
    LinkHealth h;
    h.index = l->index;
    h.target = l->host + ":" + std::to_string(l->port);
    h.connected = l->session->connected();
    h.synced = l->synced;
    h.backoff_ms = l->cur_backoff_ms;
    for (uint32_t s = 0; s < opts_.streams; ++s) {
      const uint64_t tail = log_.tail_seq(s);
      if (tail > l->confirmed[s]) {
        h.lag_seq += tail - l->confirmed[s];
        h.lag_bytes += log_.bytes_after(s, l->confirmed[s]);
      }
    }
    // Staleness only counts while the link actually owes confirmations;
    // a caught-up link reports 0 (the repl_smoke drain oracle relies on
    // this converging with lag).
    if (h.lag_seq != 0) {
      const uint64_t since =
          l->last_confirm_ns != 0 ? l->last_confirm_ns : start_ns_;
      h.last_confirm_age_ms = now > since ? (now - since) / 1000000 : 0;
    }
    out.push_back(std::move(h));
  }
  return out;
}

bool Replicator::link_connect(Link* l) {
  {
    // Fresh connection: everything previously in flight is unknown; the
    // handshake below re-learns the follower's applied position.
    common::MutexLock lk(mu_);
    l->synced = false;
    l->inflight.clear();
    // The follower is authoritative after the handshake; zero everything
    // so a restarted follower (reporting no position for a stream) gets a
    // full re-ship instead of a silent hole from our stale bookkeeping.
    l->confirmed.assign(opts_.streams, 0);
    l->sent.assign(opts_.streams, 0);
  }
  if (!l->session->connect(
          [this, l](uint64_t id, server::Response&& resp) {
            handle_response(l, id, std::move(resp));
          },
          [this, l] {
            (void)l;
            common::MutexLock lk(mu_);
            work_cv_.notify_all();
            state_cv_.notify_all();
          })) {
    return false;
  }
  uint64_t id = 0;
  {
    common::MutexLock lk(mu_);
    if (l->ever_connected) reconnects_.inc();
    l->ever_connected = true;
    id = l->next_id++;
    l->inflight[id] = {/*handshake=*/true, 0, 0};
  }
  server::Request q;
  q.op = server::OpCode::kReplAck;
  if (!l->session->send(id, q)) return false;
  // Wait for the position reply (or stream death) so shipping starts from
  // the follower's confirmed seq, not from a stale local guess.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  common::MutexLock lk(mu_);
  while (!l->synced && l->session->connected() &&
         !stop_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    state_cv_.wait_for(mu_, deadline - now);
  }
  return l->synced;
}

void Replicator::link_loop(Link* l) {
  uint32_t backoff = opts_.backoff_base_ms;
  while (!stop_.load(std::memory_order_acquire)) {
    // synced is only reset by this thread (in link_connect), so a dead
    // stream is the one reconnect trigger visible here.
    if (!l->session->connected()) {
      if (!link_connect(l)) {
        if (l->session->connected()) l->session->force_disconnect();
        common::MutexLock lk(mu_);
        if (stop_.load(std::memory_order_acquire)) return;
        l->cur_backoff_ms = backoff;
        state_cv_.wait_for(mu_, std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, opts_.backoff_max_ms);
        continue;
      }
      backoff = opts_.backoff_base_ms;
      common::MutexLock lk(mu_);
      l->cur_backoff_ms = 0;
    }

    // Collect-under-lock, send-unlocked: encode the next window of
    // records while holding mu_, then push bytes with no lock held.
    std::vector<std::pair<uint64_t, server::Request>> to_send;
    {
      common::MutexLock lk(mu_);
      for (uint32_t s = 0;
           s < opts_.streams && l->inflight.size() < opts_.window; ++s) {
        std::vector<BatchLog::Record> recs;
        log_.read_after(s, l->sent[s], opts_.window - l->inflight.size(),
                        &recs);
        if (recs.empty()) continue;
        if (recs.front().seq != l->sent[s] + 1) {
          // Eviction gap: the follower fell behind the bounded log. With
          // no resync transport yet this is surfaced loudly (counter +
          // stderr) and the link jumps forward — DESIGN.md §9 documents
          // the limitation and the operator remedy (restart follower
          // before load, or raise --repl-log).
          resyncs_.inc();
          std::fprintf(stderr,
                       "[hartrepl] link %zu stream %u gap: have %llu..%llu, "
                       "follower at %llu — bounded log overrun\n",
                       l->index, s,
                       static_cast<unsigned long long>(recs.front().seq),
                       static_cast<unsigned long long>(log_.tail_seq(s)),
                       static_cast<unsigned long long>(l->sent[s]));
        }
        for (BatchLog::Record& r : recs) {
          server::Request req;
          req.op = server::OpCode::kReplBatch;
          if (!server::encode_repl_batch(s, r.seq, r.epoch, r.entries,
                                         &req.value)) {
            link_errors_.inc();  // unreachable: on_batch splits to fit
            l->sent[s] = r.seq;
            continue;
          }
          const uint64_t id = l->next_id++;
          Inflight inf{/*handshake=*/false, s, r.seq, mono_ns(), {}};
          // Sampled entries: remember their ids so the confirm records a
          // ship->confirm repl_ship span per traced op.
          if (obs::Tracer::instance().enabled()) {
            for (const server::ReplEntry& e : r.entries)
              if (e.trace_id != 0) inf.traces.push_back(e.trace_id);
          }
          l->inflight[id] = std::move(inf);
          l->sent[s] = r.seq;
          to_send.emplace_back(id, std::move(req));
        }
      }
      if (to_send.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        if (l->session->connected() && l->synced)
          work_cv_.wait_for(mu_, std::chrono::milliseconds(200));
        continue;
      }
    }
    for (auto& [id, req] : to_send) {
      if (!l->session->send(id, req)) break;  // reconnect next iteration
      shipped_.inc();
    }
  }
}

void Replicator::handle_response(Link* l, uint64_t id,
                                 server::Response&& resp) {
  std::vector<server::DurableBatch::DeferredAck> to_fire;
  bool kill_link = false;
  {
    common::MutexLock lk(mu_);
    auto it = l->inflight.find(id);
    if (it == l->inflight.end()) return;  // stale reply from a prior epoch
    const Inflight inf = it->second;
    l->inflight.erase(it);
    if (inf.handshake) {
      std::vector<server::ReplPosition> pos;
      if (resp.status == server::Status::kOk &&
          server::decode_repl_positions(resp.value, &pos)) {
        for (const server::ReplPosition& p : pos) {
          if (p.stream >= opts_.streams) continue;
          // The follower is authoritative: a restarted follower reports a
          // lower position and idempotent replay makes resending safe.
          l->confirmed[p.stream] = p.seq;
          l->sent[p.stream] = p.seq;
        }
        l->synced = true;
      } else {
        link_errors_.inc();
        kill_link = true;
      }
      state_cv_.notify_all();
    } else if (resp.status == server::Status::kOk) {
      // The follower's reply IS its fence confirmation for this seq (and,
      // by its ordered ack release, for every earlier seq it received).
      l->confirmed[inf.stream] = std::max(l->confirmed[inf.stream], inf.seq);
      l->last_confirm_ns = mono_ns();
      const uint64_t ship_ns =
          inf.sent_ns != 0 && l->last_confirm_ns > inf.sent_ns
              ? l->last_confirm_ns - inf.sent_ns
              : 0;
      for (const uint64_t tid : inf.traces)
        trace_stage("repl_ship", ship_ns, static_cast<uint32_t>(l->index),
                    tid);
      confirmed_total_.inc();
      if (needed_ != 0) release_quorum(inf.stream, &to_fire);
      state_cv_.notify_all();
    } else {
      // Refused (shutting down / shard failed / not a follower): drop the
      // stream and rebuild from the position handshake.
      link_errors_.inc();
      kill_link = true;
    }
    work_cv_.notify_all();
  }
  for (auto& a : to_fire) {
    if (a.ack) a.ack(std::move(a.resp));
  }
  if (kill_link) l->session->force_disconnect();
}

void Replicator::release_quorum(
    uint32_t stream, std::vector<server::DurableBatch::DeferredAck>* out) {
  const uint64_t q = quorum_confirmed(stream);
  auto& dq = pending_[stream];
  while (!dq.empty() && dq.front().seq <= q) {
    PendingAcks& pa = dq.front();
    // Stage 4 of the write pipeline: how long the quorum parking lot held
    // this batch's acks. One sample per released write ack.
    const uint64_t now = mono_ns();
    const uint64_t wait = pa.park_ns != 0 && now > pa.park_ns
                              ? now - pa.park_ns
                              : 0;
    for (size_t i = 0; i < pa.acks.size(); ++i) quorum_wait_.record(wait);
    if (opts_.slow_op_us != 0 && wait > opts_.slow_op_us * 1000)
      std::fprintf(stderr,
                   "hartd slow-op stage=quorum_wait stream=%u seq=%" PRIu64
                   " acks=%zu wait_us=%" PRIu64 "\n",
                   stream, pa.seq, pa.acks.size(), wait / 1000);
    for (auto& a : pa.acks) {
      if (a.trace_id != 0)
        trace_stage("quorum_ack", wait, stream, a.trace_id);
      out->push_back(std::move(a));
    }
    quorum_acks_.add(pa.acks.size());
    dq.pop_front();
  }
}

uint64_t Replicator::quorum_confirmed(uint32_t stream) const {
  if (needed_ == 0 || links_.size() < needed_) return 0;
  std::vector<uint64_t> seqs;
  seqs.reserve(links_.size());
  for (const auto& l : links_) seqs.push_back(l->confirmed[stream]);
  std::nth_element(seqs.begin(), seqs.begin() + (needed_ - 1), seqs.end(),
                   std::greater<>());
  return seqs[needed_ - 1];
}

}  // namespace hart::repl
