#include "repl/applier.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "obs/trace.h"

namespace hart::repl {

namespace {

inline uint64_t mono_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Entry outcomes that keep a replicated batch healthy. kNotFound covers
/// idempotent replay of a DELETE whose key is already gone.
bool entry_ok(server::Status s) {
  return s == server::Status::kOk || s == server::Status::kUpdated ||
         s == server::Status::kNotFound;
}

void store_max(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

/// Shared completion state for one wire batch: the last entry ack to
/// arrive triggers the ordered release.
struct FollowerApplier::BatchCtx {
  FollowerApplier* self = nullptr;
  uint32_t stream = 0;
  uint64_t seq = 0;
  size_t entries = 0;
  uint64_t bytes = 0;     // wire payload size of this batch
  uint64_t t0_ns = 0;     // apply start, for the follower_apply span
  std::vector<uint64_t> traces;  // sampled entries' trace ids
  std::atomic<size_t> remaining{0};
  std::atomic<uint64_t> epoch{0};  // max follower epoch across entries
  std::atomic<uint8_t> fail{0};    // first failing wire status (0 = none)
  Ack ack;
};

FollowerApplier::FollowerApplier(SubmitFn submit)
    : submit_(std::move(submit)),
      batches_applied_(obs::Registry::instance().counter(
          "hartd_repl_batches_applied_total")),
      entries_applied_(obs::Registry::instance().counter(
          "hartd_repl_entries_applied_total")),
      batch_errors_(obs::Registry::instance().counter(
          "hartd_repl_batch_errors_total")) {
  start_ns_ = mono_ns();
}

void FollowerApplier::apply(server::Request&& req, Ack ack) {
  uint32_t stream = 0;
  uint64_t seq = 0;
  uint64_t primary_epoch = 0;
  std::vector<server::ReplEntry> entries;
  if (!server::decode_repl_batch(req.value, &stream, &seq, &primary_epoch,
                                 &entries)) {
    batch_errors_.inc();
    server::Response r;
    r.status = server::Status::kBadRequest;
    if (ack) ack(std::move(r));
    return;
  }

  auto ctx = std::make_shared<BatchCtx>();
  ctx->self = this;
  ctx->stream = stream;
  ctx->seq = seq;
  ctx->entries = entries.size();
  ctx->bytes = req.value.size();
  ctx->t0_ns = mono_ns();
  ctx->remaining.store(entries.size(), std::memory_order_relaxed);
  ctx->ack = std::move(ack);
  if (obs::Tracer::instance().enabled()) {
    for (const server::ReplEntry& e : entries)
      if (e.trace_id != 0) ctx->traces.push_back(e.trace_id);
  }

  {
    common::MutexLock lk(mu_);
    StreamState& st = streams_[stream];
    st.inflight[seq] += 1;
    st.inflight_bytes += ctx->bytes;
  }

  if (entries.empty()) {
    // Defensive: the primary never ships an empty batch, but an empty one
    // is trivially "applied".
    DoneEntry d;
    d.resp.status = server::Status::kOk;
    d.ack = std::move(ctx->ack);
    d.entries = 0;
    d.bytes = ctx->bytes;
    d.success = true;
    batch_done(stream, seq, std::move(d));
    return;
  }

  for (server::ReplEntry& e : entries) {
    server::Request sub;
    sub.op = e.op;
    sub.key = std::move(e.key);
    sub.value = std::move(e.value);
    sub.trace_id = e.trace_id;  // sampled ops stay sampled on this node
    submit_(std::move(sub), [ctx](server::Response resp) {
      if (entry_ok(resp.status)) {
        store_max(&ctx->epoch, resp.epoch);
      } else {
        uint8_t none = 0;
        ctx->fail.compare_exchange_strong(
            none, static_cast<uint8_t>(resp.status),
            std::memory_order_relaxed);
      }
      if (ctx->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Stitch the sampled ops into the originating trace: receive ->
        // all entry fences done, on the follower.
        obs::Tracer& tr = obs::Tracer::instance();
        if (tr.enabled() && !ctx->traces.empty()) {
          const uint64_t dur = mono_ns() - ctx->t0_ns;
          const uint64_t now = tr.now_ns();
          for (const uint64_t tid : ctx->traces)
            tr.record("follower_apply", obs::TraceKind::kOp,
                      now > dur ? now - dur : 0, dur, ctx->stream, tid);
        }
        DoneEntry d;
        const uint8_t f = ctx->fail.load(std::memory_order_relaxed);
        d.success = f == 0;
        d.resp.status =
            d.success ? server::Status::kOk : static_cast<server::Status>(f);
        d.resp.epoch = ctx->epoch.load(std::memory_order_relaxed);
        d.ack = std::move(ctx->ack);
        d.entries = ctx->entries;
        d.bytes = ctx->bytes;
        ctx->self->batch_done(ctx->stream, ctx->seq, std::move(d));
      }
    });
  }
}

void FollowerApplier::drop_inflight(StreamState* st, uint64_t seq) {
  auto it = st->inflight.find(seq);
  if (it == st->inflight.end()) return;
  if (--it->second == 0) st->inflight.erase(it);
}

void FollowerApplier::batch_done(uint32_t stream, uint64_t seq,
                                 DoneEntry&& done) {
  std::vector<DoneEntry> to_fire;
  {
    common::MutexLock lk(mu_);
    StreamState& st = streams_[stream];
    drop_inflight(&st, seq);
    auto dup = st.done.find(seq);
    if (dup != st.done.end()) {
      // Reconnect replay finished while the original completion is still
      // parked: the old connection is dead, so fire its ack immediately
      // (harmless) and let the fresh one take the slot.
      st.inflight_bytes -= std::min(st.inflight_bytes, dup->second.bytes);
      to_fire.push_back(std::move(dup->second));
      dup->second = std::move(done);
    } else {
      st.done.emplace(seq, std::move(done));
    }
    // Ordered release: a parked batch may go out only when no smaller seq
    // of this stream is still being applied — so the primary reading
    // "seq S confirmed" may trust every received seq <= S.
    while (!st.done.empty()) {
      auto it = st.done.begin();
      if (!st.inflight.empty() && st.inflight.begin()->first < it->first)
        break;
      DoneEntry d = std::move(it->second);
      st.inflight_bytes -= std::min(st.inflight_bytes, d.bytes);
      if (d.success) {
        if (it->first > st.applied) {
          st.applied = it->first;
          st.applied_epoch = d.resp.epoch;
        }
        batches_applied_.inc();
        entries_applied_.add(d.entries);
      } else {
        batch_errors_.inc();
      }
      st.done.erase(it);
      to_fire.push_back(std::move(d));
      last_release_ns_ = mono_ns();
    }
  }
  for (DoneEntry& d : to_fire) {
    if (d.ack) d.ack(std::move(d.resp));
  }
}

FollowerApplier::Health FollowerApplier::health() const {
  Health h;
  const uint64_t now = mono_ns();
  common::MutexLock lk(mu_);
  for (const auto& [stream, st] : streams_) {
    h.backlog_batches += st.inflight.size() + st.done.size();
    h.backlog_bytes += st.inflight_bytes;
  }
  if (h.backlog_batches != 0) {
    const uint64_t since =
        last_release_ns_ != 0 ? last_release_ns_ : start_ns_;
    h.last_apply_age_ms = now > since ? (now - since) / 1000000 : 0;
  }
  return h;
}

std::vector<server::ReplPosition> FollowerApplier::positions() const {
  std::vector<server::ReplPosition> out;
  common::MutexLock lk(mu_);
  out.reserve(streams_.size());
  for (const auto& [stream, st] : streams_) {
    out.push_back({stream, st.applied, st.applied_epoch});
  }
  return out;
}

}  // namespace hart::repl
