// hartrepl promotion state machine (DESIGN.md §9).
//
// A node's replication role:
//
//   kPrimary   — accepts client writes; ships durable batches to followers
//                when replication is configured.
//   kFollower  — rejects client writes (kNotPrimary), applies REPL_BATCH
//                streams through the normal shard path, serves
//                stale-tolerant reads via the lock-free read path.
//   kPromoting — transient: a PROMOTE is draining the shard queues (tail
//                replay of every already-received replication batch).
//                Reads keep serving; writes and further REPL_BATCHes are
//                rejected until the drain's fences complete.
//
// Transitions: kFollower -> kPromoting -> kPrimary, driven by exactly one
// winning PROMOTE; concurrent PROMOTEs block until the winner finishes and
// then report idempotent success. There is no demotion — a failed primary
// rejoins the group as a fresh follower process.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/annotations.h"

namespace hart::repl {

enum class Role : uint8_t { kPrimary = 0, kFollower = 1, kPromoting = 2 };

inline const char* role_name(Role r) {
  switch (r) {
    case Role::kPrimary: return "primary";
    case Role::kFollower: return "follower";
    default: return "promoting";
  }
}

class PromotionMachine {
 public:
  explicit PromotionMachine(Role initial) : role_(initial) {}
  PromotionMachine(const PromotionMachine&) = delete;
  PromotionMachine& operator=(const PromotionMachine&) = delete;

  /// Lock-free role probe — this sits on the per-request dispatch path.
  [[nodiscard]] Role role() const {
    return role_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool accepts_writes() const { return role() == Role::kPrimary; }
  [[nodiscard]] bool accepts_repl_batches() const {
    return role() == Role::kFollower;
  }

  /// Run the promotion protocol at most once. `drain` performs the tail
  /// replay (flush every shard queue and wait for the fences); it runs on
  /// the caller's thread with the machine in kPromoting. Returns true for
  /// the caller that performed the transition, false when the node was
  /// already primary (including callers that lost the race and waited for
  /// the winner).
  template <typename DrainFn>
  bool promote(DrainFn&& drain) {
    {
      common::MutexLock lk(mu_);
      while (in_progress_) cv_.wait(mu_);
      if (role() == Role::kPrimary) return false;
      in_progress_ = true;
      role_.store(Role::kPromoting, std::memory_order_release);
    }
    drain();
    {
      common::MutexLock lk(mu_);
      role_.store(Role::kPrimary, std::memory_order_release);
      in_progress_ = false;
    }
    cv_.notify_all();
    return true;
  }

 private:
  std::atomic<Role> role_;
  common::Mutex mu_;
  common::CondVar cv_;
  bool in_progress_ GUARDED_BY(mu_) = false;
};

}  // namespace hart::repl
