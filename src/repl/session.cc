#include "repl/session.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace hart::repl {

namespace {
bool send_all(int fd, const char* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

int dial(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip =
      (host == "localhost" || host.empty()) ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}
}  // namespace

bool ReplSession::connect(ResponseFn on_response, DisconnectFn on_disconnect) {
  close();  // joins any previous reader, resets state
  const int fd = dial(host_, port_);
  if (fd < 0) return false;
  {
    common::MutexLock lk(fd_mu_);
    fd_ = fd;
  }
  up_.store(true, std::memory_order_release);
  reader_ = std::thread([this, on_response = std::move(on_response),
                         on_disconnect = std::move(on_disconnect)]() mutable {
    reader_loop(std::move(on_response), std::move(on_disconnect));
  });
  return true;
}

bool ReplSession::send(uint64_t id, const server::Request& req) {
  if (!connected()) return false;
  int fd;
  {
    // The fd is only *closed* by close(), which runs on this (the link)
    // thread — copying it out is safe; a concurrent force_disconnect only
    // shuts the socket down, which makes send_all fail cleanly.
    common::MutexLock lk(fd_mu_);
    fd = fd_;
  }
  if (fd < 0) return false;
  std::string frame;
  server::encode_request(id, req, &frame);
  if (!send_all(fd, frame.data(), frame.size())) {
    force_disconnect();
    return false;
  }
  return true;
}

void ReplSession::force_disconnect() {
  up_.store(false, std::memory_order_release);
  common::MutexLock lk(fd_mu_);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ReplSession::close() {
  force_disconnect();
  if (reader_.joinable()) reader_.join();
  common::MutexLock lk(fd_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ReplSession::reader_loop(ResponseFn on_response,
                              DisconnectFn on_disconnect) {
  int fd;
  {
    common::MutexLock lk(fd_mu_);
    fd = fd_;
  }
  std::string buf;
  std::string body;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    buf.append(chunk, static_cast<size_t>(r));
    bool bad = false;
    for (;;) {
      const int got = server::take_frame(&buf, &body);
      if (got < 0) {
        bad = true;
        break;
      }
      if (got == 0) break;
      uint64_t id = 0;
      server::Response resp;
      if (!server::decode_response(body.data(), body.size(), &id, &resp)) {
        bad = true;
        break;
      }
      if (on_response) on_response(id, std::move(resp));
    }
    if (bad) break;
  }
  const bool was_up = up_.exchange(false, std::memory_order_acq_rel);
  // close()/force_disconnect() already flipped up_ — the owner initiated
  // this teardown and is not owed a disconnect notification.
  if (was_up && on_disconnect) on_disconnect();
}

}  // namespace hart::repl
