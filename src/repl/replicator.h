// hartrepl replicator — the primary side of the replication subsystem.
//
// Each shard worker hands its durable batch (post-fence, see
// Shard::BatchSink) to on_batch(), which splits it into wire-sized
// REPL_BATCH frames, appends them to the bounded BatchLog, and wakes the
// follower links. One link thread per configured follower ships records
// over a dedicated ReplSession with a bounded in-flight window, reconnects
// with bounded exponential backoff, and resumes from the follower's own
// applied position (REPL_ACK position-query handshake) — replay is safe
// because batch application is idempotent.
//
// Ack policies:
//
//  * kLocal  — shard workers ack writes after the local epoch fence; the
//              replicator ships asynchronously (a just-acked write can be
//              lost if the primary dies before shipping).
//  * kQuorum — shard workers defer write acks into the DurableBatch; the
//              replicator releases them only once a majority of the
//              replication group (excluding the primary itself) confirmed
//              the batch's fence. A follower's REPL_BATCH response IS its
//              fence confirmation, so an acked write survives primary
//              SIGKILL as long as a quorum follower is promoted.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/histogram.h"
#include "obs/counters.h"
#include "repl/batch_log.h"
#include "repl/session.h"
#include "server/proto.h"
#include "server/shard.h"

namespace hart::repl {

enum class AckPolicy : uint8_t { kLocal = 0, kQuorum = 1 };

inline const char* ack_policy_name(AckPolicy p) {
  return p == AckPolicy::kQuorum ? "quorum" : "local";
}

struct ReplicatorOptions {
  /// Followers as "host:port" (host may be empty or "localhost").
  std::vector<std::string> targets;
  AckPolicy policy = AckPolicy::kLocal;
  /// One log stream per primary shard.
  size_t streams = 1;
  /// Per-stream log retention, in wire batches.
  size_t retain_batches = 4096;
  /// Max unconfirmed wire batches in flight per link.
  size_t window = 64;
  uint32_t backoff_base_ms = 10;
  uint32_t backoff_max_ms = 1000;
  /// Structured slow-op log threshold for the quorum-wait stage (a
  /// deferred write ack parked longer than this logs its wait). 0 = off.
  uint64_t slow_op_us = 0;
};

/// Point-in-time replication health of one follower link, for the
/// hartd_repl_lag_* / reconnect gauges (DESIGN.md §12).
struct LinkHealth {
  size_t index = 0;
  std::string target;       // "host:port" as configured
  bool connected = false;
  bool synced = false;      // position handshake done on this connection
  uint64_t lag_seq = 0;     // unconfirmed wire batches, summed over streams
  uint64_t lag_bytes = 0;   // retained wire bytes past the confirmed seq
  /// Milliseconds since the link last confirmed a batch — 0 when the link
  /// is fully caught up (nothing outstanding to confirm), so the gauge
  /// measures confirm staleness only while there is lag.
  uint64_t last_confirm_age_ms = 0;
  uint32_t backoff_ms = 0;  // current reconnect backoff; 0 when connected
};

class Replicator {
 public:
  /// Throws std::invalid_argument on a malformed target.
  explicit Replicator(const ReplicatorOptions& opts);
  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Shard batch sink; runs on shard worker threads. Logs the batch and,
  /// in quorum mode, parks its deferred write acks until enough followers
  /// confirm.
  void on_batch(size_t shard_index, server::DurableBatch&& batch);

  /// Block until every link has confirmed the current log tail (graceful
  /// shutdown: don't lose local-policy batches with the primary). False on
  /// timeout or when shutdown raced in.
  bool drain(std::chrono::milliseconds timeout);

  /// Stop all links and join their threads. Deferred acks that never met
  /// quorum fire with kShuttingDown — the write is locally durable but was
  /// never acked, so clients must not count it. Idempotent.
  void shutdown();

  [[nodiscard]] size_t follower_count() const { return links_.size(); }
  /// Confirmations required to release a quorum ack: a majority of the
  /// (1 + followers) group, minus the primary's own (implicit) vote.
  [[nodiscard]] size_t quorum_needed() const { return needed_; }
  [[nodiscard]] AckPolicy policy() const { return opts_.policy; }
  [[nodiscard]] size_t connected_links() const;
  /// Farthest-behind link's total backlog, in wire batches.
  [[nodiscard]] uint64_t lag_batches() const;
  /// Deferred write acks still waiting for quorum confirmation.
  [[nodiscard]] size_t pending_quorum_acks() const;
  [[nodiscard]] std::vector<server::ReplPosition> tail_positions() const {
    return log_.tail_positions();
  }
  [[nodiscard]] const BatchLog& log() const { return log_; }
  /// Per-link replication health snapshot (lag, staleness, backoff).
  [[nodiscard]] std::vector<LinkHealth> link_health() const;
  /// Copy of the repl-wait-for-quorum stage histogram: how long deferred
  /// write acks sat parked before quorum released them.
  [[nodiscard]] common::LatencyHistogram quorum_wait_histogram() const {
    common::MutexLock lk(mu_);
    return quorum_wait_;
  }

 private:
  /// One outstanding request on a link: either the position-query
  /// handshake or a shipped (stream, seq) wire batch.
  struct Inflight {
    bool handshake = false;
    uint32_t stream = 0;
    uint64_t seq = 0;
    uint64_t sent_ns = 0;  // ship time, for the repl_ship span duration
    /// Trace ids of sampled entries in this wire batch (only collected
    /// while the tracer is enabled).
    std::vector<uint64_t> traces;
  };

  struct Link {
    size_t index = 0;
    std::string host;
    uint16_t port = 0;
    std::unique_ptr<ReplSession> session;
    std::thread thread;
    // --- guarded by Replicator::mu_ ---
    std::vector<uint64_t> confirmed;  // per stream, follower-acked seq
    std::vector<uint64_t> sent;       // per stream, last shipped seq
    std::unordered_map<uint64_t, Inflight> inflight;
    uint64_t next_id = 1;
    bool synced = false;  // handshake completed on current connection
    bool ever_connected = false;
    uint64_t last_confirm_ns = 0;  // mono; 0 until the first confirm
    uint32_t cur_backoff_ms = 0;   // nonzero while reconnecting
  };

  void link_loop(Link* l);
  /// One connect + handshake attempt; true when the link is synced.
  bool link_connect(Link* l);
  void handle_response(Link* l, uint64_t id, server::Response&& resp);
  /// Pop every pending ack whose seq a quorum has confirmed into *out.
  void release_quorum(uint32_t stream,
                      std::vector<server::DurableBatch::DeferredAck>* out)
      REQUIRES(mu_);
  /// Highest seq of `stream` confirmed by >= needed_ links (0 if none).
  [[nodiscard]] uint64_t quorum_confirmed(uint32_t stream) const
      REQUIRES(mu_);

  ReplicatorOptions opts_;
  size_t needed_ = 0;
  uint64_t start_ns_ = 0;  // mono at construction, for confirm-age gauges
  BatchLog log_;

  mutable common::Mutex mu_;
  common::CondVar work_cv_;   // link threads: new records / window room
  common::CondVar state_cv_;  // drain() and handshake waiters
  struct PendingAcks {
    uint64_t seq = 0;  // last wire-batch seq of the durable batch
    uint64_t park_ns = 0;  // when the acks were parked (quorum-wait start)
    std::vector<server::DurableBatch::DeferredAck> acks;
  };
  /// Per stream, FIFO by seq (shard workers append in seq order).
  std::vector<std::deque<PendingAcks>> pending_ GUARDED_BY(mu_);
  common::LatencyHistogram quorum_wait_ GUARDED_BY(mu_);
  bool down_ GUARDED_BY(mu_) = false;

  std::atomic<bool> stop_{false};
  /// Link vector is immutable after the ctor; per-link state above is
  /// guarded by mu_.
  std::vector<std::unique_ptr<Link>> links_;

  obs::Counter& shipped_;
  obs::Counter& confirmed_total_;
  obs::Counter& reconnects_;
  obs::Counter& link_errors_;
  obs::Counter& quorum_acks_;
  obs::Counter& resyncs_;
};

}  // namespace hart::repl
