// hartrepl follower applier — applies REPL_BATCH frames through the
// normal shard path and answers each one only after every entry's group
// fence completed, so the response a follower sends IS its durability
// confirmation for that wire batch.
//
// Ordering: one primary stream's entries scatter across the follower's
// own shards (keys re-route by the follower's shard count), so seq N+1
// can finish fencing before seq N. The applier therefore releases
// REPL_BATCH acks in per-stream seq order — the primary's confirmed
// high-water for a stream truthfully implies every received seq <= S is
// durable here. Replay after reconnect is idempotent: a seq at or below
// the released high-water re-applies (PUT/UPDATE overwrite, DELETE of a
// missing key reports kNotFound which counts as success) and is re-acked.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/annotations.h"
#include "obs/counters.h"
#include "server/proto.h"

namespace hart::repl {

class FollowerApplier {
 public:
  using Ack = std::function<void(server::Response)>;
  /// Routes one replicated write into the follower's shard path. MUST
  /// invoke the ack exactly once, even on refusal (queue closed, shard
  /// failed) — the applier counts acks to detect batch completion.
  using SubmitFn = std::function<void(server::Request&&, Ack)>;

  explicit FollowerApplier(SubmitFn submit);
  FollowerApplier(const FollowerApplier&) = delete;
  FollowerApplier& operator=(const FollowerApplier&) = delete;
  /// The owner must drain the shard path (all submitted acks fired)
  /// before destroying the applier — in-flight entry callbacks hold
  /// `this`.
  ~FollowerApplier() = default;

  /// Handle one kReplBatch request; `ack` fires once, in per-stream seq
  /// order relative to other batches of the same stream. Runs on the
  /// dispatcher's connection thread.
  void apply(server::Request&& req, Ack ack);

  /// Applied position of every stream this follower has seen (for the
  /// REPL_ACK position query). Epoch is the follower's own group-commit
  /// epoch, not the primary's.
  [[nodiscard]] std::vector<server::ReplPosition> positions() const;

  /// Follower-side replication health: wire batches received but not yet
  /// released (still applying or parked for ordered release) and their
  /// payload bytes, plus how stale the last release is. The age is 0 when
  /// the backlog is empty — same convergence semantics as the primary's
  /// LinkHealth, so hartd_repl_lag_* gauges read the same on both roles.
  struct Health {
    uint64_t backlog_batches = 0;
    uint64_t backlog_bytes = 0;
    uint64_t last_apply_age_ms = 0;
  };
  [[nodiscard]] Health health() const;

 private:
  struct BatchCtx;

  struct DoneEntry {
    server::Response resp;
    Ack ack;
    size_t entries = 0;
    uint64_t bytes = 0;  // wire payload size, drains backlog_bytes
    bool success = false;
  };

  struct StreamState {
    uint64_t applied = 0;        // released high-water seq
    uint64_t applied_epoch = 0;  // follower epoch of that release
    uint64_t inflight_bytes = 0; // payload bytes received, not yet released
    std::map<uint64_t, size_t> inflight;      // seq -> count being applied
    std::map<uint64_t, DoneEntry> done;       // fenced, awaiting ordered release
  };

  /// All entry fences for (stream, seq) completed; stash and release in
  /// order.
  void batch_done(uint32_t stream, uint64_t seq, DoneEntry&& done);
  void drop_inflight(StreamState* st, uint64_t seq) REQUIRES(mu_);

  SubmitFn submit_;
  mutable common::Mutex mu_;
  std::map<uint32_t, StreamState> streams_ GUARDED_BY(mu_);
  uint64_t last_release_ns_ GUARDED_BY(mu_) = 0;  // mono, last ordered release
  uint64_t start_ns_ = 0;  // mono at construction

  obs::Counter& batches_applied_;
  obs::Counter& entries_applied_;
  obs::Counter& batch_errors_;
};

}  // namespace hart::repl
