// hartrepl batch log — the primary's bounded, in-memory replication log.
//
// One stream per primary shard. Shard workers append their durable batches
// (post-fence, see Shard::BatchSink) and the log assigns each wire batch a
// per-stream monotone sequence number starting at 1. Follower links read
// records after their confirmed position and ship them; retention is
// bounded per stream (`retain`), so a follower that falls further behind
// than the retained window hits a gap — counted and logged, never silently
// skipped (DESIGN.md §9 "bounded log" limitation).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "obs/counters.h"
#include "server/proto.h"

namespace hart::repl {

class BatchLog {
 public:
  struct Record {
    uint64_t seq = 0;
    uint64_t epoch = 0;
    std::vector<server::ReplEntry> entries;
    size_t bytes = 0;  // wire payload footprint, for byte-lag gauges
  };

  BatchLog(size_t streams, size_t retain)
      : streams_(streams), retain_(retain == 0 ? 1 : retain),
        evicted_(obs::Registry::instance().counter(
            "hartd_repl_log_evicted_total")) {}
  BatchLog(const BatchLog&) = delete;
  BatchLog& operator=(const BatchLog&) = delete;

  [[nodiscard]] size_t streams() const { return streams_.size(); }

  /// Append one wire batch to `stream`; returns its assigned seq.
  uint64_t append(uint32_t stream, uint64_t epoch,
                  std::vector<server::ReplEntry> entries) {
    size_t bytes = server::kReplBatchFixed;
    for (const server::ReplEntry& e : entries)
      bytes += server::repl_entry_wire_size(e);
    Stream& s = streams_.at(stream).s;
    common::MutexLock lk(s.mu);
    const uint64_t seq = ++s.tail;
    s.records.push_back({seq, epoch, std::move(entries), bytes});
    while (s.records.size() > retain_) {
      s.records.pop_front();
      evicted_.inc();
    }
    if (s.records.size() > s.occupancy_hwm) s.occupancy_hwm = s.records.size();
    return seq;
  }

  /// Copy up to `max` records of `stream` with seq > `after` into `*out`
  /// (appended). Returns the number copied. When the oldest retained
  /// record is already past `after + 1` the caller is looking at an
  /// eviction gap — detectable as out->front().seq != after + 1.
  size_t read_after(uint32_t stream, uint64_t after, size_t max,
                    std::vector<Record>* out) const {
    const Stream& s = streams_.at(stream).s;
    common::MutexLock lk(s.mu);
    size_t n = 0;
    for (const Record& r : s.records) {
      if (r.seq <= after) continue;
      if (n == max) break;
      out->push_back(r);
      ++n;
    }
    return n;
  }

  /// Last assigned seq (0 before the first append).
  [[nodiscard]] uint64_t tail_seq(uint32_t stream) const {
    const Stream& s = streams_.at(stream).s;
    common::MutexLock lk(s.mu);
    return s.tail;
  }

  /// Oldest retained seq (0 when the stream is empty).
  [[nodiscard]] uint64_t base_seq(uint32_t stream) const {
    const Stream& s = streams_.at(stream).s;
    common::MutexLock lk(s.mu);
    return s.records.empty() ? 0 : s.records.front().seq;
  }

  /// Wire bytes retained past `after` — the byte lag of a link confirmed
  /// up to `after`. Records already evicted contribute nothing (they are
  /// reported through the gap/resync path instead).
  [[nodiscard]] uint64_t bytes_after(uint32_t stream, uint64_t after) const {
    const Stream& s = streams_.at(stream).s;
    common::MutexLock lk(s.mu);
    uint64_t bytes = 0;
    for (const Record& r : s.records)
      if (r.seq > after) bytes += r.bytes;
    return bytes;
  }

  /// Most records simultaneously retained on any stream since startup —
  /// how close the bounded log has come to evicting (retain = the cap).
  [[nodiscard]] size_t occupancy_high_watermark() const {
    size_t hwm = 0;
    for (const StreamSlot& slot : streams_) {
      common::MutexLock lk(slot.s.mu);
      hwm = std::max(hwm, slot.s.occupancy_hwm);
    }
    return hwm;
  }

  /// Tail position of every stream (epoch = last appended batch's epoch).
  [[nodiscard]] std::vector<server::ReplPosition> tail_positions() const {
    std::vector<server::ReplPosition> out;
    out.reserve(streams_.size());
    for (uint32_t i = 0; i < streams_.size(); ++i) {
      const Stream& s = streams_[i].s;
      common::MutexLock lk(s.mu);
      out.push_back(
          {i, s.tail, s.records.empty() ? 0 : s.records.back().epoch});
    }
    return out;
  }

 private:
  struct Stream {
    mutable common::Mutex mu;
    std::deque<Record> records GUARDED_BY(mu);
    uint64_t tail GUARDED_BY(mu) = 0;
    size_t occupancy_hwm GUARDED_BY(mu) = 0;
  };
  // Wrapper keeps Stream non-copyable members vector-constructible.
  struct StreamSlot {
    Stream s;
  };

  std::vector<StreamSlot> streams_;
  const size_t retain_;
  obs::Counter& evicted_;
};

}  // namespace hart::repl
