// hartrepl session — the dedicated replication stream between a primary
// and one follower.
//
// A thin framing client over the proto.h wire format: the owning link
// thread connects / sends request frames; a reader thread decodes response
// frames and hands them to a callback. Unlike hart::Client this keeps no
// correlation state — the link owns the id -> (stream, seq) bookkeeping —
// and never throws: replication links live through follower restarts, so
// every failure is a return code and reconnection is the caller's loop
// (bounded exponential backoff lives in the Replicator).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/annotations.h"
#include "server/proto.h"

namespace hart::repl {

class ReplSession {
 public:
  /// Runs on the session's reader thread for every decoded response.
  using ResponseFn = std::function<void(uint64_t id, server::Response&&)>;
  /// Runs once on the reader thread when the stream dies (EOF, error, or
  /// a malformed frame). Not invoked by close().
  using DisconnectFn = std::function<void()>;

  ReplSession(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~ReplSession() { close(); }
  ReplSession(const ReplSession&) = delete;
  ReplSession& operator=(const ReplSession&) = delete;

  /// One connection attempt (no retry). On success the reader thread is
  /// running and send() may be used. Callbacks must be set before.
  bool connect(ResponseFn on_response, DisconnectFn on_disconnect);

  /// Frame and send one request. False when the stream is down (the
  /// caller's reconnect loop takes over); a send failure also marks the
  /// session disconnected.
  bool send(uint64_t id, const server::Request& req);

  [[nodiscard]] bool connected() const {
    return up_.load(std::memory_order_acquire);
  }

  /// Force the stream down from any thread (e.g. after a follower
  /// rejected a batch): the reader exits and the link reconnects.
  void force_disconnect();

  /// Tear down: shut the socket, join the reader. Idempotent; safe to
  /// call with the session already disconnected.
  void close();

  [[nodiscard]] const std::string& host() const { return host_; }
  [[nodiscard]] uint16_t port() const { return port_; }

 private:
  void reader_loop(ResponseFn on_response, DisconnectFn on_disconnect);

  const std::string host_;
  const uint16_t port_;
  common::Mutex fd_mu_;  // guards fd lifecycle against force_disconnect
  int fd_ GUARDED_BY(fd_mu_) = -1;
  std::atomic<bool> up_{false};
  std::thread reader_;
};

}  // namespace hart::repl
