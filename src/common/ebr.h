// Epoch-based reclamation (EBR) for HART's lock-free read paths.
//
// Optimistic readers traverse DRAM ART nodes (and PM leaf/value slots)
// without holding any lock, so a writer that replaces a node or frees a
// slot must not reuse the memory while a reader may still dereference it.
// The classic three-epoch scheme (Fraser 2004; used by RECIPE-style OLC
// indexes) provides that guarantee cheaply:
//
//   * every reader pins the current epoch for the duration of one
//     operation (Guard: one uncontended store on its own cache line);
//   * a writer retires memory into the current epoch's limbo list instead
//     of freeing it;
//   * the epoch advances only when every pinned reader has observed the
//     current epoch, and a limbo list is freed once it is two epochs old —
//     by then no reader can still hold a pointer into it.
//
// One process-wide domain (Domain::instance()) serves every Hart: the
// grace period is then "all readers of any Hart", slightly coarser than a
// per-tree domain but with a single thread-slot registry and no domain
// lifetime headaches. Retired callbacks reference their owning structure,
// so owners must drain() before destruction (Hart's destructor and
// recover() do).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "obs/counters.h"

namespace hart::common::ebr {

inline constexpr size_t kMaxSlots = 512;
/// Amortization: try to advance the epoch every N retires.
inline constexpr size_t kAdvanceEvery = 64;

class Domain {
 public:
  /// Deferred destruction: `fn(ptr, ctx)` runs once no reader pinned at or
  /// before the current epoch can still hold `ptr`.
  using FreeFn = void (*)(void* ptr, void* ctx);

  Domain() = default;
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;
  ~Domain() { drain(); }

  /// The process-wide domain used by every Hart instance.
  static Domain& instance() {
    static Domain d;
    return d;
  }

  /// RAII epoch pin for one read-side operation. Nestable (re-entrant per
  /// thread); only the outermost guard pins/unpins.
  class Guard {
   public:
    explicit Guard(Domain& d) : d_(d), slot_(d.pin()) {}
    ~Guard() { d_.unpin(slot_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Domain& d_;
    size_t slot_;
  };

  /// Defer `fn(ptr, ctx)` until the grace period has elapsed.
  ///
  /// Contract: the calling thread must hold a live Guard (be pinned on this
  /// domain). Pinning freezes the retiring thread's view of the epoch, so
  /// the retired pointer provably lands in a bucket that no reader admitted
  /// *after* the unlink can reach — without it, a retire could race an
  /// epoch advance and be bucketed one epoch early. Enforced by a debug
  /// assert here and statically by hartlint rule HL003 (unpinned-retire).
  ///
  /// Happens-before chain that makes reclamation safe (the ordering audit
  /// for this path — no extra std::atomic_thread_fence is needed):
  ///
  ///   1. retire() pushes under limbo_mu_; try_advance() swaps a limbo
  ///      bucket under the same mutex. The mutex release/acquire orders
  ///      every push before the swap that hands it to the free callbacks.
  ///   2. The epoch snapshot inside retire() is taken *under* limbo_mu_,
  ///      and epoch_.store(ep+1) in try_advance() is also under limbo_mu_:
  ///      a retire therefore lands in the bucket of a stable epoch — it can
  ///      never straddle an advance.
  ///   3. pin() publishes the slot's (epoch, pinned) word with a seq_cst
  ///      store and then re-reads epoch_ seq_cst; try_advance() scans the
  ///      slots with seq_cst loads before its seq_cst epoch_ store. The
  ///      single total order over these seq_cst accesses means either the
  ///      advance sees the pin (and refuses to advance past it) or the
  ///      reader sees the new epoch (and re-pins at it) — a pin can never
  ///      be overlooked.
  ///   4. A bucket is freed only once it is two epochs old (three-bucket
  ///      rotation), so by (3) every reader that could have observed the
  ///      retired pointer has unpinned; the unpin release-store is observed
  ///      by the advance's slot scan (seq_cst), giving the final
  ///      happens-before edge from last-use to fn(ptr, ctx).
  void retire(void* ptr, FreeFn fn, void* ctx) REQUIRES_EBR_PIN {
    assert(pinned_by_me() &&
           "ebr::Domain::retire requires a live Guard on this thread");
    deferred_free_counter().inc();
    {
      MutexLock lk(limbo_mu_);
      const uint64_t epoch_snapshot = epoch_.load(std::memory_order_relaxed);
      limbo_[epoch_snapshot % 3].push_back(Retired{ptr, fn, ctx});
      if (++retires_since_advance_ < kAdvanceEvery) return;
      retires_since_advance_ = 0;
    }
    try_advance();
  }

  /// True iff the calling thread currently holds a Guard on this domain.
  /// Pure query: unlike pin(), it never claims a slot for the thread.
  [[nodiscard]] bool pinned_by_me() const {
    const ThreadSlots& ts = thread_slots();
    for (const auto& e : ts.entries)
      if (e.domain == this && e.depth > 0) return true;
    return false;
  }

  /// Block until everything retired before this call has been freed: spin
  /// advancing the epoch (waiting out straggler guards) until all three
  /// limbo lists are empty and no free callback is still running on
  /// another thread. Callers must not hold a Guard.
  void drain() {
    assert(!pinned_by_me() &&
           "ebr::Domain::drain under a Guard would deadlock the advance");
    for (;;) {
      {
        MutexLock lk(limbo_mu_);
        if (limbo_[0].empty() && limbo_[1].empty() && limbo_[2].empty() &&
            in_flight_.load(std::memory_order_acquire) == 0)
          return;
      }
      if (!try_advance()) std::this_thread::yield();
    }
  }

  /// Pending (retired, not yet freed) item count — for tests/stats.
  [[nodiscard]] size_t pending() const {
    MutexLock lk(limbo_mu_);
    return limbo_[0].size() + limbo_[1].size() + limbo_[2].size();
  }

  [[nodiscard]] uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  // HARTscope counters (process-wide; stable references).
  static obs::Counter& deferred_free_counter() {
    static obs::Counter& c =
        obs::Registry::instance().counter("ebr_deferred_free_total");
    return c;
  }
  static obs::Counter& advance_counter() {
    static obs::Counter& c =
        obs::Registry::instance().counter("ebr_epoch_advance_total");
    return c;
  }

 private:
  struct Retired {
    void* ptr;
    FreeFn fn;
    void* ctx;
  };
  /// One cache line per slot: bit 0 = pinned, bits 1.. = pinned epoch.
  struct alignas(64) Slot {
    std::atomic<uint64_t> ctl{0};
    std::atomic<bool> claimed{false};
  };

  /// Per-thread slot registration. A thread claims one slot per domain the
  /// first time it pins and releases it at thread exit; guards nest via
  /// `depth`. The cache covers the handful of domains a thread touches
  /// (in practice one: Domain::instance()).
  struct ThreadSlots {
    struct Entry {
      Domain* domain = nullptr;
      size_t slot = 0;
      uint32_t depth = 0;
    };
    static constexpr size_t kEntries = 4;
    Entry entries[kEntries];
    ~ThreadSlots() {
      for (auto& e : entries)
        if (e.domain != nullptr)
          e.domain->slots_[e.slot].claimed.store(
              false, std::memory_order_release);
    }
  };

  static ThreadSlots& thread_slots() {
    static thread_local ThreadSlots ts;
    return ts;
  }

  ThreadSlots::Entry& thread_entry() {
    ThreadSlots& ts = thread_slots();
    ThreadSlots::Entry* open = nullptr;
    for (auto& e : ts.entries) {
      if (e.domain == this) return e;
      if (open == nullptr && (e.domain == nullptr || e.depth == 0))
        open = &e;
    }
    // All entries pinned on other domains cannot happen with nesting
    // bounded by kEntries domains; evict an unpinned entry, releasing its
    // claimed slot back to its domain.
    if (open->domain != nullptr)
      open->domain->slots_[open->slot].claimed.store(
          false, std::memory_order_release);
    open->domain = this;
    open->slot = claim_slot();
    open->depth = 0;
    return *open;
  }

  size_t claim_slot() {
    for (;;) {
      for (size_t i = 0; i < kMaxSlots; ++i) {
        bool expect = false;
        if (!slots_[i].claimed.load(std::memory_order_relaxed) &&
            slots_[i].claimed.compare_exchange_strong(
                expect, true, std::memory_order_acq_rel))
          return i;
      }
      std::this_thread::yield();  // > kMaxSlots live threads: wait one out
    }
  }

  size_t pin() {
    ThreadSlots::Entry& e = thread_entry();
    if (e.depth++ > 0) return e.slot;
    Slot& s = slots_[e.slot];
    for (;;) {
      const uint64_t ep = epoch_.load(std::memory_order_acquire);
      // seq_cst store/load pair: the store must be visible to a concurrent
      // try_advance() scan before we re-read the epoch, else an advance
      // could overlook this pin.
      s.ctl.store((ep << 1) | 1, std::memory_order_seq_cst);
      if (epoch_.load(std::memory_order_seq_cst) == ep) return e.slot;
    }
  }

  void unpin(size_t slot) {
    ThreadSlots::Entry& e = thread_entry();
    if (--e.depth > 0) return;
    slots_[slot].ctl.store(0, std::memory_order_release);
  }

  /// Advance the epoch if every pinned reader is at the current one, then
  /// free the limbo list that is now two epochs old. Returns true if it
  /// advanced.
  bool try_advance() {
    std::vector<Retired> to_free;
    {
      MutexLock lk(limbo_mu_);
      const uint64_t ep = epoch_.load(std::memory_order_relaxed);
      for (const Slot& s : slots_) {
        const uint64_t ctl = s.ctl.load(std::memory_order_seq_cst);
        if ((ctl & 1) != 0 && (ctl >> 1) != ep) return false;
      }
      epoch_.store(ep + 1, std::memory_order_seq_cst);
      advance_counter().inc();
      // Bucket (ep+1) % 3 held items retired two epochs ago; it is also
      // where retires at the new epoch land, so empty it now. in_flight_
      // keeps drain() honest while the callbacks run outside the lock.
      to_free.swap(limbo_[(ep + 1) % 3]);
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
    }
    for (const Retired& r : to_free) r.fn(r.ptr, r.ctx);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }

  std::atomic<uint64_t> epoch_{2};
  Slot slots_[kMaxSlots];
  // limbo_mu_ orders retires against bucket swaps (see retire() doc chain,
  // steps 1-2); the epoch word itself is only ever advanced under it.
  mutable Mutex limbo_mu_;
  std::vector<Retired> limbo_[3] GUARDED_BY(limbo_mu_);
  size_t retires_since_advance_ GUARDED_BY(limbo_mu_) = 0;
  std::atomic<size_t> in_flight_{0};
};

using Guard = Domain::Guard;

}  // namespace hart::common::ebr
