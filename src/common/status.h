// common::Status — the typed result of an index operation (Index API v2).
//
// The v1 interface returned bare bools whose meaning differed per call
// ("inserted a new key" for insert, "hit" for search/update/remove) and
// rejected malformed keys by throwing std::invalid_argument. Status makes
// the outcome explicit while keeping every v1 call site compiling: the
// implicit bool conversion reproduces the legacy truth table exactly
// (kOk and kInserted are true; kUpdated, kNotFound and kInvalidArgument
// are false), and validation failures now surface as kInvalidArgument
// instead of an exception.
#pragma once

#include <cstdint>

namespace hart::common {

class Status {
 public:
  enum Code : uint8_t {
    kOk = 0,               // search hit / update applied / remove applied
    kInserted = 1,         // insert created a new key
    kUpdated = 2,          // insert hit an existing key and updated it
    kNotFound = 3,         // key absent
    kInvalidArgument = 4,  // malformed key or value; nothing was mutated
  };

  constexpr Status() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): Code literals are Statuses.
  constexpr Status(Code c) : code_(c) {}

  [[nodiscard]] constexpr Code code() const { return code_; }
  /// Every non-error outcome (the operation was applied or answered).
  [[nodiscard]] constexpr bool ok() const {
    return code_ != kNotFound && code_ != kInvalidArgument;
  }

  /// v1 bool semantics: insert() was true iff a NEW key was created;
  /// search/update/remove were true iff the key was hit.
  // NOLINTNEXTLINE(google-explicit-constructor): the v1 migration shim.
  constexpr operator bool() const {
    return code_ == kOk || code_ == kInserted;
  }

  friend constexpr bool operator==(Status a, Status b) {
    return a.code_ == b.code_;
  }
  friend constexpr bool operator!=(Status a, Status b) { return !(a == b); }
  // Exact-match Code overloads: without them `status == Status::kOk` is
  // ambiguous between Status(Code) + the Status comparison and the
  // operator bool + builtin integer comparison.
  friend constexpr bool operator==(Status a, Code b) { return a.code_ == b; }
  friend constexpr bool operator==(Code a, Status b) { return a == b.code_; }
  friend constexpr bool operator!=(Status a, Code b) { return !(a == b); }
  friend constexpr bool operator!=(Code a, Status b) { return !(a == b); }

  [[nodiscard]] const char* name() const {
    switch (code_) {
      case kOk: return "ok";
      case kInserted: return "inserted";
      case kUpdated: return "updated";
      case kNotFound: return "not-found";
      default: return "invalid-argument";
    }
  }

 private:
  Code code_ = kOk;
};

}  // namespace hart::common
