// common::Status — the typed result of an index operation (Index API v2).
//
// The v1 interface returned bare bools whose meaning differed per call
// ("inserted a new key" for insert, "hit" for search/update/remove) and
// rejected malformed keys by throwing std::invalid_argument. Status makes
// the outcome explicit: callers compare against a Code (or use ok() for
// "the operation was applied or answered"), and validation failures
// surface as kInvalidArgument instead of an exception. There is
// deliberately no implicit bool conversion — the v1 shim's truth table
// (kOk and kInserted true, everything else false) read differently per
// operation and hid kUpdated/kOutOfMemory outcomes behind `false`.
#pragma once

#include <cstdint>

namespace hart::common {

class Status {
 public:
  enum Code : uint8_t {
    kOk = 0,               // search hit / update applied / remove applied
    kInserted = 1,         // insert created a new key
    kUpdated = 2,          // insert hit an existing key and updated it
    kNotFound = 3,         // key absent
    kInvalidArgument = 4,  // malformed key or value; nothing was mutated
    kOutOfMemory = 5,      // arena exhausted; nothing was mutated
    kUnavailable = 6,      // service/transport failure (client-side)
  };

  constexpr Status() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): Code literals are Statuses.
  constexpr Status(Code c) : code_(c) {}

  [[nodiscard]] constexpr Code code() const { return code_; }
  /// Every non-error outcome (the operation was applied or answered).
  [[nodiscard]] constexpr bool ok() const {
    return code_ == kOk || code_ == kInserted || code_ == kUpdated;
  }

  friend constexpr bool operator==(Status a, Status b) {
    return a.code_ == b.code_;
  }
  friend constexpr bool operator!=(Status a, Status b) { return !(a == b); }

  [[nodiscard]] const char* name() const {
    switch (code_) {
      case kOk: return "ok";
      case kInserted: return "inserted";
      case kUpdated: return "updated";
      case kNotFound: return "not-found";
      case kOutOfMemory: return "out-of-memory";
      case kUnavailable: return "unavailable";
      default: return "invalid-argument";
    }
  }

 private:
  Code code_ = kOk;
};

}  // namespace hart::common
