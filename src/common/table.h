// A tiny fixed-width table printer used by the benchmark harness to emit
// paper-shaped result tables on stdout.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace hart::common {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int prec = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<size_t> w(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i) w[i] = header_[i].size();
    for (const auto& r : rows_)
      for (size_t i = 0; i < r.size() && i < w.size(); ++i)
        if (r[i].size() > w[i]) w[i] = r[i].size();

    auto line = [&] {
      os << '+';
      for (size_t i = 0; i < w.size(); ++i)
        os << std::string(w[i] + 2, '-') << '+';
      os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& r) {
      os << '|';
      for (size_t i = 0; i < w.size(); ++i) {
        const std::string& cell = i < r.size() ? r[i] : std::string();
        os << ' ' << cell << std::string(w[i] - cell.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    line();
    emit(header_);
    line();
    for (const auto& r : rows_) emit(r);
    line();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hart::common
