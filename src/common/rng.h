// Deterministic pseudo-random number generation used by workload generators,
// property tests and the crash simulator. Everything in this repo that is
// "random" is seeded so every experiment is exactly reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace hart::common {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
/// Small, fast, and good enough statistical quality for workload synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding so nearby seeds give unrelated streams.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation, simplified: the tiny
    // modulo bias of a plain % is irrelevant here, but the multiply-shift
    // method is faster than % and unbiased enough for workloads.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p) { return next_double() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace hart::common
