// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace hart::common {

/// Monotonic stopwatch; reports elapsed time in seconds / nanoseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] uint64_t nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hart::common
