// Log-bucketed latency histogram for the benchmark harness and the
// HARTscope observability layer: cheap to record (one increment),
// accurate to ~4% per bucket, mergeable, reports mean and percentiles.
// Used when HART_BENCH_PERCENTILES=1 and per shard/op in hartd.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hart::common {

/// One-shot percentile bundle (all in nanoseconds) for exposition.
struct Percentiles {
  uint64_t count = 0;
  double mean_ns = 0.0;
  uint64_t min_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
};

class LatencyHistogram {
 public:
  // Buckets: 16 sub-buckets per power of two, covering 1 ns .. ~1 s.
  static constexpr int kSubBits = 4;
  static constexpr int kBuckets = 64 * (1 << kSubBits);

  LatencyHistogram() : counts_(kBuckets, 0) {}

  void record(uint64_t ns) {
    const int b = bucket_of(ns);
    counts_[b]++;
    lo_ = std::min(lo_, b);
    hi_ = std::max(hi_, b + 1);
    ++n_;
    sum_ += ns;
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
  }

  /// Clear in place, keeping the bucket storage (no reallocation). Only
  /// the touched bucket range is wiped — the shard workers reset their
  /// per-batch locals once per batch, and latencies cluster into a few
  /// dozen adjacent buckets out of kBuckets.
  void reset() {
    if (n_ != 0) std::fill(counts_.begin() + lo_, counts_.begin() + hi_, 0);
    lo_ = kBuckets;
    hi_ = 0;
    n_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<uint64_t>::max();
    max_ = 0;
  }

  void merge(const LatencyHistogram& other) {
    if (other.n_ == 0) return;
    for (int i = other.lo_; i < other.hi_; ++i) counts_[i] += other.counts_[i];
    lo_ = std::min(lo_, other.lo_);
    hi_ = std::max(hi_, other.hi_);
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] uint64_t count() const { return n_; }
  [[nodiscard]] uint64_t sum_ns() const { return sum_; }
  [[nodiscard]] uint64_t min_ns() const { return n_ == 0 ? 0 : min_; }
  [[nodiscard]] uint64_t max_ns() const { return max_; }
  [[nodiscard]] double mean_ns() const {
    return n_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(n_);
  }

  [[nodiscard]] Percentiles percentiles() const {
    Percentiles p;
    p.count = n_;
    p.mean_ns = mean_ns();
    p.min_ns = min_ns();
    p.p50_ns = percentile_ns(50);
    p.p95_ns = percentile_ns(95);
    p.p99_ns = percentile_ns(99);
    p.p999_ns = percentile_ns(99.9);
    p.max_ns = max_ns();
    return p;
  }

  /// p in [0, 100]; returns the lower edge of the bucket containing the
  /// p-th percentile sample.
  [[nodiscard]] uint64_t percentile_ns(double p) const {
    if (n_ == 0) return 0;
    const auto target = static_cast<uint64_t>(
        std::min(static_cast<double>(n_ - 1), p / 100.0 * static_cast<double>(n_)));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > target) return bucket_floor(i);
    }
    return bucket_floor(kBuckets - 1);
  }

  [[nodiscard]] std::string summary() const {
    auto us = [](uint64_t ns) { return std::to_string(ns / 1000.0); };
    return "mean=" + std::to_string(mean_ns() / 1000.0) +
           "us p50=" + us(percentile_ns(50)) +
           "us p99=" + us(percentile_ns(99)) +
           "us p99.9=" + us(percentile_ns(99.9)) + "us";
  }

 private:
  static int bucket_of(uint64_t ns) {
    if (ns < (1 << kSubBits)) return static_cast<int>(ns);
    const int msb = 63 - std::countl_zero(ns);
    const int sub = static_cast<int>((ns >> (msb - kSubBits)) & ((1 << kSubBits) - 1));
    const int idx = ((msb - kSubBits + 1) << kSubBits) + sub;
    return std::min(idx, kBuckets - 1);
  }
  static uint64_t bucket_floor(int idx) {
    if (idx < (1 << kSubBits)) return static_cast<uint64_t>(idx);
    const int exp = (idx >> kSubBits) + kSubBits - 1;
    const int sub = idx & ((1 << kSubBits) - 1);
    return (uint64_t{1} << exp) +
           (static_cast<uint64_t>(sub) << (exp - kSubBits));
  }

  std::vector<uint64_t> counts_;
  // Touched bucket range [lo_, hi_): bounds merge/reset to the buckets
  // actually used. Empty histogram: lo_ == kBuckets, hi_ == 0.
  int lo_ = kBuckets;
  int hi_ = 0;
  uint64_t n_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
};

}  // namespace hart::common
