// Log-bucketed latency histogram for the benchmark harness: cheap to
// record (one increment), accurate to ~4% per bucket, reports mean and
// percentiles. Used when HART_BENCH_PERCENTILES=1.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace hart::common {

class LatencyHistogram {
 public:
  // Buckets: 16 sub-buckets per power of two, covering 1 ns .. ~1 s.
  static constexpr int kSubBits = 4;
  static constexpr int kBuckets = 64 * (1 << kSubBits);

  LatencyHistogram() : counts_(kBuckets, 0) {}

  void record(uint64_t ns) {
    counts_[bucket_of(ns)]++;
    ++n_;
    sum_ += ns;
  }

  void merge(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    n_ += other.n_;
    sum_ += other.sum_;
  }

  [[nodiscard]] uint64_t count() const { return n_; }
  [[nodiscard]] double mean_ns() const {
    return n_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(n_);
  }

  /// p in [0, 100]; returns the lower edge of the bucket containing the
  /// p-th percentile sample.
  [[nodiscard]] uint64_t percentile_ns(double p) const {
    if (n_ == 0) return 0;
    const auto target = static_cast<uint64_t>(
        std::min(static_cast<double>(n_ - 1), p / 100.0 * static_cast<double>(n_)));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > target) return bucket_floor(i);
    }
    return bucket_floor(kBuckets - 1);
  }

  [[nodiscard]] std::string summary() const {
    auto us = [](uint64_t ns) { return std::to_string(ns / 1000.0); };
    return "mean=" + std::to_string(mean_ns() / 1000.0) +
           "us p50=" + us(percentile_ns(50)) +
           "us p99=" + us(percentile_ns(99)) +
           "us p99.9=" + us(percentile_ns(99.9)) + "us";
  }

 private:
  static int bucket_of(uint64_t ns) {
    if (ns < (1 << kSubBits)) return static_cast<int>(ns);
    const int msb = 63 - std::countl_zero(ns);
    const int sub = static_cast<int>((ns >> (msb - kSubBits)) & ((1 << kSubBits) - 1));
    const int idx = ((msb - kSubBits + 1) << kSubBits) + sub;
    return std::min(idx, kBuckets - 1);
  }
  static uint64_t bucket_floor(int idx) {
    if (idx < (1 << kSubBits)) return static_cast<uint64_t>(idx);
    const int exp = (idx >> kSubBits) + kSubBits - 1;
    const int sub = idx & ((1 << kSubBits) - 1);
    return (uint64_t{1} << exp) +
           (static_cast<uint64_t>(sub) << (exp - kSubBits));
  }

  std::vector<uint64_t> counts_;
  uint64_t n_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace hart::common
