// The common key-value index interface implemented by all four trees in this
// repository (HART and its three baselines WOART, ART+CoW, FPTree).
//
// Keys are byte strings of 1..kMaxKeyLen bytes that must not contain a NUL
// byte (the internal radix trees use an implicit 0x00 terminator, the same
// restriction as libart, which the paper's implementation was based on).
// A key that violates either rule is rejected with
// Status::kInvalidArgument at the API boundary — it would otherwise be
// silently truncated at the embedded NUL by the implicit terminator.
// Values are byte strings of 1..kMaxValueLen bytes; they are stored
// out-of-leaf in persistent memory in fixed size classes (Section III.A.5).
// The paper ships two classes (8 B / 16 B) and notes the design "can be
// easily extended to support more sizes of values by implementing more
// singly linked-lists of value object memory chunks" — this implementation
// does exactly that, with classes {8, 16, 32, 64}.
//
// API v2: operations return common::Status instead of bool. Status's
// implicit bool conversion reproduces the v1 truth table (see status.h),
// so v1-style call sites keep working unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hart::common {

inline constexpr size_t kMaxKeyLen = 24;    // paper: "maximal key length ... 24 bytes"
inline constexpr size_t kMaxValueLen = 64;  // paper classes 8/16, extended to 32/64

/// DRAM / PM footprint of an index, in bytes. PM figures are *logical*
/// (requested) sizes so they are comparable across allocators.
struct MemoryUsage {
  uint64_t dram_bytes = 0;
  uint64_t pm_bytes = 0;
};

/// Boundary validation shared by every index: a key must be 1..kMaxKeyLen
/// bytes with no embedded NUL (the radix trees' implicit 0x00 terminator
/// would silently truncate it otherwise).
inline Status validate_key(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyLen ||
      key.find('\0') != std::string_view::npos)
    return Status::kInvalidArgument;
  return Status::kOk;
}

/// A value must be 1..kMaxValueLen bytes (arbitrary bytes allowed).
inline Status validate_value(std::string_view value) {
  if (value.empty() || value.size() > kMaxValueLen)
    return Status::kInvalidArgument;
  return Status::kOk;
}

/// Abstract index. Thread-safety is implementation-defined: HART supports
/// concurrent operation (per-ART reader/writer locks); the baselines are
/// single-writer like the paper's.
class Index {
 public:
  virtual ~Index() = default;

  /// Upsert: inserts key->value, or updates the value if the key exists
  /// (Algorithm 1 calls Update() when the leaf is found).
  /// Returns kInserted for a new key, kUpdated for an existing one, or
  /// kInvalidArgument for a malformed key/value.
  virtual Status insert(std::string_view key, std::string_view value) = 0;

  /// Point lookup. On hit, copies the value into `out` and returns kOk;
  /// kNotFound on a miss, kInvalidArgument for a malformed key.
  virtual Status search(std::string_view key, std::string* out) const = 0;

  /// Update the value of an existing key (Algorithm 3). Returns kOk on
  /// success, kNotFound if the key is absent (no insertion happens), or
  /// kInvalidArgument for a malformed key/value.
  virtual Status update(std::string_view key, std::string_view value) = 0;

  /// Delete a key (Algorithm 5). Returns kOk on success, kNotFound if the
  /// key is absent, or kInvalidArgument for a malformed key.
  virtual Status remove(std::string_view key) = 0;

  /// Ordered scan: collect up to `limit` entries with key >= lo, in key
  /// order. Returns the number collected.
  virtual size_t range(std::string_view lo, size_t limit,
                       std::vector<std::pair<std::string, std::string>>* out)
      const = 0;

  /// Number of live keys.
  virtual size_t size() const = 0;

  virtual MemoryUsage memory_usage() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace hart::common
