// Counting Bloom filter for the shard GET/MGET fast path.
//
// A plain bit-array Bloom filter cannot support deletes (clearing a bit
// can create a false NEGATIVE for another key), and the shard workload
// deletes keys. This filter therefore stores 4-bit saturating counters,
// two per byte:
//
//   * add       increments each of the k counters (saturating at 15);
//   * remove    decrements counters that are < 15 — a saturated counter
//     is sticky forever, trading a slightly higher false-positive rate
//     for the no-false-negative guarantee even after counter overflow;
//   * may_contain is true iff all k counters are nonzero.
//
// Contract: remove() only for keys previously add()ed (the shard enforces
// this by mutating the filter on the Hart's kInserted / delete-kOk status
// codes only). Under that contract the filter NEVER reports a false
// negative: every live key's counters are >= 1.
//
// Thread safety: add/remove CAS their counter nibbles; may_contain is a
// relaxed read. The dispatcher may probe concurrently with a shard worker
// mutating — a probe racing the insert of the same key is benign because
// the dispatcher only short-circuits NEGATIVE lookups, and an in-flight
// (unacked) insert may legitimately be reported either way.
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace hart::common {

class CountingBloom {
 public:
  /// Sizes the filter at `expected_keys * bits_per_key` counters (4 bits
  /// each, so DRAM cost is expected_keys * bits_per_key / 2 bytes). The
  /// hash count k is the textbook optimum ln2 * bits_per_key, clamped to
  /// [1, 16].
  CountingBloom(size_t expected_keys, size_t bits_per_key)
      : cells_(std::max<size_t>(expected_keys, 1) *
               std::max<size_t>(bits_per_key, 1)),
        k_(hash_count(bits_per_key)),
        bytes_((cells_ + 1) / 2) {}

  CountingBloom(const CountingBloom&) = delete;
  CountingBloom& operator=(const CountingBloom&) = delete;

  void add(std::string_view key) {
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    seed(key, &h1, &h2);
    for (unsigned i = 0; i < k_; ++i)
      bump(slot(h1, h2, i), +1);
  }

  /// Only for keys previously add()ed (see the contract above).
  void remove(std::string_view key) {
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    seed(key, &h1, &h2);
    for (unsigned i = 0; i < k_; ++i)
      bump(slot(h1, h2, i), -1);
  }

  /// False means definitively absent (no false negatives under the
  /// contract); true means "probably present".
  [[nodiscard]] bool may_contain(std::string_view key) const {
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    seed(key, &h1, &h2);
    for (unsigned i = 0; i < k_; ++i)
      if (counter(slot(h1, h2, i)) == 0) return false;
    return true;
  }

  [[nodiscard]] size_t counter_count() const { return cells_; }
  [[nodiscard]] unsigned hashes() const { return k_; }
  [[nodiscard]] size_t memory_bytes() const {
    return bytes_.size() * sizeof(bytes_[0]);
  }

 private:
  static unsigned hash_count(size_t bits_per_key) {
    const double k = std::round(0.693 * static_cast<double>(bits_per_key));
    if (k < 1.0) return 1;
    if (k > 16.0) return 16;
    return static_cast<unsigned>(k);
  }

  /// FNV-1a 64 for h1; a splitmix64 finalizer (forced odd) for the double
  /// hashing step h1 + i*h2 — k well-spread slots from one key pass.
  static void seed(std::string_view key, uint64_t* h1, uint64_t* h2) {
    uint64_t h = 1469598103934665603ULL;
    for (const char c : key) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ULL;
    }
    *h1 = h;
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    *h2 = (h ^ (h >> 31)) | 1;
  }

  [[nodiscard]] size_t slot(uint64_t h1, uint64_t h2, unsigned i) const {
    return static_cast<size_t>((h1 + i * h2) % cells_);
  }

  [[nodiscard]] uint8_t counter(size_t s) const {
    const uint8_t b = bytes_[s / 2].load(std::memory_order_relaxed);
    return (s & 1) != 0 ? b >> 4 : b & 0x0F;
  }

  /// CAS one nibble up or down. Saturated (15) counters are sticky: never
  /// incremented past, never decremented from — overflow degrades the
  /// false-positive rate, never correctness.
  void bump(size_t s, int delta) {
    std::atomic<uint8_t>& cell = bytes_[s / 2];
    const unsigned shift = (s & 1) != 0 ? 4 : 0;
    uint8_t cur = cell.load(std::memory_order_relaxed);
    for (;;) {
      const uint8_t nib = (cur >> shift) & 0x0F;
      if (nib == 15) return;  // sticky
      if (delta < 0 && nib == 0) return;  // contract violated; stay safe
      const auto next = static_cast<uint8_t>(
          (cur & ~(0x0Fu << shift)) |
          (static_cast<unsigned>(nib + delta) << shift));
      if (cell.compare_exchange_weak(cur, next, std::memory_order_relaxed))
        return;
    }
  }

  size_t cells_;
  unsigned k_;
  std::vector<std::atomic<uint8_t>> bytes_;
};

}  // namespace hart::common
