// Clang Thread Safety Analysis surface for the whole tree.
//
// Two things live here:
//
//  1. The TSA attribute macro set (CAPABILITY, GUARDED_BY, REQUIRES, ...).
//     Under clang these expand to the thread-safety attributes and the
//     `clang-thread-safety` CI job builds src/ with -Werror=thread-safety;
//     under GCC (the default local toolchain) they expand to nothing, so
//     annotated code compiles identically everywhere.
//
//  2. Annotated lock wrappers. libstdc++'s std::mutex / std::shared_mutex
//     carry no capability attributes, so TSA cannot see std::lock_guard /
//     std::unique_lock acquisitions. Guarded state therefore uses
//     common::Mutex / common::SharedMutex plus the scoped lockers below
//     (MutexLock, WriterLock, ReaderLock) and common::CondVar. The wrappers
//     are zero-cost shims over the std types.
//
// Annotation conventions for this tree (see DESIGN.md §8):
//   * Every member a mutex protects is GUARDED_BY(that mutex).
//   * `*_locked()` helpers declare REQUIRES(mu) instead of re-locking.
//     Capability expressions may be parameter-relative: REQUIRES(st.mu).
//   * Condition-variable waits are explicit while-loops around
//     CondVar::wait(mu) — TSA analyzes lambdas as separate functions, so
//     the predicate-lambda form of std::condition_variable::wait() would
//     hide the capability and is not used in annotated code.
//   * Data read by optimistic/seqlock readers (ART node words, leaf vseq,
//     Partition::tree under version validation) is deliberately NOT
//     GUARDED_BY — those protocols are checked by tools/hartlint instead.
//   * NO_THREAD_SAFETY_ANALYSIS is a last resort and needs a comment.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HART_TSA(x) __attribute__((x))
#endif
#endif
#ifndef HART_TSA
#define HART_TSA(x)  // no-op: GCC and pre-TSA clang
#endif

#define CAPABILITY(x) HART_TSA(capability(x))
#define SCOPED_CAPABILITY HART_TSA(scoped_lockable)
#define GUARDED_BY(x) HART_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) HART_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) HART_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) HART_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) HART_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) HART_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) HART_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) HART_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) HART_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) HART_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) HART_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) HART_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  HART_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) HART_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) HART_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) HART_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS HART_TSA(no_thread_safety_analysis)

// ---- hartlint markers (tools/hartlint) ------------------------------------
//
// HARTLINT_SUPPRESS("RULE: reason") — placed on (or on the line before) the
// flagged statement; hartlint skips the finding but records the suppression
// so `hartlint.py --list-suppressions` stays auditable. Expands to nothing.
#define HARTLINT_SUPPRESS(reason)

// REQUIRES_EBR_PIN — declares that a function may only be called while the
// calling thread holds a live ebr::Guard (rule HL003 unpinned-retire).
// hartlint treats the body of a REQUIRES_EBR_PIN function as pinned and
// checks that every *call site* is lexically inside a Guard scope or inside
// another REQUIRES_EBR_PIN function. Expands to nothing in normal builds;
// the optional AST-based checker (tools/hartlint/clang) compiles with
// -DHARTLINT_AST_PASS and sees it as an annotate attribute.
#if defined(HARTLINT_AST_PASS)
#define REQUIRES_EBR_PIN __attribute__((annotate("hart::requires_ebr_pin")))
#else
#define REQUIRES_EBR_PIN
#endif

namespace hart::common {

// Annotated exclusive mutex. Use with MutexLock or lock()/unlock().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Escape hatch for CondVar: the underlying std::mutex. Callers other
  /// than CondVar should never need this.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// Annotated reader/writer mutex. Use with WriterLock / ReaderLock.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock on a Mutex (annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  // Generic release: a scoped capability's destructor releases whatever
  // mode its constructor acquired.
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable usable with Mutex under TSA. wait() declares
// REQUIRES(mu): the caller holds mu (via MutexLock), wait() borrows it for
// the duration of the block through adopt/release so the capability is held
// again on return — exactly what the analysis assumes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // caller still holds mu
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& d)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lk, d);
    lk.release();
    return st;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hart::common
