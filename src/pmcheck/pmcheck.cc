#include "pmcheck/pmcheck.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>

namespace hart::pmcheck {

namespace {
constexpr uint64_t kLineBytes = 64;  // kCacheLine, kept self-contained

// Cap on remembered store windows per line: enough for every co-resident
// 8-byte object on one line to have an open window.
constexpr size_t kMaxStoresPerLine = 8;

std::string hexstr(uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}
}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kUnflushedRead:
      return "unflushed-read";
    case Kind::kRedundantPersist:
      return "redundant-persist";
    case Kind::kPersistToUnallocated:
      return "persist-to-unallocated";
    case Kind::kPmRace:
      return "pm-race";
  }
  return "unknown";
}

std::string Report::to_string() const {
  std::ostringstream os;
  os << "PmReport{persist_calls=" << persist_calls
     << " flushed_lines=" << flushed_lines
     << " clean_line_flushes=" << clean_line_flushes;
  for (int k = 0; k < kNumKinds; ++k)
    os << ' ' << kind_name(static_cast<Kind>(k)) << '=' << counts[k];
  os << '}';
  for (const Violation& v : samples) {
    os << "\n  [" << kind_name(v.kind) << "] off=0x" << std::hex << v.off
       << std::dec << " len=" << v.len << " tid=" << v.tid;
    if (v.kind == Kind::kPmRace) os << " tid2=" << v.tid2;
    if (!v.note.empty()) os << " — " << v.note;
  }
  return os.str();
}

uint32_t PmCheck::self_tid() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

PmCheck::PmCheck(const std::byte* base, size_t size, size_t header_bytes,
                 bool assume_reopened, Config cfg)
    : base_(base), size_(size), header_bytes_(header_bytes), cfg_(cfg) {
  shadow_.resize(size_);
  std::memcpy(shadow_.data(), base_, size_);
  line_flags_.assign(size_ / kLineBytes, 0);
  if (assume_reopened) {
    // Existing file contents: allocation unknown until the recovery
    // protocol rebuilds the map; treat the whole block space as allocated
    // and already flushed (it survived a previous lifetime).
    for (uint64_t l = header_bytes_ / kLineBytes; l < line_flags_.size(); ++l)
      line_flags_[l] = kAllocUnknown | kFlushedBefore;
  }
}

bool PmCheck::line_allocated(uint64_t line) const {
  if (line * kLineBytes < header_bytes_) return true;  // header is always live
  const uint8_t f = line_flags_[line];
  return (f & (kAllocated | kAllocUnknown)) != 0;
}

void PmCheck::record(Kind k, uint64_t off, uint64_t len, uint32_t tid2,
                     std::string note) {
  counts_[static_cast<int>(k)]++;
  if (samples_.size() < kMaxSamples) {
    Violation v;
    v.kind = k;
    v.off = off;
    v.len = len;
    v.tid = self_tid();
    v.tid2 = tid2;
    v.note = std::move(note);
    samples_.push_back(std::move(v));
  }
}

void PmCheck::on_alloc(uint64_t off, uint64_t bytes) {
  common::MutexLock lk(mu_);
  // Fresh span: content is whatever the allocator left there; sync the
  // shadow so only post-allocation stores count as dirty, and clear the
  // flushed-before flag so the first persist is never "redundant".
  std::memcpy(shadow_.data() + off, base_ + off, bytes);
  for (uint64_t l = line_of(off); l <= line_of(off + bytes - 1); ++l) {
    line_flags_[l] = kAllocated;
    stores_.erase(l);
  }
}

void PmCheck::on_free(uint64_t off, uint64_t bytes) {
  common::MutexLock lk(mu_);
  for (uint64_t l = line_of(off); l <= line_of(off + bytes - 1); ++l) {
    line_flags_[l] &= static_cast<uint8_t>(~(kAllocated | kAllocUnknown));
    stores_.erase(l);
  }
}

void PmCheck::on_object_alloc(uint64_t off, uint64_t bytes) {
  if (bytes == 0) return;
  common::MutexLock lk(mu_);
  // Object slots are re-used inside live chunks: the new owner's first
  // persist must not be judged against the previous owner's flushed bytes.
  for (uint64_t l = line_of(off); l <= line_of(off + bytes - 1); ++l)
    line_flags_[l] &= static_cast<uint8_t>(~kFlushedBefore);
}

void PmCheck::on_reset_alloc_map() {
  common::MutexLock lk(mu_);
  for (uint64_t l = header_bytes_ / kLineBytes; l < line_flags_.size(); ++l)
    line_flags_[l] &=
        static_cast<uint8_t>(~(kAllocated | kAllocUnknown | kFlushedBefore));
  stores_.clear();
}

void PmCheck::on_mark_used(uint64_t off, uint64_t bytes) {
  common::MutexLock lk(mu_);
  for (uint64_t l = line_of(off); l <= line_of(off + bytes - 1); ++l) {
    // Recovery re-persists ranges defensively (idempotent redo); clearing
    // the flushed-before flag keeps those from counting as redundant.
    line_flags_[l] = kAllocated;
  }
}

void PmCheck::on_persist(uint64_t off, uint64_t len) {
  if (len == 0 || off + len > size_) return;
  const uint32_t tid = self_tid();
  common::MutexLock lk(mu_);
  persist_calls_++;
  const uint64_t first = line_of(off);
  const uint64_t last = line_of(off + len - 1);
  flushed_lines_ += last - first + 1;

  bool any_dirty = false;
  bool all_flushed_before = true;
  bool annotated_store = false;
  bool unalloc_reported = false;
  for (uint64_t l = first; l <= last; ++l) {
    if (cfg_.unallocated && !line_allocated(l) && !unalloc_reported) {
      unalloc_reported = true;
      record(Kind::kPersistToUnallocated, off, len, 0,
             "persist() targets unallocated/freed block space (line " +
                 hexstr(l * kLineBytes) + ")");
    }
    // Dirtiness over the intersection of the persisted range with this
    // line only — byte-exact, so neighbours' bytes are never touched.
    const uint64_t lo = std::max(off, l * kLineBytes);
    const uint64_t hi = std::min(off + len, (l + 1) * kLineBytes);
    const bool dirty =
        std::memcmp(base_ + lo, shadow_.data() + lo, hi - lo) != 0;
    if (dirty)
      any_dirty = true;
    else if (line_flags_[l] & kFlushedBefore)
      clean_line_flushes_++;
    if ((line_flags_[l] & kFlushedBefore) == 0) all_flushed_before = false;
    // An open annotated-store window over these bytes means the program
    // really did store here since the last flush — even identical bytes
    // (slot reuse rewriting the same key byte) then need this persist.
    if (auto it = stores_.find(l); it != stores_.end()) {
      for (const StoreRec& r : it->second)
        if (r.lo < off + len && off < r.hi) annotated_store = true;
    }
  }
  // Back-to-back evidence: this thread's previous persist already covered
  // the whole range. Without it, a clean range may just be an unannotated
  // rewrite of identical content, which is legal protocol.
  bool repeat_of_last = false;
  if (auto it = last_persist_.find(tid); it != last_persist_.end())
    repeat_of_last =
        it->second.first <= off && off + len <= it->second.first + it->second.second;
  if (cfg_.redundant_persist && !any_dirty && all_flushed_before &&
      !annotated_store && repeat_of_last) {
    record(Kind::kRedundantPersist, off, len, 0,
           "range persisted twice in a row with identical content and no "
           "intervening store");
  }
  last_persist_[tid] = {off, len};

  // Commit: the range is now part of the persistence domain.
  std::memcpy(shadow_.data() + off, base_ + off, len);
  for (uint64_t l = first; l <= last; ++l) {
    line_flags_[l] |= kFlushedBefore;
    // Close store windows whose bytes this flush (plus its fence) covered.
    auto it = stores_.find(l);
    if (it == stores_.end()) continue;
    auto& v = it->second;
    std::erase_if(v, [&](const StoreRec& r) {
      return r.lo < off + len && off < r.hi;  // any overlap ends the window
    });
    if (v.empty()) stores_.erase(it);
  }
}

void PmCheck::on_read(uint64_t off, uint64_t len) {
  if (!cfg_.unflushed_read || len == 0 || off + len > size_) return;
  common::MutexLock lk(mu_);
  if (std::memcmp(base_ + off, shadow_.data() + off, len) != 0) {
    // Find the first dirty byte for the diagnostic.
    uint64_t d = off;
    while (base_[d] == shadow_[d]) ++d;
    record(Kind::kUnflushedRead, off, len, 0,
           "pm_read consumed bytes not yet persisted (first dirty byte at " +
               hexstr(d) + "); a crash here would lose them");
  }
}

void PmCheck::on_store(uint64_t off, uint64_t len) {
  if (len == 0 || off + len > size_) return;
  const uint32_t tid = self_tid();
  common::MutexLock lk(mu_);
  const uint64_t first = line_of(off);
  const uint64_t last = line_of(off + len - 1);
  bool unalloc_reported = false;
  bool race_reported = false;
  for (uint64_t l = first; l <= last; ++l) {
    if (cfg_.unallocated && !line_allocated(l) && !unalloc_reported) {
      unalloc_reported = true;
      record(Kind::kPersistToUnallocated, off, len, 0,
             "annotated store targets unallocated/freed block space");
    }
    auto& recs = stores_[l];
    if (cfg_.race && !race_reported) {
      for (const StoreRec& r : recs) {
        if (r.tid != tid && r.lo < off + len && off < r.hi) {
          race_reported = true;
          record(Kind::kPmRace, off, len, r.tid,
                 "two threads wrote overlapping PM bytes with no "
                 "flush+fence in between");
          break;
        }
      }
    }
    // Merge with this thread's existing window on the line if adjacent or
    // overlapping; otherwise append (bounded).
    bool merged = false;
    for (StoreRec& r : recs) {
      if (r.tid == tid && r.lo <= off + len && off <= r.hi) {
        r.lo = std::min(r.lo, off);
        r.hi = std::max(r.hi, off + len);
        merged = true;
        break;
      }
    }
    if (!merged) {
      if (recs.size() >= kMaxStoresPerLine) recs.erase(recs.begin());
      recs.push_back(StoreRec{tid, off, off + len});
    }
  }
}

void PmCheck::on_crash() {
  common::MutexLock lk(mu_);
  // The arena just rolled unflushed lines back (modulo eviction survivors,
  // which are persistent after all): live contents are the persisted truth.
  std::memcpy(shadow_.data(), base_, size_);
  stores_.clear();
  // Recovery legitimately re-persists the ranges in flight at the crash.
  last_persist_.clear();
}

Report PmCheck::report() const {
  common::MutexLock lk(mu_);
  Report r;
  for (int k = 0; k < kNumKinds; ++k) r.counts[k] = counts_[k];
  r.samples = samples_;
  r.persist_calls = persist_calls_;
  r.flushed_lines = flushed_lines_;
  r.clean_line_flushes = clean_line_flushes_;
  return r;
}

void PmCheck::reset_violations() {
  common::MutexLock lk(mu_);
  for (uint64_t& c : counts_) c = 0;
  samples_.clear();
}

std::vector<std::pair<uint64_t, uint64_t>> PmCheck::unflushed_spans(
    size_t max_spans) const {
  common::MutexLock lk(mu_);
  std::vector<std::pair<uint64_t, uint64_t>> out;
  uint64_t run_start = 0;
  uint64_t run_len = 0;
  for (uint64_t l = 0; l < line_flags_.size(); ++l) {
    const uint64_t off = l * kLineBytes;
    const bool dirty =
        line_allocated(l) &&
        std::memcmp(base_ + off, shadow_.data() + off, kLineBytes) != 0;
    if (dirty) {
      if (run_len == 0) run_start = off;
      run_len += kLineBytes;
      continue;
    }
    if (run_len != 0) {
      out.emplace_back(run_start, run_len);
      run_len = 0;
      if (out.size() >= max_spans) return out;
    }
  }
  if (run_len != 0) out.emplace_back(run_start, run_len);
  return out;
}

}  // namespace hart::pmcheck
