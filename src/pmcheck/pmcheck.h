// PMCheck — a dynamic persistence-ordering and PM-race checker layered on
// the Arena device model (enable with Arena::Options::check).
//
// The checker keeps a *flush shadow*: a private copy of the arena updated
// only when a range is explicitly persisted. A byte whose live content
// differs from the flush shadow is "dirty" — it would be lost under the
// strict crash model. On top of that it tracks per-cache-line metadata
// (flushed-before flag, allocation state) and, for code that annotates its
// PM stores via Arena::trace_store, per-line unflushed store windows with
// the writing thread id.
//
// Detected violation classes (see DESIGN.md, "PMCheck"):
//   * unflushed-read        — a pm_read() consumed bytes that differ from
//                             the flush shadow: a recovery or read path is
//                             relying on data the crash model may lose.
//   * redundant-persist     — the same thread persists the same byte range
//                             twice in a row, with the range byte-identical
//                             to the flush shadow, every line flushed
//                             before, and no annotated store in between:
//                             the second call inflates the paper's
//                             persistent() count for no durability gain.
//                             (Deliberately conservative: protocols may
//                             legally re-persist content-identical bytes —
//                             slot reuse rewrites the same key byte — so
//                             content identity alone is not evidence.)
//   * persist-to-unallocated— a persist() or annotated store targeting
//                             block space that is not currently allocated
//                             (covers stores to freed blocks).
//   * pm-race               — two threads' annotated stores to overlapping
//                             bytes with no flush+fence of those bytes in
//                             between: the crash model gives no ordering
//                             between them.
//
// All checks compare the *exact byte range* of the event, never whole
// cache lines, so co-location of unrelated objects on one line (EPallocator
// packs 8-byte values 8-per-line) cannot produce false positives, and the
// checker never reads bytes a concurrent thread may be writing.
//
// Thread-safety: every hook takes one internal mutex; the checker is meant
// for tests, not benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"

namespace hart::pmcheck {

enum class Kind : uint8_t {
  kUnflushedRead = 0,
  kRedundantPersist = 1,
  kPersistToUnallocated = 2,
  kPmRace = 3,
};
inline constexpr int kNumKinds = 4;

const char* kind_name(Kind k);

struct Violation {
  Kind kind;
  uint64_t off = 0;   // start offset of the offending range
  uint64_t len = 0;   // length of the offending range
  uint32_t tid = 0;   // thread observing/causing the violation
  uint32_t tid2 = 0;  // second thread (pm-race only)
  std::string note;
};

struct Report {
  uint64_t counts[kNumKinds] = {0, 0, 0, 0};
  std::vector<Violation> samples;  // first kMaxSamples violations
  // Diagnostics tied to the paper's persistent()-count metric:
  uint64_t persist_calls = 0;     // persist() calls observed
  uint64_t flushed_lines = 0;     // cache lines covered by those calls
  uint64_t clean_line_flushes = 0;  // lines flushed while already clean

  [[nodiscard]] uint64_t count(Kind k) const {
    return counts[static_cast<int>(k)];
  }
  [[nodiscard]] uint64_t total() const {
    uint64_t t = 0;
    for (const uint64_t c : counts) t += c;
    return t;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Per-check enable switches (all on by default).
struct Config {
  bool unflushed_read = true;
  bool redundant_persist = true;
  bool unallocated = true;
  bool race = true;
};

class PmCheck {
 public:
  static constexpr size_t kMaxSamples = 64;

  /// `base`/`size` describe the mapped arena; `header_bytes` is the arena
  /// header area (always considered allocated). If `assume_reopened`, the
  /// block space starts in the *unknown* allocation state (existing data
  /// re-opened from a file) and persists to it are not flagged until the
  /// allocation map is rebuilt.
  PmCheck(const std::byte* base, size_t size, size_t header_bytes,
          bool assume_reopened, Config cfg = Config{});

  PmCheck(const PmCheck&) = delete;
  PmCheck& operator=(const PmCheck&) = delete;

  // ---- event hooks (called by Arena; all offsets are arena offsets) ----
  void on_alloc(uint64_t off, uint64_t bytes);
  void on_free(uint64_t off, uint64_t bytes);
  /// Sub-block reuse notification (EPallocator hands out objects inside
  /// already-allocated chunks): suppresses redundant-persist on the first
  /// flush of the re-used span.
  void on_object_alloc(uint64_t off, uint64_t bytes);
  void on_reset_alloc_map();
  void on_mark_used(uint64_t off, uint64_t bytes);
  void on_persist(uint64_t off, uint64_t len);
  void on_read(uint64_t off, uint64_t len);
  void on_store(uint64_t off, uint64_t len);  // annotated PM store
  /// Called after Arena::crash() rolled the live contents back: re-syncs
  /// the flush shadow and drops all open store windows.
  void on_crash();

  // ---- results ---------------------------------------------------------
  [[nodiscard]] Report report() const;
  void reset_violations();

  /// Allocated spans whose live bytes differ from the flush shadow — i.e.
  /// data a crash right now would lose. A correct index is expected to
  /// have none at operation quiescence. Returns at most `max_spans`
  /// (line-granular, coalesced).
  [[nodiscard]] std::vector<std::pair<uint64_t, uint64_t>> unflushed_spans(
      size_t max_spans = 16) const;

 private:
  // Per-line flag bits.
  static constexpr uint8_t kFlushedBefore = 1;  // line persisted at least once
  static constexpr uint8_t kAllocated = 2;
  static constexpr uint8_t kAllocUnknown = 4;   // reopened, pre-recovery

  struct StoreRec {
    uint32_t tid;
    uint64_t lo, hi;  // [lo, hi) byte range of the unflushed store
  };

  [[nodiscard]] uint64_t line_of(uint64_t off) const { return off >> 6; }
  [[nodiscard]] bool line_allocated(uint64_t line) const
      REQUIRES_SHARED(mu_);
  void record(Kind k, uint64_t off, uint64_t len, uint32_t tid2,
              std::string note) REQUIRES(mu_);
  static uint32_t self_tid();

  const std::byte* base_;
  const size_t size_;
  const size_t header_bytes_;
  const Config cfg_;
  std::vector<std::byte> shadow_ GUARDED_BY(mu_);  // flush shadow
  std::vector<uint8_t> line_flags_ GUARDED_BY(mu_);
  // Open (unflushed) annotated-store windows, keyed by line index. Sparse:
  // correct code persists promptly, so this stays small.
  std::unordered_map<uint64_t, std::vector<StoreRec>> stores_
      GUARDED_BY(mu_);
  // Each thread's immediately preceding persist range [off, off+len) — the
  // back-to-back evidence the redundant-persist check requires.
  std::unordered_map<uint32_t, std::pair<uint64_t, uint64_t>> last_persist_
      GUARDED_BY(mu_);
  mutable common::Mutex mu_;
  uint64_t counts_[kNumKinds] GUARDED_BY(mu_) = {0, 0, 0, 0};
  std::vector<Violation> samples_ GUARDED_BY(mu_);
  uint64_t persist_calls_ GUARDED_BY(mu_) = 0;
  uint64_t flushed_lines_ GUARDED_BY(mu_) = 0;
  uint64_t clean_line_flushes_ GUARDED_BY(mu_) = 0;
};

}  // namespace hart::pmcheck
