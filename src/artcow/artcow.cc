#include "artcow/artcow.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "obs/counters.h"

namespace hart::pmart {

namespace {
constexpr uint64_t kCowMagic = 0x434f5741'52540001ULL;

uint32_t key_at(std::string_view k, uint32_t d) {
  return d < k.size() ? static_cast<uint8_t>(k[d]) : 0u;
}
std::string_view leaf_key(const PmLeaf* l) { return {l->key, l->key_len}; }
}  // namespace

ArtCow::ArtCow(pmem::Arena& arena)
    : arena_(arena), root_(arena.root<Root>()) {
  if (root_->magic == kCowMagic) {
    recover();
  } else {
    *root_ = Root{};
    root_->magic = kCowMagic;
    persist(root_, sizeof(*root_));
  }
}

const PmLeaf* ArtCow::min_leaf(const PNode* n) const {
  for (;;) {
    uint64_t child = only_child(n);  // any child works; reuse the scan
    // only_child returns the *last* child; for prefix reconstruction any
    // descendant leaf has the same bytes over the prefix range.
    assert(child != 0);
    arena_.pm_read(&child, sizeof(child));
    if (ChildRef::is_leaf(child)) {
      const auto* l = leaf_at(child);
      arena_.pm_read(l, sizeof(PmLeaf));
      return l;
    }
    n = node_at(child);
    arena_.pm_read(n, sizeof(PNode));
  }
}

uint32_t ArtCow::prefix_mismatch(const PNode* n, std::string_view key,
                                 uint32_t depth) const {
  const uint64_t w = n->pword;
  const uint32_t len = PWord::prefix_len(w);
  uint32_t i = 0;
  for (; i < len && i < kStoredPrefix; ++i)
    if (PWord::prefix_byte(w, i) != key_at(key, depth + i)) return i;
  if (len > kStoredPrefix) {
    const std::string_view lk = leaf_key(min_leaf(n));
    for (; i < len; ++i)
      if (key_at(lk, depth + i) != key_at(key, depth + i)) return i;
  }
  return len;
}

uint64_t* ArtCow::find_child_slot(PNode* n, uint32_t byte) const {
  arena_.pm_read(n, sizeof(PNode));
  switch (n->type) {
    case kPNode4: {
      auto* p = static_cast<PNode4*>(n);
      arena_.pm_read(p->keys, sizeof(p->keys));
      for (int i = 0; i < 4; ++i)
        if (p->children[i] != 0 && p->keys[i] == byte)
          return &p->children[i];
      return nullptr;
    }
    case kPNode16: {
      auto* p = static_cast<PNode16*>(n);
      arena_.pm_read(p->keys, sizeof(p->keys));
      for (int i = 0; i < 16; ++i)
        if ((p->bitmap16 & (1u << i)) && p->keys[i] == byte)
          return &p->children[i];
      return nullptr;
    }
    case kPNode48: {
      auto* p = static_cast<PNode48*>(n);
      arena_.pm_read(&p->child_index[byte], 1);
      const uint8_t slot = p->child_index[byte];
      return slot == kEmpty48 ? nullptr : &p->children[slot];
    }
    default: {
      auto* p = static_cast<PNode256*>(n);
      arena_.pm_read(&p->children[byte], 8);
      return p->children[byte] != 0 ? &p->children[byte] : nullptr;
    }
  }
}

uint32_t ArtCow::valid_children(const PNode* n) const {
  switch (n->type) {
    case kPNode4: {
      const auto* p = static_cast<const PNode4*>(n);
      uint32_t c = 0;
      for (int i = 0; i < 4; ++i) c += p->children[i] != 0;
      return c;
    }
    case kPNode16:
      return std::popcount(static_cast<const PNode16*>(n)->bitmap16);
    case kPNode48: {
      const auto* p = static_cast<const PNode48*>(n);
      uint32_t c = 0;
      for (int b = 0; b < 256; ++b) c += p->child_index[b] != kEmpty48;
      return c;
    }
    default: {
      const auto* p = static_cast<const PNode256*>(n);
      uint32_t c = 0;
      for (int b = 0; b < 256; ++b) c += p->children[b] != 0;
      return c;
    }
  }
}

uint64_t ArtCow::only_child(const PNode* n) const {
  uint64_t found = 0;
  switch (n->type) {
    case kPNode4: {
      const auto* p = static_cast<const PNode4*>(n);
      for (int i = 0; i < 4; ++i)
        if (p->children[i] != 0) found = p->children[i];
      return found;
    }
    case kPNode16: {
      const auto* p = static_cast<const PNode16*>(n);
      for (int i = 0; i < 16; ++i)
        if (p->bitmap16 & (1u << i)) found = p->children[i];
      return found;
    }
    case kPNode48: {
      const auto* p = static_cast<const PNode48*>(n);
      for (int b = 0; b < 256; ++b)
        if (p->child_index[b] != kEmpty48)
          found = p->children[p->child_index[b]];
      return found;
    }
    default: {
      const auto* p = static_cast<const PNode256*>(n);
      for (int b = 0; b < 256; ++b)
        if (p->children[b] != 0) found = p->children[b];
      return found;
    }
  }
}

template <class F>
bool ArtCow::for_each_child_sorted(const PNode* n, F&& f) const {
  switch (n->type) {
    case kPNode4:
    case kPNode16: {
      const int cap = n->type == kPNode4 ? 4 : 16;
      const uint8_t* keys = n->type == kPNode4
                                ? static_cast<const PNode4*>(n)->keys
                                : static_cast<const PNode16*>(n)->keys;
      const uint64_t* children =
          n->type == kPNode4 ? static_cast<const PNode4*>(n)->children
                             : static_cast<const PNode16*>(n)->children;
      std::pair<uint8_t, uint64_t> entries[16];
      int cnt = 0;
      for (int i = 0; i < cap; ++i) {
        const bool valid =
            n->type == kPNode4
                ? children[i] != 0
                : (static_cast<const PNode16*>(n)->bitmap16 & (1u << i)) != 0;
        if (valid) entries[cnt++] = {keys[i], children[i]};
      }
      std::sort(entries, entries + cnt);
      for (int i = 0; i < cnt; ++i)
        if (!f(entries[i].first, entries[i].second)) return false;
      return true;
    }
    case kPNode48: {
      const auto* p = static_cast<const PNode48*>(n);
      for (int b = 0; b < 256; ++b)
        if (p->child_index[b] != kEmpty48)
          if (!f(static_cast<uint8_t>(b), p->children[p->child_index[b]]))
            return false;
      return true;
    }
    default: {
      const auto* p = static_cast<const PNode256*>(n);
      for (int b = 0; b < 256; ++b)
        if (p->children[b] != 0)
          if (!f(static_cast<uint8_t>(b), p->children[b])) return false;
      return true;
    }
  }
}

// ---- CoW node builders -----------------------------------------------------

namespace {
// HARTscope: every PM node cloned by the CoW baseline (all three builders).
obs::Counter& cow_clone_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("artcow_cow_clones_total");
  return c;
}
}  // namespace

void ArtCow::free_node(const PNode* n) {
  arena_.free(arena_.off(n), pnode_size(n->type), 64);
}

uint64_t ArtCow::clone_with_child(const PNode* n, uint32_t byte,
                                  uint64_t child) {
  cow_clone_counter().inc();
  // Gather surviving entries, then build the (possibly grown) clone.
  std::pair<uint8_t, uint64_t> entries[257];
  int cnt = 0;
  for_each_child_sorted(n, [&](uint8_t b, uint64_t c) {
    entries[cnt++] = {b, c};
    return true;
  });
  entries[cnt++] = {static_cast<uint8_t>(byte), child};

  uint8_t type = n->type;
  if ((type == kPNode4 && cnt > 4) || (type == kPNode16 && cnt > 16) ||
      (type == kPNode48 && cnt > 48))
    ++type;

  const uint64_t off = arena_.alloc(pnode_size(type), 64);
  auto* g = arena_.ptr<PNode>(off);
  std::memset(g, 0, pnode_size(type));
  g->type = type;
  g->pword = n->pword;
  switch (type) {
    case kPNode4: {
      auto* p = static_cast<PNode4*>(g);
      for (int i = 0; i < cnt; ++i) {
        p->keys[i] = entries[i].first;
        p->children[i] = entries[i].second;
      }
      break;
    }
    case kPNode16: {
      auto* p = static_cast<PNode16*>(g);
      for (int i = 0; i < cnt; ++i) {
        p->keys[i] = entries[i].first;
        p->children[i] = entries[i].second;
        p->bitmap16 |= static_cast<uint16_t>(1u << i);
      }
      break;
    }
    case kPNode48: {
      auto* p = static_cast<PNode48*>(g);
      std::memset(p->child_index, kEmpty48, 256);
      for (int i = 0; i < cnt; ++i) {
        p->children[i] = entries[i].second;
        p->child_index[entries[i].first] = static_cast<uint8_t>(i);
      }
      break;
    }
    default: {
      auto* p = static_cast<PNode256*>(g);
      for (int i = 0; i < cnt; ++i)
        p->children[entries[i].first] = entries[i].second;
      break;
    }
  }
  persist(g, pnode_size(type));  // the whole clone is flushed — CoW cost
  return ChildRef::node(off);
}

uint64_t ArtCow::clone_without_child(const PNode* n, uint32_t byte) {
  cow_clone_counter().inc();
  std::pair<uint8_t, uint64_t> entries[257];
  int cnt = 0;
  for_each_child_sorted(n, [&](uint8_t b, uint64_t c) {
    if (b != byte) entries[cnt++] = {b, c};
    return true;
  });
  uint8_t type = n->type;
  if (type == kPNode256 && cnt <= 37)
    type = kPNode48;
  if (type == kPNode48 && cnt <= 12)
    type = kPNode16;
  if (type == kPNode16 && cnt <= 3)
    type = kPNode4;

  const uint64_t off = arena_.alloc(pnode_size(type), 64);
  auto* g = arena_.ptr<PNode>(off);
  std::memset(g, 0, pnode_size(type));
  g->type = type;
  g->pword = n->pword;
  switch (type) {
    case kPNode4: {
      auto* p = static_cast<PNode4*>(g);
      for (int i = 0; i < cnt; ++i) {
        p->keys[i] = entries[i].first;
        p->children[i] = entries[i].second;
      }
      break;
    }
    case kPNode16: {
      auto* p = static_cast<PNode16*>(g);
      for (int i = 0; i < cnt; ++i) {
        p->keys[i] = entries[i].first;
        p->children[i] = entries[i].second;
        p->bitmap16 |= static_cast<uint16_t>(1u << i);
      }
      break;
    }
    case kPNode48: {
      auto* p = static_cast<PNode48*>(g);
      std::memset(p->child_index, kEmpty48, 256);
      for (int i = 0; i < cnt; ++i) {
        p->children[i] = entries[i].second;
        p->child_index[entries[i].first] = static_cast<uint8_t>(i);
      }
      break;
    }
    default: {
      auto* p = static_cast<PNode256*>(g);
      for (int i = 0; i < cnt; ++i)
        p->children[entries[i].first] = entries[i].second;
      break;
    }
  }
  persist(g, pnode_size(type));
  return ChildRef::node(off);
}

uint64_t ArtCow::clone_with_pword(const PNode* n, uint64_t pword) {
  cow_clone_counter().inc();
  const uint64_t off = arena_.alloc(pnode_size(n->type), 64);
  auto* g = arena_.ptr<PNode>(off);
  std::memcpy(g, n, pnode_size(n->type));
  g->pword = pword;
  persist(g, pnode_size(n->type));
  return ChildRef::node(off);
}

// ---- insert ---------------------------------------------------------------

common::Status ArtCow::insert(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  const bool inserted = insert_rec(&root_->root, key, value, 0);
  if (inserted) ++count_;
  return inserted ? common::Status::kInserted : common::Status::kUpdated;
}

bool ArtCow::insert_rec(uint64_t* slot, std::string_view key,
                        std::string_view value, uint32_t depth) {
  const uint64_t ref = *slot;
  if (ref == 0) {
    const uint64_t voff = alloc_value(arena_, value);
    const uint64_t loff = alloc_leaf(arena_, key, voff);
    *slot = ChildRef::leaf(loff);
    persist(slot, 8);
    return true;
  }

  if (ChildRef::is_leaf(ref)) {
    PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    const std::string_view ek = leaf_key(l);
    if (ek == key) {
      const uint64_t old = l->p_value;
      l->p_value = alloc_value(arena_, value);
      persist(&l->p_value, 8);
      free_value(arena_, old);
      return false;
    }
    uint32_t lcp = 0;
    while (key_at(key, depth + lcp) == key_at(ek, depth + lcp)) ++lcp;
    const uint64_t voff = alloc_value(arena_, value);
    const uint64_t loff = alloc_leaf(arena_, key, voff);
    const uint64_t noff = arena_.alloc(sizeof(PNode4), 64);
    auto* nn = arena_.ptr<PNode4>(noff);
    std::memset(nn, 0, sizeof(*nn));
    nn->type = kPNode4;
    uint8_t pbytes[kStoredPrefix];
    for (uint32_t i = 0; i < kStoredPrefix && i < lcp; ++i)
      pbytes[i] = static_cast<uint8_t>(key_at(key, depth + i));
    nn->pword = PWord::make(static_cast<uint8_t>(depth),
                            static_cast<uint8_t>(lcp), pbytes, lcp);
    nn->keys[0] = static_cast<uint8_t>(key_at(key, depth + lcp));
    nn->children[0] = ChildRef::leaf(loff);
    nn->keys[1] = static_cast<uint8_t>(key_at(ek, depth + lcp));
    nn->children[1] = ref;
    persist(nn, sizeof(*nn));
    *slot = ChildRef::node(noff);
    persist(slot, 8);
    return true;
  }

  PNode* n = node_at(ref);
  arena_.pm_read(n, sizeof(PNode));
  const uint32_t plen = PWord::prefix_len(n->pword);
  if (plen > 0) {
    const uint32_t p = prefix_mismatch(n, key, depth);
    if (p < plen) {
      // CoW prefix split: clone n with the shortened prefix, hang the
      // clone and the new leaf under a fresh NODE4, swing the parent.
      const std::string_view lk = leaf_key(min_leaf(n));
      uint8_t rbytes[kStoredPrefix];
      const uint32_t rlen = plen - p - 1;
      for (uint32_t i = 0; i < kStoredPrefix && i < rlen; ++i)
        rbytes[i] = static_cast<uint8_t>(key_at(lk, depth + p + 1 + i));
      const uint64_t clone = clone_with_pword(
          n, PWord::make(static_cast<uint8_t>(depth + p + 1),
                         static_cast<uint8_t>(rlen), rbytes, rlen));

      const uint64_t voff = alloc_value(arena_, value);
      const uint64_t loff = alloc_leaf(arena_, key, voff);
      const uint64_t noff = arena_.alloc(sizeof(PNode4), 64);
      auto* nn = arena_.ptr<PNode4>(noff);
      std::memset(nn, 0, sizeof(*nn));
      nn->type = kPNode4;
      uint8_t pbytes[kStoredPrefix];
      for (uint32_t i = 0; i < kStoredPrefix && i < p; ++i)
        pbytes[i] = static_cast<uint8_t>(key_at(key, depth + i));
      nn->pword = PWord::make(static_cast<uint8_t>(depth),
                              static_cast<uint8_t>(p), pbytes, p);
      nn->keys[0] = static_cast<uint8_t>(key_at(key, depth + p));
      nn->children[0] = ChildRef::leaf(loff);
      nn->keys[1] = static_cast<uint8_t>(key_at(lk, depth + p));
      nn->children[1] = clone;
      persist(nn, sizeof(*nn));
      *slot = ChildRef::node(noff);
      persist(slot, 8);
      free_node(n);
      return true;
    }
    depth += plen;
  }

  const uint32_t byte = key_at(key, depth);
  if (uint64_t* child = find_child_slot(n, byte); child != nullptr)
    return insert_rec(child, key, value, depth + 1);

  // CoW child addition: clone (possibly grown), persist, swing, free old.
  const uint64_t voff = alloc_value(arena_, value);
  const uint64_t loff = alloc_leaf(arena_, key, voff);
  const uint64_t clone = clone_with_child(n, byte, ChildRef::leaf(loff));
  *slot = clone;
  persist(slot, 8);
  free_node(n);
  return true;
}

// ---- search / update -------------------------------------------------------

common::Status ArtCow::search(std::string_view key, std::string* out) const {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  uint64_t ref = root_->root;
  uint32_t depth = 0;
  while (ref != 0) {
    if (ChildRef::is_leaf(ref)) {
      const PmLeaf* l = leaf_at(ref);
      arena_.pm_read(l, sizeof(PmLeaf));
      if (leaf_key(l) != key) return common::Status::kNotFound;
      const auto* v = arena_.ptr<PmValue>(l->p_value);
      arena_.pm_read(v, 1 + v->len);
      if (out != nullptr) out->assign(v->data, v->len);
      return common::Status::kOk;
    }
    PNode* n = node_at(ref);
    arena_.pm_read(n, sizeof(PNode));
    const uint64_t w = n->pword;
    const uint32_t m = std::min<uint32_t>(PWord::prefix_len(w),
                                          kStoredPrefix);
    for (uint32_t i = 0; i < m; ++i)
      if (PWord::prefix_byte(w, i) != key_at(key, depth + i))
        return common::Status::kNotFound;
    depth += PWord::prefix_len(w);
    uint64_t* child = find_child_slot(n, key_at(key, depth));
    if (child == nullptr) return common::Status::kNotFound;
    ref = *child;
    ++depth;
  }
  return common::Status::kNotFound;
}

common::Status ArtCow::update(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  uint64_t ref = root_->root;
  uint32_t depth = 0;
  while (ref != 0 && !ChildRef::is_leaf(ref)) {
    PNode* n = node_at(ref);
    arena_.pm_read(n, sizeof(PNode));
    depth += PWord::prefix_len(n->pword);
    uint64_t* child = find_child_slot(n, key_at(key, depth));
    if (child == nullptr) return common::Status::kNotFound;
    ref = *child;
    ++depth;
  }
  if (ref == 0) return common::Status::kNotFound;
  PmLeaf* l = leaf_at(ref);
  arena_.pm_read(l, sizeof(PmLeaf));
  if (leaf_key(l) != key) return common::Status::kNotFound;
  const uint64_t old = l->p_value;
  l->p_value = alloc_value(arena_, value);
  persist(&l->p_value, 8);
  free_value(arena_, old);
  return common::Status::kOk;
}

// ---- remove ----------------------------------------------------------------

common::Status ArtCow::remove(std::string_view key) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  const bool removed = remove_rec(&root_->root, key, 0);
  if (removed) --count_;
  return removed ? common::Status::kOk : common::Status::kNotFound;
}

bool ArtCow::remove_rec(uint64_t* slot, std::string_view key,
                        uint32_t depth) {
  const uint64_t ref = *slot;
  if (ref == 0) return false;
  if (ChildRef::is_leaf(ref)) {
    PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    if (leaf_key(l) != key) return false;
    *slot = 0;
    persist(slot, 8);
    free_value(arena_, l->p_value);
    arena_.free(ChildRef::off(ref), sizeof(PmLeaf), 8);
    return true;
  }
  PNode* n = node_at(ref);
  arena_.pm_read(n, sizeof(PNode));
  const uint32_t plen = PWord::prefix_len(n->pword);
  if (plen > 0) {
    if (prefix_mismatch(n, key, depth) < plen) return false;
    depth += plen;
  }
  const uint32_t byte = key_at(key, depth);
  uint64_t* child = find_child_slot(n, byte);
  if (child == nullptr) return false;
  if (!ChildRef::is_leaf(*child)) return remove_rec(child, key, depth + 1);

  PmLeaf* l = leaf_at(*child);
  arena_.pm_read(l, sizeof(PmLeaf));
  if (leaf_key(l) != key) return false;
  const uint64_t voff = l->p_value;
  const uint64_t leaf_ref = *child;

  if (valid_children(n) == 2) {
    // Path collapse: the sibling replaces n, with the prefixes merged into
    // a cloned sibling when it is an internal node.
    uint64_t sibling = 0;
    uint8_t sib_byte = 0;
    for_each_child_sorted(n, [&](uint8_t b, uint64_t c) {
      if (c != leaf_ref) {
        sibling = c;
        sib_byte = b;
      }
      return true;
    });
    uint64_t replacement = sibling;
    if (!ChildRef::is_leaf(sibling)) {
      const PNode* s = node_at(sibling);
      const uint32_t merged_len = plen + 1 + PWord::prefix_len(s->pword);
      uint8_t bytes[kStoredPrefix];
      uint32_t have = 0;
      for (; have < kStoredPrefix && have < plen; ++have)
        bytes[have] = PWord::prefix_byte(n->pword, have);
      if (have < kStoredPrefix && have == plen) bytes[have++] = sib_byte;
      for (uint32_t i = 0;
           have < kStoredPrefix && i < PWord::prefix_len(s->pword);
           ++i)
        bytes[have++] = PWord::prefix_byte(s->pword, i);
      replacement = clone_with_pword(
          s, PWord::make(PWord::depth(n->pword),
                         static_cast<uint8_t>(merged_len), bytes, have));
    }
    *slot = replacement;
    persist(slot, 8);
    if (!ChildRef::is_leaf(sibling)) free_node(node_at(sibling));
    free_node(n);
  } else {
    const uint64_t clone = clone_without_child(n, byte);
    *slot = clone;
    persist(slot, 8);
    free_node(n);
  }
  free_value(arena_, voff);
  arena_.free(ChildRef::off(leaf_ref), sizeof(PmLeaf), 8);
  return true;
}

// ---- scans ------------------------------------------------------------------

template <class F>
bool ArtCow::walk_all(uint64_t ref, F& fn) const {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    return fn(l);
  }
  return for_each_child_sorted(
      node_at(ref), [&](uint8_t, uint64_t c) { return walk_all(c, fn); });
}

template <class F>
bool ArtCow::walk_from(uint64_t ref, std::string_view lo, uint32_t depth,
                       F& fn) const {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.pm_read(l, sizeof(PmLeaf));
    return leaf_key(l) < lo ? true : fn(l);
  }
  const PNode* n = node_at(ref);
  const uint32_t plen = PWord::prefix_len(n->pword);
  if (plen > 0) {
    const std::string_view lk = leaf_key(min_leaf(n));
    for (uint32_t i = 0; i < plen; ++i) {
      const uint32_t a = key_at(lk, depth + i);
      const uint32_t b = key_at(lo, depth + i);
      if (a < b) return true;
      if (a > b) return walk_all(ref, fn);
    }
    depth += plen;
  }
  const uint32_t b = key_at(lo, depth);
  return for_each_child_sorted(n, [&](uint8_t byte, uint64_t c) {
    if (byte < b) return true;
    if (byte > b) return walk_all(c, fn);
    return walk_from(c, lo, depth + 1, fn);
  });
}

size_t ArtCow::range(
    std::string_view lo, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  if (!common::validate_key(lo).ok()) return 0;
  if (limit == 0 || root_->root == 0) return 0;
  auto emit = [&](const PmLeaf* l) {
    const auto* v = arena_.ptr<PmValue>(l->p_value);
    arena_.pm_read(v, 1 + v->len);
    out->emplace_back(std::string(l->key, l->key_len),
                      std::string(v->data, v->len));
    return out->size() < limit;
  };
  walk_from(root_->root, lo, 0, emit);
  return out->size();
}

common::MemoryUsage ArtCow::memory_usage() const {
  common::MemoryUsage u;
  u.pm_bytes = arena_.stats().pm_live_bytes.load(std::memory_order_relaxed);
  u.dram_bytes = 0;
  return u;
}

void ArtCow::mark_reachable(uint64_t ref) {
  if (ChildRef::is_leaf(ref)) {
    const PmLeaf* l = leaf_at(ref);
    arena_.mark_used(ChildRef::off(ref), sizeof(PmLeaf));
    const auto* v = arena_.ptr<PmValue>(l->p_value);
    arena_.mark_used(l->p_value, 1 + v->len);
    ++count_;
    return;
  }
  const PNode* n = node_at(ref);
  arena_.mark_used(ChildRef::off(ref), pnode_size(n->type));
  for_each_child_sorted(n, [&](uint8_t, uint64_t c) {
    mark_reachable(c);
    return true;
  });
}

void ArtCow::recover() {
  arena_.reset_alloc_map();
  count_ = 0;
  if (root_->root != 0) mark_reachable(root_->root);
}

}  // namespace hart::pmart
