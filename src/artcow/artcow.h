// ART+CoW — an ART kept in PM whose consistency comes from copy-on-write
// (Lee et al., FAST 2017; reimplemented as in the HART paper's evaluation).
//
// Every structural modification clones the affected node, persists the
// clone in full, and commits by swinging the parent's 8-byte child pointer.
// That makes each mutation failure-atomic without logs or careful store
// ordering, at the cost of allocating and flushing a whole node per write —
// which is why the paper finds ART+CoW the slowest at insertion (Fig. 4).
// Node layouts are shared with WOART (pm_nodes.h). Single-writer.
#pragma once

#include <string_view>

#include "common/index.h"
#include "pmem/arena.h"
#include "woart/pm_nodes.h"

namespace hart::pmart {

class ArtCow final : public common::Index {
 public:
  explicit ArtCow(pmem::Arena& arena);

  common::Status insert(std::string_view key, std::string_view value) override;
  common::Status search(std::string_view key, std::string* out) const override;
  common::Status update(std::string_view key, std::string_view value) override;
  common::Status remove(std::string_view key) override;
  size_t range(std::string_view lo, size_t limit,
               std::vector<std::pair<std::string, std::string>>* out)
      const override;
  size_t size() const override { return count_; }
  common::MemoryUsage memory_usage() const override;
  const char* name() const override { return "ART+CoW"; }

  /// Rebuild the volatile allocation map by reachability after a reopen.
  void recover();

 private:
  struct Root {
    uint64_t magic;
    uint64_t root;
  };

  PNode* node_at(uint64_t ref) const {
    return arena_.ptr<PNode>(ChildRef::off(ref));
  }
  PmLeaf* leaf_at(uint64_t ref) const {
    return arena_.ptr<PmLeaf>(ChildRef::off(ref));
  }
  const PmLeaf* min_leaf(const PNode* n) const;
  uint32_t prefix_mismatch(const PNode* n, std::string_view key,
                           uint32_t depth) const;
  uint64_t* find_child_slot(PNode* n, uint32_t byte) const;
  uint32_t valid_children(const PNode* n) const;
  uint64_t only_child(const PNode* n) const;
  template <class F>
  bool for_each_child_sorted(const PNode* n, F&& f) const;

  /// Clone `n` with `byte -> child` added (growing the node type if full),
  /// persist the clone, and return its ChildRef. The caller swings the
  /// parent pointer and frees the original.
  uint64_t clone_with_child(const PNode* n, uint32_t byte, uint64_t child);
  /// Clone `n` with `byte` removed (shrinking if warranted).
  uint64_t clone_without_child(const PNode* n, uint32_t byte);
  /// Clone `n` with a new prefix word.
  uint64_t clone_with_pword(const PNode* n, uint64_t pword);
  void free_node(const PNode* n);

  bool insert_rec(uint64_t* slot, std::string_view key,
                  std::string_view value, uint32_t depth);
  bool remove_rec(uint64_t* slot, std::string_view key, uint32_t depth);

  template <class F>
  bool walk_all(uint64_t ref, F& fn) const;
  template <class F>
  bool walk_from(uint64_t ref, std::string_view lo, uint32_t depth,
                 F& fn) const;
  void mark_reachable(uint64_t ref);

  void persist(const void* p, size_t n) const { arena_.persist(p, n); }

  pmem::Arena& arena_;
  Root* root_;
  size_t count_ = 0;
};

}  // namespace hart::pmart
