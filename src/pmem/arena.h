// The PM device model: one Arena is one emulated persistent-memory device.
//
// What it models (cf. DESIGN.md, substitution table):
//  * byte-addressable persistent space, addressed by offsets (POff<T>) so a
//    file-backed arena survives re-mapping;
//  * the persistent() primitive of the paper ({MFENCE, CLFLUSH, MFENCE}):
//    Arena::persist() flushes a cache-line-granular range, injects the
//    configured PM-write latency delta, and participates in crash
//    simulation;
//  * PM read latency: Arena::pm_read() charges the read delta per touched
//    cache line (the paper's stall-cycle accounting, eq. (1)-(2), applied
//    on-line);
//  * the crash model "stores that were not flushed are lost": with
//    Options::shadow enabled the arena keeps a shadow copy updated only by
//    persist(); crash() rolls unflushed lines back (optionally keeping each
//    dirty line with probability eviction_prob, modeling cache eviction).
//
// Thread-safety: alloc/free/persist/pm_read are safe to call concurrently.
// Crash simulation (arm_crash_at / crash) is for single-threaded tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string>

#include "common/rng.h"
#include "obs/counters.h"
#include "pmcheck/pmcheck.h"
#include "pmem/block_alloc.h"
#include "pmem/latency.h"
#include "pmem/pmdefs.h"
#include "pmem/stats.h"

namespace hart::pmem {

class Arena {
 public:
  struct Options {
    /// Device size in bytes. 0 resolves from the HART_ARENA_MB environment
    /// variable (default 256 MiB) — tests and the service layer use this
    /// so one knob sizes every arena of a run.
    size_t size = size_t{256} << 20;
    LatencyConfig latency = LatencyConfig::off();
    bool shadow = false;  // enable crash simulation (tests)
    /// Enable PMCheck: per-cache-line shadow state detecting unflushed
    /// reads, redundant persists, persists to unallocated PM, and PM races
    /// (see src/pmcheck/pmcheck.h). Test-only; adds a second shadow copy
    /// and a mutex on every persist/pm_read.
    bool check = false;
    pmcheck::Config check_config;
    /// Model one metadata flush per raw PM alloc/free (a real persistent
    /// allocator must persist its metadata; EPallocator amortizes this).
    bool charge_alloc_persist = true;
    /// Defer latency injection: persist()/pm_read()/alloc() accumulate the
    /// owed delay instead of busy-waiting, and pay_latency() sleeps it off
    /// in one block. On a time-shared host this lets several arenas
    /// (service shards) overlap their device stalls the way independent PM
    /// devices on dedicated cores would — the busy-wait default occupies
    /// the CPU other shards need. The service worker pays once per
    /// group-commit batch, before releasing the batch's acks.
    bool defer_latency = false;
    /// At crash(), probability that a dirty (unflushed) cache line survives
    /// anyway, modeling uncontrolled cache eviction. 0 = strict model.
    double eviction_prob = 0.0;
    uint64_t crash_seed = 1;
    /// Optional file backing; empty = anonymous memory. An existing file
    /// with a valid header is re-opened (recovered), otherwise initialized.
    /// A *relative* path is resolved under $HART_ARENA_DIR (or the system
    /// temp directory), see resolve_file_path() — so parallel test runs
    /// can be isolated by pointing HART_ARENA_DIR at distinct directories.
    std::string file_path;
  };

  /// Where relative arena file paths land: $HART_ARENA_DIR when set, else
  /// the system temp directory. The directory is created if missing.
  static std::string arena_dir();
  /// Resolve `path` the way the constructor does: absolute paths pass
  /// through; relative paths are placed under arena_dir(), creating any
  /// intermediate directories.
  static std::string resolve_file_path(const std::string& path);

  explicit Arena(const Options& opts);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  [[nodiscard]] size_t size() const { return opts_.size; }
  [[nodiscard]] bool reopened() const { return reopened_; }
  [[nodiscard]] const LatencyConfig& latency() const { return opts_.latency; }
  Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // ---- address translation -------------------------------------------
  template <typename T>
  [[nodiscard]] T* ptr(uint64_t off) const {
    return off == kNullOff
               ? nullptr
               : reinterpret_cast<T*>(base_ + off);
  }
  template <typename T>
  [[nodiscard]] T* ptr(POff<T> o) const {
    return ptr<T>(o.raw);
  }
  [[nodiscard]] uint64_t off(const void* p) const {
    return p == nullptr
               ? kNullOff
               : static_cast<uint64_t>(reinterpret_cast<const std::byte*>(p) -
                                       base_);
  }
  template <typename T>
  [[nodiscard]] POff<T> poff(const T* p) const {
    return POff<T>{off(p)};
  }

  /// The user root object, stored inside the arena header. Zero-initialized
  /// on a fresh arena; preserved when re-opening a file-backed arena. The
  /// index stores its magic, chunk-list heads and micro-logs here.
  template <typename T>
  [[nodiscard]] T* root() const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= kArenaHeaderSize - 128,
                  "root object too large for the header area");
    return reinterpret_cast<T*>(base_ + 128);
  }

  // ---- allocation ------------------------------------------------------
  /// Allocate `bytes` of PM with the given alignment; returns the offset.
  uint64_t alloc(uint64_t bytes, uint64_t align = kBlockSize);
  void free(uint64_t off, uint64_t bytes, uint64_t align = kBlockSize);

  /// Recovery protocol: mark all of PM free, then re-mark each span
  /// reachable from the index's persistent structures. Anything not marked
  /// is free again — allocator-level leak freedom by construction.
  void reset_alloc_map();
  void mark_used(uint64_t off, uint64_t bytes);

  [[nodiscard]] bool is_allocated(uint64_t off, uint64_t bytes) const {
    return blocks_.is_used(off, bytes);
  }

  // ---- persistence primitive ------------------------------------------
  /// persistent(): flush [p, p+len) (cache-line granular) to the
  /// persistence domain. Injects the PM-write latency delta. If a crash
  /// point is armed and fires, throws CrashPoint *before* flushing.
  void persist(const void* p, size_t len);
  void persist_off(uint64_t o, size_t len) { persist(base_ + o, len); }

  /// Charge the PM read latency delta for a read of [p, p+len).
  void pm_read(const void* p, size_t len) const;

  /// Deferred-latency mode: sleep off the accumulated device-latency debt
  /// (clock_nanosleep, so the CPU is yielded to other shards' workers) and
  /// reset it. Returns the nanoseconds paid. No-op returning 0 when the
  /// debt is zero or Options::defer_latency is off.
  uint64_t pay_latency();
  /// Nanoseconds of injected latency accumulated and not yet paid.
  [[nodiscard]] uint64_t owed_latency_ns() const {
    return owed_ns_.load(std::memory_order_relaxed);
  }

  // ---- PMCheck ---------------------------------------------------------
  /// Annotate a PM store of [p, p+len) for the race checker. No-op unless
  /// Options::check; call *after* the store, before the matching persist().
  void trace_store(const void* p, size_t len) {
    if (check_) check_->on_store(off(p), len);
  }
  /// Notify the checker of sub-block object reuse (EPallocator slots).
  void note_object_alloc(uint64_t o, uint64_t bytes) {
    if (check_) check_->on_object_alloc(o, bytes);
  }
  /// The active checker, or nullptr when Options::check is off.
  [[nodiscard]] pmcheck::PmCheck* checker() const { return check_.get(); }
  /// Violation report; empty when Options::check is off.
  [[nodiscard]] pmcheck::Report pm_report() const {
    return check_ ? check_->report() : pmcheck::Report{};
  }

  // ---- crash simulation -------------------------------------------------
  /// Arm: the nth persist() from now (1-based) throws CrashPoint and does
  /// not flush. Automatically disarmed when it fires.
  void arm_crash_after(uint64_t nth_persist);
  void disarm_crash();
  /// Lose all unflushed stores (requires Options::shadow). Each dirty line
  /// independently survives with eviction_prob.
  void crash();
  /// Number of persist() calls since construction (to size crash sweeps).
  [[nodiscard]] uint64_t persist_count() const {
    return stats_.persist_calls.load(std::memory_order_relaxed);
  }

 private:
  void map_memory();
  /// Inject `ns` of device latency: spin now, or bank it for pay_latency().
  void charge_latency(uint64_t ns) const {
    if (ns == 0) return;
    stats_.injected_ns.fetch_add(ns, std::memory_order_relaxed);
    if (opts_.defer_latency) {
      owed_ns_.fetch_add(ns, std::memory_order_relaxed);
    } else {
      spin_ns(ns);
    }
  }

  Options opts_;
  std::byte* base_ = nullptr;
  std::unique_ptr<std::byte[]> shadow_;
  std::unique_ptr<pmcheck::PmCheck> check_;
  bool file_backed_ = false;
  bool reopened_ = false;
  int fd_ = -1;
  BlockAllocator blocks_;
  Stats stats_;
  mutable std::atomic<uint64_t> owed_ns_{0};
  std::atomic<bool> crash_armed_{false};
  std::atomic<int64_t> crash_countdown_{0};
  common::Rng crash_rng_;
  // HARTscope: this arena's Stats, scraped as cumulative pm_* metrics.
  // Registered last / destroyed first, so the source never outlives the
  // Stats it reads; unregistering folds the final sample into the global
  // registry, keeping scrape totals monotonic across arena lifetimes.
  obs::SourceHandle obs_source_;
};

}  // namespace hart::pmem
