// Basic definitions for the persistent-memory device model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hart::pmem {

/// CPU cache-line size assumed by the flush model (CLFLUSH granularity).
inline constexpr size_t kCacheLine = 64;

/// Allocation granule of the persistent block allocator. One cache line:
/// small enough that WOART's NODE4 does not waste space, large enough that
/// the block bitmap stays compact.
inline constexpr size_t kBlockSize = 64;

/// Size of the arena header (block space begins after it). The user root
/// object lives inside the header.
inline constexpr size_t kArenaHeaderSize = 4096;

/// Offset value meaning "null persistent pointer". Offset 0 is the arena
/// header, which is never handed out by the allocator, so 0 is safe.
inline constexpr uint64_t kNullOff = 0;

/// Exception thrown by Arena::persist() when a simulated crash point fires.
/// Tests catch this, call Arena::crash(), and run the recovery path.
struct CrashPoint {};

/// A typed persistent pointer: an offset into the arena. Stored *in* PM, so
/// it must stay valid across re-mapping (file-backed arenas) — hence an
/// offset, not an address. Trivially copyable by design.
template <typename T>
struct POff {
  uint64_t raw = kNullOff;

  [[nodiscard]] bool is_null() const { return raw == kNullOff; }
  explicit operator bool() const { return raw != kNullOff; }
  friend bool operator==(POff a, POff b) { return a.raw == b.raw; }
  friend bool operator!=(POff a, POff b) { return a.raw != b.raw; }
};

}  // namespace hart::pmem
