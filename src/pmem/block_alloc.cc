#include "pmem/block_alloc.h"

#include "common/annotations.h"

#include <new>
#include <stdexcept>

namespace hart::pmem {

namespace {
uint64_t pack_key(uint64_t blocks, uint64_t align_blocks) {
  return (blocks << 20) | align_blocks;
}
}  // namespace

BlockAllocator::BlockAllocator(uint64_t first_byte, uint64_t span_bytes)
    : first_byte_(first_byte), num_blocks_(span_bytes / kBlockSize) {
  bitmap_.assign((num_blocks_ + 63) / 64, 0);
}

void BlockAllocator::set_bits(uint64_t first, uint64_t n) {
  for (uint64_t b = first; b < first + n; ++b)
    bitmap_[b >> 6] |= (1ULL << (b & 63));
  used_blocks_ += n;
}

void BlockAllocator::clear_bits(uint64_t first, uint64_t n) {
  for (uint64_t b = first; b < first + n; ++b)
    bitmap_[b >> 6] &= ~(1ULL << (b & 63));
  used_blocks_ -= n;
}

bool BlockAllocator::span_free(uint64_t first, uint64_t n) const {
  if (first + n > num_blocks_) return false;
  for (uint64_t b = first; b < first + n; ++b)
    if (test_bit(b)) return false;
  return true;
}

uint64_t BlockAllocator::alloc(uint64_t bytes, uint64_t align) {
  if (bytes == 0) throw std::invalid_argument("alloc of 0 bytes");
  if (align < kBlockSize) align = kBlockSize;
  const uint64_t n = blocks_of(bytes);
  const uint64_t align_blocks = align / kBlockSize;

  common::MutexLock lk(mu_);
  auto& fl = free_lists_[pack_key(n, align_blocks)];
  if (!fl.empty()) {
    const uint64_t off = fl.back();
    fl.pop_back();
    set_bits((off - first_byte_) / kBlockSize, n);
    return off;
  }

  // First-fit scan from the rolling hint; wrap once.
  auto aligned_up = [&](uint64_t block) {
    const uint64_t byte = first_byte_ + block * kBlockSize;
    const uint64_t abyte = (byte + align - 1) & ~(align - 1);
    return (abyte - first_byte_) / kBlockSize;
  };
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t b = aligned_up(pass == 0 ? hint_block_ : 0);
    const uint64_t limit = num_blocks_;
    while (b + n <= limit) {
      if (span_free(b, n)) {
        set_bits(b, n);
        hint_block_ = b + n;
        return first_byte_ + b * kBlockSize;
      }
      // Skip past the first used block in the window, then re-align.
      uint64_t skip = b;
      while (skip < b + n && !test_bit(skip)) ++skip;
      b = aligned_up(skip + 1);
    }
  }
  throw std::bad_alloc();
}

void BlockAllocator::free(uint64_t off, uint64_t bytes, uint64_t align) {
  if (align < kBlockSize) align = kBlockSize;
  const uint64_t n = blocks_of(bytes);
  const uint64_t first = (off - first_byte_) / kBlockSize;
  common::MutexLock lk(mu_);
  clear_bits(first, n);
  free_lists_[pack_key(n, align / kBlockSize)].push_back(off);
}

void BlockAllocator::reset_all_free() {
  common::MutexLock lk(mu_);
  bitmap_.assign(bitmap_.size(), 0);
  free_lists_.clear();
  hint_block_ = 0;
  used_blocks_ = 0;
}

void BlockAllocator::mark_used(uint64_t off, uint64_t bytes) {
  const uint64_t n = blocks_of(bytes);
  const uint64_t first = (off - first_byte_) / kBlockSize;
  common::MutexLock lk(mu_);
  set_bits(first, n);
  if (first + n > hint_block_) hint_block_ = first + n;
}

uint64_t BlockAllocator::used_block_bytes() const {
  common::MutexLock lk(mu_);
  return used_blocks_ * kBlockSize;
}

bool BlockAllocator::is_used(uint64_t off, uint64_t bytes) const {
  const uint64_t n = blocks_of(bytes);
  const uint64_t first = (off - first_byte_) / kBlockSize;
  common::MutexLock lk(mu_);
  for (uint64_t b = first; b < first + n; ++b)
    if (!test_bit(b)) return false;
  return true;
}

}  // namespace hart::pmem
