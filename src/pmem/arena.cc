#include "pmem/arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace hart::pmem {

namespace {
constexpr uint64_t kArenaMagic = 0x48415254'41524E41ULL;  // "HARTARNA"

struct ArenaHeader {
  uint64_t magic;
  uint64_t size;
};

Arena::Options resolve_options(Arena::Options o) {
  if (o.size == 0) {
    size_t mb = 256;
    if (const char* v = std::getenv("HART_ARENA_MB"); v != nullptr)
      mb = std::strtoull(v, nullptr, 10);
    o.size = mb << 20;
  }
  if (!o.file_path.empty()) o.file_path = Arena::resolve_file_path(o.file_path);
  return o;
}
}  // namespace

std::string Arena::arena_dir() {
  std::filesystem::path dir;
  if (const char* v = std::getenv("HART_ARENA_DIR");
      v != nullptr && v[0] != '\0') {
    dir = v;
  } else {
    dir = std::filesystem::temp_directory_path();
  }
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string Arena::resolve_file_path(const std::string& path) {
  std::filesystem::path p(path);
  if (p.is_absolute()) {
    std::filesystem::create_directories(p.parent_path());
    return path;
  }
  std::filesystem::path full = std::filesystem::path(arena_dir()) / p;
  std::filesystem::create_directories(full.parent_path());
  return full.string();
}

Arena::Arena(const Options& opts)
    : opts_(resolve_options(opts)),
      blocks_(kArenaHeaderSize, opts_.size - kArenaHeaderSize),
      crash_rng_(opts.crash_seed) {
  if (opts_.size < kArenaHeaderSize * 2 ||
      (opts_.size % kBlockSize) != 0) {
    throw std::invalid_argument("arena size too small or unaligned");
  }
  map_memory();

  auto* hdr = reinterpret_cast<ArenaHeader*>(base_);
  if (file_backed_ && hdr->magic == kArenaMagic) {
    if (hdr->size != opts_.size)
      throw std::runtime_error("arena file size mismatch");
    reopened_ = true;
  } else {
    std::memset(base_, 0, kArenaHeaderSize);
    hdr->magic = kArenaMagic;
    hdr->size = opts_.size;
  }

  if (opts_.shadow) {
    shadow_ = std::make_unique<std::byte[]>(opts_.size);
    std::memcpy(shadow_.get(), base_, opts_.size);
  }
  if (opts_.check) {
    check_ = std::make_unique<pmcheck::PmCheck>(
        base_, opts_.size, kArenaHeaderSize, reopened_, opts_.check_config);
  }

  // HARTscope: expose this arena's device-model counters as scrape-time
  // pm_* metrics. A pull-source, not per-event counter bumps — the hot
  // persist/pm_read paths pay nothing beyond the Stats updates they
  // already do; aggregation happens only when the registry is scraped.
  obs_source_ = obs::SourceHandle([this](obs::Registry::Sample* out) {
    const StatsSnapshot s = stats_.snapshot();
    out->emplace_back("pm_persist_calls_total", s.persist_calls);
    out->emplace_back("pm_persisted_bytes_total", s.persisted_bytes);
    out->emplace_back("pm_read_lines_total", s.pm_read_lines);
    out->emplace_back("pm_alloc_calls_total", s.alloc_calls);
    out->emplace_back("pm_free_calls_total", s.free_calls);
    out->emplace_back("pm_alloc_meta_persists_total", s.alloc_meta_persists);
    out->emplace_back("pm_injected_ns_total", s.injected_ns);
    out->emplace_back("pm_deferred_paid_ns_total", s.deferred_paid_ns);
  });
}

void Arena::map_memory() {
  if (!opts_.file_path.empty()) {
    fd_ = ::open(opts_.file_path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) throw std::runtime_error("cannot open arena file");
    if (::ftruncate(fd_, static_cast<off_t>(opts_.size)) != 0) {
      ::close(fd_);
      throw std::runtime_error("cannot size arena file");
    }
    void* p = ::mmap(nullptr, opts_.size, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
    if (p == MAP_FAILED) {
      ::close(fd_);
      throw std::runtime_error("cannot mmap arena file");
    }
    base_ = static_cast<std::byte*>(p);
    file_backed_ = true;
  } else {
    void* p = ::mmap(nullptr, opts_.size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) throw std::runtime_error("cannot mmap arena");
    base_ = static_cast<std::byte*>(p);
  }
}

Arena::~Arena() {
  // Drop the scrape source before unmapping; the fold-on-unregister keeps
  // process-wide pm_* totals monotonic after this arena is gone.
  obs_source_ = obs::SourceHandle();
  if (base_ != nullptr) {
    if (file_backed_) ::msync(base_, opts_.size, MS_SYNC);
    ::munmap(base_, opts_.size);
  }
  if (fd_ >= 0) ::close(fd_);
}

uint64_t Arena::alloc(uint64_t bytes, uint64_t align) {
  const uint64_t off = blocks_.alloc(bytes, align);
  stats_.alloc_calls.fetch_add(1, std::memory_order_relaxed);
  stats_.pm_live_bytes.fetch_add(bytes, std::memory_order_relaxed);
  stats_.pm_block_bytes.store(blocks_.used_block_bytes(),
                              std::memory_order_relaxed);
  if (opts_.charge_alloc_persist) {
    stats_.alloc_meta_persists.fetch_add(1, std::memory_order_relaxed);
    charge_latency(opts_.latency.extra_write_ns());
  }
  if (check_) check_->on_alloc(off, bytes);
  return off;
}

void Arena::free(uint64_t off, uint64_t bytes, uint64_t align) {
  blocks_.free(off, bytes, align);
  if (check_) check_->on_free(off, bytes);
  stats_.free_calls.fetch_add(1, std::memory_order_relaxed);
  stats_.pm_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  stats_.pm_block_bytes.store(blocks_.used_block_bytes(),
                              std::memory_order_relaxed);
  if (opts_.charge_alloc_persist) {
    stats_.alloc_meta_persists.fetch_add(1, std::memory_order_relaxed);
    charge_latency(opts_.latency.extra_write_ns());
  }
}

void Arena::reset_alloc_map() {
  blocks_.reset_all_free();
  if (check_) check_->on_reset_alloc_map();
  stats_.pm_live_bytes.store(0, std::memory_order_relaxed);
  stats_.pm_block_bytes.store(0, std::memory_order_relaxed);
}

void Arena::mark_used(uint64_t off, uint64_t bytes) {
  blocks_.mark_used(off, bytes);
  if (check_) check_->on_mark_used(off, bytes);
  stats_.pm_live_bytes.fetch_add(bytes, std::memory_order_relaxed);
  stats_.pm_block_bytes.store(blocks_.used_block_bytes(),
                              std::memory_order_relaxed);
}

void Arena::persist(const void* p, size_t len) {
  stats_.persist_calls.fetch_add(1, std::memory_order_relaxed);
  stats_.persisted_bytes.fetch_add(len, std::memory_order_relaxed);

  // Acquire pairs with the release in arm_crash_after(): a thread that
  // observes the armed flag also observes the freshly stored countdown
  // (without it, a stale countdown could make the crash point fire at the
  // wrong persist — or never). The fetch_sub itself hands exactly one
  // thread the value 1, so concurrent persists cannot double-fire.
  if (crash_armed_.load(std::memory_order_acquire)) {
    if (crash_countdown_.fetch_sub(1, std::memory_order_relaxed) == 1) {
      crash_armed_.store(false, std::memory_order_relaxed);
      throw CrashPoint{};
    }
  }

  if (check_) check_->on_persist(off(p), len);

  // CLFLUSH granularity: the flush covers whole cache lines.
  const uint64_t start = off(p) & ~(kCacheLine - 1);
  uint64_t end = off(p) + len;
  end = (end + kCacheLine - 1) & ~(kCacheLine - 1);
  if (shadow_) {
    std::memcpy(shadow_.get() + start, base_ + start, end - start);
  }
  // One CLFLUSH per line; each pays the PM-write delta (the paper charges
  // the delta per persistent() invocation, whose common case is one line).
  charge_latency(opts_.latency.extra_write_ns() * ((end - start) / kCacheLine));
}

void Arena::pm_read(const void* p, size_t len) const {
  if (check_) check_->on_read(off(p), len);
  const uint64_t start = off(p) & ~(kCacheLine - 1);
  uint64_t end = off(p) + len;
  end = (end + kCacheLine - 1) & ~(kCacheLine - 1);
  const uint64_t lines = (end - start) / kCacheLine;
  stats_.pm_read_lines.fetch_add(lines, std::memory_order_relaxed);
  const uint32_t extra = opts_.latency.extra_read_ns();
  if (extra != 0) charge_latency(uint64_t{extra} * lines);
}

uint64_t Arena::pay_latency() {
  const uint64_t ns = owed_ns_.exchange(0, std::memory_order_relaxed);
  if (ns == 0) return 0;
  stats_.deferred_paid_ns.fetch_add(ns, std::memory_order_relaxed);
  struct timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  ts.tv_nsec += static_cast<long>(ns % 1000000000);
  ts.tv_sec += static_cast<time_t>(ns / 1000000000);
  if (ts.tv_nsec >= 1000000000) {
    ts.tv_nsec -= 1000000000;
    ++ts.tv_sec;
  }
  // Absolute deadline so EINTR restarts do not stretch the stall.
  while (::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr) ==
         EINTR) {
  }
  return ns;
}

void Arena::arm_crash_after(uint64_t nth_persist) {
  crash_countdown_.store(static_cast<int64_t>(nth_persist),
                         std::memory_order_relaxed);
  // Release: publishes the countdown to any thread that sees armed == true
  // (see the acquire load in persist()).
  crash_armed_.store(true, std::memory_order_release);
}

void Arena::disarm_crash() {
  crash_armed_.store(false, std::memory_order_relaxed);
}

void Arena::crash() {
  if (!shadow_) throw std::logic_error("crash() requires Options::shadow");
  disarm_crash();
  for (uint64_t line = 0; line < opts_.size; line += kCacheLine) {
    if (std::memcmp(base_ + line, shadow_.get() + line, kCacheLine) == 0)
      continue;
    if (opts_.eviction_prob > 0.0 &&
        crash_rng_.next_bool(opts_.eviction_prob)) {
      // This dirty line happened to be evicted before the crash: it is
      // persistent after all.
      std::memcpy(shadow_.get() + line, base_ + line, kCacheLine);
    } else {
      std::memcpy(base_ + line, shadow_.get() + line, kCacheLine);
    }
  }
  if (check_) check_->on_crash();
}

}  // namespace hart::pmem
