// Persistent block allocator under EPallocator and the PM-resident trees.
//
// The arena's block space is carved into kBlockSize granules tracked by a
// *volatile* bitmap plus per-size free lists. The metadata being volatile is
// deliberate: on recovery the bitmap is rebuilt from the index's reachable
// persistent structures (Arena::reset_alloc_map + mark_used), so any span
// that became unreachable due to a crash is free again by construction —
// the allocator itself can never leak persistent memory.
//
// Real PM allocators must flush their (persistent) metadata on every
// allocation; that is exactly the cost the paper's EPallocator amortizes by
// handing out 56-object chunks. We model it with one metadata-flush charge
// per raw alloc/free (Options::charge_alloc_persist), so the EPallocator-vs-
// naive ablation measures the same effect as the paper.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "pmem/pmdefs.h"

namespace hart::pmem {

class BlockAllocator {
 public:
  /// Manages [first_byte, first_byte + span_bytes) of the arena.
  BlockAllocator(uint64_t first_byte, uint64_t span_bytes);

  /// Allocate `bytes` with the given power-of-two alignment (in bytes,
  /// >= kBlockSize). Returns the arena offset. Throws std::bad_alloc when
  /// the span is exhausted.
  uint64_t alloc(uint64_t bytes, uint64_t align);

  /// Free a span previously returned by alloc() (or marked by mark_used()).
  /// `bytes` and `align` must match the original request.
  void free(uint64_t off, uint64_t bytes, uint64_t align = kBlockSize);

  /// Recovery: mark everything free, then re-mark reachable spans.
  void reset_all_free();
  void mark_used(uint64_t off, uint64_t bytes);

  /// Physical bytes currently allocated (block-rounded).
  [[nodiscard]] uint64_t used_block_bytes() const;
  /// True iff the span [off, off+bytes) is fully allocated.
  [[nodiscard]] bool is_used(uint64_t off, uint64_t bytes) const;

 private:
  uint64_t blocks_of(uint64_t bytes) const {
    return (bytes + kBlockSize - 1) / kBlockSize;
  }
  bool test_bit(uint64_t b) const REQUIRES_SHARED(mu_) {
    return (bitmap_[b >> 6] >> (b & 63)) & 1;
  }
  void set_bits(uint64_t first, uint64_t n) REQUIRES(mu_);
  void clear_bits(uint64_t first, uint64_t n) REQUIRES(mu_);
  bool span_free(uint64_t first, uint64_t n) const REQUIRES_SHARED(mu_);

  uint64_t first_byte_;
  uint64_t num_blocks_;
  std::vector<uint64_t> bitmap_ GUARDED_BY(mu_);  // 1 = used
  // Exact-size free lists: key packs (blocks, align_blocks).
  std::unordered_map<uint64_t, std::vector<uint64_t>> free_lists_
      GUARDED_BY(mu_);
  uint64_t hint_block_ GUARDED_BY(mu_) = 0;  // rolling first-fit position
  uint64_t used_blocks_ GUARDED_BY(mu_) = 0;
  mutable common::Mutex mu_;
};

}  // namespace hart::pmem
