// PM latency emulation.
//
// The paper emulates PM on remote-NUMA DRAM and injects latency deltas:
//   * write path: the (PM_write - DRAM) difference is added to every
//     invocation of persistent() (Section IV.A);
//   * read path: the (PM_read - DRAM) difference is charged per stalled
//     load, computed off-line from CPU stall cycles (equations (1)-(2)).
// We reproduce the same model in-process: Arena::persist() busy-waits for
// extra_write_ns(), and Arena::pm_read() busy-waits for extra_read_ns() per
// touched cache line. Setting PM latencies equal to DRAM latency disables
// injection entirely (that is the test configuration).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace hart::pmem {

struct LatencyConfig {
  uint32_t dram_ns = 100;      // measured local-DRAM latency in the paper
  uint32_t pm_write_ns = 100;  // emulated PM write latency
  uint32_t pm_read_ns = 100;   // emulated PM read latency

  [[nodiscard]] uint32_t extra_write_ns() const {
    return pm_write_ns > dram_ns ? pm_write_ns - dram_ns : 0;
  }
  [[nodiscard]] uint32_t extra_read_ns() const {
    return pm_read_ns > dram_ns ? pm_read_ns - dram_ns : 0;
  }

  [[nodiscard]] std::string label() const {
    return std::to_string(pm_write_ns) + "/" + std::to_string(pm_read_ns);
  }

  /// No latency injection at all (unit tests).
  static LatencyConfig off() { return {100, 100, 100}; }
  /// The paper's three configurations (PM write ns / PM read ns).
  static LatencyConfig c300_100() { return {100, 300, 100}; }
  static LatencyConfig c300_300() { return {100, 300, 300}; }
  static LatencyConfig c600_300() { return {100, 600, 300}; }
};

#if defined(__x86_64__)
namespace detail {
inline uint64_t rdtsc() { return __builtin_ia32_rdtsc(); }

/// TSC ticks per nanosecond, calibrated once against the steady clock.
inline double tsc_per_ns() {
  static const double v = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = rdtsc();
    // ~2 ms calibration window: plenty for 0.1% accuracy.
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(2)) {
    }
    const uint64_t c1 = rdtsc();
    const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    return static_cast<double>(c1 - c0) / static_cast<double>(dt);
  }();
  return v;
}
}  // namespace detail
#endif

/// Busy-wait for approximately `ns` nanoseconds. Uses the TSC on x86-64
/// (a few ns of overhead per call — the injected deltas are 200-500 ns, so
/// clock-read overhead must stay well below that); falls back to the
/// steady clock elsewhere.
inline void spin_ns(uint64_t ns) {
  if (ns == 0) return;
#if defined(__x86_64__)
  const uint64_t target =
      detail::rdtsc() +
      static_cast<uint64_t>(static_cast<double>(ns) * detail::tsc_per_ns());
  // No PAUSE in the loop: the injected waits are only hundreds of ns and
  // PAUSE would add ~14 ns of quantization per iteration.
  while (detail::rdtsc() < target) {
  }
#else
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {
  }
#endif
}

}  // namespace hart::pmem
