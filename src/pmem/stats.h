// Counters collected by the PM device model. Used by the memory-consumption
// experiment (Fig. 10b), by the EPallocator ablation, and by tests asserting
// leak freedom.
#pragma once

#include <atomic>
#include <cstdint>

namespace hart::pmem {

struct StatsSnapshot {
  uint64_t persist_calls = 0;       // persistent() invocations
  uint64_t persisted_bytes = 0;     // total bytes covered by persist()
  uint64_t pm_read_lines = 0;       // PM cache lines touched by reads
  uint64_t alloc_calls = 0;         // raw PM allocations
  uint64_t free_calls = 0;          // raw PM frees
  uint64_t alloc_meta_persists = 0; // modeled allocator-metadata flushes
  uint64_t pm_live_bytes = 0;       // logical (requested) live PM bytes
  uint64_t pm_block_bytes = 0;      // physical (block-rounded) live PM bytes
  uint64_t injected_ns = 0;         // device latency charged (spun or owed)
  uint64_t deferred_paid_ns = 0;    // deferred latency slept off in pay_latency
};

class Stats {
 public:
  // All counters are updated and read with std::memory_order_relaxed on
  // purpose: they are monotonic event tallies (plus the two live-byte
  // gauges) that never guard other memory — no reader derives a pointer or
  // an invariant from them, so no acquire/release pairing is needed and a
  // snapshot is allowed to be slightly stale/torn across *different*
  // counters. Anything that must synchronize (crash arming, chunk headers)
  // lives elsewhere with explicit ordering.
  std::atomic<uint64_t> persist_calls{0};
  std::atomic<uint64_t> persisted_bytes{0};
  mutable std::atomic<uint64_t> pm_read_lines{0};
  std::atomic<uint64_t> alloc_calls{0};
  std::atomic<uint64_t> free_calls{0};
  std::atomic<uint64_t> alloc_meta_persists{0};
  std::atomic<uint64_t> pm_live_bytes{0};
  std::atomic<uint64_t> pm_block_bytes{0};
  // mutable: charged from const paths (pm_read / charge_latency).
  mutable std::atomic<uint64_t> injected_ns{0};
  mutable std::atomic<uint64_t> deferred_paid_ns{0};

  [[nodiscard]] StatsSnapshot snapshot() const {
    StatsSnapshot s;
    s.persist_calls = persist_calls.load(std::memory_order_relaxed);
    s.persisted_bytes = persisted_bytes.load(std::memory_order_relaxed);
    s.pm_read_lines = pm_read_lines.load(std::memory_order_relaxed);
    s.alloc_calls = alloc_calls.load(std::memory_order_relaxed);
    s.free_calls = free_calls.load(std::memory_order_relaxed);
    s.alloc_meta_persists =
        alloc_meta_persists.load(std::memory_order_relaxed);
    s.pm_live_bytes = pm_live_bytes.load(std::memory_order_relaxed);
    s.pm_block_bytes = pm_block_bytes.load(std::memory_order_relaxed);
    s.injected_ns = injected_ns.load(std::memory_order_relaxed);
    s.deferred_paid_ns = deferred_paid_ns.load(std::memory_order_relaxed);
    return s;
  }

  void reset_counters() {
    persist_calls = 0;
    persisted_bytes = 0;
    pm_read_lines = 0;
    alloc_calls = 0;
    free_calls = 0;
    alloc_meta_persists = 0;
    injected_ns = 0;
    deferred_paid_ns = 0;
    // pm_live_bytes / pm_block_bytes track live state and are not reset.
  }
};

}  // namespace hart::pmem
