#include "hart/verify.h"

#include <bit>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "epalloc/chunk.h"
#include "epalloc/micrologs.h"
#include "hart/hart.h"
#include "hart/hart_leaf.h"

namespace hart::core {

namespace {

struct Ctx {
  const pmem::Arena& arena;
  VerifyReport* report;

  void error(std::string what) {
    report->issues.push_back(
        {VerifyIssue::Severity::kError, std::move(what)});
  }
  void warn(std::string what) {
    report->issues.push_back(
        {VerifyIssue::Severity::kWarning, std::move(what)});
  }
};

std::string hex(uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

bool in_bounds(const pmem::Arena& arena, uint64_t off, uint64_t bytes) {
  return off >= pmem::kArenaHeaderSize && off + bytes <= arena.size();
}

/// Walk one chunk list; returns the set of chunk offsets (empty on fatal
/// structural damage, which is reported).
std::vector<uint64_t> walk_list(Ctx& ctx, epalloc::ObjType t, uint64_t head,
                                const epalloc::TypeGeometry& g) {
  std::vector<uint64_t> chunks;
  std::set<uint64_t> seen;
  uint64_t off = head;
  while (off != pmem::kNullOff) {
    if (!in_bounds(ctx.arena, off, g.chunk_bytes)) {
      ctx.error("chunk " + hex(off) + " (type " +
                std::to_string(static_cast<int>(t)) + ") out of bounds");
      return chunks;
    }
    if (off % g.stride != 0) {
      ctx.error("chunk " + hex(off) + " not aligned to stride " +
                std::to_string(g.stride));
      return chunks;
    }
    if (!seen.insert(off).second) {
      ctx.error("cycle in chunk list of type " +
                std::to_string(static_cast<int>(t)) + " at " + hex(off));
      return chunks;
    }
    chunks.push_back(off);
    const auto* c = ctx.arena.ptr<epalloc::MemChunk>(off);

    // V2: header internal consistency.
    const uint64_t bm = epalloc::ChunkHdr::bitmap(c->header);
    const bool full = epalloc::ChunkHdr::full(c->header);
    if (full != (bm == epalloc::kBitmapMask))
      ctx.error("chunk " + hex(off) +
                ": full indicator disagrees with bitmap");
    if (!full) {
      const uint32_t hint = epalloc::ChunkHdr::next_free(c->header);
      if (hint >= epalloc::kObjectsPerChunk ||
          ((bm >> hint) & 1) != 0)
        ctx.error("chunk " + hex(off) + ": next-free hint " +
                  std::to_string(hint) + " points at a used slot");
    }
    off = c->pnext;
  }
  return chunks;
}

}  // namespace

std::string VerifyReport::summary() const {
  std::ostringstream os;
  os << (ok() ? "OK" : "CORRUPT") << ": " << live_leaves << " leaves, "
     << live_values << " values, " << chunks << " chunks, "
     << pending_reclamations << " pending reclamations";
  size_t errors = 0, warnings = 0;
  for (const auto& i : issues)
    (i.severity == VerifyIssue::Severity::kError ? errors : warnings)++;
  os << ", " << errors << " errors, " << warnings << " warnings";
  return os.str();
}

VerifyReport verify_hart_image(const pmem::Arena& arena) {
  VerifyReport report;
  Ctx ctx{arena, &report};

  const auto* root = arena.root<HartRoot>();
  // V1: root sanity.
  if (root->magic != kHartRootMagic) {
    ctx.error("root magic mismatch: " + hex(root->magic));
    return report;
  }
  if (root->hash_key_len > 8)
    ctx.error("hash_key_len out of range: " +
              std::to_string(root->hash_key_len));

  // V2: chunk lists per type.
  const epalloc::TypeGeometry geoms[epalloc::kNumObjTypes] = {
      epalloc::TypeGeometry::for_obj_size(sizeof(HartLeaf)),
      epalloc::TypeGeometry::for_obj_size(8),
      epalloc::TypeGeometry::for_obj_size(16),
      epalloc::TypeGeometry::for_obj_size(32),
      epalloc::TypeGeometry::for_obj_size(64)};
  std::vector<uint64_t> chunks_of[epalloc::kNumObjTypes];
  std::set<uint64_t> value_chunks[epalloc::kNumObjTypes];
  for (int t = 0; t < epalloc::kNumObjTypes; ++t) {
    chunks_of[t] = walk_list(ctx, static_cast<epalloc::ObjType>(t),
                             root->ep.heads[t], geoms[t]);
    report.chunks += chunks_of[t].size();
    for (const uint64_t c : chunks_of[t]) value_chunks[t].insert(c);
  }

  auto value_bit = [&](int cls, uint64_t voff) -> int {
    // -1: not a valid live-value reference; 0: bit clear; 1: bit set.
    const auto& g = geoms[cls];
    const uint64_t c = g.chunk_of(voff);
    if (!value_chunks[cls].count(c)) return -1;
    const uint64_t idx = g.index_of(voff);
    if (g.object_off(c, static_cast<uint32_t>(idx)) != voff) return -1;
    const auto* mc = arena.ptr<epalloc::MemChunk>(c);
    return static_cast<int>(
        (epalloc::ChunkHdr::bitmap(mc->header) >> idx) & 1);
  };

  // V3/V4/V5: leaves and value references.
  std::map<uint64_t, uint64_t> value_owner;  // value off -> leaf off
  uint64_t referenced_values = 0;
  for (const uint64_t c_off : chunks_of[0]) {
    const auto* c = arena.ptr<epalloc::MemChunk>(c_off);
    const uint64_t bm = epalloc::ChunkHdr::bitmap(c->header);
    for (uint32_t i = 0; i < epalloc::kObjectsPerChunk; ++i) {
      const uint64_t leaf_off = geoms[0].object_off(c_off, i);
      const auto* leaf = arena.ptr<HartLeaf>(leaf_off);
      const bool live = (bm >> i) & 1;
      if (live) {
        ++report.live_leaves;
        if (leaf->key_len == 0 || leaf->key_len > common::kMaxKeyLen) {
          ctx.error("leaf " + hex(leaf_off) + ": bad key length " +
                    std::to_string(leaf->key_len));
        } else if (std::memchr(leaf->key, 0, leaf->key_len) != nullptr) {
          ctx.error("leaf " + hex(leaf_off) + ": key contains NUL");
        } else if (leaf->key_fp != 0) {
          // V3 (fingerprint): a nonzero persisted fingerprint must match
          // the one derived from the key bytes after the hash prefix
          // (0 = legacy/unset image, repaired lazily by recovery).
          const uint32_t kh = root->hash_key_len < leaf->key_len
                                  ? root->hash_key_len
                                  : leaf->key_len;
          const art::Key ak{
              reinterpret_cast<const uint8_t*>(leaf->key) + kh,
              static_cast<size_t>(leaf->key_len - kh)};
          if (leaf->key_fp != art::key_fingerprint(ak))
            ctx.error("leaf " + hex(leaf_off) +
                      ": key fingerprint mismatch (stored " +
                      std::to_string(leaf->key_fp) + ", derived " +
                      std::to_string(art::key_fingerprint(ak)) + ")");
        }
        if (leaf->val_class > 3) {
          ctx.error("leaf " + hex(leaf_off) + ": bad value class " +
                    std::to_string(leaf->val_class));
          continue;
        }
        const int cls = leaf->val_class + 1;
        if (leaf->val_len == 0 ||
            leaf->val_len > epalloc::value_class_size(
                                static_cast<epalloc::ObjType>(cls)))
          ctx.error("leaf " + hex(leaf_off) + ": value length " +
                    std::to_string(leaf->val_len) +
                    " exceeds its class");
        const int bit = value_bit(cls, leaf->p_value);
        if (bit != 1) {
          ctx.error("leaf " + hex(leaf_off) +
                    ": value reference invalid or bit clear (" +
                    hex(leaf->p_value) + ")");
        } else {
          ++referenced_values;
          auto [it, fresh] = value_owner.emplace(leaf->p_value, leaf_off);
          if (!fresh)
            ctx.error("value " + hex(leaf->p_value) +
                      " referenced by two live leaves " + hex(it->second) +
                      " and " + hex(leaf_off));
        }
      } else if (leaf->p_value != 0) {
        // V5: a free slot with a dangling reference — benign iff the value
        // bit is set (pending lazy reclamation per Alg. 2) or clear (the
        // p_value clear had not persisted; the probe will ignore it).
        const int cls = leaf->val_class <= 3 ? leaf->val_class + 1 : -1;
        if (cls > 0 && value_bit(cls, leaf->p_value) == 1)
          ++report.pending_reclamations;
      }
    }
  }

  // Count in-flight update logs first: each may hold one extra committed
  // value (the new value committed before the leaf pointer swings).
  uint64_t inflight_ulogs = 0;
  for (const auto& ulog : root->ep.ulogs)
    if (ulog.pleaf != 0) ++inflight_ulogs;

  // V4 (leak side): every committed value must be referenced by exactly one
  // live leaf or be a pending reclamation — modulo in-flight updates.
  uint64_t committed_values = 0;
  for (int cls = 1; cls < epalloc::kNumObjTypes; ++cls)
    for (const uint64_t c_off : chunks_of[cls]) {
      const auto* c = arena.ptr<epalloc::MemChunk>(c_off);
      committed_values += static_cast<uint64_t>(
          std::popcount(epalloc::ChunkHdr::bitmap(c->header)));
    }
  report.live_values = committed_values;
  const uint64_t accounted =
      referenced_values + report.pending_reclamations;
  if (committed_values < accounted ||
      committed_values > accounted + 2 * inflight_ulogs) {
    const std::string what =
        "value accounting mismatch: " + std::to_string(committed_values) +
        " committed vs " + std::to_string(referenced_values) +
        " referenced + " + std::to_string(report.pending_reclamations) +
        " pending";
    if (inflight_ulogs > 0)
      ctx.warn(what + " (update logs in flight)");
    else
      ctx.error(what);
  }

  // V6: micro-logs.
  const auto& rlog = root->ep.rlog;
  if (rlog.pcurrent != 0) {
    if (rlog.type_plus1 == 0 ||
        rlog.type_plus1 > epalloc::kNumObjTypes)
      ctx.error("recycle log has invalid type");
    else if (!in_bounds(arena, rlog.pcurrent, sizeof(epalloc::MemChunk)))
      ctx.error("recycle log PCurrent out of bounds");
    else
      ctx.warn("recycle log in flight (recovery will finish it)");
  } else if (rlog.pprev != 0 || rlog.type_plus1 != 0) {
    ctx.error("recycle log partially cleared");
  }
  for (const auto& ulog : root->ep.ulogs) {
    if (ulog.pleaf == 0) {
      if (ulog.poldv != 0 || ulog.pnewv != 0)
        ctx.error("update log slot partially cleared");
      continue;
    }
    if (!in_bounds(arena, ulog.pleaf, sizeof(HartLeaf)))
      ctx.error("update log PLeaf out of bounds");
    if (ulog.pnewv != 0 &&
        static_cast<uint8_t>(ulog.new_class()) >= epalloc::kNumObjTypes)
      ctx.error("update log has invalid new-value class");
    ctx.warn("update log slot in flight (recovery will replay it)");
  }

  return report;
}

}  // namespace hart::core
