#include "hart/hart.h"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace hart::core {

namespace {
constexpr uint64_t kHartMagic = kHartRootMagic;

size_t value_object_size(epalloc::ObjType t) {
  return epalloc::value_class_size(t);
}

obs::Counter& read_fallback_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("hart_read_fallback_total");
  return c;
}

/// Writer side of the partition seqlock (HashDir::Partition::mod_version):
/// odd for the duration of the mutator's critical section, so an optimistic
/// multi-leaf walk (range) that overlaps any mutation sees a version change
/// and discards its results. Boehm's seqlock-writer ordering: the odd store
/// is fenced (release) before the data stores; the even store is itself a
/// release.
class ModGuard {
 public:
  explicit ModGuard(HashDir::Partition* part)
      : part_(part),
        v_(part->mod_version.load(std::memory_order_relaxed)) {
    part_->mod_version.store(v_ + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  ~ModGuard() {
    part_->mod_version.store(v_ + 2, std::memory_order_release);
  }
  ModGuard(const ModGuard&) = delete;
  ModGuard& operator=(const ModGuard&) = delete;

 private:
  HashDir::Partition* part_;
  uint64_t v_;
};
}  // namespace

Hart::Options Hart::resolve_options(pmem::Arena& arena, Options opts) {
  const auto* root = arena.root<HartRoot>();
  if (root->magic == kHartMagic) {
    // Reopening an existing HART: kh is a structural parameter recorded in
    // the root (the split of every persisted key depends on it).
    opts.hash_key_len = root->hash_key_len;
  }
  if (opts.hash_key_len > 8)
    throw std::invalid_argument("hash_key_len must be <= 8");
  if ((opts.hash_buckets & (opts.hash_buckets - 1)) != 0)
    throw std::invalid_argument("hash_buckets must be a power of two");
  return opts;
}

Hart::Hart(pmem::Arena& arena, Options opts)
    : arena_(arena),
      opts_(resolve_options(arena, opts)),
      root_(arena.root<HartRoot>()),
      ep_(epalloc::make_allocator(arena, &root_->ep, sizeof(HartLeaf),
                                  &hart_leaf_probe, &hart_leaf_clear,
                                  opts_.alloc)),
      dir_(opts_.hash_buckets,
           HartLeafTraits{opts_.hash_key_len, &arena},
           &dram_bytes_,
           opts_.rwlock_reads ? nullptr : &common::ebr::Domain::instance(),
           opts_.fingerprints) {
  if (root_->magic == kHartMagic) {
    recover();
  } else {
    *root_ = HartRoot{};
    root_->hash_key_len = opts_.hash_key_len;
    root_->magic = kHartMagic;
    arena_.persist(root_, sizeof(HartRoot));
  }
}

Hart::~Hart() {
  // Retired ART nodes hold a callback context pointing at their tree, and
  // retired PM slots one pointing at this Hart — both die with us.
  if (optimistic()) common::ebr::Domain::instance().drain();
}

void Hart::retire_slot(epalloc::ObjType cls, uint64_t off) {
  // Offsets are 8-aligned (every EPallocator object size is a multiple of
  // 8), so the class tag rides in the low bits of the packed pointer.
  common::ebr::Domain::instance().retire(
      reinterpret_cast<void*>(off | static_cast<uint64_t>(cls)),
      &Hart::retire_slot_cb, this);
}

void Hart::retire_slot_cb(void* packed, void* self) {
  const auto bits = reinterpret_cast<uint64_t>(packed);
  static_cast<Hart*>(self)->ep_->release_retired(
      static_cast<epalloc::ObjType>(bits & 7), bits & ~uint64_t{7});
}

// Algorithm 1: Insertion(K, V, HT).
common::Status Hart::insert(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  const uint64_t hkey = pack_hash_key(key, opts_.hash_key_len);
  // Lines 2-5: locate the ART, creating one if absent.
  HashDir::Partition* part = dir_.find_or_create(hkey);
  common::WriterLock lk(part->mu);
  // Writers pin the epoch too: every retire below (replaced ART nodes,
  // superseded value slots) must land in a bucket readers admitted after
  // the unlink cannot reach — see ebr::Domain::retire's contract.
  common::ebr::Guard ebr_pin(common::ebr::Domain::instance());
  ModGuard mod(part);

  // Line 6-8: if the key exists, this is an update.
  const art::Key akey = art_key(key);
  if (HartLeaf* existing = part->tree.search(akey); existing != nullptr) {
    if (auto s = update_locked(existing, value); !s.ok()) return s;
    return common::Status::kUpdated;
  }

  // Lines 10-11: allocate the leaf and the value object. Exhaustion backs
  // out cleanly — reservations are volatile, nothing was persisted.
  uint64_t leaf_off = 0;
  if (auto s = ep_->reserve(epalloc::ObjType::kLeaf, &leaf_off); !s.ok())
    return s;
  const epalloc::ObjType vcls = value_class_for(value.size());
  uint64_t val_off = 0;
  if (auto s = ep_->reserve(vcls, &val_off); !s.ok()) {
    ep_->release(epalloc::ObjType::kLeaf, leaf_off);
    return s;
  }

  // Line 12: value = V; persistent(value).
  char* vp = arena_.ptr<char>(val_off);
  std::memcpy(vp, value.data(), value.size());
  std::memset(vp + value.size(), 0, value_object_size(vcls) - value.size());
  arena_.trace_store(vp, value_object_size(vcls));
  arena_.persist(vp, value_object_size(vcls));

  // Line 13: leaf.p_value = &value; persistent(). The value's class tag
  // and length are flushed in the same step (they sit next to p_value at
  // the leaf tail): the stale-value probe and the verifier interpret
  // p_value through val_class, so the tag must never be persisted *after*
  // the value bit — a crash in between would leave a dangling value whose
  // chunk geometry would be derived from a stale class.
  auto* leaf = arena_.ptr<HartLeaf>(leaf_off);
  leaf->val_len = static_cast<uint8_t>(value.size());
  leaf->val_class = value_class_tag(vcls);
  // The ART-key fingerprint persists with the rest of the tail below —
  // key_fp sits inside the [val_len, end) range, so it costs no extra
  // trace_store/persist. Recovery re-tags the DRAM tree from it.
  leaf->key_fp = art::key_fingerprint(akey);
  leaf->vseq = 0;  // even: no update in flight (reused slots hold garbage)
  leaf->p_value = val_off;
  arena_.trace_store(&leaf->val_len,
                     sizeof(HartLeaf) - offsetof(HartLeaf, val_len));
  arena_.persist(&leaf->val_len,
                 sizeof(HartLeaf) - offsetof(HartLeaf, val_len));

  // Line 14: set + persist the value bit.
  ep_->commit(vcls, val_off);

  // Lines 15-16: the complete key and its length into the leaf.
  std::memcpy(leaf->key, key.data(), key.size());
  leaf->key_len = static_cast<uint8_t>(key.size());
  arena_.trace_store(leaf->key, key.size());
  arena_.trace_store(&leaf->key_len, sizeof(leaf->key_len));
  arena_.persist(leaf, sizeof(HartLeaf));

  // Line 17: Insert2Tree — DRAM only, no persistence needed (selective
  // consistency: internal nodes are reconstructable). The release store
  // publishing the leaf into the tree is what makes the plain stores above
  // visible to lock-free readers.
  HartLeafTraits traits{opts_.hash_key_len, &arena_};
  part->tree.insert(traits.key(leaf), leaf);

  // Line 18: set + persist the leaf bit — the commit point.
  ep_->commit(epalloc::ObjType::kLeaf, leaf_off);
  count_.fetch_add(1, std::memory_order_relaxed);
  return common::Status::kInserted;
}

// Algorithm 3: Update(K, V, L) — out-of-place with the update micro-log.
common::Status Hart::update_locked(HartLeaf* leaf, std::string_view value) {
  const uint64_t leaf_off = arena_.off(leaf);
  const uint64_t old_off = leaf->p_value;
  const epalloc::ObjType old_cls = value_class_of(leaf);
  const epalloc::ObjType new_cls = value_class_for(value.size());

  epalloc::UpdateLog* ulog = ep_->acquire_ulog();
  // Lines 2-3: record the leaf and its old value in the log. The two words
  // share a cache line and stores are program-ordered, so one flush
  // suffices (recovery treats {pleaf} and {pleaf, poldv} identically: both
  // reset the log when pnewv is absent).
  ulog->pleaf = leaf_off;
  ulog->poldv = old_off;
  arena_.trace_store(&ulog->pleaf, 2 * sizeof(uint64_t));
  arena_.persist(&ulog->pleaf, 2 * sizeof(uint64_t));

  // Lines 4-5: write the new value into freshly allocated space. On
  // exhaustion the old value is untouched and pnewv was never written, so
  // reclaiming the log is a clean abort (recovery would have reset it the
  // same way).
  uint64_t new_off = 0;
  if (auto s = ep_->reserve(new_cls, &new_off); !s.ok()) {
    ep_->reclaim_ulog(ulog);
    return s;
  }
  char* vp = arena_.ptr<char>(new_off);
  std::memcpy(vp, value.data(), value.size());
  std::memset(vp + value.size(), 0, value_object_size(new_cls) - value.size());
  arena_.trace_store(vp, value_object_size(new_cls));
  arena_.persist(vp, value_object_size(new_cls));

  // Line 6: PNewV plus our meta word. Both live in the same log line and
  // stores are program-ordered, so one flush suffices: a persisted PNewV
  // implies a persisted meta.
  ulog->meta = epalloc::UpdateLog::pack_meta(
      static_cast<uint32_t>(value.size()), old_cls, new_cls);
  ulog->pnewv = new_off;
  arena_.trace_store(&ulog->pnewv, 2 * sizeof(uint64_t));
  arena_.persist(&ulog->pnewv, 2 * sizeof(uint64_t));  // pnewv + meta

  // Line 7: set the bit for the new value.
  ep_->commit(new_cls, new_off);

  // Line 8: swing the value pointer and its metadata in the leaf — they
  // are adjacent at the leaf tail, one flush covers them. The swing runs
  // under the leaf's vseq seqlock so a lock-free reader can never pair the
  // new pointer with the old length/class (or vice versa); p_value itself
  // is a release store pairing with the reader's acquire, which publishes
  // the new value's bytes. vseq is runtime-only: recovery replay rederives
  // the tail from the log and rezeroes it.
  const std::atomic_ref<uint32_t> vseq(leaf->vseq);
  const uint32_t vs = vseq.load(std::memory_order_relaxed);
  vseq.store(vs + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic_ref<uint8_t>(leaf->val_len)
      .store(static_cast<uint8_t>(value.size()), std::memory_order_relaxed);
  std::atomic_ref<uint8_t>(leaf->val_class)
      .store(value_class_tag(new_cls), std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(leaf->p_value)
      .store(new_off, std::memory_order_release);
  vseq.store(vs + 2, std::memory_order_release);
  arena_.trace_store(&leaf->val_len,
                     sizeof(HartLeaf) - offsetof(HartLeaf, val_len));
  arena_.persist(&leaf->val_len,
                 sizeof(HartLeaf) - offsetof(HartLeaf, val_len));

  // Lines 9-10: release the old value, recycle its chunk if empty. With
  // lock-free readers the slot's *reuse* (and the chunk recycle) waits out
  // the grace period; durability is identical — the bit reset persists now.
  if (optimistic()) {
    ep_->free_object_retired(old_cls, old_off);
    retire_slot(old_cls, old_off);
  } else {
    ep_->free_object(old_cls, old_off);
    ep_->recycle_chunk_of(old_cls, old_off);
  }

  // Line 11: LogReclaim.
  ep_->reclaim_ulog(ulog);
  return common::Status::kOk;
}

common::Status Hart::update(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  HashDir::Partition* part =
      dir_.find(pack_hash_key(key, opts_.hash_key_len));
  if (part == nullptr) return common::Status::kNotFound;
  common::WriterLock lk(part->mu);
  common::ebr::Guard ebr_pin(common::ebr::Domain::instance());
  ModGuard mod(part);
  HartLeaf* leaf = part->tree.search(art_key(key));
  if (leaf == nullptr) return common::Status::kNotFound;
  if (auto s = update_locked(leaf, value); !s.ok()) return s;
  return common::Status::kOk;
}

int Hart::read_leaf_value_optimistic(const HartLeaf* leaf,
                                     std::string* out) const {
  auto* m = const_cast<HartLeaf*>(leaf);
  const std::atomic_ref<uint32_t> vseq(m->vseq);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint32_t v0 = vseq.load(std::memory_order_acquire);
    if ((v0 & 1) != 0) continue;  // update mid-swing
    // Acquire on p_value pairs with the updater's release store: the new
    // value object's bytes become visible before its pointer does.
    const uint64_t pv = std::atomic_ref<uint64_t>(m->p_value)
                            .load(std::memory_order_acquire);
    const uint8_t len = std::atomic_ref<uint8_t>(m->val_len)
                            .load(std::memory_order_relaxed);
    const uint8_t cls = std::atomic_ref<uint8_t>(m->val_class)
                            .load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (vseq.load(std::memory_order_relaxed) != v0) continue;
    // (pv, len, cls) is a consistent tail snapshot. The slot behind pv
    // cannot be reused before our epoch pin is released (EBR), and value
    // objects are never mutated in place, so the copy below is race-free.
    if (pv == 0) return 0;  // deleted under us (Alg. 5's p_value clear)
    const char* vp = arena_.ptr<char>(pv);
    arena_.pm_read(vp, value_object_size(static_cast<epalloc::ObjType>(
                           static_cast<uint8_t>(cls + 1))));
    if (out != nullptr) out->assign(vp, len);
    return 1;
  }
  return -1;
}

// Algorithm 4: Search(K, HT) — lock-free by default: OLC descent through
// the DRAM nodes, then a vseq-validated value read from PM. Persistent
// churn (retries exhausted) falls back to the paper's shared-lock read.
common::Status Hart::search(std::string_view key, std::string* out) const {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  HashDir::Partition* part =
      dir_.find(pack_hash_key(key, opts_.hash_key_len));
  if (part == nullptr) return common::Status::kNotFound;
  const art::Key akey = art_key(key);
  if (optimistic()) {
    common::ebr::Guard g(common::ebr::Domain::instance());
    const auto r = part->tree.search_optimistic(akey);
    if (r.ok) {
      if (r.leaf == nullptr) return common::Status::kNotFound;
      // Line 9: validate the leaf bit in the chunk bitmap (lock-free).
      if (!ep_->bit_probe(epalloc::ObjType::kLeaf, arena_.off(r.leaf)))
        return common::Status::kNotFound;
      const int vr = read_leaf_value_optimistic(r.leaf, out);
      if (vr > 0) return common::Status::kOk;
      if (vr == 0) return common::Status::kNotFound;
    }
    read_fallback_counter().inc();
  }
  common::ReaderLock lk(part->mu);
  const HartLeaf* leaf = part->tree.search(akey);
  if (leaf == nullptr) return common::Status::kNotFound;
  // Line 9: validate the leaf bit in the chunk bitmap.
  if (!ep_->bit_probe(epalloc::ObjType::kLeaf, arena_.off(leaf)))
    return common::Status::kNotFound;
  const char* vp = arena_.ptr<char>(leaf->p_value);
  arena_.pm_read(vp, value_object_size(value_class_of(leaf)));
  if (out != nullptr) out->assign(vp, leaf->val_len);
  return common::Status::kOk;
}

// Algorithm 5: Deletion(K, HT).
common::Status Hart::remove(std::string_view key) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  HashDir::Partition* part =
      dir_.find(pack_hash_key(key, opts_.hash_key_len));
  if (part == nullptr) return common::Status::kNotFound;
  common::WriterLock lk(part->mu);
  common::ebr::Guard ebr_pin(common::ebr::Domain::instance());
  ModGuard mod(part);
  // Lines 5-9: locate and unlink the leaf from the (DRAM) tree.
  HartLeaf* leaf = part->tree.remove(art_key(key));
  if (leaf == nullptr) return common::Status::kNotFound;
  const uint64_t leaf_off = arena_.off(leaf);
  const uint64_t val_off = leaf->p_value;
  const epalloc::ObjType vcls = value_class_of(leaf);

  // Lines 11-12: reset the leaf bit, then the value bit. A crash in
  // between leaves a dangling committed value that EPMalloc's stale-value
  // check reclaims when the leaf slot is reused (Alg. 2 lines 12-16).
  //
  // Deviation from the paper's Algorithm 5 (documented in DESIGN.md): the
  // freed leaf's p_value is additionally cleared once both bits are reset.
  // Otherwise, after the freed value slot is re-allocated to another key,
  // a reuse of this leaf slot would see p_value -> live value with its bit
  // set and Alg. 2's stale-value check would reclaim the *new* owner's
  // value. All three steps happen atomically w.r.t. leaf reservations.
  //
  // Lock-free readers may still hold either slot, so in optimistic mode
  // both frees are retired: the persistent bits reset now (the deletion is
  // durable immediately), reuse and the chunk recycles wait out the grace
  // period (release_retired runs them).
  if (optimistic()) {
    ep_->free_leaf_with_value_retired(leaf_off, vcls, val_off);
    retire_slot(vcls, val_off);
    retire_slot(epalloc::ObjType::kLeaf, leaf_off);
  } else {
    ep_->free_leaf_with_value(leaf_off, vcls, val_off);
    // Lines 13-14: recycle now-empty chunks.
    ep_->recycle_chunk_of(vcls, val_off);
    ep_->recycle_chunk_of(epalloc::ObjType::kLeaf, leaf_off);
  }

  // Lines 15-16: free the ART if it became empty (internal nodes were
  // already collapsed away by the tree removal).
  count_.fetch_sub(1, std::memory_order_relaxed);
  return common::Status::kOk;
}

size_t Hart::range(
    std::string_view lo, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  if (limit == 0 || !common::validate_key(lo).ok()) return 0;
  const uint64_t hlo = pack_hash_key(lo, opts_.hash_key_len);

  auto emit_locked = [&](HartLeaf* leaf) {
    if (!ep_->bit_probe(epalloc::ObjType::kLeaf, arena_.off(leaf)))
      return true;
    const char* vp = arena_.ptr<char>(leaf->p_value);
    arena_.pm_read(vp, value_object_size(value_class_of(leaf)));
    out->emplace_back(std::string(leaf->key, leaf->key_len),
                      std::string(vp, leaf->val_len));
    return out->size() < limit;
  };

  if (!optimistic()) {
    dir_.for_each_partition_from(hlo, [&](HashDir::Partition* part) {
      common::ReaderLock lk(part->mu);
      return part->hkey == hlo
                 ? part->tree.for_each_from(art_key(lo), emit_locked)
                 : part->tree.for_each(emit_locked);
    });
    return out->size();
  }

  // Optimistic scan: per partition, walk without the lock, staging entries
  // aside; the walk is valid iff the partition's mod_version is even and
  // unchanged across it (no mutator critical section overlapped). A torn
  // walk is discarded and retried; persistent churn degrades to the
  // shared-lock walk for that partition only.
  common::ebr::Guard g(common::ebr::Domain::instance());
  std::vector<std::pair<std::string, std::string>> staging;
  constexpr int kRangeAttempts = 4;
  dir_.for_each_partition_from(hlo, [&](HashDir::Partition* part) {
    bool done = false;
    for (int a = 0; a < kRangeAttempts && !done; ++a) {
      const uint64_t v0 = part->mod_version.load(std::memory_order_acquire);
      if ((v0 & 1) != 0) continue;  // mutator mid-section; try again
      staging.clear();
      bool torn = false;
      auto emit = [&](HartLeaf* leaf) {
        if (!ep_->bit_probe(epalloc::ObjType::kLeaf, arena_.off(leaf)))
          return true;
        std::string val;
        const int vr = read_leaf_value_optimistic(leaf, &val);
        if (vr < 0) {
          torn = true;
          return false;
        }
        if (vr == 0) return true;  // deleted under us
        staging.emplace_back(std::string(leaf->key, leaf->key_len),
                             std::move(val));
        return out->size() + staging.size() < limit;
      };
      part->hkey == hlo ? part->tree.for_each_from(art_key(lo), emit)
                        : part->tree.for_each(emit);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (torn || part->mod_version.load(std::memory_order_relaxed) != v0)
        continue;
      for (auto& kv : staging) out->push_back(std::move(kv));
      done = true;
    }
    if (!done) {
      read_fallback_counter().inc();
      common::ReaderLock lk(part->mu);
      part->hkey == hlo ? part->tree.for_each_from(art_key(lo), emit_locked)
                        : part->tree.for_each(emit_locked);
    }
    return out->size() < limit;
  });
  return out->size();
}

size_t Hart::multi_get(const std::vector<std::string>& keys,
                       std::vector<std::string>* out,
                       std::vector<bool>* found) const {
  out->assign(keys.size(), std::string());
  found->assign(keys.size(), false);
  size_t hits = 0;

  if (optimistic()) {
    // One epoch pin covers the whole batch; each key takes the lock-free
    // point-lookup path, degrading to a per-partition shared lock only on
    // validation churn.
    common::ebr::Guard g(common::ebr::Domain::instance());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!common::validate_key(keys[i]).ok()) continue;  // miss, not throw
      HashDir::Partition* part =
          dir_.find(pack_hash_key(keys[i], opts_.hash_key_len));
      if (part == nullptr) continue;
      const art::Key akey = art_key(keys[i]);
      const auto r = part->tree.search_optimistic(akey);
      if (r.ok) {
        if (r.leaf == nullptr ||
            !ep_->bit_probe(epalloc::ObjType::kLeaf, arena_.off(r.leaf)))
          continue;
        const int vr = read_leaf_value_optimistic(r.leaf, &(*out)[i]);
        if (vr == 0) continue;
        if (vr > 0) {
          (*found)[i] = true;
          ++hits;
          continue;
        }
      }
      read_fallback_counter().inc();
      common::ReaderLock lk(part->mu);
      const HartLeaf* leaf = part->tree.search(akey);
      if (leaf == nullptr ||
          !ep_->bit_probe(epalloc::ObjType::kLeaf, arena_.off(leaf)))
        continue;
      const char* vp = arena_.ptr<char>(leaf->p_value);
      arena_.pm_read(vp, value_object_size(value_class_of(leaf)));
      (*out)[i].assign(vp, leaf->val_len);
      (*found)[i] = true;
      ++hits;
    }
    return hits;
  }

  // Ablation mode: group request indices by partition so each ART lock is
  // taken once.
  std::unordered_map<HashDir::Partition*, std::vector<size_t>> groups;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!common::validate_key(keys[i]).ok()) continue;
    HashDir::Partition* part =
        dir_.find(pack_hash_key(keys[i], opts_.hash_key_len));
    if (part != nullptr) groups[part].push_back(i);
  }
  for (auto& [part, idxs] : groups) {
    common::ReaderLock lk(part->mu);
    for (const size_t i : idxs) {
      const HartLeaf* leaf = part->tree.search(art_key(keys[i]));
      if (leaf == nullptr ||
          !ep_->bit_probe(epalloc::ObjType::kLeaf, arena_.off(leaf)))
        continue;
      const char* vp = arena_.ptr<char>(leaf->p_value);
      arena_.pm_read(vp, value_object_size(value_class_of(leaf)));
      (*out)[i].assign(vp, leaf->val_len);
      (*found)[i] = true;
      ++hits;
    }
  }
  return hits;
}

uint64_t Hart::flush_epoch() {
  // One persistent() call per batch: the stamped counter changes every
  // time, so the fence is never a redundant persist, and its completion
  // point is the batch's commit point (each op persisted its own data
  // before returning; this is the amortized final fence).
  obs::TraceSpan span("epoch_fence", obs::TraceKind::kFence);
  const uint64_t e = epoch_.load(std::memory_order_relaxed) + 1;
  // Batched allocator metadata rides this fence: every deferred chunk-
  // header persist must be durable before the epoch stamp that declares
  // the batch committed (no-op for eager allocators).
  ep_->flush_metadata(e);
  root_->epoch = e;
  arena_.trace_store(&root_->epoch, sizeof(root_->epoch));
  arena_.persist(&root_->epoch, sizeof(root_->epoch));
  epoch_.store(e, std::memory_order_release);
  static obs::Counter& fences =
      obs::Registry::instance().counter("hart_fence_total");
  fences.inc();
  return e;
}

void Hart::quiesce() {
  dir_.for_each_partition([](HashDir::Partition* part) {
    common::WriterLock lk(part->mu);
    return true;
  });
  // Every in-flight op has completed; flush the reclamation backlog so a
  // subsequent arena close leaves no slot in retired limbo, and push any
  // deferred chunk-header persists out (the drain's frees may have dirtied
  // more headers, so the order matters).
  if (optimistic()) common::ebr::Domain::instance().drain();
  ep_->flush_metadata(epoch_.load(std::memory_order_relaxed));
}

common::MemoryUsage Hart::memory_usage() const {
  common::MemoryUsage u;
  u.dram_bytes = dram_bytes_.load(std::memory_order_relaxed);
  u.pm_bytes = arena_.stats().pm_live_bytes.load(std::memory_order_relaxed);
  return u;
}

HartCursor::HartCursor(const Hart& hart, std::string_view start,
                       size_t batch_size)
    : hart_(hart), batch_size_(batch_size == 0 ? 1 : batch_size) {
  refill(std::string(start), /*skip_equal=*/false);
}

void HartCursor::refill(const std::string& from, bool skip_equal) {
  // Fetch one extra entry so that re-seeking from the last consumed key
  // (inclusive lower bound) can drop the duplicate.
  hart_.range(from, batch_size_ + 1, &buf_);
  pos_ = 0;
  if (skip_equal && !buf_.empty() && buf_.front().first == from)
    pos_ = 1;
}

void HartCursor::next() {
  if (!valid()) return;
  if (pos_ + 1 < buf_.size()) {
    ++pos_;
    return;
  }
  const std::string last = std::move(buf_.back().first);
  refill(last, /*skip_equal=*/true);
}

// Algorithm 3's recovery case analysis, applied to every log slot.
void Hart::replay_update_logs() {
  for (auto& ulog : root_->ep.ulogs) {
    if (ulog.pleaf == 0) continue;
    if (ulog.pnewv == 0) {
      // Crash before line 6: the old value is intact; the reserved new
      // space evaporated with the volatile reservation. Just reset.
      ulog = epalloc::UpdateLog{};
      arena_.trace_store(&ulog, sizeof(ulog));
      arena_.persist(&ulog, sizeof(ulog));
      continue;
    }
    // All three pointers valid: resume from line 7 (idempotent redo).
    auto* leaf = arena_.ptr<HartLeaf>(ulog.pleaf);
    const epalloc::ObjType new_cls = ulog.new_class();
    const epalloc::ObjType old_cls = ulog.old_class();
    ep_->commit(new_cls, ulog.pnewv);
    leaf->p_value = ulog.pnewv;
    leaf->val_len = static_cast<uint8_t>(ulog.new_len());
    leaf->val_class = value_class_tag(new_cls);
    leaf->vseq = 0;  // a crash mid-swing may have left it odd
    arena_.trace_store(leaf, sizeof(HartLeaf));
    arena_.persist(leaf, sizeof(HartLeaf));
    if (ep_->bit_is_set(old_cls, ulog.poldv))
      ep_->free_object(old_cls, ulog.poldv);
    ep_->recycle_chunk_of(old_cls, ulog.poldv);
    ulog = epalloc::UpdateLog{};
    arena_.trace_store(&ulog, sizeof(ulog));
    arena_.persist(&ulog, sizeof(ulog));
  }
}

// Algorithm 7: Recovery(HT) — rebuild the hash table and all internal
// nodes from the persistent leaf list.
void Hart::recover(unsigned threads) {
  obs::TraceSpan span("hart_recover", obs::TraceKind::kRecovery, threads);
  static obs::Counter& runs =
      obs::Registry::instance().counter("hart_recover_runs_total");
  runs.inc();
  // Retired nodes/slots hold callbacks into the trees about to be cleared
  // and the allocator state about to be rebuilt — flush them first.
  if (optimistic()) common::ebr::Domain::instance().drain();
  dir_.clear();
  count_.store(0, std::memory_order_relaxed);
  epoch_.store(root_->epoch, std::memory_order_relaxed);
  ep_->recover_structure();
  replay_update_logs();

  static obs::Counter& completed_deletes = obs::Registry::instance().counter(
      "hart_recover_completed_deletes_total");
  static obs::Counter& recommitted_values = obs::Registry::instance().counter(
      "hart_recover_recommitted_values_total");

  const HartLeafTraits traits{opts_.hash_key_len, &arena_};
  auto insert_leaf = [&](uint64_t leaf_off) {
    // Rebuild inserts can replace (and thus retire) freshly built nodes in
    // optimistic mode, so each recovery worker pins like any other writer.
    common::ebr::Guard ebr_pin(common::ebr::Domain::instance());
    auto* leaf = arena_.ptr<HartLeaf>(leaf_off);
    // Batched-metadata crash repairs. With the legacy (eager) schedule
    // neither state can arise — the old recovery asserted as much — but
    // when header persists batch onto the epoch fence, a crash between a
    // durable step and its deferred header flush leaves exactly these two
    // torn shapes:
    if (leaf->p_value == 0) {
      // An in-flight delete: the leaf's p_value clear persisted (it is
      // eager) but the header bit clears were still deferred. Complete the
      // delete — the slot is free, nothing references the value (the value
      // side, if still committed, is swept as an orphan below).
      completed_deletes.inc();
      ep_->free_object(epalloc::ObjType::kLeaf, leaf_off);
      return;
    }
    if (!ep_->bit_is_set(value_class_of(leaf), leaf->p_value)) {
      // An in-flight insert/update that reached its leaf-side commit point
      // but whose value-bit persist was still deferred: the value bytes
      // are durable (they persist eagerly, before the leaf commit), so
      // re-committing the bit finishes the operation.
      recommitted_values.inc();
      ep_->commit(value_class_of(leaf), leaf->p_value);
    }
    // Fingerprint fix-up: the DRAM-side tag is re-derived from the key
    // bytes by tree.insert below; the persisted copy is repaired here when
    // a legacy image (key_fp == 0) or corruption disagrees. Each leaf is
    // visited by exactly one recovery worker, so the plain store is safe.
    const uint8_t want_fp = art::key_fingerprint(traits.key(leaf));
    if (leaf->key_fp != want_fp) {
      leaf->key_fp = want_fp;
      arena_.trace_store(&leaf->key_fp, sizeof(leaf->key_fp));
      arena_.persist(&leaf->key_fp, sizeof(leaf->key_fp));
    }
    const uint64_t hkey = pack_hash_key(
        std::string_view(leaf->key, leaf->key_len), opts_.hash_key_len);
    HashDir::Partition* part = dir_.find_or_create(hkey);
    if (threads > 1) {
      common::WriterLock lk(part->mu);
      part->tree.insert(traits.key(leaf), leaf);
    } else {
      // Single-threaded recovery needs no locks.
      part->tree.insert(traits.key(leaf), leaf);
    }
    count_.fetch_add(1, std::memory_order_relaxed);
  };

  static obs::Counter& recovered =
      obs::Registry::instance().counter("hart_recovered_leaves_total");
  if (threads <= 1) {
    ep_->for_each_live(epalloc::ObjType::kLeaf, insert_leaf);
  } else {
    // Parallel recovery (extension): shard the leaf chunks across workers.
    const std::vector<uint64_t> chunks =
        ep_->chunk_offsets(epalloc::ObjType::kLeaf);
    const auto& geom = ep_->geom(epalloc::ObjType::kLeaf);
    std::vector<std::thread> pool;
    std::atomic<size_t> next{0};
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= chunks.size()) return;
          const auto* c = arena_.ptr<epalloc::MemChunk>(chunks[i]);
          uint64_t bm = epalloc::ChunkHdr::bitmap(c->header);
          while (bm != 0) {
            const auto idx = static_cast<uint32_t>(std::countr_zero(bm));
            bm &= bm - 1;
            insert_leaf(geom.object_off(chunks[i], idx));
          }
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  recovered.add(count_.load(std::memory_order_relaxed));

  sweep_orphaned_values();
  // Every repair above must be durable before recovery is declared done —
  // a crash right after recover() must not resurrect the repaired states.
  ep_->flush_metadata(root_->epoch);
}

// Reachability sweep over the value lists (batched-metadata crash repair).
// A crash can leave a committed value referenced by no leaf slot at all:
// e.g. a delete whose value-bit clear was deferred while the (eager)
// p_value clear persisted. Free those. Values referenced only by a *free*
// leaf slot (a dangling ref) are deliberately kept committed — that is the
// pre-existing pending-reclamation state the stale-value probe reclaims
// lazily on slot reuse (Alg. 2 lines 12-16), and legacy crash images rely
// on it. On a legacy (eager-metadata) image every committed value is
// referenced somewhere, so this sweep is a no-op.
void Hart::sweep_orphaned_values() {
  static obs::Counter& orphans_freed = obs::Registry::instance().counter(
      "hart_recover_orphan_values_total");
  std::unordered_set<uint64_t> referenced;
  const auto& lg = ep_->geom(epalloc::ObjType::kLeaf);
  for (const uint64_t c_off :
       ep_->chunk_offsets(epalloc::ObjType::kLeaf)) {
    for (uint32_t i = 0; i < epalloc::kObjectsPerChunk; ++i) {
      const auto* leaf = arena_.ptr<HartLeaf>(lg.object_off(c_off, i));
      if (leaf->p_value != 0) referenced.insert(leaf->p_value);
    }
  }
  for (int t = 1; t < epalloc::kNumObjTypes; ++t) {
    const auto cls = static_cast<epalloc::ObjType>(t);
    std::vector<uint64_t> orphans;
    ep_->for_each_live(cls, [&](uint64_t off) {
      if (!referenced.contains(off)) orphans.push_back(off);
    });
    for (const uint64_t off : orphans) {
      orphans_freed.inc();
      ep_->free_object(cls, off);
    }
  }
}

}  // namespace hart::core
