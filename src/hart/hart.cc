#include "hart/hart.h"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"

namespace hart::core {

namespace {
constexpr uint64_t kHartMagic = kHartRootMagic;

size_t value_object_size(epalloc::ObjType t) {
  return epalloc::value_class_size(t);
}
}  // namespace

Hart::Options Hart::resolve_options(pmem::Arena& arena, Options opts) {
  const auto* root = arena.root<HartRoot>();
  if (root->magic == kHartMagic) {
    // Reopening an existing HART: kh is a structural parameter recorded in
    // the root (the split of every persisted key depends on it).
    opts.hash_key_len = root->hash_key_len;
  }
  if (opts.hash_key_len > 8)
    throw std::invalid_argument("hash_key_len must be <= 8");
  if ((opts.hash_buckets & (opts.hash_buckets - 1)) != 0)
    throw std::invalid_argument("hash_buckets must be a power of two");
  return opts;
}

Hart::Hart(pmem::Arena& arena, Options opts)
    : arena_(arena),
      opts_(resolve_options(arena, opts)),
      root_(arena.root<HartRoot>()),
      ep_(arena, &root_->ep, sizeof(HartLeaf), &hart_leaf_probe,
          &hart_leaf_clear),
      dir_(opts_.hash_buckets,
           HartLeafTraits{opts_.hash_key_len, &arena},
           &dram_bytes_) {
  if (root_->magic == kHartMagic) {
    recover();
  } else {
    *root_ = HartRoot{};
    root_->hash_key_len = opts_.hash_key_len;
    root_->magic = kHartMagic;
    arena_.persist(root_, sizeof(HartRoot));
  }
}

void Hart::validate_key(std::string_view key) {
  if (key.empty() || key.size() > common::kMaxKeyLen)
    throw std::invalid_argument("key length must be 1..24 bytes");
  if (std::memchr(key.data(), 0, key.size()) != nullptr)
    throw std::invalid_argument("keys must not contain NUL bytes");
}

void Hart::validate_value(std::string_view value) {
  if (value.empty() || value.size() > common::kMaxValueLen)
    throw std::invalid_argument("value length must be 1..64 bytes");
}

// Algorithm 1: Insertion(K, V, HT).
bool Hart::insert(std::string_view key, std::string_view value) {
  validate_key(key);
  validate_value(value);
  const uint64_t hkey = pack_hash_key(key, opts_.hash_key_len);
  // Lines 2-5: locate the ART, creating one if absent.
  HashDir::Partition* part = dir_.find_or_create(hkey);
  std::unique_lock lk(part->mu);

  // Line 6-8: if the key exists, this is an update.
  const art::Key akey = art_key(key);
  if (HartLeaf* existing = part->tree.search(akey); existing != nullptr) {
    update_locked(existing, value);
    return false;
  }

  // Lines 10-11: allocate the leaf and the value object.
  const uint64_t leaf_off = ep_.ep_malloc(epalloc::ObjType::kLeaf);
  const epalloc::ObjType vcls = value_class_for(value.size());
  const uint64_t val_off = ep_.ep_malloc(vcls);

  // Line 12: value = V; persistent(value).
  char* vp = arena_.ptr<char>(val_off);
  std::memcpy(vp, value.data(), value.size());
  std::memset(vp + value.size(), 0, value_object_size(vcls) - value.size());
  arena_.trace_store(vp, value_object_size(vcls));
  arena_.persist(vp, value_object_size(vcls));

  // Line 13: leaf.p_value = &value; persistent(). The value's class tag
  // and length are flushed in the same step (they sit next to p_value at
  // the leaf tail): the stale-value probe and the verifier interpret
  // p_value through val_class, so the tag must never be persisted *after*
  // the value bit — a crash in between would leave a dangling value whose
  // chunk geometry would be derived from a stale class.
  auto* leaf = arena_.ptr<HartLeaf>(leaf_off);
  leaf->val_len = static_cast<uint8_t>(value.size());
  leaf->val_class = value_class_tag(vcls);
  leaf->p_value = val_off;
  arena_.trace_store(&leaf->val_len,
                     sizeof(HartLeaf) - offsetof(HartLeaf, val_len));
  arena_.persist(&leaf->val_len,
                 sizeof(HartLeaf) - offsetof(HartLeaf, val_len));

  // Line 14: set + persist the value bit.
  ep_.commit(vcls, val_off);

  // Lines 15-16: the complete key and its length into the leaf.
  std::memcpy(leaf->key, key.data(), key.size());
  leaf->key_len = static_cast<uint8_t>(key.size());
  arena_.trace_store(leaf->key, key.size());
  arena_.trace_store(&leaf->key_len, sizeof(leaf->key_len));
  arena_.persist(leaf, sizeof(HartLeaf));

  // Line 17: Insert2Tree — DRAM only, no persistence needed (selective
  // consistency: internal nodes are reconstructable).
  HartLeafTraits traits{opts_.hash_key_len, &arena_};
  part->tree.insert(traits.key(leaf), leaf);

  // Line 18: set + persist the leaf bit — the commit point.
  ep_.commit(epalloc::ObjType::kLeaf, leaf_off);
  count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// Algorithm 3: Update(K, V, L) — out-of-place with the update micro-log.
void Hart::update_locked(HartLeaf* leaf, std::string_view value) {
  validate_value(value);
  const uint64_t leaf_off = arena_.off(leaf);
  const uint64_t old_off = leaf->p_value;
  const epalloc::ObjType old_cls = value_class_of(leaf);
  const epalloc::ObjType new_cls = value_class_for(value.size());

  epalloc::UpdateLog* ulog = ep_.acquire_ulog();
  // Lines 2-3: record the leaf and its old value in the log. The two words
  // share a cache line and stores are program-ordered, so one flush
  // suffices (recovery treats {pleaf} and {pleaf, poldv} identically: both
  // reset the log when pnewv is absent).
  ulog->pleaf = leaf_off;
  ulog->poldv = old_off;
  arena_.trace_store(&ulog->pleaf, 2 * sizeof(uint64_t));
  arena_.persist(&ulog->pleaf, 2 * sizeof(uint64_t));

  // Lines 4-5: write the new value into freshly allocated space.
  const uint64_t new_off = ep_.ep_malloc(new_cls);
  char* vp = arena_.ptr<char>(new_off);
  std::memcpy(vp, value.data(), value.size());
  std::memset(vp + value.size(), 0, value_object_size(new_cls) - value.size());
  arena_.trace_store(vp, value_object_size(new_cls));
  arena_.persist(vp, value_object_size(new_cls));

  // Line 6: PNewV plus our meta word. Both live in the same log line and
  // stores are program-ordered, so one flush suffices: a persisted PNewV
  // implies a persisted meta.
  ulog->meta = epalloc::UpdateLog::pack_meta(
      static_cast<uint32_t>(value.size()), old_cls, new_cls);
  ulog->pnewv = new_off;
  arena_.trace_store(&ulog->pnewv, 2 * sizeof(uint64_t));
  arena_.persist(&ulog->pnewv, 2 * sizeof(uint64_t));  // pnewv + meta

  // Line 7: set the bit for the new value.
  ep_.commit(new_cls, new_off);

  // Line 8: swing the value pointer and its metadata in the leaf — they
  // are adjacent at the leaf tail, one flush covers them.
  leaf->val_len = static_cast<uint8_t>(value.size());
  leaf->val_class = value_class_tag(new_cls);
  leaf->p_value = new_off;
  arena_.trace_store(&leaf->val_len,
                     sizeof(HartLeaf) - offsetof(HartLeaf, val_len));
  arena_.persist(&leaf->val_len,
                 sizeof(HartLeaf) - offsetof(HartLeaf, val_len));

  // Lines 9-10: release the old value, recycle its chunk if empty.
  ep_.free_object(old_cls, old_off);
  ep_.recycle_chunk_of(old_cls, old_off);

  // Line 11: LogReclaim.
  ep_.reclaim_ulog(ulog);
}

bool Hart::update(std::string_view key, std::string_view value) {
  validate_key(key);
  validate_value(value);
  HashDir::Partition* part =
      dir_.find(pack_hash_key(key, opts_.hash_key_len));
  if (part == nullptr) return false;
  std::unique_lock lk(part->mu);
  HartLeaf* leaf = part->tree.search(art_key(key));
  if (leaf == nullptr) return false;
  update_locked(leaf, value);
  return true;
}

// Algorithm 4: Search(K, HT).
bool Hart::search(std::string_view key, std::string* out) const {
  validate_key(key);
  HashDir::Partition* part =
      dir_.find(pack_hash_key(key, opts_.hash_key_len));
  if (part == nullptr) return false;
  std::shared_lock lk(part->mu);
  const HartLeaf* leaf = part->tree.search(art_key(key));
  if (leaf == nullptr) return false;
  // Line 9: validate the leaf bit in the chunk bitmap.
  if (!ep_.bit_probe(epalloc::ObjType::kLeaf, arena_.off(leaf)))
    return false;
  const char* vp = arena_.ptr<char>(leaf->p_value);
  arena_.pm_read(vp, value_object_size(value_class_of(leaf)));
  if (out != nullptr) out->assign(vp, leaf->val_len);
  return true;
}

// Algorithm 5: Deletion(K, HT).
bool Hart::remove(std::string_view key) {
  validate_key(key);
  HashDir::Partition* part =
      dir_.find(pack_hash_key(key, opts_.hash_key_len));
  if (part == nullptr) return false;
  std::unique_lock lk(part->mu);
  // Lines 5-9: locate and unlink the leaf from the (DRAM) tree.
  HartLeaf* leaf = part->tree.remove(art_key(key));
  if (leaf == nullptr) return false;
  const uint64_t leaf_off = arena_.off(leaf);
  const uint64_t val_off = leaf->p_value;
  const epalloc::ObjType vcls = value_class_of(leaf);

  // Lines 11-12: reset the leaf bit, then the value bit. A crash in
  // between leaves a dangling committed value that EPMalloc's stale-value
  // check reclaims when the leaf slot is reused (Alg. 2 lines 12-16).
  //
  // Deviation from the paper's Algorithm 5 (documented in DESIGN.md): the
  // freed leaf's p_value is additionally cleared once both bits are reset.
  // Otherwise, after the freed value slot is re-allocated to another key,
  // a reuse of this leaf slot would see p_value -> live value with its bit
  // set and Alg. 2's stale-value check would reclaim the *new* owner's
  // value. All three steps happen atomically w.r.t. leaf reservations.
  ep_.free_leaf_with_value(leaf_off, vcls, val_off);

  // Lines 13-14: recycle now-empty chunks.
  ep_.recycle_chunk_of(vcls, val_off);
  ep_.recycle_chunk_of(epalloc::ObjType::kLeaf, leaf_off);

  // Lines 15-16: free the ART if it became empty (internal nodes were
  // already collapsed away by the tree removal).
  count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

size_t Hart::range(
    std::string_view lo, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) const {
  validate_key(lo);
  out->clear();
  if (limit == 0) return 0;
  const uint64_t hlo = pack_hash_key(lo, opts_.hash_key_len);
  dir_.for_each_partition_from(hlo, [&](HashDir::Partition* part) {
    std::shared_lock lk(part->mu);
    auto emit = [&](HartLeaf* leaf) {
      if (!ep_.bit_probe(epalloc::ObjType::kLeaf, arena_.off(leaf)))
        return true;
      const char* vp = arena_.ptr<char>(leaf->p_value);
      arena_.pm_read(vp, value_object_size(value_class_of(leaf)));
      out->emplace_back(std::string(leaf->key, leaf->key_len),
                        std::string(vp, leaf->val_len));
      return out->size() < limit;
    };
    return part->hkey == hlo ? part->tree.for_each_from(art_key(lo), emit)
                             : part->tree.for_each(emit);
  });
  return out->size();
}

size_t Hart::multi_get(const std::vector<std::string>& keys,
                       std::vector<std::string>* out,
                       std::vector<bool>* found) const {
  out->assign(keys.size(), std::string());
  found->assign(keys.size(), false);
  // Group request indices by partition so each ART lock is taken once.
  std::unordered_map<HashDir::Partition*, std::vector<size_t>> groups;
  for (size_t i = 0; i < keys.size(); ++i) {
    validate_key(keys[i]);
    HashDir::Partition* part =
        dir_.find(pack_hash_key(keys[i], opts_.hash_key_len));
    if (part != nullptr) groups[part].push_back(i);
  }
  size_t hits = 0;
  for (auto& [part, idxs] : groups) {
    std::shared_lock lk(part->mu);
    for (const size_t i : idxs) {
      const HartLeaf* leaf = part->tree.search(art_key(keys[i]));
      if (leaf == nullptr ||
          !ep_.bit_probe(epalloc::ObjType::kLeaf, arena_.off(leaf)))
        continue;
      const char* vp = arena_.ptr<char>(leaf->p_value);
      arena_.pm_read(vp, value_object_size(value_class_of(leaf)));
      (*out)[i].assign(vp, leaf->val_len);
      (*found)[i] = true;
      ++hits;
    }
  }
  return hits;
}

uint64_t Hart::flush_epoch() {
  // One persistent() call per batch: the stamped counter changes every
  // time, so the fence is never a redundant persist, and its completion
  // point is the batch's commit point (each op persisted its own data
  // before returning; this is the amortized final fence).
  obs::TraceSpan span("epoch_fence", obs::TraceKind::kFence);
  const uint64_t e = epoch_.load(std::memory_order_relaxed) + 1;
  root_->epoch = e;
  arena_.trace_store(&root_->epoch, sizeof(root_->epoch));
  arena_.persist(&root_->epoch, sizeof(root_->epoch));
  epoch_.store(e, std::memory_order_release);
  static obs::Counter& fences =
      obs::Registry::instance().counter("hart_fence_total");
  fences.inc();
  return e;
}

void Hart::quiesce() {
  dir_.for_each_partition([](HashDir::Partition* part) {
    std::unique_lock lk(part->mu);
    return true;
  });
}

common::MemoryUsage Hart::memory_usage() const {
  common::MemoryUsage u;
  u.dram_bytes = dram_bytes_.load(std::memory_order_relaxed);
  u.pm_bytes = arena_.stats().pm_live_bytes.load(std::memory_order_relaxed);
  return u;
}

HartCursor::HartCursor(const Hart& hart, std::string_view start,
                       size_t batch_size)
    : hart_(hart), batch_size_(batch_size == 0 ? 1 : batch_size) {
  refill(std::string(start), /*skip_equal=*/false);
}

void HartCursor::refill(const std::string& from, bool skip_equal) {
  // Fetch one extra entry so that re-seeking from the last consumed key
  // (inclusive lower bound) can drop the duplicate.
  hart_.range(from, batch_size_ + 1, &buf_);
  pos_ = 0;
  if (skip_equal && !buf_.empty() && buf_.front().first == from)
    pos_ = 1;
}

void HartCursor::next() {
  if (!valid()) return;
  if (pos_ + 1 < buf_.size()) {
    ++pos_;
    return;
  }
  const std::string last = std::move(buf_.back().first);
  refill(last, /*skip_equal=*/true);
}

// Algorithm 3's recovery case analysis, applied to every log slot.
void Hart::replay_update_logs() {
  for (auto& ulog : root_->ep.ulogs) {
    if (ulog.pleaf == 0) continue;
    if (ulog.pnewv == 0) {
      // Crash before line 6: the old value is intact; the reserved new
      // space evaporated with the volatile reservation. Just reset.
      ulog = epalloc::UpdateLog{};
      arena_.trace_store(&ulog, sizeof(ulog));
      arena_.persist(&ulog, sizeof(ulog));
      continue;
    }
    // All three pointers valid: resume from line 7 (idempotent redo).
    auto* leaf = arena_.ptr<HartLeaf>(ulog.pleaf);
    const epalloc::ObjType new_cls = ulog.new_class();
    const epalloc::ObjType old_cls = ulog.old_class();
    ep_.commit(new_cls, ulog.pnewv);
    leaf->p_value = ulog.pnewv;
    leaf->val_len = static_cast<uint8_t>(ulog.new_len());
    leaf->val_class = value_class_tag(new_cls);
    arena_.trace_store(leaf, sizeof(HartLeaf));
    arena_.persist(leaf, sizeof(HartLeaf));
    if (ep_.bit_is_set(old_cls, ulog.poldv))
      ep_.free_object(old_cls, ulog.poldv);
    ep_.recycle_chunk_of(old_cls, ulog.poldv);
    ulog = epalloc::UpdateLog{};
    arena_.trace_store(&ulog, sizeof(ulog));
    arena_.persist(&ulog, sizeof(ulog));
  }
}

// Algorithm 7: Recovery(HT) — rebuild the hash table and all internal
// nodes from the persistent leaf list.
void Hart::recover(unsigned threads) {
  obs::TraceSpan span("hart_recover", obs::TraceKind::kRecovery, threads);
  static obs::Counter& runs =
      obs::Registry::instance().counter("hart_recover_runs_total");
  runs.inc();
  dir_.clear();
  count_.store(0, std::memory_order_relaxed);
  epoch_.store(root_->epoch, std::memory_order_relaxed);
  ep_.recover_structure();
  replay_update_logs();

  const HartLeafTraits traits{opts_.hash_key_len, &arena_};
  auto insert_leaf = [&](uint64_t leaf_off) {
    auto* leaf = arena_.ptr<HartLeaf>(leaf_off);
    assert(ep_.bit_is_set(value_class_of(leaf), leaf->p_value));
    const uint64_t hkey = pack_hash_key(
        std::string_view(leaf->key, leaf->key_len), opts_.hash_key_len);
    HashDir::Partition* part = dir_.find_or_create(hkey);
    std::unique_lock lk(part->mu, std::defer_lock);
    if (threads > 1) lk.lock();  // single-threaded recovery needs no locks
    part->tree.insert(traits.key(leaf), leaf);
    count_.fetch_add(1, std::memory_order_relaxed);
  };

  static obs::Counter& recovered =
      obs::Registry::instance().counter("hart_recovered_leaves_total");
  if (threads <= 1) {
    ep_.for_each_live(epalloc::ObjType::kLeaf, insert_leaf);
    recovered.add(count_.load(std::memory_order_relaxed));
    return;
  }

  // Parallel recovery (extension): shard the leaf chunks across workers.
  const std::vector<uint64_t> chunks =
      ep_.chunk_offsets(epalloc::ObjType::kLeaf);
  const auto& geom = ep_.geom(epalloc::ObjType::kLeaf);
  std::vector<std::thread> pool;
  std::atomic<size_t> next{0};
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= chunks.size()) return;
        const auto* c = arena_.ptr<epalloc::MemChunk>(chunks[i]);
        uint64_t bm = epalloc::ChunkHdr::bitmap(c->header);
        while (bm != 0) {
          const auto idx = static_cast<uint32_t>(std::countr_zero(bm));
          bm &= bm - 1;
          insert_leaf(geom.object_off(chunks[i], idx));
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  recovered.add(count_.load(std::memory_order_relaxed));
}

}  // namespace hart::core
