// Offline integrity verifier ("fsck") for a HART persistent-memory image.
//
// Walks the raw persistent structures — chunk lists, bitmaps, leaves,
// values, micro-logs — and checks every invariant the recovery path relies
// on, without mutating anything. Useful after a crash, in tests (the crash
// sweeps assert a clean report), and as executable documentation of the
// on-PM format.
//
// Checked invariants:
//   V1  the root carries the HART magic and a sane hash_key_len;
//   V2  every chunk list is acyclic, in-bounds, stride-aligned, and chunk
//       headers have a consistent full-indicator / bitmap / hint;
//   V3  every live leaf has a well-formed key (1..24 bytes, no NUL) and a
//       well-formed value reference (in a chunk of the recorded class,
//       with the value bit set);
//   V4  no two live leaves share a value object, and no live value object
//       is unreferenced (leak check at the object level — dangling
//       committed values are reported as benign pending reclamations when
//       referenced by a *free* leaf slot, V5);
//   V5  stale value references from free leaf slots point at either a
//       cleared-bit slot or a committed value pending lazy reclamation;
//   V6  micro-logs are either empty or internally consistent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pmem/arena.h"

namespace hart::core {

struct VerifyIssue {
  enum class Severity { kError, kWarning };
  Severity severity;
  std::string what;
};

struct VerifyReport {
  std::vector<VerifyIssue> issues;
  uint64_t live_leaves = 0;
  uint64_t live_values = 0;
  uint64_t chunks = 0;
  uint64_t pending_reclamations = 0;  // benign dangling values (V5)

  [[nodiscard]] bool ok() const {
    for (const auto& i : issues)
      if (i.severity == VerifyIssue::Severity::kError) return false;
    return true;
  }
  [[nodiscard]] std::string summary() const;
};

/// Verify the HART image in `arena`. Read-only; safe on any arena, even a
/// corrupted one (structural walks are bounds-checked and cycle-guarded).
VerifyReport verify_hart_image(const pmem::Arena& arena);

}  // namespace hart::core
