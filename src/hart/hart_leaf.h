// HART's persistent leaf node (paper Fig. 1 / Fig. 3).
//
// Only leaf nodes (and value objects) live in PM; the complete key is stored
// in the leaf "for the purpose of failure recovery" (Section III.A.1) even
// though the ART path already encodes it. The value is out-of-leaf: the
// leaf holds an 8-byte pointer (arena offset) to a value object in one of
// the two EPallocator value size classes, which is what enables
// variable-size values (Section III.A.5).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/index.h"
#include "epalloc/allocator.h"
#include "pmem/arena.h"

namespace hart::core {

struct HartLeaf {
  char key[common::kMaxKeyLen];       // complete key (hash prefix + ART key)
  uint8_t key_len;                    // 1..24
  uint8_t val_len;                    // 1..64
  uint8_t val_class;                  // value class tag: 0/1/2/3 = 8/16/32/64 B
  // One-byte fingerprint of the leaf's ART key (FPTree-style; never 0 when
  // set, 0 = unset/legacy image). Written with the rest of the tail before
  // the insert's leaf persist, so it needs no extra flush; recovery
  // re-derives the DRAM-side fingerprint tags from it (or from the key
  // bytes, fixing the persisted copy lazily if a legacy image has 0 here).
  uint8_t key_fp;
  // Value seqlock for lock-free readers: odd while an in-place update swings
  // the tail (val_len/val_class/p_value), even when stable. Purely a runtime
  // protocol — recovery ignores it (replay re-derives the tail from logs).
  uint32_t vseq;
  // The value pointer and its metadata sit together at the leaf's tail so
  // an update can refresh all of them with a single flush (Alg. 3 line 8).
  uint64_t p_value;                   // arena offset of the value object
};
static_assert(sizeof(HartLeaf) == 40);
static_assert(offsetof(HartLeaf, vseq) % alignof(uint32_t) == 0);
static_assert(std::is_trivially_copyable_v<HartLeaf>);

inline epalloc::ObjType value_class_for(size_t len) {
  return epalloc::value_class_for_len(len);
}
inline uint8_t value_class_tag(epalloc::ObjType t) {
  return static_cast<uint8_t>(t) - 1;  // 0..3 for the four value classes
}
inline epalloc::ObjType value_class_of(const HartLeaf* l) {
  return static_cast<epalloc::ObjType>(l->val_class + 1);
}

/// EPallocator stale-value probe (Algorithm 2, lines 12-16): a free leaf
/// slot handed out by EPMalloc may still reference a value committed by a
/// prior incomplete insertion or deletion.
inline epalloc::LeafValueRef hart_leaf_probe(
    const pmem::Arena& arena, uint64_t leaf_off) {
  const auto* l = arena.ptr<HartLeaf>(leaf_off);
  epalloc::LeafValueRef ref;
  ref.value_off = l->p_value;
  ref.cls = value_class_of(l);
  return ref;
}

inline void hart_leaf_clear(pmem::Arena& arena, uint64_t leaf_off) {
  auto* l = arena.ptr<HartLeaf>(leaf_off);
  // Atomic store: an optimistic reader may race this clear; p_value == 0
  // is its "leaf deleted" signal.
  std::atomic_ref<uint64_t>(l->p_value)
      .store(0, std::memory_order_release);  // p_value = NULL (Alg. 2 l.16)
  arena.trace_store(&l->p_value, sizeof(l->p_value));
  arena.persist(&l->p_value, sizeof(l->p_value));
}

}  // namespace hart::core
