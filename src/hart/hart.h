// HART — Hash-assisted Adaptive Radix Tree (the paper's contribution).
//
// Structure (paper Fig. 1): a DRAM hash table maps the first kh bytes of a
// key to an ART whose internal nodes live in DRAM and whose leaf nodes live
// in PM, managed by EPallocator. Selective consistency/persistence
// (Section III.A.2): only leaves and values are persisted; the hash table
// and all internal nodes are reconstructable from the leaves (Algorithm 7).
// Writers take one writer lock per ART (Section III.A.3); readers run
// lock-free by default via optimistic node versioning plus epoch-based
// reclamation (DESIGN.md §7), with Options::rwlock_reads restoring the
// paper's reader/writer-lock read path as an ablation.
#pragma once

#include <atomic>
#include <memory>
#include <string_view>

#include "common/ebr.h"
#include "common/index.h"
#include "epalloc/allocator.h"
#include "hart/hash_dir.h"
#include "hart/hart_leaf.h"
#include "pmem/arena.h"

namespace hart::core {

/// Signature of a HART root in an arena ("HARTROOT").
inline constexpr uint64_t kHartRootMagic = 0x48415254'524f4f54ULL;

/// Persistent root of a HART instance, stored in the arena header. Contains
/// everything needed to recover: the EPallocator chunk lists (the leaf list
/// is the recovery index) and the micro-logs.
struct HartRoot {
  uint64_t magic;
  uint32_t hash_key_len;
  uint32_t reserved;
  /// Group-commit epoch stamp (see flush_epoch()). Monotone; persisted by
  /// the epoch fence, so after recovery it lower-bounds the number of
  /// completed commit epochs.
  uint64_t epoch;
  epalloc::EPRoot ep;
};

class Hart final : public common::Index {
 public:
  struct Options {
    /// kh: number of key bytes consumed by the hash table (paper default 2;
    /// 0 degenerates to a single ART — the "no hash assist" ablation).
    uint32_t hash_key_len = 2;
    /// Bucket count of the DRAM hash table (power of two).
    size_t hash_buckets = size_t{1} << 16;
    /// Ablation: take the paper's per-ART reader/writer lock on the read
    /// side (Section III.A.3) instead of the optimistic lock-free read
    /// path. Reads then never retry, but serialize against writers; node
    /// and slot frees become eager (no EBR deferral).
    bool rwlock_reads = false;
    /// One-byte key fingerprints (FPTree-style) in every tagged leaf
    /// pointer, checked before the leaf's PM key bytes are read — misses
    /// and hash-collision probes skip PM entirely. The persisted copy
    /// lives in HartLeaf::key_fp (written with the leaf tail, no extra
    /// flush); recovery rebuilds the DRAM tags from the key bytes. Off is
    /// the ablation baseline.
    bool fingerprints = true;
    /// PM allocator selection: striped vs legacy, stripe count, and whether
    /// chunk-header persists batch onto the flush_epoch() fence. Bare Hart
    /// embedders default to eager metadata persists (per-op durability, as
    /// the crash tests require); the service turns batching on because its
    /// acks already wait for the epoch fence.
    epalloc::AllocOptions alloc;
  };

  /// Opens a HART on `arena`. A fresh arena is initialized; an arena whose
  /// root carries a valid HART signature is recovered (Algorithm 7).
  explicit Hart(pmem::Arena& arena) : Hart(arena, Options{}) {}
  Hart(pmem::Arena& arena, Options opts);
  /// Drains the EBR domain: every node/slot this Hart retired is freed
  /// before the trees and allocator state go away.
  ~Hart() override;

  // ---- common::Index -----------------------------------------------------
  common::Status insert(std::string_view key, std::string_view value) override;
  common::Status search(std::string_view key, std::string* out) const override;
  common::Status update(std::string_view key, std::string_view value) override;
  common::Status remove(std::string_view key) override;
  size_t range(std::string_view lo, size_t limit,
               std::vector<std::pair<std::string, std::string>>* out)
      const override;
  size_t size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  common::MemoryUsage memory_usage() const override;
  const char* name() const override { return "HART"; }

  // ---- HART-specific -----------------------------------------------------
  /// Batched point lookups: groups the keys by hash partition and takes
  /// each ART's read lock once, amortizing lock acquisition (an extension;
  /// useful for the multi-get pattern of KV-store front ends).
  /// `out[i]` is set to the value of `keys[i]`; returns the hit count.
  /// Misses leave `out[i]` empty with `found[i] == false`.
  size_t multi_get(const std::vector<std::string>& keys,
                   std::vector<std::string>* out,
                   std::vector<bool>* found) const;

  /// Rebuild all DRAM state from PM (Algorithm 7). Invoked automatically
  /// when the constructor finds an existing HART in the arena; exposed for
  /// the recovery experiment (Fig. 10c) and crash tests.
  ///
  /// `threads > 1` distributes the leaf chunks over worker threads (an
  /// extension beyond the paper — safe because partition creation is
  /// lock-free and every tree insert takes its partition's write lock).
  void recover(unsigned threads = 1);

  /// Group-commit epoch fence (the service layer's batching hook): flushes
  /// the allocator's deferred chunk-header persists (Allocator::
  /// flush_metadata — a no-op unless Options::alloc.batched_meta), then
  /// stamps and persists the root's epoch counter with ONE persistent()
  /// call and returns the new epoch. Every operation that returned before
  /// this call is durable once flush_epoch() returns — each op already
  /// persists its own data, so the fence is the per-batch "final fence"
  /// that a real PM group commit would amortize (one fence per batch
  /// instead of per op). Callers must serialize calls per Hart (one
  /// committer thread).
  uint64_t flush_epoch();
  /// The last epoch returned by flush_epoch() (0 before the first fence).
  [[nodiscard]] uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Drain: acquire and release every partition's write lock, so every
  /// operation that was in flight when quiesce() was called has completed
  /// (and any later operation observes all of them). Used by the service
  /// layer's graceful shutdown before closing the arena.
  void quiesce();

  /// Enumerate the full key of every live leaf straight from the
  /// EPallocator's chunk lists (no tree descent; unordered). Used by the
  /// service layer to rebuild per-shard Bloom filters after recovery.
  /// Requires quiescence (no concurrent writers), same as recover().
  template <class F>
  void for_each_key(F&& fn) const {
    ep_->for_each_live(epalloc::ObjType::kLeaf, [&](uint64_t off) {
      const auto* leaf = arena_.ptr<HartLeaf>(off);
      fn(std::string_view(leaf->key, leaf->key_len));
    });
  }

  [[nodiscard]] uint32_t hash_key_len() const { return opts_.hash_key_len; }
  [[nodiscard]] size_t partition_count() const {
    return dir_.partition_count();
  }
  [[nodiscard]] epalloc::Allocator& allocator() { return *ep_; }
  [[nodiscard]] const epalloc::Allocator& allocator() const { return *ep_; }
  [[nodiscard]] pmem::Arena& arena() { return arena_; }

 private:
  static Options resolve_options(pmem::Arena& arena, Options opts);
  [[nodiscard]] art::Key art_key(std::string_view key) const {
    const size_t h =
        opts_.hash_key_len < key.size() ? opts_.hash_key_len : key.size();
    return {reinterpret_cast<const uint8_t*>(key.data()) + h,
            key.size() - h};
  }
  /// Algorithm 3 (out-of-place update with the update micro-log). The
  /// partition's write lock must be held, and in optimistic mode the caller
  /// must be pinned (the superseded value slot is retired through EBR).
  /// kOk on success; kOutOfMemory when the new value cannot be allocated
  /// (the old value is untouched and the log is reclaimed).
  common::Status update_locked(HartLeaf* leaf, std::string_view value)
      REQUIRES_EBR_PIN;
  /// Redo/abort in-flight updates after a crash (Algorithm 3's recovery
  /// case analysis).
  void replay_update_logs();
  /// Free committed values no leaf slot references (batched-metadata crash
  /// repair; a no-op on eager-metadata images). Runs after the leaf walk.
  void sweep_orphaned_values();

  // ---- optimistic read path (ISSUE 5 tentpole) --------------------------
  /// True when the lock-free read path (and hence EBR deferral) is active.
  [[nodiscard]] bool optimistic() const { return !opts_.rwlock_reads; }
  /// Reads the leaf's value under its vseq seqlock. Returns 1 on success
  /// (out filled), 0 when the leaf is deleted (p_value == 0), -1 when the
  /// read raced an update and the caller should retry or fall back.
  int read_leaf_value_optimistic(const HartLeaf* leaf,
                                 std::string* out) const;
  /// Defer reuse of a freed PM slot until the reader grace period elapses.
  void retire_slot(epalloc::ObjType cls, uint64_t off) REQUIRES_EBR_PIN;
  static void retire_slot_cb(void* packed, void* self);

  pmem::Arena& arena_;
  Options opts_;
  HartRoot* root_;
  std::unique_ptr<epalloc::Allocator> ep_;
  std::atomic<uint64_t> dram_bytes_{0};
  HashDir dir_;
  std::atomic<size_t> count_{0};
  std::atomic<uint64_t> epoch_{0};
};

/// Ordered stateful scan over a Hart (an extension beyond the paper's
/// one-shot range query). Batches entries internally and re-seeks between
/// batches, so it holds no lock while the caller consumes entries.
/// Concurrent-writer semantics are read-committed per batch: entries
/// inserted or removed mid-scan may or may not be observed.
class HartCursor {
 public:
  HartCursor(const Hart& hart, std::string_view start,
             size_t batch_size = 256);

  [[nodiscard]] bool valid() const { return pos_ < buf_.size(); }
  [[nodiscard]] const std::string& key() const { return buf_[pos_].first; }
  [[nodiscard]] const std::string& value() const {
    return buf_[pos_].second;
  }
  /// Advance; refills the batch transparently. After the last entry,
  /// valid() becomes false.
  void next();

 private:
  void refill(const std::string& from, bool skip_equal);

  const Hart& hart_;
  size_t batch_size_;
  std::vector<std::pair<std::string, std::string>> buf_;
  size_t pos_ = 0;
};

}  // namespace hart::core
