// HART's DRAM hash table (paper Fig. 1): maps the first kh bytes of a key
// (the "hash key") to the ART indexing the remaining bytes. One
// reader/writer lock per ART gives HART its concurrency (Section III.A.3):
// writes on different ARTs proceed in parallel, reads share.
//
// Implementation notes:
//  * The bucket array is fixed at construction; chains grow by lock-free
//    CAS pushes. Partitions are never deallocated (when an ART becomes
//    empty, Alg. 5 frees the ART's nodes but the partition shell is
//    reused), so readers never race with reclamation.
//  * Hash keys are packed big-endian into a uint64 (kh <= 8), so numeric
//    order == lexicographic prefix order; a sorted directory of prefixes is
//    maintained on the side (partition creation is rare) to support
//    HART's ordered range scan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "art/art_tree.h"
#include "common/annotations.h"
#include "hart/hart_leaf.h"
#include "obs/counters.h"

namespace hart::core {

/// ART leaf traits: the ART key is the part of the leaf's full key after
/// the hash prefix. Reading a leaf's key touches PM, so it charges the PM
/// read latency (the paper's stall-cycle accounting applied on-line).
struct HartLeafTraits {
  using Leaf = HartLeaf;
  uint32_t kh = 2;
  const pmem::Arena* arena = nullptr;

  art::Key key(const Leaf* l) const {
    // Charge only the immutable key region (key bytes + key_len). The
    // mutable tail (vseq / val meta / p_value) is concurrently stored by
    // in-place updates and is read separately under the vseq seqlock;
    // including it here would race PmCheck's plain-byte shadow compare.
    if (arena != nullptr) arena->pm_read(l, offsetof(HartLeaf, val_len));
    const uint32_t h = kh < l->key_len ? kh : l->key_len;
    return {reinterpret_cast<const uint8_t*>(l->key) + h,
            static_cast<size_t>(l->key_len - h)};
  }
};

using HartArt = art::Tree<HartLeafTraits>;

/// Pack the first min(kh, len) key bytes big-endian into a uint64.
/// Keys contain no NUL bytes, so zero-padding cannot collide with a real
/// prefix and numeric order equals lexicographic order.
inline uint64_t pack_hash_key(std::string_view key, uint32_t kh) {
  uint64_t v = 0;
  const size_t n = kh < key.size() ? kh : key.size();
  for (size_t i = 0; i < n; ++i)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(key[i])) << (56 - 8 * i);
  return v;
}

class HashDir {
 public:
  struct Partition {
    Partition(uint64_t hk, HartLeafTraits traits,
              std::atomic<uint64_t>* dram_bytes,
              common::ebr::Domain* ebr = nullptr, bool fp_guard = false)
        : hkey(hk), tree(traits, dram_bytes, ebr, fp_guard) {}
    const uint64_t hkey;
    mutable common::SharedMutex mu;  // the per-ART writer (and fallback) lock
    // Deliberately not GUARDED_BY(mu): optimistic readers traverse the tree
    // with no lock at all, relying on OLC node versions + EBR instead; that
    // protocol is checked by tools/hartlint (HL003/HL004), not by TSA.
    HartArt tree;
    /// Partition-level seqlock for optimistic multi-leaf reads (range):
    /// mutators make it odd for the duration of their critical section; an
    /// optimistic walk snapshots it before and validates after, retrying
    /// (then falling back to the shared lock) on a change.
    std::atomic<uint64_t> mod_version{0};
    std::atomic<Partition*> next{nullptr};
  };

  /// `fp_guard` is forwarded to every partition ART (fingerprint-tagged
  /// leaf pointers; see art::Tree).
  HashDir(size_t bucket_count_pow2, HartLeafTraits traits,
          std::atomic<uint64_t>* dram_bytes,
          common::ebr::Domain* ebr = nullptr, bool fp_guard = false)
      : traits_(traits),
        dram_bytes_(dram_bytes),
        ebr_(ebr),
        fp_guard_(fp_guard),
        mask_(bucket_count_pow2 - 1),
        buckets_(bucket_count_pow2) {
    if (dram_bytes_ != nullptr)
      dram_bytes_->fetch_add(bucket_count_pow2 * sizeof(buckets_[0]),
                             std::memory_order_relaxed);
  }

  ~HashDir() {
    if (dram_bytes_ != nullptr)
      dram_bytes_->fetch_sub(buckets_.size() * sizeof(buckets_[0]),
                             std::memory_order_relaxed);
    clear();
  }
  HashDir(const HashDir&) = delete;
  HashDir& operator=(const HashDir&) = delete;

  /// HashFind: nullptr when no partition exists for this hash key.
  [[nodiscard]] Partition* find(uint64_t hkey) const {
    Partition* p =
        buckets_[bucket_of(hkey)].load(std::memory_order_acquire);
    while (p != nullptr && p->hkey != hkey)
      p = p->next.load(std::memory_order_acquire);
    return p;
  }

  /// HashInsert (find-or-create, lock-free CAS push on the chain).
  Partition* find_or_create(uint64_t hkey) {
    auto& head = buckets_[bucket_of(hkey)];
    Partition* p = head.load(std::memory_order_acquire);
    for (Partition* q = p; q != nullptr;
         q = q->next.load(std::memory_order_acquire))
      if (q->hkey == hkey) return q;

    auto owned =
        std::make_unique<Partition>(hkey, traits_, dram_bytes_, ebr_,
                                    fp_guard_);
    Partition* fresh = owned.get();
    for (;;) {
      fresh->next.store(p, std::memory_order_relaxed);
      if (head.compare_exchange_weak(p, fresh, std::memory_order_release,
                                     std::memory_order_acquire)) {
        if (dram_bytes_ != nullptr)
          dram_bytes_->fetch_add(sizeof(Partition),
                                 std::memory_order_relaxed);
        // HARTscope: one new hash-dir partition (ART) came into existence.
        static obs::Counter& created =
            obs::Registry::instance().counter("hart_partition_create_total");
        created.inc();
        owned.release();
        {
          common::WriterLock lk(sorted_mu_);
          sorted_.emplace(hkey, fresh);
        }
        return fresh;
      }
      // Lost the race: someone else pushed; re-scan for our key.
      for (Partition* q = p; q != nullptr;
           q = q->next.load(std::memory_order_acquire))
        if (q->hkey == hkey) return q;
    }
  }

  /// Ordered enumeration of partitions with hkey >= lo (for range scans).
  /// `f(Partition*)` returns false to stop.
  template <class F>
  void for_each_partition_from(uint64_t lo, F&& f) const {
    common::ReaderLock lk(sorted_mu_);
    for (auto it = sorted_.lower_bound(lo); it != sorted_.end(); ++it)
      if (!f(it->second)) return;
  }

  template <class F>
  void for_each_partition(F&& f) const {
    for_each_partition_from(0, std::forward<F>(f));
  }

  [[nodiscard]] size_t partition_count() const {
    common::ReaderLock lk(sorted_mu_);
    return sorted_.size();
  }

  /// Drop every partition (recovery rebuilds from scratch). Not
  /// thread-safe; callers must have exclusive access.
  void clear() {
    for (auto& head : buckets_) {
      Partition* p = head.exchange(nullptr, std::memory_order_acq_rel);
      while (p != nullptr) {
        Partition* next = p->next.load(std::memory_order_relaxed);
        if (dram_bytes_ != nullptr)
          dram_bytes_->fetch_sub(sizeof(Partition),
                                 std::memory_order_relaxed);
        delete p;
        p = next;
      }
    }
    common::WriterLock lk(sorted_mu_);
    sorted_.clear();
  }

 private:
  [[nodiscard]] size_t bucket_of(uint64_t hkey) const {
    // murmur3 finalizer: the packed prefix's entropy sits in the *top*
    // bytes, so a plain multiply-shift would discard it entirely.
    uint64_t x = hkey;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x) & mask_;
  }

  HartLeafTraits traits_;
  std::atomic<uint64_t>* dram_bytes_;
  common::ebr::Domain* ebr_;
  const bool fp_guard_;
  const size_t mask_;
  std::vector<std::atomic<Partition*>> buckets_;
  mutable common::SharedMutex sorted_mu_;
  std::map<uint64_t, Partition*> sorted_ GUARDED_BY(sorted_mu_);
};

}  // namespace hart::core
