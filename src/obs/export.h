// HARTscope exposition — render a counter snapshot plus latency
// histograms as Prometheus text format or JSON.
//
// Counters come straight from Registry::snapshot(); histograms are
// passed as named views (the caller owns the merge, e.g. hartd merges
// per-shard per-op histograms at scrape time). Histograms render as
// Prometheus summaries: quantile-labeled gauges plus _count and _sum.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "obs/counters.h"

namespace hart::obs {

/// A named histogram for exposition. `labels` is the rendered label body
/// without braces ("shard=\"0\",op=\"insert\"") or empty.
struct HistogramView {
  std::string name;
  std::string labels;
  hart::common::LatencyHistogram hist;
};

namespace detail {

inline std::string_view base_name(std::string_view metric) {
  const size_t brace = metric.find('{');
  return brace == std::string_view::npos ? metric : metric.substr(0, brace);
}

inline void append_quantile(std::string* out, const HistogramView& h,
                            const char* q, uint64_t ns) {
  char buf[64];
  *out += h.name;
  *out += "{";
  if (!h.labels.empty()) {
    *out += h.labels;
    *out += ",";
  }
  std::snprintf(buf, sizeof(buf), "quantile=\"%s\"} %llu\n", q,
                static_cast<unsigned long long>(ns));
  *out += buf;
}

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace detail

/// Prometheus text format, v0.0.4. Counters get a TYPE line per base
/// name; histograms render as summaries (quantile series + _count/_sum).
inline std::string prometheus_text(const Registry::Sample& counters,
                                   const std::vector<HistogramView>& hists) {
  std::string out;
  char buf[64];
  std::string_view last_base;
  for (const auto& [name, value] : counters) {
    const std::string_view base = detail::base_name(name);
    if (base != last_base) {
      out += "# TYPE ";
      out += base;
      out += " counter\n";
      last_base = base;
    }
    out += name;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  last_base = {};
  for (const HistogramView& h : hists) {
    if (h.name != last_base) {
      out += "# TYPE ";
      out += h.name;
      out += " summary\n";
      last_base = h.name;
    }
    const auto p = h.hist.percentiles();
    detail::append_quantile(&out, h, "0.5", p.p50_ns);
    detail::append_quantile(&out, h, "0.95", p.p95_ns);
    detail::append_quantile(&out, h, "0.99", p.p99_ns);
    detail::append_quantile(&out, h, "0.999", p.p999_ns);
    const std::string lbl = h.labels.empty() ? "" : "{" + h.labels + "}";
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(p.count));
    out += h.name + "_count" + lbl + buf;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(h.hist.sum_ns()));
    out += h.name + "_sum" + lbl + buf;
  }
  return out;
}

/// JSON: {"counters":{name:value,...},"histograms":[{...},...]}.
inline std::string json_text(const Registry::Sample& counters,
                             const std::vector<HistogramView>& hists) {
  std::string out = "{\"counters\":{";
  char buf[96];
  bool first = true;
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",",
                  detail::json_escape(name).c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":[";
  first = true;
  for (const HistogramView& h : hists) {
    const auto p = h.hist.percentiles();
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + detail::json_escape(h.name) + "\"";
    if (!h.labels.empty())
      out += ",\"labels\":\"" + detail::json_escape(h.labels) + "\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"count\":%llu,\"mean_ns\":%.1f,\"min_ns\":%llu",
                  static_cast<unsigned long long>(p.count), p.mean_ns,
                  static_cast<unsigned long long>(p.min_ns));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"p50_ns\":%llu,\"p95_ns\":%llu,\"p99_ns\":%llu",
                  static_cast<unsigned long long>(p.p50_ns),
                  static_cast<unsigned long long>(p.p95_ns),
                  static_cast<unsigned long long>(p.p99_ns));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p999_ns\":%llu,\"max_ns\":%llu}",
                  static_cast<unsigned long long>(p.p999_ns),
                  static_cast<unsigned long long>(p.max_ns));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace hart::obs
