// HARTscope trace — bounded per-thread ring buffers of typed events,
// exportable as chrome://tracing JSON.
//
// Each thread that records gets its own fixed-capacity ring (registered
// with the Tracer on first use), so recording is a single unsynchronized
// slot write — no lock, no allocation, and old events are overwritten
// when the ring wraps. The global enabled flag is a relaxed atomic load,
// so a disabled tracer costs one predictable branch per probe.
//
// Export (chrome_json()) merges every ring, sorts by timestamp and emits
// the Trace Event Format ("X" duration events / "i" instants) that
// chrome://tracing and Perfetto load directly. Export is meant to run
// after workers quiesced (hartd shutdown, bench atexit); a concurrent
// export sees a consistent-enough view for a debugging timeline but may
// tear an in-flight slot.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace hart::obs {

enum class TraceKind : uint8_t {
  kOp = 0,       // one index/service operation
  kBatch = 1,    // one group-commit batch
  kFence = 2,    // epoch fence persist
  kRecovery = 3, // recovery phase
  kPhase = 4,    // bench phase / workload cell
  kMark = 5,     // instant marker
};

inline const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kOp: return "op";
    case TraceKind::kBatch: return "batch";
    case TraceKind::kFence: return "fence";
    case TraceKind::kRecovery: return "recovery";
    case TraceKind::kPhase: return "phase";
    default: return "mark";
  }
}

struct TraceEvent {
  uint64_t ts_ns = 0;   // since Tracer epoch
  uint64_t dur_ns = 0;  // 0 = instant event
  char name[22] = {};   // NUL-terminated, truncated
  TraceKind kind = TraceKind::kMark;
  uint8_t pad = 0;
  uint32_t arg = 0;     // shard index / batch size / record count ...
  uint64_t trace_id = 0;  // 0 = unsampled; nonzero ids stitch spans
                          // across threads and processes
};

/// Single-writer bounded ring. Readers (export, tests) take a snapshot in
/// record order, oldest first; once full, each push evicts the oldest.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : ev_(capacity == 0 ? 1 : capacity) {}

  void push(const TraceEvent& e) {
    ev_[static_cast<size_t>(head_ % ev_.size())] = e;
    ++head_;
  }

  [[nodiscard]] size_t capacity() const { return ev_.size(); }
  [[nodiscard]] uint64_t pushed() const { return head_; }
  [[nodiscard]] size_t size() const {
    return head_ < ev_.size() ? static_cast<size_t>(head_) : ev_.size();
  }

  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    const size_t n = size();
    out.reserve(n);
    const uint64_t first = head_ - n;
    for (size_t i = 0; i < n; ++i)
      out.push_back(ev_[static_cast<size_t>((first + i) % ev_.size())]);
    return out;
  }

 private:
  std::vector<TraceEvent> ev_;
  uint64_t head_ = 0;
};

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }

  /// Arm tracing; subsequent record() calls land in per-thread rings of
  /// `ring_capacity` events (~48 B each). Resets any previous rings.
  void enable(size_t ring_capacity = size_t{1} << 15) {
    common::MutexLock lk(mu_);
    rings_.clear();
    ring_capacity_ = ring_capacity;
    epoch_ = std::chrono::steady_clock::now();
    ++gen_;
    on_.store(true, std::memory_order_release);
  }

  void disable() { on_.store(false, std::memory_order_release); }

  [[nodiscard]] bool enabled() const {
    return on_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since enable(); the timestamp domain of every event.
  [[nodiscard]] uint64_t now_ns() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Record one event; no-op when disabled. `start_ns` is in the now_ns()
  /// domain (capture it before the timed section, pass the duration).
  /// `trace_id` (nonzero) marks the event as part of a sampled request's
  /// distributed span tree.
  void record(const char* name, TraceKind kind, uint64_t start_ns,
              uint64_t dur_ns, uint32_t arg = 0, uint64_t trace_id = 0) {
    if (!enabled()) return;
    TraceEvent e;
    e.ts_ns = start_ns;
    e.dur_ns = dur_ns;
    e.kind = kind;
    e.arg = arg;
    e.trace_id = trace_id;
    std::snprintf(e.name, sizeof(e.name), "%s", name);
    ring()->push(e);
  }

  /// Instant marker at now.
  void mark(const char* name, TraceKind kind = TraceKind::kMark,
            uint32_t arg = 0) {
    record(name, kind, now_ns(), 0, arg);
  }

  /// Merge every ring into Trace Event Format JSON. `tid` is the ring's
  /// registration index (one lane per recording thread).
  [[nodiscard]] std::string chrome_json() const {
    struct Tagged {
      TraceEvent e;
      size_t tid;
    };
    std::vector<Tagged> all;
    {
      common::MutexLock lk(mu_);
      for (size_t t = 0; t < rings_.size(); ++t)
        for (const TraceEvent& e : rings_[t]->snapshot())
          all.push_back({e, t});
    }
    std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
      return a.e.ts_ns < b.e.ts_ns;
    });
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    char buf[320];
    for (size_t i = 0; i < all.size(); ++i) {
      const TraceEvent& e = all[i].e;
      const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
      // Sampled events carry their trace id in args (hex string: u64 ids
      // overflow JSON double precision), so exports from several
      // processes stitch into one span tree on the shared id.
      char trace_arg[40] = {};
      if (e.trace_id != 0)
        std::snprintf(trace_arg, sizeof(trace_arg),
                      ",\"trace\":\"%016llx\"",
                      static_cast<unsigned long long>(e.trace_id));
      if (e.dur_ns == 0) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                      "\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%zu,"
                      "\"args\":{\"arg\":%u%s}}",
                      i == 0 ? "" : ",", e.name, trace_kind_name(e.kind),
                      ts_us, all[i].tid, e.arg, trace_arg);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%zu,"
                      "\"args\":{\"arg\":%u%s}}",
                      i == 0 ? "" : ",", e.name, trace_kind_name(e.kind),
                      ts_us, static_cast<double>(e.dur_ns) / 1000.0,
                      all[i].tid, e.arg, trace_arg);
      }
      out += buf;
    }
    out += "]}";
    return out;
  }

  /// Write chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = chrome_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
  }

  [[nodiscard]] size_t ring_count() const {
    common::MutexLock lk(mu_);
    return rings_.size();
  }

  /// Merged snapshot of every ring's surviving events, timestamp order.
  /// Meant for tests and post-quiesce inspection (same caveats as export).
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> all;
    {
      common::MutexLock lk(mu_);
      for (const auto& r : rings_)
        for (const TraceEvent& e : r->snapshot()) all.push_back(e);
    }
    std::sort(all.begin(), all.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.ts_ns < b.ts_ns;
              });
    return all;
  }

  /// Total events recorded (including overwritten ones).
  [[nodiscard]] uint64_t events_recorded() const {
    common::MutexLock lk(mu_);
    uint64_t n = 0;
    for (const auto& r : rings_) n += r->pushed();
    return n;
  }

 private:
  Tracer() = default;

  TraceRing* ring() {
    // Cache the ring per (thread, enable-generation): enable() drops old
    // rings, so a stale cached pointer from a previous generation must
    // re-register rather than dangle.
    struct Slot {
      uint64_t gen = 0;
      TraceRing* ring = nullptr;
    };
    thread_local Slot slot;
    common::MutexLock lk(mu_);
    if (slot.ring == nullptr || slot.gen != gen_) {
      rings_.push_back(std::make_unique<TraceRing>(ring_capacity_));
      slot.ring = rings_.back().get();
      slot.gen = gen_;
    }
    return slot.ring;
  }

  mutable common::Mutex mu_;
  std::atomic<bool> on_{false};
  // Ring *contents* are single-writer (each ring belongs to one thread);
  // mu_ guards only the registry of rings and the enable generation.
  std::deque<std::unique_ptr<TraceRing>> rings_ GUARDED_BY(mu_);
  size_t ring_capacity_ GUARDED_BY(mu_) = size_t{1} << 15;
  uint64_t gen_ GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// RAII duration event: times its scope, records on destruction. Pass a
/// nonzero `trace_id` to tie the span into a sampled request's tree.
class TraceSpan {
 public:
  TraceSpan(const char* name, TraceKind kind, uint32_t arg = 0,
            uint64_t trace_id = 0)
      : name_(name), kind_(kind), arg_(arg), trace_id_(trace_id),
        on_(Tracer::instance().enabled()) {
    if (on_) t0_ = Tracer::instance().now_ns();
  }
  ~TraceSpan() {
    if (on_)
      Tracer::instance().record(name_, kind_, t0_,
                                Tracer::instance().now_ns() - t0_, arg_,
                                trace_id_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  TraceKind kind_;
  uint32_t arg_;
  uint64_t trace_id_;
  bool on_;
  uint64_t t0_ = 0;
};

}  // namespace hart::obs
