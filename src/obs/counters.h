// HARTscope counter registry — the process-wide accounting spine.
//
// Two kinds of metric feed one scrape:
//
//  * Counter — a named, monotonic event tally backed by sharded
//    std::atomic cells (one stripe per thread, cache-line padded), so a
//    hot-path increment is a single relaxed fetch_add on a line no other
//    thread touches. Used for low/medium-frequency structural events
//    (EPallocator micro-log takes, chunk recycles, ART node growth,
//    hash-dir partition creation, epoch fences, CoW clones).
//
//  * Source — a registered callback that emits cumulative (name, value)
//    pairs when the registry is scraped. Per-instance counters that
//    already exist on the hot path (pmem::Arena::Stats) register as
//    sources, so persist/flush/read accounting costs NOTHING extra per
//    event: aggregation happens only at scrape time. When a source is
//    unregistered (arena destroyed) its final sample is folded into
//    retained counters, so scraped totals stay monotonic across instance
//    lifetimes.
//
// snapshot() merges both kinds, summing same-named entries. Everything is
// header-only; inline function-local statics give one registry per
// process.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>

#include "common/annotations.h"
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hart::obs {

/// A monotonic event counter: one cache-line-padded atomic cell per
/// stripe; threads are spread over stripes round-robin on first use.
/// add() is lock-free and wait-free; value() sums the stripes (scrape
/// path, allowed to be slightly stale — these are event tallies that
/// never guard other memory, same argument as pmem::Stats).
class Counter {
 public:
  static constexpr unsigned kStripes = 16;  // power of two

  void add(uint64_t n) {
    cells_[stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  [[nodiscard]] uint64_t value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Tests only: not linearizable against concurrent add().
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };

  static unsigned stripe() {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned mine =
        next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
    return mine;
  }

  Cell cells_[kStripes];
};

class Registry {
 public:
  /// Cumulative (metric name, value) pairs. Names may carry Prometheus
  /// labels ("hartd_shard_ops_total{shard=\"0\"}").
  using Sample = std::vector<std::pair<std::string, uint64_t>>;
  using SourceFn = std::function<void(Sample*)>;

  static Registry& instance() {
    static Registry r;
    return r;
  }

  /// Find-or-create the named counter. The reference stays valid for the
  /// life of the process (node-based map); call sites cache it.
  Counter& counter(std::string_view name) {
    common::MutexLock lk(mu_);
    return counters_[std::string(name)];
  }

  /// Register a scrape-time source emitting *cumulative* values. Returns
  /// a handle for unregister_source(). The callback runs under the
  /// registry mutex and must not call back into the registry.
  uint64_t register_source(SourceFn fn) {
    common::MutexLock lk(mu_);
    const uint64_t id = next_source_++;
    sources_.emplace_back(id, std::move(fn));
    return id;
  }

  /// Drop a source, folding its final cumulative sample into retained
  /// counters — totals never move backwards when an instance dies.
  void unregister_source(uint64_t id) {
    common::MutexLock lk(mu_);
    for (auto it = sources_.begin(); it != sources_.end(); ++it) {
      if (it->first != id) continue;
      Sample final;
      it->second(&final);
      for (auto& [name, v] : final) counters_[name].add(v);
      sources_.erase(it);
      return;
    }
  }

  /// Merged view: retained counters plus every live source, same-named
  /// entries summed, sorted by name.
  [[nodiscard]] Sample snapshot() const {
    common::MutexLock lk(mu_);
    std::map<std::string, uint64_t, std::less<>> merged;
    for (const auto& [name, c] : counters_) merged[name] += c.value();
    Sample live;
    for (const auto& [id, fn] : sources_) {
      live.clear();
      fn(&live);
      for (const auto& [name, v] : live) merged[name] += v;
    }
    return {merged.begin(), merged.end()};
  }

 private:
  Registry() = default;

  mutable common::Mutex mu_;
  // Node-based map: Counter& references handed out by counter() stay valid
  // without the lock; only the map structure itself is guarded.
  std::map<std::string, Counter, std::less<>> counters_ GUARDED_BY(mu_);
  std::vector<std::pair<uint64_t, SourceFn>> sources_ GUARDED_BY(mu_);
  uint64_t next_source_ GUARDED_BY(mu_) = 1;
};

/// RAII source registration (member-friendly: movable, auto-unregisters).
class SourceHandle {
 public:
  SourceHandle() = default;
  explicit SourceHandle(Registry::SourceFn fn)
      : id_(Registry::instance().register_source(std::move(fn))) {}
  ~SourceHandle() { release(); }
  SourceHandle(SourceHandle&& o) noexcept : id_(o.id_) { o.id_ = 0; }
  SourceHandle& operator=(SourceHandle&& o) noexcept {
    if (this != &o) {
      release();
      id_ = o.id_;
      o.id_ = 0;
    }
    return *this;
  }
  SourceHandle(const SourceHandle&) = delete;
  SourceHandle& operator=(const SourceHandle&) = delete;

 private:
  void release() {
    if (id_ != 0) Registry::instance().unregister_source(id_);
    id_ = 0;
  }
  uint64_t id_ = 0;
};

}  // namespace hart::obs
