// hartd::Config — the service daemon's validated configuration, and the one
// command-line parser that produces it (ISSUE 10 satellite).
//
// hartd grew ~20 ad-hoc flags across tools/hartd_main.cc and a second,
// drifting copy of the engine knobs in tools/hartd_loadgen.cc (--inproc).
// This header centralizes them: `Config` is everything a daemon needs
// (listener + Hartd::Options), `parse_config()` is the single argv parser,
// and `parse_server_flag()` is the reusable engine-knob subset that loadgen
// consumes for its in-process server so the two binaries cannot drift.
// `dump_config()` renders the resolved configuration for `--print-config`.
#pragma once

#include <string>

#include "server/hartd.h"

namespace hart::server {

/// Everything `hartd` needs to run: the TCP listener knobs, operator I/O
/// (stats dumps, tracing), and the engine configuration handed to Hartd.
struct Config {
  /// TCP port on 127.0.0.1 (0 = ephemeral).
  long port = 7677;
  /// Write the bound port here after listen() (for scripts).
  std::string port_file;
  /// Print a Prometheus-text metrics snapshot every N seconds (0 = off).
  long stats_dump_secs = 0;
  /// chrome://tracing JSON written here at shutdown (empty = off).
  std::string trace_out;
  /// --print-config: dump the resolved configuration and exit 0.
  bool print_config = false;
  /// --help: print usage and exit 0.
  bool show_help = false;
  /// The engine: shards, batching, arenas, replication, allocator.
  Hartd::Options service;
};

/// Outcome of offering one argv position to a flag matcher.
enum class FlagParse {
  kNoMatch,  // not this matcher's flag; try the next one
  kOk,       // consumed (flag and, if any, its value; *i advanced)
  kError,    // matched but malformed; *err explains
};

/// Engine-knob subset shared by hartd and loadgen's --inproc server:
///   --shards --batch --queue --arena-dir --arena-mb --latency
///   --spin-latency --bloom-bits-per-key --rwlock-reads --check
///   --legacy-alloc --alloc-stripes --eager-meta
/// Offers argv[*i] to the matcher; on kOk, *i has been advanced past any
/// consumed value (the caller's loop ++ then moves to the next flag).
FlagParse parse_server_flag(int argc, char** argv, int* i,
                            Hartd::Options* opts, std::string* err);

/// Parses the full hartd command line into *cfg and validates it
/// (cross-flag rules included, e.g. quorum acks need --replicate-to).
/// Returns false with *err set on any unknown flag, malformed value, or
/// failed validation. --help and --print-config do not short-circuit the
/// parse; they set their Config bits for the caller to act on.
bool parse_config(int argc, char** argv, Config* cfg, std::string* err);

/// Cross-field validation only (parse_config already calls this). Exposed
/// for embedders that build a Config programmatically.
bool validate_config(const Config& cfg, std::string* err);

/// The full --help text.
std::string usage_text(const char* argv0);

/// "key = value" rendering of a resolved Config, one setting per line —
/// the --print-config output (and a scriptable config audit).
std::string dump_config(const Config& cfg);

}  // namespace hart::server
