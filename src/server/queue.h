// Per-shard MPSC submission queue: many client/connection threads push,
// one shard worker drains in batches. Bounded (back-pressure: push blocks
// while full), closeable (graceful shutdown drains the tail, then
// pop_batch returns false).
//
// Deliberately a mutex+condvar queue, not a lock-free ring: the critical
// sections are a deque splice, the worker amortizes one lock acquisition
// over a whole batch, and correctness under TSAN matters more here than
// the last 100 ns of enqueue latency.
//
// Waits are explicit while-loops around CondVar::wait rather than
// predicate lambdas: Clang's thread safety analysis treats a lambda as a
// separate function that cannot see the held capability, so the loop form
// is the one that checks.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/annotations.h"

namespace hart::server {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while the queue is full. Returns false (item dropped) if the
  /// queue was closed.
  bool push(T item) {
    bool notify = false;
    {
      common::MutexLock lk(mu_);
      while (!closed_ && q_.size() >= cap_) not_full_.wait(mu_);
      if (closed_) return false;
      q_.push_back(std::move(item));
      notify = true;
    }
    if (notify) not_empty_.notify_one();
    return true;
  }

  /// Blocks until at least one item is queued or the queue is closed, then
  /// moves up to `max_items` into `*out` (cleared first). Returns false
  /// only when the queue is closed AND fully drained — the consumer's
  /// termination condition.
  bool pop_batch(std::vector<T>* out, size_t max_items) {
    out->clear();
    {
      common::MutexLock lk(mu_);
      while (!closed_ && q_.empty()) not_empty_.wait(mu_);
      if (q_.empty()) return false;  // closed and drained
      const size_t n = q_.size() < max_items ? q_.size() : max_items;
      for (size_t i = 0; i < n; ++i) {
        out->push_back(std::move(q_.front()));
        q_.pop_front();
      }
    }
    not_full_.notify_all();
    return true;
  }

  /// After close(): pushes fail, the consumer drains the tail and then
  /// pop_batch returns false. Idempotent.
  void close() {
    {
      common::MutexLock lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] size_t size() const {
    common::MutexLock lk(mu_);
    return q_.size();
  }

 private:
  mutable common::Mutex mu_;
  common::CondVar not_empty_;
  common::CondVar not_full_;
  std::deque<T> q_ GUARDED_BY(mu_);
  const size_t cap_;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace hart::server
