// Per-shard MPSC submission queue: many client/connection threads push,
// one shard worker drains in batches. Bounded (back-pressure: push blocks
// while full), closeable (graceful shutdown drains the tail, then
// pop_batch returns false).
//
// Deliberately a mutex+condvar queue, not a lock-free ring: the critical
// sections are a deque splice, the worker amortizes one lock acquisition
// over a whole batch, and correctness under TSAN matters more here than
// the last 100 ns of enqueue latency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace hart::server {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while the queue is full. Returns false (item dropped) if the
  /// queue was closed.
  bool push(T item) {
    std::unique_lock lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || q_.size() < cap_; });
    if (closed_) return false;
    q_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until at least one item is queued or the queue is closed, then
  /// moves up to `max_items` into `*out` (cleared first). Returns false
  /// only when the queue is closed AND fully drained — the consumer's
  /// termination condition.
  bool pop_batch(std::vector<T>* out, size_t max_items) {
    out->clear();
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return false;  // closed and drained
    const size_t n = q_.size() < max_items ? q_.size() : max_items;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(q_.front()));
      q_.pop_front();
    }
    lk.unlock();
    not_full_.notify_all();
    return true;
  }

  /// After close(): pushes fail, the consumer drains the tail and then
  /// pop_batch returns false. Idempotent.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard lk(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> q_;
  const size_t cap_;
  bool closed_ = false;
};

}  // namespace hart::server
