#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace hart::server {

namespace {
bool send_all(int fd, const char* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// One TCP dial; -1 on any failure.
int dial(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip =
      (host == "localhost" || host.empty()) ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}
}  // namespace

Client::Client(Hartd& local) : local_(&local) {}

Client::Client(const std::string& host, uint16_t port)
    : Client(std::vector<Endpoint>{{host, port}}, ReconnectPolicy{}) {}

Client::Client(std::vector<Endpoint> endpoints, ReconnectPolicy policy)
    : endpoints_(std::move(endpoints)), policy_(std::move(policy)) {
  if (endpoints_.empty()) throw std::invalid_argument("no endpoints");
  if (policy_.backoff_base_ms == 0) policy_.backoff_base_ms = 1;
  policy_.backoff_max_ms =
      std::max(policy_.backoff_max_ms, policy_.backoff_base_ms);
  // Initial dial honors the same rotation/backoff as reconnection, with a
  // minimum of one pass over the list.
  const size_t rounds = std::max<size_t>(policy_.max_attempts, 1);
  int fd = -1;
  uint32_t backoff = policy_.backoff_base_ms;
  common::MutexLock rl(reconnect_mu_);
  for (size_t a = 0; a < rounds && fd < 0; ++a) {
    const Endpoint& ep = endpoints_[ep_index_ % endpoints_.size()];
    ++ep_index_;
    fd = dial(ep.host, ep.port);
    if (fd < 0 && a + 1 < rounds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, policy_.backoff_max_ms);
    }
  }
  if (fd < 0)
    throw std::runtime_error("cannot connect to " + endpoints_[0].host + ":" +
                             std::to_string(endpoints_[0].port));
  {
    common::MutexLock wl(write_mu_);
    fd_ = fd;
  }
  spawn_reader(fd);
}

Client::~Client() {
  if (local_ != nullptr) {
    // Every in-process submission is acked eventually (Hartd drains its
    // queues even on shutdown), so waiting here is bounded.
    wait_all();
    return;
  }
  closing_.store(true, std::memory_order_release);
  common::MutexLock rl(reconnect_mu_);
  {
    common::MutexLock wl(write_mu_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (reader_.joinable()) reader_.join();  // fails outstanding with kNetError
  common::MutexLock wl(write_mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Client::spawn_reader(int fd) {
  reader_ = std::thread([this, fd] { reader_loop(fd); });
}

void Client::set_trace_sampling(uint64_t every_n) {
  common::MutexLock lk(mu_);
  trace_every_ = every_n;
  if (trace_base_ == 0) {
    trace_base_ = static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch()
                          .count()) ^
                  (reinterpret_cast<uintptr_t>(this) << 16);
  }
}

void Client::trace_start(uint64_t id, Request* req) {
  if (req->trace_id == 0) {
    if (trace_every_ == 0 || req->op > OpCode::kPing) return;
    if (++trace_tick_ % trace_every_ != 0) return;
    req->trace_id = trace_base_ ^ (trace_tick_ << 1) ^ 1;
  }
  obs::Tracer& tr = obs::Tracer::instance();
  if (tr.enabled()) traced_[id] = {req->trace_id, tr.now_ns()};
}

void Client::trace_finish(uint64_t id) {
  if (traced_.empty()) return;
  auto it = traced_.find(id);
  if (it == traced_.end()) return;
  obs::Tracer& tr = obs::Tracer::instance();
  if (tr.enabled()) {
    const uint64_t now = tr.now_ns();
    const uint64_t start = it->second.start_ns;
    tr.record("client", obs::TraceKind::kOp, start,
              now > start ? now - start : 0, 0, it->second.trace_id);
  }
  traced_.erase(it);
}

void Client::complete(uint64_t id, Response resp) {
  {
    common::MutexLock lk(mu_);
    // Exactly-once: a request the dying reader already failed must not be
    // resurrected by a late transport error on the sender side.
    if (pending_.erase(id) == 0) return;
    trace_finish(id);
    done_[id] = std::move(resp);
  }
  cv_.notify_all();
}

bool Client::try_reconnect() {
  if (policy_.max_attempts == 0) return false;
  common::MutexLock rl(reconnect_mu_);
  {
    common::MutexLock lk(mu_);
    if (!broken_) return true;  // another sender already repaired it
  }
  // broken_ is set at the tail of reader_loop, so the join is bounded.
  if (reader_.joinable()) reader_.join();
  uint32_t backoff = policy_.backoff_base_ms;
  for (size_t a = 0; a < policy_.max_attempts; ++a) {
    if (closing_.load(std::memory_order_acquire)) return false;
    const Endpoint& ep = endpoints_[ep_index_ % endpoints_.size()];
    ++ep_index_;
    const int fd = dial(ep.host, ep.port);
    if (fd >= 0) {
      {
        common::MutexLock wl(write_mu_);
        if (fd_ >= 0) ::close(fd_);
        fd_ = fd;
      }
      {
        common::MutexLock lk(mu_);
        broken_ = false;
      }
      spawn_reader(fd);
      return true;
    }
    if (a + 1 < policy_.max_attempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, policy_.backoff_max_ms);
    }
  }
  return false;
}

uint64_t Client::send(Request req) {
  uint64_t id;
  bool dead;
  {
    common::MutexLock lk(mu_);
    id = next_id_++;
    dead = broken_;
    trace_start(id, &req);
  }
  if (local_ != nullptr) {
    {
      common::MutexLock lk(mu_);
      pending_.insert(id);
    }
    // Hartd::submit invokes the ack even when shutting down, so every id
    // completes exactly once.
    local_->submit(std::move(req),
                   [this, id](Response r) { complete(id, std::move(r)); });
    return id;
  }
  if (dead) dead = !try_reconnect();
  {
    common::MutexLock lk(mu_);
    pending_.insert(id);
  }
  if (dead) {
    complete(id, Response{Status::kNetError, {}, 0});
    return id;
  }
  std::string frame;
  encode_request(id, req, &frame);
  bool ok;
  {
    common::MutexLock wl(write_mu_);
    ok = fd_ >= 0 && send_all(fd_, frame.data(), frame.size());
  }
  if (!ok) complete(id, Response{Status::kNetError, {}, 0});
  return id;
}

Response Client::wait(uint64_t id) {
  common::MutexLock lk(mu_);
  while (done_.count(id) == 0 && pending_.count(id) != 0) cv_.wait(mu_);
  auto it = done_.find(id);
  if (it == done_.end()) return Response{Status::kNetError, {}, 0};
  Response r = std::move(it->second);
  done_.erase(it);
  return r;
}

void Client::wait_all() {
  common::MutexLock lk(mu_);
  // A dying reader moves every pending id to done_, so this always
  // terminates even without reconnection.
  while (!pending_.empty()) cv_.wait(mu_);
}

size_t Client::outstanding() const {
  common::MutexLock lk(mu_);
  return pending_.size();
}

bool Client::connected() const {
  common::MutexLock lk(mu_);
  return !broken_;
}

void Client::reader_loop(int fd) {
  std::string buf;
  std::string body;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    buf.append(chunk, static_cast<size_t>(r));
    for (;;) {
      const int got = take_frame(&buf, &body);
      if (got < 0) goto out;  // malformed stream
      if (got == 0) break;
      uint64_t id = 0;
      Response resp;
      if (!decode_response(body.data(), body.size(), &id, &resp)) goto out;
      {
        common::MutexLock lk(mu_);
        if (pending_.erase(id) != 0) trace_finish(id);
        done_[id] = std::move(resp);
      }
      cv_.notify_all();
    }
  }
out:
  // Stream is gone (server died, protocol error, or dtor shut the
  // socket): fail every in-flight request now — the next send() may
  // reconnect, and a fresh stream will never answer these ids.
  {
    common::MutexLock lk(mu_);
    broken_ = true;
    for (const uint64_t id : pending_) {
      trace_finish(id);
      done_[id] = Response{Status::kNetError, {}, 0};
    }
    pending_.clear();
  }
  cv_.notify_all();
}

Response Client::put(std::string key, std::string value) {
  return wait(send(Request{OpCode::kPut, std::move(key), std::move(value)}));
}
Response Client::get(std::string key) {
  return wait(send(Request{OpCode::kGet, std::move(key), {}}));
}
Response Client::update(std::string key, std::string value) {
  return wait(
      send(Request{OpCode::kUpdate, std::move(key), std::move(value)}));
}
Response Client::del(std::string key) {
  return wait(send(Request{OpCode::kDelete, std::move(key), {}}));
}
Response Client::ping() { return wait(send(Request{OpCode::kPing, {}, {}})); }
common::Status Client::stats(std::string* out, std::string format) {
  Response r = wait(send(Request{OpCode::kStats, {}, std::move(format)}));
  if (out != nullptr)
    *out = r.status == Status::kOk ? std::move(r.value) : std::string();
  return common_status(r.status);
}
common::Status Client::promote(std::string* positions) {
  Response r = wait(send(Request{OpCode::kPromote, {}, {}}));
  if (positions != nullptr)
    *positions = r.status == Status::kOk ? std::move(r.value) : std::string();
  return common_status(r.status);
}

size_t Client::multi_get(const std::vector<std::string>& keys,
                         std::vector<std::string>* out,
                         std::vector<bool>* found) {
  out->assign(keys.size(), {});
  found->assign(keys.size(), false);
  Request req{OpCode::kMget, {}, {}};
  if (!encode_mget_keys(keys, &req.value)) return 0;
  const Response r = wait(send(std::move(req)));
  if (r.status != Status::kOk) return 0;
  if (!decode_mget_result(r.value, out, found) || out->size() != keys.size()) {
    out->assign(keys.size(), {});
    found->assign(keys.size(), false);
    return 0;
  }
  size_t hits = 0;
  for (const bool f : *found) hits += f ? 1 : 0;
  return hits;
}

size_t Client::scan(std::string start, uint32_t limit,
                    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  Request req{OpCode::kScan, std::move(start), {}};
  encode_scan_limit(limit, &req.value);
  const Response r = wait(send(std::move(req)));
  if (r.status != Status::kOk || !decode_scan_result(r.value, out))
    out->clear();
  return out->size();
}

}  // namespace hart::server
