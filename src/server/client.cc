#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

namespace hart::server {

namespace {
bool send_all(int fd, const char* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}
}  // namespace

Client::Client(Hartd& local) : local_(&local) {}

Client::Client(const std::string& host, uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip = (host == "localhost" || host.empty()) ? "127.0.0.1"
                                                         : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = std::thread([this] { reader_loop(); });
}

Client::~Client() {
  if (local_ != nullptr) {
    // Every in-process submission is acked eventually (Hartd drains its
    // queues even on shutdown), so waiting here is bounded.
    wait_all();
    return;
  }
  ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();  // fails outstanding with kNetError
  ::close(fd_);
}

void Client::complete(uint64_t id, Response resp) {
  {
    common::MutexLock lk(mu_);
    done_[id] = std::move(resp);
    --outstanding_;
  }
  cv_.notify_all();
}

uint64_t Client::send(Request req) {
  uint64_t id;
  bool dead;
  {
    common::MutexLock lk(mu_);
    id = next_id_++;
    ++outstanding_;
    dead = broken_;
  }
  if (dead) {
    complete(id, Response{Status::kNetError, {}, 0});
    return id;
  }
  if (local_ != nullptr) {
    // Hartd::submit invokes the ack even when shutting down, so every id
    // completes exactly once.
    local_->submit(std::move(req),
                   [this, id](Response r) { complete(id, std::move(r)); });
    return id;
  }
  std::string frame;
  encode_request(id, req, &frame);
  bool ok;
  {
    common::MutexLock wl(write_mu_);
    ok = send_all(fd_, frame.data(), frame.size());
  }
  if (!ok) complete(id, Response{Status::kNetError, {}, 0});
  return id;
}

Response Client::wait(uint64_t id) {
  common::MutexLock lk(mu_);
  while (done_.count(id) == 0 && !broken_) cv_.wait(mu_);
  auto it = done_.find(id);
  if (it == done_.end()) return Response{Status::kNetError, {}, 0};
  Response r = std::move(it->second);
  done_.erase(it);
  return r;
}

void Client::wait_all() {
  common::MutexLock lk(mu_);
  while (outstanding_ != 0 && !broken_) cv_.wait(mu_);
}

size_t Client::outstanding() const {
  common::MutexLock lk(mu_);
  return outstanding_;
}

bool Client::connected() const {
  common::MutexLock lk(mu_);
  return !broken_;
}

void Client::reader_loop() {
  std::string buf;
  std::string body;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    buf.append(chunk, static_cast<size_t>(r));
    for (;;) {
      const int got = take_frame(&buf, &body);
      if (got < 0) goto out;  // malformed stream
      if (got == 0) break;
      uint64_t id = 0;
      Response resp;
      if (!decode_response(body.data(), body.size(), &id, &resp)) goto out;
      {
        common::MutexLock lk(mu_);
        done_[id] = std::move(resp);
        if (outstanding_ > 0) --outstanding_;
      }
      cv_.notify_all();
    }
  }
out:
  // Stream is gone (server died or dtor shut the socket): fail every
  // current and future wait with kNetError.
  {
    common::MutexLock lk(mu_);
    broken_ = true;
  }
  cv_.notify_all();
}

Response Client::put(std::string key, std::string value) {
  return wait(send(Request{OpCode::kPut, std::move(key), std::move(value)}));
}
Response Client::get(std::string key) {
  return wait(send(Request{OpCode::kGet, std::move(key), {}}));
}
Response Client::update(std::string key, std::string value) {
  return wait(
      send(Request{OpCode::kUpdate, std::move(key), std::move(value)}));
}
Response Client::del(std::string key) {
  return wait(send(Request{OpCode::kDelete, std::move(key), {}}));
}
Response Client::ping() { return wait(send(Request{OpCode::kPing, {}, {}})); }
Response Client::stats(std::string format) {
  return wait(send(Request{OpCode::kStats, {}, std::move(format)}));
}

size_t Client::multi_get(const std::vector<std::string>& keys,
                         std::vector<std::string>* out,
                         std::vector<bool>* found) {
  out->assign(keys.size(), {});
  found->assign(keys.size(), false);
  Request req{OpCode::kMget, {}, {}};
  if (!encode_mget_keys(keys, &req.value)) return 0;
  const Response r = wait(send(std::move(req)));
  if (r.status != Status::kOk) return 0;
  if (!decode_mget_result(r.value, out, found) || out->size() != keys.size()) {
    out->assign(keys.size(), {});
    found->assign(keys.size(), false);
    return 0;
  }
  size_t hits = 0;
  for (const bool f : *found) hits += f ? 1 : 0;
  return hits;
}

size_t Client::scan(std::string start, uint32_t limit,
                    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  Request req{OpCode::kScan, std::move(start), {}};
  encode_scan_limit(limit, &req.value);
  const Response r = wait(send(std::move(req)));
  if (r.status != Status::kOk || !decode_scan_result(r.value, out))
    out->clear();
  return out->size();
}

}  // namespace hart::server
